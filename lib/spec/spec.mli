(** Engine specialization policy (DESIGN.md §14).

    {!Resim_core.Engine.Staged} is the mechanism — a functor that
    compiles one monomorphic per-cycle engine per configuration grid
    point. This module is the policy: a registry of pre-instantiated
    variants covering the common grid (the reference machine at widths
    2/4/8 across the three organizations and both schedulers), a
    selector, and the [Auto]/[Always]/[Never] installation modes the
    CLI surfaces as [--no-specialize].

    Staged variants are bit-identical to the generic engine by
    contract — same cycles, same statistics, same pipetrace stream —
    so installation is purely a host-speed decision. *)

open Resim_core

(** A pre-instantiated staged variant (the result signature of
    {!Engine.Staged}). *)
module type VARIANT = sig
  val name : string
  val matches : Config.t -> bool
  val install : Engine.t -> unit
end

type mode =
  | Auto  (** specialize when a grid variant matches, else generic *)
  | Always
      (** specialize even off-grid, via a one-off runtime-built
          variant (keeps the structural wins, not the constant
          folding) *)
  | Never  (** force the generic engine ([--no-specialize]) *)

val mode_name : mode -> string

val mode_of_string : string -> (mode, string) result

val variants : (module VARIANT) list
(** The built-in grid, most-common configuration first ({!select}
    takes the first match). *)

val variant_names : string list

val select : Config.t -> (module VARIANT) option
(** First registry variant whose frozen constants agree with the
    configuration. *)

val static_of_config : Config.t -> (module Engine.STATIC_CONFIG)
(** Freeze a runtime configuration into a one-off static module (the
    [Always] fallback). *)

val install : ?mode:mode -> Engine.t -> bool
(** Apply the policy to a freshly created engine; returns whether a
    staged variant is now installed. [Never] (and an [Auto] miss)
    reverts to the generic stepper. *)

val instrument : mode -> Engine.t -> unit
(** {!install} shaped for {!Resim_core.Resim.simulate_robust}'s
    [instrument] hook. *)
