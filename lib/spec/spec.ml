open Resim_core

module type VARIANT = sig
  val name : string
  val matches : Config.t -> bool
  val install : Engine.t -> unit
end

type mode = Auto | Always | Never

let mode_name = function
  | Auto -> "auto"
  | Always -> "always"
  | Never -> "never"

let mode_of_string = function
  | "auto" -> Ok Auto
  | "always" -> Ok Always
  | "never" -> Ok Never
  | other ->
      Error
        (Printf.sprintf "unknown specialization mode %S (auto|always|never)"
           other)

(* The pre-instantiated grid: the reference machine's window, units and
   penalties at widths 2/4/8 (ports scaled with the width), across the
   three §IV organizations and both schedulers. The Optimized
   organization supports at most N-1 memory ports, which excludes
   width 2 there ([Config.validate] would refuse it too). Each functor
   application below compiles one monomorphic per-cycle engine. *)

module Base = struct
  let rob_entries = 16
  let lsq_entries = 8
  let alu_latency = 1
  let mult_count = 1
  let mult_latency = 3
  let div_count = 1
  let div_latency = 10
  let misfetch_penalty = 3
  let misspeculation_penalty = 3
end

module W2 = struct
  include Base

  let width = 2
  let alu_count = 2
  let mem_read_ports = 1
  let mem_write_ports = 1
end

module W4 = struct
  include Base

  let width = 4
  let alu_count = 4
  let mem_read_ports = 2
  let mem_write_ports = 1
end

module W8 = struct
  include Base

  let width = 8
  let alu_count = 8
  let mem_read_ports = 4
  let mem_write_ports = 2
end

module Simple_scan_w2 = Engine.Staged (struct
  include W2

  let organization = Config.Simple
  let scheduler = Config.Scan
end)

module Simple_event_w2 = Engine.Staged (struct
  include W2

  let organization = Config.Simple
  let scheduler = Config.Event
end)

module Improved_scan_w2 = Engine.Staged (struct
  include W2

  let organization = Config.Improved
  let scheduler = Config.Scan
end)

module Improved_event_w2 = Engine.Staged (struct
  include W2

  let organization = Config.Improved
  let scheduler = Config.Event
end)

module Simple_scan_w4 = Engine.Staged (struct
  include W4

  let organization = Config.Simple
  let scheduler = Config.Scan
end)

module Simple_event_w4 = Engine.Staged (struct
  include W4

  let organization = Config.Simple
  let scheduler = Config.Event
end)

module Improved_scan_w4 = Engine.Staged (struct
  include W4

  let organization = Config.Improved
  let scheduler = Config.Scan
end)

module Improved_event_w4 = Engine.Staged (struct
  include W4

  let organization = Config.Improved
  let scheduler = Config.Event
end)

module Optimized_scan_w4 = Engine.Staged (struct
  include W4

  let organization = Config.Optimized
  let scheduler = Config.Scan
end)

module Optimized_event_w4 = Engine.Staged (struct
  include W4

  let organization = Config.Optimized
  let scheduler = Config.Event
end)

module Simple_scan_w8 = Engine.Staged (struct
  include W8

  let organization = Config.Simple
  let scheduler = Config.Scan
end)

module Simple_event_w8 = Engine.Staged (struct
  include W8

  let organization = Config.Simple
  let scheduler = Config.Event
end)

module Improved_scan_w8 = Engine.Staged (struct
  include W8

  let organization = Config.Improved
  let scheduler = Config.Scan
end)

module Improved_event_w8 = Engine.Staged (struct
  include W8

  let organization = Config.Improved
  let scheduler = Config.Event
end)

module Optimized_scan_w8 = Engine.Staged (struct
  include W8

  let organization = Config.Optimized
  let scheduler = Config.Scan
end)

module Optimized_event_w8 = Engine.Staged (struct
  include W8

  let organization = Config.Optimized
  let scheduler = Config.Event
end)

let variants : (module VARIANT) list =
  [ (module Optimized_event_w4);
    (module Optimized_scan_w4);
    (module Improved_event_w4);
    (module Improved_scan_w4);
    (module Simple_event_w4);
    (module Simple_scan_w4);
    (module Improved_event_w2);
    (module Improved_scan_w2);
    (module Simple_event_w2);
    (module Simple_scan_w2);
    (module Optimized_event_w8);
    (module Optimized_scan_w8);
    (module Improved_event_w8);
    (module Improved_scan_w8);
    (module Simple_event_w8);
    (module Simple_scan_w8) ]

let variant_names =
  List.map (fun (module V : VARIANT) -> V.name) variants

let select config =
  List.find_opt (fun (module V : VARIANT) -> V.matches config) variants

(* [Always] on a configuration off the grid: freeze the runtime values
   into a one-off STATIC_CONFIG and apply the functor dynamically. The
   constants are module fields rather than immediates, so the one-off
   keeps only the staged engine's structural wins (resolved cells,
   direct phase calls), but it is bit-identical all the same. *)
let static_of_config (c : Config.t) : (module Engine.STATIC_CONFIG) =
  (module struct
    let width = c.Config.width
    let rob_entries = c.Config.rob_entries
    let lsq_entries = c.Config.lsq_entries
    let alu_count = c.Config.alu_count
    let alu_latency = c.Config.alu_latency
    let mult_count = c.Config.mult_count
    let mult_latency = c.Config.mult_latency
    let div_count = c.Config.div_count
    let div_latency = c.Config.div_latency
    let mem_read_ports = c.Config.mem_read_ports
    let mem_write_ports = c.Config.mem_write_ports
    let misfetch_penalty = c.Config.misfetch_penalty
    let misspeculation_penalty = c.Config.misspeculation_penalty
    let organization = c.Config.organization
    let scheduler = c.Config.scheduler
  end)

let install ?(mode = Auto) engine =
  let config = Engine.config engine in
  match mode with
  | Never ->
      Engine.clear_stepper engine;
      false
  | Auto -> (
      match select config with
      | Some (module V) ->
          V.install engine;
          true
      | None ->
          Engine.clear_stepper engine;
          false)
  | Always ->
      (match select config with
      | Some (module V) -> V.install engine
      | None ->
          let module S = (val static_of_config config) in
          let module V = Engine.Staged (S) in
          V.install engine);
      true

let instrument mode engine = ignore (install ~mode engine)
