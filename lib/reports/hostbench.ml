module Config = Resim_core.Config
module Stats = Resim_core.Stats
module Engine = Resim_core.Engine

type measurement = {
  kernel : string;
  scale : int option;
  config_name : string;
  scheduler : string;
  instructions : int;
  record_count : int;
  cycles : int64;
  runs : int;
  ns_per_run : float;
  host_mips : float;
  stall_causes : (string * int64) list;
}

let configurations =
  [ ("reference", Config.reference);
    ("fast-comparable", Config.fast_comparable) ]

(* Host-MIPS anchors measured at the pre-event-engine seed (commit
   45c755d), whose only scheduler was the per-cycle ROB/LSQ scan, with
   this module's exact protocol (same grid, 1 warm-up + best-of-5
   wall-clock) on the same host class. They let every later
   BENCH_engine.json report the engine-core trajectory against the
   baseline this work started from — the in-binary scan oracle is not
   that baseline, because it shares the representation optimizations
   (int producer links, int stats counters, flat rings, unboxed heap
   keys) that the event-engine work introduced. Cycle counts at the
   seed match the current engines exactly, so the anchor divides out
   simulated work, leaving pure host-throughput change. *)
let seed_baseline =
  [ ("gzip", "reference", 0.9363);
    ("gzip", "fast-comparable", 0.9959);
    ("bzip2", "reference", 1.0225);
    ("bzip2", "fast-comparable", 1.1063);
    ("vortex", "reference", 1.0117);
    ("vortex", "fast-comparable", 1.0612);
    ("twolf", "reference", 0.9643);
    ("twolf", "fast-comparable", 1.0093) ]

(* Anchors were measured on the full grid's scales, so only full-grid
   measurements are comparable (quick mode shrinks the gzip trace,
   which inflates MIPS and would fabricate a speedup). *)
let seed_scale = function "gzip" -> Some 8192 | _ -> None

let seed_mips ~kernel ~scale ~config_name =
  if scale <> seed_scale kernel then None
  else
    List.find_map
      (fun (k, c, mips) ->
        if String.equal k kernel && String.equal c config_name then Some mips
        else None)
      seed_baseline

let schedulers = [ Config.Scan; Config.Event ]

let grid ~quick =
  if quick then [ ("gzip", Some 1024) ]
  else [ ("gzip", Some 8192); ("bzip2", None); ("vortex", None);
         ("twolf", None) ]

(* Best-of-n wall-clock timing after one warm-up run: the warm-up pays
   one-time costs (page faults, branch-predictor tables, GC ramp-up)
   and best-of-n suppresses host noise. *)
let time_best ~runs f =
  ignore (f ());
  let best = ref infinity in
  for _ = 1 to runs do
    let started = Unix.gettimeofday () in
    ignore (f ());
    let elapsed = Unix.gettimeofday () -. started in
    if elapsed < !best then best := elapsed
  done;
  !best

let measure ?(quick = false) () =
  (* Best-of-n keeps the minimum, so extra runs only sharpen the floor;
     9 rides out multi-second host-load bursts that best-of-5 did not. *)
  let runs = if quick then 2 else 9 in
  List.concat_map
    (fun (kernel_name, scale) ->
      let kernel = Resim_workloads.Workload.find kernel_name in
      let program =
        match scale with
        | Some scale ->
            Resim_workloads.Workload.program_of kernel ~scale ()
        | None -> Resim_workloads.Workload.program_of kernel ()
      in
      let generated = Resim_tracegen.Generator.run program in
      let records = generated.records in
      List.concat_map
        (fun (config_name, config) ->
          List.map
            (fun scheduler ->
              let config = { config with Config.scheduler } in
              let stats = ref (Stats.create ()) in
              let seconds =
                time_best ~runs (fun () ->
                    stats := Engine.simulate ~config records)
              in
              let ns_per_run = seconds *. 1e9 in
              let host_mips =
                if seconds > 0.0 then
                  float_of_int generated.correct_path /. seconds /. 1e6
                else 0.0
              in
              { kernel = kernel_name;
                scale;
                config_name;
                scheduler = Config.scheduler_name scheduler;
                instructions = generated.correct_path;
                record_count = Array.length records;
                cycles = Stats.get Stats.major_cycles !stats;
                runs;
                ns_per_run;
                host_mips;
                stall_causes = Stats.stall_causes !stats })
            schedulers)
        configurations)
    (grid ~quick)

let find measurements ~kernel ~config_name ~scheduler =
  List.find_opt
    (fun m ->
      String.equal m.kernel kernel
      && String.equal m.config_name config_name
      && String.equal m.scheduler scheduler)
    measurements

let speedup measurements ~kernel ~config_name =
  match
    ( find measurements ~kernel ~config_name ~scheduler:"scan",
      find measurements ~kernel ~config_name ~scheduler:"event" )
  with
  | Some scan, Some event when scan.host_mips > 0.0 ->
      Some (event.host_mips /. scan.host_mips)
  | _ -> None

let speedup_vs_seed measurements ~kernel ~config_name =
  match find measurements ~kernel ~config_name ~scheduler:"event" with
  | Some event -> (
      match seed_mips ~kernel ~scale:event.scale ~config_name with
      | Some baseline when baseline > 0.0 ->
          Some (event.host_mips /. baseline)
      | Some _ | None -> None)
  | None -> None

let pp_table ppf measurements =
  Format.fprintf ppf "@[<v>%-8s %-16s %-6s %12s %12s %10s@," "kernel"
    "config" "sched" "cycles" "ns/run" "host MIPS";
  List.iter
    (fun m ->
      Format.fprintf ppf "%-8s %-16s %-6s %12Ld %12.0f %10.3f" m.kernel
        m.config_name m.scheduler m.cycles m.ns_per_run m.host_mips;
      if String.equal m.scheduler "event" then begin
        (match speedup measurements ~kernel:m.kernel
                 ~config_name:m.config_name
         with
        | Some ratio -> Format.fprintf ppf "   (%.2fx vs scan" ratio
        | None -> Format.fprintf ppf "   (");
        (match speedup_vs_seed measurements ~kernel:m.kernel
                 ~config_name:m.config_name
         with
        | Some ratio -> Format.fprintf ppf ", %.2fx vs seed)@," ratio
        | None -> Format.fprintf ppf ")@,")
      end
      else Format.fprintf ppf "@,")
    measurements;
  Format.fprintf ppf "@]"

(* Hand-rolled JSON: the repository deliberately has no JSON dependency
   and every emitted value is numeric or a controlled identifier. *)
let json_escape s =
  let buffer = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buffer "\\\""
      | '\\' -> Buffer.add_string buffer "\\\\"
      | '\n' -> Buffer.add_string buffer "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buffer (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buffer c)
    s;
  Buffer.contents buffer

let to_json ?sweep_outcomes measurements =
  let buffer = Buffer.create 4096 in
  Buffer.add_string buffer "{\n";
  Buffer.add_string buffer "  \"benchmark\": \"resim-engine-host-throughput\",\n";
  Buffer.add_string buffer
    (Printf.sprintf "  \"version\": \"%s\",\n"
       (json_escape Resim_core.Resim.version));
  (match sweep_outcomes with
  | None ->
      (* Quick runs skip the sweep section; null keeps the key present
         so downstream readers need no schema branching. *)
      Buffer.add_string buffer "  \"sweep_outcomes\": null,\n"
  | Some (c : Resim_sweep.Sweep.counts) ->
      Buffer.add_string buffer
        (Printf.sprintf
           "  \"sweep_outcomes\": {\"ok\": %d, \"failed\": %d, \
            \"timed_out\": %d, \"truncated\": %d, \"retried\": %d},\n"
           c.ok c.failed c.timed_out c.truncated c.retried));
  Buffer.add_string buffer "  \"measurements\": [\n";
  List.iteri
    (fun index m ->
      let stalls =
        String.concat ", "
          (List.map
             (fun (name, value) -> Printf.sprintf "\"%s\": %Ld" name value)
             m.stall_causes)
      in
      Buffer.add_string buffer
        (Printf.sprintf
           "    {\"kernel\": \"%s\", \"scale\": %s, \"config\": \"%s\", \
            \"scheduler\": \"%s\", \"instructions\": %d, \"records\": %d, \
            \"cycles\": %Ld, \"runs\": %d, \"ns_per_run\": %.0f, \
            \"host_mips\": %.4f, \"stalls\": {%s}}%s\n"
           (json_escape m.kernel)
           (match m.scale with Some s -> string_of_int s | None -> "null")
           (json_escape m.config_name)
           (json_escape m.scheduler)
           m.instructions m.record_count m.cycles m.runs m.ns_per_run
           m.host_mips stalls
           (if index = List.length measurements - 1 then "" else ",")))
    measurements;
  Buffer.add_string buffer "  ],\n";
  Buffer.add_string buffer
    "  \"baseline\": {\"commit\": \"45c755d\", \"scheduler\": \"scan\", \
     \"note\": \"pre-event-engine seed, same protocol and host class\", \
     \"host_mips\": [\n";
  List.iteri
    (fun index (kernel, config_name, mips) ->
      Buffer.add_string buffer
        (Printf.sprintf
           "    {\"kernel\": \"%s\", \"config\": \"%s\", \
            \"host_mips\": %.4f}%s\n"
           (json_escape kernel) (json_escape config_name) mips
           (if index = List.length seed_baseline - 1 then "" else ",")))
    seed_baseline;
  Buffer.add_string buffer "  ]},\n";
  Buffer.add_string buffer "  \"speedups\": [\n";
  let points =
    List.filter_map
      (fun m ->
        if String.equal m.scheduler "event" then
          match speedup measurements ~kernel:m.kernel
                  ~config_name:m.config_name
          with
          | Some ratio -> Some (m.kernel, m.config_name, ratio)
          | None -> None
        else None)
      measurements
  in
  List.iteri
    (fun index (kernel, config_name, ratio) ->
      let vs_seed =
        match speedup_vs_seed measurements ~kernel ~config_name with
        | Some ratio -> Printf.sprintf ", \"event_over_seed\": %.4f" ratio
        | None -> ""
      in
      Buffer.add_string buffer
        (Printf.sprintf
           "    {\"kernel\": \"%s\", \"config\": \"%s\", \
            \"event_over_scan\": %.4f%s}%s\n"
           (json_escape kernel) (json_escape config_name) ratio vs_seed
           (if index = List.length points - 1 then "" else ",")))
    points;
  Buffer.add_string buffer "  ]\n}\n";
  Buffer.contents buffer

let write_json ~path ?sweep_outcomes measurements =
  let channel = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out channel)
    (fun () -> output_string channel (to_json ?sweep_outcomes measurements))
