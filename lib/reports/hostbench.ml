module Config = Resim_core.Config
module Stats = Resim_core.Stats
module Engine = Resim_core.Engine

type measurement = {
  kernel : string;
  scale : int option;
  config_name : string;
  scheduler : string;
  instructions : int;
  record_count : int;
  cycles : int64;
  runs : int;
  ns_per_run : float;
  host_mips : float;
  stall_causes : (string * int64) list;
}

let configurations =
  [ ("reference", Config.reference);
    ("fast-comparable", Config.fast_comparable) ]

(* Host-MIPS anchors measured at the pre-event-engine seed (commit
   45c755d), whose only scheduler was the per-cycle ROB/LSQ scan, with
   this module's exact protocol (same grid, 1 warm-up + best-of-5
   wall-clock) on the same host class. They let every later
   BENCH_engine.json report the engine-core trajectory against the
   baseline this work started from — the in-binary scan oracle is not
   that baseline, because it shares the representation optimizations
   (int producer links, int stats counters, flat rings, unboxed heap
   keys) that the event-engine work introduced. Cycle counts at the
   seed match the current engines exactly, so the anchor divides out
   simulated work, leaving pure host-throughput change. *)
let seed_baseline =
  [ ("gzip", "reference", 0.9363);
    ("gzip", "fast-comparable", 0.9959);
    ("bzip2", "reference", 1.0225);
    ("bzip2", "fast-comparable", 1.1063);
    ("vortex", "reference", 1.0117);
    ("vortex", "fast-comparable", 1.0612);
    ("twolf", "reference", 0.9643);
    ("twolf", "fast-comparable", 1.0093) ]

(* Anchors were measured on the full grid's scales, so only full-grid
   measurements are comparable (quick mode shrinks the gzip trace,
   which inflates MIPS and would fabricate a speedup). *)
let seed_scale = function "gzip" -> Some 8192 | _ -> None

let seed_mips ~kernel ~scale ~config_name =
  if scale <> seed_scale kernel then None
  else
    List.find_map
      (fun (k, c, mips) ->
        if String.equal k kernel && String.equal c config_name then Some mips
        else None)
      seed_baseline

let schedulers = [ Config.Scan; Config.Event ]

let grid ~quick =
  if quick then [ ("gzip", Some 1024) ]
  else [ ("gzip", Some 8192); ("bzip2", None); ("vortex", None);
         ("twolf", None) ]

(* Best-of-n wall-clock timing after one warm-up run: the warm-up pays
   one-time costs (page faults, branch-predictor tables, GC ramp-up)
   and best-of-n suppresses host noise. *)
let time_best ~runs f =
  ignore (f ());
  let best = ref infinity in
  for _ = 1 to runs do
    let started = Unix.gettimeofday () in
    ignore (f ());
    let elapsed = Unix.gettimeofday () -. started in
    if elapsed < !best then best := elapsed
  done;
  !best

let measure ?(quick = false) () =
  (* Best-of-n keeps the minimum, so extra runs only sharpen the floor;
     9 rides out multi-second host-load bursts that best-of-5 did not. *)
  let runs = if quick then 2 else 9 in
  List.concat_map
    (fun (kernel_name, scale) ->
      let kernel = Resim_workloads.Workload.find kernel_name in
      let program =
        match scale with
        | Some scale ->
            Resim_workloads.Workload.program_of kernel ~scale ()
        | None -> Resim_workloads.Workload.program_of kernel ()
      in
      let generated = Resim_tracegen.Generator.run program in
      let records = generated.records in
      List.concat_map
        (fun (config_name, config) ->
          List.map
            (fun scheduler ->
              let config = { config with Config.scheduler } in
              let stats = ref (Stats.create ()) in
              let seconds =
                time_best ~runs (fun () ->
                    stats := Engine.simulate ~config records)
              in
              let ns_per_run = seconds *. 1e9 in
              let host_mips =
                if seconds > 0.0 then
                  float_of_int generated.correct_path /. seconds /. 1e6
                else 0.0
              in
              { kernel = kernel_name;
                scale;
                config_name;
                scheduler = Config.scheduler_name scheduler;
                instructions = generated.correct_path;
                record_count = Array.length records;
                cycles = Stats.get Stats.major_cycles !stats;
                runs;
                ns_per_run;
                host_mips;
                stall_causes = Stats.stall_causes !stats })
            schedulers)
        configurations)
    (grid ~quick)

(* ------------------------------------------------------------------ *)
(* Sampled simulation (DESIGN.md §13): the same engine-only protocol,
   comparing a full detailed run against the sampling driver on the
   identical pre-generated trace. [speedup] is the per-point full/
   sampled wall ratio; [covered] asserts the statistical contract —
   the full-run IPC falls inside the sampled 95% confidence
   interval. *)

type sampled_measurement = {
  s_kernel : string;
  s_scale : int option;
  s_config_name : string;
  spec : Resim_sample.Sample.spec;
  intervals : int;
  mean_ipc : float;
  ci95 : float;  (* infinity when under two intervals *)
  full_ipc : float;
  covered : bool;
  detailed_instructions : int;
  warmed_instructions : int;
  full_ns : float;
  sampled_ns : float;
  sample_speedup : float;
}

let sampled_spec ~quick =
  (* 5% detail. The quick trace is small, so a short period keeps
     enough intervals for a finite confidence interval. *)
  if quick then { Resim_sample.Sample.detail = 100; warmup = 1900; seed = 7 }
  else { Resim_sample.Sample.detail = 1000; warmup = 19000; seed = 7 }

let measure_sampled ?(quick = false) () =
  let runs = if quick then 2 else 9 in
  let spec = sampled_spec ~quick in
  let config = Config.reference in
  List.map
    (fun (kernel_name, scale) ->
      let kernel = Resim_workloads.Workload.find kernel_name in
      let program =
        match scale with
        | Some scale ->
            Resim_workloads.Workload.program_of kernel ~scale ()
        | None -> Resim_workloads.Workload.program_of kernel ()
      in
      let generated = Resim_tracegen.Generator.run program in
      let records = generated.records in
      let full_stats = ref (Stats.create ()) in
      let full_seconds =
        time_best ~runs (fun () ->
            full_stats := Engine.simulate ~config records)
      in
      let report = ref None in
      let sampled_seconds =
        time_best ~runs (fun () ->
            let cell = ref None in
            let engine = Engine.create ~config records in
            ignore
              (Resim_sample.Sample.driver ~spec cell engine
                : Engine.bounded);
            report := !cell)
      in
      let report =
        match !report with Some report -> report | None -> assert false
      in
      let full_ipc = Stats.ipc !full_stats in
      { s_kernel = kernel_name;
        s_scale = scale;
        s_config_name = "reference";
        spec;
        intervals = List.length report.Resim_sample.Sample.intervals;
        mean_ipc = report.Resim_sample.Sample.mean_ipc;
        ci95 = report.Resim_sample.Sample.ci95;
        full_ipc;
        covered = Resim_sample.Sample.covers report full_ipc;
        detailed_instructions =
          report.Resim_sample.Sample.detailed_instructions;
        warmed_instructions =
          report.Resim_sample.Sample.warmed_instructions;
        full_ns = full_seconds *. 1e9;
        sampled_ns = sampled_seconds *. 1e9;
        sample_speedup =
          (if sampled_seconds > 0.0 then full_seconds /. sampled_seconds
           else 0.0) })
    (grid ~quick)

let pp_sampled ppf sampled =
  Format.fprintf ppf "@[<v>%-8s %-14s %5s %18s %8s %10s %10s %8s@,"
    "kernel" "spec" "ivals" "IPC (sampled)" "full" "full ms" "sampl ms"
    "speedup";
  List.iter
    (fun s ->
      Format.fprintf ppf
        "%-8s %-14s %5d %9.4f +- %6.4f %8.4f %10.2f %10.2f %7.2fx%s@,"
        s.s_kernel
        (Resim_sample.Sample.spec_to_string s.spec)
        s.intervals s.mean_ipc s.ci95 s.full_ipc (s.full_ns /. 1e6)
        (s.sampled_ns /. 1e6) s.sample_speedup
        (if s.covered then "" else "  [CI MISS]"))
    sampled;
  Format.fprintf ppf "@]"

let find measurements ~kernel ~config_name ~scheduler =
  List.find_opt
    (fun m ->
      String.equal m.kernel kernel
      && String.equal m.config_name config_name
      && String.equal m.scheduler scheduler)
    measurements

let speedup measurements ~kernel ~config_name =
  match
    ( find measurements ~kernel ~config_name ~scheduler:"scan",
      find measurements ~kernel ~config_name ~scheduler:"event" )
  with
  | Some scan, Some event when scan.host_mips > 0.0 ->
      Some (event.host_mips /. scan.host_mips)
  | _ -> None

let speedup_vs_seed measurements ~kernel ~config_name =
  match find measurements ~kernel ~config_name ~scheduler:"event" with
  | Some event -> (
      match seed_mips ~kernel ~scale:event.scale ~config_name with
      | Some baseline when baseline > 0.0 ->
          Some (event.host_mips /. baseline)
      | Some _ | None -> None)
  | None -> None

(* ------------------------------------------------------------------ *)
(* Specialized-engine bench (DESIGN.md §14): the same protocol with a
   staged variant installed before timing, against the reference
   configuration — the grid the specialization registry covers. Each
   point's speedup divides by the *generic* measurement of the same
   (kernel, scheduler) from the main grid, so the ratio isolates what
   installing the variant buys on identical simulated work. *)

type specialized_measurement = {
  z_kernel : string;
  z_scale : int option;
  z_scheduler : string;
  z_variant : string;
  z_cycles : int64;
  z_runs : int;
  z_ns_per_run : float;
  z_host_mips : float;
  z_speedup : float option;
      (** over the generic reference measurement, same scheduler *)
}

let measure_specialized ?(quick = false) measurements =
  let runs = if quick then 2 else 9 in
  List.concat_map
    (fun (kernel_name, scale) ->
      let kernel = Resim_workloads.Workload.find kernel_name in
      let program =
        match scale with
        | Some scale ->
            Resim_workloads.Workload.program_of kernel ~scale ()
        | None -> Resim_workloads.Workload.program_of kernel ()
      in
      let generated = Resim_tracegen.Generator.run program in
      let records = generated.records in
      List.filter_map
        (fun scheduler ->
          let config = { Config.reference with Config.scheduler } in
          match Resim_spec.Spec.select config with
          | None -> None
          | Some (module V : Resim_spec.Spec.VARIANT) ->
              let stats = ref (Stats.create ()) in
              let seconds =
                time_best ~runs (fun () ->
                    let engine = Engine.create ~config records in
                    V.install engine;
                    stats := Engine.run engine)
              in
              let host_mips =
                if seconds > 0.0 then
                  float_of_int generated.correct_path /. seconds /. 1e6
                else 0.0
              in
              let generic =
                find measurements ~kernel:kernel_name
                  ~config_name:"reference"
                  ~scheduler:(Config.scheduler_name scheduler)
              in
              let z_speedup =
                match generic with
                | Some g when g.host_mips > 0.0 && host_mips > 0.0 ->
                    Some (host_mips /. g.host_mips)
                | Some _ | None -> None
              in
              Some
                { z_kernel = kernel_name;
                  z_scale = scale;
                  z_scheduler = Config.scheduler_name scheduler;
                  z_variant = V.name;
                  z_cycles = Stats.get Stats.major_cycles !stats;
                  z_runs = runs;
                  z_ns_per_run = seconds *. 1e9;
                  z_host_mips = host_mips;
                  z_speedup })
        schedulers)
    (grid ~quick)

let specialized_geomean ?scheduler specialized =
  let ratios =
    List.filter_map
      (fun z ->
        match scheduler with
        | Some s when not (String.equal s z.z_scheduler) -> None
        | Some _ | None -> z.z_speedup)
      specialized
  in
  match ratios with
  | [] -> None
  | ratios ->
      Some
        (exp
           (List.fold_left (fun acc r -> acc +. log r) 0.0 ratios
           /. float_of_int (List.length ratios)))

let pp_specialized ppf specialized =
  Format.fprintf ppf "@[<v>%-8s %-20s %-6s %12s %12s %10s %9s@,"
    "kernel" "variant" "sched" "cycles" "ns/run" "host MIPS" "speedup";
  List.iter
    (fun z ->
      Format.fprintf ppf "%-8s %-20s %-6s %12Ld %12.0f %10.3f %s@,"
        z.z_kernel z.z_variant z.z_scheduler z.z_cycles z.z_ns_per_run
        z.z_host_mips
        (match z.z_speedup with
        | Some ratio -> Printf.sprintf "%8.2fx" ratio
        | None -> "       -"))
    specialized;
  (match specialized_geomean ~scheduler:"event" specialized with
  | Some geomean ->
      Format.fprintf ppf "geomean over generic event: %.2fx@," geomean
  | None -> ());
  Format.fprintf ppf "@]"

let pp_table ppf measurements =
  Format.fprintf ppf "@[<v>%-8s %-16s %-6s %12s %12s %10s@," "kernel"
    "config" "sched" "cycles" "ns/run" "host MIPS";
  List.iter
    (fun m ->
      Format.fprintf ppf "%-8s %-16s %-6s %12Ld %12.0f %10.3f" m.kernel
        m.config_name m.scheduler m.cycles m.ns_per_run m.host_mips;
      if String.equal m.scheduler "event" then begin
        (match speedup measurements ~kernel:m.kernel
                 ~config_name:m.config_name
         with
        | Some ratio -> Format.fprintf ppf "   (%.2fx vs scan" ratio
        | None -> Format.fprintf ppf "   (");
        (match speedup_vs_seed measurements ~kernel:m.kernel
                 ~config_name:m.config_name
         with
        | Some ratio -> Format.fprintf ppf ", %.2fx vs seed)@," ratio
        | None -> Format.fprintf ppf ")@,")
      end
      else Format.fprintf ppf "@,")
    measurements;
  Format.fprintf ppf "@]"

(* Hand-rolled JSON: the repository deliberately has no JSON dependency.
   Free-form strings go through the shared escape helper so no kernel or
   configuration name can break the document. *)
let json_escape = Resim_core.Json.escape

let to_json ?sweep_outcomes ?sampled ?specialized measurements =
  let buffer = Buffer.create 4096 in
  Buffer.add_string buffer "{\n";
  Buffer.add_string buffer "  \"benchmark\": \"resim-engine-host-throughput\",\n";
  Buffer.add_string buffer
    (Printf.sprintf "  \"version\": \"%s\",\n"
       (json_escape Resim_core.Resim.version));
  (match sweep_outcomes with
  | None ->
      (* Quick runs skip the sweep section; null keeps the key present
         so downstream readers need no schema branching. *)
      Buffer.add_string buffer "  \"sweep_outcomes\": null,\n"
  | Some (c : Resim_sweep.Sweep.counts) ->
      Buffer.add_string buffer
        (Printf.sprintf
           "  \"sweep_outcomes\": {\"ok\": %d, \"failed\": %d, \
            \"timed_out\": %d, \"truncated\": %d, \"retried\": %d},\n"
           c.ok c.failed c.timed_out c.truncated c.retried));
  Buffer.add_string buffer "  \"measurements\": [\n";
  List.iteri
    (fun index m ->
      let stalls =
        String.concat ", "
          (List.map
             (fun (name, value) -> Printf.sprintf "\"%s\": %Ld" name value)
             m.stall_causes)
      in
      Buffer.add_string buffer
        (Printf.sprintf
           "    {\"kernel\": \"%s\", \"scale\": %s, \"config\": \"%s\", \
            \"scheduler\": \"%s\", \"instructions\": %d, \"records\": %d, \
            \"cycles\": %Ld, \"runs\": %d, \"ns_per_run\": %.0f, \
            \"host_mips\": %.4f, \"stalls\": {%s}}%s\n"
           (json_escape m.kernel)
           (match m.scale with Some s -> string_of_int s | None -> "null")
           (json_escape m.config_name)
           (json_escape m.scheduler)
           m.instructions m.record_count m.cycles m.runs m.ns_per_run
           m.host_mips stalls
           (if index = List.length measurements - 1 then "" else ",")))
    measurements;
  Buffer.add_string buffer "  ],\n";
  Buffer.add_string buffer
    "  \"baseline\": {\"commit\": \"45c755d\", \"scheduler\": \"scan\", \
     \"note\": \"pre-event-engine seed, same protocol and host class\", \
     \"host_mips\": [\n";
  List.iteri
    (fun index (kernel, config_name, mips) ->
      Buffer.add_string buffer
        (Printf.sprintf
           "    {\"kernel\": \"%s\", \"config\": \"%s\", \
            \"host_mips\": %.4f}%s\n"
           (json_escape kernel) (json_escape config_name) mips
           (if index = List.length seed_baseline - 1 then "" else ",")))
    seed_baseline;
  Buffer.add_string buffer "  ]},\n";
  Buffer.add_string buffer "  \"speedups\": [\n";
  let points =
    List.filter_map
      (fun m ->
        if String.equal m.scheduler "event" then
          match speedup measurements ~kernel:m.kernel
                  ~config_name:m.config_name
          with
          | Some ratio -> Some (m.kernel, m.config_name, ratio)
          | None -> None
        else None)
      measurements
  in
  List.iteri
    (fun index (kernel, config_name, ratio) ->
      let vs_seed =
        match speedup_vs_seed measurements ~kernel ~config_name with
        | Some ratio -> Printf.sprintf ", \"event_over_seed\": %.4f" ratio
        | None -> ""
      in
      Buffer.add_string buffer
        (Printf.sprintf
           "    {\"kernel\": \"%s\", \"config\": \"%s\", \
            \"event_over_scan\": %.4f%s}%s\n"
           (json_escape kernel) (json_escape config_name) ratio vs_seed
           (if index = List.length points - 1 then "" else ",")))
    points;
  Buffer.add_string buffer "  ],\n";
  (match specialized with
  | None -> Buffer.add_string buffer "  \"specialized\": null,\n"
  | Some specialized ->
      Buffer.add_string buffer "  \"specialized\": {\n";
      (match specialized_geomean ~scheduler:"event" specialized with
      | Some geomean ->
          Buffer.add_string buffer
            (Printf.sprintf
               "    \"geomean_event_speedup\": %.4f,\n" geomean)
      | None ->
          Buffer.add_string buffer
            "    \"geomean_event_speedup\": null,\n");
      Buffer.add_string buffer "    \"points\": [\n";
      List.iteri
        (fun index z ->
          Buffer.add_string buffer
            (Printf.sprintf
               "      {\"kernel\": \"%s\", \"scale\": %s, \"scheduler\": \
                \"%s\", \"variant\": \"%s\", \"cycles\": %Ld, \"runs\": \
                %d, \"ns_per_run\": %.0f, \"host_mips\": %.4f, \
                \"speedup_vs_generic\": %s}%s\n"
               (json_escape z.z_kernel)
               (match z.z_scale with
               | Some scale -> string_of_int scale
               | None -> "null")
               (json_escape z.z_scheduler)
               (json_escape z.z_variant)
               z.z_cycles z.z_runs z.z_ns_per_run z.z_host_mips
               (match z.z_speedup with
               | Some ratio -> Printf.sprintf "%.4f" ratio
               | None -> "null")
               (if index = List.length specialized - 1 then "" else ",")))
        specialized;
      Buffer.add_string buffer "    ]\n";
      Buffer.add_string buffer "  },\n");
  (match sampled with
  | None -> Buffer.add_string buffer "  \"sampled\": null\n"
  | Some sampled ->
      Buffer.add_string buffer "  \"sampled\": [\n";
      List.iteri
        (fun index s ->
          Buffer.add_string buffer
            (Printf.sprintf
               "    {\"kernel\": \"%s\", \"scale\": %s, \"config\": \
                \"%s\", \"spec\": \"%s\", \"intervals\": %d, \
                \"mean_ipc\": %.4f, \"ci95\": %s, \"full_ipc\": %.4f, \
                \"covered\": %b, \"detailed_instructions\": %d, \
                \"warmed_instructions\": %d, \"full_ns\": %.0f, \
                \"sampled_ns\": %.0f, \"speedup\": %.4f}%s\n"
               (json_escape s.s_kernel)
               (match s.s_scale with
               | Some scale -> string_of_int scale
               | None -> "null")
               (json_escape s.s_config_name)
               (json_escape (Resim_sample.Sample.spec_to_string s.spec))
               s.intervals s.mean_ipc
               (if Float.is_finite s.ci95 then
                  Printf.sprintf "%.4f" s.ci95
                else "null")
               s.full_ipc s.covered s.detailed_instructions
               s.warmed_instructions s.full_ns s.sampled_ns
               s.sample_speedup
               (if index = List.length sampled - 1 then "" else ",")))
        sampled;
      Buffer.add_string buffer "  ]\n");
  Buffer.add_string buffer "}\n";
  Buffer.contents buffer

let write_json ~path ?sweep_outcomes ?sampled ?specialized measurements =
  let channel = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out channel)
    (fun () ->
      output_string channel
        (to_json ?sweep_outcomes ?sampled ?specialized measurements))
