(** Host-throughput measurement of the timing engine, tracked across
    PRs as machine-readable JSON ([BENCH_engine.json]).

    Each measurement runs the engine on a pre-generated kernel trace and
    reports host MIPS (simulated correct-path instructions per host
    microsecond... reported as millions per second) for one
    (kernel, configuration, scheduler) point, so the Scan-oracle versus
    Event-scheduler speedup is recorded per configuration. *)

type measurement = {
  kernel : string;
  scale : int option;          (** [None] = the kernel's default scale *)
  config_name : string;        (** "reference" | "fast-comparable" *)
  scheduler : string;          (** {!Resim_core.Config.scheduler_name} *)
  instructions : int;          (** correct-path instructions per run *)
  record_count : int;          (** trace records (incl. wrong path) *)
  cycles : int64;              (** simulated major cycles *)
  runs : int;                  (** timed repetitions (best is kept) *)
  ns_per_run : float;
  host_mips : float;
  stall_causes : (string * int64) list;
      (** {!Resim_core.Stats.stall_causes} of the measured run — the
          same simulated work every timed repetition re-does *)
}

val measure : ?quick:bool -> unit -> measurement list
(** Run the measurement grid. [quick] (default [false]) shrinks it to a
    single small kernel for smoke tests; the full grid covers several
    kernels, both paper configurations and both schedulers. *)

val pp_table : Format.formatter -> measurement list -> unit
(** Human-readable table, with a per-(kernel, config) Event/Scan
    speedup column. *)

val speedup : measurement list -> kernel:string -> config_name:string -> float option
(** Event-over-Scan host-MIPS ratio for one grid point, when both
    measurements are present. The in-binary Scan oracle shares the
    representation optimizations introduced with the event engine, so
    this ratio understates the engine-core trajectory; see
    {!speedup_vs_seed}. *)

val seed_baseline : (string * string * float) list
(** [(kernel, config, host_mips)] anchors measured at the
    pre-event-engine seed commit (scan-only engine) with the same
    protocol and host class. *)

val speedup_vs_seed :
  measurement list -> kernel:string -> config_name:string -> float option
(** Event host-MIPS over the {!seed_baseline} anchor for one grid
    point — the end-to-end engine-core speedup this optimization work
    delivered. *)

val to_json :
  ?sweep_outcomes:Resim_sweep.Sweep.counts -> measurement list -> string
(** The full JSON document (pretty-printed, schema documented in
    README). [sweep_outcomes] are the per-job outcome counts from the
    harness's full-grid sweep (ok/failed/timed_out/truncated/retried);
    when absent — e.g. quick mode — the key is emitted as [null]. *)

val write_json :
  path:string ->
  ?sweep_outcomes:Resim_sweep.Sweep.counts ->
  measurement list ->
  unit
(** [to_json] to a file. *)
