(** Host-throughput measurement of the timing engine, tracked across
    PRs as machine-readable JSON ([BENCH_engine.json]).

    Each measurement runs the engine on a pre-generated kernel trace and
    reports host MIPS (simulated correct-path instructions per host
    microsecond... reported as millions per second) for one
    (kernel, configuration, scheduler) point, so the Scan-oracle versus
    Event-scheduler speedup is recorded per configuration. *)

type measurement = {
  kernel : string;
  scale : int option;          (** [None] = the kernel's default scale *)
  config_name : string;        (** "reference" | "fast-comparable" *)
  scheduler : string;          (** {!Resim_core.Config.scheduler_name} *)
  instructions : int;          (** correct-path instructions per run *)
  record_count : int;          (** trace records (incl. wrong path) *)
  cycles : int64;              (** simulated major cycles *)
  runs : int;                  (** timed repetitions (best is kept) *)
  ns_per_run : float;
  host_mips : float;
  stall_causes : (string * int64) list;
      (** {!Resim_core.Stats.stall_causes} of the measured run — the
          same simulated work every timed repetition re-does *)
}

val measure : ?quick:bool -> unit -> measurement list
(** Run the measurement grid. [quick] (default [false]) shrinks it to a
    single small kernel for smoke tests; the full grid covers several
    kernels, both paper configurations and both schedulers. *)

val pp_table : Format.formatter -> measurement list -> unit
(** Human-readable table, with a per-(kernel, config) Event/Scan
    speedup column. *)

val speedup : measurement list -> kernel:string -> config_name:string -> float option
(** Event-over-Scan host-MIPS ratio for one grid point, when both
    measurements are present. The in-binary Scan oracle shares the
    representation optimizations introduced with the event engine, so
    this ratio understates the engine-core trajectory; see
    {!speedup_vs_seed}. *)

val seed_baseline : (string * string * float) list
(** [(kernel, config, host_mips)] anchors measured at the
    pre-event-engine seed commit (scan-only engine) with the same
    protocol and host class. *)

val speedup_vs_seed :
  measurement list -> kernel:string -> config_name:string -> float option
(** Event host-MIPS over the {!seed_baseline} anchor for one grid
    point — the end-to-end engine-core speedup this optimization work
    delivered. *)

(** {1 Specialized-engine bench (DESIGN.md §14)} *)

type specialized_measurement = {
  z_kernel : string;
  z_scale : int option;
  z_scheduler : string;
  z_variant : string;  (** the installed {!Resim_spec.Spec} variant *)
  z_cycles : int64;  (** bit-identical to the generic run by contract *)
  z_runs : int;
  z_ns_per_run : float;
  z_host_mips : float;
  z_speedup : float option;
      (** specialized over *generic* host MIPS, same (kernel,
          scheduler) reference point from the main grid; [None] when
          the generic measurement is missing *)
}

val measure_specialized :
  ?quick:bool -> measurement list -> specialized_measurement list
(** Re-run the bench kernels at the reference configuration (both
    schedulers) with the matching staged variant installed — same
    trace, same best-of-n protocol. [measurements] supplies the
    generic baselines the speedups divide by; kernels whose
    configuration has no registry variant are skipped. *)

val specialized_geomean :
  ?scheduler:string -> specialized_measurement list -> float option
(** Geometric mean of the available speedups, optionally restricted to
    one scheduler ("event" is the headline gate). *)

val pp_specialized :
  Format.formatter -> specialized_measurement list -> unit

(** {1 Sampled simulation bench (DESIGN.md §13)} *)

type sampled_measurement = {
  s_kernel : string;
  s_scale : int option;
  s_config_name : string;
  spec : Resim_sample.Sample.spec;
  intervals : int;
  mean_ipc : float;  (** the sampled estimate *)
  ci95 : float;  (** [infinity] below two intervals (JSON [null]) *)
  full_ipc : float;  (** the full detailed run on the same trace *)
  covered : bool;  (** full-run IPC inside the sampled 95% CI *)
  detailed_instructions : int;
  warmed_instructions : int;
  full_ns : float;  (** best-of-n full detailed engine run *)
  sampled_ns : float;  (** best-of-n sampling-driver run *)
  sample_speedup : float;  (** [full_ns /. sampled_ns] *)
}

val measure_sampled : ?quick:bool -> unit -> sampled_measurement list
(** Engine-only comparison of a full detailed run against the sampling
    driver on the identical pre-generated trace, one point per bench
    kernel, reference configuration. The [covered] flag per point is
    the statistical acceptance gate; the speedup column is the
    host-throughput gain the sampling subsystem delivers. *)

val pp_sampled : Format.formatter -> sampled_measurement list -> unit

val to_json :
  ?sweep_outcomes:Resim_sweep.Sweep.counts ->
  ?sampled:sampled_measurement list ->
  ?specialized:specialized_measurement list ->
  measurement list ->
  string
(** The full JSON document (pretty-printed, schema documented in
    README). [sweep_outcomes] are the per-job outcome counts from the
    harness's full-grid sweep (ok/failed/timed_out/truncated/retried);
    when absent — e.g. quick mode — the key is emitted as [null].
    [sampled] is the sampled-simulation section; [specialized] the
    staged-engine section (with its event-scheduler geomean speedup);
    each is [null] when absent. *)

val write_json :
  path:string ->
  ?sweep_outcomes:Resim_sweep.Sweep.counts ->
  ?sampled:sampled_measurement list ->
  ?specialized:specialized_measurement list ->
  measurement list ->
  unit
(** [to_json] to a file. *)
