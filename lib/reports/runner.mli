(** Shared experiment runner with memoisation.

    Tables 1 and 3 and several ablations reuse the same
    (kernel, configuration, scale) simulations; traces and outcomes are
    memoised so each experiment runs once per bench invocation. The
    cache is keyed structurally on the full {!Resim_core.Config.t} (a
    configuration change can never alias a stale entry) and is
    mutex-guarded, so {!run_kernel} may be called from several domains
    at once — in particular by a {!Resim_sweep.Sweep} run seeded
    through {!prewarm}. *)

type run = {
  kernel : string;
  config : Resim_core.Config.t;
  generated : Resim_tracegen.Generator.result;
  outcome : Resim_core.Resim.outcome;
}

(** Which input size to run a kernel at. *)
type scale_spec =
  | Evaluation      (** the kernel's [evaluation_scale] — table runs *)
  | Default         (** the kernel's default scale — quick ablations *)
  | Exact of int

val run_kernel :
  key:string ->
  config:Resim_core.Config.t ->
  ?scale:scale_spec ->
  Resim_workloads.Workload.t ->
  run
(** [key] is a display label naming the experiment (e.g. ["table1-left"]);
    memoisation identity comes from the configuration itself. [scale]
    defaults to [Evaluation].

    Every uncached run executes through {!Resim_sweep.Sweep.run_job},
    so the configuration passes the resim-check validator first:
    {!Resim_sweep.Sweep.Invalid_config} is raised (naming the failing
    fields) before any trace generation. The same holds for
    {!prewarm}, which validates the whole batch before spawning
    domains. *)

val clear_cache : unit -> unit

(** {1 Batch (domain-parallel) execution} *)

(** One memoisable simulation: what {!run_kernel} would run. *)
type request = {
  key : string;
  workload : Resim_workloads.Workload.t;
  config : Resim_core.Config.t;
  scale : scale_spec;
}

val request :
  key:string ->
  config:Resim_core.Config.t ->
  ?scale:scale_spec ->
  Resim_workloads.Workload.t ->
  request

val job_of_request : request -> Resim_sweep.Sweep.job
(** The sweep job computing exactly what {!run_kernel} computes for the
    request, labelled ["key:kernel"]. *)

val prewarm : ?jobs:int -> request list -> unit
(** Run every not-yet-cached request as one domain-parallel sweep
    ([jobs] defaults to the host's recommended domain count) and seed
    the memo cache, so subsequent {!run_kernel} calls hit. Duplicate
    and already-cached requests are skipped. *)

val mips : run -> device:Resim_fpga.Device.t -> float
val mips_wrong_path : run -> device:Resim_fpga.Device.t -> float
