type run = {
  kernel : string;
  config : Resim_core.Config.t;
  generated : Resim_tracegen.Generator.result;
  outcome : Resim_core.Resim.outcome;
}

type scale_spec = Evaluation | Default | Exact of int

(* The memo key is the full structural identity of a simulation: the
   kernel, the resolved scale and the complete engine configuration
   (which also determines the trace generator). Config.t is plain data,
   so polymorphic equality/hashing are exact. The table is shared
   between domains and every access is mutex-guarded; misses are
   computed outside the lock (a racing duplicate computation is
   harmless — the first store wins and both callers get it). *)
type cache_key = {
  ck_kernel : string;
  ck_scale : int;
  ck_config : Resim_core.Config.t;
}

let mutex = Mutex.create ()
let cache : (cache_key, run) Hashtbl.t = Hashtbl.create 32

let find key =
  Resim_core.Sync.with_lock mutex (fun () -> Hashtbl.find_opt cache key)

(* Returns the winning entry so racing callers share one [run]. *)
let store key run =
  Resim_core.Sync.with_lock mutex (fun () ->
      match Hashtbl.find_opt cache key with
      | Some existing -> existing
      | None ->
          Hashtbl.add cache key run;
          run)

let clear_cache () =
  Resim_core.Sync.with_lock mutex (fun () -> Hashtbl.reset cache)

let scale_tag workload scale =
  let module K = (val workload : Resim_workloads.Kernel_sig.S) in
  match scale with
  | Evaluation -> K.evaluation_scale
  | Default -> -1
  | Exact scale -> scale

let cache_key workload config scale =
  let module K = (val workload : Resim_workloads.Kernel_sig.S) in
  { ck_kernel = K.name; ck_scale = scale_tag workload scale;
    ck_config = config }

type request = {
  key : string;
  workload : Resim_workloads.Workload.t;
  config : Resim_core.Config.t;
  scale : scale_spec;
}

let request ~key ~config ?(scale = Evaluation) workload =
  { key; workload; config; scale }

let sweep_scale = function
  | Evaluation -> Resim_sweep.Sweep.Evaluation
  | Default -> Resim_sweep.Sweep.Default
  | Exact scale -> Resim_sweep.Sweep.Exact scale

let job_of_request request =
  let module K = (val request.workload : Resim_workloads.Kernel_sig.S) in
  Resim_sweep.Sweep.job
    ~label:(request.key ^ ":" ^ K.name)
    ~scale:(sweep_scale request.scale) ~config:request.config
    request.workload

let run_of_result (result : Resim_sweep.Sweep.result) =
  { kernel = Resim_workloads.Workload.name_of result.job.workload;
    config = result.job.config;
    generated = result.generated;
    outcome = result.outcome }

let run_kernel ~key ~config ?(scale = Evaluation) workload =
  let cache_key = cache_key workload config scale in
  match find cache_key with
  | Some run -> run
  | None ->
      let result =
        Resim_sweep.Sweep.run_job
          (job_of_request (request ~key ~config ~scale workload))
      in
      store cache_key (run_of_result result)

let prewarm ?jobs requests =
  let seen = Hashtbl.create 16 in
  let missing =
    List.filter
      (fun request ->
        let cache_key =
          cache_key request.workload request.config request.scale
        in
        if Hashtbl.mem seen cache_key || find cache_key <> None then false
        else begin
          Hashtbl.add seen cache_key ();
          true
        end)
      requests
  in
  (* Strict: report-table inputs must all succeed, and the fail-fast
     contract keeps the [iter2] below total (completed = all jobs). *)
  let results =
    Resim_sweep.Sweep.completed
      (Resim_sweep.Sweep.run ~strict:true ?jobs
         (List.map job_of_request missing))
  in
  List.iter2
    (fun request result ->
      ignore
        (store
           (cache_key request.workload request.config request.scale)
           (run_of_result result)))
    missing results

let mips run ~device = Resim_core.Resim.mips run.outcome ~device

let mips_wrong_path run ~device =
  Resim_core.Resim.mips_with_wrong_path run.outcome ~device
