(** Ablation studies over the design choices DESIGN.md calls out.

    All use the gzip kernel at its default (small) scale unless noted,
    so they run in seconds; the conclusions are scale-independent. *)

val print_organizations : Format.formatter -> unit
(** The paper's central claim (§IV): the three internal organizations
    are timing-equivalent at major-cycle granularity and differ only in
    minor cycles per major cycle — same simulated cycles, different
    simulation MIPS. *)

val print_width_sweep : Format.formatter -> unit
(** Issue width 1/2/4/8: simulated IPC, simulation MIPS, and modelled
    area; shows the simulation-speed cost of simulating wider
    processors (L grows with N). *)

val print_rob_sweep : Format.formatter -> unit
(** Reorder-buffer size 8/16/32/64 at fixed width: the design-space
    exploration use case ReSim is built for. *)

val print_serial_vs_parallel : Format.formatter -> unit
(** The §IV measurement that motivated serial execution: a parallel
    N-wide implementation costs ~Nx area and is 22 % slower at N = 4.
    Compares modelled simulation throughput per FPGA slice. *)

val print_encoding : Format.formatter -> unit
(** Trace-format ablation: Fixed (paper-style) vs Compact (delta)
    encodings — bits/instruction and bandwidth demand. *)

val print_predictors : Format.formatter -> unit
(** Predictor sweep on the generator/engine pair: misprediction rate and
    simulated IPC across predictor configurations. *)

val print_l2 : Format.formatter -> unit
(** Flat L1 (the paper's memory system) vs an added unified 256 KB L2 on
    the cache-sensitive kernels — an extension study. *)

val print_cosim : Format.formatter -> unit
(** On-the-fly co-simulation (FAST-style streaming, §VI future work) vs
    the offline generate-then-simulate pipeline: identical timing,
    bounded buffering. *)

val print_in_order : Format.formatter -> unit
(** Out-of-order vs the in-order 5-stage baseline on the same traces. *)

val requests : unit -> Runner.request list
(** The full ablation grid: every memoisable (kernel, configuration,
    scale) simulation the ablations and Tables 1/3 run — the Table 1
    left/right columns over all five kernels, the gzip ablation
    configurations (reference and the width-sweep variants) and the
    default-scale runs of the in-order comparison. Ordered and
    duplicate-free, so it can be handed to {!Runner.prewarm} or run
    directly as a {!Resim_sweep.Sweep}. *)

val prewarm : ?jobs:int -> unit -> unit
(** [Runner.prewarm ?jobs (requests ())]. *)

val print_all : ?jobs:int -> Format.formatter -> unit
(** Prewarms the grid across [jobs] worker domains (default: the host's
    recommended domain count), then prints every ablation; the printed
    output is identical at any [jobs] value. *)
