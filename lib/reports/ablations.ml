module Config = Resim_core.Config
module Stats = Resim_core.Stats

let v5 = Resim_fpga.Device.virtex5_xc5vlx50t
let gzip () = Resim_workloads.Workload.find "gzip"

let gzip_trace ~config =
  let run = Runner.run_kernel ~key:"ablation" ~config ~scale:(Runner.Exact 8192) (gzip ()) in
  run.Runner.generated.records

let print_organizations ppf =
  let config = Config.reference in
  let records = gzip_trace ~config in
  Format.fprintf ppf
    "@[<v>Ablation: internal pipeline organization (gzip, 4-wide)@,@,\
     %-10s %6s %14s %14s %10s@," "org" "L" "major cycles" "minor cycles"
    "MIPS V5";
  List.iter
    (fun organization ->
      let config = { config with organization } in
      let outcome = Resim_core.Resim.simulate_trace ~config records in
      let majors = Stats.(get major_cycles) outcome.stats in
      Format.fprintf ppf "%-10s %6d %14Ld %14Ld %10.2f@,"
        (Config.organization_name organization)
        (Config.minor_cycle_latency config)
        majors
        (Int64.mul majors (Int64.of_int (Config.minor_cycle_latency config)))
        (Resim_core.Resim.mips outcome ~device:v5))
    [ Config.Simple; Config.Improved; Config.Optimized ];
  Format.fprintf ppf
    "@,(identical major cycles across organizations is the paper's \
     equivalence claim; MIPS scales as 1/L)@]"

let width_config width =
  { Config.reference with
    width;
    ifq_entries = width;
    decouple_entries = width;
    alu_count = width;
    mem_read_ports = max 1 (width / 2);
    mem_write_ports = 1;
    (* Improved organization: valid at every width (Optimized needs
       memory ports <= N-1, impossible at width 1). *)
    organization = Config.Improved }

let area_params (config : Config.t) =
  { Resim_fpga.Area.reference_params with
    width = config.width;
    ifq_entries = config.ifq_entries;
    decouple_entries = config.decouple_entries;
    rob_entries = config.rob_entries;
    lsq_entries = config.lsq_entries }

let print_width_sweep ppf =
  Format.fprintf ppf
    "@[<v>Ablation: simulated issue width (gzip, improved org)@,@,\
     %5s %4s %8s %10s %10s@," "width" "L" "IPC" "MIPS V5" "slices";
  List.iter
    (fun width ->
      let config = width_config width in
      let run =
        Runner.run_kernel ~key:"ablation" ~config
          ~scale:(Runner.Exact 8192) (gzip ())
      in
      let outcome = run.Runner.outcome in
      let area = Resim_fpga.Area.estimate (area_params config) in
      Format.fprintf ppf "%5d %4d %8.3f %10.2f %10d@," width
        (Config.minor_cycle_latency config)
        (Stats.ipc outcome.stats)
        (Resim_core.Resim.mips outcome ~device:v5)
        area.total.slices)
    [ 1; 2; 4; 8 ];
  Format.fprintf ppf "@]"

let print_rob_sweep ppf =
  let base = Config.reference in
  let records = gzip_trace ~config:base in
  Format.fprintf ppf
    "@[<v>Ablation: reorder-buffer size (gzip, 4-wide, perfect \
     memory)@,@,%5s %8s %10s %10s@," "ROB" "IPC" "MIPS V5" "slices";
  List.iter
    (fun rob_entries ->
      let config = { base with rob_entries } in
      let outcome = Resim_core.Resim.simulate_trace ~config records in
      let area = Resim_fpga.Area.estimate (area_params config) in
      Format.fprintf ppf "%5d %8.3f %10.2f %10d@," rob_entries
        (Stats.ipc outcome.stats)
        (Resim_core.Resim.mips outcome ~device:v5)
        area.total.slices)
    [ 8; 16; 32; 64 ];
  Format.fprintf ppf "@]"

let print_serial_vs_parallel ppf =
  let config = Config.reference in
  let records = gzip_trace ~config in
  let outcome = Resim_core.Resim.simulate_trace ~config records in
  let ipc = Stats.ipc outcome.stats in
  Format.fprintf ppf
    "@[<v>Ablation: serial vs parallel ReSim implementation (model; \
     gzip IPC %.3f)@,@,%-10s %8s %6s %10s %12s %14s@," ipc "impl" "MHz"
    "L" "MIPS V5" "rel. area" "MIPS/slice-rel";
  let serial_mhz = Resim_fpga.Frequency.minor_cycle_mhz v5 Serial in
  let serial_l = Config.minor_cycle_latency config in
  let serial_mips = serial_mhz /. float_of_int serial_l *. ipc in
  let print_row name mhz l area_mult =
    let mips = mhz /. float_of_int l *. ipc in
    Format.fprintf ppf "%-10s %8.1f %6d %10.2f %12.1f %14.2f@," name mhz l
      mips area_mult
      (mips /. area_mult /. (serial_mips /. 1.0))
  in
  print_row "serial" serial_mhz serial_l 1.0;
  let parallel = Resim_fpga.Frequency.Parallel { width = config.width } in
  (* A parallel implementation processes all N slots in one go: one
     minor cycle per stage group (fetch/dispatch/issue/wb/commit). *)
  print_row "parallel"
    (Resim_fpga.Frequency.minor_cycle_mhz v5 parallel)
    5
    (Resim_fpga.Frequency.area_multiplier parallel);
  Format.fprintf ppf
    "@,(paper §IV: parallel 4-wide fetch was 4x the cost and 22%% \
     slower — serial wins on throughput per slice)@]"

let print_encoding ppf =
  Format.fprintf ppf
    "@[<v>Ablation: trace encoding (evaluation-scale kernels)@,@,\
     %-8s %12s %12s %10s@," "SPEC" "fixed b/i" "compact b/i" "saving";
  List.iter
    (fun workload ->
      let run =
        Runner.run_kernel ~key:"table1-left" ~config:Config.reference
          workload
      in
      let records = run.Runner.generated.records in
      let fixed = Resim_trace.Codec.bits_per_instruction ~format:Fixed records in
      let compact =
        Resim_trace.Codec.bits_per_instruction ~format:Compact records
      in
      Format.fprintf ppf "%-8s %12.2f %12.2f %9.1f%%@," run.Runner.kernel
        fixed compact
        (100.0 *. (1.0 -. (compact /. fixed))))
    Resim_workloads.Workload.all;
  Format.fprintf ppf "@]"

let print_predictors ppf =
  let program = Resim_workloads.Workload.program_of (gzip ()) ~scale:8192 () in
  Format.fprintf ppf
    "@[<v>Ablation: branch predictor (gzip)@,@,%-22s %12s %8s %10s@,"
    "predictor" "mispredicts" "IPC" "MIPS V5";
  let predictors =
    [ ("perfect", Resim_bpred.Direction.Perfect);
      ("static taken", Resim_bpred.Direction.Static_taken);
      ("static not-taken", Resim_bpred.Direction.Static_not_taken);
      ("bimodal 2k", Resim_bpred.Direction.Bimodal { table_entries = 2048 });
      ("2-level 4/8/4096", Resim_bpred.Direction.two_level_default);
      ("gshare 12/4096",
       Resim_bpred.Direction.Gshare { history_bits = 12; pht_entries = 4096 })
    ]
  in
  List.iter
    (fun (name, direction) ->
      let predictor =
        { Resim_bpred.Predictor.default_config with direction }
      in
      let config = { Config.reference with predictor } in
      let generator =
        { Resim_tracegen.Generator.predictor;
          wrong_path_limit = 20;
          max_instructions = 20_000_000 }
      in
      let generated = Resim_tracegen.Generator.run ~config:generator program in
      let outcome =
        Resim_core.Resim.simulate_trace ~config generated.records
      in
      Format.fprintf ppf "%-22s %12d %8.3f %10.2f@," name
        generated.mispredicted_branches
        (Stats.ipc outcome.stats)
        (Resim_core.Resim.mips outcome ~device:v5))
    predictors;
  Format.fprintf ppf "@]"

let print_l2 ppf =
  let l2_config =
    Resim_cache.Cache.Set_associative
      { size_bytes = 256 * 1024; associativity = 8; block_bytes = 64 }
  in
  (* Matched memory latency: without the L2 a miss goes straight to
     memory (1 + 46); with it, an L2 hit costs 6 and an L2 miss the same
     46 in total. *)
  let memory_latency = 46 in
  let flat_config =
    { Config.fast_comparable with
      cache_timing =
        { Resim_cache.Cache.hit_latency = 1; miss_latency = memory_latency } }
  in
  let l2_config_full =
    { flat_config with
      l2cache = Some l2_config;
      l2_timing =
        { Resim_cache.Cache.hit_latency = 6;
          miss_latency = memory_latency - 6 } }
  in
  Format.fprintf ppf
    "@[<v>Ablation: adding a unified 256 KB L2 (2-wide, perfect BP, 32 KB \
     L1s, 46-cycle memory)@,@,%-8s %12s %12s %10s@," "SPEC" "flat MIPS V5"
    "w/ L2 MIPS" "gain";
  List.iter
    (fun workload ->
      let run =
        Runner.run_kernel ~key:"table1-right"
          ~config:Config.fast_comparable workload
      in
      let records = run.Runner.generated.records in
      let flat =
        Resim_core.Resim.simulate_trace ~config:flat_config records
      in
      let with_l2 =
        Resim_core.Resim.simulate_trace ~config:l2_config_full records
      in
      let mips outcome = Resim_core.Resim.mips outcome ~device:v5 in
      Format.fprintf ppf "%-8s %12.2f %12.2f %9.1f%%@," run.Runner.kernel
        (mips flat) (mips with_l2)
        (100.0 *. ((mips with_l2 /. mips flat) -. 1.0)))
    Resim_workloads.Workload.all;
  Format.fprintf ppf "@]"

let print_cosim ppf =
  let program = Resim_workloads.Workload.program_of (gzip ()) ~scale:8192 () in
  let cosim = Resim_core.Cosim.run program in
  let batch = Resim_core.Resim.simulate_program program in
  let cycles stats = Stats.get Stats.major_cycles stats in
  Format.fprintf ppf
    "@[<v>Co-simulation (on-the-fly trace, FAST-style; gzip 8192)@,@,\
     offline pipeline: %Ld major cycles@,\
     on-the-fly:       %Ld major cycles (identical: %b)@,\
     peak trace window: %d records (full trace: %d records)@]"
    (cycles batch.stats) (cycles cosim.stats)
    (Int64.equal (cycles batch.stats) (cycles cosim.stats))
    cosim.peak_buffered_records
    (cosim.correct_path + cosim.wrong_path)

let print_in_order ppf =
  Format.fprintf ppf
    "@[<v>Ablation: out-of-order vs in-order 5-stage (default scales, \
     perfect memory)@,@,%-8s %10s %12s %10s@," "SPEC" "OoO IPC"
    "in-order IPC" "OoO gain";
  List.iter
    (fun workload ->
      let run =
        Runner.run_kernel ~key:"ablation-small" ~config:Config.reference
          ~scale:Runner.Default workload
      in
      let ooo = Stats.ipc run.Runner.outcome.stats in
      let in_order =
        Resim_baseline.In_order.simulate run.Runner.generated.records
      in
      Format.fprintf ppf "%-8s %10.3f %12.3f %9.2fx@," run.Runner.kernel ooo
        in_order.ipc (ooo /. in_order.ipc))
    Resim_workloads.Workload.all;
  Format.fprintf ppf "@]"

(* The full ablation grid: every memoised simulation the ablations and
   Tables 1/3 trigger, as explicit requests. Prewarming this list as one
   domain-parallel sweep makes every subsequent run_kernel call a cache
   hit, so the serial printing below is just formatting. *)
let requests () =
  let table key config =
    List.map
      (fun workload -> Runner.request ~key ~config workload)
      Resim_workloads.Workload.all
  in
  table "table1-left" Config.reference
  @ table "table1-right" Config.fast_comparable
  @ [ Runner.request ~key:"ablation" ~config:Config.reference
        ~scale:(Runner.Exact 8192) (gzip ()) ]
  @ List.map
      (fun width ->
        Runner.request ~key:"ablation" ~config:(width_config width)
          ~scale:(Runner.Exact 8192) (gzip ()))
      [ 1; 2; 4; 8 ]
  @ List.map
      (fun workload ->
        Runner.request ~key:"ablation-small" ~config:Config.reference
          ~scale:Runner.Default workload)
      Resim_workloads.Workload.all

let prewarm ?jobs () = Runner.prewarm ?jobs (requests ())

let print_all ?jobs ppf =
  prewarm ?jobs ();
  print_organizations ppf;
  Format.fprintf ppf "@.@.";
  print_width_sweep ppf;
  Format.fprintf ppf "@.@.";
  print_rob_sweep ppf;
  Format.fprintf ppf "@.@.";
  print_serial_vs_parallel ppf;
  Format.fprintf ppf "@.@.";
  print_encoding ppf;
  Format.fprintf ppf "@.@.";
  print_predictors ppf;
  Format.fprintf ppf "@.@.";
  print_l2 ppf;
  Format.fprintf ppf "@.@.";
  print_cosim ppf;
  Format.fprintf ppf "@.@.";
  print_in_order ppf
