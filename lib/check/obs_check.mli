(** Schema validator for pipetrace JSONL streams (codes RSM-P001 …
    RSM-P004; catalog in DESIGN.md §9).

    Validates the format [Resim_obs.Obs] emits — one flat JSON object
    per line — without a JSON library: the accepted grammar is exactly
    the flat objects the emitter produces (integer, string and [true]
    values, no nesting). Checked invariants, from the format spec in
    DESIGN.md §11:

    - every line parses as a flat object with a non-negative integer
      ["c"] and a known event kind ["e"] (RSM-P001, RSM-P002);
    - each kind carries its required fields with the right types —
      [F] pc, [D] id + pc, [I/W/C/X] id, [S] a taxonomy reason — and
      nothing unknown (RSM-P003; unknown fields warn);
    - cycles never decrease down the stream (RSM-P004). *)

type report = {
  diagnostics : Diagnostic.t list;
  lines_checked : int;
  events : (string * int) list;
      (** per-kind event counts, in first-appearance order *)
}

val lint_string : string -> report
(** Validate a whole stream (lines split on ['\n']; a trailing newline
    does not count as an empty line). Never raises. *)

val lint_file : string -> report
(** [lint_string] over a file's contents. Raises [Sys_error] only when
    the file cannot be read. *)

val clean : report -> bool
(** No diagnostics at all (not even warnings). *)
