type severity = Error | Warning

type t = {
  code : string;
  severity : severity;
  subject : string;
  message : string;
  hint : string option;
}

let make severity ~code ~subject ?hint message =
  { code; severity; subject; message; hint }

let error ~code ~subject ?hint message =
  make Error ~code ~subject ?hint message

let warning ~code ~subject ?hint message =
  make Warning ~code ~subject ?hint message

let is_error t = match t.severity with Error -> true | Warning -> false
let errors list = List.filter is_error list
let warnings list = List.filter (fun t -> not (is_error t)) list
let has_errors list = List.exists is_error list

let codes list =
  List.rev
    (List.fold_left
       (fun acc t -> if List.mem t.code acc then acc else t.code :: acc)
       [] list)

let severity_name = function Error -> "error" | Warning -> "warning"

let pp ppf t =
  Format.fprintf ppf "%s[%s] %s: %s" (severity_name t.severity) t.code
    t.subject t.message;
  match t.hint with
  | Some hint -> Format.fprintf ppf " (fix: %s)" hint
  | None -> ()

let pp_list ppf list =
  Format.pp_print_list ~pp_sep:Format.pp_print_newline pp ppf list

let summary list =
  if list = [] then "clean"
  else
    Printf.sprintf "%d error(s), %d warning(s)"
      (List.length (errors list))
      (List.length (warnings list))

let to_string t = Format.asprintf "%a" pp t
