module Record = Resim_trace.Record
module Codec = Resim_trace.Codec

type report = {
  diagnostics : Diagnostic.t list;
  records_checked : int;
  wrong_path_records : int;
  wrong_path_blocks : int;
  format : Codec.format option;
}

let default_max_run = 4096

(* Streaming lint state: one record of lookbehind plus the running
   wrong-path block length — O(1) space regardless of trace size. *)
type state = {
  max_run : int;
  mutable out : Diagnostic.t list;  (* reversed *)
  mutable prev : Record.t option;
  mutable run : int;       (* length of the current tagged run *)
  mutable checked : int;
  mutable wrong : int;
  mutable blocks : int;
}

let fresh_state ~max_run =
  { max_run; out = []; prev = None; run = 0; checked = 0; wrong = 0;
    blocks = 0 }

let record_subject index = Printf.sprintf "record %d" index

let err st ~code ~index ?hint fmt =
  Printf.ksprintf
    (fun message ->
      st.out <-
        Diagnostic.error ~code ~subject:(record_subject index) ?hint message
        :: st.out)
    fmt

let warn st ~code ~index ?hint fmt =
  Printf.ksprintf
    (fun message ->
      st.out <-
        Diagnostic.warning ~code ~subject:(record_subject index) ?hint
          message
        :: st.out)
    fmt

let reg_limit = Resim_isa.Reg.count - 1

(* RSM-T008: fields a well-formed generator can never produce. *)
let check_payload st ~index (r : Record.t) =
  if r.pc < 0 then
    err st ~code:"RSM-T008" ~index "negative pc %d" r.pc;
  let reg name value =
    if value < 0 || value > reg_limit then
      err st ~code:"RSM-T008" ~index "%s register %d is outside 0..%d"
        name value reg_limit
  in
  reg "dest" r.dest;
  reg "src1" r.src1;
  reg "src2" r.src2;
  match r.payload with
  | Record.Memory { address; _ } ->
      if address < 0 then
        err st ~code:"RSM-T008" ~index "negative memory address %d" address
  | Record.Branch { kind; taken; target } ->
      if target < 0 then
        err st ~code:"RSM-T008" ~index "negative branch target %d" target;
      (match kind with
      | Resim_isa.Opcode.Cond -> ()
      | Resim_isa.Opcode.Jump | Resim_isa.Opcode.Call
      | Resim_isa.Opcode.Ret | Resim_isa.Opcode.Indirect ->
          if not taken then
            err st ~code:"RSM-T008" ~index
              "unconditional branch recorded as not taken")
  | Record.Other _ -> ()

(* The tag-bit protocol of §III: a tagged block models the wrong path
   the front end runs down after a branch the generator's predictor
   mispredicted, so it can start only right after an untagged branch
   record, and it is bounded by the generator's wrong-path limit. *)
let check_tagging st ~index (r : Record.t) =
  if r.Record.wrong_path then begin
    st.wrong <- st.wrong + 1;
    if st.run = 0 then begin
      st.blocks <- st.blocks + 1;
      (match st.prev with
      | None ->
          err st ~code:"RSM-T005" ~index
            ~hint:"a wrong-path block must follow its mispredicted branch"
            "tagged record at the start of the trace"
      | Some prev ->
          if not (Record.is_branch prev) then
            err st ~code:"RSM-T005" ~index
              ~hint:"a wrong-path block must follow its mispredicted branch"
              "wrong-path block starts after a non-branch record"
          else
            (match prev.Record.payload with
            | Record.Branch { kind = Resim_isa.Opcode.Cond; _ } -> ()
            | Record.Branch _ ->
                warn st ~code:"RSM-T006" ~index
                  "wrong-path block follows an unconditional branch \
                   (generators emit blocks only after conditional \
                   mispredictions)"
            | Record.Memory _ | Record.Other _ -> ()))
    end;
    st.run <- st.run + 1;
    if st.run = st.max_run + 1 then
      err st ~code:"RSM-T007" ~index
        ~hint:"the reference generator bounds blocks by ROB + IFQ entries"
        "wrong-path run exceeds %d records (tag bit stuck on?)" st.max_run
  end
  else st.run <- 0

let check_record st (r : Record.t) =
  let index = st.checked in
  check_tagging st ~index r;
  check_payload st ~index r;
  st.prev <- Some r;
  st.checked <- st.checked + 1

let finish st ~format =
  let found = List.rev st.out in
  { diagnostics = Diagnostic.errors found @ Diagnostic.warnings found;
    records_checked = st.checked;
    wrong_path_records = st.wrong;
    wrong_path_blocks = st.blocks;
    format }

let lint_records ?(max_wrong_path_run = default_max_run) records =
  let st = fresh_state ~max_run:max_wrong_path_run in
  Array.iter (check_record st) records;
  finish st ~format:None

let header_report { Codec.error_code; byte_offset; reason } =
  { diagnostics =
      [ Diagnostic.error ~code:error_code ~subject:"header"
          ~hint:"regenerate the trace with resim tracegen"
          (Printf.sprintf "unusable trace stream at byte %d: %s" byte_offset
             reason) ];
    records_checked = 0;
    wrong_path_records = 0;
    wrong_path_blocks = 0;
    format = None }

(* The shared streaming loop: O(1) lint state over any cursor — whole
   in-memory strings and chunked channel cursors alike, so multi-GB
   files lint in constant memory. Byte offsets in diagnostics are
   absolute file offsets on both paths. *)
let lint_cursor ?(max_wrong_path_run = default_max_run) cursor =
  let st = fresh_state ~max_run:max_wrong_path_run in
  let stopped = ref false in
  while (not !stopped) && Codec.Cursor.has_next cursor do
    match Codec.Cursor.next_result cursor with
    | Ok record -> check_record st record
    | Error { Codec.error_code; byte_offset; reason } ->
        (match error_code with
        | "RSM-T002" ->
            err st ~code:"RSM-T002" ~index:st.checked
              ~hint:"the file was truncated after encoding"
              "at byte %d: %s" byte_offset reason
        | _ ->
            err st ~code:error_code ~index:st.checked "at byte %d: %s"
              byte_offset reason);
        stopped := true
  done;
  (* Streamed traces declare no count: the loop above consumed every
     whole byte, so a trailing-data check only applies to counted
     streams. *)
  if (not !stopped) && not (Codec.Cursor.streamed cursor) then begin
    let trailing = Codec.Cursor.trailing_bytes cursor in
    if trailing > 0 then
      warn st ~code:"RSM-T004" ~index:st.checked
        "%d trailing byte(s) after the last declared record" trailing
  end;
  finish st ~format:(Some (Codec.Cursor.format cursor))

let lint_string ?max_wrong_path_run data =
  match Codec.Cursor.of_string_result data with
  | Error error -> header_report error
  | Ok cursor -> lint_cursor ?max_wrong_path_run cursor

let lint_file ?max_wrong_path_run ?chunk path =
  match open_in_bin path with
  | exception Sys_error reason ->
      header_report { Codec.error_code = "RSM-T009"; byte_offset = 0; reason }
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          match Codec.Cursor.of_channel_result ?chunk ic with
          | Error error -> header_report error
          | Ok cursor -> lint_cursor ?max_wrong_path_run cursor)

(* Lint a foreign-format trace through its adapter: adapted records run
   the same tag-bit/payload rules, and a malformed line surfaces as its
   RSM-A diagnostic with the file:line:col subject. Streaming — one
   line of lookahead, O(1) lint state. *)
let lint_adapter ?(max_wrong_path_run = default_max_run) adapter =
  let st = fresh_state ~max_run:max_wrong_path_run in
  let stopped = ref false in
  while not !stopped do
    match Resim_trace.Adapter.next_result adapter with
    | Ok (Some record) -> check_record st record
    | Ok None -> stopped := true
    | Error error ->
        st.out <-
          Diagnostic.error ~code:error.Resim_trace.Adapter.code
            ~subject:
              (Printf.sprintf "%s:%d:%d" error.file error.line error.col)
            error.reason
          :: st.out;
        stopped := true
  done;
  finish st ~format:None

let clean report = report.diagnostics = []
