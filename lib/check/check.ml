(* The static-analysis umbrella: one structured-diagnostic core shared
   by the configuration validator (layer 1) and the trace linter
   (layer 2). Layer 3, the source lint, is the standalone
   [bin/resim_lint.ml] driven by the dune [@lint] alias. *)

module Diagnostic = Diagnostic
module Config = Config_check
module Trace = Trace_check
module Obs = Obs_check
