type item = {
  item_name : string;
  item_line : int;
  item_kind : Dsafe_ast.alloc_kind;
  item_annot : Dsafe_ast.annot_form option;
}

type t = {
  modname : string;
  path : string;
  items : item list;
  mutable_fields : string list;
  immutable_fields : string list;
  aliases : (string * string) list;
}

let binding_name (binding : Parsetree.value_binding) =
  match binding.pvb_pat.ppat_desc with
  | Ppat_var { txt; _ } -> Some txt
  | Ppat_constraint ({ ppat_desc = Ppat_var { txt; _ }; _ }, _) -> Some txt
  | _ -> None

let binding_line (binding : Parsetree.value_binding) =
  binding.pvb_loc.Location.loc_start.Lexing.pos_lnum

let fields_of_type ~mutability (decl : Parsetree.type_declaration) =
  match decl.ptype_kind with
  | Ptype_record labels ->
      List.filter_map
        (fun (label : Parsetree.label_declaration) ->
          if label.pld_mutable = mutability then Some label.pld_name.txt
          else None)
        labels
  | _ -> []

let alias_of_module (binding : Parsetree.module_binding) =
  match (binding.pmb_name.txt, binding.pmb_expr.pmod_desc) with
  | Some name, Pmod_ident { txt; _ } -> (
      match List.rev (Dsafe_ast.flatten txt) with
      | target :: _ -> Some (name, target)
      | [] -> None)
  | _ -> None

let scan (source : Dsafe_ast.source) =
  let items = ref [] in
  let fields = ref [] in
  let immutable = ref [] in
  let aliases = ref [] in
  List.iter
    (fun (str_item : Parsetree.structure_item) ->
      match str_item.pstr_desc with
      | Pstr_value (_, bindings) ->
          List.iter
            (fun binding ->
              match binding_name binding with
              | None -> ()
              | Some name -> (
                  match Dsafe_ast.classify_alloc binding.Parsetree.pvb_expr with
                  | None -> ()
                  | Some kind ->
                      let line = binding_line binding in
                      items :=
                        { item_name = name;
                          item_line = line;
                          item_kind = kind;
                          item_annot = Dsafe_ast.annot_at source ~line }
                        :: !items))
            bindings
      | Pstr_type (_, decls) ->
          List.iter
            (fun decl ->
              fields :=
                fields_of_type ~mutability:Asttypes.Mutable decl @ !fields;
              immutable :=
                fields_of_type ~mutability:Asttypes.Immutable decl @ !immutable)
            decls
      | Pstr_module binding -> (
          match alias_of_module binding with
          | Some alias -> aliases := alias :: !aliases
          | None -> ())
      | _ -> ())
    source.structure;
  { modname = source.modname;
    path = source.path;
    items = List.rev !items;
    mutable_fields = List.rev !fields;
    immutable_fields = List.rev !immutable;
    aliases = List.rev !aliases }

let find_item t name =
  List.find_opt (fun item -> item.item_name = name) t.items

let is_shared_primitive item =
  match item.item_kind with
  | Dsafe_ast.Mutex_k | Dsafe_ast.Condition_k -> true
  | _ -> false

let annot_tag = function
  | None -> ""
  | Some Dsafe_ast.Domain_local -> " [domain-local]"
  | Some (Dsafe_ast.Guarded_by m) -> Printf.sprintf " [guarded-by %s]" m
  | Some Dsafe_ast.Lock_impl -> " [lock-impl]"
  | Some (Dsafe_ast.Unknown raw) -> Printf.sprintf " [unknown: %s]" raw

let pp ppf t =
  Format.fprintf ppf "@[<v>%s (%s): %d mutable top-level object(s)@," t.modname
    t.path (List.length t.items);
  List.iter
    (fun item ->
      Format.fprintf ppf "  %s:%d %s : %s%s@," t.path item.item_line
        item.item_name
        (Dsafe_ast.alloc_kind_name item.item_kind)
        (annot_tag item.item_annot))
    t.items;
  if t.mutable_fields <> [] then
    Format.fprintf ppf "  mutable fields: %s@,"
      (String.concat ", " t.mutable_fields);
  Format.fprintf ppf "@]"
