(** Static validation of a simulator configuration against the paper's
    architectural constraints (codes RSM-C001 … RSM-C021; catalog in
    DESIGN.md §9).

    Strictly stronger than {!Resim_core.Config.validate}, which encodes
    only the constraints the engine cannot run without: this layer also
    rejects window shapes the microarchitecture cannot mean (LSQ larger
    than the ROB), non-power-of-two cache and predictor geometries that
    the hardware generator could not index, and flags suspicious but
    runnable settings (zero misspeculation penalty with a real
    predictor) as warnings. *)

val validate : Resim_core.Config.t -> Diagnostic.t list
(** All findings, errors first. An empty list means the configuration is
    clean; {!Resim_core.Config.reference} and
    {!Resim_core.Config.fast_comparable} validate clean. *)

val errors : Resim_core.Config.t -> Diagnostic.t list
(** Only the error-severity findings of {!validate}. *)

val error_summary : Resim_core.Config.t -> string option
(** [None] when there are no errors; otherwise a one-line summary
    naming every error code and subject, suitable for exceptions. *)

val is_power_of_two : int -> bool
(** Shared helper: [n > 0] and a single bit set. *)
