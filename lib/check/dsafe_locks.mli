(** resim-dsafe pass 4: lock discipline. Symbolically tracks the set of
    held mutexes along a lexical approximation of control flow and
    reports:

    - RSM-D004 — a [Mutex.lock] whose unlock does not dominate every
      exit path: lock still held at the end of a function body or at a
      raise site, branches that disagree about the lock state at a
      join, or a loop body that changes it.
    - RSM-D005 — locking a mutex already held on the same path (manual
      re-lock or nested [with_lock] on one mutex).
    - RSM-D006 — a blocking domain operation ([Domain.spawn],
      [Domain.join], [Pool.await]) while any lock is held.
    - RSM-D008 — any manual [Mutex.lock]/[Mutex.unlock] call site at
      all: the tree's one blessed bracket is [Sync.with_lock], and the
      implementation exempts itself with [(* resim-dsafe: lock-impl *)].

    [Sync.with_lock m f] and [Mutex.lock m; Fun.protect ~finally:(fun
    () -> Mutex.unlock m) f] are both recognized as releasing [m] on
    every path. Catalog: DESIGN.md §15. *)

val check : Dsafe_ast.source -> Diagnostic.t list
