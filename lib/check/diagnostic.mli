(** Structured diagnostics shared by the three static-analysis layers
    (configuration validator, trace linter, source lint).

    Every finding carries a stable code (["RSM-C013"], ["RSM-T005"], …)
    so tools and tests can match on the rule rather than on message
    text, a severity, the subject it is about (a configuration field, a
    record offset, a source location) and an optional fix hint. The
    catalog of codes lives in DESIGN.md §9. *)

type severity = Error | Warning

type t = {
  code : string;       (** stable rule identifier, e.g. ["RSM-C013"] *)
  severity : severity;
  subject : string;    (** what the finding is about: field, offset, … *)
  message : string;
  hint : string option; (** how to fix it, when there is an obvious fix *)
}

val error : code:string -> subject:string -> ?hint:string -> string -> t
val warning : code:string -> subject:string -> ?hint:string -> string -> t

val is_error : t -> bool
val errors : t list -> t list
val warnings : t list -> t list
val has_errors : t list -> bool

val codes : t list -> string list
(** Distinct codes in first-appearance order. *)

val pp : Format.formatter -> t -> unit
(** One line: [error[RSM-C013] mem_read_ports: message (fix: hint)]. *)

val pp_list : Format.formatter -> t list -> unit

val summary : t list -> string
(** ["2 error(s), 1 warning(s)"] — or ["clean"] for the empty list. *)

val to_string : t -> string
