module A = Dsafe_ast
module Inv = Dsafe_inventory

type summary = {
  src : A.source;
  inv : Inv.t;
  funmap : (string * Parsetree.expression) list;
      (* module-level [let f args = …] bindings *)
  spawn_bodies : Parsetree.expression list;
      (* bodies that run on another domain (physical identity) *)
  guarded : (string, unit) Hashtbl.t;  (* keys with >= 1 locked access *)
  written : (string, unit) Hashtbl.t;  (* keys written anywhere *)
}

let inventory summary = summary.inv

(* --- module-level functions --------------------------------------- *)

let is_function (expr : Parsetree.expression) =
  match expr.pexp_desc with
  | Pexp_fun _ | Pexp_function _ -> true
  | _ -> false

let funmap_of (source : A.source) =
  List.concat_map
    (fun (item : Parsetree.structure_item) ->
      match item.pstr_desc with
      | Pstr_value (_, bindings) ->
          List.filter_map
            (fun (binding : Parsetree.value_binding) ->
              match binding.pvb_pat.ppat_desc with
              | Ppat_var { txt; _ } when is_function binding.pvb_expr ->
                  Some (txt, binding.pvb_expr)
              | _ -> None)
            bindings
      | _ -> [])
    source.structure

(* --- pass 2: find the domain-crossing bodies ---------------------- *)

(* A spawn-like argument position: an inline closure is marked
   directly; a (possibly partially applied) module-level function is
   resolved through [funmap]. *)
let spawn_arg_targets funmap (arg : Parsetree.expression) =
  match arg.pexp_desc with
  | Pexp_fun _ | Pexp_function _ -> [ arg ]
  | Pexp_ident { txt = Longident.Lident name; _ } -> (
      match List.assoc_opt name funmap with
      | Some body -> [ body ]
      | None -> [])
  | Pexp_apply ({ pexp_desc = Pexp_ident { txt = Longident.Lident name; _ }; _ },
                _) -> (
      match List.assoc_opt name funmap with
      | Some body -> [ body ]
      | None -> [])
  | _ -> []

let rec collect_spawn_roots funmap acc (expr : Parsetree.expression) =
  let acc =
    match expr.pexp_desc with
    | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, args)
      when A.is_spawn_like txt ->
        List.fold_left
          (fun acc (label, arg) ->
            match label with
            | Asttypes.Nolabel -> spawn_arg_targets funmap arg @ acc
            | _ -> acc)
          acc args
    | _ -> acc
  in
  List.fold_left (collect_spawn_roots funmap) acc (A.children expr)

(* Names of module-level functions mentioned under [expr] — used to
   close the spawn set transitively (a marked body calling a
   module-level helper drags the helper onto the other domain too). *)
let rec mentioned_functions funmap acc (expr : Parsetree.expression) =
  let acc =
    match expr.pexp_desc with
    | Pexp_ident { txt = Longident.Lident name; _ }
      when List.mem_assoc name funmap ->
        name :: acc
    | _ -> acc
  in
  List.fold_left (mentioned_functions funmap) acc (A.children expr)

let spawn_bodies_of source funmap =
  let roots =
    List.fold_left
      (fun acc (item : Parsetree.structure_item) ->
        match item.pstr_desc with
        | Pstr_value (_, bindings) ->
            List.fold_left
              (fun acc (binding : Parsetree.value_binding) ->
                collect_spawn_roots funmap acc binding.pvb_expr)
              acc bindings
        | _ -> acc)
      [] source.A.structure
  in
  (* Transitive closure over module-level functions. *)
  let marked = ref [] in
  let queue = Queue.create () in
  let push body =
    if not (List.memq body !marked) then begin
      marked := body :: !marked;
      Queue.add body queue
    end
  in
  List.iter push roots;
  while not (Queue.is_empty queue) do
    let body = Queue.take queue in
    List.iter
      (fun name ->
        match List.assoc_opt name funmap with
        | Some target -> push target
        | None -> ())
      (mentioned_functions funmap [] body)
  done;
  !marked

(* --- lock regions -------------------------------------------------- *)

let with_lock_parts (expr : Parsetree.expression) =
  match expr.pexp_desc with
  | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, args)
    when A.is_with_lock txt -> (
      let nolabel =
        List.filter_map
          (fun (label, arg) ->
            match label with Asttypes.Nolabel -> Some arg | _ -> None)
          args
      in
      match nolabel with
      | [ mutex; { pexp_desc = Pexp_fun (_, _, _, body); _ } ] ->
          Some (mutex, Some body)
      | [ mutex; _ ] | [ mutex ] -> Some (mutex, None)
      | _ -> None)
  | _ -> None

let lock_delta (expr : Parsetree.expression) =
  match expr.pexp_desc with
  | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, _) ->
      if A.is_mutex_lock txt then 1 else if A.is_mutex_unlock txt then -1 else 0
  | _ -> 0

(* Shared traversal: visits every expression, tracking whether the
   current position is inside a lock region ([depth] > 0) and inside a
   domain-crossing body ([spawned]). [visit] sees every node. *)
let traverse summary ~visit =
  let rec walk ~depth ~spawned (expr : Parsetree.expression) =
    let spawned = spawned || List.memq expr summary.spawn_bodies in
    visit ~depth ~spawned expr;
    match with_lock_parts expr with
    | Some (mutex, body) -> (
        walk ~depth ~spawned mutex;
        match body with
        | Some body -> walk ~depth:(depth + 1) ~spawned body
        | None -> ())
    | None -> (
        match expr.pexp_desc with
        | Pexp_sequence (a, b) ->
            walk ~depth ~spawned a;
            walk ~depth:(max 0 (depth + lock_delta a)) ~spawned b
        | _ ->
            List.iter (walk ~depth ~spawned) (A.children expr))
  in
  List.iter
    (fun (item : Parsetree.structure_item) ->
      match item.pstr_desc with
      | Pstr_value (_, bindings) ->
          List.iter
            (fun (binding : Parsetree.value_binding) ->
              walk ~depth:0 ~spawned:false binding.pvb_expr)
            bindings
      | _ -> ())
    summary.src.A.structure

(* --- summaries ----------------------------------------------------- *)

(* The analysis is untyped, so a field name declared both [mutable] in
   one record and immutable in another (e.g. a private accumulator type
   mirrored by a public snapshot type) is ambiguous at a read site —
   reads of such names are not tracked. Writes stay tracked: a setfield
   is by definition a mutation. *)
let tracked_field (inv : Inv.t) field =
  List.mem field inv.Inv.mutable_fields
  && not (List.mem field inv.Inv.immutable_fields)

let summarize (source : A.source) (inv : Inv.t) =
  let funmap = funmap_of source in
  let summary =
    { src = source;
      inv;
      funmap;
      spawn_bodies = spawn_bodies_of source funmap;
      guarded = Hashtbl.create 16;
      written = Hashtbl.create 16 }
  in
  let mutable_fields field = tracked_field inv field in
  traverse summary ~visit:(fun ~depth ~spawned:_ expr ->
      match A.access_of_expr ~mutable_fields expr with
      | None -> ()
      | Some access ->
          if depth > 0 then Hashtbl.replace summary.guarded access.acc_key ();
          if access.acc_write then
            Hashtbl.replace summary.written access.acc_key ());
  summary

(* An inventory item's guard story, judged inside its own module. *)
let item_safe summary (item : Inv.item) =
  match item.item_kind with
  | A.Atomic_k | A.Mutex_k | A.Condition_k -> true
  | _ -> (
      match item.item_annot with
      | Some (A.Domain_local | A.Guarded_by _ | A.Lock_impl) -> true
      | Some (A.Unknown _) | None ->
          Hashtbl.mem summary.guarded ("cont:" ^ item.item_name)
          || Hashtbl.mem summary.guarded ("ref:" ^ item.item_name))

(* Resolve a mentioned identifier path to an inventory item, locally or
   across modules ([Runner.cache], [Resim_reports.Runner.cache], or an
   alias [module R = …; R.cache]). *)
let resolve_item ~global summary components =
  match List.rev components with
  | [] -> None
  | [ name ] -> (
      match Inv.find_item summary.inv name with
      | Some item -> Some (summary, item)
      | None -> None)
  | name :: modpath -> (
      let modname =
        match modpath with
        | alias :: _ -> (
            match List.assoc_opt alias summary.inv.Inv.aliases with
            | Some target -> target
            | None -> alias)
        | [] -> summary.inv.Inv.modname
      in
      match
        List.find_opt (fun s -> s.inv.Inv.modname = modname) global
      with
      | Some owner -> (
          match Inv.find_item owner.inv name with
          | Some item -> Some (owner, item)
          | None -> None)
      | None -> None)

let rec captured_paths acc (expr : Parsetree.expression) =
  let acc =
    match expr.pexp_desc with
    | Pexp_ident { txt; _ } -> A.flatten txt :: acc
    | _ -> acc
  in
  List.fold_left captured_paths acc (A.children expr)

(* --- the checking pass --------------------------------------------- *)

let check ~global summary =
  let findings = ref [] in
  let seen = Hashtbl.create 8 in
  let report ~file ~line ~code ?hint message =
    let key = (file, line, code) in
    if not (Hashtbl.mem seen key) then begin
      Hashtbl.replace seen key ();
      findings :=
        Diagnostic.error ~code
          ~subject:(Printf.sprintf "%s:%d" file line)
          ?hint message
        :: !findings
    end
  in
  let file = summary.src.A.path in
  let mutable_fields field = tracked_field summary.inv field in
  let access_annotated (access : A.access) =
    (match A.annot_at summary.src ~line:access.acc_line with
    | Some (A.Domain_local | A.Guarded_by _) -> true
    | _ -> false)
    ||
    match access.acc_root with
    | Some root -> (
        match Inv.find_item summary.inv root with
        | Some { item_annot = Some (A.Domain_local | A.Guarded_by _); _ } ->
            true
        | _ -> false)
    | None -> false
  in
  (* D002 / D003: per-access discipline. *)
  traverse summary ~visit:(fun ~depth ~spawned expr ->
      if depth = 0 then
        match A.access_of_expr ~mutable_fields expr with
        | None -> ()
        | Some access ->
            if not (access_annotated access) then
              if
                spawned
                && (access.acc_write
                   || Hashtbl.mem summary.written access.acc_key)
              then
                report ~file ~line:access.acc_line ~code:"RSM-D002"
                  ~hint:
                    "guard the access with with_lock, make the object \
                     Atomic.t, or annotate the confinement story \
                     (`resim-dsafe: domain-local` / `guarded-by <m>`)"
                  (Printf.sprintf
                     "unguarded %s of `%s` inside a domain-crossing closure"
                     (if access.acc_write then "write" else "racy read")
                     access.acc_key)
              else if Hashtbl.mem summary.guarded access.acc_key then
                report ~file ~line:access.acc_line ~code:"RSM-D003"
                  ~hint:
                    "this object is lock-guarded elsewhere in the module; \
                     take the same lock here or annotate why it is safe"
                  (Printf.sprintf
                     "access to lock-guarded `%s` outside its lock region"
                     access.acc_key));
  (* D001: captured objects with no guard story at all. *)
  List.iter
    (fun body ->
      List.iter
        (fun components ->
          match resolve_item ~global summary components with
          | None -> ()
          | Some (owner, item) ->
              if
                (not (Inv.is_shared_primitive item))
                && not (item_safe owner item)
              then
                report ~file:owner.inv.Inv.path ~line:item.Inv.item_line
                  ~code:"RSM-D001"
                  ~hint:
                    "make it Atomic.t, guard every access with one mutex, \
                     or annotate `resim-dsafe: domain-local` / \
                     `guarded-by <m>` on the binding"
                  (Printf.sprintf
                     "top-level mutable %s `%s.%s` is captured by a \
                      domain-crossing closure (spawned from %s) with no \
                      guard story"
                     (A.alloc_kind_name item.Inv.item_kind)
                     owner.inv.Inv.modname item.Inv.item_name
                     summary.inv.Inv.modname))
        (captured_paths [] body))
    summary.spawn_bodies;
  List.rev !findings
