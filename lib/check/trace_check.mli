(** Well-formedness linter for encoded traces (codes RSM-T001 …
    RSM-T008; catalog in DESIGN.md §9).

    One streaming pass over the bit-packed stream — records are decoded
    one at a time and never materialised as an array, and no timing is
    run. Checked invariants, from §III's trace format:

    - the header and every record decode (magic, version, format,
      count, field codes, payload length);
    - the tag bit delimits wrong-path blocks that start only right
      after an untagged branch record — the branch the generator's
      predictor missed;
    - wrong-path runs are bounded ([max_wrong_path_run], default
      {!default_max_run});
    - payloads are internally consistent: non-negative PCs, targets and
      addresses, register fields within the ISA, unconditional branches
      are taken. *)

type report = {
  diagnostics : Diagnostic.t list;  (** errors first *)
  records_checked : int;
  wrong_path_records : int;
  wrong_path_blocks : int;
  format : Resim_trace.Codec.format option;
      (** [None] when the header did not decode *)
}

val default_max_run : int
(** 4096 — far above any generator's wrong-path block limit (the
    reference generator stops at ROB + IFQ entries), yet small enough
    to catch a tag bit stuck on. *)

val lint_records :
  ?max_wrong_path_run:int -> Resim_trace.Record.t array -> report
(** Structural rules only, on already-decoded records — the path used
    for in-memory traces and for corruption tests. *)

val lint_string : ?max_wrong_path_run:int -> string -> report
(** Full streaming lint of an encoded stream, header included. Never
    raises: decode failures become diagnostics. *)

val lint_cursor : ?max_wrong_path_run:int -> Resim_trace.Codec.Cursor.t -> report
(** The shared streaming loop over any cursor — in-memory or chunked.
    Byte offsets in diagnostics are absolute file offsets on both. *)

val lint_file : ?max_wrong_path_run:int -> ?chunk:int -> string -> report
(** Streaming lint through the chunked cursor: O([chunk]) memory
    regardless of file size. Never raises — an unreadable file is an
    RSM-T009 diagnostic. *)

val lint_adapter : ?max_wrong_path_run:int -> Resim_trace.Adapter.t -> report
(** Lint a foreign-format trace through its adapter: adapted records
    run the same tag-bit/payload rules; a malformed line surfaces as
    its RSM-A code with a [file:line:col] subject. *)

val clean : report -> bool
(** No diagnostics at all (not even warnings). *)
