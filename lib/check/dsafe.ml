type annotation = { file : string; line : int; form : Dsafe_ast.annot_form }

type report = {
  diagnostics : Diagnostic.t list;
  annotations : annotation list;
  inventories : Dsafe_inventory.t list;
}

let annotation_diagnostics (source : Dsafe_ast.source) =
  List.filter_map
    (fun (annot : Dsafe_ast.annot) ->
      match annot.form with
      | Dsafe_ast.Unknown raw ->
          Some
            (Diagnostic.error ~code:"RSM-D007"
               ~subject:
                 (Printf.sprintf "%s:%d" source.path annot.annot_line)
               ~hint:
                 "grammar: `resim-dsafe: domain-local`, `resim-dsafe: \
                  guarded-by <mutex>`, `resim-dsafe: lock-impl`"
               (Printf.sprintf "malformed resim-dsafe annotation `%s`" raw))
      | _ -> None)
    source.annots

(* Diagnostics carry "file:line" subjects; order the report by them so
   output is stable regardless of pass order. *)
let subject_key (d : Diagnostic.t) =
  match String.rindex_opt d.subject ':' with
  | None -> (d.subject, 0)
  | Some i -> (
      let file = String.sub d.subject 0 i in
      let rest =
        String.sub d.subject (i + 1) (String.length d.subject - i - 1)
      in
      match int_of_string_opt rest with
      | Some line -> (file, line)
      | None -> (d.subject, 0))

let analyze_sources sources =
  let summaries =
    List.map
      (fun source ->
        Dsafe_domain.summarize source (Dsafe_inventory.scan source))
      sources
  in
  let diagnostics =
    List.concat
      [ List.concat_map annotation_diagnostics sources;
        List.concat_map Dsafe_locks.check sources;
        List.concat_map (Dsafe_domain.check ~global:summaries) summaries ]
  in
  let diagnostics =
    List.stable_sort
      (fun a b -> compare (subject_key a) (subject_key b))
      diagnostics
  in
  let annotations =
    List.concat_map
      (fun (source : Dsafe_ast.source) ->
        List.map
          (fun (annot : Dsafe_ast.annot) ->
            { file = source.path; line = annot.annot_line; form = annot.form })
          source.annots)
      sources
  in
  { diagnostics;
    annotations;
    inventories = List.map Dsafe_domain.inventory summaries }

let analyze_files paths =
  let rec load acc = function
    | [] -> Ok (List.rev acc)
    | path :: rest -> (
        match Dsafe_ast.load path with
        | Ok source -> load (source :: acc) rest
        | Error message -> Error message)
  in
  match load [] paths with
  | Error message -> Error message
  | Ok sources -> Ok (analyze_sources sources)

let pp_inventories ppf report =
  List.iter
    (fun inv ->
      if inv.Dsafe_inventory.items <> [] then
        Format.fprintf ppf "%a@." Dsafe_inventory.pp inv)
    report.inventories
