(** resim-dsafe: whole-library domain-safety analysis (DESIGN.md §15).

    Orchestrates the four passes over a set of [.ml] files analyzed
    together (cross-module captures resolve only within the set):

    1. inventory (Dsafe_inventory) — top-level/escaping mutable objects
    2. capture/escape (Dsafe_domain) — closures reaching Domain.spawn /
       Pool.submit and the mutable state they capture
    3. guard discipline (Dsafe_domain) — every domain-shared object is
       Atomic.t, lock-bracketed, or explicitly annotated
    4. lock discipline (Dsafe_locks) — unlock on all exit paths, no
       double-lock, no blocking domain ops under a lock, with_lock
       everywhere

    plus RSM-D007 for malformed [resim-dsafe:] annotations. The stable
    code catalog RSM-D001..D008 and the annotation grammar are
    documented in DESIGN.md §15. *)

type annotation = { file : string; line : int; form : Dsafe_ast.annot_form }

type report = {
  diagnostics : Diagnostic.t list;  (** sorted by file, then line *)
  annotations : annotation list;
      (** every [resim-dsafe:] annotation in the analyzed set, so
          reviews and tests can budget them *)
  inventories : Dsafe_inventory.t list;
}

val analyze_files : string list -> (report, string) result
(** [Error message] if any file fails to read or parse. *)

val analyze_sources : Dsafe_ast.source list -> report

val pp_inventories : Format.formatter -> report -> unit
