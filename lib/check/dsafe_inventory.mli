(** resim-dsafe pass 1: per-module inventory of top-level (and hence
    potentially escaping) mutable objects, plus the module's mutable
    record fields and module aliases. Feeds the capture/escape and
    guard-discipline passes (DESIGN.md §15). *)

type item = {
  item_name : string;
  item_line : int;
  item_kind : Dsafe_ast.alloc_kind;
  item_annot : Dsafe_ast.annot_form option;
      (** [resim-dsafe:] annotation on the binding, if any *)
}

type t = {
  modname : string;
  path : string;
  items : item list;  (** top-level mutable bindings, in source order *)
  mutable_fields : string list;
      (** record fields declared [mutable] anywhere in the module *)
  immutable_fields : string list;
      (** record fields declared immutable — a name on both lists is
          ambiguous untyped, so reads of it are not tracked *)
  aliases : (string * string) list;
      (** [module R = Resim_reports.Runner] → [("R", "Runner")] *)
}

val scan : Dsafe_ast.source -> t
val find_item : t -> string -> item option

val is_shared_primitive : item -> bool
(** Mutex/Condition values are synchronization primitives, not state
    the analyzer demands a guard for. *)

val pp : Format.formatter -> t -> unit
(** Human-readable inventory listing for [resim_dsafe --inventory]. *)
