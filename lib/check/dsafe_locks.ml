module A = Dsafe_ast

(* Lock state along one lexical path: the (sorted) set of mutex paths
   currently held, plus the set an enclosing [Fun.protect] finalizer is
   guaranteed to release (so a raise under them is not a leak). Mutex
   identities are dotted paths ([pool.mutex], [m]); a non-path mutex
   argument gets a per-site placeholder that still participates in leak
   detection but can never alias another site. *)

let set_add p set = if List.mem p set then set else List.sort compare (p :: set)
let set_remove p set = List.filter (fun q -> q <> p) set
let set_mem = List.mem
let set_eq a b = a = b
let set_inter a b = List.filter (fun p -> List.mem p b) a
let set_diff a b = List.filter (fun p -> not (List.mem p b)) a

type ctx = {
  src : A.source;
  mutable findings : Diagnostic.t list;
}

let subject ctx line = Printf.sprintf "%s:%d" ctx.src.A.path line

let report ctx ~line ~code ?hint message =
  ctx.findings <-
    Diagnostic.error ~code ~subject:(subject ctx line) ?hint message
    :: ctx.findings

let mutex_path line (expr : Parsetree.expression) =
  match A.path_of_expr expr with
  | Some path -> path
  | None -> Printf.sprintf "<mutex@%d>" line

let nolabel_args args =
  List.filter_map
    (fun (label, arg) ->
      match label with Asttypes.Nolabel -> Some arg | _ -> None)
    args

let labelled_arg name args =
  List.find_map
    (fun (label, arg) ->
      match label with
      | Asttypes.Labelled l when l = name -> Some arg
      | _ -> None)
    args

(* Every [Mutex.unlock p] mentioned anywhere under [expr] — used to
   credit a [Fun.protect] finalizer with the locks it releases. *)
let unlocks_under expr =
  let acc = ref [] in
  let rec scan e =
    (match e.Parsetree.pexp_desc with
    | Parsetree.Pexp_apply
        ({ pexp_desc = Pexp_ident { txt; _ }; _ }, args)
      when A.is_mutex_unlock txt -> (
        match nolabel_args args with
        | target :: _ -> acc := mutex_path (A.line_of e) target :: !acc
        | [] -> ())
    | _ -> ());
    List.iter scan (A.children e)
  in
  scan expr;
  !acc

let fun_body (expr : Parsetree.expression) =
  match expr.pexp_desc with
  | Pexp_fun (_, _, _, body) -> Some body
  | _ -> None

let lock_impl_exempt ctx line =
  match A.annot_at ctx.src ~line with
  | Some A.Lock_impl -> true
  | _ -> false

(* [eval held protected e] walks [e], reporting findings, and returns
   the lock set held after [e] on the fallthrough path. *)
let rec eval ctx held protected (expr : Parsetree.expression) =
  let line = A.line_of expr in
  match expr.Parsetree.pexp_desc with
  | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, args)
    when A.is_mutex_lock txt || A.is_mutex_unlock txt ->
      if not (lock_impl_exempt ctx line) then
        report ctx ~line ~code:"RSM-D008"
          ~hint:
            "use Sync.with_lock (exception-safe); only its implementation \
             may call Mutex directly, annotated `resim-dsafe: lock-impl`"
          (Printf.sprintf "manual `%s` bracket" (A.dotted txt));
      let held =
        List.fold_left (fun h (_, a) -> eval ctx h protected a) held args
      in
      (match nolabel_args args with
      | target :: _ ->
          let p = mutex_path line target in
          if A.is_mutex_lock txt then begin
            if set_mem p held then
              report ctx ~line ~code:"RSM-D005"
                (Printf.sprintf "`%s` is locked again while already held" p);
            set_add p held
          end
          else set_remove p held
      | [] -> held)
  | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, args)
    when A.is_with_lock txt -> (
      match nolabel_args args with
      | [ target; body ] -> (
          let p = mutex_path line target in
          if set_mem p held then
            report ctx ~line ~code:"RSM-D005"
              (Printf.sprintf
                 "with_lock re-enters `%s`, which is already held on this \
                  path"
                 p);
          match fun_body body with
          | Some inner ->
              check_function ctx
                ~entry:(set_add p held)
                ~protected:(set_add p protected)
                inner;
              held
          | None -> held)
      | args -> List.fold_left (fun h a -> eval ctx h protected a) held args)
  | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, args)
    when A.is_fun_protect txt ->
      let releases =
        match labelled_arg "finally" args with
        | Some finalizer ->
            (* The finalizer itself runs with the lock still held; walk
               it as a deferred closure for its own findings. *)
            defer ctx finalizer;
            unlocks_under finalizer
        | None -> []
      in
      let body_held = set_diff held releases in
      (match nolabel_args args with
      | [ body ] -> (
          match fun_body body with
          | Some inner ->
              check_function ctx ~entry:held
                ~protected:(List.fold_left (fun s p -> set_add p s) protected
                              releases)
                inner
          | None -> ())
      | args -> List.iter (fun a -> defer ctx a) args);
      body_held
  | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, args)
    when A.is_blocking_domain_op txt ->
      if held <> [] then
        report ctx ~line ~code:"RSM-D006"
          ~hint:"spawn/join outside the locked region"
          (Printf.sprintf "`%s` while holding %s" (A.dotted txt)
             (String.concat ", " held));
      List.fold_left
        (fun h (_, a) -> eval ctx h protected a)
        held args
  | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, args)
    when A.is_raise_like txt ->
      let leaked = set_diff held protected in
      if leaked <> [] then
        report ctx ~line ~code:"RSM-D004"
          ~hint:"wrap the locked region in Sync.with_lock or Fun.protect"
          (Printf.sprintf "raise with %s still held and no protecting bracket"
             (String.concat ", " leaked));
      List.iter (fun (_, a) -> defer ctx a) args;
      held
  | Pexp_sequence (a, b) ->
      let held = eval ctx held protected a in
      eval ctx held protected b
  | Pexp_let (_, bindings, body) ->
      let held =
        List.fold_left
          (fun h (binding : Parsetree.value_binding) ->
            match fun_body binding.pvb_expr with
            | Some _ ->
                defer ctx binding.pvb_expr;
                h
            | None -> eval ctx h protected binding.pvb_expr)
          held bindings
      in
      eval ctx held protected body
  | Pexp_ifthenelse (cond, then_, else_) ->
      let held = eval ctx held protected cond in
      let h1 = eval ctx held protected then_ in
      let h2 =
        match else_ with
        | Some e -> eval ctx held protected e
        | None -> held
      in
      if not (set_eq h1 h2) then
        report ctx ~line ~code:"RSM-D004"
          ~hint:"release the lock on every branch, or use Sync.with_lock"
          "branches disagree about held locks at the join";
      set_inter h1 h2
  | Pexp_match (scrutinee, cases) ->
      let held = eval ctx held protected scrutinee in
      branch_join ctx ~line held protected cases
  | Pexp_try (body, cases) ->
      let after = eval ctx held protected body in
      (* Handlers run from an unknown point; walk them from the entry
         state for their own findings without constraining the join
         (an unlock-and-reraise cleanup handler is legitimate). *)
      List.iter
        (fun (case : Parsetree.case) ->
          ignore (eval ctx held protected case.pc_rhs))
        cases;
      after
  | Pexp_while (cond, body) ->
      let held = eval ctx held protected cond in
      let after = eval ctx held protected body in
      if not (set_eq after held) then
        report ctx ~line ~code:"RSM-D004"
          "loop body changes the set of held locks between iterations";
      held
  | Pexp_for (_, from_, to_, _, body) ->
      let held = eval ctx held protected from_ in
      let held = eval ctx held protected to_ in
      let after = eval ctx held protected body in
      if not (set_eq after held) then
        report ctx ~line ~code:"RSM-D004"
          "loop body changes the set of held locks between iterations";
      held
  | Pexp_fun _ | Pexp_function _ ->
      defer ctx expr;
      held
  | _ ->
      List.fold_left
        (fun h child -> eval ctx h protected child)
        held (A.children expr)

and branch_join ctx ~line held protected (cases : Parsetree.case list) =
  let results =
    List.map
      (fun (case : Parsetree.case) ->
        (match case.pc_guard with
        | Some guard -> ignore (eval ctx held protected guard)
        | None -> ());
        eval ctx held protected case.pc_rhs)
      cases
  in
  match results with
  | [] -> held
  | first :: rest ->
      if not (List.for_all (set_eq first) rest) then
        report ctx ~line ~code:"RSM-D004"
          ~hint:"release the lock on every branch, or use Sync.with_lock"
          "match arms disagree about held locks at the join";
      List.fold_left set_inter first rest

(* A closure whose body runs later starts from an empty lock state. *)
and defer ctx (expr : Parsetree.expression) =
  match expr.Parsetree.pexp_desc with
  | Pexp_fun (_, _, _, body) -> check_function ctx ~entry:[] ~protected:[] body
  | Pexp_function cases ->
      List.iter
        (fun (case : Parsetree.case) ->
          check_function ctx ~entry:[] ~protected:[] case.Parsetree.pc_rhs)
        cases
  | _ -> ignore (eval ctx [] [] expr)

(* A function body must give back exactly the locks it was entered
   with: anything extra on the fallthrough path is a leak. *)
and check_function ctx ~entry ~protected body =
  let after = eval ctx entry protected body in
  let leaked = set_diff after entry in
  if leaked <> [] then
    report ctx ~line:(A.line_of body) ~code:"RSM-D004"
      ~hint:"wrap the locked region in Sync.with_lock or Fun.protect"
      (Printf.sprintf "%s still held when the function returns"
         (String.concat ", " leaked))

let check (source : A.source) =
  let ctx = { src = source; findings = [] } in
  List.iter
    (fun (item : Parsetree.structure_item) ->
      match item.pstr_desc with
      | Pstr_value (_, bindings) ->
          List.iter
            (fun (binding : Parsetree.value_binding) ->
              defer ctx binding.pvb_expr)
            bindings
      | _ -> ())
    source.structure;
  List.rev ctx.findings
