(** Static analysis for ReSim: structured diagnostics, the
    configuration validator and the trace linter.

    [Check.Config.validate] rejects configurations that violate the
    paper's architectural constraints before any simulation runs;
    [Check.Trace.lint] verifies an encoded trace's well-formedness in
    one streaming pass without running timing. Both speak
    {!Diagnostic.t}. The third layer — the hot-path source lint — is
    [bin/resim_lint.ml], wired to [make lint]. *)

module Diagnostic = Diagnostic
module Config = Config_check
module Trace = Trace_check

module Obs = Obs_check
(** Layer 4: the pipetrace JSONL schema validator (RSM-P001..P004). *)
