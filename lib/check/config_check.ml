module Config = Resim_core.Config
module Cache = Resim_cache.Cache
module Direction = Resim_bpred.Direction

let is_power_of_two n = n > 0 && n land (n - 1) = 0

let validate (t : Config.t) =
  let out = ref [] in
  let err code subject ?hint fmt =
    Printf.ksprintf
      (fun message ->
        out := Diagnostic.error ~code ~subject ?hint message :: !out)
      fmt
  in
  let warn code subject ?hint fmt =
    Printf.ksprintf
      (fun message ->
        out := Diagnostic.warning ~code ~subject ?hint message :: !out)
      fmt
  in
  (* Window shape: width, queues, ROB, LSQ. *)
  if t.width < 1 then
    err "RSM-C001" "width" ~hint:"use a width of at least 1"
      "issue width must be positive (got %d)" t.width;
  if t.width >= 1 && t.ifq_entries < t.width then
    err "RSM-C002" "ifq_entries"
      ~hint:"grow the IFQ to at least one fetch group"
      "IFQ of %d cannot hold one %d-wide fetch group" t.ifq_entries t.width;
  if t.decouple_entries < 1 then
    err "RSM-C003" "decouple_entries"
      "decouple buffer must be non-empty (got %d)" t.decouple_entries
  else if t.width >= 1 && t.decouple_entries < t.width then
    warn "RSM-C004" "decouple_entries"
      ~hint:"size the decouple buffer to at least the issue width"
      "decouple buffer of %d throttles a %d-wide front end"
      t.decouple_entries t.width;
  if t.width >= 1 && t.rob_entries < t.width then
    err "RSM-C005" "rob_entries"
      ~hint:"the ROB must accept a full dispatch group"
      "reorder buffer of %d is smaller than the issue width %d"
      t.rob_entries t.width;
  if t.lsq_entries < 1 then
    err "RSM-C006" "lsq_entries" "LSQ must be non-empty (got %d)"
      t.lsq_entries
  else begin
    if t.lsq_entries > t.rob_entries then
      err "RSM-C007" "lsq_entries"
        ~hint:"shrink the LSQ or grow the ROB"
        "LSQ of %d exceeds the ROB of %d: every memory operation \
         occupies both, so the extra LSQ entries are unreachable"
        t.lsq_entries t.rob_entries;
    if t.width >= 1 && t.lsq_entries < t.width then
      warn "RSM-C008" "lsq_entries"
        ~hint:"size the LSQ to at least the issue width"
        "LSQ of %d cannot absorb a %d-wide all-memory dispatch group"
        t.lsq_entries t.width
  end;
  (* Functional units: positive counts and latencies; the divider is
     not pipelined (§V.C: one 10-cycle divider), so a divide latency at
     or below the pipelined multiplier's is almost certainly a
     misconfiguration. *)
  let fu_count subject count =
    if count < 1 then
      err "RSM-C009" subject
        ~hint:"every operation class needs at least one unit"
        "%s must be positive (got %d): instructions of that class \
         could never issue"
        subject count
  in
  fu_count "alu_count" t.alu_count;
  fu_count "mult_count" t.mult_count;
  fu_count "div_count" t.div_count;
  let fu_latency subject latency =
    if latency < 1 then
      err "RSM-C010" subject
        ~hint:"use a latency of at least one major cycle"
        "%s must be positive (got %d): a zero-latency unit would \
         complete before it issues"
        subject latency
  in
  fu_latency "alu_latency" t.alu_latency;
  fu_latency "mult_latency" t.mult_latency;
  fu_latency "div_latency" t.div_latency;
  if t.div_latency >= 1 && t.mult_latency >= 1
     && t.div_latency <= t.mult_latency
  then
    warn "RSM-C011" "div_latency"
      ~hint:"the reference divider is 10 cycles against a 3-cycle \
             multiplier"
      "divider is not pipelined, yet its latency (%d) does not exceed \
       the pipelined multiplier's (%d)"
      t.div_latency t.mult_latency;
  (* Memory ports, and §IV.B's Optimized-organization port budget. *)
  if t.mem_read_ports < 1 || t.mem_write_ports < 1 then
    err "RSM-C012" "mem_ports"
      "memory ports must be positive (got %d read, %d write)"
      t.mem_read_ports t.mem_write_ports
  else if
    Config.is_optimized t.organization
    && t.mem_read_ports + t.mem_write_ports > t.width - 1
  then
    err "RSM-C013" "mem_read_ports"
      ~hint:"reduce the ports or use the improved organization"
      "the optimized organization supports at most N-1 memory ports \
       (§IV.B); got %d read + %d write for width %d"
      t.mem_read_ports t.mem_write_ports t.width;
  (* Penalties: whole major cycles, each worth L minor cycles. *)
  if t.misfetch_penalty < 0 || t.misspeculation_penalty < 0 then
    err "RSM-C014" "penalties"
      "penalties must be non-negative (got misfetch %d, misspeculation \
       %d)"
      t.misfetch_penalty t.misspeculation_penalty
  else begin
    if t.misspeculation_penalty < t.misfetch_penalty then
      warn "RSM-C015" "misspeculation_penalty"
        ~hint:"a full squash should cost at least a misfetch"
        "misspeculation penalty (%d) is below the misfetch penalty (%d)"
        t.misspeculation_penalty t.misfetch_penalty;
    if
      t.misspeculation_penalty = 0
      && t.predictor.direction <> Direction.Perfect
    then
      warn "RSM-C016" "misspeculation_penalty"
        ~hint:"use a positive penalty, or the perfect predictor"
        "zero misspeculation penalty with a real predictor makes every \
         misprediction free in major-cycle terms (L = %d minor cycles \
         per major cycle)"
        (Config.minor_cycles_per_major t.organization
           ~width:(max 1 t.width))
  end;
  (* Cache geometries: the hardware indexes sets and offsets with bit
     slices, so capacity, block size and set count must be powers of
     two and the associativity must tile the capacity exactly. *)
  let cache subject = function
    | Cache.Perfect -> ()
    | Cache.Set_associative { size_bytes; associativity; block_bytes } ->
        let geometry_error fmt = err "RSM-C017" subject fmt in
        if size_bytes < 1 || block_bytes < 1 || associativity < 1 then
          geometry_error
            "cache geometry fields must be positive (size %d, assoc %d, \
             block %d)"
            size_bytes associativity block_bytes
        else if not (is_power_of_two block_bytes) then
          geometry_error "block size %d is not a power of two" block_bytes
        else if size_bytes mod (block_bytes * associativity) <> 0 then
          geometry_error
            "capacity %d is not a whole number of %d-way sets of %d-byte \
             blocks"
            size_bytes associativity block_bytes
        else if not (is_power_of_two (size_bytes / (block_bytes * associativity)))
        then
          geometry_error
            "set count %d (size %d / assoc %d / block %d) is not a power \
             of two"
            (size_bytes / (block_bytes * associativity))
            size_bytes associativity block_bytes
  in
  cache "icache" t.icache;
  cache "dcache" t.dcache;
  let timing subject (timing : Cache.timing) =
    if timing.hit_latency < 1 || timing.miss_latency < 0 then
      err "RSM-C018" subject
        "cache timing must have a positive hit latency and non-negative \
         miss latency (got hit %d, miss %d)"
        timing.hit_latency timing.miss_latency
  in
  timing "cache_timing" t.cache_timing;
  (match t.l2cache with
  | None -> ()
  | Some l2 ->
      cache "l2cache" l2;
      timing "l2_timing" t.l2_timing);
  (* Predictor tables: indexed by bit slices, so powers of two. *)
  let table subject entries =
    if not (is_power_of_two entries) then
      err "RSM-C019" subject
        ~hint:"predictor tables are indexed by PC/history bit slices"
        "%s of %d is not a power of two" subject entries
  in
  (match t.predictor.direction with
  | Direction.Perfect | Direction.Static_taken | Direction.Static_not_taken
    ->
      ()
  | Direction.Bimodal { table_entries } ->
      table "bimodal table_entries" table_entries
  | Direction.Two_level { bht_entries; history_bits; pht_entries } ->
      table "two-level bht_entries" bht_entries;
      table "two-level pht_entries" pht_entries;
      if history_bits < 1 || history_bits > 30 then
        err "RSM-C019" "history_bits"
          "history register length %d is outside 1..30" history_bits
  | Direction.Gshare { history_bits; pht_entries } ->
      table "gshare pht_entries" pht_entries;
      if history_bits < 1 || history_bits > 30 then
        err "RSM-C019" "history_bits"
          "history register length %d is outside 1..30" history_bits);
  let btb = t.predictor.btb in
  if
    btb.entries < 1 || btb.associativity < 1
    || btb.entries mod btb.associativity <> 0
    || not (is_power_of_two (btb.entries / btb.associativity))
  then
    err "RSM-C020" "btb"
      ~hint:"entries must tile into a power-of-two number of sets"
      "BTB geometry is not realizable (entries %d, associativity %d)"
      btb.entries btb.associativity;
  if t.predictor.ras_depth < 0 then
    err "RSM-C021" "ras_depth" "RAS depth must be non-negative (got %d)"
      t.predictor.ras_depth;
  let found = List.rev !out in
  Diagnostic.errors found @ Diagnostic.warnings found

let errors t = Diagnostic.errors (validate t)

let error_summary t =
  match errors t with
  | [] -> None
  | errors ->
      Some
        (String.concat "; "
           (List.map
              (fun (d : Diagnostic.t) ->
                Printf.sprintf "%s %s: %s" d.code d.subject d.message)
              errors))
