(** resim-dsafe passes 2 and 3: capture/escape analysis and guard
    discipline.

    Pass 2 finds every closure that reaches [Domain.spawn] /
    [Pool.submit] / [Pool.map] — inline [fun] arguments, named
    module-level functions passed by name or partially applied, and
    (transitively) every module-level function mentioned from an
    already-marked body — and computes the mutable state those bodies
    capture, directly or via module paths into other analyzed modules.

    Pass 3 classifies each object's guard story and enforces it:

    - RSM-D001 — a top-level mutable object captured by a
      domain-crossing closure with no safety story at all: not an
      [Atomic.t], never accessed under a lock anywhere in its module,
      and not annotated [domain-local] / [guarded-by].
    - RSM-D002 — a mutable access inside a domain-crossing closure
      outside any lock region: every write, and every read of state
      that is written somewhere in the module.
    - RSM-D003 — an access to lock-guarded state (state accessed under
      a lock elsewhere in the module, so the lock evidently protects
      it) from outside any lock region.

    Lock regions are [with_lock m (fun () -> …)] bodies and manual
    [Mutex.lock]/[Mutex.unlock] brackets within one statement sequence.
    Catalog: DESIGN.md §15. *)

type summary
(** Per-module analysis state shared across modules: inventory,
    guarded/written access keys, domain-crossing bodies. *)

val summarize : Dsafe_ast.source -> Dsafe_inventory.t -> summary
val inventory : summary -> Dsafe_inventory.t

val check : global:summary list -> summary -> Diagnostic.t list
(** [global] must contain every analyzed module (including the one
    being checked) so module-path captures resolve cross-module. *)
