module Engine = Resim_core.Engine

type report = {
  diagnostics : Diagnostic.t list;
  lines_checked : int;
  events : (string * int) list;
}

(* ------------------------------------------------------------------ *)
(* Minimal flat-object JSON parser: exactly the grammar the Obs
   emitter produces — one object per line, integer / plain-string /
   boolean values, no nesting, no escapes, no whitespace.              *)

type value = Int of int64 | Str of string | Bool of bool

exception Bad

let parse_object line =
  let n = String.length line in
  let pos = ref 0 in
  let expect c =
    if !pos < n && line.[!pos] = c then incr pos else raise Bad
  in
  let parse_string () =
    expect '"';
    let start = !pos in
    while !pos < n && line.[!pos] <> '"' do
      if line.[!pos] = '\\' then raise Bad;
      incr pos
    done;
    if !pos >= n then raise Bad;
    let s = String.sub line start (!pos - start) in
    incr pos;
    s
  in
  let literal word value =
    let len = String.length word in
    if !pos + len <= n && String.sub line !pos len = word then begin
      pos := !pos + len;
      value
    end
    else raise Bad
  in
  let parse_value () =
    if !pos >= n then raise Bad
    else
      match line.[!pos] with
      | '"' -> Str (parse_string ())
      | 't' -> literal "true" (Bool true)
      | 'f' -> literal "false" (Bool false)
      | '-' | '0' .. '9' ->
          let start = !pos in
          if line.[!pos] = '-' then incr pos;
          let digits = !pos in
          while !pos < n && line.[!pos] >= '0' && line.[!pos] <= '9' do
            incr pos
          done;
          if !pos = digits then raise Bad;
          (match Int64.of_string_opt (String.sub line start (!pos - start)) with
          | Some v -> Int v
          | None -> raise Bad)
      | _ -> raise Bad
  in
  expect '{';
  let fields = ref [] in
  if !pos < n && line.[!pos] = '}' then incr pos
  else begin
    let continue = ref true in
    while !continue do
      let key = parse_string () in
      expect ':';
      let value = parse_value () in
      fields := (key, value) :: !fields;
      if !pos < n && line.[!pos] = ',' then incr pos
      else begin
        expect '}';
        continue := false
      end
    done
  end;
  if !pos <> n then raise Bad;
  List.rev !fields

(* ------------------------------------------------------------------ *)
(* Schema. *)

let stall_reasons =
  List.map Engine.stall_reason_name Engine.all_stall_reasons

(* kind -> required (field, type check) beyond "c"/"e"; optional wp is
   allowed on F and D. *)
let is_int = function Int v -> Int64.compare v 0L >= 0 | _ -> false
let is_bool = function Bool _ -> true | _ -> false
let is_reason = function Str s -> List.mem s stall_reasons | _ -> false

let schema =
  [ ("F", ([ ("pc", is_int) ], [ "wp" ]));
    ("D", ([ ("id", is_int); ("pc", is_int) ], [ "wp" ]));
    ("I", ([ ("id", is_int) ], []));
    ("W", ([ ("id", is_int) ], []));
    ("C", ([ ("id", is_int) ], []));
    ("X", ([ ("id", is_int) ], []));
    ("FL", ([], []));
    ("S", ([ ("r", is_reason) ], [])) ]

let lint_string stream =
  let diagnostics = ref [] in
  let add d = diagnostics := d :: !diagnostics in
  let events = ref [] in
  let count kind =
    if List.mem_assoc kind !events then
      events :=
        List.map
          (fun (k, c) -> if String.equal k kind then (k, c + 1) else (k, c))
          !events
    else events := !events @ [ (kind, 1) ]
  in
  let last_cycle = ref Int64.min_int in
  let lines = String.split_on_char '\n' stream in
  let checked = ref 0 in
  List.iteri
    (fun i line ->
      (* A trailing newline leaves one final empty chunk; skip it. *)
      if not (String.equal line "") then begin
        incr checked;
        let subject = Printf.sprintf "line %d" (i + 1) in
        match parse_object line with
        | exception Bad ->
            add
              (Diagnostic.error ~code:"RSM-P001" ~subject
                 "not a flat JSON object in pipetrace form")
        | fields -> (
            (match List.assoc_opt "c" fields with
            | Some (Int v) when Int64.compare v 0L >= 0 ->
                if Int64.compare v !last_cycle < 0 then
                  add
                    (Diagnostic.error ~code:"RSM-P004" ~subject
                       (Printf.sprintf
                          "cycle went backwards: %Ld after %Ld" v !last_cycle));
                last_cycle := v
            | Some _ | None ->
                add
                  (Diagnostic.error ~code:"RSM-P003" ~subject
                     "missing or non-integer \"c\" (cycle)"));
            match List.assoc_opt "e" fields with
            | Some (Str kind) -> (
                match List.assoc_opt kind schema with
                | None ->
                    add
                      (Diagnostic.error ~code:"RSM-P002" ~subject
                         (Printf.sprintf "unknown event kind %S" kind))
                | Some (required, optional) ->
                    count kind;
                    List.iter
                      (fun (name, check) ->
                        match List.assoc_opt name fields with
                        | Some v when check v -> ()
                        | Some _ ->
                            add
                              (Diagnostic.error ~code:"RSM-P003" ~subject
                                 (Printf.sprintf
                                    "field %S has the wrong type or value \
                                     for kind %S"
                                    name kind))
                        | None ->
                            add
                              (Diagnostic.error ~code:"RSM-P003" ~subject
                                 (Printf.sprintf
                                    "kind %S is missing field %S" kind name)))
                      required;
                    List.iter
                      (fun (name, value) ->
                        if
                          (not (String.equal name "c"))
                          && (not (String.equal name "e"))
                          && not (List.mem_assoc name required)
                        then
                          if List.mem name optional then begin
                            if not (is_bool value) then
                              add
                                (Diagnostic.error ~code:"RSM-P003" ~subject
                                   (Printf.sprintf
                                      "field %S must be a boolean" name))
                          end
                          else
                            add
                              (Diagnostic.warning ~code:"RSM-P003" ~subject
                                 (Printf.sprintf
                                    "unknown field %S for kind %S" name kind)))
                      fields)
            | Some _ | None ->
                add
                  (Diagnostic.error ~code:"RSM-P002" ~subject
                     "missing or non-string \"e\" (event kind)"))
      end)
    lines;
  { diagnostics = List.rev !diagnostics;
    lines_checked = !checked;
    events = !events }

let lint_file path =
  let channel = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr channel)
    (fun () ->
      lint_string (really_input_string channel (in_channel_length channel)))

let clean report = report.diagnostics = []
