(** Syntactic substrate shared by the resim-dsafe passes: parsed
    sources, the [resim-dsafe:] annotation table, and the recognizers
    for lock operations, domain-crossing calls and mutable accesses.
    Built on compiler-libs (same toolchain as [bin/resim_lint.ml], no
    new dependencies). Catalog and grammar: DESIGN.md §15. *)

type annot_form =
  | Domain_local  (** object confined to one domain by construction *)
  | Guarded_by of string  (** object protected by the named mutex *)
  | Lock_impl  (** blessed manual Mutex call inside [Sync.with_lock] *)
  | Unknown of string  (** malformed annotation — RSM-D007 *)

type annot = { annot_line : int; form : annot_form }

type source = {
  path : string;
  modname : string;  (** capitalized basename, e.g. ["Pool"] *)
  structure : Parsetree.structure;
  annots : annot list;
}

val load : string -> (source, string) result
(** Parse one [.ml] file; [Error message] on read or syntax failure. *)

val annot_at : source -> line:int -> annot_form option
(** Annotation attached to [line]: on the same line or the one above. *)

val flatten : Longident.t -> string list
val dotted : Longident.t -> string

val path_of_expr : Parsetree.expression -> string option
(** Dotted path of an identifier / field chain ([pool.mutex]), if the
    expression is one. *)

val line_of : Parsetree.expression -> int

val children : Parsetree.expression -> Parsetree.expression list
(** Immediate sub-expressions, for generic traversal. *)

(** Classification of a top-level allocation expression. *)
type alloc_kind =
  | Ref
  | Array
  | Hashtbl_k
  | Buffer_k
  | Queue_k
  | Bytes_k
  | Atomic_k
  | Mutex_k
  | Condition_k

val alloc_kind_name : alloc_kind -> string

val classify_alloc : Parsetree.expression -> alloc_kind option
(** [ref e], [Hashtbl.create n], [Atomic.make v], array literals, … *)

val is_mutex_lock : Longident.t -> bool
val is_mutex_unlock : Longident.t -> bool

val is_with_lock : Longident.t -> bool
(** Any path ending in [with_lock] ([Sync.with_lock], open'd, …). *)

val is_fun_protect : Longident.t -> bool

val is_spawn_like : Longident.t -> bool
(** [Domain.spawn], [Pool.submit] (or bare [submit]), [Pool.map],
    [Thread.create] — calls whose function-valued arguments cross to
    another domain. *)

val is_blocking_domain_op : Longident.t -> bool
(** [Domain.spawn]/[Domain.join]/[Pool.await] — forbidden under a held
    lock (RSM-D006). *)

val is_raise_like : Longident.t -> bool

(** One mutable access discovered in an expression: its module-scoped
    consistency key (["field:workers"], ["cont:pool.queue"],
    ["ref:total"]), whether it writes, and the root identifier path
    when the subject is addressable. *)
type access = {
  acc_key : string;
  acc_write : bool;
  acc_root : string option;
  acc_line : int;
}

val access_of_expr :
  mutable_fields:(string -> bool) -> Parsetree.expression -> access option
(** Recognize [x.f <- e] / [x.f] (mutable fields only for reads),
    [x := e] / [!x] / [incr] / [decr], and Hashtbl/Queue/Buffer/Stack/
    Array/Bytes operations on an addressable first argument. [Atomic.*]
    operations are deliberately not accesses — they are their own
    safety story. *)
