type annot_form =
  | Domain_local
  | Guarded_by of string
  | Lock_impl
  | Unknown of string

type annot = { annot_line : int; form : annot_form }

type source = {
  path : string;
  modname : string;
  structure : Parsetree.structure;
  annots : annot list;
}

(* --- annotation scanning ------------------------------------------ *)

(* Annotations must be written as their own comment: the comment opener
   immediately followed by one space and "resim-dsafe:". Requiring the
   opener means prose or string literals that merely mention the grammar
   (like this analyzer's hints) never parse as annotations. The marker
   is assembled by concatenation so this very file doesn't trip it. *)
let marker = "(*" ^ " resim-dsafe:"

let find_sub text start sub =
  let n = String.length text and m = String.length sub in
  let rec scan i =
    if i + m > n then None
    else if String.sub text i m = sub then Some i
    else scan (i + 1)
  in
  scan start

let parse_form rest =
  (* [rest] is the comment text after the marker, already cut at the
     comment terminator. *)
  let words =
    String.split_on_char ' ' (String.trim rest)
    |> List.filter (fun w -> w <> "")
  in
  match words with
  | [ "domain-local" ] -> Domain_local
  | [ "guarded-by"; mutex ] -> Guarded_by mutex
  | [ "lock-impl" ] -> Lock_impl
  | _ -> Unknown (String.trim rest)

let annots_of_text text =
  let annots = ref [] in
  let line = ref 0 in
  List.iter
    (fun content ->
      incr line;
      match find_sub content 0 marker with
      | None -> ()
      | Some i ->
          let after = i + String.length marker in
          let rest = String.sub content after (String.length content - after) in
          let rest =
            match find_sub rest 0 "*)" with
            | Some j -> String.sub rest 0 j
            | None -> rest
          in
          annots := { annot_line = !line; form = parse_form rest } :: !annots)
    (String.split_on_char '\n' text);
  List.rev !annots

let annot_at source ~line =
  let rec scan = function
    | [] -> None
    | a :: rest ->
        if a.annot_line = line || a.annot_line = line - 1 then Some a.form
        else scan rest
  in
  scan source.annots

let load path =
  match
    let ic = open_in_bin path in
    let text =
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    let lexbuf = Lexing.from_string text in
    Location.init lexbuf path;
    let structure = Parse.implementation lexbuf in
    let modname =
      String.capitalize_ascii
        (Filename.remove_extension (Filename.basename path))
    in
    { path; modname; structure; annots = annots_of_text text }
  with
  | source -> Ok source
  | exception Sys_error message -> Error message
  | exception exn ->
      Error
        (Printf.sprintf "%s: parse error: %s" path (Printexc.to_string exn))

(* --- longidents and paths ----------------------------------------- *)

let rec flatten = function
  | Longident.Lident s -> [ s ]
  | Longident.Ldot (prefix, s) -> flatten prefix @ [ s ]
  | Longident.Lapply (a, _) -> flatten a

let dotted lid = String.concat "." (flatten lid)

let rec path_of_expr (expr : Parsetree.expression) =
  match expr.pexp_desc with
  | Pexp_ident { txt; _ } -> Some (dotted txt)
  | Pexp_field (e, { txt; _ }) -> (
      match path_of_expr e with
      | Some base -> (
          match List.rev (flatten txt) with
          | field :: _ -> Some (base ^ "." ^ field)
          | [] -> None)
      | None -> None)
  | _ -> None

let line_of (expr : Parsetree.expression) =
  expr.pexp_loc.Location.loc_start.Lexing.pos_lnum

let children (expr : Parsetree.expression) =
  let acc = ref [] in
  let self =
    { Ast_iterator.default_iterator with
      expr = (fun _ child -> acc := child :: !acc)
    }
  in
  Ast_iterator.default_iterator.expr self expr;
  List.rev !acc

(* --- recognizers -------------------------------------------------- *)

type alloc_kind =
  | Ref
  | Array
  | Hashtbl_k
  | Buffer_k
  | Queue_k
  | Bytes_k
  | Atomic_k
  | Mutex_k
  | Condition_k

let alloc_kind_name = function
  | Ref -> "ref"
  | Array -> "array"
  | Hashtbl_k -> "Hashtbl"
  | Buffer_k -> "Buffer"
  | Queue_k -> "Queue"
  | Bytes_k -> "Bytes"
  | Atomic_k -> "Atomic"
  | Mutex_k -> "Mutex"
  | Condition_k -> "Condition"

let strip_stdlib = function "Stdlib" :: rest -> rest | path -> path

let rec classify_alloc (expr : Parsetree.expression) =
  match expr.pexp_desc with
  | Pexp_constraint (e, _) -> classify_alloc e
  | Pexp_array _ -> Some Array
  | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, _) -> (
      match strip_stdlib (flatten txt) with
      | [ "ref" ] -> Some Ref
      | [ "Array"; ("make" | "init" | "create_float" | "make_matrix") ] ->
          Some Array
      | [ "Hashtbl"; "create" ] -> Some Hashtbl_k
      | [ "Buffer"; "create" ] -> Some Buffer_k
      | [ "Queue"; "create" ] | [ "Stack"; "create" ] -> Some Queue_k
      | [ "Bytes"; ("create" | "make" | "init") ] -> Some Bytes_k
      | [ "Atomic"; "make" ] -> Some Atomic_k
      | [ "Mutex"; "create" ] -> Some Mutex_k
      | [ "Condition"; "create" ] -> Some Condition_k
      | _ -> None)
  | _ -> None

let is_mutex_lock lid =
  match strip_stdlib (flatten lid) with
  | [ "Mutex"; ("lock" | "try_lock") ] -> true
  | _ -> false

let is_mutex_unlock lid =
  match strip_stdlib (flatten lid) with
  | [ "Mutex"; "unlock" ] -> true
  | _ -> false

let is_with_lock lid =
  match List.rev (flatten lid) with "with_lock" :: _ -> true | _ -> false

let is_fun_protect lid =
  match strip_stdlib (flatten lid) with
  | [ "Fun"; "protect" ] -> true
  | _ -> false

let is_spawn_like lid =
  match List.rev (strip_stdlib (flatten lid)) with
  | "spawn" :: rest -> ( match rest with "Domain" :: _ -> true | _ -> false)
  | "submit" :: _ -> true
  | "map" :: "Pool" :: _ -> true
  | "create" :: "Thread" :: _ -> true
  | _ -> false

let is_blocking_domain_op lid =
  match List.rev (strip_stdlib (flatten lid)) with
  | ("spawn" | "join") :: "Domain" :: _ -> true
  | "await" :: _ -> true
  | _ -> false

let is_raise_like lid =
  match flatten lid with
  | [ ("raise" | "raise_notrace" | "failwith" | "invalid_arg") ] -> true
  | _ -> false

(* --- mutable accesses --------------------------------------------- *)

type access = {
  acc_key : string;
  acc_write : bool;
  acc_root : string option;
  acc_line : int;
}

let root_of_path path =
  match String.split_on_char '.' path with [] -> path | base :: _ -> base

(* Container modules whose values are mutable through their whole API;
   any operation on a shared one races with a writer, so reads and
   writes both count as accesses (the write flag steers severity). *)

let hashtbl_writes =
  [ "add"; "replace"; "remove"; "reset"; "clear"; "filter_map_inplace" ]

let hashtbl_reads =
  [ "find"; "find_opt"; "find_all"; "mem"; "iter"; "fold"; "length"; "stats" ]

let queue_writes =
  [ "push"; "add"; "pop"; "take"; "take_opt"; "pop_opt"; "clear"; "transfer";
    "drop" ]

let queue_reads =
  [ "peek"; "peek_opt"; "top"; "is_empty"; "length"; "iter"; "fold" ]

let buffer_writes =
  [ "add_char"; "add_string"; "add_bytes"; "add_buffer"; "add_substring";
    "add_subbytes"; "add_utf_8_uchar"; "add_channel"; "clear"; "reset";
    "truncate" ]

let buffer_reads = [ "contents"; "to_bytes"; "sub"; "nth"; "length" ]
let array_writes = [ "set"; "unsafe_set"; "fill"; "blit"; "sort"; "fast_sort" ]

let array_reads =
  [ "get"; "unsafe_get"; "length"; "iter"; "iteri"; "map"; "mapi"; "fold_left";
    "fold_right"; "exists"; "for_all"; "mem"; "copy"; "to_list"; "sub" ]

let bytes_writes = [ "set"; "unsafe_set"; "fill"; "blit"; "blit_string" ]
let bytes_reads = [ "get"; "unsafe_get"; "length"; "sub"; "to_string" ]

let container_access path_components =
  match strip_stdlib path_components with
  | [ "Hashtbl"; op ] when List.mem op hashtbl_writes -> Some (true, 0)
  | [ "Hashtbl"; op ] when List.mem op hashtbl_reads ->
      Some (false, if op = "iter" || op = "fold" then 1 else 0)
  | [ ("Queue" | "Stack"); op ] when List.mem op queue_writes -> Some (true, 0)
  | [ ("Queue" | "Stack"); op ] when List.mem op queue_reads -> Some (false, 0)
  | [ "Buffer"; op ] when List.mem op buffer_writes -> Some (true, 0)
  | [ "Buffer"; op ] when List.mem op buffer_reads -> Some (false, 0)
  | [ ("Array" | "Float" | "Floatarray"); op ] when List.mem op array_writes ->
      Some (true, 0)
  | [ ("Array" | "Float" | "Floatarray"); op ] when List.mem op array_reads ->
      Some (false, 0)
  | [ "Bytes"; op ] when List.mem op bytes_writes -> Some (true, 0)
  | [ "Bytes"; op ] when List.mem op bytes_reads -> Some (false, 0)
  | _ -> None

let nth_nolabel args n =
  let rec scan i = function
    | [] -> None
    | (Asttypes.Nolabel, arg) :: rest ->
        if i = n then Some arg else scan (i + 1) rest
    | _ :: rest -> scan i rest
  in
  scan 0 args

let last_component lid =
  match List.rev (flatten lid) with last :: _ -> last | [] -> ""

let access_of_expr ~mutable_fields (expr : Parsetree.expression) =
  let line = line_of expr in
  match expr.pexp_desc with
  | Pexp_setfield (target, { txt; _ }, _) ->
      let field = last_component txt in
      Some
        { acc_key = "field:" ^ field;
          acc_write = true;
          acc_root = path_of_expr target;
          acc_line = line }
  | Pexp_field (target, { txt; _ }) ->
      let field = last_component txt in
      if mutable_fields field then
        Some
          { acc_key = "field:" ^ field;
            acc_write = false;
            acc_root = path_of_expr target;
            acc_line = line }
      else None
  | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, args) -> (
      match flatten txt with
      | [ ":=" ] | [ "incr" ] | [ "decr" ] -> (
          match nth_nolabel args 0 with
          | Some target -> (
              match path_of_expr target with
              | Some path ->
                  Some
                    { acc_key = "ref:" ^ path;
                      acc_write = true;
                      acc_root = Some (root_of_path path);
                      acc_line = line }
              | None -> None)
          | None -> None)
      | [ "!" ] -> (
          match nth_nolabel args 0 with
          | Some target -> (
              match path_of_expr target with
              | Some path ->
                  Some
                    { acc_key = "ref:" ^ path;
                      acc_write = false;
                      acc_root = Some (root_of_path path);
                      acc_line = line }
              | None -> None)
          | None -> None)
      | components -> (
          match container_access components with
          | None -> None
          | Some (write, arg_index) -> (
              match nth_nolabel args arg_index with
              | Some target -> (
                  match path_of_expr target with
                  | Some path ->
                      Some
                        { acc_key = "cont:" ^ path;
                          acc_write = write;
                          acc_root = Some (root_of_path path);
                          acc_line = line }
                  | None -> None)
              | None -> None)))
  | _ -> None
