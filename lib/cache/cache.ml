type geometry = {
  size_bytes : int;
  associativity : int;
  block_bytes : int;
}

type config = Perfect | Set_associative of geometry

type timing = { hit_latency : int; miss_latency : int }

let default_timing = { hit_latency = 1; miss_latency = 18 }

let l1_32k_8way_64b =
  Set_associative
    { size_bytes = 32 * 1024; associativity = 8; block_bytes = 64 }

let l1_32k_2way_64b =
  Set_associative
    { size_bytes = 32 * 1024; associativity = 2; block_bytes = 64 }

type way = { mutable tag : int; mutable stamp : int }
(* tag = -1 marks an invalid way. *)

type state =
  | S_perfect
  | S_sets of { sets : way array array; block_bits : int; set_count : int }

type stats = {
  accesses : int64;
  hits : int64;
  misses : int64;
  evictions : int64;
}

(* Counters are host ints (widened to int64 on read): [access] sits on
   the engine's per-fetch/per-load path, and boxed [Int64.add] would
   allocate twice per access. They live in their own record so the
   engine specialization layer (DESIGN.md §14) can bump a perfect
   cache's counters inline without the tag/set state being exposed. *)
type counters = {
  mutable clock : int;
  mutable accesses : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

type t = {
  config : config;
  timing : timing;
  state : state;
  counters : counters;
}

let log2_exact name n =
  let rec loop value bits =
    if value = 1 then bits
    else if value land 1 <> 0 || value <= 0 then
      invalid_arg (Printf.sprintf "Cache.create: %s must be a power of two" name)
    else loop (value lsr 1) (bits + 1)
  in
  loop n 0

let create ?(timing = default_timing) config =
  let state =
    match config with
    | Perfect -> S_perfect
    | Set_associative { size_bytes; associativity; block_bytes } ->
        if associativity <= 0 then
          invalid_arg "Cache.create: associativity must be positive";
        let block_bits = log2_exact "block_bytes" block_bytes in
        let set_count = size_bytes / (associativity * block_bytes) in
        if set_count <= 0 then
          invalid_arg "Cache.create: capacity too small for the geometry";
        let sets =
          Array.init set_count (fun _ ->
              Array.init associativity (fun _ -> { tag = -1; stamp = 0 }))
        in
        S_sets { sets; block_bits; set_count }
  in
  { config; timing; state;
    counters = { clock = 0; accesses = 0; hits = 0; misses = 0; evictions = 0 }
  }

let config t = t.config
let timing t = t.timing
let counters t = t.counters

let locate ~block_bits ~set_count addr =
  let block = addr lsr block_bits in
  (block mod set_count, block / set_count)

let find_way set tag =
  let rec scan i =
    if i >= Array.length set then None
    else if set.(i).tag = tag then Some i
    else scan (i + 1)
  in
  scan 0

let victim_way set =
  let best = ref 0 in
  for i = 1 to Array.length set - 1 do
    if set.(i).tag = -1 && set.(!best).tag <> -1 then best := i
    else if
      set.(i).tag <> -1 && set.(!best).tag <> -1
      && set.(i).stamp < set.(!best).stamp
    then best := i
  done;
  !best

let access t ~addr ~write =
  ignore write;
  let c = t.counters in
  c.accesses <- c.accesses + 1;
  c.clock <- c.clock + 1;
  match t.state with
  | S_perfect ->
      c.hits <- c.hits + 1;
      t.timing.hit_latency
  | S_sets { sets; block_bits; set_count } -> (
      let index, tag = locate ~block_bits ~set_count addr in
      let set = sets.(index) in
      match find_way set tag with
      | Some way ->
          set.(way).stamp <- c.clock;
          c.hits <- c.hits + 1;
          t.timing.hit_latency
      | None ->
          c.misses <- c.misses + 1;
          let way = victim_way set in
          if set.(way).tag <> -1 then
            c.evictions <- c.evictions + 1;
          set.(way).tag <- tag;
          set.(way).stamp <- c.clock;
          t.timing.hit_latency + t.timing.miss_latency)

let probe t ~addr =
  match t.state with
  | S_perfect -> true
  | S_sets { sets; block_bits; set_count } ->
      let index, tag = locate ~block_bits ~set_count addr in
      find_way sets.(index) tag <> None

let stats t =
  { accesses = Int64.of_int t.counters.accesses;
    hits = Int64.of_int t.counters.hits;
    misses = Int64.of_int t.counters.misses;
    evictions = Int64.of_int t.counters.evictions }

let reset_stats t =
  let c = t.counters in
  c.accesses <- 0;
  c.hits <- 0;
  c.misses <- 0;
  c.evictions <- 0

let miss_rate t =
  if t.counters.accesses = 0 then 0.0
  else float_of_int t.counters.misses /. float_of_int t.counters.accesses

let pp_stats ppf t =
  Format.fprintf ppf "accesses=%d hits=%d misses=%d (%.2f%% miss)"
    t.counters.accesses t.counters.hits t.counters.misses
    (100.0 *. miss_rate t)
