(** Hit/miss + latency cache model.

    ReSim does not store cached data — “we need to provide only the
    hit/miss indication and simulate the access latency” (§V) — so neither
    do we: the model keeps tags and LRU state only. A [Perfect] geometry
    always hits, modelling the paper's *perfect memory system*
    configuration. *)

type geometry = {
  size_bytes : int;      (** total capacity *)
  associativity : int;
  block_bytes : int;
}

type config =
  | Perfect                       (** every access hits in [hit_latency] *)
  | Set_associative of geometry

type timing = {
  hit_latency : int;     (** major cycles for a hit *)
  miss_latency : int;    (** additional major cycles on a miss *)
}

val default_timing : timing
(** 1-cycle hits, 18-cycle miss penalty. *)

val l1_32k_8way_64b : config
(** The FAST-comparable L1: 32 KB, 8-way, 64-byte blocks (Table 1,
    right). *)

val l1_32k_2way_64b : config
(** The §V.C variant: 32 KB, 2-way. *)

type counters = {
  mutable clock : int;
  mutable accesses : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}
(** Live access counters (host ints; the {!stats} view widens to
    int64). Exposed for the engine specialization layer (DESIGN.md
    §14), which bumps a perfect cache's counters inline — a perfect
    cache's access is nothing but these increments plus the constant
    hit latency. Treat as read-only elsewhere. *)

type t

val create : ?timing:timing -> config -> t
val config : t -> config
val timing : t -> timing

val counters : t -> counters
(** The cache's live counter record (shared, not a snapshot). *)

val access : t -> addr:int -> write:bool -> int
(** Simulate one access to byte address [addr]; returns its latency in
    major cycles and updates tag/LRU state and statistics. *)

val probe : t -> addr:int -> bool
(** Would [addr] hit right now? No state change, no statistics. *)

(** {1 Statistics} *)

type stats = {
  accesses : int64;
  hits : int64;
  misses : int64;
  evictions : int64;
}

val stats : t -> stats
val reset_stats : t -> unit
val miss_rate : t -> float
val pp_stats : Format.formatter -> t -> unit
