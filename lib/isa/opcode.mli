(** Opcodes and operation classes of the PISA-like ISA.

    The instruction set is a compact RISC subset in the spirit of
    SimpleScalar's PISA: three-operand integer ALU operations, immediates,
    multiply/divide with long latencies, word/byte loads and stores, and
    the usual control-flow repertoire (conditional branches, direct and
    indirect jumps, call and return). *)

type t =
  | Add | Sub | And | Or | Xor | Sll | Srl | Sra | Slt
  | Addi | Andi | Ori | Xori | Slti | Lui
  | Mul | Div | Rem
  | Lw | Sw | Lb | Sb
  | Beq | Bne | Blt | Bge
  | J | Jal | Jr | Jalr
  | Nop | Halt

(** Functional-unit routing class, mirroring SimpleScalar's op classes. *)
type op_class = Int_alu | Int_mult | Int_div | Load | Store | Ctrl

(** Control-flow taxonomy used by the branch-predictor unit. *)
type branch_kind = Cond | Jump | Call | Ret | Indirect

val op_class : t -> op_class
(** FU class of an opcode. Control-flow ops are [Ctrl] (they execute on an
    ALU); [Nop] and [Halt] are [Int_alu]. *)

val branch_kind : t -> branch_kind option
(** [branch_kind op] is [Some k] for control-flow opcodes, [None]
    otherwise. [Jalr] is classified [Indirect] (an indirect call), [Jr] as
    [Ret] when its source is the return-address register — that refinement
    is made by the interpreter, here [Jr] maps to [Indirect]. *)

val is_cond_kind : branch_kind -> bool
(** Caml_equal-free [kind = Cond] for the engine's commit path. *)

val is_memory : t -> bool
val is_control : t -> bool
val mnemonic : t -> string
val pp : Format.formatter -> t -> unit
val all : t list
(** Every opcode, for exhaustive enumeration in tests. *)
