type t =
  | Add | Sub | And | Or | Xor | Sll | Srl | Sra | Slt
  | Addi | Andi | Ori | Xori | Slti | Lui
  | Mul | Div | Rem
  | Lw | Sw | Lb | Sb
  | Beq | Bne | Blt | Bge
  | J | Jal | Jr | Jalr
  | Nop | Halt

type op_class = Int_alu | Int_mult | Int_div | Load | Store | Ctrl

type branch_kind = Cond | Jump | Call | Ret | Indirect

let op_class = function
  | Add | Sub | And | Or | Xor | Sll | Srl | Sra | Slt
  | Addi | Andi | Ori | Xori | Slti | Lui | Nop | Halt -> Int_alu
  | Mul -> Int_mult
  | Div | Rem -> Int_div
  | Lw | Lb -> Load
  | Sw | Sb -> Store
  | Beq | Bne | Blt | Bge | J | Jal | Jr | Jalr -> Ctrl

let branch_kind = function
  | Beq | Bne | Blt | Bge -> Some Cond
  | J -> Some Jump
  | Jal -> Some Call
  | Jr -> Some Ret
  | Jalr -> Some Indirect
  | Add | Sub | And | Or | Xor | Sll | Srl | Sra | Slt
  | Addi | Andi | Ori | Xori | Slti | Lui
  | Mul | Div | Rem | Lw | Sw | Lb | Sb | Nop | Halt -> None

(* A match, not [= Cond]: consulted at commit for every branch, where
   polymorphic equality on the variant would call caml_equal. *)
let is_cond_kind = function
  | Cond -> true
  | Jump | Call | Ret | Indirect -> false

let is_memory op =
  match op_class op with
  | Load | Store -> true
  | Int_alu | Int_mult | Int_div | Ctrl -> false

let is_control op = op_class op = Ctrl

let mnemonic = function
  | Add -> "add" | Sub -> "sub" | And -> "and" | Or -> "or" | Xor -> "xor"
  | Sll -> "sll" | Srl -> "srl" | Sra -> "sra" | Slt -> "slt"
  | Addi -> "addi" | Andi -> "andi" | Ori -> "ori" | Xori -> "xori"
  | Slti -> "slti" | Lui -> "lui"
  | Mul -> "mul" | Div -> "div" | Rem -> "rem"
  | Lw -> "lw" | Sw -> "sw" | Lb -> "lb" | Sb -> "sb"
  | Beq -> "beq" | Bne -> "bne" | Blt -> "blt" | Bge -> "bge"
  | J -> "j" | Jal -> "jal" | Jr -> "jr" | Jalr -> "jalr"
  | Nop -> "nop" | Halt -> "halt"

let pp ppf op = Format.pp_print_string ppf (mnemonic op)

let all =
  [ Add; Sub; And; Or; Xor; Sll; Srl; Sra; Slt;
    Addi; Andi; Ori; Xori; Slti; Lui;
    Mul; Div; Rem;
    Lw; Sw; Lb; Sb;
    Beq; Bne; Blt; Bge;
    J; Jal; Jr; Jalr;
    Nop; Halt ]
