(** Domain-parallel design-space sweeps.

    A sweep is a list of independent jobs — (workload, configuration,
    scale) triples — sharded across worker domains ({!Pool}). Each job
    generates its trace and runs {!Resim_core.Resim.simulate_trace}
    entirely on one domain (every [Engine.t] is an independent mutable
    island, so confinement is the whole safety argument), and results
    come back in job order with per-job wall-clock telemetry.

    Trace generation and the timing engine are deterministic, so a
    sweep's results are identical at any [jobs] count; a parallel run
    only changes wall-clock time. *)

(** Which input size to run a kernel at (mirrors the report runner). *)
type scale =
  | Default         (** the kernel's default scale *)
  | Evaluation      (** the kernel's [evaluation_scale] — table runs *)
  | Exact of int

type job = {
  label : string;
  workload : Resim_workloads.Workload.t;
  config : Resim_core.Config.t;
  scale : scale;
}

val job :
  ?label:string ->
  ?scale:scale ->
  config:Resim_core.Config.t ->
  Resim_workloads.Workload.t ->
  job
(** [label] defaults to the kernel name; [scale] to [Evaluation]. *)

val generator_config :
  Resim_core.Config.t -> Resim_tracegen.Generator.config
(** The generator a job derives from its engine configuration: the
    configuration's predictor, wrong-path blocks of ROB + IFQ entries,
    and a 20 M instruction budget. *)

type telemetry = {
  wall_seconds : float;   (** tracegen + timing run, this job only *)
  host_mips : float;
      (** committed simulated instructions per host wall-clock second,
          in millions; 0 when the clock resolution swallowed the run *)
}

type result = {
  job : job;
  generated : Resim_tracegen.Generator.result;
  outcome : Resim_core.Resim.outcome;
  telemetry : telemetry;
}

exception Invalid_config of string
(** A job's configuration has {!Resim_check.Check.Config} errors; the
    payload names the job label and every failing field. *)

val run_job : job -> result
(** Run one job on the calling domain. Raises {!Invalid_config} before
    any work when the job's configuration does not validate. *)

val run : ?jobs:int -> job list -> result list
(** Shard the jobs over [jobs] worker domains (default
    {!Pool.recommended_jobs}; [1] runs everything on the calling
    domain) and return results in job order. The first failing job's
    exception, in job order, is re-raised. Every job's configuration is
    validated up front — {!Invalid_config} is raised before any domain
    spawns. *)

val total_wall : result list -> float
(** Sum of per-job wall times — the serial-equivalent cost, which a
    parallel run divides across domains. *)

val aggregate_host_mips : result list -> float
(** Total committed instructions over {!total_wall}, in MIPS. *)

val pp_table : Format.formatter -> result list -> unit
(** One row per job: label, kernel, scale, width/ROB/organization,
    major cycles, IPC, simulated MIPS on the Virtex-5 device, and host
    telemetry. *)
