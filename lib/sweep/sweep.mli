(** Domain-parallel design-space sweeps with per-job fault domains.

    A sweep is a list of independent jobs — (workload, configuration,
    scale) triples, or pre-built traces — sharded across worker domains
    ({!Pool}). Each job generates or takes its trace and runs
    {!Resim_core.Resim} entirely on one domain (every [Engine.t] is an
    independent mutable island, so confinement is the whole safety
    argument), and outcomes come back in job order.

    Robustness: by default each job runs in its own fault domain — a
    corrupt trace, watchdog deadlock, per-job timeout or unexpected
    crash becomes a structured {!outcome} in the {!report} and the rest
    of the sweep still completes. [~strict:true] restores the original
    fail-fast contract (validate everything up front, re-raise the
    first failing job's exception).

    Trace generation and the timing engine are deterministic, so a
    sweep's results are identical at any [jobs] count; a parallel run
    only changes wall-clock time. *)

(** Which input size to run a kernel at (mirrors the report runner). *)
type scale =
  | Default         (** the kernel's default scale *)
  | Evaluation      (** the kernel's [evaluation_scale] — table runs *)
  | Exact of int

type job = {
  label : string;
  workload : Resim_workloads.Workload.t;
  config : Resim_core.Config.t;
  scale : scale;
  records : Resim_trace.Record.t array option;
      (** pre-built trace overriding kernel generation *)
  stream : (unit -> unit -> Resim_trace.Record.t option) option;
      (** a pull-stream opener, called once on the worker domain that
          runs the job; overrides [records]. See {!stream_job}. *)
  timeout : float option;
      (** per-job wall-clock budget in seconds, overriding the policy *)
  sample : Resim_sample.Sample.spec option;
      (** run sampled (functional warm-up + detailed intervals,
          DESIGN.md §13) instead of fully detailed; the statistics then
          cover only the detailed portions and the result carries the
          sampled IPC report *)
}

val job :
  ?label:string ->
  ?scale:scale ->
  ?timeout:float ->
  ?sample:Resim_sample.Sample.spec ->
  config:Resim_core.Config.t ->
  Resim_workloads.Workload.t ->
  job
(** [label] defaults to the kernel name; [scale] to [Evaluation]. *)

val trace_job :
  ?label:string ->
  ?timeout:float ->
  ?sample:Resim_sample.Sample.spec ->
  config:Resim_core.Config.t ->
  Resim_trace.Record.t array ->
  job
(** A job over a pre-built (possibly corrupt) trace. Robust runs pass
    it through the resim-check trace lint before simulating, so
    protocol violations surface as structured {!Fault} failures with
    their RSM-T code rather than silently skewed statistics. *)

val stream_job :
  ?label:string ->
  ?timeout:float ->
  config:Resim_core.Config.t ->
  (unit -> unit -> Resim_trace.Record.t option) ->
  job
(** A job over a pull stream: the opener runs once, on the worker
    domain that executes the job, so it must capture only domain-safe
    values (typically a file path — e.g.
    [fun () -> Resim_trace.Stream.(next-of open_path path)]). The
    engine draws records through a [Source] window, so a trace larger
    than RAM sweeps in constant memory. There is no up-front lint
    gate on this path: the codec's typed stream errors (truncation,
    corruption — RSM-T codes) surface mid-run and land in
    [Failed (Fault _)]. Sampling is unavailable (one-pass stream). *)

val generator_config :
  Resim_core.Config.t -> Resim_tracegen.Generator.config
(** The generator a job derives from its engine configuration: the
    configuration's predictor, wrong-path blocks of ROB + IFQ entries,
    and a 20 M instruction budget. *)

type telemetry = {
  wall_seconds : float;
      (** the simulate phase only — trace generation/acquisition is
          excluded from the window on every path *)
  host_mips : float;
      (** committed simulated instructions per host wall-clock second,
          in millions; 0 when the clock resolution swallowed the run *)
}

type result = {
  job : job;
  generated : Resim_tracegen.Generator.result;
  outcome : Resim_core.Resim.outcome;
  telemetry : telemetry;
  sample_report : Resim_sample.Sample.report option;
      (** the sampled-IPC estimate when the job ran with a sampling
          spec *)
}

exception Invalid_config of string
(** A job's configuration has {!Resim_check.Check.Config} errors; the
    payload names the job label and every failing field. Raised only on
    the strict path. *)

val run_job : ?instrument:(Resim_core.Engine.t -> unit) -> job -> result
(** Run one job on the calling domain, fail-fast: raises
    {!Invalid_config} before any work when the configuration does not
    validate, and lets trace faults and deadlocks escape. [instrument]
    runs on each job's freshly created engine before its first cycle —
    the hook the engine-specialization layer ([Resim_spec.Spec]) and
    observability probes attach through. *)

(** {1 Fault domains} *)

(** Why a job produced no (complete) result. *)
type failure =
  | Fault of Resim_trace.Fault.t
      (** corrupt trace — carries the RSM-T code and record offset *)
  | Deadlock of Resim_core.Engine.deadlock
  | Invalid of string  (** configuration failed resim-check *)
  | Crashed of string  (** unexpected exception, [Printexc.to_string] *)

val failure_code : failure -> string
(** Short machine-readable tag: the RSM-T code, ["deadlock"],
    ["invalid-config"] or ["crash"]. *)

val failure_to_string : failure -> string

type outcome =
  | Ok of result
  | Failed of failure
  | Timed_out of float
      (** the per-job deadline hit; payload is wall seconds burned *)
  | Truncated of result * Resim_core.Checkpoint.t
      (** the cycle budget hit; partial stats plus a resume point *)

type job_report = { job : job; outcome : outcome; attempts : int }
type report = { job_reports : job_report list  (** in job order *) }

type policy = {
  timeout : float option;   (** default per-job budget, seconds *)
  max_cycles : int64 option;
  watchdog : int option;    (** no-progress cycles before deadlock *)
  retries : int;            (** extra attempts for {!retryable} outcomes *)
  backoff : float;          (** first retry delay, seconds; doubles *)
  max_backoff : float;      (** backoff cap, seconds *)
}

val default_policy : policy
(** No budgets, no retries, engine-default watchdog, 0.25 s → 5 s
    backoff. *)

val retryable : outcome -> bool
(** Whether another attempt could help: only host-side transients —
    [Failed (Crashed _)] and [Timed_out _] — qualify. Deterministic
    failures ([Fault], [Deadlock], [Invalid]) fail identically every
    attempt and are reported after exactly one. *)

val run_job_robust :
  ?policy:policy ->
  ?instrument:(Resim_core.Engine.t -> unit) ->
  job ->
  job_report
(** Run one job inside its fault domain on the calling domain: never
    raises. {!retryable} outcomes are retried with doubling, capped
    backoff up to [policy.retries] extra attempts; the backoff sleeps
    on the calling domain (the pooled {!run} path uses coordinator
    rounds instead). Attempt wall time is measured per attempt, so
    backoff never counts into [telemetry.wall_seconds]. *)

val run :
  ?strict:bool ->
  ?policy:policy ->
  ?prof:Resim_obs.Prof.t ->
  ?jobs:int ->
  ?instrument:(Resim_core.Engine.t -> unit) ->
  job list ->
  report
(** Shard the jobs over [jobs] worker domains (default
    {!Pool.recommended_jobs}; [1] runs everything on the calling
    domain). By default every job runs in its own fault domain and the
    sweep always completes with a full per-job report — partial results
    stay available when some jobs fail. {!retryable} outcomes are
    retried in coordinator-driven rounds: the coordinator sleeps out
    the (doubling, capped) backoff between rounds and resubmits only
    the still-retryable jobs, so no worker slot ever sleeps. With
    [~strict:true] the original contract applies: every configuration
    is validated up front ({!Invalid_config} before any domain spawns)
    and the first failing job's exception, in job order, is re-raised.
    [prof] charges pool queue-wait/run spans ({!Pool.map}).
    [instrument] runs on every job's fresh engine before its first
    cycle (see {!run_job}); each worker domain calls it on its own
    engines, so the hook must be domain-safe — the specialization
    installer and per-engine probes are. *)

val completed : report -> result list
(** Results with statistics, in job order: [Ok] plus [Truncated]
    (partial) ones. *)

val failures : report -> job_report list
(** [Failed] and [Timed_out] reports, in job order. *)

type counts = {
  ok : int;
  failed : int;
  timed_out : int;
  truncated : int;
  retried : int;  (** jobs that needed more than one attempt *)
}

val counts : report -> counts

(** {1 Aggregates and rendering} *)

val total_wall : result list -> float
(** Sum of per-job wall times — the serial-equivalent cost, which a
    parallel run divides across domains. *)

val aggregate_host_mips : result list -> float
(** Total committed instructions over {!total_wall}, in MIPS. *)

val pp_table : Format.formatter -> result list -> unit
(** One row per job: label, kernel, scale, width/ROB/organization,
    major cycles, IPC, simulated MIPS on the Virtex-5 device, and host
    telemetry. *)

val pp_failures : Format.formatter -> report -> unit
(** Failure-summary table: label, outcome tag, attempts, detail. *)

(** {1 Metrics export (observability layer)} *)

val aggregate_stall_causes : result list -> (string * int64) list
(** Element-wise sum of {!Resim_core.Stats.stall_causes} over the
    given (typically {!completed}) results, in taxonomy order. *)

val pp_stalls : Format.formatter -> result list -> unit

val metrics_json : report -> string
(** One JSON document for the whole sweep: per job its label, outcome
    tag, attempts, telemetry and full {!Resim_core.Stats.to_json}
    metrics ([null] for jobs without statistics). *)
