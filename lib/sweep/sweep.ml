module Config = Resim_core.Config
module Stats = Resim_core.Stats

type scale = Default | Evaluation | Exact of int

type job = {
  label : string;
  workload : Resim_workloads.Workload.t;
  config : Config.t;
  scale : scale;
}

let job ?label ?(scale = Evaluation) ~config workload =
  let label =
    match label with
    | Some label -> label
    | None -> Resim_workloads.Workload.name_of workload
  in
  { label; workload; config; scale }

let generator_config (config : Config.t) =
  { Resim_tracegen.Generator.predictor = config.predictor;
    wrong_path_limit = config.rob_entries + config.ifq_entries;
    max_instructions = 20_000_000 }

type telemetry = { wall_seconds : float; host_mips : float }

type result = {
  job : job;
  generated : Resim_tracegen.Generator.result;
  outcome : Resim_core.Resim.outcome;
  telemetry : telemetry;
}

let program_of job =
  let module K = (val job.workload : Resim_workloads.Kernel_sig.S) in
  match job.scale with
  | Default -> K.program ()
  | Evaluation -> K.program ~scale:K.evaluation_scale ()
  | Exact scale -> K.program ~scale ()

exception Invalid_config of string

(* Fail before any domain spawns or trace generation starts: a sweep
   burning minutes of host time on a configuration the validator
   rejects is the bug resim-check exists to catch. *)
let validate_job job =
  match Resim_check.Check.Config.error_summary job.config with
  | None -> ()
  | Some summary ->
      raise (Invalid_config (Printf.sprintf "%s: %s" job.label summary))

let run_job job =
  validate_job job;
  let started = Unix.gettimeofday () in
  let program = program_of job in
  let generated =
    Resim_tracegen.Generator.run ~config:(generator_config job.config)
      program
  in
  let outcome =
    Resim_core.Resim.simulate_trace ~config:job.config generated.records
  in
  let wall_seconds = Unix.gettimeofday () -. started in
  let committed =
    Int64.to_float (Stats.get Stats.committed outcome.stats)
  in
  let host_mips =
    if wall_seconds > 0.0 then committed /. wall_seconds /. 1e6 else 0.0
  in
  { job; generated; outcome; telemetry = { wall_seconds; host_mips } }

let run ?jobs list =
  List.iter validate_job list;
  let jobs =
    match jobs with Some jobs -> jobs | None -> Pool.recommended_jobs ()
  in
  Array.to_list (Pool.map ~jobs run_job (Array.of_list list))

let total_wall results =
  List.fold_left
    (fun acc result -> acc +. result.telemetry.wall_seconds)
    0.0 results

let aggregate_host_mips results =
  let committed =
    List.fold_left
      (fun acc result ->
        Int64.add acc (Stats.get Stats.committed result.outcome.stats))
      0L results
  in
  let wall = total_wall results in
  if wall > 0.0 then Int64.to_float committed /. wall /. 1e6 else 0.0

let scale_tag job =
  match job.scale with
  | Default -> "default"
  | Evaluation ->
      let module K = (val job.workload : Resim_workloads.Kernel_sig.S) in
      string_of_int K.evaluation_scale
  | Exact scale -> string_of_int scale

let pp_table ppf results =
  let v5 = Resim_fpga.Device.virtex5_xc5vlx50t in
  Format.fprintf ppf "@[<v>%-22s %-8s %8s %3s %4s %-9s %12s %7s %10s %8s %10s@,"
    "label" "kernel" "scale" "N" "ROB" "org" "major cyc" "IPC" "MIPS V5"
    "wall s" "host MIPS";
  List.iter
    (fun result ->
      let config = result.job.config in
      Format.fprintf ppf
        "%-22s %-8s %8s %3d %4d %-9s %12Ld %7.3f %10.2f %8.2f %10.3f@,"
        result.job.label
        (Resim_workloads.Workload.name_of result.job.workload)
        (scale_tag result.job) config.width config.rob_entries
        (Config.organization_name config.organization)
        (Stats.get Stats.major_cycles result.outcome.stats)
        (Stats.ipc result.outcome.stats)
        (Resim_core.Resim.mips result.outcome ~device:v5)
        result.telemetry.wall_seconds result.telemetry.host_mips)
    results;
  Format.fprintf ppf
    "@,%d job(s); serial-equivalent wall %.2f s; aggregate host %.3f MIPS@]"
    (List.length results) (total_wall results)
    (aggregate_host_mips results)
