module Config = Resim_core.Config
module Stats = Resim_core.Stats
module Engine = Resim_core.Engine
module Checkpoint = Resim_core.Checkpoint
module Fault = Resim_trace.Fault
module Rcheck = Resim_check.Check

type scale = Default | Evaluation | Exact of int

type job = {
  label : string;
  workload : Resim_workloads.Workload.t;
  config : Config.t;
  scale : scale;
  records : Resim_trace.Record.t array option;
      (* pre-built trace overriding kernel generation *)
  stream : (unit -> unit -> Resim_trace.Record.t option) option;
      (* opened on the worker domain; overrides [records] *)
  timeout : float option;  (* per-job wall-clock budget, seconds *)
  sample : Resim_sample.Sample.spec option;
      (* sampled simulation instead of a full detailed run *)
}

let job ?label ?(scale = Evaluation) ?timeout ?sample ~config workload =
  let label =
    match label with
    | Some label -> label
    | None -> Resim_workloads.Workload.name_of workload
  in
  { label; workload; config; scale; records = None; stream = None; timeout;
    sample }

let trace_job ?(label = "trace") ?timeout ?sample ~config records =
  { label;
    (* Placeholder for table rendering only: a pre-built trace never
       touches the kernel. *)
    workload = List.hd Resim_workloads.Workload.all;
    config;
    scale = Exact (Array.length records);
    records = Some records;
    stream = None;
    timeout;
    sample }

let stream_job ?(label = "stream") ?timeout ~config open_stream =
  { label;
    workload = List.hd Resim_workloads.Workload.all;
    config;
    scale = Exact 0;
    records = None;
    stream = Some open_stream;
    timeout;
    (* Sampling needs random access into the trace; a one-pass pull
       stream cannot provide it. *)
    sample = None }

let generator_config (config : Config.t) =
  { Resim_tracegen.Generator.predictor = config.predictor;
    wrong_path_limit = config.rob_entries + config.ifq_entries;
    max_instructions = 20_000_000 }

type telemetry = { wall_seconds : float; host_mips : float }

type result = {
  job : job;
  generated : Resim_tracegen.Generator.result;
  outcome : Resim_core.Resim.outcome;
  telemetry : telemetry;
  sample_report : Resim_sample.Sample.report option;
}

let program_of job =
  let module K = (val job.workload : Resim_workloads.Kernel_sig.S) in
  match job.scale with
  | Default -> K.program ()
  | Evaluation -> K.program ~scale:K.evaluation_scale ()
  | Exact scale -> K.program ~scale ()

exception Invalid_config of string

(* Fail before any domain spawns or trace generation starts: a sweep
   burning minutes of host time on a configuration the validator
   rejects is the bug resim-check exists to catch. *)
let validate_job job =
  match Rcheck.Config.error_summary job.config with
  | None -> ()
  | Some summary ->
      raise (Invalid_config (Printf.sprintf "%s: %s" job.label summary))

(* A pre-built trace arrives without generator metadata; derive the
   figures the result record and tables need from the records. *)
let generated_of_records records =
  let wrong =
    Array.fold_left
      (fun acc (r : Resim_trace.Record.t) ->
        if r.wrong_path then acc + 1 else acc)
      0 records
  in
  { Resim_tracegen.Generator.records;
    correct_path = Array.length records - wrong;
    wrong_path = wrong;
    mispredicted_branches = 0;
    executed_to_completion = true }

let acquire job =
  match job.records with
  | Some records -> generated_of_records records
  | None ->
      Resim_tracegen.Generator.run ~config:(generator_config job.config)
        (program_of job)

(* A streamed job's trace never materialises; after the run, the
   incremental summary stands in for generator metadata. *)
let generated_of_summary (summary : Resim_trace.Summary.t) =
  { Resim_tracegen.Generator.records = [||];
    correct_path = summary.correct_path;
    wrong_path = summary.wrong_path;
    mispredicted_branches = 0;
    executed_to_completion = true }

let wrap_result ~job ~generated ~started ~sample_report outcome =
  let wall_seconds = Unix.gettimeofday () -. started in
  let committed = Int64.to_float (Stats.get Stats.committed outcome.Resim_core.Resim.stats) in
  let host_mips =
    if wall_seconds > 0.0 then committed /. wall_seconds /. 1e6 else 0.0
  in
  { job; generated; outcome; telemetry = { wall_seconds; host_mips };
    sample_report }

let run_stream_job ?instrument job open_stream =
  let started = Unix.gettimeofday () in
  match
    Resim_core.Resim.simulate_pull_robust ~config:job.config ?instrument
      (open_stream ())
  with
  | Stdlib.Error (Resim_core.Resim.Fault fault) ->
      raise (Fault.Trace_fault fault)
  | Stdlib.Error (Resim_core.Resim.Deadlock d) -> raise (Engine.Deadlock d)
  | Stdlib.Ok robust ->
      let outcome = robust.Resim_core.Resim.outcome in
      wrap_result ~job
        ~generated:(generated_of_summary outcome.trace_summary)
        ~started ~sample_report:None outcome

let run_job ?instrument job =
  validate_job job;
  match job.stream with
  | Some open_stream -> run_stream_job ?instrument job open_stream
  | None ->
  let generated = acquire job in
  (* The wall-clock window opens after trace acquisition: host_mips is
     an engine-throughput figure, and generation (often the longer
     half) must not dilute it. A regression test pins this. *)
  let started = Unix.gettimeofday () in
  let outcome, sample_report =
    match job.sample with
    | None ->
        ( Resim_core.Resim.simulate_trace ~config:job.config ?instrument
            generated.records,
          None )
    | Some spec -> (
        (* Fail-fast contract: re-raise what a direct engine run would
           have thrown. *)
        match
          Resim_sample.Sample.run ~config:job.config ?instrument ~spec
            generated.records
        with
        | Stdlib.Ok (robust, report) ->
            (robust.Resim_core.Resim.outcome, Some report)
        | Stdlib.Error (Resim_core.Resim.Fault fault) ->
            raise (Fault.Trace_fault fault)
        | Stdlib.Error (Resim_core.Resim.Deadlock d) ->
            raise (Engine.Deadlock d))
  in
  let wall_seconds = Unix.gettimeofday () -. started in
  let committed =
    Int64.to_float (Stats.get Stats.committed outcome.stats)
  in
  let host_mips =
    if wall_seconds > 0.0 then committed /. wall_seconds /. 1e6 else 0.0
  in
  { job; generated; outcome; telemetry = { wall_seconds; host_mips };
    sample_report }

(* ------------------------------------------------------------------ *)
(* Per-job fault domains: one job's corrupt trace, deadlock, timeout or
   crash becomes a structured outcome in the report instead of taking
   the whole sweep down. *)

type failure =
  | Fault of Fault.t
  | Deadlock of Engine.deadlock
  | Invalid of string
  | Crashed of string

let failure_code = function
  | Fault fault -> fault.Fault.code
  | Deadlock _ -> "deadlock"
  | Invalid _ -> "invalid-config"
  | Crashed _ -> "crash"

let failure_to_string = function
  | Fault fault -> Fault.to_string fault
  | Deadlock d -> Format.asprintf "deadlock: %a" Engine.pp_deadlock d
  | Invalid summary -> "invalid configuration: " ^ summary
  | Crashed message -> "crashed: " ^ message

type outcome =
  | Ok of result
  | Failed of failure
  | Timed_out of float  (* wall seconds burned before the deadline hit *)
  | Truncated of result * Checkpoint.t

type job_report = { job : job; outcome : outcome; attempts : int }
type report = { job_reports : job_report list }

type policy = {
  timeout : float option;       (* default per-job budget, seconds *)
  max_cycles : int64 option;
  watchdog : int option;
  retries : int;                (* extra attempts for Failed outcomes *)
  backoff : float;              (* first retry delay, seconds *)
  max_backoff : float;
}

let default_policy =
  { timeout = None;
    max_cycles = None;
    watchdog = None;
    retries = 0;
    backoff = 0.25;
    max_backoff = 5.0 }

(* The §III protocol bound on a tagged block under this configuration —
   the generator's wrong-path limit, which RSM-T007 enforces. *)
let protocol_max_run (config : Config.t) =
  config.rob_entries + config.ifq_entries

let fault_of_diagnostic (d : Rcheck.Diagnostic.t) =
  (* Lint subjects are "record %d" (or "header"); recover the offset. *)
  let offset =
    match String.index_opt d.subject ' ' with
    | Some i -> (
        match
          int_of_string_opt
            (String.sub d.subject (i + 1) (String.length d.subject - i - 1))
        with
        | Some n -> n
        | None -> 0)
    | None -> 0
  in
  Fault.make ~code:d.code ~offset ~context:d.message

(* Streamed jobs: open the pull stream on this (worker) domain — the
   thunk captures only domain-safe values, typically a path — and let
   the engine draw records through a Source window. There is no
   up-front lint gate (a one-pass stream cannot be linted and then
   simulated); the codec cursor's typed errors surface mid-run as
   Trace_fault and land in [Failed (Fault _)], and a truncated stream
   is exactly such a fault, never a silently short [Ok]. *)
let attempt_stream ~policy ?instrument (job : job) open_stream : outcome =
  let started = Unix.gettimeofday () in
  let timeout =
    match job.timeout with Some t -> Some t | None -> policy.timeout
  in
  let deadline =
    Option.map
      (fun seconds ->
        let limit = started +. seconds in
        fun () -> Unix.gettimeofday () > limit)
      timeout
  in
  match
    Resim_core.Resim.simulate_pull_robust ~config:job.config
      ?watchdog:policy.watchdog ?max_cycles:policy.max_cycles ?deadline
      ?instrument (open_stream ())
  with
  | Stdlib.Error (Resim_core.Resim.Fault fault) -> Failed (Fault fault)
  | Stdlib.Error (Resim_core.Resim.Deadlock d) -> Failed (Deadlock d)
  | Stdlib.Ok robust -> (
      let outcome = robust.Resim_core.Resim.outcome in
      let result =
        wrap_result ~job
          ~generated:(generated_of_summary outcome.trace_summary)
          ~started ~sample_report:None outcome
      in
      match robust.Resim_core.Resim.stop with
      | Engine.Drained -> Ok result
      | Engine.Time_budget -> Timed_out result.telemetry.wall_seconds
      | Engine.Cycle_budget | Engine.Commit_target -> (
          match robust.Resim_core.Resim.resume with
          | Some checkpoint -> Truncated (result, checkpoint)
          | None -> Ok result))

let attempt_unsafe ~policy ?instrument job : outcome =
  match job.stream with
  | Some open_stream -> attempt_stream ~policy ?instrument job open_stream
  | None ->
  let generated = acquire job in
  (* Pre-built traces pass the resim-check lint gate first: the engine
     tolerates many protocol violations silently (orphan tags are
     discarded, runaway blocks squashed), so structural faults must
     surface here as structured failures with their RSM-T code. *)
  let gate =
    match job.records with
    | None -> None
    | Some records ->
        let lint =
          Rcheck.Trace.lint_records
            ~max_wrong_path_run:(protocol_max_run job.config) records
        in
        List.find_opt Rcheck.Diagnostic.is_error
          lint.Rcheck.Trace.diagnostics
  in
  match gate with
  | Some diagnostic -> Failed (Fault (fault_of_diagnostic diagnostic))
  | None -> (
      let started = Unix.gettimeofday () in
      let timeout =
        match job.timeout with Some t -> Some t | None -> policy.timeout
      in
      let deadline =
        Option.map
          (fun seconds ->
            let limit = started +. seconds in
            fun () -> Unix.gettimeofday () > limit)
          timeout
      in
      let simulated =
        match job.sample with
        | None ->
            Stdlib.Result.map
              (fun robust -> (robust, None))
              (Resim_core.Resim.simulate_robust ~config:job.config
                 ?watchdog:policy.watchdog ?max_cycles:policy.max_cycles
                 ?deadline ?instrument
                 generated.Resim_tracegen.Generator.records)
        | Some spec ->
            (* Sampled under the same budgets: the driver threads the
               deadline and cycle ceiling through every detailed
               interval, so truncation behaves like an unsampled run. *)
            Stdlib.Result.map
              (fun (robust, report) -> (robust, Some report))
              (Resim_sample.Sample.run ~config:job.config
                 ?watchdog:policy.watchdog ?max_cycles:policy.max_cycles
                 ?deadline ?instrument ~spec
                 generated.Resim_tracegen.Generator.records)
      in
      match simulated with
      | Stdlib.Error (Resim_core.Resim.Fault fault) -> Failed (Fault fault)
      | Stdlib.Error (Resim_core.Resim.Deadlock d) -> Failed (Deadlock d)
      | Stdlib.Ok (robust, sample_report) ->
          let wall_seconds = Unix.gettimeofday () -. started in
          let outcome = robust.Resim_core.Resim.outcome in
          let committed =
            Int64.to_float (Stats.get Stats.committed outcome.stats)
          in
          let host_mips =
            if wall_seconds > 0.0 then committed /. wall_seconds /. 1e6
            else 0.0
          in
          let result =
            { job; generated; outcome;
              telemetry = { wall_seconds; host_mips }; sample_report }
          in
          (match robust.Resim_core.Resim.stop with
          | Engine.Drained -> Ok result
          | Engine.Time_budget -> Timed_out wall_seconds
          | Engine.Cycle_budget | Engine.Commit_target -> (
              match robust.Resim_core.Resim.resume with
              | Some checkpoint -> Truncated (result, checkpoint)
              | None -> Ok result)))

let attempt ~policy ?instrument job : outcome =
  match attempt_unsafe ~policy ?instrument job with
  | outcome -> outcome
  | exception Fault.Trace_fault fault -> Failed (Fault fault)
  | exception Engine.Deadlock d -> Failed (Deadlock d)
  | exception exn -> Failed (Crashed (Printexc.to_string exn))

(* Deterministic failures — corrupt traces, deadlocks, invalid
   configurations — fail identically on every attempt, so retrying them
   burns retries x backoff of wall time for nothing. Only host-side
   transients are worth another attempt: an unexpected crash, or a
   deadline that a loaded machine may have caused. *)
let retryable = function
  | Failed (Crashed _) | Timed_out _ -> true
  | Ok _ | Truncated _ | Failed (Fault _ | Deadlock _ | Invalid _) -> false

let first_attempt ~policy ?instrument job : job_report =
  match Rcheck.Config.error_summary job.config with
  | Some summary -> { job; outcome = Failed (Invalid summary); attempts = 1 }
  | None -> { job; outcome = attempt ~policy ?instrument job; attempts = 1 }

let run_job_robust ?(policy = default_policy) ?instrument job : job_report =
  let rec go (report : job_report) backoff =
    if report.attempts > policy.retries || not (retryable report.outcome)
    then report
    else begin
      (* Direct single-job callers back off on the calling domain; the
         pooled [run] path retries in coordinator-driven rounds instead,
         so a worker slot never sleeps. Attempt telemetry is measured
         inside [attempt], so backoff never inflates wall_seconds. *)
      Unix.sleepf backoff;
      go
        { report with
          outcome = attempt ~policy ?instrument job;
          attempts = report.attempts + 1 }
        (Float.min policy.max_backoff (backoff *. 2.0))
    end
  in
  go (first_attempt ~policy ?instrument job) policy.backoff

let run ?(strict = false) ?policy ?prof ?jobs ?instrument list =
  let jobs =
    match jobs with Some jobs -> jobs | None -> Pool.recommended_jobs ()
  in
  if strict then begin
    List.iter validate_job list;
    let results =
      Pool.map ?prof ~jobs (run_job ?instrument) (Array.of_list list)
    in
    { job_reports =
        Array.to_list
          (Array.map
             (fun (result : result) ->
               { job = result.job; outcome = Ok result; attempts = 1 })
             results) }
  end
  else begin
    let policy = match policy with Some p -> p | None -> default_policy in
    let job_array = Array.of_list list in
    (* Round 0: one attempt per job across the pool. *)
    let reports =
      Pool.map ?prof ~jobs (first_attempt ~policy ?instrument) job_array
    in
    (* Retry rounds: the coordinator sleeps out the backoff once per
       round while every worker slot stays free, then resubmits only the
       still-retryable jobs. Merging by index preserves job order. *)
    let backoff = ref policy.backoff in
    let round = ref 0 in
    let pending () =
      let indices = ref [] in
      Array.iteri
        (fun i (report : job_report) ->
          if retryable report.outcome then indices := i :: !indices)
        reports;
      Array.of_list (List.rev !indices)
    in
    let continue = ref (policy.retries > 0) in
    while !continue && !round < policy.retries do
      let indices = pending () in
      if Array.length indices = 0 then continue := false
      else begin
        incr round;
        Unix.sleepf !backoff;
        backoff := Float.min policy.max_backoff (!backoff *. 2.0);
        let retried =
          Pool.map ?prof ~jobs
            (fun i -> attempt ~policy ?instrument job_array.(i))
            indices
        in
        Array.iteri
          (fun slot i ->
            let previous = reports.(i) in
            reports.(i) <-
              { previous with
                outcome = retried.(slot);
                attempts = previous.attempts + 1 })
          indices
      end
    done;
    { job_reports = Array.to_list reports }
  end

let completed report =
  List.filter_map
    (fun jr ->
      match jr.outcome with
      | Ok result | Truncated (result, _) -> Some result
      | Failed _ | Timed_out _ -> None)
    report.job_reports

let failures report =
  List.filter
    (fun jr ->
      match jr.outcome with
      | Failed _ | Timed_out _ -> true
      | Ok _ | Truncated _ -> false)
    report.job_reports

type counts = {
  ok : int;
  failed : int;
  timed_out : int;
  truncated : int;
  retried : int;
}

let counts report =
  List.fold_left
    (fun acc jr ->
      let acc =
        if jr.attempts > 1 then { acc with retried = acc.retried + 1 }
        else acc
      in
      match jr.outcome with
      | Ok _ -> { acc with ok = acc.ok + 1 }
      | Failed _ -> { acc with failed = acc.failed + 1 }
      | Timed_out _ -> { acc with timed_out = acc.timed_out + 1 }
      | Truncated _ -> { acc with truncated = acc.truncated + 1 })
    { ok = 0; failed = 0; timed_out = 0; truncated = 0; retried = 0 }
    report.job_reports

let total_wall results =
  List.fold_left
    (fun acc result -> acc +. result.telemetry.wall_seconds)
    0.0 results

let aggregate_host_mips results =
  let committed =
    List.fold_left
      (fun acc (result : result) ->
        Int64.add acc (Stats.get Stats.committed result.outcome.stats))
      0L results
  in
  let wall = total_wall results in
  if wall > 0.0 then Int64.to_float committed /. wall /. 1e6 else 0.0

(* ------------------------------------------------------------------ *)
(* Metrics export: per-job engine metrics and sweep-wide stall causes,
   for `resim sweep --metrics` and report tooling.                     *)

let aggregate_stall_causes results =
  List.fold_left
    (fun acc (result : result) ->
      List.map2
        (fun (name, total) (_, v) -> (name, Int64.add total v))
        acc
        (Stats.stall_causes result.outcome.stats))
    (Stats.stall_causes (Stats.create ()))
    results

let pp_stalls ppf results =
  Format.fprintf ppf "@[<v>stall causes (all completed jobs):@,";
  List.iter
    (fun (name, value) -> Format.fprintf ppf "  %-20s %Ld@," name value)
    (aggregate_stall_causes results);
  Format.fprintf ppf "@]"

let outcome_tag = function
  | Ok _ -> "ok"
  | Failed failure -> failure_code failure
  | Timed_out _ -> "timed-out"
  | Truncated _ -> "truncated"

let metrics_json report =
  let buffer = Buffer.create 1024 in
  Buffer.add_string buffer "{\"jobs\":[";
  List.iteri
    (fun i jr ->
      if i > 0 then Buffer.add_char buffer ',';
      Buffer.add_string buffer
        (Printf.sprintf "{\"label\":\"%s\",\"outcome\":\"%s\",\"attempts\":%d"
           (Resim_core.Json.escape jr.job.label)
           (outcome_tag jr.outcome)
           jr.attempts);
      (match jr.outcome with
      | Ok result | Truncated (result, _) ->
          Buffer.add_string buffer
            (Printf.sprintf
               ",\"telemetry\":{\"wall_seconds\":%.6f,\"host_mips\":%.4f}"
               result.telemetry.wall_seconds result.telemetry.host_mips);
          (match result.sample_report with
          | Some report ->
              Buffer.add_string buffer ",\"sample\":";
              Buffer.add_string buffer
                (Resim_sample.Sample.report_to_json report)
          | None -> ());
          Buffer.add_string buffer ",\"metrics\":";
          Buffer.add_string buffer (Stats.to_json result.outcome.stats)
      | Failed _ | Timed_out _ -> Buffer.add_string buffer ",\"metrics\":null");
      Buffer.add_char buffer '}')
    report.job_reports;
  Buffer.add_string buffer "]}";
  Buffer.contents buffer

let scale_tag job =
  match job.scale with
  | Default -> "default"
  | Evaluation ->
      let module K = (val job.workload : Resim_workloads.Kernel_sig.S) in
      string_of_int K.evaluation_scale
  | Exact scale -> string_of_int scale

let pp_table ppf results =
  let v5 = Resim_fpga.Device.virtex5_xc5vlx50t in
  Format.fprintf ppf "@[<v>%-22s %-8s %8s %3s %4s %-9s %12s %7s %10s %8s %10s@,"
    "label" "kernel" "scale" "N" "ROB" "org" "major cyc" "IPC" "MIPS V5"
    "wall s" "host MIPS";
  List.iter
    (fun (result : result) ->
      let config = result.job.config in
      Format.fprintf ppf
        "%-22s %-8s %8s %3d %4d %-9s %12Ld %7.3f %10.2f %8.2f %10.3f@,"
        result.job.label
        (Resim_workloads.Workload.name_of result.job.workload)
        (scale_tag result.job) config.width config.rob_entries
        (Config.organization_name config.organization)
        (Stats.get Stats.major_cycles result.outcome.stats)
        (Stats.ipc result.outcome.stats)
        (Resim_core.Resim.mips result.outcome ~device:v5)
        result.telemetry.wall_seconds result.telemetry.host_mips)
    results;
  Format.fprintf ppf
    "@,%d job(s); serial-equivalent wall %.2f s; aggregate host %.3f MIPS@]"
    (List.length results) (total_wall results)
    (aggregate_host_mips results)

let pp_failures ppf report =
  let failed = failures report in
  Format.fprintf ppf "@[<v>%-22s %-14s %-9s detail@," "label" "outcome"
    "attempts";
  List.iter
    (fun jr ->
      match jr.outcome with
      | Failed failure ->
          Format.fprintf ppf "%-22s %-14s %-9d %s@," jr.job.label
            (failure_code failure) jr.attempts (failure_to_string failure)
      | Timed_out seconds ->
          Format.fprintf ppf "%-22s %-14s %-9d deadline hit after %.2f s@,"
            jr.job.label "timed-out" jr.attempts seconds
      | Ok _ | Truncated _ -> ())
    failed;
  Format.fprintf ppf "%d of %d job(s) failed@]" (List.length failed)
    (List.length report.job_reports)
