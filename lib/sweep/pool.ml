type 'a state =
  | Pending
  | Value of 'a
  | Failed of exn * Printexc.raw_backtrace

type 'a task = {
  mutable state : 'a state;
  task_mutex : Mutex.t;
  task_done : Condition.t;
}

type t = {
  queue : (unit -> unit) Queue.t;
  mutex : Mutex.t;
  pending : Condition.t;
  mutable stopping : bool;
  mutable stopped : bool;
  mutable workers : unit Domain.t array;
  jobs : int;
  prof : Resim_obs.Prof.t option;
}

let jobs t = t.jobs

let worker pool () =
  let take () =
    Mutex.lock pool.mutex;
    while Queue.is_empty pool.queue && not pool.stopping do
      Condition.wait pool.pending pool.mutex
    done;
    (* [None] only when stopping and drained. *)
    let thunk = Queue.take_opt pool.queue in
    Mutex.unlock pool.mutex;
    thunk
  in
  (* With a profile attached, charge queue-wait and thunk-run time to
     pool/* sections (Prof is mutex-guarded, so worker domains share
     one profile safely). Without one, the loop reads no clock. *)
  let take, run =
    match pool.prof with
    | None -> (take, fun thunk -> thunk ())
    | Some prof ->
        ( (fun () -> Resim_obs.Prof.time prof "pool/wait" take),
          fun thunk -> Resim_obs.Prof.time prof "pool/run" thunk )
  in
  let rec loop () =
    match take () with
    | None -> ()
    | Some thunk ->
        run thunk;
        loop ()
  in
  loop ()

let create ?prof ~jobs () =
  if jobs < 1 then invalid_arg "Pool.create: jobs must be >= 1";
  let pool =
    { queue = Queue.create ();
      mutex = Mutex.create ();
      pending = Condition.create ();
      stopping = false;
      stopped = false;
      workers = [||];
      jobs;
      prof }
  in
  pool.workers <- Array.init jobs (fun _ -> Domain.spawn (worker pool));
  pool

let submit pool f =
  let task =
    { state = Pending;
      task_mutex = Mutex.create ();
      task_done = Condition.create () }
  in
  let thunk () =
    let outcome =
      match f () with
      | value -> Value value
      | exception exn -> Failed (exn, Printexc.get_raw_backtrace ())
    in
    Mutex.lock task.task_mutex;
    task.state <- outcome;
    Condition.broadcast task.task_done;
    Mutex.unlock task.task_mutex
  in
  Mutex.lock pool.mutex;
  if pool.stopping then begin
    Mutex.unlock pool.mutex;
    invalid_arg "Pool.submit: pool is shut down"
  end;
  Queue.push thunk pool.queue;
  Condition.signal pool.pending;
  Mutex.unlock pool.mutex;
  task

let await task =
  Mutex.lock task.task_mutex;
  let rec wait () =
    match task.state with
    | Pending ->
        Condition.wait task.task_done task.task_mutex;
        wait ()
    | Value value ->
        Mutex.unlock task.task_mutex;
        value
    | Failed (exn, backtrace) ->
        Mutex.unlock task.task_mutex;
        Printexc.raise_with_backtrace exn backtrace
  in
  wait ()

let shutdown pool =
  Mutex.lock pool.mutex;
  if pool.stopped then Mutex.unlock pool.mutex
  else begin
    pool.stopping <- true;
    pool.stopped <- true;
    Condition.broadcast pool.pending;
    Mutex.unlock pool.mutex;
    Array.iter Domain.join pool.workers
  end

let with_pool ?prof ~jobs f =
  let pool = create ?prof ~jobs () in
  Fun.protect ~finally:(fun () -> shutdown pool) (fun () -> f pool)

let map ?prof ~jobs f input =
  let n = Array.length input in
  if jobs <= 1 || n <= 1 then
    match prof with
    | None -> Array.map f input
    | Some prof ->
        Array.map (fun x -> Resim_obs.Prof.time prof "pool/run" (fun () -> f x))
          input
  else
    with_pool ?prof ~jobs:(min jobs n) (fun pool ->
        let tasks = Array.map (fun x -> submit pool (fun () -> f x)) input in
        Array.map await tasks)

let recommended_jobs () = Domain.recommended_domain_count ()
