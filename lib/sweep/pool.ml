module Sync = Resim_core.Sync

type 'a state =
  | Pending
  | Value of 'a
  | Failed of exn * Printexc.raw_backtrace

type 'a task = {
  mutable state : 'a state;
  task_mutex : Mutex.t;
  task_done : Condition.t;
}

type t = {
  queue : (unit -> unit) Queue.t;
  mutex : Mutex.t;
  pending : Condition.t;
  mutable stopping : bool;
  down : bool Atomic.t;  (* set once by the winning shutdown call *)
  mutable workers : unit Domain.t array;
  jobs : int;
  prof : Resim_obs.Prof.t option;
}

let jobs t = t.jobs

let worker pool () =
  let take () =
    Sync.with_lock pool.mutex (fun () ->
        while Queue.is_empty pool.queue && not pool.stopping do
          Condition.wait pool.pending pool.mutex
        done;
        (* [None] only when stopping and drained. *)
        Queue.take_opt pool.queue)
  in
  (* With a profile attached, charge queue-wait and thunk-run time to
     pool/* sections (Prof is mutex-guarded, so worker domains share
     one profile safely). Without one, the loop reads no clock. *)
  let take, run =
    match pool.prof with
    | None -> (take, fun thunk -> thunk ())
    | Some prof ->
        ( (fun () -> Resim_obs.Prof.time prof "pool/wait" take),
          fun thunk -> Resim_obs.Prof.time prof "pool/run" thunk )
  in
  let rec loop () =
    match take () with
    | None -> ()
    | Some thunk ->
        run thunk;
        loop ()
  in
  loop ()

let create ?prof ~jobs () =
  if jobs < 1 then invalid_arg "Pool.create: jobs must be >= 1";
  let pool =
    { queue = Queue.create ();
      mutex = Mutex.create ();
      pending = Condition.create ();
      stopping = false;
      down = Atomic.make false;
      workers = [||];
      jobs;
      prof }
  in
  (* Spawn outside the lock (a lock held across Domain.spawn is an
     RSM-D006 finding), then publish the array under [pool.mutex]:
     [shutdown] reads [pool.workers] under the same mutex, so the
     spawned handles are transferred with a happens-before edge rather
     than through a bare mutable field. The workers themselves never
     read [pool.workers]. *)
  let workers = Array.init jobs (fun _ -> Domain.spawn (worker pool)) in
  Sync.with_lock pool.mutex (fun () -> pool.workers <- workers);
  pool

let submit pool f =
  let task =
    { state = Pending;
      task_mutex = Mutex.create ();
      task_done = Condition.create () }
  in
  let thunk () =
    let outcome =
      match f () with
      | value -> Value value
      | exception exn -> Failed (exn, Printexc.get_raw_backtrace ())
    in
    Sync.with_lock task.task_mutex (fun () ->
        task.state <- outcome;
        Condition.broadcast task.task_done)
  in
  (* Lock-free rejection once shutdown has begun: a submit racing a
     drain (the server calls [shutdown] from its signal-drain path)
     must never block on [pool.mutex] only to learn the pool is gone —
     and a submit that slips past this check still hits the guarded
     [stopping] test below before the queue can accept it. *)
  if Atomic.get pool.down then invalid_arg "Pool.submit: pool is shut down";
  Sync.with_lock pool.mutex (fun () ->
      if pool.stopping then invalid_arg "Pool.submit: pool is shut down";
      Queue.push thunk pool.queue;
      Condition.signal pool.pending);
  task

let await task =
  Sync.with_lock task.task_mutex (fun () ->
      let rec wait () =
        match task.state with
        | Pending ->
            Condition.wait task.task_done task.task_mutex;
            wait ()
        | Value value -> value
        | Failed (exn, backtrace) ->
            Printexc.raise_with_backtrace exn backtrace
      in
      wait ())

let shutdown pool =
  (* Idempotent and safe concurrently with [submit] and with itself:
     exactly one caller wins the CAS and performs the drain-and-join;
     every other call — first or racing — returns immediately without
     touching [pool.mutex], so the server's signal-drain path can call
     this no matter what state the pool is in. The winner flips
     [stopping] and collects the handles under the lock, then joins
     outside it (workers must be able to take the mutex to drain). *)
  if Atomic.compare_and_set pool.down false true then begin
    let to_join =
      Sync.with_lock pool.mutex (fun () ->
          pool.stopping <- true;
          Condition.broadcast pool.pending;
          pool.workers)
    in
    Array.iter Domain.join to_join
  end

let with_pool ?prof ~jobs f =
  let pool = create ?prof ~jobs () in
  Fun.protect ~finally:(fun () -> shutdown pool) (fun () -> f pool)

let map ?prof ~jobs f input =
  let n = Array.length input in
  if jobs <= 1 || n <= 1 then
    match prof with
    | None -> Array.map f input
    | Some prof ->
        Array.map (fun x -> Resim_obs.Prof.time prof "pool/run" (fun () -> f x))
          input
  else
    with_pool ?prof ~jobs:(min jobs n) (fun pool ->
        let tasks = Array.map (fun x -> submit pool (fun () -> f x)) input in
        Array.map await tasks)

let recommended_jobs () = Domain.recommended_domain_count ()
