(** Fixed-size pool of worker domains behind a FIFO work queue.

    The substrate for domain-parallel sweeps: jobs are submitted as
    thunks, executed by [jobs] worker domains pulling from a shared
    queue (plain [Mutex]/[Condition], no dependencies), and observed
    through per-task futures. Submission order is preserved by the
    queue and {!map} awaits results in input order, so a pool of any
    size produces results in a deterministic order.

    Each thunk runs entirely on one worker domain — a mutable island
    such as an [Engine.t] created inside a thunk never migrates. *)

type t

val create : ?prof:Resim_obs.Prof.t -> jobs:int -> unit -> t
(** Spawn [jobs] worker domains. Raises [Invalid_argument] when
    [jobs < 1]. With [prof], workers charge queue-wait and thunk-run
    spans to the profile's [pool/wait] and [pool/run] sections. *)

val jobs : t -> int

type 'a task
(** A future for one submitted thunk. *)

val submit : t -> (unit -> 'a) -> 'a task
(** Enqueue a thunk. Raises [Invalid_argument] after {!shutdown} —
    without blocking: once a shutdown has begun, rejection is decided
    on a lock-free fast path, so a submit racing a drain never hangs
    on the pool mutex. *)

val await : 'a task -> 'a
(** Block until the task completes; re-raises (with its backtrace) any
    exception the thunk raised. *)

val shutdown : t -> unit
(** Drain the queue, then join every worker. Pending tasks still run.
    Idempotent and safe to call concurrently — with another [shutdown]
    or with in-flight {!submit}s: exactly one caller performs the
    drain-and-join, every other call returns immediately without
    taking the pool mutex (the server's signal-drain path depends on
    this). *)

val with_pool : ?prof:Resim_obs.Prof.t -> jobs:int -> (t -> 'a) -> 'a
(** [create], run the body, and {!shutdown} even on exceptions. *)

val map :
  ?prof:Resim_obs.Prof.t -> jobs:int -> ('a -> 'b) -> 'a array -> 'b array
(** Parallel [Array.map] with results in input order. [jobs <= 1] (or
    an input shorter than two elements) runs serially on the calling
    domain with no pool at all, so a serial sweep is exactly the code
    a parallel sweep runs per worker. On a thunk exception, the
    lowest-index failure is re-raised. *)

val recommended_jobs : unit -> int
(** [Domain.recommended_domain_count ()] — the host's useful
    parallelism (1 on a single-core host). *)
