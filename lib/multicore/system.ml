(* How a core's trace reaches its engine: a materialized array, or a
   pull stream drawn through a [Source] window so a core can run a
   trace larger than RAM (chunked file cursor, pipe, foreign adapter).
   Every core gets a Source-backed engine either way — [Records] is
   just the whole-array source. *)
type feed =
  | Records of Resim_trace.Record.t array
  | Stream of (unit -> Resim_trace.Record.t option)

type core_spec = {
  name : string;
  feed : feed;
  config : Resim_core.Config.t;
}

type core = {
  spec : core_spec;
  engine : Resim_core.Engine.t;
  mutable finished_at : int64 option;
  mutable fault : Resim_trace.Fault.t option;
      (* the core's stream died mid-run: it stopped, but did not drain *)
}

type t = { cores : core list; mutable clock : int64 }

let source_of_feed = function
  | Records records -> Resim_core.Source.of_array records
  | Stream pull -> Resim_core.Source.of_pull pull

let create specs =
  if specs = [] then invalid_arg "System.create: no cores";
  (match specs with
  | first :: rest ->
      List.iter
        (fun spec ->
          if
            spec.config.Resim_core.Config.organization
            <> first.config.Resim_core.Config.organization
            || spec.config.width <> first.config.width
          then
            invalid_arg
              "System.create: co-resident cores must share organization \
               and width")
        rest
  | [] -> ());
  let cores =
    List.map
      (fun spec ->
        { spec;
          engine =
            Resim_core.Engine.create_from_source ~config:spec.config
              (source_of_feed spec.feed);
          finished_at = None;
          fault = None })
      specs
  in
  { cores; clock = 0L }

let core_count t = List.length t.cores

let finished t =
  List.for_all (fun core -> core.finished_at <> None) t.cores

let step t =
  t.clock <- Int64.add t.clock 1L;
  List.iter
    (fun core ->
      match core.finished_at with
      | Some _ -> ()
      | None -> (
          (* A stream fault kills this core only: it stops at the
             current lockstep cycle with its prefix statistics, marked
             not-drained, and the other cores keep running. *)
          match Resim_core.Engine.step core.engine with
          | () ->
              if Resim_core.Engine.finished core.engine then
                core.finished_at <- Some t.clock
          | exception Resim_trace.Fault.Trace_fault fault ->
              core.fault <- Some fault;
              core.finished_at <- Some t.clock))
    t.cores

let faulted t = List.exists (fun core -> core.fault <> None) t.cores

let run ?(max_cycles = 1_000_000_000L) t =
  while (not (finished t)) && Int64.compare t.clock max_cycles < 0 do
    step t
  done;
  (* A core whose stream died stopped without draining: that is a
     truncated system run even though every core has stopped. *)
  if finished t && not (faulted t) then `Finished else `Truncated

type core_result = {
  core : string;
  stats : Resim_core.Stats.t;
  finished_at : int64;
  drained : bool;
  fault : Resim_trace.Fault.t option;
}

let results t =
  List.map
    (fun core ->
      { core = core.spec.name;
        stats = Resim_core.Engine.stats core.engine;
        finished_at = Option.value core.finished_at ~default:t.clock;
        drained = core.finished_at <> None && core.fault = None;
        fault = core.fault })
    t.cores

let elapsed_cycles t = t.clock

let aggregate_committed t =
  List.fold_left
    (fun acc core ->
      Int64.add acc
        (Resim_core.Stats.get Resim_core.Stats.committed
           (Resim_core.Engine.stats core.engine)))
    0L t.cores

let shared_latency t =
  match t.cores with
  | core :: _ -> Resim_core.Config.minor_cycle_latency core.spec.config
  | [] -> assert false

let aggregate_mips t ~device =
  Resim_fpga.Throughput.mips
    ~mhz:device.Resim_fpga.Device.minor_cycle_mhz
    ~minor_cycles_per_major:(shared_latency t)
    ~instructions:(aggregate_committed t) ~major_cycles:t.clock

let area_params (config : Resim_core.Config.t) =
  { Resim_fpga.Area.reference_params with
    width = config.width;
    ifq_entries = config.ifq_entries;
    decouple_entries = config.decouple_entries;
    rob_entries = config.rob_entries;
    lsq_entries = config.lsq_entries;
    with_icache = config.icache <> Resim_cache.Cache.Perfect;
    with_dcache = config.dcache <> Resim_cache.Cache.Perfect }

let area t =
  match t.cores with
  | core :: _ -> Resim_fpga.Area.estimate (area_params core.spec.config)
  | [] -> assert false

let fits t device =
  Resim_fpga.Area.instances_fitting (area t) device >= core_count t

let pp ppf t =
  Format.fprintf ppf "@[<v>%d cores, lockstep cycle %Ld@," (core_count t)
    t.clock;
  List.iter
    (fun result ->
      if result.drained then
        Format.fprintf ppf "%-10s committed %Ld, IPC %.3f, drained at %Ld@,"
          result.core
          (Resim_core.Stats.get Resim_core.Stats.committed result.stats)
          (Resim_core.Stats.ipc result.stats)
          result.finished_at
      else
        Format.fprintf ppf
          "%-10s committed %Ld, IPC %.3f, TRUNCATED at %Ld@," result.core
          (Resim_core.Stats.get Resim_core.Stats.committed result.stats)
          (Resim_core.Stats.ipc result.stats)
          result.finished_at)
    (results t);
  Format.fprintf ppf "@]"
