(** Multi-core ReSim — the paper's future-work direction made concrete
    (§VI: “it is possible to fit multiple ReSim instances in a single
    FPGA and simulate multi-core systems”).

    A system is a set of per-core ReSim engines stepped in lockstep, as
    co-resident instances sharing one FPGA clock would run. Cores are
    independent (private traces, private caches) — the shared-memory
    interconnect is out of the paper's scope — so per-core results equal
    standalone runs, which an integration test asserts. The module also
    answers the sizing questions: does the system fit a device, and what
    aggregate simulation throughput does it reach? *)

(** How a core's trace reaches its engine: a materialized array, or a
    pull stream drawn through a [Source] window — so a core can run a
    trace larger than RAM (chunked file cursor, pipe, foreign-format
    adapter). A pull that raises {!Resim_trace.Fault.Trace_fault}
    (truncated/corrupt stream) stops that core without draining it. *)
type feed =
  | Records of Resim_trace.Record.t array
  | Stream of (unit -> Resim_trace.Record.t option)

type core_spec = {
  name : string;
  feed : feed;
  config : Resim_core.Config.t;
}

type t

val create : core_spec list -> t
(** Raises [Invalid_argument] on an empty list or when configurations
    mix internal organizations or widths (co-resident instances share
    the minor-cycle schedule). *)

val core_count : t -> int
val step : t -> unit
(** One major cycle on every unfinished core. *)

val finished : t -> bool

val run : ?max_cycles:int64 -> t -> [ `Finished | `Truncated ]
(** Step until every core drains, or until [max_cycles] lockstep cycles
    have elapsed. [`Truncated] means at least one core did not drain:
    it still had work when the budget ran out, or its stream died with
    a {!Resim_trace.Fault.Trace_fault} (a truncated trace is truncated,
    never [`Finished]) — either way its statistics cover only the
    simulated prefix, and {!results} marks it as not drained. *)

type core_result = {
  core : string;
  stats : Resim_core.Stats.t;
  finished_at : int64;
      (** lockstep cycle the core drained (or its stream died) at; the
          current clock when the run was truncated before that *)
  drained : bool;
      (** false when the run stopped with work outstanding, or the
          core's stream faulted mid-run *)
  fault : Resim_trace.Fault.t option;
      (** the stream fault that stopped this core, when there was one *)
}

val results : t -> core_result list

val elapsed_cycles : t -> int64
(** Lockstep major cycles so far (= the slowest core's cycles when
    finished). *)

val aggregate_committed : t -> int64

val aggregate_mips : t -> device:Resim_fpga.Device.t -> float
(** Total simulated instructions per second across cores at the device's
    minor-cycle frequency: all cores advance one major cycle every
    [L] minor cycles. *)

val area : t -> Resim_fpga.Area.report
(** Cost of one core times the core count is an upper bound; this
    reports the per-core estimate — combine with {!fits}. *)

val fits : t -> Resim_fpga.Device.t -> bool
(** Do [core_count] instances fit the device, per the area model? *)

val pp : Format.formatter -> t -> unit
