type format = Fixed | Compact

exception Corrupt of string

let magic = "RSTR"
let version = 1

(* Field widths (bits). PCs and branch targets are instruction indices;
   addresses are byte addresses. *)
let type_bits = 2
let reg_bits = 5
let class_bits = 2
let kind_bits = 3
let pc_bits = 30
let addr_bits = 32
let selector_bits = 2

let type_other = 0
let type_memory = 1
let type_branch = 2

let class_code : Record.op_class -> int = function
  | Alu -> 0
  | Mult -> 1
  | Divide -> 2

let class_of_code = function
  | 0 -> Record.Alu
  | 1 -> Record.Mult
  | 2 -> Record.Divide
  | n -> raise (Corrupt (Printf.sprintf "op class %d" n))

let kind_code : Resim_isa.Opcode.branch_kind -> int = function
  | Cond -> 0 | Jump -> 1 | Call -> 2 | Ret -> 3 | Indirect -> 4

let kind_of_code : int -> Resim_isa.Opcode.branch_kind = function
  | 0 -> Cond | 1 -> Jump | 2 -> Call | 3 -> Ret | 4 -> Indirect
  | n -> raise (Corrupt (Printf.sprintf "branch kind %d" n))

let zigzag n = (n lsl 1) lxor (n asr 62)
let unzigzag z = (z lsr 1) lxor (- (z land 1))

(* Compact deltas: a 2-bit selector chooses an 8/16/24-bit zig-zag delta
   or a full-width absolute escape. *)
let put_delta w ~abs_bits ~value ~reference =
  let delta = zigzag (value - reference) in
  if delta < 1 lsl 8 then begin
    Bitio.Writer.put w ~bits:selector_bits 0;
    Bitio.Writer.put w ~bits:8 delta
  end
  else if delta < 1 lsl 16 then begin
    Bitio.Writer.put w ~bits:selector_bits 1;
    Bitio.Writer.put w ~bits:16 delta
  end
  else if delta < 1 lsl 24 then begin
    Bitio.Writer.put w ~bits:selector_bits 2;
    Bitio.Writer.put w ~bits:24 delta
  end
  else begin
    Bitio.Writer.put w ~bits:selector_bits 3;
    Bitio.Writer.put w ~bits:abs_bits value
  end

let get_delta r ~abs_bits ~reference =
  match Bitio.Reader.get r ~bits:selector_bits with
  | 0 -> reference + unzigzag (Bitio.Reader.get r ~bits:8)
  | 1 -> reference + unzigzag (Bitio.Reader.get r ~bits:16)
  | 2 -> reference + unzigzag (Bitio.Reader.get r ~bits:24)
  | _ -> Bitio.Reader.get r ~bits:abs_bits

type encoder_state = { mutable prev_pc : int; mutable prev_addr : int }

let encode_record format w state (record : Record.t) =
  let type_code =
    match record.payload with
    | Other _ -> type_other
    | Memory _ -> type_memory
    | Branch _ -> type_branch
  in
  Bitio.Writer.put w ~bits:type_bits type_code;
  Bitio.Writer.put_bool w record.wrong_path;
  Bitio.Writer.put w ~bits:reg_bits record.dest;
  Bitio.Writer.put w ~bits:reg_bits record.src1;
  Bitio.Writer.put w ~bits:reg_bits record.src2;
  let sequential = record.pc = state.prev_pc + 1 in
  Bitio.Writer.put_bool w sequential;
  if not sequential then begin
    match format with
    | Fixed -> Bitio.Writer.put w ~bits:pc_bits record.pc
    | Compact ->
        put_delta w ~abs_bits:pc_bits ~value:record.pc
          ~reference:(state.prev_pc + 1)
  end;
  state.prev_pc <- record.pc;
  match record.payload with
  | Other { op_class } ->
      Bitio.Writer.put w ~bits:class_bits (class_code op_class)
  | Memory { is_load; address } ->
      Bitio.Writer.put_bool w is_load;
      (match format with
      | Fixed -> Bitio.Writer.put w ~bits:addr_bits address
      | Compact ->
          put_delta w ~abs_bits:addr_bits ~value:address
            ~reference:state.prev_addr);
      state.prev_addr <- address
  | Branch { kind; taken; target } -> (
      Bitio.Writer.put w ~bits:kind_bits (kind_code kind);
      Bitio.Writer.put_bool w taken;
      match format with
      | Fixed -> Bitio.Writer.put w ~bits:pc_bits target
      | Compact ->
          put_delta w ~abs_bits:pc_bits ~value:target ~reference:record.pc)

let decode_record format r state : Record.t =
  let type_code = Bitio.Reader.get r ~bits:type_bits in
  let wrong_path = Bitio.Reader.get_bool r in
  let dest = Bitio.Reader.get r ~bits:reg_bits in
  let src1 = Bitio.Reader.get r ~bits:reg_bits in
  let src2 = Bitio.Reader.get r ~bits:reg_bits in
  let sequential = Bitio.Reader.get_bool r in
  let pc =
    if sequential then state.prev_pc + 1
    else
      match format with
      | Fixed -> Bitio.Reader.get r ~bits:pc_bits
      | Compact -> get_delta r ~abs_bits:pc_bits ~reference:(state.prev_pc + 1)
  in
  state.prev_pc <- pc;
  let payload =
    if type_code = type_other then
      Record.Other { op_class = class_of_code (Bitio.Reader.get r ~bits:class_bits) }
    else if type_code = type_memory then begin
      let is_load = Bitio.Reader.get_bool r in
      let address =
        match format with
        | Fixed -> Bitio.Reader.get r ~bits:addr_bits
        | Compact -> get_delta r ~abs_bits:addr_bits ~reference:state.prev_addr
      in
      state.prev_addr <- address;
      Record.Memory { is_load; address }
    end
    else if type_code = type_branch then begin
      let kind = kind_of_code (Bitio.Reader.get r ~bits:kind_bits) in
      let taken = Bitio.Reader.get_bool r in
      let target =
        match format with
        | Fixed -> Bitio.Reader.get r ~bits:pc_bits
        | Compact -> get_delta r ~abs_bits:pc_bits ~reference:pc
      in
      Record.Branch { kind; taken; target }
    end
    else raise (Corrupt (Printf.sprintf "record type %d" type_code))
  in
  { pc; wrong_path; dest; src1; src2; payload }

let fresh_state () = { prev_pc = -1; prev_addr = 0 }

let format_code = function Fixed -> 0 | Compact -> 1

let format_of_code = function
  | 0 -> Fixed
  | 1 -> Compact
  | n -> raise (Corrupt (Printf.sprintf "format %d" n))

let payload_string ?(format = Fixed) records =
  let w = Bitio.Writer.create () in
  let state = fresh_state () in
  Array.iter (encode_record format w state) records;
  (Bitio.Writer.contents w, Bitio.Writer.bit_length w)

(* A record count of -1 in the header marks a *streamed* trace: the
   producer did not know the count up front (tracegen --stream, pipes),
   and readers consume records until the payload runs dry. Any other
   negative count is corruption. *)
let streamed_count = -1L

let header_string ~format ~count =
  let header = Buffer.create 16 in
  Buffer.add_string header magic;
  Buffer.add_uint8 header version;
  Buffer.add_uint8 header (format_code format);
  Buffer.add_int64_be header (Int64.of_int count);
  Buffer.contents header

let encode ?(format = Fixed) records =
  let payload, _bits = payload_string ~format records in
  header_string ~format ~count:(Array.length records) ^ payload

let header_length = 4 + 1 + 1 + 8

type error = { error_code : string; byte_offset : int; reason : string }

let error_to_string e =
  Printf.sprintf "[%s] byte %d: %s" e.error_code e.byte_offset e.reason

module Cursor = struct
  type t = {
    reader : Bitio.Reader.t;
    format : format;
    count : int;
    state : encoder_state;
    mutable decoded : int;
  }

  let header_error data =
    if String.length data < header_length then
      Some
        { error_code = "RSM-T001";
          byte_offset = String.length data;
          reason =
            Printf.sprintf "truncated header (%d of %d bytes)"
              (String.length data) header_length }
    else if String.sub data 0 4 <> magic then
      Some { error_code = "RSM-T001"; byte_offset = 0; reason = "bad magic" }
    else if Char.code data.[4] <> version then
      Some
        { error_code = "RSM-T001";
          byte_offset = 4;
          reason = Printf.sprintf "bad version %d" (Char.code data.[4]) }
    else if Char.code data.[5] > 1 then
      Some
        { error_code = "RSM-T001";
          byte_offset = 5;
          reason = Printf.sprintf "bad format code %d" (Char.code data.[5]) }
    else if
      String.get_int64_be data 6 < 0L
      && String.get_int64_be data 6 <> streamed_count
    then Some { error_code = "RSM-T001"; byte_offset = 6; reason = "bad count" }
    else None

  let of_string_result data =
    match header_error data with
    | Some error -> Error error
    | None ->
        let format = format_of_code (Char.code data.[5]) in
        let count = Int64.to_int (String.get_int64_be data 6) in
        let payload =
          String.sub data header_length (String.length data - header_length)
        in
        Ok
          { reader = Bitio.Reader.create payload;
            format;
            count;
            state = fresh_state ();
            decoded = 0 }

  (* Chunked construction: parse the header from the channel, then hand
     the payload to a refilling reader that holds O(chunk) bytes at a
     time. Byte offsets in diagnostics stay absolute file offsets — the
     reader tracks the stream base across refills. *)
  let default_chunk = 64 * 1024

  let of_channel_result ?(chunk = default_chunk) ic =
    if chunk <= 0 then invalid_arg "Codec.Cursor.of_channel: chunk";
    let header = Bytes.create header_length in
    let got =
      let rec fill at =
        if at >= header_length then at
        else
          let n = input ic header at (header_length - at) in
          if n = 0 then at else fill (at + n)
      in
      fill 0
    in
    match header_error (Bytes.sub_string header 0 got) with
    | Some error -> Error error
    | None ->
        let refill () =
          let buffer = Bytes.create chunk in
          let n = input ic buffer 0 chunk in
          Bytes.sub_string buffer 0 n
        in
        Ok
          { reader = Bitio.Reader.of_refill refill;
            format = format_of_code (Bytes.get_uint8 header 5);
            count = Int64.to_int (Bytes.get_int64_be header 6);
            state = fresh_state ();
            decoded = 0 }

  let of_string data =
    match of_string_result data with
    | Ok cursor -> cursor
    | Error { reason; _ } -> raise (Corrupt reason)

  let format t = t.format
  let count t = t.count
  let decoded t = t.decoded

  let streamed t = t.count < 0

  (* Streamed cursors have no declared count: the next record exists as
     long as a whole payload byte does. End-of-stream zero padding is at
     most 7 bits, and no record is shorter than 8, so the test is exact
     at a clean end of stream; a mid-record cut still surfaces from the
     decoder as RSM-T002. *)
  let has_next t =
    if streamed t then Bitio.Reader.has_bits t.reader 8
    else t.decoded < t.count

  (* Payload position of the byte holding the next unread bit, relative
     to the whole stream (header included) so diagnostics point into the
     file the user has. *)
  let byte_offset t = header_length + Bitio.Reader.byte_position t.reader

  let next t =
    if not (has_next t) then invalid_arg "Codec.Cursor.next: exhausted";
    let record = decode_record t.format t.reader t.state in
    t.decoded <- t.decoded + 1;
    record

  let next_result t =
    if not (has_next t) then
      Error
        { error_code = "RSM-T002";
          byte_offset = byte_offset t;
          reason = "cursor exhausted: all declared records decoded" }
    else
      let at = byte_offset t in
      match decode_record t.format t.reader t.state with
      | record ->
          t.decoded <- t.decoded + 1;
          Ok record
      | exception Bitio.Reader.Out_of_bits ->
          Error
            { error_code = "RSM-T002";
              byte_offset = at;
              reason =
                (if streamed t then
                   Printf.sprintf
                     "stream ends inside record %d (streamed trace cut \
                      mid-record)"
                     t.decoded
                 else
                   Printf.sprintf "payload ends inside record %d of %d"
                     t.decoded t.count) }
      | exception Corrupt reason ->
          Error
            { error_code = "RSM-T003";
              byte_offset = at;
              reason = Printf.sprintf "undecodable record: %s" reason }

  let bits_remaining t = Bitio.Reader.bits_remaining t.reader

  (* Whole bytes left after the declared records — refills once so the
     check is also meaningful on chunked cursors. The byte count is the
     buffered lower bound (exact for in-memory cursors). *)
  let trailing_bytes t =
    if Bitio.Reader.has_bits t.reader 8 then
      Bitio.Reader.bits_remaining t.reader / 8
    else 0

  (* Degraded-mode resync: scan forward byte-by-byte for a position from
     which a record (and, when enough payload remains, the record after
     it) decodes cleanly, then park the cursor there. Decoder state
     (previous PC/address) carries over from the last good record, so
     resynced deltas may still be semantically wrong — the caller marks
     the run degraded; resync only restores structural decodability. *)
  let resync t =
    let start = Bitio.Reader.byte_position t.reader in
    let reader_length =
      (Bitio.Reader.bits_consumed t.reader + Bitio.Reader.bits_remaining t.reader)
      / 8
    in
    let try_at offset =
      Bitio.Reader.seek_byte t.reader offset;
      let trial =
        { prev_pc = t.state.prev_pc; prev_addr = t.state.prev_addr }
      in
      match
        let first = decode_record t.format t.reader trial in
        if Bitio.Reader.bits_remaining t.reader >= 8 then
          ignore (decode_record t.format t.reader trial);
        first
      with
      | _ -> true
      | exception (Bitio.Reader.Out_of_bits | Corrupt _) -> false
    in
    let rec scan offset =
      if offset > reader_length then None
      else if try_at offset then begin
        (* Re-park at the validated offset: the probe consumed records. *)
        Bitio.Reader.seek_byte t.reader offset;
        Some (offset - start)
      end
      else scan (offset + 1)
    in
    scan (start + 1)
end

let decode data =
  let cursor = Cursor.of_string data in
  let records =
    try
      if Cursor.streamed cursor then begin
        let out = ref [] in
        while Cursor.has_next cursor do
          out := Cursor.next cursor :: !out
        done;
        Array.of_list (List.rev !out)
      end
      else Array.init cursor.Cursor.count (fun _ -> Cursor.next cursor)
    with Bitio.Reader.Out_of_bits -> raise (Corrupt "truncated payload")
  in
  (records, cursor.Cursor.format)

let decode_result data =
  match Cursor.of_string_result data with
  | Error error -> Error error
  | Ok cursor ->
      let rec collect acc =
        if not (Cursor.has_next cursor) then Ok (List.rev acc)
        else
          match Cursor.next_result cursor with
          | Ok record -> collect (record :: acc)
          | Error error -> Error error
      in
      (match collect [] with
      | Ok records -> Ok (Array.of_list records, cursor.Cursor.format)
      | Error error -> Error error)

(* Degraded decode: salvage every structurally decodable record from a
   corrupt stream. On a decode failure the cursor resyncs to the next
   byte boundary that decodes cleanly and the failure is reported as a
   structured fault; the caller is expected to mark the resulting run
   degraded. Returns [Error] only when the stream header itself is
   unusable. *)
let decode_degraded data =
  match Cursor.of_string_result data with
  | Error error -> Error error
  | Ok cursor ->
      let faults = ref [] in
      let records = ref [] in
      let fault (error : error) =
        faults :=
          Fault.make ~code:error.error_code ~offset:cursor.Cursor.decoded
            ~context:
              (Printf.sprintf "byte %d: %s" error.byte_offset error.reason)
          :: !faults
      in
      let stop = ref false in
      while (not !stop) && Cursor.has_next cursor do
        match Cursor.next_result cursor with
        | Ok record -> records := record :: !records
        | Error error -> (
            fault error;
            (* Skipping to the next decodable boundary also abandons the
               record-count bookkeeping for the skipped span: we keep
               decoding until the payload runs dry or the count is met. *)
            match Cursor.resync cursor with
            | Some _skipped -> cursor.Cursor.decoded <- cursor.Cursor.decoded + 1
            | None -> stop := true)
      done;
      Ok
        ( Array.of_list (List.rev !records),
          cursor.Cursor.format,
          List.rev !faults )

let encoded_bits ?(format = Fixed) records =
  let _payload, bits = payload_string ~format records in
  bits

let bits_per_instruction ?(format = Fixed) records =
  if Array.length records = 0 then 0.0
  else float_of_int (encoded_bits ~format records) /. float_of_int (Array.length records)

let write_file ?format path records =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (encode ?format records))

(* Host-level failures (missing file, permissions, a file shorter than
   its own header claims) are part of the same typed-error surface as
   malformed bytes: RSM-T009, byte offset 0, with the host's reason.
   Nothing below here lets a raw [Sys_error]/[End_of_file] escape. *)
let io_error reason = { error_code = "RSM-T009"; byte_offset = 0; reason }

let with_file_in path f =
  match open_in_bin path with
  | exception Sys_error reason -> Error (io_error reason)
  | ic -> Fun.protect ~finally:(fun () -> close_in_noerr ic) (fun () -> f ic)

let read_file_result path =
  with_file_in path (fun ic ->
      match really_input_string ic (in_channel_length ic) with
      | exception End_of_file ->
          Error (io_error (path ^ ": file shrank while reading"))
      | exception Sys_error reason -> Error (io_error reason)
      | data -> decode_result data)

let read_file path =
  match read_file_result path with
  | Ok (records, format) -> (records, format)
  | Error { reason; _ } -> raise (Corrupt reason)

(* --- streaming encoder --------------------------------------------- *)

(* Constant-memory encode to a channel: the header goes out first with
   [streamed_count] (the producer does not know the total), then whole
   bytes are drained to the channel as records accumulate. Only [close]
   pads, so the byte stream is seamless at every drain point. *)
module Encoder = struct
  type t = {
    writer : Bitio.Writer.t;
    channel : out_channel;
    format : format;
    state : encoder_state;
    flush_bytes : int;
    mutable pushed : int;
    mutable closed : bool;
  }

  let to_channel ?(format = Fixed) ?(flush_bytes = 64 * 1024) channel =
    if flush_bytes <= 0 then invalid_arg "Codec.Encoder.to_channel: flush";
    output_string channel
      (header_string ~format ~count:(Int64.to_int streamed_count));
    { writer = Bitio.Writer.create ();
      channel;
      format;
      state = fresh_state ();
      flush_bytes;
      pushed = 0;
      closed = false }

  let push t record =
    if t.closed then invalid_arg "Codec.Encoder.push: closed";
    encode_record t.format t.writer t.state record;
    t.pushed <- t.pushed + 1;
    if Bitio.Writer.buffered_bytes t.writer >= t.flush_bytes then begin
      output_string t.channel (Bitio.Writer.drain t.writer);
      flush t.channel
    end

  let pushed t = t.pushed

  let close t =
    if not t.closed then begin
      t.closed <- true;
      output_string t.channel (Bitio.Writer.drain t.writer);
      output_string t.channel (Bitio.Writer.contents t.writer);
      flush t.channel
    end
end

(* --- sharded trace files ------------------------------------------- *)

(* Shard naming: [stem.NNNN.rtr], four zero-padded digits, indices
   consecutive from 0. Each shard is a complete self-describing stream
   (own header, own count, fresh delta state), so every shard lints and
   decodes on its own and a concatenating cursor just chains them. *)
module Shard = struct
  let extension = ".rtr"

  let path ~stem index = Printf.sprintf "%s.%04d%s" stem index extension

  (* [stem_of "trace.0003.rtr"] = Some ("trace", 3). *)
  let stem_of path =
    if not (Filename.check_suffix path extension) then None
    else
      let base = Filename.chop_suffix path extension in
      let n = String.length base in
      if n < 5 || base.[n - 5] <> '.' then None
      else
        let digits = String.sub base (n - 4) 4 in
        if String.for_all (fun c -> c >= '0' && c <= '9') digits then
          Some (String.sub base 0 (n - 5), int_of_string digits)
        else None

  (* Expand a user-supplied path to the shard set it names. Accepts any
     shard of the set (the set always restarts at 0000) or the bare
     stem; [None] when the path is neither shard-shaped nor a stem with
     a 0000 shard next to it. *)
  let expand candidate =
    let from_stem stem =
      let rec collect index acc =
        let shard = path ~stem index in
        if Sys.file_exists shard then collect (index + 1) (shard :: acc)
        else List.rev acc
      in
      collect 0 []
    in
    let stem =
      match stem_of candidate with
      | Some (stem, _) -> Some stem
      | None ->
          if Sys.file_exists (path ~stem:candidate 0) then Some candidate
          else None
    in
    match stem with
    | None -> None
    | Some stem -> ( match from_stem stem with [] -> None | p -> Some p)

  let write ?format ~records_per_shard ~stem records =
    if records_per_shard <= 0 then
      invalid_arg "Codec.Shard.write: records_per_shard";
    let total = Array.length records in
    (* [records_per_shard] is a target, not an exact size: a shard never
       ends inside a wrong-path block, so every shard starts with an
       untagged record and lints clean on its own (the tag-bit protocol
       requires a block to follow its mispredicted branch). *)
    let rec cut index start acc =
      if start >= total then List.rev acc
      else begin
        let stop = ref (min total (start + records_per_shard)) in
        while !stop < total && records.(!stop).Record.wrong_path do
          incr stop
        done;
        let slice = Array.sub records start (!stop - start) in
        let shard_path = path ~stem index in
        write_file ?format shard_path slice;
        cut (index + 1) !stop (shard_path :: acc)
      end
    in
    match cut 0 0 [] with
    | [] ->
        (* An empty trace still writes one (empty) shard, so the set
           exists on disk and expands. *)
        let shard_path = path ~stem 0 in
        write_file ?format shard_path [||];
        [ shard_path ]
    | shards -> shards
end
