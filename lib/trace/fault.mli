(** Structured runtime trace faults.

    The runtime counterpart of the static RSM-T diagnostic codes
    (resim-check layer 2): when a corrupt or protocol-violating trace
    reaches a consumer — the codec's streaming cursor, the timing
    engine — the failure surfaces as a {!Trace_fault} carrying the rule
    code, the record offset where it was detected, and a human-readable
    context line, never as an anonymous exception with no location. *)

type t = {
  code : string;     (** RSM-T diagnostic code, e.g. ["RSM-T005"] *)
  offset : int;      (** record index where the fault was detected *)
  context : string;  (** what the consumer was doing when it fired *)
}

exception Trace_fault of t

val make : code:string -> offset:int -> context:string -> t

val fail : code:string -> offset:int -> string -> 'a
(** [fail ~code ~offset context] raises {!Trace_fault}. *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit
