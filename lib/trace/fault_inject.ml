(* Deterministic trace corruption for robustness testing.

   Each corruption class mirrors one of the RSM-T trace-lint rules
   (DESIGN.md §9): injecting the class into a clean trace must make the
   linter / codec / engine surface the matching structured diagnostic —
   never an anonymous exception, never a hang. Classes split into two
   families:

   - record-level: rewrite the decoded record array before encoding
     (tag-bit protocol violations, impossible payload fields);
   - byte-level: corrupt the encoded stream after encoding (header
     damage, truncation, bit rot).

   Everything is seeded and free of [Random]/wall-clock state so a
   reported failure replays exactly from (class, seed). *)

type t =
  | Bit_flip
  | Truncate_payload
  | Truncate_header
  | Bad_magic
  | Bad_version
  | Bad_format
  | Count_overrun
  | Bad_field
  | Trailing_garbage
  | Orphan_tag
  | Tag_after_uncond
  | Runaway_tag
  | Bad_payload

let all =
  [ Bit_flip; Truncate_payload; Truncate_header; Bad_magic; Bad_version;
    Bad_format; Count_overrun; Bad_field; Trailing_garbage; Orphan_tag;
    Tag_after_uncond; Runaway_tag; Bad_payload ]

let name = function
  | Bit_flip -> "bit-flip"
  | Truncate_payload -> "truncate-payload"
  | Truncate_header -> "truncate-header"
  | Bad_magic -> "bad-magic"
  | Bad_version -> "bad-version"
  | Bad_format -> "bad-format"
  | Count_overrun -> "count-overrun"
  | Bad_field -> "bad-field"
  | Trailing_garbage -> "trailing-garbage"
  | Orphan_tag -> "orphan-tag"
  | Tag_after_uncond -> "tag-after-uncond"
  | Runaway_tag -> "runaway-tag"
  | Bad_payload -> "bad-payload"

let of_name s = List.find_opt (fun c -> String.equal (name c) s) all

let expected_code = function
  | Bad_magic | Bad_version | Bad_format | Truncate_header -> Some "RSM-T001"
  | Truncate_payload | Count_overrun -> Some "RSM-T002"
  | Bad_field -> Some "RSM-T003"
  | Trailing_garbage -> Some "RSM-T004"
  | Orphan_tag -> Some "RSM-T005"
  | Tag_after_uncond -> Some "RSM-T006"
  | Runaway_tag -> Some "RSM-T007"
  | Bad_payload -> Some "RSM-T008"
  | Bit_flip -> None

let severity = function
  | Trailing_garbage | Tag_after_uncond -> `Warning
  | Bit_flip -> `Varies
  | Truncate_payload | Truncate_header | Bad_magic | Bad_version | Bad_format
  | Count_overrun | Bad_field | Orphan_tag | Runaway_tag | Bad_payload ->
      `Error

let describe = function
  | Bit_flip -> "flip one payload bit (outcome depends on the field hit)"
  | Truncate_payload -> "drop bytes from the end of the payload"
  | Truncate_header -> "cut the stream inside the 14-byte header"
  | Bad_magic -> "corrupt a magic byte"
  | Bad_version -> "rewrite the version byte"
  | Bad_format -> "rewrite the format byte to an unknown code"
  | Count_overrun -> "inflate the declared record count past the payload"
  | Bad_field -> "force the first record's type code to the invalid value 3"
  | Trailing_garbage -> "append undeclared bytes after the last record"
  | Orphan_tag -> "tag a record that does not follow a branch"
  | Tag_after_uncond -> "start a tagged block after an unconditional branch"
  | Runaway_tag -> "append a tagged run longer than the wrong-path bound"
  | Bad_payload -> "record an unconditional branch as not taken"

let default_max_run = 64

(* splitmix-style avalanche over (seed, salt); 62-bit, no [Random]. *)
let hash seed salt =
  let h = (seed * 0x9E3779B1) lxor (salt * 0x85EBCA77) lxor 0x165667B1 in
  let h = (h lxor (h lsr 30)) * 0x45D9F3B3 in
  let h = (h lxor (h lsr 27)) * 0x27D4EB2F in
  (h lxor (h lsr 31)) land max_int

let set_byte data i c =
  let b = Bytes.of_string data in
  Bytes.set b i c;
  Bytes.unsafe_to_string b

(* ---- byte-level classes ------------------------------------------- *)

let inject_encoded ?(seed = 0) fault data =
  let len = String.length data in
  let hdr = Codec.header_length in
  match fault with
  | Bad_magic ->
      if len < 4 then Some data
      else
        let i = hash seed 1 mod 4 in
        Some (set_byte data i (Char.chr (Char.code data.[i] lxor 0xff)))
  | Bad_version ->
      if len < 5 then Some data else Some (set_byte data 4 '\xfe')
  | Bad_format ->
      if len < 6 then Some data else Some (set_byte data 5 '\x07')
  | Truncate_header -> Some (String.sub data 0 (min len (hash seed 2 mod hdr)))
  | Truncate_payload ->
      let payload = len - hdr in
      if payload <= 0 then Some data
      else
        let cut = 1 + (hash seed 3 mod payload) in
        Some (String.sub data 0 (len - cut))
  | Count_overrun ->
      if len < hdr then Some data
      else begin
        let b = Bytes.of_string data in
        let count = Bytes.get_int64_be b 6 in
        let extra = Int64.of_int (1 + (hash seed 4 mod 7)) in
        Bytes.set_int64_be b 6 (Int64.add count extra);
        Some (Bytes.unsafe_to_string b)
      end
  | Bad_field ->
      (* The first record is byte-aligned at the end of the header and
         opens with the 2-bit type code; 0b11 is unassigned. *)
      if len <= hdr then Some data
      else Some (set_byte data hdr (Char.chr (Char.code data.[hdr] lor 0xc0)))
  | Trailing_garbage ->
      let n = 1 + (hash seed 5 mod 16) in
      Some (data ^ String.init n (fun i -> Char.chr (hash seed (64 + i) land 0xff)))
  | Bit_flip ->
      let payload = len - hdr in
      if payload <= 0 then Some data
      else
        let i = hdr + (hash seed 7 mod payload) in
        let bit = hash seed 8 land 7 in
        Some (set_byte data i (Char.chr (Char.code data.[i] lxor (1 lsl bit))))
  | Orphan_tag | Tag_after_uncond | Runaway_tag | Bad_payload -> None

(* ---- record-level classes ----------------------------------------- *)

let with_wrong_path (r : Record.t) v = { r with Record.wrong_path = v }

let pick seed salt = function
  | [] -> None
  | l -> Some (List.nth l (hash seed salt mod List.length l))

(* RSM-T005: tag a record whose predecessor is neither a branch nor part
   of a tagged block — or the very first record of the trace. *)
let orphan_tag seed records =
  let n = Array.length records in
  if n = 0 then records
  else begin
    let candidates = ref [] in
    for i = n - 1 downto 0 do
      let start_ok =
        i = 0
        ||
        let prev = records.(i - 1) in
        (not (Record.is_branch prev)) && not prev.Record.wrong_path
      in
      if start_ok && not records.(i).Record.wrong_path then
        candidates := i :: !candidates
    done;
    let i = match pick seed 10 !candidates with Some i -> i | None -> 0 in
    let out = Array.copy records in
    out.(i) <- with_wrong_path out.(i) true;
    out
  end

let is_uncond_branch (r : Record.t) =
  match r.Record.payload with
  | Record.Branch { kind = Resim_isa.Opcode.Cond; _ } -> false
  | Record.Branch _ -> true
  | Record.Memory _ | Record.Other _ -> false

(* RSM-T006: start a tagged block right after an unconditional branch;
   when the trace has none, plant a jump at record 0. *)
let tag_after_uncond seed records =
  let n = Array.length records in
  if n < 2 then records
  else begin
    let candidates = ref [] in
    for i = n - 1 downto 1 do
      let prev = records.(i - 1) in
      if
        is_uncond_branch prev
        && (not prev.Record.wrong_path)
        && not records.(i).Record.wrong_path
      then candidates := i :: !candidates
    done;
    let out = Array.copy records in
    (match pick seed 11 !candidates with
    | Some i -> out.(i) <- with_wrong_path out.(i) true
    | None ->
        let r0 = out.(0) in
        out.(0) <-
          { r0 with
            Record.wrong_path = false;
            payload =
              Record.Branch
                { kind = Resim_isa.Opcode.Jump;
                  taken = true;
                  target = r0.Record.pc + 1 } };
        out.(1) <- with_wrong_path out.(1) true);
    out
  end

(* RSM-T007: append a mispredicted conditional branch followed by a
   tagged run one record longer than [max_run] — a stuck tag bit. *)
let runaway_tag max_run records =
  let n = Array.length records in
  let last_pc = if n = 0 then -1 else records.(n - 1).Record.pc in
  let branch_pc = last_pc + 1 in
  let branch : Record.t =
    { pc = branch_pc;
      wrong_path = false;
      dest = 0;
      src1 = 1;
      src2 = 0;
      payload =
        Record.Branch
          { kind = Resim_isa.Opcode.Cond;
            taken = true;
            target = branch_pc + 2 } }
  in
  let tagged i : Record.t =
    { pc = branch_pc + 1 + i;
      wrong_path = true;
      dest = 0;
      src1 = 0;
      src2 = 0;
      payload = Record.Other { op_class = Record.Alu } }
  in
  Array.concat [ records; [| branch |]; Array.init (max_run + 1) tagged ]

(* RSM-T008: an unconditional branch recorded as not taken — a field
   combination no well-formed generator can produce. *)
let bad_payload seed records =
  let n = Array.length records in
  if n = 0 then records
  else begin
    let candidates = ref [] in
    for i = n - 1 downto 0 do
      if Record.is_branch records.(i) then candidates := i :: !candidates
    done;
    let out = Array.copy records in
    (match pick seed 12 !candidates with
    | Some i ->
        let r = out.(i) in
        let target =
          match r.Record.payload with
          | Record.Branch { target; _ } -> target
          | Record.Memory _ | Record.Other _ -> 0
        in
        out.(i) <-
          { r with
            Record.payload =
              Record.Branch
                { kind = Resim_isa.Opcode.Ret; taken = false; target } }
    | None ->
        let r0 = out.(0) in
        out.(0) <-
          { r0 with
            Record.payload =
              Record.Branch
                { kind = Resim_isa.Opcode.Jump;
                  taken = false;
                  target = r0.Record.pc + 1 } });
    out
  end

let inject_records ?(seed = 0) ?(max_run = default_max_run) fault records =
  match fault with
  | Orphan_tag -> Some (orphan_tag seed records)
  | Tag_after_uncond -> Some (tag_after_uncond seed records)
  | Runaway_tag -> Some (runaway_tag max_run records)
  | Bad_payload -> Some (bad_payload seed records)
  | Bit_flip | Truncate_payload | Truncate_header | Bad_magic | Bad_version
  | Bad_format | Count_overrun | Bad_field | Trailing_garbage ->
      None

let apply ?(seed = 0) ?(format = Codec.Fixed) ?(max_run = default_max_run)
    fault records =
  match inject_records ~seed ~max_run fault records with
  | Some corrupted -> Codec.encode ~format corrupted
  | None -> (
      let encoded = Codec.encode ~format records in
      match inject_encoded ~seed fault encoded with
      | Some corrupted -> corrupted
      | None -> assert false (* every class is in exactly one family *))
