module Opcode = Resim_isa.Opcode
module Predictor = Resim_bpred.Predictor

type format = Text | Riscv

let format_to_string = function Text -> "text" | Riscv -> "riscv"

let format_of_string = function
  | "text" -> Some Text
  | "riscv" -> Some Riscv
  | _ -> None

type error = {
  code : string;
  file : string;
  line : int;
  col : int;
  reason : string;
}

let error_to_string e =
  Printf.sprintf "%s:%d:%d: [%s] %s" e.file e.line e.col e.code e.reason

(* Local exception used to short-circuit line parsing; never escapes the
   adapter — every public entry point returns it as a value. *)
exception Bad_line of error

type config = {
  predictor : Predictor.config;
  wrong_path_limit : int;
  max_line_bytes : int;
}

let default_config =
  { predictor = Predictor.default_config;
    wrong_path_limit = 16 + 4;
    max_line_bytes = 4096 }

(* Foreign PCs are byte addresses; records carry instruction indices.
   Both profiles are fixed-width 4-byte instruction streams, so the
   index is pc/4, folded into the codec's 30-bit PC field. *)
let pc_mask = (1 lsl 30) - 1
let index_of_pc pc = (pc lsr 2) land pc_mask
let addr_mask = (1 lsl 32) - 1

(* One parsed line, before branch classification (which needs one line
   of lookahead: taken-ness is inferred from the next PC). *)
type shape =
  | Plain of Record.op_class
  | Mem of { is_load : bool; address : int }
  | Ctl of { kind : Opcode.branch_kind; target : int option }

type parsed = {
  index : int;
  dest : int;
  src1 : int;
  src2 : int;
  shape : shape;
}

(* --- tokenizing ----------------------------------------------------- *)

(* Split on runs of spaces/tabs, keeping 1-based start columns for
   diagnostics. A trailing '\r' (CRLF input) and trailing whitespace are
   tolerated silently. *)
let tokenize line =
  let line =
    let n = String.length line in
    if n > 0 && line.[n - 1] = '\r' then String.sub line 0 (n - 1) else line
  in
  let n = String.length line in
  let out = ref [] in
  let i = ref 0 in
  while !i < n do
    while !i < n && (line.[!i] = ' ' || line.[!i] = '\t') do incr i done;
    if !i < n then begin
      let start = !i in
      while !i < n && line.[!i] <> ' ' && line.[!i] <> '\t' do incr i done;
      out := (String.sub line start (!i - start), start + 1) :: !out
    end
  done;
  List.rev !out

let bad ~file ~line ~col ~code fmt =
  Printf.ksprintf
    (fun reason -> raise (Bad_line { code; file; line; col; reason }))
    fmt

let parse_hex ~file ~line ~what (token, col) =
  let literal =
    if String.length token > 1 && (token.[1] = 'x' || token.[1] = 'X')
       && token.[0] = '0'
    then token
    else "0x" ^ token
  in
  match int_of_string_opt literal with
  | Some v when v >= 0 -> v
  | Some v -> bad ~file ~line ~col ~code:"RSM-A003" "%s %d is negative" what v
  | None ->
      bad ~file ~line ~col ~code:"RSM-A002" "%s %S is not a hex number" what
        token

let parse_int ~file ~line ~what (token, col) =
  match int_of_string_opt token with
  | Some v -> v
  | None ->
      bad ~file ~line ~col ~code:"RSM-A002" "%s %S is not a number" what token

(* Foreign register fields: -1 means "none" (our register 0); larger
   files than ours fold into the 32-register namespace. *)
let parse_reg ~file ~line ~what token =
  let v = parse_int ~file ~line ~what token in
  if v < -1 then
    bad ~file ~line ~col:(snd token) ~code:"RSM-A003"
      "%s register %d is out of domain (minimum -1)" what v
  else if v = -1 then 0
  else v mod Resim_isa.Reg.count

(* --- text profile ---------------------------------------------------
   <PC> <op> <dst> <src1> <src2>
   PC hex (0x optional), op 0=alu 1=mult 2=divide, registers decimal
   with -1 = none. Branches are not marked in the file: an instruction
   whose successor PC is not PC+4 is reclassified as a taken
   conditional branch targeting the successor. *)

let parse_text ~file ~line tokens =
  match tokens with
  | [ pc; op; dst; s1; s2 ] ->
      let pc = parse_hex ~file ~line ~what:"PC" pc in
      let opv = parse_int ~file ~line ~what:"op" op in
      let op_class =
        match opv with
        | 0 -> Record.Alu
        | 1 -> Record.Mult
        | 2 -> Record.Divide
        | n ->
            bad ~file ~line ~col:(snd op) ~code:"RSM-A003"
              "op %d is out of domain (0=alu 1=mult 2=divide)" n
      in
      { index = index_of_pc pc;
        dest = parse_reg ~file ~line ~what:"dst" dst;
        src1 = parse_reg ~file ~line ~what:"src1" s1;
        src2 = parse_reg ~file ~line ~what:"src2" s2;
        shape = Plain op_class }
  | _ ->
      bad ~file ~line ~col:1 ~code:"RSM-A001"
        "expected 5 fields (<PC> <op> <dst> <src1> <src2>), got %d"
        (List.length tokens)

(* --- RISC-V instruction-trace profile -------------------------------
   <PC> <INSN> [mem <ADDR>]
   PC and the 32-bit instruction word in hex; loads/stores carry their
   effective address in the optional "mem" operand. Uncompressed
   RV32/RV64 only (insn[1:0] must be 11). *)

let b_immediate insn =
  let v =
    (((insn lsr 31) land 0x1) lsl 12)
    lor (((insn lsr 7) land 0x1) lsl 11)
    lor (((insn lsr 25) land 0x3f) lsl 5)
    lor (((insn lsr 8) land 0xf) lsl 1)
  in
  if v land (1 lsl 12) <> 0 then v - (1 lsl 13) else v

let j_immediate insn =
  let v =
    (((insn lsr 31) land 0x1) lsl 20)
    lor (((insn lsr 12) land 0xff) lsl 12)
    lor (((insn lsr 20) land 0x1) lsl 11)
    lor (((insn lsr 21) land 0x3ff) lsl 1)
  in
  if v land (1 lsl 20) <> 0 then v - (1 lsl 21) else v

let parse_riscv ~file ~line tokens =
  let pc_tok, insn_tok, mem =
    match tokens with
    | [ pc; insn ] -> (pc, insn, None)
    | [ pc; insn; (("mem", _) as kw); addr ] -> (pc, insn, Some (kw, addr))
    | _ ->
        bad ~file ~line ~col:1 ~code:"RSM-A001"
          "expected <PC> <INSN> [mem <ADDR>], got %d fields"
          (List.length tokens)
  in
  let pc = parse_hex ~file ~line ~what:"PC" pc_tok in
  let insn = parse_hex ~file ~line ~what:"instruction" insn_tok in
  if insn > 0xffff_ffff then
    bad ~file ~line ~col:(snd insn_tok) ~code:"RSM-A005"
      "instruction word %x wider than 32 bits" insn;
  if insn land 0x3 <> 0x3 then
    bad ~file ~line ~col:(snd insn_tok) ~code:"RSM-A005"
      "compressed or invalid instruction word %08x (insn[1:0] must be 11)"
      insn;
  let address =
    match mem with
    | None -> None
    | Some (_, addr) ->
        Some (parse_hex ~file ~line ~what:"mem address" addr land addr_mask)
  in
  let opcode = insn land 0x7f in
  let rd = (insn lsr 7) land 0x1f in
  let funct3 = (insn lsr 12) land 0x7 in
  let rs1 = (insn lsr 15) land 0x1f in
  let rs2 = (insn lsr 20) land 0x1f in
  let funct7 = (insn lsr 25) land 0x7f in
  let index = index_of_pc pc in
  let require_mem what =
    match address with
    | Some a -> a
    | None ->
        bad ~file ~line ~col:1 ~code:"RSM-A001" "%s line is missing 'mem <ADDR>'"
          what
  in
  let link r = r = 1 || r = 5 in
  let plain ?(dest = rd) ?(src1 = rs1) ?(src2 = rs2) shape =
    { index; dest; src1; src2; shape }
  in
  match opcode with
  | 0x63 ->
      (* conditional branch: static target from the B-type immediate *)
      plain ~dest:0
        (Ctl { kind = Cond; target = Some (index_of_pc (pc + b_immediate insn)) })
  | 0x6f ->
      let kind : Opcode.branch_kind = if link rd then Call else Jump in
      plain ~src1:0 ~src2:0
        (Ctl { kind; target = Some (index_of_pc (pc + j_immediate insn)) })
  | 0x67 ->
      let kind : Opcode.branch_kind =
        if (not (link rd)) && link rs1 then Ret
        else if link rd then Call
        else Indirect
      in
      plain ~src2:0 (Ctl { kind; target = None })
  | 0x03 -> plain ~src2:0 (Mem { is_load = true; address = require_mem "load" })
  | 0x23 ->
      plain ~dest:0 (Mem { is_load = false; address = require_mem "store" })
  | 0x33 when funct7 = 1 ->
      plain (Plain (if funct3 < 4 then Record.Mult else Record.Divide))
  | _ -> plain (Plain Record.Alu)

(* --- streaming adapter ----------------------------------------------
   Pulls lines, classifies with one line of lookahead, and synthesizes
   wrong-path blocks by running the inferred branch stream through our
   own predictor — the same protocol as the reference generator: on a
   conditional direction mispredict, the front end runs
   [wrong_path_limit] sequential instructions down the path the
   predictor chose. *)

type stats = {
  lines : int;
  instructions : int;
  wrong_path : int;
  mispredicted : int;
}

type t = {
  file : string;
  format : format;
  config : config;
  read_line : unit -> string option;
  predictor : Predictor.t;
  branch_targets : (int, int) Hashtbl.t;
      (* PCs seen as taken (inferred) branches, with their last taken
         target: a later fall-through at such a PC is a not-taken
         conditional, not a plain op. O(distinct branch PCs) — the only
         state in the adapter that grows with the trace. *)
  mutable line : int;          (* lines consumed so far *)
  mutable ahead : parsed option;
  mutable primed : bool;       (* [ahead] is valid (maybe None = EOF) *)
  mutable pending : Record.t list;
  mutable instructions : int;
  mutable wrong : int;
  mutable mispredicted : int;
  mutable failed : error option;
}

let create ?(config = default_config) ~format ~file read_line =
  { file;
    format;
    config;
    read_line;
    predictor = Predictor.create config.predictor;
    branch_targets = Hashtbl.create 64;
    line = 0;
    ahead = None;
    primed = false;
    pending = [];
    instructions = 0;
    wrong = 0;
    mispredicted = 0;
    failed = None }

let of_channel ?config ~format ~file ic =
  create ?config ~format ~file (fun () ->
      match input_line ic with
      | line -> Some line
      | exception End_of_file -> None)

let of_string ?config ~format ?(file = "<string>") data =
  let lines = String.split_on_char '\n' data in
  (* [split_on_char] leaves a final "" for newline-terminated input;
     drop it so it does not count as a (blank) line. *)
  let lines =
    match List.rev lines with
    | "" :: rest -> List.rev rest
    | _ -> lines
  in
  let remaining = ref lines in
  create ?config ~format ~file (fun () ->
      match !remaining with
      | [] -> None
      | line :: rest ->
          remaining := rest;
          Some line)

let stats t =
  { lines = t.line;
    instructions = t.instructions;
    wrong_path = t.wrong;
    mispredicted = t.mispredicted }

let blank tokens = tokens = []

let comment = function
  | (tok, _) :: _ -> String.length tok > 0 && tok.[0] = '#'
  | [] -> false

(* Read and parse the next instruction line, skipping blanks and
   [#] comments. Raises [Bad_line]. *)
let rec parse_next t =
  match t.read_line () with
  | None -> None
  | Some raw ->
      t.line <- t.line + 1;
      if String.length raw > t.config.max_line_bytes then
        bad ~file:t.file ~line:t.line ~col:(t.config.max_line_bytes + 1)
          ~code:"RSM-A004" "line exceeds %d bytes" t.config.max_line_bytes;
      let tokens = tokenize raw in
      if blank tokens || comment tokens then parse_next t
      else
        Some
          (match t.format with
          | Text -> parse_text ~file:t.file ~line:t.line tokens
          | Riscv -> parse_riscv ~file:t.file ~line:t.line tokens)

let wrong_path_block t wrong_pc =
  let limit = t.config.wrong_path_limit in
  let block =
    List.init limit (fun i ->
        { Record.pc = (wrong_pc + i) land pc_mask;
          wrong_path = true;
          dest = 0;
          src1 = 0;
          src2 = 0;
          payload = Record.Other { op_class = Record.Alu } })
  in
  t.wrong <- t.wrong + limit;
  t.pending <- t.pending @ block

(* Classify [cur] given the lookahead [next] and emit it (plus any
   synthesized wrong-path block onto [pending]). *)
let emit t cur next =
  let fallthrough = cur.index + 1 in
  let discontinuous =
    match next with Some n -> n.index <> fallthrough | None -> false
  in
  let payload =
    match cur.shape with
    | Mem { is_load; address } -> Record.Memory { is_load; address }
    | Plain op_class -> (
        (* Unmarked control flow (text profile): a PC break means this
           instruction transferred control — a taken conditional. A
           fall-through at a PC previously seen branching is the same
           branch not taken (otherwise every inferred branch would be
           taken and no direction could ever mispredict). *)
        match next with
        | Some n when discontinuous ->
            Hashtbl.replace t.branch_targets cur.index n.index;
            Record.Branch { kind = Opcode.Cond; taken = true; target = n.index }
        | _ -> (
            match Hashtbl.find_opt t.branch_targets cur.index with
            | Some target ->
                Record.Branch { kind = Opcode.Cond; taken = false; target }
            | None -> Record.Other { op_class }))
    | Ctl { kind; target } ->
        let taken =
          match kind with
          | Opcode.Cond -> discontinuous
          | Jump | Call | Ret | Indirect -> true
        in
        let target =
          match next with
          | Some n when taken -> n.index
          | _ -> (
              match target with Some s -> s | None -> fallthrough)
        in
        Record.Branch { kind; taken; target }
  in
  let record =
    { Record.pc = cur.index;
      wrong_path = false;
      dest = cur.dest;
      src1 = cur.src1;
      src2 = cur.src2;
      payload }
  in
  t.instructions <- t.instructions + 1;
  (match payload with
  | Record.Branch { kind; taken; target } ->
      let prediction =
        Predictor.predict t.predictor ~pc:cur.index ~kind ~fallthrough
          ~actual_taken:taken ~actual_target:target
      in
      Predictor.update t.predictor ~pc:cur.index ~kind ~taken ~target;
      let direction_wrong = prediction.taken <> taken in
      Predictor.record_resolution t.predictor ~correct:(not direction_wrong);
      if direction_wrong && kind = Opcode.Cond then begin
        t.mispredicted <- t.mispredicted + 1;
        let wrong_pc = if prediction.taken then target else fallthrough in
        wrong_path_block t wrong_pc
      end
  | Record.Memory _ | Record.Other _ -> ());
  record

let next_result t =
  match t.failed with
  | Some error -> Error error
  | None -> (
      match t.pending with
      | record :: rest ->
          t.pending <- rest;
          Ok (Some record)
      | [] -> (
          try
            if not t.primed then begin
              t.ahead <- parse_next t;
              t.primed <- true;
              if t.ahead = None then
                bad ~file:t.file ~line:1 ~col:1 ~code:"RSM-A006"
                  "no instructions in %s trace" (format_to_string t.format)
            end;
            match t.ahead with
            | None -> Ok None
            | Some cur ->
                let next = parse_next t in
                t.ahead <- next;
                Ok (Some (emit t cur next))
          with Bad_line error ->
            t.failed <- Some error;
            Error error))

(* Drain the whole stream into an array — the in-memory entry point
   (simulate/sweep on adapted traces that fit in RAM). *)
let to_records_result t =
  let rec collect acc =
    match next_result t with
    | Ok (Some record) -> collect (record :: acc)
    | Ok None -> Ok (Array.of_list (List.rev acc))
    | Error error -> Error error
  in
  collect []

let adapt_string_result ?config ~format ?file data =
  to_records_result (of_string ?config ~format ?file data)

(* Pull interface for the streaming engine path: adapter errors surface
   as the same typed {!Fault.Trace_fault} the codec cursors raise, so
   robust runners report them uniformly. *)
let pull_exn t () =
  match next_result t with
  | Ok next -> next
  | Error error ->
      Fault.fail ~code:error.code ~offset:t.instructions
        (error_to_string error)
