module Writer = struct
  type t = {
    buffer : Buffer.t;
    mutable acc : int;     (* pending bits, left-aligned in [acc_bits] *)
    mutable acc_bits : int;
    mutable total : int;
  }

  let create () = { buffer = Buffer.create 4096; acc = 0; acc_bits = 0; total = 0 }

  let flush_bytes w =
    while w.acc_bits >= 8 do
      let shift = w.acc_bits - 8 in
      Buffer.add_char w.buffer (Char.chr ((w.acc lsr shift) land 0xff));
      w.acc <- w.acc land ((1 lsl shift) - 1);
      w.acc_bits <- shift
    done

  let put w ~bits value =
    if bits <= 0 || bits > 62 then invalid_arg "Bitio.Writer.put: bits";
    let masked = value land ((1 lsl bits) - 1) in
    (* Emit in chunks small enough to keep [acc] within native int range. *)
    let rec emit bits =
      if bits > 0 then begin
        let chunk = min bits (56 - w.acc_bits) in
        let shift = bits - chunk in
        w.acc <- (w.acc lsl chunk) lor ((masked lsr shift) land ((1 lsl chunk) - 1));
        w.acc_bits <- w.acc_bits + chunk;
        flush_bytes w;
        emit shift
      end
    in
    emit bits;
    w.total <- w.total + bits

  let put_bool w b = put w ~bits:1 (if b then 1 else 0)

  let bit_length w = w.total

  let contents w =
    (* Zero-pad the pending bits into a final byte without touching the
       writer state: [contents] is a pure snapshot, so calling it twice
       — or continuing to [put] afterwards — stays correct. *)
    if w.acc_bits = 0 then Buffer.contents w.buffer
    else
      Buffer.contents w.buffer
      ^ String.make 1 (Char.chr ((w.acc lsl (8 - w.acc_bits)) land 0xff))

  (* Streaming support: hand over the complete bytes accumulated so far
     and reset the byte buffer, keeping the sub-byte remainder pending.
     Unlike [contents] this never pads, so a producer can [drain]
     between records indefinitely and the bit stream stays seamless. *)
  let drain w =
    let bytes = Buffer.contents w.buffer in
    Buffer.clear w.buffer;
    bytes

  let buffered_bytes w = Buffer.length w.buffer
end

module Reader = struct
  (* A reader is either a whole in-memory string ([refill = None]) or a
     bounded sliding chunk over a larger stream: when the current chunk
     is exhausted, [refill] produces the next one ("" = end of stream).
     [base] is the absolute stream offset of [data.[0]], so byte
     positions — and therefore every diagnostic derived from them — are
     absolute regardless of chunking. *)
  type t = {
    mutable data : string;
    mutable byte : int;
    mutable bit : int;   (* bits already consumed of [data.[byte]] *)
    mutable total : int; (* absolute bits consumed *)
    mutable base : int;  (* absolute stream offset of [data.[0]] *)
    refill : (unit -> string) option;
    mutable eof : bool;  (* refill returned "" — the stream is over *)
  }

  exception Out_of_bits

  let create data =
    { data; byte = 0; bit = 0; total = 0; base = 0; refill = None;
      eof = true }

  let of_refill refill =
    { data = ""; byte = 0; bit = 0; total = 0; base = 0;
      refill = Some refill; eof = false }

  (* Bits known to remain without asking the producer for more. *)
  let buffered_bits r = ((r.base + String.length r.data) * 8) - r.total

  (* Make at least [n] more bits available, pulling chunks as needed;
     false once the stream cannot supply them. Fully consumed bytes are
     dropped at each refill — the unread tail (including the partially
     consumed current byte, when [bit] > 0) is retained in front of the
     new chunk, so memory stays O(chunk + record) and positions stay
     absolute via [base]. *)
  let rec ensure_bits r n =
    if buffered_bits r >= n then true
    else
      match r.refill with
      | None -> false
      | Some refill ->
          if r.eof then false
          else begin
            let chunk = refill () in
            if String.length chunk = 0 then begin
              r.eof <- true;
              false
            end
            else begin
              let keep = String.length r.data - r.byte in
              let tail =
                if keep > 0 then String.sub r.data r.byte keep else ""
              in
              r.base <- r.base + r.byte;
              r.data <- tail ^ chunk;
              r.byte <- 0;
              ensure_bits r n
            end
          end

  let get_bit r =
    if r.byte >= String.length r.data && not (ensure_bits r 1) then
      raise Out_of_bits;
    let value = (Char.code r.data.[r.byte] lsr (7 - r.bit)) land 1 in
    if r.bit = 7 then begin
      r.bit <- 0;
      r.byte <- r.byte + 1
    end
    else r.bit <- r.bit + 1;
    r.total <- r.total + 1;
    value

  let get r ~bits =
    if bits <= 0 || bits > 62 then invalid_arg "Bitio.Reader.get: bits";
    let rec loop acc remaining =
      if remaining = 0 then acc
      else loop ((acc lsl 1) lor get_bit r) (remaining - 1)
    in
    loop 0 bits

  let get_bool r = get r ~bits:1 = 1

  let bits_consumed r = r.total

  (* Bits known to remain without blocking on the producer: exact for
     string readers, a lower bound mid-stream for chunked ones. *)
  let bits_remaining r = buffered_bits r

  (* Whether at least [n] more bits exist, refilling as needed — the
     end-of-stream test for streamed (count-free) traces and trailing
     -byte checks. Never raises. *)
  let has_bits r n = ensure_bits r n

  (* The absolute stream offset of the byte holding the next unread bit
     (= stream length so far when exhausted). *)
  let byte_position r = r.base + r.byte

  let seek_byte r byte =
    let local = byte - r.base in
    if local < 0 || local > String.length r.data then
      invalid_arg "Bitio.Reader.seek_byte: out of range";
    r.byte <- local;
    r.bit <- 0;
    r.total <- byte * 8
end
