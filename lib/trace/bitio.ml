module Writer = struct
  type t = {
    buffer : Buffer.t;
    mutable acc : int;     (* pending bits, left-aligned in [acc_bits] *)
    mutable acc_bits : int;
    mutable total : int;
  }

  let create () = { buffer = Buffer.create 4096; acc = 0; acc_bits = 0; total = 0 }

  let flush_bytes w =
    while w.acc_bits >= 8 do
      let shift = w.acc_bits - 8 in
      Buffer.add_char w.buffer (Char.chr ((w.acc lsr shift) land 0xff));
      w.acc <- w.acc land ((1 lsl shift) - 1);
      w.acc_bits <- shift
    done

  let put w ~bits value =
    if bits <= 0 || bits > 62 then invalid_arg "Bitio.Writer.put: bits";
    let masked = value land ((1 lsl bits) - 1) in
    (* Emit in chunks small enough to keep [acc] within native int range. *)
    let rec emit bits =
      if bits > 0 then begin
        let chunk = min bits (56 - w.acc_bits) in
        let shift = bits - chunk in
        w.acc <- (w.acc lsl chunk) lor ((masked lsr shift) land ((1 lsl chunk) - 1));
        w.acc_bits <- w.acc_bits + chunk;
        flush_bytes w;
        emit shift
      end
    in
    emit bits;
    w.total <- w.total + bits

  let put_bool w b = put w ~bits:1 (if b then 1 else 0)

  let bit_length w = w.total

  let contents w =
    (* Zero-pad the pending bits into a final byte without touching the
       writer state: [contents] is a pure snapshot, so calling it twice
       — or continuing to [put] afterwards — stays correct. *)
    if w.acc_bits = 0 then Buffer.contents w.buffer
    else
      Buffer.contents w.buffer
      ^ String.make 1 (Char.chr ((w.acc lsl (8 - w.acc_bits)) land 0xff))
end

module Reader = struct
  type t = {
    data : string;
    mutable byte : int;
    mutable bit : int;   (* bits already consumed of [data.[byte]] *)
    mutable total : int;
  }

  exception Out_of_bits

  let create data = { data; byte = 0; bit = 0; total = 0 }

  let get_bit r =
    if r.byte >= String.length r.data then raise Out_of_bits;
    let value = (Char.code r.data.[r.byte] lsr (7 - r.bit)) land 1 in
    if r.bit = 7 then begin
      r.bit <- 0;
      r.byte <- r.byte + 1
    end
    else r.bit <- r.bit + 1;
    r.total <- r.total + 1;
    value

  let get r ~bits =
    if bits <= 0 || bits > 62 then invalid_arg "Bitio.Reader.get: bits";
    let rec loop acc remaining =
      if remaining = 0 then acc
      else loop ((acc lsl 1) lor get_bit r) (remaining - 1)
    in
    loop 0 bits

  let get_bool r = get r ~bits:1 = 1

  let bits_consumed r = r.total

  let bits_remaining r = (String.length r.data * 8) - r.total

  (* The byte holding the next unread bit (= length when exhausted). *)
  let byte_position r = r.byte

  let seek_byte r byte =
    if byte < 0 || byte > String.length r.data then
      invalid_arg "Bitio.Reader.seek_byte: out of range";
    r.byte <- byte;
    r.bit <- 0;
    r.total <- byte * 8
end
