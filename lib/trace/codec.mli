(** Binary trace codec.

    Two bit-packed encodings of {!Record.t} streams:

    - [Fixed] — fixed-width fields with absolute addresses and targets,
      our reconstruction of the paper's format. It lands in the published
      41–47 bits/instruction band on the SPEC-like workloads (Table 3).
    - [Compact] — delta/zig-zag encoded addresses, targets and PCs; an
      extension studied in the trace-bandwidth ablation.

    Every stream starts with a self-describing header (magic, version,
    format, record count), so [decode] needs no side information. *)

type format = Fixed | Compact

exception Corrupt of string
(** Raised by [decode]/[read_file] on malformed input. *)

type error = {
  error_code : string;  (** RSM-T001/T002/T003 — the trace-lint code *)
  byte_offset : int;    (** position in the stream, header included *)
  reason : string;
}
(** Structured decode failure: what went wrong, which rule it violates
    and where in the byte stream — the no-exceptions face of the codec
    used by the linter, the degraded decoder and robust runners. *)

val error_to_string : error -> string

val header_length : int
(** Bytes of self-describing header before the payload (magic, version,
    format, record count). *)

val encode : ?format:format -> Record.t array -> string
(** Serialise; default format [Fixed]. *)

val decode : string -> Record.t array * format

val decode_result : string -> (Record.t array * format, error) result
(** [decode] without escaping exceptions: any malformed header, field
    code or truncation comes back as a structured {!error}. *)

val decode_degraded :
  string -> (Record.t array * format * Fault.t list, error) result
(** Salvage decode for corrupt streams: on an undecodable record the
    cursor skips to the next byte boundary that decodes cleanly
    ({!Cursor.resync}) and the failure is recorded as a {!Fault.t}.
    Returns every structurally decodable record plus the fault list;
    [Error] only when the header itself is unusable. A non-empty fault
    list means downstream results must be treated as degraded. *)

(** Streaming decode: one record at a time without materialising the
    whole array — the trace linter's view of a stream. *)
module Cursor : sig
  type t

  val of_string : string -> t
  (** Parses the header; raises {!Corrupt} when it is malformed. *)

  val of_string_result : string -> (t, error) result
  (** [of_string] with a structured error (code RSM-T001 and the byte
      offset of the offending header field) instead of an exception. *)

  val format : t -> format
  val count : t -> int
  (** Record count the header declares. *)

  val decoded : t -> int
  (** Records decoded so far — the offset of the next record. *)

  val has_next : t -> bool

  val next : t -> Record.t
  (** Decode the next record. Raises {!Corrupt} on an undecodable
      field, [Bitio.Reader.Out_of_bits] past the end of the payload,
      and [Invalid_argument] when called after [count] records. *)

  val next_result : t -> (Record.t, error) result
  (** [next] with structured errors: a truncated record is RSM-T002, an
      undecodable field RSM-T003, both carrying the byte offset where
      decoding stopped. Nothing escapes. *)

  val byte_offset : t -> int
  (** Stream offset (header included) of the byte holding the next
      unread bit. *)

  val resync : t -> int option
  (** Skip forward to the next byte boundary from which a record (and
      its successor, when enough payload remains) decodes cleanly;
      returns the bytes skipped, or [None] when no boundary exists
      before the end of the payload. Decoder delta state carries over,
      so resynced records are structurally sound but may be
      semantically wrong — mark the run degraded. *)

  val bits_remaining : t -> int
end

val encoded_bits : ?format:format -> Record.t array -> int
(** Payload size in bits, excluding the stream header — the quantity the
    paper reports per instruction. *)

val bits_per_instruction : ?format:format -> Record.t array -> float
(** [encoded_bits / Array.length records]; 0 for an empty trace. *)

val write_file : ?format:format -> string -> Record.t array -> unit
val read_file : string -> Record.t array * format
