(** Binary trace codec.

    Two bit-packed encodings of {!Record.t} streams:

    - [Fixed] — fixed-width fields with absolute addresses and targets,
      our reconstruction of the paper's format. It lands in the published
      41–47 bits/instruction band on the SPEC-like workloads (Table 3).
    - [Compact] — delta/zig-zag encoded addresses, targets and PCs; an
      extension studied in the trace-bandwidth ablation.

    Every stream starts with a self-describing header (magic, version,
    format, record count), so [decode] needs no side information. *)

type format = Fixed | Compact

exception Corrupt of string
(** Raised by [decode]/[read_file] on malformed input. *)

val encode : ?format:format -> Record.t array -> string
(** Serialise; default format [Fixed]. *)

val decode : string -> Record.t array * format

(** Streaming decode: one record at a time without materialising the
    whole array — the trace linter's view of a stream. *)
module Cursor : sig
  type t

  val of_string : string -> t
  (** Parses the header; raises {!Corrupt} when it is malformed. *)

  val format : t -> format
  val count : t -> int
  (** Record count the header declares. *)

  val decoded : t -> int
  (** Records decoded so far — the offset of the next record. *)

  val has_next : t -> bool

  val next : t -> Record.t
  (** Decode the next record. Raises {!Corrupt} on an undecodable
      field, [Bitio.Reader.Out_of_bits] past the end of the payload,
      and [Invalid_argument] when called after [count] records. *)

  val bits_remaining : t -> int
end

val encoded_bits : ?format:format -> Record.t array -> int
(** Payload size in bits, excluding the stream header — the quantity the
    paper reports per instruction. *)

val bits_per_instruction : ?format:format -> Record.t array -> float
(** [encoded_bits / Array.length records]; 0 for an empty trace. *)

val write_file : ?format:format -> string -> Record.t array -> unit
val read_file : string -> Record.t array * format
