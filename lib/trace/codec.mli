(** Binary trace codec.

    Two bit-packed encodings of {!Record.t} streams:

    - [Fixed] — fixed-width fields with absolute addresses and targets,
      our reconstruction of the paper's format. It lands in the published
      41–47 bits/instruction band on the SPEC-like workloads (Table 3).
    - [Compact] — delta/zig-zag encoded addresses, targets and PCs; an
      extension studied in the trace-bandwidth ablation.

    Every stream starts with a self-describing header (magic, version,
    format, record count), so [decode] needs no side information. A
    record count of [-1] marks a *streamed* trace (producer did not know
    the total — [tracegen --stream], pipes); readers consume records
    until the payload runs dry. *)

type format = Fixed | Compact

exception Corrupt of string
(** Raised by [decode]/[read_file] on malformed input. *)

type error = {
  error_code : string;
      (** RSM-T001/T002/T003 — the trace-lint code; RSM-T009 for host
          I/O failures (missing/unreadable file) *)
  byte_offset : int;    (** absolute position in the stream, header included *)
  reason : string;
}
(** Structured decode failure: what went wrong, which rule it violates
    and where in the byte stream — the no-exceptions face of the codec
    used by the linter, the degraded decoder and robust runners. *)

val error_to_string : error -> string

val header_length : int
(** Bytes of self-describing header before the payload (magic, version,
    format, record count). *)

val streamed_count : int64
(** The header count sentinel ([-1L]) marking a streamed trace whose
    record count was unknown to the producer. *)

val encode : ?format:format -> Record.t array -> string
(** Serialise; default format [Fixed]. *)

val decode : string -> Record.t array * format

val decode_result : string -> (Record.t array * format, error) result
(** [decode] without escaping exceptions: any malformed header, field
    code or truncation comes back as a structured {!error}. *)

val decode_degraded :
  string -> (Record.t array * format * Fault.t list, error) result
(** Salvage decode for corrupt streams: on an undecodable record the
    cursor skips to the next byte boundary that decodes cleanly
    ({!Cursor.resync}) and the failure is recorded as a {!Fault.t}.
    Returns every structurally decodable record plus the fault list;
    [Error] only when the header itself is unusable. A non-empty fault
    list means downstream results must be treated as degraded. *)

(** Streaming decode: one record at a time without materialising the
    whole array — the trace linter's view of a stream. *)
module Cursor : sig
  type t

  val of_string : string -> t
  (** Parses the header; raises {!Corrupt} when it is malformed. *)

  val of_string_result : string -> (t, error) result
  (** [of_string] with a structured error (code RSM-T001 and the byte
      offset of the offending header field) instead of an exception. *)

  val default_chunk : int
  (** Refill-buffer size [of_channel_result] uses by default (64 KiB). *)

  val of_channel_result :
    ?chunk:int -> in_channel -> (t, error) result
  (** Chunked streaming cursor over a channel: holds O([chunk] + one
      record) bytes regardless of stream length, so traces larger than
      RAM decode in constant memory. Byte offsets in diagnostics remain
      absolute file offsets across refills. The channel must stay open
      for the cursor's lifetime and is not closed by the cursor. *)

  val format : t -> format
  val count : t -> int
  (** Record count the header declares; negative for streamed traces
      (see {!streamed}). *)

  val decoded : t -> int
  (** Records decoded so far — the offset of the next record. *)

  val streamed : t -> bool
  (** Whether the header carried {!Codec.streamed_count}: no declared
      count, records exist while payload bytes remain. *)

  val has_next : t -> bool
  (** Counted cursors: whether fewer than [count] records were decoded.
      Streamed cursors: whether at least one whole payload byte remains
      (exact — end padding is under 8 bits and no record is shorter). *)

  val next : t -> Record.t
  (** Decode the next record. Raises {!Corrupt} on an undecodable
      field, [Bitio.Reader.Out_of_bits] past the end of the payload,
      and [Invalid_argument] when called after [count] records. *)

  val next_result : t -> (Record.t, error) result
  (** [next] with structured errors: a truncated record is RSM-T002, an
      undecodable field RSM-T003, both carrying the byte offset where
      decoding stopped. Nothing escapes. *)

  val byte_offset : t -> int
  (** Absolute stream offset (header included) of the byte holding the
      next unread bit — a file offset even on chunked cursors. *)

  val resync : t -> int option
  (** Skip forward to the next byte boundary from which a record (and
      its successor, when enough payload remains) decodes cleanly;
      returns the bytes skipped, or [None] when no boundary exists
      before the end of the payload. Decoder delta state carries over,
      so resynced records are structurally sound but may be
      semantically wrong — mark the run degraded. *)

  val bits_remaining : t -> int
  (** Bits buffered but not yet decoded: exact for in-memory cursors, a
      lower bound mid-stream for chunked ones. *)

  val trailing_bytes : t -> int
  (** Whole bytes left beyond the declared records (refills once, so it
      is meaningful on chunked cursors too) — the linter's trailing-data
      check. *)
end

(** Constant-memory streaming encode to a channel: the header goes out
    first with {!streamed_count}, then complete bytes are drained as
    records are pushed; only {!Encoder.close} pads the final byte. *)
module Encoder : sig
  type t

  val to_channel : ?format:format -> ?flush_bytes:int -> out_channel -> t
  (** Writes the streamed header immediately. [flush_bytes] bounds the
      internal buffer (default 64 KiB). The channel is flushed at every
      drain but never closed by the encoder. *)

  val push : t -> Record.t -> unit
  (** Append one record. Raises [Invalid_argument] after {!close}. *)

  val pushed : t -> int
  (** Records pushed so far. *)

  val close : t -> unit
  (** Drain remaining bytes, pad the final partial byte and flush.
      Idempotent. *)
end

(** Sharded trace files: [stem.NNNN.rtr] with consecutive indices from
    0000. Each shard is a complete self-describing stream (own header,
    own count, fresh delta state), so shards decode and lint on their
    own and a concatenating cursor chains them. *)
module Shard : sig
  val extension : string
  (** [".rtr"] *)

  val path : stem:string -> int -> string
  (** [path ~stem:"trace" 3] is ["trace.0003.rtr"]. *)

  val stem_of : string -> (string * int) option
  (** [stem_of "trace.0003.rtr"] is [Some ("trace", 3)]; [None] for
      non-shard-shaped paths. *)

  val expand : string -> string list option
  (** Expand a user-supplied path — any shard of a set, or a bare stem —
      to the full ordered shard list found on disk. [None] when the path
      names no shard set. *)

  val write :
    ?format:format ->
    records_per_shard:int ->
    stem:string ->
    Record.t array ->
    string list
  (** Split a trace into shards of about [records_per_shard] records
      (at least one shard, even for an empty trace) and write them;
      returns the shard paths in order. A shard never ends inside a
      wrong-path block — the cut point slides forward to the block
      boundary — so every shard starts untagged and lints clean on its
      own. *)
end

val encoded_bits : ?format:format -> Record.t array -> int
(** Payload size in bits, excluding the stream header — the quantity the
    paper reports per instruction. *)

val bits_per_instruction : ?format:format -> Record.t array -> float
(** [encoded_bits / Array.length records]; 0 for an empty trace. *)

val write_file : ?format:format -> string -> Record.t array -> unit

val read_file : string -> Record.t array * format
(** Raises {!Corrupt} on malformed bytes or host I/O failure — a typed
    wrapper over {!read_file_result}, never a raw [Sys_error]. *)

val read_file_result : string -> (Record.t array * format, error) result
(** [read_file] with structured errors: host-level failures (missing or
    unreadable file, short read) surface as RSM-T009, malformed bytes as
    the usual RSM-T001..T003 with absolute byte offsets. *)
