(* Pull-based record streams over encoded trace files: the glue between
   the chunked codec cursors and Source-backed engines. A stream owns
   whatever channels it opened and reports malformed payloads as typed
   Fault.Trace_fault (same surface as the cursors), so robust runners
   handle in-memory, streamed and sharded traces uniformly. *)

type t = {
  next : unit -> Record.t option;
  close : unit -> unit;
  mutable closed : bool;
}

let next t = t.next ()

let close t =
  if not t.closed then begin
    t.closed <- true;
    t.close ()
  end

let make ?(close = ignore) next = { next; close; closed = false }

let io_error reason =
  { Codec.error_code = "RSM-T009"; byte_offset = 0; reason }

(* Wrap a cursor: decode errors surface as Trace_fault carrying the
   record offset and the absolute byte offset in [source]. *)
let of_cursor ?(source = "<trace>") cursor =
  let next () =
    if not (Codec.Cursor.has_next cursor) then None
    else
      match Codec.Cursor.next_result cursor with
      | Ok record -> Some record
      | Error { Codec.error_code; byte_offset; reason } ->
          Fault.fail ~code:error_code
            ~offset:(Codec.Cursor.decoded cursor)
            (Printf.sprintf "%s: byte %d: %s" source byte_offset reason)
  in
  make next

let open_file ?chunk path =
  match open_in_bin path with
  | exception Sys_error reason -> Error (io_error reason)
  | ic -> (
      match Codec.Cursor.of_channel_result ?chunk ic with
      | Error error ->
          close_in_noerr ic;
          Error error
      | Ok cursor ->
          let stream = of_cursor ~source:path cursor in
          Ok { stream with close = (fun () -> close_in_noerr ic) })

(* Concatenating stream over a shard set. Shards are opened one at a
   time (constant descriptors, constant memory); each shard is a
   complete stream with its own header and fresh delta state. The
   first shard is opened eagerly so header problems come back as a
   value; failures in later shards are mid-stream faults. *)
let open_sharded ?chunk paths =
  match paths with
  | [] -> Error (io_error "empty shard list")
  | first :: rest -> (
      match open_file ?chunk first with
      | Error error -> Error error
      | Ok head ->
          let current = ref head in
          let remaining = ref rest in
          let rec next () =
            match (!current).next () with
            | Some record -> Some record
            | None -> (
                close !current;
                match !remaining with
                | [] -> None
                | path :: tail -> (
                    remaining := tail;
                    match open_file ?chunk path with
                    | Ok stream ->
                        current := stream;
                        next ()
                    | Error { Codec.error_code; byte_offset; reason } ->
                        Fault.fail ~code:error_code ~offset:0
                          (Printf.sprintf "%s: byte %d: %s" path byte_offset
                             reason)))
          in
          Ok (make ~close:(fun () -> close !current) next))

(* Open [path] as whatever it is on disk: a shard set (any shard name
   or a bare stem with a 0000 shard next to it) or a single file. *)
let open_path ?chunk path =
  match Codec.Shard.expand path with
  | Some shards -> open_sharded ?chunk shards
  | None -> open_file ?chunk path

let of_records records =
  let at = ref 0 in
  make (fun () ->
      if !at >= Array.length records then None
      else begin
        let record = records.(!at) in
        incr at;
        Some record
      end)

let fold f init t =
  let rec loop acc =
    match next t with None -> acc | Some record -> loop (f acc record)
  in
  Fun.protect ~finally:(fun () -> close t) (fun () -> loop init)

let iter f t = fold (fun () record -> f record) () t

let to_array t =
  let out = fold (fun acc record -> record :: acc) [] t in
  Array.of_list (List.rev out)
