(** Aggregate statistics over a trace. *)

type t = {
  total : int;
  correct_path : int;
  wrong_path : int;          (** tagged records *)
  branches : int;
  cond_branches : int;
  taken_branches : int;
  loads : int;
  stores : int;
  mults : int;
  divides : int;
}

val zero : t

val add : t -> Record.t -> t
(** Incremental fold step — how streaming consumers (pull-based
    engines, linters) accumulate a summary without materialising the
    trace. [of_records] is [fold_left add zero]. *)

val of_records : Record.t array -> t

val wrong_path_fraction : t -> float
(** Fraction of trace records that are tagged — the paper reports this
    misprediction overhead at about 10 %. *)

val pp : Format.formatter -> t -> unit
