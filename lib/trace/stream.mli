(** Pull-based record streams over encoded traces.

    The glue between the chunked codec cursors and [Source]-backed
    engines: one [next]-returns-[option] interface over in-memory
    arrays, single files (decoded through the O(chunk) streaming
    cursor) and sharded shard sets, so a multi-GB trace never resides
    in memory. Malformed payloads surface as {!Fault.Trace_fault} with
    the RSM-T code and the absolute byte offset — the same typed
    surface robust runners already handle. *)

type t

val next : t -> Record.t option
(** The next record, or [None] at end of stream. Raises
    {!Fault.Trace_fault} on a malformed payload. *)

val close : t -> unit
(** Release any channels the stream owns. Idempotent; end-of-stream
    does not require it (owned channels close as they drain), but
    callers abandoning a stream early must call it. *)

val make : ?close:(unit -> unit) -> (unit -> Record.t option) -> t

val of_cursor : ?source:string -> Codec.Cursor.t -> t
(** Wrap a cursor; [source] labels faults. Does not own the channel a
    chunked cursor reads from. *)

val of_records : Record.t array -> t

val open_file : ?chunk:int -> string -> (t, Codec.error) result
(** Open an encoded trace file through the streaming cursor (holding
    O([chunk]) bytes). Host I/O failures are RSM-T009, header problems
    RSM-T001; the stream owns the channel. *)

val open_sharded : ?chunk:int -> string list -> (t, Codec.error) result
(** Concatenate a shard set, opening shards one at a time. The first
    shard's failure is the returned [Error]; later shards fail
    mid-stream as {!Fault.Trace_fault}. *)

val open_path : ?chunk:int -> string -> (t, Codec.error) result
(** {!open_sharded} when [path] names a shard set on disk (any shard
    of it, or the bare stem), {!open_file} otherwise. *)

val fold : ('a -> Record.t -> 'a) -> 'a -> t -> 'a
(** Drain the stream, closing it even on exceptions. *)

val iter : (Record.t -> unit) -> t -> unit
val to_array : t -> Record.t array
