(** Foreign trace-format adapters: the trace frontier.

    Converts line-oriented foreign traces into tagged B/M/O
    {!Record.t} streams, so any simulator or tracer that can dump one
    of two simple text profiles feeds ReSim directly:

    - {b text} — [<PC> <op> <dst> <src1> <src2>] per line (the format
      family used by generated cycle-accurate simulators): PC in hex,
      [op] 0=alu 1=mult 2=divide, registers decimal with [-1] = none.
      Control flow is unmarked; an instruction whose successor PC is
      not PC+4 is reclassified as a taken conditional branch targeting
      the successor, and a later fall-through at a PC already seen
      branching is that branch not taken (so branch directions really
      interleave and the synthesis predictor can mispredict).
    - {b riscv} — [<PC> <INSN> \[mem <ADDR>\]] per line, an
      uncompressed RV32/RV64 instruction-trace profile: the 32-bit
      word is decoded (branch/jal/jalr kinds, B/J-type static targets,
      loads/stores with their effective address, M-extension
      mult/divide), registers come from the rd/rs1/rs2 fields.

    Both profiles tolerate blank lines, [#] comments, CRLF line ends
    and trailing whitespace. Since foreign traces carry no wrong-path
    instructions, the adapter synthesizes them the same way the
    reference generator does: the inferred branch stream runs through
    our own {!Resim_bpred.Predictor}, and every conditional direction
    mispredict emits a tagged block of [wrong_path_limit] sequential
    records down the path the predictor chose. Adapted streams
    therefore lint clean under the RSM-T tag-bit protocol.

    Malformed input surfaces as typed RSM-A diagnostics carrying
    [file:line:col] — never an exception:

    - [RSM-A001] — wrong field count / missing [mem] operand
    - [RSM-A002] — field is not a number
    - [RSM-A003] — value out of domain (op code, register, negative PC)
    - [RSM-A004] — line longer than [max_line_bytes]
    - [RSM-A005] — undecodable RISC-V instruction word
    - [RSM-A006] — no instructions in the input *)

type format = Text | Riscv

val format_to_string : format -> string
val format_of_string : string -> format option

type error = {
  code : string;  (** stable rule identifier, e.g. ["RSM-A002"] *)
  file : string;
  line : int;     (** 1-based source line *)
  col : int;      (** 1-based column of the offending field *)
  reason : string;
}

val error_to_string : error -> string
(** ["file:line:col: [RSM-A002] reason"]. *)

type config = {
  predictor : Resim_bpred.Predictor.config;
  wrong_path_limit : int;
      (** records per synthesized wrong-path block (ROB + IFQ in the
          reference generator) *)
  max_line_bytes : int;  (** lines longer than this are RSM-A004 *)
}

val default_config : config

type t
(** A streaming adapter: pulls lines from its source one at a time
    (one line of lookahead, O(1) memory beyond the synthesized block
    queue), so foreign traces larger than RAM adapt in one pass. *)

val of_channel :
  ?config:config -> format:format -> file:string -> in_channel -> t
(** [file] is used for diagnostics only; the channel is not closed by
    the adapter. *)

val of_string :
  ?config:config -> format:format -> ?file:string -> string -> t

val next_result : t -> (Record.t option, error) result
(** The next adapted record: [Ok None] at end of input, [Error] on the
    first malformed line (sticky — subsequent calls return the same
    error). *)

val to_records_result : t -> (Record.t array, error) result
(** Drain the whole stream into an array. *)

val adapt_string_result :
  ?config:config ->
  format:format ->
  ?file:string ->
  string ->
  (Record.t array, error) result

val pull_exn : t -> unit -> Record.t option
(** Pull closure for the streaming engine path: a malformed line
    raises {!Fault.Trace_fault} with the RSM-A code, matching how codec
    cursors report corrupt streams to robust runners. *)

type stats = {
  lines : int;          (** source lines consumed *)
  instructions : int;   (** correct-path records emitted *)
  wrong_path : int;     (** synthesized wrong-path records *)
  mispredicted : int;   (** conditional mispredicts found *)
}

val stats : t -> stats
