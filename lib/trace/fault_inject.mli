(** Deterministic trace corruption for robustness testing.

    Each corruption class mirrors one RSM-T trace-lint rule (DESIGN.md
    §9): applied to a clean trace it must surface as the matching
    structured diagnostic from the linter, the codec or the engine —
    never as an anonymous exception or a hang. All injection is seeded
    and wall-clock free, so a failure replays from (class, seed). *)

type t =
  | Bit_flip           (** flip one payload bit; outcome varies *)
  | Truncate_payload   (** RSM-T002: payload ends inside a record *)
  | Truncate_header    (** RSM-T001: stream cut inside the header *)
  | Bad_magic          (** RSM-T001 *)
  | Bad_version        (** RSM-T001 *)
  | Bad_format         (** RSM-T001: unknown format code *)
  | Count_overrun      (** RSM-T002: declared count past the payload *)
  | Bad_field          (** RSM-T003: invalid record type code *)
  | Trailing_garbage   (** RSM-T004 (warning) *)
  | Orphan_tag         (** RSM-T005: tagged block with no branch before *)
  | Tag_after_uncond   (** RSM-T006 (warning) *)
  | Runaway_tag        (** RSM-T007: tagged run past the bound *)
  | Bad_payload        (** RSM-T008: impossible field combination *)

val all : t list

val name : t -> string
(** Stable kebab-case name used by [resim faultgen --fault]. *)

val of_name : string -> t option

val expected_code : t -> string option
(** The RSM-T code the class must surface as; [None] for {!Bit_flip},
    whose outcome depends on which field the flipped bit lands in. *)

val severity : t -> [ `Error | `Warning | `Varies ]

val describe : t -> string

val default_max_run : int
(** Wrong-path run bound used by {!Runaway_tag} (and the matching
    [max_wrong_path_run] the linter must be given to see RSM-T007). *)

val inject_records :
  ?seed:int -> ?max_run:int -> t -> Record.t array -> Record.t array option
(** Record-level injection before encoding; [None] when the class is
    byte-level. Never mutates its input. *)

val inject_encoded : ?seed:int -> t -> string -> string option
(** Byte-level corruption of an encoded stream; [None] when the class
    is record-level. A class that cannot apply (e.g. {!Bit_flip} on an
    empty payload) returns the stream unchanged. *)

val apply :
  ?seed:int -> ?format:Codec.format -> ?max_run:int -> t -> Record.t array ->
  string
(** Encode [records] with the corruption injected — record-level classes
    rewrite the array first, byte-level classes damage the encoding. *)
