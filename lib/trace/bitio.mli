(** Bit-granular writer/reader used by the trace codec.

    Bits are emitted most-significant-first within each byte. Values are
    written as fixed-width unsigned fields; signed fields use the codec's
    own zig-zag mapping. *)

module Writer : sig
  type t

  val create : unit -> t
  val put : t -> bits:int -> int -> unit
  (** [put w ~bits v] appends the low [bits] bits of [v] (1..62). *)

  val put_bool : t -> bool -> unit
  val bit_length : t -> int
  val contents : t -> string
  (** The bytes written so far, a final partial byte zero-padded. A pure
      snapshot: the writer is untouched, so [contents] is idempotent and
      further [put]s continue from the un-padded bit position. *)
end

module Reader : sig
  type t

  exception Out_of_bits

  val create : string -> t
  val get : t -> bits:int -> int
  val get_bool : t -> bool
  val bits_consumed : t -> int
  val bits_remaining : t -> int

  val byte_position : t -> int
  (** Index of the byte holding the next unread bit; the data length
      once the reader is exhausted. *)

  val seek_byte : t -> int -> unit
  (** Reposition the reader to the start of the given byte (resync
      support for degraded decoding). Raises [Invalid_argument] outside
      [0..length]. *)
end
