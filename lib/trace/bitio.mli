(** Bit-granular writer/reader used by the trace codec.

    Bits are emitted most-significant-first within each byte. Values are
    written as fixed-width unsigned fields; signed fields use the codec's
    own zig-zag mapping.

    Readers come in two flavours: whole in-memory strings ({!Reader.create})
    and chunked sliding windows over a larger stream ({!Reader.of_refill}),
    which hold O(chunk) bytes regardless of stream length. Byte positions
    are absolute stream offsets in both cases, so diagnostics derived from
    them never depend on the chunking. *)

module Writer : sig
  type t

  val create : unit -> t
  val put : t -> bits:int -> int -> unit
  (** [put w ~bits v] appends the low [bits] bits of [v] (1..62). *)

  val put_bool : t -> bool -> unit
  val bit_length : t -> int
  val contents : t -> string
  (** The bytes written so far, a final partial byte zero-padded. A pure
      snapshot: the writer is untouched, so [contents] is idempotent and
      further [put]s continue from the un-padded bit position. *)

  val drain : t -> string
  (** Hand over the complete bytes accumulated so far and forget them,
      keeping any sub-byte remainder pending. Never pads, so draining
      between records keeps the bit stream seamless — the constant-memory
      half of streaming encode. *)

  val buffered_bytes : t -> int
  (** Complete bytes currently held (what the next {!drain} returns). *)
end

module Reader : sig
  type t

  exception Out_of_bits

  val create : string -> t
  (** Reader over a whole in-memory string. *)

  val of_refill : (unit -> string) -> t
  (** Chunked reader: the callback supplies the next chunk of the stream,
      [""] meaning end of stream. Only O(chunk + one record) bytes are
      retained; all positions stay absolute. *)

  val get : t -> bits:int -> int
  val get_bool : t -> bool
  val bits_consumed : t -> int
  val bits_remaining : t -> int
  (** Bits remaining without blocking on the producer: exact for string
      readers, a buffered lower bound for chunked ones (see {!has_bits}
      for the blocking test). *)

  val has_bits : t -> int -> bool
  (** Whether at least this many bits remain, pulling further chunks as
      needed. The end-of-stream test for streamed traces; never raises. *)

  val byte_position : t -> int
  (** Absolute stream offset of the byte holding the next unread bit;
      the stream length consumed so far once the reader is exhausted. *)

  val seek_byte : t -> int -> unit
  (** Reposition the reader to the start of the given absolute byte
      (resync support for degraded decoding). Raises [Invalid_argument]
      outside the currently buffered window — whole-string readers can
      seek anywhere, chunked readers only within the window. *)
end
