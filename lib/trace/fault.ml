type t = { code : string; offset : int; context : string }

exception Trace_fault of t

let make ~code ~offset ~context = { code; offset; context }

let fail ~code ~offset context = raise (Trace_fault (make ~code ~offset ~context))

let to_string t =
  Printf.sprintf "trace fault [%s] at record %d: %s" t.code t.offset t.context

let pp ppf t = Format.pp_print_string ppf (to_string t)
