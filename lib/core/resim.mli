(** ReSim — trace-driven ILP processor timing simulation.

    High-level entry points tying the substrates together: generate a
    trace from an assembled program (or take a pre-built one), run the
    timing engine, and express the result as the paper does — simulation
    MIPS on a target FPGA device.

    {[
      let program = Resim_workloads.Gzip_like.program ~scale:1_000 in
      let outcome = Resim_core.Resim.simulate_program program in
      Format.printf "IPC %.2f, %.1f MIPS on Virtex-5@."
        (Resim_core.Stats.ipc outcome.stats)
        (Resim_core.Resim.mips outcome
           ~device:Resim_fpga.Device.virtex5_xc5vlx50t)
    ]} *)

val version : string

val engine_identity : Config.t -> string
(** ["<version>/<config hash>"] — the identity a checkpoint or cached
    result is only valid against. Stamped onto truncation checkpoints
    by {!simulate_robust}, checked on resume ([RSM-K007]), and used as
    the engine component of the server's cache keys. *)

type outcome = {
  config : Config.t;
  stats : Stats.t;
  trace_summary : Resim_trace.Summary.t;
  bits_per_instruction : float;
      (** of the Fixed trace encoding, as in Table 3 *)
  icache_stats : Resim_cache.Cache.stats;
  dcache_stats : Resim_cache.Cache.stats;
}

val simulate_trace :
  ?config:Config.t ->
  ?instrument:(Engine.t -> unit) ->
  Resim_trace.Record.t array ->
  outcome
(** [instrument] runs on the freshly created engine before the first
    cycle — the hook the observability sinks and the specialization
    layer ([Resim_spec.Spec]) attach through. *)

val simulate_program :
  ?config:Config.t ->
  ?generator:Resim_tracegen.Generator.config ->
  Resim_isa.Program.t ->
  outcome
(** Trace generation ({!Resim_tracegen.Generator}) followed by
    {!simulate_trace}. When [generator] is omitted, its predictor is
    taken from the engine configuration so the generator and the engine
    model the same front end. *)

(** {1 Robust entry points}

    Structured failures instead of exceptions, graceful truncation under
    cycle/wall-clock budgets, and deterministic resume from a replay
    checkpoint. *)

(** Why a robust run could not produce statistics. *)
type failure =
  | Fault of Resim_trace.Fault.t
      (** the trace violated the format or tag-bit protocol *)
  | Deadlock of Engine.deadlock  (** the progress watchdog tripped *)

val failure_to_string : failure -> string

type robust = {
  outcome : outcome;
  stop : Engine.stop;
  resume : Checkpoint.t option;
      (** a replay checkpoint whenever the run was truncated *)
}

val simulate_robust :
  ?config:Config.t ->
  ?watchdog:int ->
  ?max_cycles:int64 ->
  ?deadline:(unit -> bool) ->
  ?instrument:(Engine.t -> unit) ->
  ?driver:(Engine.t -> Engine.bounded) ->
  Resim_trace.Record.t array ->
  (robust, failure) result
(** {!simulate_trace} under fault domains: trace faults and deadlocks
    come back as [Error]; cycle/wall-clock budgets truncate gracefully
    with partial statistics and a resume checkpoint. [instrument] runs
    on the freshly created engine before the first cycle, so callers
    can attach observability sinks ({!Engine.set_observer}) or phase
    probes ({!Engine.set_phase_probe}) without building the engine
    themselves. [driver] replaces {!Engine.run_bounded} as the run
    loop — the sampled-simulation driver ({!Resim_sample.Sample}) uses
    it to alternate functional warm-up and detailed intervals; when
    given, it owns all budget handling and [watchdog]/[max_cycles]/
    [deadline] are ignored. Trace faults and deadlocks it raises are
    still caught into [Error]. *)

val simulate_pull_robust :
  ?config:Config.t ->
  ?watchdog:int ->
  ?max_cycles:int64 ->
  ?deadline:(unit -> bool) ->
  ?instrument:(Engine.t -> unit) ->
  (unit -> Resim_trace.Record.t option) ->
  (robust, failure) result
(** {!simulate_robust} over a pull stream instead of an array: the
    engine draws records on demand through a {!Source} window, so the
    trace never materialises — constant memory for traces larger than
    RAM (chunked file cursors, pipes, foreign-format adapters). The
    trace summary accumulates incrementally; [bits_per_instruction] is
    0 on this path (the encoded payload size is unknown). A pull that
    raises {!Resim_trace.Fault.Trace_fault} (truncated or corrupt
    stream, malformed foreign line) comes back as [Error (Fault _)]. *)

val resume_trace :
  ?config:Config.t ->
  checkpoint:Checkpoint.t ->
  Resim_trace.Record.t array ->
  (outcome, string) result
(** Deterministically resume a truncated run: replay the trace to the
    checkpoint cycle, verify the cursor and every statistics register
    match the snapshot (refusing a checkpoint from a different trace or
    configuration), then run to completion. The final statistics are
    bit-identical to an unbounded run by construction. A checkpoint
    stamped with a different {!engine_identity} is refused before the
    replay starts ([RSM-K007]). *)

(** {1 Paper metrics} *)

val mips : outcome -> device:Resim_fpga.Device.t -> float
(** Table 1 metric: committed instructions per second when ReSim runs at
    the device's minor-cycle frequency, in MIPS. *)

val mips_with_wrong_path : outcome -> device:Resim_fpga.Device.t -> float
(** Table 3 metric: all fetched records count. *)

val trace_bandwidth_mbytes : outcome -> device:Resim_fpga.Device.t -> float
(** Table 3 metric: input trace bandwidth demand in MB/s. *)

val pp_outcome : Format.formatter -> outcome -> unit
