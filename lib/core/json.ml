(* One escape routine for every hand-rolled JSON emitter in the tree
   (Stats, Sweep, Hostbench, Prof, the sample driver): free-form
   strings — labels, kernel names, fault reasons — must never be able
   to break a document. *)

let escape s =
  let buffer = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buffer "\\\""
      | '\\' -> Buffer.add_string buffer "\\\\"
      | '\n' -> Buffer.add_string buffer "\\n"
      | '\r' -> Buffer.add_string buffer "\\r"
      | '\t' -> Buffer.add_string buffer "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buffer (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buffer c)
    s;
  Buffer.contents buffer

let add_string buffer s =
  Buffer.add_char buffer '"';
  Buffer.add_string buffer (escape s);
  Buffer.add_char buffer '"'

let quote s = "\"" ^ escape s ^ "\""

(* ------------------------------------------------------------------ *)
(* Strict validating parser (RFC 8259 grammar, values discarded).      *)

exception Bad of int * string

let validate data =
  let n = String.length data in
  let pos = ref 0 in
  let fail reason = raise (Bad (!pos, reason)) in
  let peek () = if !pos < n then Some data.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n
      && (match data.[!pos] with
         | ' ' | '\t' | '\n' | '\r' -> true
         | _ -> false)
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some got when got = c -> advance ()
    | Some got -> fail (Printf.sprintf "expected %C, got %C" c got)
    | None -> fail (Printf.sprintf "expected %C, got end of input" c)
  in
  let literal word =
    String.iter expect word
  in
  let is_hex = function
    | '0' .. '9' | 'a' .. 'f' | 'A' .. 'F' -> true
    | _ -> false
  in
  let parse_string () =
    expect '"';
    let closed = ref false in
    while not !closed do
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance (); closed := true
      | Some '\\' -> (
          advance ();
          match peek () with
          | Some ('"' | '\\' | '/' | 'b' | 'f' | 'n' | 'r' | 't') ->
              advance ()
          | Some 'u' ->
              advance ();
              for _ = 1 to 4 do
                match peek () with
                | Some c when is_hex c -> advance ()
                | _ -> fail "bad \\u escape"
              done
          | Some c -> fail (Printf.sprintf "bad escape \\%C" c)
          | None -> fail "unterminated escape")
      | Some c when Char.code c < 0x20 -> fail "raw control character"
      | Some _ -> advance ()
    done
  in
  let digits () =
    let start = !pos in
    while
      !pos < n && match data.[!pos] with '0' .. '9' -> true | _ -> false
    do
      advance ()
    done;
    if !pos = start then fail "expected digit"
  in
  let parse_number () =
    if peek () = Some '-' then advance ();
    digits ();
    if peek () = Some '.' then begin
      advance ();
      digits ()
    end;
    (match peek () with
    | Some ('e' | 'E') ->
        advance ();
        (match peek () with
        | Some ('+' | '-') -> advance ()
        | _ -> ());
        digits ()
    | _ -> ())
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "expected a value"
    | Some '"' -> parse_string ()
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then advance ()
        else begin
          let more = ref true in
          while !more do
            skip_ws ();
            parse_string ();
            skip_ws ();
            expect ':';
            parse_value ();
            skip_ws ();
            match peek () with
            | Some ',' -> advance ()
            | Some '}' -> advance (); more := false
            | _ -> fail "expected ',' or '}' in object"
          done
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then advance ()
        else begin
          let more = ref true in
          while !more do
            parse_value ();
            skip_ws ();
            match peek () with
            | Some ',' -> advance ()
            | Some ']' -> advance (); more := false
            | _ -> fail "expected ',' or ']' in array"
          done
        end
    | Some 't' -> literal "true"
    | Some 'f' -> literal "false"
    | Some 'n' -> literal "null"
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> fail (Printf.sprintf "unexpected %C" c)
  in
  match
    parse_value ();
    skip_ws ();
    if !pos <> n then fail "trailing garbage after document"
  with
  | () -> Ok ()
  | exception Bad (offset, reason) ->
      Error (Printf.sprintf "offset %d: %s" offset reason)
