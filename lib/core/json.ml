(* One escape routine for every hand-rolled JSON emitter in the tree
   (Stats, Sweep, Hostbench, Prof, the sample driver): free-form
   strings — labels, kernel names, fault reasons — must never be able
   to break a document. *)

let escape s =
  let buffer = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buffer "\\\""
      | '\\' -> Buffer.add_string buffer "\\\\"
      | '\n' -> Buffer.add_string buffer "\\n"
      | '\r' -> Buffer.add_string buffer "\\r"
      | '\t' -> Buffer.add_string buffer "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buffer (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buffer c)
    s;
  Buffer.contents buffer

let add_string buffer s =
  Buffer.add_char buffer '"';
  Buffer.add_string buffer (escape s);
  Buffer.add_char buffer '"'

let quote s = "\"" ^ escape s ^ "\""

(* ------------------------------------------------------------------ *)
(* Strict parser (RFC 8259 grammar). [parse] builds a value tree — the
   wire-protocol layer (Resim_serve.Protocol) reads requests through
   it — and [validate] is the same grammar with the tree discarded. *)

type value =
  | Null
  | Bool of bool
  | Number of float
  | String of string
  | List of value list
  | Obj of (string * value) list

exception Bad of int * string

let parse data =
  let n = String.length data in
  let pos = ref 0 in
  let fail reason = raise (Bad (!pos, reason)) in
  let peek () = if !pos < n then Some data.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n
      && (match data.[!pos] with
         | ' ' | '\t' | '\n' | '\r' -> true
         | _ -> false)
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some got when got = c -> advance ()
    | Some got -> fail (Printf.sprintf "expected %C, got %C" c got)
    | None -> fail (Printf.sprintf "expected %C, got end of input" c)
  in
  let literal word =
    String.iter expect word
  in
  let is_hex = function
    | '0' .. '9' | 'a' .. 'f' | 'A' .. 'F' -> true
    | _ -> false
  in
  (* Decoded \uXXXX escapes are emitted as UTF-8; our own emitters only
     produce \u00xx (control bytes), so escape/parse round-trips
     byte-for-byte on every string [escape] can produce. *)
  let add_code_point buffer cp =
    if cp < 0x80 then Buffer.add_char buffer (Char.chr cp)
    else if cp < 0x800 then begin
      Buffer.add_char buffer (Char.chr (0xc0 lor (cp lsr 6)));
      Buffer.add_char buffer (Char.chr (0x80 lor (cp land 0x3f)))
    end
    else begin
      Buffer.add_char buffer (Char.chr (0xe0 lor (cp lsr 12)));
      Buffer.add_char buffer (Char.chr (0x80 lor ((cp lsr 6) land 0x3f)));
      Buffer.add_char buffer (Char.chr (0x80 lor (cp land 0x3f)))
    end
  in
  let parse_string () =
    expect '"';
    let buffer = Buffer.create 16 in
    let closed = ref false in
    while not !closed do
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance (); closed := true
      | Some '\\' -> (
          advance ();
          match peek () with
          | Some ('"' | '\\' | '/') as c ->
              Buffer.add_char buffer (Option.get c);
              advance ()
          | Some 'b' -> Buffer.add_char buffer '\b'; advance ()
          | Some 'f' -> Buffer.add_char buffer '\012'; advance ()
          | Some 'n' -> Buffer.add_char buffer '\n'; advance ()
          | Some 'r' -> Buffer.add_char buffer '\r'; advance ()
          | Some 't' -> Buffer.add_char buffer '\t'; advance ()
          | Some 'u' ->
              advance ();
              let cp = ref 0 in
              for _ = 1 to 4 do
                match peek () with
                | Some c when is_hex c ->
                    let digit =
                      match c with
                      | '0' .. '9' -> Char.code c - Char.code '0'
                      | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
                      | _ -> Char.code c - Char.code 'A' + 10
                    in
                    cp := (!cp * 16) + digit;
                    advance ()
                | _ -> fail "bad \\u escape"
              done;
              add_code_point buffer !cp
          | Some c -> fail (Printf.sprintf "bad escape \\%C" c)
          | None -> fail "unterminated escape")
      | Some c when Char.code c < 0x20 -> fail "raw control character"
      | Some c -> Buffer.add_char buffer c; advance ()
    done;
    Buffer.contents buffer
  in
  let digits () =
    let start = !pos in
    while
      !pos < n && match data.[!pos] with '0' .. '9' -> true | _ -> false
    do
      advance ()
    done;
    if !pos = start then fail "expected digit"
  in
  let parse_number () =
    let start = !pos in
    if peek () = Some '-' then advance ();
    digits ();
    if peek () = Some '.' then begin
      advance ();
      digits ()
    end;
    (match peek () with
    | Some ('e' | 'E') ->
        advance ();
        (match peek () with
        | Some ('+' | '-') -> advance ()
        | _ -> ());
        digits ()
    | _ -> ());
    match float_of_string_opt (String.sub data start (!pos - start)) with
    | Some value -> value
    | None -> fail "unrepresentable number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "expected a value"
    | Some '"' -> String (parse_string ())
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let members = ref [] in
          let more = ref true in
          while !more do
            skip_ws ();
            let key = parse_string () in
            skip_ws ();
            expect ':';
            let value = parse_value () in
            members := (key, value) :: !members;
            skip_ws ();
            match peek () with
            | Some ',' -> advance ()
            | Some '}' -> advance (); more := false
            | _ -> fail "expected ',' or '}' in object"
          done;
          Obj (List.rev !members)
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else begin
          let elements = ref [] in
          let more = ref true in
          while !more do
            elements := parse_value () :: !elements;
            skip_ws ();
            match peek () with
            | Some ',' -> advance ()
            | Some ']' -> advance (); more := false
            | _ -> fail "expected ',' or ']' in array"
          done;
          List (List.rev !elements)
        end
    | Some 't' -> literal "true"; Bool true
    | Some 'f' -> literal "false"; Bool false
    | Some 'n' -> literal "null"; Null
    | Some ('-' | '0' .. '9') -> Number (parse_number ())
    | Some c -> fail (Printf.sprintf "unexpected %C" c)
  in
  match
    let value = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage after document";
    value
  with
  | value -> Ok value
  | exception Bad (offset, reason) ->
      Error (Printf.sprintf "offset %d: %s" offset reason)

let validate data =
  match parse data with Ok _ -> Ok () | Error reason -> Error reason

(* --- accessors over parsed values --------------------------------- *)

let member key = function
  | Obj members -> List.assoc_opt key members
  | _ -> None

let string_value = function String s -> Some s | _ -> None
let number_value = function Number n -> Some n | _ -> None
let bool_value = function Bool b -> Some b | _ -> None

let int_value value =
  match value with
  | Number n when Float.is_integer n && Float.abs n <= 1e15 ->
      Some (int_of_float n)
  | _ -> None
