type state = Dispatched | Issued | Completed

type load_readiness =
  | Load_not_checked
  | Load_blocked
  | Load_forward
  | Load_needs_port

type t = {
  id : int;
  record : Resim_trace.Record.t;
  mutable src1_producer : int;
  mutable src2_producer : int;
  mutable state : state;
  mutable complete_at : int;
  mutable completed_cycle : int;
  mutable load_readiness : load_readiness;
  mutable forwarded : bool;
  mutable squash_on_commit : bool;
  mutable ras_repair : Resim_bpred.Ras.t option;
  mutable dependents : t list;
  mutable in_ready : bool;
  mutable squashed : bool;
}

let no_producer = -1

let make ~id record =
  { id;
    record;
    src1_producer = no_producer;
    src2_producer = no_producer;
    state = Dispatched;
    complete_at = max_int;
    completed_cycle = max_int;
    load_readiness = Load_not_checked;
    forwarded = false;
    squash_on_commit = false;
    ras_repair = None;
    dependents = [];
    in_ready = false;
    squashed = false }

let sources_ready t = t.src1_producer < 0 && t.src2_producer < 0

(* State tests compile to tag compares; [t.state = Issued] would call
   caml_equal on every visit (lint rule RSM-L002). *)
let is_dispatched t =
  match t.state with Dispatched -> true | Issued | Completed -> false

let is_issued t =
  match t.state with Issued -> true | Dispatched | Completed -> false

let is_completed t =
  match t.state with Completed -> true | Dispatched | Issued -> false

let is_load t = Resim_trace.Record.is_load t.record
let is_store t = Resim_trace.Record.is_store t.record
let is_branch t = Resim_trace.Record.is_branch t.record
let is_wrong_path t = t.record.Resim_trace.Record.wrong_path

let pp ppf t =
  let state_name =
    match t.state with
    | Dispatched -> "dispatched"
    | Issued -> "issued"
    | Completed -> "completed"
  in
  Format.fprintf ppf "#%d %a [%s]" t.id Resim_trace.Record.pp t.record
    state_name
