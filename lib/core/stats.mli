(** Simulation statistics.

    Mirrors §V.B: ReSim collects sim-outorder-like statistics in 64-bit
    registers — instruction/branch/memory counts, cache behaviour, queue
    occupancies and detailed branch information. Counters are stored
    unboxed (host [int], 63-bit) so the engine's per-instruction bumps
    never allocate; values are widened to [int64] on read. *)

type t

type counter
(** One statistics register; read it with {!get} or {!get_int}. *)

val create : unit -> t

(** {1 Counters} *)

val incr : t -> (t -> counter) -> unit
val add : t -> (t -> counter) -> int -> unit

val live : (t -> counter) -> t -> int ref
(** The raw cell behind a counter, for code that bumps it on a per-cycle
    budget: the staged engine variants (DESIGN.md §14) resolve every
    counter they touch once at install time and then use plain ref
    arithmetic. The cell stays valid for the lifetime of [t]. *)

val major_cycles : t -> counter
val fetched : t -> counter
(** All records entering the IFQ, wrong path included. *)

val fetched_wrong_path : t -> counter
val discarded_wrong_path : t -> counter
(** Tagged records skipped at branch resolution without being fetched. *)

val dispatched : t -> counter
val issued : t -> counter
val committed : t -> counter
val committed_branches : t -> counter
val committed_cond_branches : t -> counter
val committed_loads : t -> counter
val committed_stores : t -> counter
val committed_mult_div : t -> counter
val mispredictions : t -> counter
(** Squashes at commit (direction mispredictions in the trace). *)

val misfetches : t -> counter
val forwarded_loads : t -> counter
val icache_stall_cycles : t -> counter
val fetch_penalty_cycles : t -> counter
val rob_full_stalls : t -> counter
val lsq_full_stalls : t -> counter
val write_port_stalls : t -> counter
val read_port_stalls : t -> counter

val ifq_empty_stalls : t -> counter
(** Cycles dispatch under-filled because the front end had nothing
    decoupled — front-end starvation. *)

val fu_busy_stalls : t -> counter
(** Issue attempts on a source-ready instruction that found every
    eligible functional unit busy (structural hazard; one bump per
    candidate visit, so a starved instruction counts once per cycle). *)

val misfetch_recovery_cycles : t -> counter
(** Fetch penalty cycles attributed to misfetch recovery. *)

val mispredict_recovery_cycles : t -> counter
(** Fetch penalty cycles attributed to misprediction (squash)
    recovery. Together with {!misfetch_recovery_cycles} these
    attribute {!fetch_penalty_cycles} per cause; icache-miss cycles are
    already attributed by {!icache_stall_cycles}. *)

val degraded_faults : t -> counter
(** Faults survived in degraded mode (codec resyncs, salvage decodes). *)

val mark_degraded : ?faults:int -> t -> unit
(** Mark the run degraded, attributing [faults] (default 1) survived
    faults; derived figures are approximate from then on. *)

val degraded : t -> bool
(** True once {!mark_degraded} has been called. *)

(** {1 Per-cycle width distributions} *)

val commit_width_histogram : t -> Histogram.t
(** Instructions committed per major cycle. *)

val issue_width_histogram : t -> Histogram.t
(** Instructions issued per major cycle. *)

val observe_commit_width : t -> int -> unit
val observe_issue_width : t -> int -> unit

(** {1 Occupancy accumulators} (sampled once per major cycle) *)

val sample_occupancy : t -> ifq:int -> rob:int -> lsq:int -> unit
val mean_ifq_occupancy : t -> float
val mean_rob_occupancy : t -> float
val mean_lsq_occupancy : t -> float

(** {1 Derived} *)

val ipc : t -> float
(** Committed instructions per major cycle. *)

val fetched_per_cycle : t -> float
(** All fetched records (wrong path included) per major cycle — the
    Table 3 throughput basis. *)

val get : (t -> counter) -> t -> int64

val get_int : (t -> counter) -> t -> int
(** [get] without the int64 widening — allocation-free, for hot
    read-back paths (e.g. the engine's progress watchdog). *)

val to_assoc : t -> (string * int64) list
(** Every counter as a (name, value) pair, for CSV/JSON export and for
    whole-state comparisons in tests. *)

(** {1 Metrics export (observability layer)} *)

val stall_causes : t -> (string * int64) list
(** The stall-cause taxonomy (DESIGN.md §11) in stable order:
    ifq_empty, rob_full, lsq_full, fu_busy, rd_port, wr_port, icache,
    misfetch_recovery, mispredict_recovery. *)

val fetch_penalty_fraction : t -> float
(** Fetch penalty cycles over major cycles; 0 on a zero-cycle run. *)

val commit_starved_fraction : t -> float
(** Fraction of major cycles that committed nothing; 0 on a zero-cycle
    run. *)

val to_json : t -> string
(** The stable metrics document: every counter, the stall-cause
    taxonomy, zero-guarded derived ratios and the width histograms.
    Consumed by [resim simulate --metrics] and the sweep/bench
    exporters. *)

val csv_header : unit -> string
val csv_row : t -> string
(** One CSV line per run, columns exactly {!to_assoc} order. *)

val pp : Format.formatter -> t -> unit
