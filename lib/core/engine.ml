module Trace = Resim_trace
module Bpred = Resim_bpred
module Cache = Resim_cache.Cache
module Hierarchy = Resim_cache.Hierarchy

(* Structured no-progress report: every watchdog or budget trip carries
   the engine position, so the failure is diagnosable without a
   debugger. [stuck_for] is 0 when a cycle budget (not the watchdog)
   fired. *)
type deadlock = {
  reason : string;
  at_cycle : int64;
  at_cursor : int;
  rob_occupancy : int;
  fetch_mode : string;
  stuck_for : int;
}

exception Deadlock of deadlock

let pp_deadlock ppf d =
  Format.fprintf ppf
    "%s (cycle %Ld, cursor %d, rob %d, fetch mode %s, stuck %d cycles)"
    d.reason d.at_cycle d.at_cursor d.rob_occupancy d.fetch_mode d.stuck_for

(* Monomorphic int max: Stdlib.max is a polymorphic caml_compare call,
   banned on hot paths by lint rule RSM-L002. *)
let[@inline] imax (a : int) b = if a >= b then a else b

(* Why the pipeline lost a slot or a cycle — the stall-cause taxonomy
   of the observability layer (DESIGN.md §11). Events carrying these are
   emitted at exactly the sites that bump the matching Stats counters,
   all shared between the Scan and Event schedulers (or proven
   visit-identical by the differential suite), so stall streams are
   bit-identical across schedulers. *)
type stall_reason =
  | Stall_ifq_empty        (* dispatch starved: nothing decoupled *)
  | Stall_rob_full
  | Stall_lsq_full
  | Stall_fu_busy          (* ready instruction, no free unit *)
  | Stall_read_port
  | Stall_write_port
  | Stall_icache           (* fetch waiting out an icache miss *)
  | Stall_misfetch_recovery
  | Stall_mispredict_recovery

let all_stall_reasons =
  [ Stall_ifq_empty; Stall_rob_full; Stall_lsq_full; Stall_fu_busy;
    Stall_read_port; Stall_write_port; Stall_icache;
    Stall_misfetch_recovery; Stall_mispredict_recovery ]

let stall_reason_name = function
  | Stall_ifq_empty -> "ifq-empty"
  | Stall_rob_full -> "rob-full"
  | Stall_lsq_full -> "lsq-full"
  | Stall_fu_busy -> "fu-busy"
  | Stall_read_port -> "rd-port"
  | Stall_write_port -> "wr-port"
  | Stall_icache -> "icache"
  | Stall_misfetch_recovery -> "misfetch"
  | Stall_mispredict_recovery -> "mispredict"

(* Observable pipeline events, for tracing tools (Pipeline_trace and
   the Obs sinks). *)
type event =
  | Ev_fetch of Trace.Record.t
  | Ev_dispatch of Entry.t
  | Ev_issue of Entry.t
  | Ev_complete of Entry.t
  | Ev_commit of Entry.t
  | Ev_squash of Entry.t
  | Ev_flush_frontend
  | Ev_stall of stall_reason

(* Host-profiling hook: which engine phase is about to run. [Ph_account]
   closes the cycle (occupancy sampling and counters). The probe fires
   once per phase per cycle only when installed; the idle path is a
   single physical-equality test. *)
type phase =
  | Ph_commit
  | Ph_writeback
  | Ph_issue
  | Ph_dispatch
  | Ph_decouple
  | Ph_fetch
  | Ph_account

let phase_name = function
  | Ph_commit -> "commit"
  | Ph_writeback -> "writeback"
  | Ph_issue -> "issue"
  | Ph_dispatch -> "dispatch"
  | Ph_decouple -> "decouple"
  | Ph_fetch -> "fetch"
  | Ph_account -> "account"

let all_phases =
  [ Ph_commit; Ph_writeback; Ph_issue; Ph_dispatch; Ph_decouple; Ph_fetch;
    Ph_account ]

(* Which event set the pending fetch stall, attributing each burned
   penalty cycle to its cause. Icache extra cycles are charged to
   [icache_stall_cycles] at grant time; the other two accumulate into
   the recovery counters as the stall burns down. *)
type recovery_source = Recover_icache | Recover_misfetch | Recover_mispredict

type fetch_mode =
  | Normal
  | Wrong_path           (* consuming a tagged block *)
  | Awaiting_resolution  (* tagged block over; hold until the squash *)

(* A fetched record on its way to dispatch, carrying the fetch-time
   decisions that belong to the eventual ROB entry. *)
type fetched = {
  record : Trace.Record.t;
  squash_at_commit : bool;
  ras_repair : Bpred.Ras.t option;
}

type t = {
  config : Config.t;
  (* Frozen per-run constants hoisted out of the per-cycle loops at
     construction time: a [Config] field read costs a pointer chase and
     [is_optimized]/[minor_cycles_per_major]/[icache_block_bytes] a
     match per call site, and the hot phases consult them every cycle.
     The configuration cannot change for the life of the run, so they
     are plain immutable fields here (ROADMAP item 3). *)
  s_width : int;
  s_event : bool;     (* scheduler = Event *)
  s_optimized : bool; (* organization = Optimized *)
  s_read_ports : int;
  s_write_ports : int;
  s_misfetch_penalty : int;
  s_misspeculation_penalty : int;
  s_minor_latency : int;
  s_block_bytes : int; (* icache block granularity for fetch grouping *)
  source : Source.t;
  mutable cursor : int;
  ifq : fetched Ring.t;
  decouple : fetched Ring.t;
  rob : Rob.t;
  lsq : Lsq.t;
  rename : Rename.t;
  fu : Fu.t;
  (* Event-scheduler state (unused in Scan mode). [completion] holds
     issued entries keyed by (complete_at, id); [due] holds completed
     executions awaiting a broadcast slot, keyed by (0, id) so the
     paper's oldest-first broadcast order is preserved when more than N
     results are due; [ready] is the issue pool, also in (0, id) order.
     Squashed entries are dropped lazily when popped. *)
  completion : Entry.t Event_queue.t;
  due : Entry.t Event_queue.t;
  ready : Entry.t Event_queue.t;
  (* Scratch buffer the event issue phase drains the ready pool into —
     reused every cycle so issue allocates no per-cycle list. Stale
     references past [candidate_count] are bounded by the ROB capacity
     and overwritten on reuse, the Ring storage policy. *)
  mutable candidates : Entry.t array;
  mutable candidate_count : int;
  predictor : Bpred.Predictor.t;
  icache : Hierarchy.t;
  dcache : Hierarchy.t;
  l2cache : Cache.t option;
  stats : Stats.t;
  (* Plain int: an [Int64.add] per cycle would box on every increment.
     63 bits exceed any reachable run; the public API still reports
     int64, converted only when read. *)
  mutable cycle : int;
  mutable fetch_stall : int;
  mutable fetch_stall_source : recovery_source;
  mutable fetch_mode : fetch_mode;
  mutable last_fetch_block : int;
  (* Cleared while draining the pipeline at a sampling-interval
     boundary: every phase runs normally but fetch admits nothing, so
     the window empties in bounded time. *)
  mutable fetch_enabled : bool;
  mutable observer : (event -> unit) option;
  mutable phase_probe : (phase -> unit) option;
  (* Which per-cycle implementation {!step} runs: the generic engine,
     or a staged variant installed by the specialization layer
     ({!Staged} / [Resim_spec.Spec]). Variants are proven bit-identical
     to the generic engine by the differential suite; [Generic] is
     always a safe fallback. *)
  mutable stepper : stepper;
}

and stepper = Generic | Specialized of { name : string; run : t -> unit }

let block_bytes_of_cache = function
  | Cache.Perfect -> 64
  | Cache.Set_associative { block_bytes; _ } -> block_bytes

let create_from_source ?(config = Config.reference) source =
  let config =
    match Config.validate config with
    | Ok config -> config
    | Error message -> invalid_arg ("Engine.create: " ^ message)
  in
  let shared_l2 =
    Option.map
      (fun l2_config -> Cache.create ~timing:config.l2_timing l2_config)
      config.l2cache
  in
  { config;
    s_width = config.width;
    s_event =
      (match config.scheduler with
      | Config.Event -> true
      | Config.Scan -> false);
    s_optimized = Config.is_optimized config.organization;
    s_read_ports = config.mem_read_ports;
    s_write_ports = config.mem_write_ports;
    s_misfetch_penalty = config.misfetch_penalty;
    s_misspeculation_penalty = config.misspeculation_penalty;
    s_minor_latency = Config.minor_cycle_latency config;
    s_block_bytes = block_bytes_of_cache config.icache;
    source;
    cursor = 0;
    ifq = Ring.create ~capacity:config.ifq_entries;
    decouple = Ring.create ~capacity:config.decouple_entries;
    rob = Rob.create ~entries:config.rob_entries;
    lsq = Lsq.create ~entries:config.lsq_entries;
    rename = Rename.create ~registers:Resim_isa.Reg.count;
    fu = Fu.create config;
    completion = Event_queue.create ();
    due = Event_queue.create ();
    ready = Event_queue.create ();
    candidates = [||];
    candidate_count = 0;
    predictor = Bpred.Predictor.create config.predictor;
    icache =
      Hierarchy.create ~timing:config.cache_timing config.icache ~l2:shared_l2;
    dcache =
      Hierarchy.create ~timing:config.cache_timing config.dcache ~l2:shared_l2;
    l2cache = shared_l2;
    stats = Stats.create ();
    cycle = 0;
    fetch_stall = 0;
    fetch_stall_source = Recover_mispredict;
    fetch_mode = Normal;
    last_fetch_block = -1;
    fetch_enabled = true;
    observer = None;
    phase_probe = None;
    stepper = Generic }

let create ?config trace = create_from_source ?config (Source.of_array trace)

let config t = t.config
let stats t = t.stats
let icache t = Hierarchy.l1 t.icache
let dcache t = Hierarchy.l1 t.dcache
let l2cache t = t.l2cache
let predictor t = t.predictor
let cycle t = Int64.of_int t.cycle
let minor_cycles t = Int64.of_int (t.cycle * t.s_minor_latency)

let set_stepper t ~name run = t.stepper <- Specialized { name; run }
let clear_stepper t = t.stepper <- Generic

let is_specialized t =
  match t.stepper with Generic -> false | Specialized _ -> true

let variant t =
  match t.stepper with
  | Generic -> None
  | Specialized { name; _ } -> Some name

let set_observer t observer = t.observer <- Some observer

let notify t event =
  match t.observer with
  | Some observer -> observer event
  | None -> ()

(* Hot paths guard event construction on this test: the [Ev_*]
   constructor argument would otherwise box on every instruction even
   with no observer attached. *)
let[@inline] observed t = t.observer != None

(* Charge a stall: bump the matching counter and, when an observer is
   attached, emit the taxonomy event. The unobserved path constructs
   nothing. *)
let[@inline] charge_stall t counter reason =
  Stats.incr t.stats counter;
  if observed t then notify t (Ev_stall reason)

let set_phase_probe t probe = t.phase_probe <- Some probe
let clear_phase_probe t = t.phase_probe <- None

let[@inline] probe t ph =
  match t.phase_probe with Some f -> f ph | None -> ()

let record_at t index = Source.at t.source index

let pipeline_empty t =
  Ring.is_empty t.ifq && Ring.is_empty t.decouple && Rob.is_empty t.rob

let finished t =
  (not (Source.has t.source t.cursor)) && pipeline_empty t

(* ------------------------------------------------------------------ *)
(* Event scheduler: touch only state that can change this cycle.
   Correctness invariants (proved against the Scan oracle by the
   differential suite):
   - broadcast selection is the N oldest entries whose execution is due,
     exactly as the oldest-first ROB scan picks them;
   - the ready pool holds exactly the entries the scan's [try_issue]
     would act on (issue, allocate a unit, or charge a port stall), in
     the same oldest-first order;
   - a load's readiness is reclassified on every change of its
     classification inputs (its own sources, an older store's
     address/data, a store's retirement), so its value at issue time
     equals the per-cycle Lsq_refresh result. *)

let[@inline] event_mode t = t.s_event

let push_ready t (entry : Entry.t) =
  if not entry.in_ready then begin
    entry.in_ready <- true;
    Event_queue.push t.ready ~at:0 ~id:entry.id entry
  end

let load_is_ready (entry : Entry.t) =
  match entry.load_readiness with
  | Entry.Load_forward | Entry.Load_needs_port -> true
  | Entry.Load_not_checked | Entry.Load_blocked -> false

(* Pool membership for loads is monotone: once a load classifies as
   Forward or Needs_port it stays issuable (the value may still flip
   between those two, e.g. when the forwarding store retires first). *)
let pool_load t (load : Entry.t) = if load_is_ready load then push_ready t load

let reclassify_load t (load : Entry.t) =
  Lsq.refresh_entry t.lsq load;
  pool_load t load

(* An older store's address or data just resolved, or a store retired:
   only loads younger than it can change classification. *)
let store_resolved t (store : Entry.t) =
  Lsq.refresh_younger t.lsq ~than_id:store.Entry.id
    ~reclassified:(pool_load t)

let store_retired t =
  Lsq.refresh_younger t.lsq ~than_id:(-1) ~reclassified:(pool_load t)

(* At dispatch, hang the new entry off its producers' wakeup lists (a
   producer with a live rename mapping is necessarily still in the
   window) and seed the ready pool / LSQ classification. *)
let register_dispatched t (entry : Entry.t) =
  let register id =
    match Rob.entry_by_id t.rob id with
    | Some producer ->
        producer.Entry.dependents <- entry :: producer.Entry.dependents
    | None ->
        (* Corrupt dependency state can only come from a malformed trace
           (register fields outside the renameable range decode to wild
           producers); surface it as a structured trace fault. *)
        raise
          (Trace.Fault.Trace_fault
             { code = "RSM-T008";
               offset = t.cursor;
               context =
                 Printf.sprintf
                   "entry #%d depends on #%d which is not in flight \
                    (cycle %d)"
                   entry.id id t.cycle })
  in
  let src1 = entry.src1_producer in
  let src2 = entry.src2_producer in
  if src1 >= 0 then register src1;
  if src2 >= 0 && src2 <> src1 then register src2;
  if Entry.is_load entry then begin
    if Entry.sources_ready entry then reclassify_load t entry
  end
  else if Entry.sources_ready entry then push_ready t entry

(* ------------------------------------------------------------------ *)
(* Squash: branch resolution at commit flushes everything younger.     *)

let squash t (branch : Entry.t) =
  if event_mode t then
    Rob.iter
      (fun (entry : Entry.t) ->
        if entry.id > branch.id then entry.squashed <- true)
      t.rob;
  if observed t then begin
    Rob.iter
      (fun (entry : Entry.t) ->
        if entry.id > branch.id then notify t (Ev_squash entry))
      t.rob;
    notify t Ev_flush_frontend
  end;
  ignore (Rob.squash_younger t.rob ~than_id:branch.id);
  ignore (Lsq.squash_younger t.lsq ~than_id:branch.id);
  Ring.clear t.ifq;
  Ring.clear t.decouple;
  Rename.reset t.rename;
  Fu.flush t.fu;
  (match branch.ras_repair with
  | Some saved -> Bpred.Predictor.ras_restore t.predictor saved
  | None -> ());
  (* Tagged records never fetched are discarded at the resolution
     point. *)
  let rec skip_tagged () =
    match record_at t t.cursor with
    | Some record when record.Trace.Record.wrong_path ->
        t.cursor <- t.cursor + 1;
        Stats.incr t.stats Stats.discarded_wrong_path;
        skip_tagged ()
    | Some _ | None -> ()
  in
  skip_tagged ();
  t.fetch_mode <- Normal;
  (* imax semantics, tracking which cause owns the pending stall: a new
     penalty takes over attribution only when strictly larger. *)
  if t.s_misspeculation_penalty > t.fetch_stall then begin
    t.fetch_stall <- t.s_misspeculation_penalty;
    t.fetch_stall_source <- Recover_mispredict
  end;
  t.last_fetch_block <- -1

(* ------------------------------------------------------------------ *)
(* Commit: in-order, up to N per cycle; stores need a write port; the
   completed result must be from an earlier cycle (the paper's flag).   *)

let commit_phase t =
  let committed = ref 0 in
  let blocked = ref false in
  let write_ports_used = ref 0 in
  let now = t.cycle in
  while (not !blocked) && !committed < t.s_width do
    if Rob.is_empty t.rob then blocked := true
    else begin
      let entry = Rob.first t.rob in
        if (not (Entry.is_completed entry)) || entry.completed_cycle >= now
        then blocked := true
        else if Entry.is_wrong_path entry then
          (* The tag-bit protocol guarantees a squash resolves before
             any tagged record can retire; reaching here means the trace
             violated the protocol (RSM-T005 family). *)
          raise
            (Trace.Fault.Trace_fault
               { code = "RSM-T005";
                 offset = t.cursor;
                 context =
                   Printf.sprintf
                     "wrong-path instruction pc=%d reached commit at \
                      cycle %d"
                     entry.record.Trace.Record.pc t.cycle })
        else begin
          let entry_commits =
            if Entry.is_store entry then begin
              if !write_ports_used >= t.s_write_ports then begin
                charge_stall t Stats.write_port_stalls Stall_write_port;
                blocked := true;
                false
              end
              else begin
                incr write_ports_used;
                (match entry.record.payload with
                | Trace.Record.Memory { address; _ } ->
                    ignore (Hierarchy.access t.dcache ~addr:address ~write:true)
                | Trace.Record.Branch _ | Trace.Record.Other _ -> ());
                true
              end
            end
            else true
          in
          if entry_commits then begin
            Rob.drop_head t.rob;
            if Trace.Record.is_memory entry.record then begin
              Lsq.release_head t.lsq entry;
              (* A retired store stops shadowing younger loads. *)
              if event_mode t && Entry.is_store entry then store_retired t
            end;
            if observed t then notify t (Ev_commit entry);
            Stats.incr t.stats Stats.committed;
            incr committed;
            (match entry.record.payload with
            | Trace.Record.Branch { kind; taken; target } ->
                Stats.incr t.stats Stats.committed_branches;
                if Resim_isa.Opcode.is_cond_kind kind then
                  Stats.incr t.stats Stats.committed_cond_branches;
                Bpred.Predictor.update t.predictor ~pc:entry.record.pc ~kind
                  ~taken ~target;
                Bpred.Predictor.record_resolution t.predictor
                  ~correct:(not entry.squash_on_commit);
                if entry.squash_on_commit then begin
                  Stats.incr t.stats Stats.mispredictions;
                  squash t entry;
                  blocked := true
                end
            | Trace.Record.Memory { is_load; _ } ->
                if is_load then begin
                  Stats.incr t.stats Stats.committed_loads;
                  if entry.forwarded then
                    Stats.incr t.stats Stats.forwarded_loads
                end
                else Stats.incr t.stats Stats.committed_stores
            | Trace.Record.Other { op_class = Trace.Record.Mult }
            | Trace.Record.Other { op_class = Trace.Record.Divide } ->
                Stats.incr t.stats Stats.committed_mult_div
            | Trace.Record.Other { op_class = Trace.Record.Alu } -> ())
          end
        end
    end
  done;
  Stats.observe_commit_width t.stats !committed

(* ------------------------------------------------------------------ *)
(* Writeback: the oldest completed executions broadcast and wake their
   dependents; same-cycle issue of woken instructions is legal.         *)

let wakeup_scan t (producer : Entry.t) =
  Rob.iter
    (fun (dependent : Entry.t) ->
      if dependent.src1_producer = producer.id then
        dependent.src1_producer <- Entry.no_producer;
      if dependent.src2_producer = producer.id then
        dependent.src2_producer <- Entry.no_producer)
    t.rob;
  let dest = producer.record.Trace.Record.dest in
  if dest > 0 then Rename.clear t.rename ~reg:dest ~id:producer.id

(* Event wakeup: walk only the registered consumers. Clearing a source
   of a waiting store means its address (src1) or data (src2) just
   resolved, which can reclassify younger loads. *)
let wakeup_event t (producer : Entry.t) =
  let dependents = producer.Entry.dependents in
  producer.Entry.dependents <- [];
  (* The cons list is youngest-first; processing order among a
     producer's dependents is immaterial (the ready pool orders by id
     and [in_ready] dedups; a load woken before a sibling store
     resolves is reclassified again by that store's [store_resolved]),
     so iterate directly instead of allocating a [List.rev] copy. *)
  List.iter
    (fun (dependent : Entry.t) ->
      if not dependent.squashed then begin
        let cleared = ref false in
        if dependent.src1_producer = producer.id then begin
          dependent.src1_producer <- Entry.no_producer;
          cleared := true
        end;
        if dependent.src2_producer = producer.id then begin
          dependent.src2_producer <- Entry.no_producer;
          cleared := true
        end;
        if !cleared && Entry.is_dispatched dependent then
          if Entry.is_load dependent then begin
            if Entry.sources_ready dependent then reclassify_load t dependent
          end
          else begin
            if Entry.sources_ready dependent then push_ready t dependent;
            if Entry.is_store dependent then store_resolved t dependent
          end
      end)
    dependents;
  let dest = producer.record.Trace.Record.dest in
  if dest > 0 then Rename.clear t.rename ~reg:dest ~id:producer.id

let writeback_phase_scan t =
  let broadcast = ref 0 in
  let now = t.cycle in
  (* Oldest-first scan; at most N broadcasts per major cycle. *)
  (try
     Rob.iter
       (fun (entry : Entry.t) ->
         if !broadcast >= t.s_width then raise Exit;
         if Entry.is_issued entry && entry.complete_at <= now
         then begin
           entry.state <- Entry.Completed;
           entry.completed_cycle <- now;
           if observed t then notify t (Ev_complete entry);
           wakeup_scan t entry;
           incr broadcast
         end)
       t.rob
   with Exit -> ())

let writeback_phase_event t =
  (* Move every execution that is due this cycle from the completion
     heap to the broadcast queue, then broadcast the N oldest. Results
     beyond the bandwidth stay queued — exactly the entries the scan
     would find still Issued-and-due next cycle. *)
  let now = t.cycle in
  while Event_queue.min_at t.completion <= now do
    let entry : Entry.t = Event_queue.top t.completion in
    Event_queue.drop t.completion;
    if (not entry.squashed) && Entry.is_issued entry then
      Event_queue.push t.due ~at:0 ~id:entry.id entry
  done;
  let broadcast = ref 0 in
  while !broadcast < t.s_width && not (Event_queue.is_empty t.due) do
    let entry : Entry.t = Event_queue.top t.due in
    Event_queue.drop t.due;
    if (not entry.squashed) && Entry.is_issued entry then begin
      entry.state <- Entry.Completed;
      entry.completed_cycle <- now;
      if observed t then notify t (Ev_complete entry);
      wakeup_event t entry;
      incr broadcast
    end
  done

(* ------------------------------------------------------------------ *)
(* Issue: schedule ready instructions onto units, oldest first.         *)

(* Issue verdicts are bare ints so the once-per-candidate-per-cycle hot
   path allocates nothing: a non-negative verdict is the operation
   latency, [verdict_no_unit] (= [Fu.no_unit]) a structural stall and
   [verdict_not_ready] unresolved sources. *)
let verdict_no_unit = Fu.no_unit
let verdict_not_ready = -2

let try_issue t ~reads_used (entry : Entry.t) =
  let now = t.cycle in
  match entry.record.payload with
  | Trace.Record.Other { op_class } ->
      if not (Entry.sources_ready entry) then verdict_not_ready
      else begin
        let request =
          match op_class with
          | Trace.Record.Alu -> Fu.Alu
          | Trace.Record.Mult -> Fu.Mult
          | Trace.Record.Divide -> Fu.Div
        in
        let verdict = Fu.try_allocate t.fu request ~now in
        if verdict < 0 then
          charge_stall t Stats.fu_busy_stalls Stall_fu_busy;
        verdict
      end
  | Trace.Record.Branch _ ->
      if not (Entry.sources_ready entry) then verdict_not_ready
      else begin
        let verdict = Fu.try_allocate t.fu Fu.Alu ~now in
        if verdict < 0 then
          charge_stall t Stats.fu_busy_stalls Stall_fu_busy;
        verdict
      end
  | Trace.Record.Memory { is_load = false; _ } ->
      (* Store: address generation on an ALU; memory write at commit. *)
      if not (Entry.sources_ready entry) then verdict_not_ready
      else if Fu.try_allocate t.fu Fu.Alu ~now >= 0 then 1
      else begin
        charge_stall t Stats.fu_busy_stalls Stall_fu_busy;
        verdict_no_unit
      end
  | Trace.Record.Memory { is_load = true; address } -> (
      match entry.load_readiness with
      | Entry.Load_not_checked | Entry.Load_blocked -> verdict_not_ready
      | Entry.Load_forward ->
          if Fu.try_allocate t.fu Fu.Alu ~now >= 0 then begin
            entry.forwarded <- true;
            1
          end
          else begin
            charge_stall t Stats.fu_busy_stalls Stall_fu_busy;
            verdict_no_unit
          end
      | Entry.Load_needs_port ->
          if !reads_used >= t.s_read_ports then begin
            charge_stall t Stats.read_port_stalls Stall_read_port;
            verdict_no_unit
          end
          else if Fu.try_allocate t.fu Fu.Alu ~now >= 0 then begin
            incr reads_used;
            let access =
              Hierarchy.access t.dcache ~addr:address ~write:false
            in
            1 + access
          end
          else begin
            charge_stall t Stats.fu_busy_stalls Stall_fu_busy;
            verdict_no_unit
          end)

let issue_entry t entry ~latency =
  entry.Entry.state <- Entry.Issued;
  entry.Entry.complete_at <- t.cycle + latency;
  if event_mode t then
    Event_queue.push t.completion ~at:entry.Entry.complete_at
      ~id:entry.Entry.id entry;
  if observed t then notify t (Ev_issue entry);
  Stats.incr t.stats Stats.issued

let issue_phase_scan t =
  Fu.begin_cycle t.fu;
  let slots_used = ref 0 in
  let reads_used = ref 0 in
  let width = t.s_width in
  (* The optimized organization bars loads from the first issue slot
     (§IV.B): give slot 1 to the oldest ready non-load, if any. *)
  if t.s_optimized then begin
    try
      Rob.iter
        (fun (entry : Entry.t) ->
          if Entry.is_dispatched entry && not (Entry.is_load entry)
          then begin
            let latency = try_issue t ~reads_used entry in
            if latency >= 0 then begin
              issue_entry t entry ~latency;
              incr slots_used;
              raise Exit
            end
          end)
        t.rob
    with Exit -> ()
  end;
  (try
     Rob.iter
       (fun (entry : Entry.t) ->
         if !slots_used >= width then raise Exit;
         if Entry.is_dispatched entry then begin
           let latency = try_issue t ~reads_used entry in
           if latency >= 0 then begin
             issue_entry t entry ~latency;
             incr slots_used
           end
         end)
       t.rob
   with Exit -> ());
  Stats.observe_issue_width t.stats !slots_used

let push_candidate t (entry : Entry.t) =
  let capacity = Array.length t.candidates in
  if t.candidate_count = capacity then begin
    let grown = Array.make (imax 16 (2 * capacity)) entry in
    Array.blit t.candidates 0 grown 0 capacity;
    t.candidates <- grown
  end;
  t.candidates.(t.candidate_count) <- entry;
  t.candidate_count <- t.candidate_count + 1

let issue_phase_event t =
  Fu.begin_cycle t.fu;
  let slots_used = ref 0 in
  let reads_used = ref 0 in
  let width = t.s_width in
  (* Drain the pool oldest-first into the reusable scratch buffer;
     entries that do not issue this cycle re-enter it. The pool holds
     exactly the source-ready entries, so walking it reproduces the
     scan's visit order over every entry whose [try_issue] could have an
     effect (including port-stall charges). *)
  t.candidate_count <- 0;
  while not (Event_queue.is_empty t.ready) do
    let entry : Entry.t = Event_queue.top t.ready in
    Event_queue.drop t.ready;
    entry.in_ready <- false;
    if (not entry.squashed) && Entry.is_dispatched entry then
      push_candidate t entry
  done;
  let first_slot = ref (-1) in
  (* Load-barred first slot of the Optimized organization. *)
  if t.s_optimized then begin
    try
      for i = 0 to t.candidate_count - 1 do
        let entry = t.candidates.(i) in
        if not (Entry.is_load entry) then begin
          let latency = try_issue t ~reads_used entry in
          if latency >= 0 then begin
            issue_entry t entry ~latency;
            incr slots_used;
            first_slot := entry.id;
            raise Exit
          end
        end
      done
    with Exit -> ()
  end;
  for i = 0 to t.candidate_count - 1 do
    let entry = t.candidates.(i) in
    if entry.id <> !first_slot then begin
      if !slots_used >= width then
        (* Past the width cutoff the scan stops visiting entries, so
           charge no stalls — just keep them ready for next cycle. *)
        push_ready t entry
      else begin
        let latency = try_issue t ~reads_used entry in
        if latency >= 0 then begin
          issue_entry t entry ~latency;
          incr slots_used
        end
        else push_ready t entry
      end
    end
  done;
  Stats.observe_issue_width t.stats !slots_used

(* ------------------------------------------------------------------ *)
(* Dispatch: decouple buffer -> ROB (+ LSQ), with renaming.             *)

let dispatch_phase t =
  let count = ref 0 in
  let blocked = ref false in
  while (not !blocked) && !count < t.s_width do
    if Ring.is_empty t.decouple then begin
      (* Dispatch ends under-filled with nothing decoupled: front-end
         starvation, one charge per stalled cycle. *)
      charge_stall t Stats.ifq_empty_stalls Stall_ifq_empty;
      blocked := true
    end
    else begin
      let fetched = Ring.front t.decouple in
        if Rob.is_full t.rob then begin
          charge_stall t Stats.rob_full_stalls Stall_rob_full;
          blocked := true
        end
        else if
          Trace.Record.is_memory fetched.record && Lsq.is_full t.lsq
        then begin
          charge_stall t Stats.lsq_full_stalls Stall_lsq_full;
          blocked := true
        end
        else begin
          Ring.drop t.decouple;
          let entry = Rob.dispatch t.rob fetched.record in
          entry.squash_on_commit <- fetched.squash_at_commit;
          entry.ras_repair <- fetched.ras_repair;
          entry.src1_producer <-
            Rename.producer t.rename fetched.record.src1;
          entry.src2_producer <-
            Rename.producer t.rename fetched.record.src2;
          if fetched.record.dest > 0 then
            Rename.define t.rename ~reg:fetched.record.dest ~id:entry.id;
          if Trace.Record.is_memory fetched.record then
            Lsq.dispatch t.lsq entry;
          if event_mode t then register_dispatched t entry;
          if observed t then notify t (Ev_dispatch entry);
          Stats.incr t.stats Stats.dispatched;
          incr count
        end
    end
  done

(* Decouple: IFQ -> decouple buffer, up to N per cycle. *)
let decouple_phase t =
  let moved = ref 0 in
  while
    !moved < t.s_width
    && (not (Ring.is_empty t.ifq))
    && not (Ring.is_full t.decouple)
  do
    Ring.push t.decouple (Ring.take t.ifq);
    incr moved
  done

(* ------------------------------------------------------------------ *)
(* Fetch.                                                              *)

(* Fetch-time handling of a control-flow record: consult the branch
   predictor unit (misfetch detection, RAS effects, statistics) and
   detect generator mispredictions from the trace structure. Returns
   the fetched-record annotations and whether the front end follows a
   taken target (ending the fetch group). *)
let fetch_control t (record : Trace.Record.t) ~kind ~taken ~target =
  let next_record = record_at t t.cursor in
  let next_is_tagged =
    (not record.wrong_path)
    && (match next_record with
       | Some next -> next.Trace.Record.wrong_path
       | None -> false)
  in
  let effective_taken =
    if next_is_tagged then
      match (kind : Resim_isa.Opcode.branch_kind) with
      | Cond -> not taken
      | Jump | Call | Ret | Indirect -> true
    else taken
  in
  let prediction =
    Bpred.Predictor.predict t.predictor ~pc:record.pc ~kind
      ~fallthrough:(record.pc + 1) ~actual_taken:taken ~actual_target:target
  in
  (* Misfetch: the front end follows a taken path but cannot supply the
     right target PC this cycle (§III). The needed target is the next
     record to fetch. *)
  let next_same_path =
    match next_record with
    | Some next ->
        next.Trace.Record.wrong_path = record.wrong_path || next_is_tagged
    | None -> false
  in
  (match next_record with
   | Some next when effective_taken && next_same_path ->
    let needed = next.Trace.Record.pc in
    let misfetch =
      match prediction.target with
      | Some supplied -> supplied <> needed
      | None -> true
    in
    if misfetch then begin
      Stats.incr t.stats Stats.misfetches;
      if t.s_misfetch_penalty > t.fetch_stall then begin
        t.fetch_stall <- t.s_misfetch_penalty;
        t.fetch_stall_source <- Recover_misfetch
      end
    end
   | Some _ | None -> ());
  let ras_repair =
    if next_is_tagged then Some (Bpred.Predictor.ras_snapshot t.predictor)
    else None
  in
  if next_is_tagged then t.fetch_mode <- Wrong_path;
  ({ record; squash_at_commit = next_is_tagged; ras_repair }, effective_taken)

(* Burn one pending fetch-stall cycle and attribute it. Icache misses
   are already charged to icache_stall_cycles in full at grant time;
   the recovery counters split the remaining penalty cycles per cause.
   Shared verbatim between the generic and staged fetch phases. *)
let burn_fetch_stall t =
  t.fetch_stall <- t.fetch_stall - 1;
  Stats.incr t.stats Stats.fetch_penalty_cycles;
  (match t.fetch_stall_source with
  | Recover_icache -> ()
  | Recover_misfetch -> Stats.incr t.stats Stats.misfetch_recovery_cycles
  | Recover_mispredict ->
      Stats.incr t.stats Stats.mispredict_recovery_cycles);
  if observed t then
    notify t
      (Ev_stall
         (match t.fetch_stall_source with
         | Recover_icache -> Stall_icache
         | Recover_misfetch -> Stall_misfetch_recovery
         | Recover_mispredict -> Stall_mispredict_recovery))

let fetch_phase t =
  if not t.fetch_enabled then ()
  else if t.fetch_stall > 0 then burn_fetch_stall t
  else begin
    Source.release_below t.source t.cursor;
    let fetched_count = ref 0 in
    let stop = ref false in
    while
      (not !stop) && !fetched_count < t.s_width
      && not (Ring.is_full t.ifq)
    do
      if not (Source.has t.source t.cursor) then stop := true
      else begin
      let record = Source.get t.source t.cursor in
      (match t.fetch_mode with
      | Awaiting_resolution -> stop := true
      | Wrong_path when not record.wrong_path ->
          t.fetch_mode <- Awaiting_resolution;
          stop := true
      | Normal when record.wrong_path ->
          (* A tagged record with no pending misprediction (malformed or
             pre-truncated trace): discard it, as resolution would. *)
          t.cursor <- t.cursor + 1;
          Stats.incr t.stats Stats.discarded_wrong_path
      | Normal | Wrong_path ->
          (* Instruction cache, one access per new block. *)
          let byte_addr = Resim_isa.Instruction.byte_address record.pc in
          let block = byte_addr / t.s_block_bytes in
          let stalled_on_icache =
            if block = t.last_fetch_block then false
            else begin
              let latency =
                Hierarchy.access t.icache ~addr:byte_addr ~write:false
              in
              t.last_fetch_block <- block;
              let extra =
                latency - (Cache.timing (Hierarchy.l1 t.icache)).hit_latency
              in
              if extra > 0 then begin
                t.fetch_stall <- extra;
                t.fetch_stall_source <- Recover_icache;
                Stats.add t.stats Stats.icache_stall_cycles extra;
                true
              end
              else false
            end
          in
          if stalled_on_icache then stop := true
          else begin
            t.cursor <- t.cursor + 1;
            Stats.incr t.stats Stats.fetched;
            if record.wrong_path then
              Stats.incr t.stats Stats.fetched_wrong_path;
            let fetched, taken =
              match record.payload with
              | Trace.Record.Branch { kind; taken; target } ->
                  fetch_control t record ~kind ~taken ~target
              | Trace.Record.Memory _ | Trace.Record.Other _ ->
                  ( { record; squash_at_commit = false; ras_repair = None },
                    false )
            in
            Ring.push t.ifq fetched;
            if observed t then notify t (Ev_fetch record);
            incr fetched_count;
            (* Fetch until a control-flow bubble (§III). *)
            if taken then stop := true
          end)
      end
    done
  end

(* ------------------------------------------------------------------ *)

let generic_step t =
  if not (finished t) then begin
    probe t Ph_commit;
    commit_phase t;
    if t.s_event then begin
      (* LSQ readiness is maintained incrementally by the commit,
         wakeup and dispatch hooks — no per-cycle refresh. *)
      probe t Ph_writeback;
      writeback_phase_event t;
      probe t Ph_issue;
      issue_phase_event t
    end
    else begin
      probe t Ph_writeback;
      writeback_phase_scan t;
      Lsq.refresh t.lsq;
      probe t Ph_issue;
      issue_phase_scan t
    end;
    probe t Ph_dispatch;
    dispatch_phase t;
    probe t Ph_decouple;
    decouple_phase t;
    probe t Ph_fetch;
    fetch_phase t;
    probe t Ph_account;
    Stats.sample_occupancy t.stats ~ifq:(Ring.length t.ifq)
      ~rob:(Rob.length t.rob) ~lsq:(Lsq.length t.lsq);
    t.cycle <- t.cycle + 1;
    Stats.incr t.stats Stats.major_cycles
  end

let step t =
  match t.stepper with
  | Generic -> generic_step t
  | Specialized { run; _ } -> run t

let fetch_mode_name t =
  match t.fetch_mode with
  | Normal -> "normal"
  | Wrong_path -> "wrong-path"
  | Awaiting_resolution -> "awaiting"

(* ------------------------------------------------------------------ *)
(* Functional warm-up (sampled simulation, DESIGN.md §13): advance the
   trace cursor, cache hierarchy and predictor/BTB/RAS state without
   any detailed timing. No ROB/LSQ/FU/event-queue work happens and the
   cycle counter does not move — only the long-lived microarchitectural
   state a later detailed interval depends on is updated. *)

(* Drain: finish every in-flight instruction without admitting new
   ones, leaving the pipeline empty at the current cursor. All phases
   run normally (commits train the predictor, stores write the dcache,
   squashes resolve), so the microarchitectural state afterwards is
   exactly what a detailed run would carry — the cycles spent are
   charged to the engine statistics like any others. Bounded by the
   in-flight work, so the guard only trips on a genuine engine bug. *)
let drain_bound = 100_000

let drain t =
  t.fetch_enabled <- false;
  let guard = ref 0 in
  (match
     while not (pipeline_empty t) do
       step t;
       incr guard;
       if !guard > drain_bound then
         raise
           (Deadlock
              { reason = "no progress draining the pipeline";
                at_cycle = Int64.of_int t.cycle;
                at_cursor = t.cursor;
                rob_occupancy = Rob.length t.rob;
                fetch_mode = fetch_mode_name t;
                stuck_for = !guard })
     done
   with
  | () -> t.fetch_enabled <- true
  | exception exn ->
      t.fetch_enabled <- true;
      raise exn);
  (* A squash during the drain may leave a pending recovery penalty;
     the functional gap that follows absorbs it by construction. *)
  t.fetch_stall <- 0;
  t.fetch_mode <- Normal

(* Process up to [max_instructions] correct-path records functionally:
   per new icache block one instruction-cache access, per branch a
   predict (exercising the BTB lookup and RAS push/pop exactly as fetch
   would) followed immediately by its commit-time training, per memory
   record one data-cache access. Wrong-path records are skipped — their
   resolution point is what the detailed engine squashes at, and no
   timing state exists here to recover. Returns the number of
   correct-path instructions consumed (short only when the trace
   ends). The pipeline must be empty ({!drain} first). *)
let functional_warmup t ~max_instructions =
  if not (pipeline_empty t) then
    invalid_arg "Engine.functional_warmup: pipeline not empty";
  if max_instructions < 0 then
    invalid_arg "Engine.functional_warmup: negative instruction count";
  t.fetch_stall <- 0;
  t.fetch_mode <- Normal;
  let warmed = ref 0 in
  let running = ref (max_instructions > 0) in
  while !running do
    Source.release_below t.source t.cursor;
    if not (Source.has t.source t.cursor) then running := false
    else begin
      let record = Source.get t.source t.cursor in
      t.cursor <- t.cursor + 1;
      if not record.Trace.Record.wrong_path then begin
        incr warmed;
        let byte_addr = Resim_isa.Instruction.byte_address record.pc in
        let block = byte_addr / t.s_block_bytes in
        if block <> t.last_fetch_block then begin
          ignore (Hierarchy.access t.icache ~addr:byte_addr ~write:false);
          t.last_fetch_block <- block
        end;
        (match record.payload with
        | Trace.Record.Branch { kind; taken; target } ->
            ignore
              (Bpred.Predictor.predict t.predictor ~pc:record.pc ~kind
                 ~fallthrough:(record.pc + 1) ~actual_taken:taken
                 ~actual_target:target);
            Bpred.Predictor.update t.predictor ~pc:record.pc ~kind ~taken
              ~target
        | Trace.Record.Memory { is_load; address } ->
            ignore
              (Hierarchy.access t.dcache ~addr:address ~write:(not is_load))
        | Trace.Record.Other _ -> ());
        if !warmed >= max_instructions then running := false
      end
    end
  done;
  !warmed

let cursor t = t.cursor

let checkpoint t =
  Checkpoint.make ~cycle:(Int64.of_int t.cycle) ~cursor:t.cursor
    ~counters:(Stats.to_assoc t.stats) ()

let deadlock_here t ~reason ~stuck_for =
  { reason;
    at_cycle = Int64.of_int t.cycle;
    at_cursor = t.cursor;
    rob_occupancy = Rob.length t.rob;
    fetch_mode = fetch_mode_name t;
    stuck_for }

type stop = Drained | Cycle_budget | Time_budget | Commit_target

type bounded = { final : Stats.t; stop : stop; resume : Checkpoint.t option }

let default_watchdog = 100_000

(* How many cycles between calls of the (possibly wall-clock-reading)
   deadline closure: cheap enough to keep hot-loop overhead invisible,
   frequent enough that a timeout lands within microseconds. *)
let deadline_poll_interval = 256

let run_bounded ?(watchdog = default_watchdog) ?max_cycles ?max_commits
    ?deadline t =
  (* The cycle budget, clamped to the int cycle counter's domain: an
     int64 budget at or beyond [max_int] cannot trip before the heat
     death of any real run. *)
  let cycle_budget =
    match max_cycles with
    | None -> max_int
    | Some budget ->
        if Int64.compare budget (Int64.of_int max_int) >= 0 then max_int
        else Int64.to_int budget
  in
  (* Progress watchdog on plain ints: this loop runs every cycle. *)
  let last_cursor = ref t.cursor in
  let last_committed = ref (Stats.get_int Stats.committed t.stats) in
  let last_rob = ref (Rob.length t.rob) in
  let stuck_for = ref 0 in
  let poll = ref 0 in
  let verdict = ref Drained in
  let running = ref (not (finished t)) in
  while !running do
    let budget_hit = t.cycle >= cycle_budget in
    let commits_hit =
      (not budget_hit)
      &&
      match max_commits with
      | Some target -> Stats.get_int Stats.committed t.stats >= target
      | None -> false
    in
    let deadline_hit =
      (not budget_hit) && (not commits_hit)
      &&
      match deadline with
      | Some hit ->
          poll := !poll + 1;
          if !poll >= deadline_poll_interval then begin
            poll := 0;
            hit ()
          end
          else false
      | None -> false
    in
    if budget_hit then begin
      verdict := Cycle_budget;
      running := false
    end
    else if commits_hit then begin
      verdict := Commit_target;
      running := false
    end
    else if deadline_hit then begin
      verdict := Time_budget;
      running := false
    end
    else begin
      step t;
      let committed = Stats.get_int Stats.committed t.stats in
      let rob = Rob.length t.rob in
      if t.cursor = !last_cursor && committed = !last_committed
         && rob = !last_rob
      then begin
        incr stuck_for;
        if !stuck_for > watchdog then
          raise
            (Deadlock
               (deadlock_here t ~reason:"no commit/fetch progress"
                  ~stuck_for:!stuck_for))
      end
      else begin
        stuck_for := 0;
        last_cursor := t.cursor;
        last_committed := committed;
        last_rob := rob
      end;
      if finished t then running := false
    end
  done;
  { final = t.stats;
    stop = !verdict;
    resume =
      (match !verdict with
      | Drained -> None
      | Cycle_budget | Time_budget | Commit_target -> Some (checkpoint t)) }

let run ?(max_cycles = 1_000_000_000L) t =
  let bounded = run_bounded ~max_cycles t in
  match bounded.stop with
  | Drained -> bounded.final
  | Cycle_budget ->
      raise (Deadlock (deadlock_here t ~reason:"exceeded max_cycles" ~stuck_for:0))
  | Time_budget | Commit_target ->
      assert false (* no deadline or commit target was installed *)

let simulate ?config trace = run (create ?config trace)

(* ------------------------------------------------------------------ *)
(* Engine specialization (DESIGN.md §14): staged monomorphic variants.

   [Staged] rebuilds the per-cycle phases with the configuration facts
   of one grid point bound once, at functor application: the issue
   width, organization and scheduler branches, memory-port limits,
   penalties and the functional-unit table stop being per-cycle Config
   reads. The rewritten phases are also allocation-free — loop state
   travels in function parameters instead of the [ref] cells the
   generic (readable, reference) engine uses, and ROB walks are index
   loops instead of closures over those refs.

   Correctness contract: a variant must be bit-identical to the
   generic engine — same cycle count, same value in every Stats
   counter, same observer event stream in the same order, same probe
   sites. Every phase below is a line-by-line transcription of its
   generic counterpart with the constants substituted; the three-way
   differential suite (test_spec.ml) holds them to it. [install]
   refuses a configuration that disagrees with any frozen constant. *)

module type STATIC_CONFIG = sig
  val width : int
  val rob_entries : int
  val lsq_entries : int
  val alu_count : int
  val alu_latency : int
  val mult_count : int
  val mult_latency : int
  val div_count : int
  val div_latency : int
  val mem_read_ports : int
  val mem_write_ports : int
  val misfetch_penalty : int
  val misspeculation_penalty : int
  val organization : Config.organization
  val scheduler : Config.scheduler
end

module Staged (S : STATIC_CONFIG) = struct
  let optimized = Config.is_optimized S.organization

  let event =
    match S.scheduler with Config.Event -> true | Config.Scan -> false

  (* Once per functor application, never per cycle. *)
  let name =
    (* resim-lint: allow *)
    Printf.sprintf "%s-%s-w%d-rob%d-lsq%d-rp%dwp%d"
      (Config.organization_name S.organization)
      (Config.scheduler_name S.scheduler)
      S.width S.rob_entries S.lsq_entries S.mem_read_ports S.mem_write_ports

  let matches (c : Config.t) =
    c.Config.width = S.width
    && c.Config.rob_entries = S.rob_entries
    && c.Config.lsq_entries = S.lsq_entries
    && c.Config.alu_count = S.alu_count
    && c.Config.alu_latency = S.alu_latency
    && c.Config.mult_count = S.mult_count
    && c.Config.mult_latency = S.mult_latency
    && c.Config.div_count = S.div_count
    && c.Config.div_latency = S.div_latency
    && c.Config.mem_read_ports = S.mem_read_ports
    && c.Config.mem_write_ports = S.mem_write_ports
    && c.Config.misfetch_penalty = S.misfetch_penalty
    && c.Config.misspeculation_penalty = S.misspeculation_penalty
    && (match (c.Config.organization, S.organization) with
       | Config.Simple, Config.Simple
       | Config.Improved, Config.Improved
       | Config.Optimized, Config.Optimized ->
           true
       | ( (Config.Simple | Config.Improved | Config.Optimized),
           (Config.Simple | Config.Improved | Config.Optimized) ) ->
           false)
    && match (c.Config.scheduler, S.scheduler) with
       | Config.Scan, Config.Scan | Config.Event, Config.Event -> true
       | (Config.Scan | Config.Event), (Config.Scan | Config.Event) ->
           false

  (* The per-cycle implementation is built at [install] time as one
     closure family over the engine: [make_run] resolves every
     statistics cell, queue, and sub-component exactly once, rebinds
     the frozen constants as immediates, and defines the phases as
     local functions so intra-cycle calls stay direct (the functor's
     module fields would be called through [caml_apply] otherwise —
     this build has no flambda, so the structure of the code IS the
     optimization). Loop state travels in function parameters instead
     of the [ref] cells the generic (readable, reference) engine uses,
     and ROB walks are index loops instead of closures.

     Every phase is a line-by-line transcription of its generic
     counterpart with the constants substituted and the accessor
     indirections resolved; the three-way differential suite
     (test_spec.ml) holds them to bit-identity. *)

  let make_run (t : t) =
    (* Frozen grid-point constants, rebound as locals so the closures
       capture immediates rather than module fields. *)
    let width = S.width in
    let read_ports = S.mem_read_ports in
    let write_ports = S.mem_write_ports in
    let alu_count = S.alu_count in
    let alu_latency = S.alu_latency in
    let mult_count = S.mult_count in
    let mult_latency = S.mult_latency in
    let div_latency = S.div_latency in
    let misspeculation_penalty = S.misspeculation_penalty in
    let optimized = optimized in
    let event = event in
    (* Engine components, resolved once. *)
    let stats = t.stats in
    let rob = t.rob in
    let lsq = t.lsq in
    let fu = t.fu in
    let rename = t.rename in
    let ifq = t.ifq in
    let decouple = t.decouple in
    let completion = t.completion in
    let due = t.due in
    let ready = t.ready in
    let source = t.source in
    let dcache = t.dcache in
    let icache = t.icache in
    let predictor = t.predictor in
    let block_bytes = t.s_block_bytes in
    let icache_hit_latency = (Cache.timing (Hierarchy.l1 icache)).hit_latency in
    (* A perfect L1 never misses, so the hierarchy walk collapses to
       three counter bumps and the constant hit latency; the closure is
       chosen once here. Real geometries keep the full access. *)
    let staged_access hierarchy =
      let l1 = Hierarchy.l1 hierarchy in
      match Cache.config l1 with
      | Cache.Perfect ->
          let c = Cache.counters l1 in
          let latency = (Cache.timing l1).hit_latency in
          fun _addr _write ->
            c.Cache.accesses <- c.Cache.accesses + 1;
            c.Cache.clock <- c.Cache.clock + 1;
            c.Cache.hits <- c.Cache.hits + 1;
            latency
      | Cache.Set_associative _ ->
          fun addr write -> Hierarchy.access hierarchy ~addr ~write
    in
    let dcache_access = staged_access dcache in
    let icache_access = staged_access icache in
    let rob_ring = rob.Rob.ring in
    let producers = rename.Rename.producers in
    let register_count = Array.length producers in
    let no_producer = Entry.no_producer in
    let no_unit = Fu.no_unit in
    let commit_widths = Stats.commit_width_histogram stats in
    let issue_widths = Stats.issue_width_histogram stats in
    (* Whole-array sources expose their length once so the per-cycle
       end-of-trace check is a bare compare; pull sources keep the
       ordinary calls. *)
    let source_limit =
      match source with
      | Source.Whole records -> Array.length records
      | Source.Windowed _ -> -1
    in
    let source_has index =
      if source_limit >= 0 then index >= 0 && index < source_limit
      else Source.has source index
    in
    let source_get index =
      match source with
      | Source.Whole records ->
          if index < 0 || index >= Array.length records then
            invalid_arg "Source.get: out of range";
          records.(index)
      | Source.Windowed _ -> Source.get source index
    in
    (* Constant-time queue operations, transcribed over the exposed
       representations (ring.mli, event_queue.mli): [-opaque] keeps the
       cross-module originals out of line in the default build, and
       these run a dozen-plus times per cycle. Guards and exception
       messages match the originals exactly. *)
    let ring_front r =
      if r.Ring.length = 0 then invalid_arg "Ring.front: empty";
      r.Ring.slots.(r.Ring.head)
    in
    let ring_get r i =
      if i < 0 || i >= r.Ring.length then invalid_arg "Ring.get: out of range";
      let j = r.Ring.head + i in
      r.Ring.slots.(if j >= r.Ring.capacity then j - r.Ring.capacity else j)
    in
    let ring_drop r =
      if r.Ring.length = 0 then invalid_arg "Ring.drop: empty";
      let next = r.Ring.head + 1 in
      r.Ring.head <- (if next >= r.Ring.capacity then 0 else next);
      r.Ring.length <- r.Ring.length - 1
    in
    let ring_push r value =
      if r.Ring.length = r.Ring.capacity then failwith "Ring.push: full";
      if Array.length r.Ring.slots = 0 then
        r.Ring.slots <- Array.make r.Ring.capacity value;
      let j = r.Ring.head + r.Ring.length in
      r.Ring.slots.(if j >= r.Ring.capacity then j - r.Ring.capacity else j) <-
        value;
      r.Ring.length <- r.Ring.length + 1
    in
    let eq_is_empty (q : _ Event_queue.t) = q.Event_queue.size = 0 in
    let eq_min_at (q : _ Event_queue.t) =
      if q.Event_queue.size = 0 then max_int else q.Event_queue.at.(0)
    in
    let eq_top (q : _ Event_queue.t) =
      if q.Event_queue.size = 0 then invalid_arg "Event_queue.top: empty";
      q.Event_queue.payload.(0)
    in
    (* [Event_queue.push]/[drop] unfolded, with the four column arrays
       hoisted into locals around the sift loops. Key order is the same
       lexicographic (at, id, seq). *)
    let eq_grow (q : Entry.t Event_queue.t) payload =
      let capacity = Array.length q.Event_queue.at in
      if q.Event_queue.size = capacity then begin
        let grown = if capacity < 8 then 16 else 2 * capacity in
        let at = Array.make grown 0 in
        let id = Array.make grown 0 in
        let seq = Array.make grown 0 in
        let payloads = Array.make grown payload in
        Array.blit q.Event_queue.at 0 at 0 q.Event_queue.size;
        Array.blit q.Event_queue.id 0 id 0 q.Event_queue.size;
        Array.blit q.Event_queue.seq 0 seq 0 q.Event_queue.size;
        Array.blit q.Event_queue.payload 0 payloads 0 q.Event_queue.size;
        q.Event_queue.at <- at;
        q.Event_queue.id <- id;
        q.Event_queue.seq <- seq;
        q.Event_queue.payload <- payloads
      end
    in
    let eq_push (q : Entry.t Event_queue.t) ~at ~id payload =
      let seq = q.Event_queue.stamp in
      q.Event_queue.stamp <- seq + 1;
      eq_grow q payload;
      let ats = q.Event_queue.at
      and ids = q.Event_queue.id
      and seqs = q.Event_queue.seq
      and payloads = q.Event_queue.payload in
      let i = ref q.Event_queue.size in
      q.Event_queue.size <- !i + 1;
      let continue_ = ref true in
      while !continue_ && !i > 0 do
        let parent = (!i - 1) / 2 in
        if
          at < ats.(parent)
          || (at = ats.(parent)
              && (id < ids.(parent)
                  || (id = ids.(parent) && seq < seqs.(parent))))
        then begin
          ats.(!i) <- ats.(parent);
          ids.(!i) <- ids.(parent);
          seqs.(!i) <- seqs.(parent);
          payloads.(!i) <- payloads.(parent);
          i := parent
        end
        else continue_ := false
      done;
      ats.(!i) <- at;
      ids.(!i) <- id;
      seqs.(!i) <- seq;
      payloads.(!i) <- payload
    in
    let eq_drop (q : Entry.t Event_queue.t) =
      if q.Event_queue.size = 0 then invalid_arg "Event_queue.drop: empty";
      q.Event_queue.size <- q.Event_queue.size - 1;
      let size = q.Event_queue.size in
      if size > 0 then begin
        let ats = q.Event_queue.at
        and ids = q.Event_queue.id
        and seqs = q.Event_queue.seq
        and payloads = q.Event_queue.payload in
        let at = ats.(size)
        and id = ids.(size)
        and seq = seqs.(size) in
        let payload = payloads.(size) in
        let i = ref 0 in
        let continue_ = ref true in
        while !continue_ do
          let left = (2 * !i) + 1 in
          if left >= size then continue_ := false
          else begin
            let right = left + 1 in
            let child =
              if
                right < size
                && (ats.(right) < ats.(left)
                    || (ats.(right) = ats.(left)
                        && (ids.(right) < ids.(left)
                            || (ids.(right) = ids.(left)
                                && seqs.(right) < seqs.(left)))))
              then right
              else left
            in
            if
              ats.(child) < at
              || (ats.(child) = at
                  && (ids.(child) < id
                      || (ids.(child) = id && seqs.(child) < seq)))
            then begin
              ats.(!i) <- ats.(child);
              ids.(!i) <- ids.(child);
              seqs.(!i) <- seqs.(child);
              payloads.(!i) <- payloads.(child);
              i := child
            end
            else continue_ := false
          end
        done;
        ats.(!i) <- at;
        ids.(!i) <- id;
        seqs.(!i) <- seq;
        payloads.(!i) <- payload
      end
    in
    (* Functional-unit allocation over the exposed pool record; the
       frozen counts and latencies are already in scope. *)
    let alloc_alu () =
      if fu.Fu.alu_used < alu_count then begin
        fu.Fu.alu_used <- fu.Fu.alu_used + 1;
        fu.Fu.alu_allocations <- fu.Fu.alu_allocations + 1;
        alu_latency
      end
      else no_unit
    in
    let alloc_mult () =
      if fu.Fu.mult_used < mult_count then begin
        fu.Fu.mult_used <- fu.Fu.mult_used + 1;
        mult_latency
      end
      else no_unit
    in
    let alloc_div now =
      let busy = fu.Fu.div_busy_until in
      let rec scan i =
        if i >= Array.length busy then no_unit
        else if busy.(i) <= now then begin
          busy.(i) <- now + div_latency;
          div_latency
        end
        else scan (i + 1)
      in
      scan 0
    in
    (* Rename-table lookups over the exposed producer array. *)
    let producer_of reg =
      if reg <= 0 || reg >= register_count then no_producer
      else producers.(reg)
    in
    let observe_width (h : Histogram.t) value =
      let bins = Array.length h.Histogram.counts in
      let slot =
        if value < 0 then 0 else if value >= bins then bins - 1 else value
      in
      h.Histogram.counts.(slot) <- h.Histogram.counts.(slot) + 1;
      h.Histogram.total <- h.Histogram.total + 1
    in
    (* Statistics cells, resolved once; bumps are raw ref arithmetic. *)
    let st_committed = Stats.live Stats.committed stats in
    let st_committed_branches = Stats.live Stats.committed_branches stats in
    let st_committed_cond_branches =
      Stats.live Stats.committed_cond_branches stats
    in
    let st_committed_loads = Stats.live Stats.committed_loads stats in
    let st_committed_stores = Stats.live Stats.committed_stores stats in
    let st_committed_mult_div = Stats.live Stats.committed_mult_div stats in
    let st_mispredictions = Stats.live Stats.mispredictions stats in
    let st_forwarded_loads = Stats.live Stats.forwarded_loads stats in
    let st_dispatched = Stats.live Stats.dispatched stats in
    let st_issued = Stats.live Stats.issued stats in
    let st_fetched = Stats.live Stats.fetched stats in
    let st_fetched_wrong_path = Stats.live Stats.fetched_wrong_path stats in
    let st_discarded_wrong_path =
      Stats.live Stats.discarded_wrong_path stats
    in
    let st_icache_stall_cycles = Stats.live Stats.icache_stall_cycles stats in
    let st_major_cycles = Stats.live Stats.major_cycles stats in
    let st_write_port_stalls = Stats.live Stats.write_port_stalls stats in
    let st_read_port_stalls = Stats.live Stats.read_port_stalls stats in
    let st_fu_busy_stalls = Stats.live Stats.fu_busy_stalls stats in
    let st_ifq_empty_stalls = Stats.live Stats.ifq_empty_stalls stats in
    let st_rob_full_stalls = Stats.live Stats.rob_full_stalls stats in
    let st_lsq_full_stalls = Stats.live Stats.lsq_full_stalls stats in
    (* [charge_stall] with the cell pre-resolved. *)
    let charge cell reason =
      Stdlib.incr cell;
      if observed t then notify t (Ev_stall reason)
    in
    (* Entry and record predicates, flattened to local tag matches (the
       cross-module [Entry.is_*] helpers are out-of-line calls in a
       non-flambda dev build). *)
    let entry_is_dispatched (entry : Entry.t) =
      match entry.Entry.state with
      | Entry.Dispatched -> true
      | Entry.Issued | Entry.Completed -> false
    in
    let entry_is_issued (entry : Entry.t) =
      match entry.Entry.state with
      | Entry.Issued -> true
      | Entry.Dispatched | Entry.Completed -> false
    in
    let entry_is_completed (entry : Entry.t) =
      match entry.Entry.state with
      | Entry.Completed -> true
      | Entry.Dispatched | Entry.Issued -> false
    in
    let entry_is_load (entry : Entry.t) =
      match entry.Entry.record.Trace.Record.payload with
      | Trace.Record.Memory { is_load; _ } -> is_load
      | Trace.Record.Branch _ | Trace.Record.Other _ -> false
    in
    let entry_is_store (entry : Entry.t) =
      match entry.Entry.record.Trace.Record.payload with
      | Trace.Record.Memory { is_load; _ } -> not is_load
      | Trace.Record.Branch _ | Trace.Record.Other _ -> false
    in
    let record_is_memory (record : Trace.Record.t) =
      match record.Trace.Record.payload with
      | Trace.Record.Memory _ -> true
      | Trace.Record.Branch _ | Trace.Record.Other _ -> false
    in
    let sources_ready (entry : Entry.t) =
      entry.Entry.src1_producer < 0 && entry.Entry.src2_producer < 0
    in
    (* ---- event-scheduler bookkeeping (mirrors the top-level
       helpers, with the components pre-resolved) ---- *)
    let push_ready (entry : Entry.t) =
      if not entry.in_ready then begin
        entry.in_ready <- true;
        eq_push ready ~at:0 ~id:entry.id entry
      end
    in
    let pool_load (load : Entry.t) =
      match load.Entry.load_readiness with
      | Entry.Load_forward | Entry.Load_needs_port -> push_ready load
      | Entry.Load_not_checked | Entry.Load_blocked -> ()
    in
    let reclassify_load (load : Entry.t) =
      Lsq.refresh_entry lsq load;
      pool_load load
    in
    (* One closure for every refresh, instead of the per-call partial
       application the generic engine allocates. *)
    let store_resolved (store : Entry.t) =
      Lsq.refresh_younger lsq ~than_id:store.Entry.id ~reclassified:pool_load
    in
    let store_retired () =
      Lsq.refresh_younger lsq ~than_id:(-1) ~reclassified:pool_load
    in
    let register_dispatched (entry : Entry.t) =
      (* [Rob.entry_by_id] unfolded: window ids are consecutive, so the
         lookup is offset arithmetic from the head entry's id. *)
      let register id =
        let n = rob_ring.Ring.length in
        let index =
          if n = 0 then -1 else id - (ring_front rob_ring).Entry.id
        in
        if index < 0 || index >= n then
          raise
            (Trace.Fault.Trace_fault
               { code = "RSM-T008";
                 offset = t.cursor;
                 context =
                   Printf.sprintf
                     "entry #%d depends on #%d which is not in flight \
                      (cycle %d)"
                     entry.id id t.cycle })
        else begin
          let producer : Entry.t = ring_get rob_ring index in
          assert (producer.Entry.id = id);
          producer.Entry.dependents <- entry :: producer.Entry.dependents
        end
      in
      let src1 = entry.src1_producer in
      let src2 = entry.src2_producer in
      if src1 >= 0 then register src1;
      if src2 >= 0 && src2 <> src1 then register src2;
      if entry_is_load entry then begin
        if sources_ready entry then reclassify_load entry
      end
      else if sources_ready entry then push_ready entry
    in
    (* ---- squash ---- *)
    let rec mark_squashed n i than_id =
      if i < n then begin
        let entry : Entry.t = ring_get rob_ring i in
        if entry.Entry.id > than_id then entry.Entry.squashed <- true;
        mark_squashed n (i + 1) than_id
      end
    in
    let rec skip_tagged () =
      match Source.at source t.cursor with
      | Some record when record.Trace.Record.wrong_path ->
          t.cursor <- t.cursor + 1;
          Stdlib.incr st_discarded_wrong_path;
          skip_tagged ()
      | Some _ | None -> ()
    in
    let squash (branch : Entry.t) =
      if event then mark_squashed rob_ring.Ring.length 0 branch.Entry.id;
      if observed t then begin
        let rec notify_squashed n i =
          if i < n then begin
            let entry : Entry.t = ring_get rob_ring i in
            if entry.Entry.id > branch.Entry.id then
              notify t (Ev_squash entry);
            notify_squashed n (i + 1)
          end
        in
        notify_squashed rob_ring.Ring.length 0;
        notify t Ev_flush_frontend
      end;
      ignore (Rob.squash_younger rob ~than_id:branch.Entry.id);
      ignore (Lsq.squash_younger lsq ~than_id:branch.Entry.id);
      Ring.clear ifq;
      Ring.clear decouple;
      Rename.reset rename;
      Fu.flush fu;
      (match branch.Entry.ras_repair with
      | Some saved -> Bpred.Predictor.ras_restore predictor saved
      | None -> ());
      skip_tagged ();
      t.fetch_mode <- Normal;
      if misspeculation_penalty > t.fetch_stall then begin
        t.fetch_stall <- misspeculation_penalty;
        t.fetch_stall_source <- Recover_mispredict
      end;
      t.last_fetch_block <- -1
    in
    (* ---- commit ---- *)
    let rec commit_loop committed write_ports_used =
      if committed >= width then committed
      else if rob_ring.Ring.length = 0 then committed
      else begin
        let entry = ring_front rob_ring in
        if (not (entry_is_completed entry)) || entry.completed_cycle >= t.cycle
        then committed
        else if entry.Entry.record.Trace.Record.wrong_path then
          raise
            (Trace.Fault.Trace_fault
               { code = "RSM-T005";
                 offset = t.cursor;
                 context =
                   Printf.sprintf
                     "wrong-path instruction pc=%d reached commit at cycle %d"
                     entry.record.Trace.Record.pc t.cycle })
        else if entry_is_store entry && write_ports_used >= write_ports
        then begin
          charge st_write_port_stalls Stall_write_port;
          committed
        end
        else begin
          let write_ports_used =
            if entry_is_store entry then begin
              (match entry.record.payload with
              | Trace.Record.Memory { address; _ } ->
                  ignore (dcache_access address true)
              | Trace.Record.Branch _ | Trace.Record.Other _ -> ());
              write_ports_used + 1
            end
            else write_ports_used
          in
          ring_drop rob_ring;
          if record_is_memory entry.record then begin
            Lsq.release_head lsq entry;
            if event && entry_is_store entry then store_retired ()
          end;
          if observed t then notify t (Ev_commit entry);
          Stdlib.incr st_committed;
          let committed = committed + 1 in
          let keep_going =
            match entry.record.payload with
            | Trace.Record.Branch { kind; taken; target } ->
                Stdlib.incr st_committed_branches;
                if Resim_isa.Opcode.is_cond_kind kind then
                  Stdlib.incr st_committed_cond_branches;
                Bpred.Predictor.update predictor ~pc:entry.record.pc ~kind
                  ~taken ~target;
                Bpred.Predictor.record_resolution predictor
                  ~correct:(not entry.squash_on_commit);
                if entry.squash_on_commit then begin
                  Stdlib.incr st_mispredictions;
                  squash entry;
                  false
                end
                else true
            | Trace.Record.Memory { is_load; _ } ->
                if is_load then begin
                  Stdlib.incr st_committed_loads;
                  if entry.forwarded then Stdlib.incr st_forwarded_loads
                end
                else Stdlib.incr st_committed_stores;
                true
            | Trace.Record.Other { op_class = Trace.Record.Mult }
            | Trace.Record.Other { op_class = Trace.Record.Divide } ->
                Stdlib.incr st_committed_mult_div;
                true
            | Trace.Record.Other { op_class = Trace.Record.Alu } -> true
          in
          if keep_going then commit_loop committed write_ports_used
          else committed
        end
      end
    in
    let commit_phase () = observe_width commit_widths (commit_loop 0 0) in
    (* ---- writeback (event) ---- *)
    let rec wake_dependents producer_id = function
      | [] -> ()
      | (dependent : Entry.t) :: rest ->
          if not dependent.squashed then begin
            let cleared1 = dependent.src1_producer = producer_id in
            if cleared1 then dependent.src1_producer <- Entry.no_producer;
            let cleared2 = dependent.src2_producer = producer_id in
            if cleared2 then dependent.src2_producer <- Entry.no_producer;
            if (cleared1 || cleared2) && entry_is_dispatched dependent then
              if entry_is_load dependent then begin
                if sources_ready dependent then reclassify_load dependent
              end
              else begin
                if sources_ready dependent then push_ready dependent;
                if entry_is_store dependent then store_resolved dependent
              end
          end;
          wake_dependents producer_id rest
    in
    let wakeup_event (producer : Entry.t) =
      let dependents = producer.Entry.dependents in
      producer.Entry.dependents <- [];
      wake_dependents producer.id dependents;
      let dest = producer.record.Trace.Record.dest in
      if dest > 0 && dest < register_count && producers.(dest) = producer.id
      then producers.(dest) <- no_producer
    in
    let rec drain_completion now =
      if eq_min_at completion <= now then begin
        let entry : Entry.t = eq_top completion in
        eq_drop completion;
        if (not entry.squashed) && entry_is_issued entry then
          eq_push due ~at:0 ~id:entry.id entry;
        drain_completion now
      end
    in
    let rec broadcast_loop now n =
      if n < width && not (eq_is_empty due) then begin
        let entry : Entry.t = eq_top due in
        eq_drop due;
        if (not entry.squashed) && entry_is_issued entry then begin
          entry.state <- Entry.Completed;
          entry.completed_cycle <- now;
          if observed t then notify t (Ev_complete entry);
          wakeup_event entry;
          broadcast_loop now (n + 1)
        end
        else broadcast_loop now n
      end
    in
    let writeback_phase_event () =
      drain_completion t.cycle;
      broadcast_loop t.cycle 0
    in
    (* ---- writeback (scan) ---- *)
    let rec wakeup_scan_loop n i producer_id =
      if i < n then begin
        let dependent : Entry.t = ring_get rob_ring i in
        if dependent.src1_producer = producer_id then
          dependent.src1_producer <- Entry.no_producer;
        if dependent.src2_producer = producer_id then
          dependent.src2_producer <- Entry.no_producer;
        wakeup_scan_loop n (i + 1) producer_id
      end
    in
    let wakeup_scan (producer : Entry.t) =
      wakeup_scan_loop rob_ring.Ring.length 0 producer.Entry.id;
      let dest = producer.record.Trace.Record.dest in
      if dest > 0 && dest < register_count && producers.(dest) = producer.id
      then producers.(dest) <- no_producer
    in
    let rec writeback_scan_loop n i broadcast =
      if i < n && broadcast < width then begin
        let entry : Entry.t = ring_get rob_ring i in
        if entry_is_issued entry && entry.complete_at <= t.cycle then begin
          entry.state <- Entry.Completed;
          entry.completed_cycle <- t.cycle;
          if observed t then notify t (Ev_complete entry);
          wakeup_scan entry;
          writeback_scan_loop n (i + 1) (broadcast + 1)
        end
        else writeback_scan_loop n (i + 1) broadcast
      end
    in
    let writeback_phase_scan () = writeback_scan_loop rob_ring.Ring.length 0 0 in
    (* ---- issue ---- *)
    let try_issue ~reads_used (entry : Entry.t) =
      match entry.record.payload with
      | Trace.Record.Other { op_class } ->
          if not (sources_ready entry) then verdict_not_ready
          else begin
            let verdict =
              match op_class with
              | Trace.Record.Alu -> alloc_alu ()
              | Trace.Record.Mult -> alloc_mult ()
              | Trace.Record.Divide -> alloc_div t.cycle
            in
            if verdict < 0 then charge st_fu_busy_stalls Stall_fu_busy;
            verdict
          end
      | Trace.Record.Branch _ ->
          if not (sources_ready entry) then verdict_not_ready
          else begin
            let verdict = alloc_alu () in
            if verdict < 0 then charge st_fu_busy_stalls Stall_fu_busy;
            verdict
          end
      | Trace.Record.Memory { is_load = false; _ } ->
          if not (sources_ready entry) then verdict_not_ready
          else if alloc_alu () >= 0 then 1
          else begin
            charge st_fu_busy_stalls Stall_fu_busy;
            verdict_no_unit
          end
      | Trace.Record.Memory { is_load = true; address } -> (
          match entry.load_readiness with
          | Entry.Load_not_checked | Entry.Load_blocked -> verdict_not_ready
          | Entry.Load_forward ->
              if alloc_alu () >= 0 then begin
                entry.forwarded <- true;
                1
              end
              else begin
                charge st_fu_busy_stalls Stall_fu_busy;
                verdict_no_unit
              end
          | Entry.Load_needs_port ->
              if reads_used >= read_ports then begin
                charge st_read_port_stalls Stall_read_port;
                verdict_no_unit
              end
              else if alloc_alu () >= 0 then begin
                let access = dcache_access address false in
                1 + access
              end
              else begin
                charge st_fu_busy_stalls Stall_fu_busy;
                verdict_no_unit
              end)
    in
    (* A successful issue consumed a read port exactly when the load
       had classified as needing one; [try_issue] never changes the
       classification, so the caller can read it afterwards. *)
    let consumed_read_port (entry : Entry.t) verdict =
      verdict >= 0
      &&
      match entry.load_readiness with
      | Entry.Load_needs_port -> true
      | Entry.Load_not_checked | Entry.Load_blocked | Entry.Load_forward ->
          false
    in
    let issue_entry (entry : Entry.t) ~latency =
      entry.Entry.state <- Entry.Issued;
      entry.Entry.complete_at <- t.cycle + latency;
      if event then
        eq_push completion ~at:entry.Entry.complete_at
          ~id:entry.Entry.id entry;
      if observed t then notify t (Ev_issue entry);
      Stdlib.incr st_issued
    in
    (* Event issue. The Optimized first-slot pass returns the issued
       entry's id (or -1): non-loads never consume read ports, so
       [reads_used] is still 0 when the main walk starts. *)
    let rec first_slot_event i =
      if i >= t.candidate_count then -1
      else begin
        let entry = t.candidates.(i) in
        if entry_is_load entry then first_slot_event (i + 1)
        else begin
          let verdict = try_issue ~reads_used:0 entry in
          if verdict >= 0 then begin
            issue_entry entry ~latency:verdict;
            entry.id
          end
          else first_slot_event (i + 1)
        end
      end
    in
    let rec issue_event_loop i slots_used reads_used first_id =
      if i >= t.candidate_count then slots_used
      else begin
        let entry = t.candidates.(i) in
        if entry.id = first_id then
          issue_event_loop (i + 1) slots_used reads_used first_id
        else if slots_used >= width then begin
          (* Past the width cutoff the scan stops visiting entries, so
             charge no stalls — just keep them ready for next cycle. *)
          push_ready entry;
          issue_event_loop (i + 1) slots_used reads_used first_id
        end
        else begin
          let verdict = try_issue ~reads_used entry in
          if verdict >= 0 then begin
            issue_entry entry ~latency:verdict;
            issue_event_loop (i + 1) (slots_used + 1)
              (if consumed_read_port entry verdict then reads_used + 1
               else reads_used)
              first_id
          end
          else begin
            push_ready entry;
            issue_event_loop (i + 1) slots_used reads_used first_id
          end
        end
      end
    in
    let rec drain_ready () =
      if not (eq_is_empty ready) then begin
        let entry : Entry.t = eq_top ready in
        eq_drop ready;
        entry.in_ready <- false;
        if (not entry.squashed) && entry_is_dispatched entry then
          push_candidate t entry;
        drain_ready ()
      end
    in
    let issue_phase_event () =
      fu.Fu.alu_used <- 0;
      fu.Fu.mult_used <- 0;
      t.candidate_count <- 0;
      drain_ready ();
      let first_id = if optimized then first_slot_event 0 else -1 in
      let slots = if first_id >= 0 then 1 else 0 in
      let slots = issue_event_loop 0 slots 0 first_id in
      observe_width issue_widths slots
    in
    (* Scan issue: the first-slot pass leaves the winner Issued, so the
       main walk's dispatched filter skips it without id tracking. *)
    let rec first_slot_scan n i =
      if i >= n then 0
      else begin
        let entry : Entry.t = ring_get rob_ring i in
        if entry_is_dispatched entry && not (entry_is_load entry) then begin
          let verdict = try_issue ~reads_used:0 entry in
          if verdict >= 0 then begin
            issue_entry entry ~latency:verdict;
            1
          end
          else first_slot_scan n (i + 1)
        end
        else first_slot_scan n (i + 1)
      end
    in
    let rec issue_scan_loop n i slots_used reads_used =
      if i >= n || slots_used >= width then slots_used
      else begin
        let entry : Entry.t = ring_get rob_ring i in
        if entry_is_dispatched entry then begin
          let verdict = try_issue ~reads_used entry in
          if verdict >= 0 then begin
            issue_entry entry ~latency:verdict;
            issue_scan_loop n (i + 1) (slots_used + 1)
              (if consumed_read_port entry verdict then reads_used + 1
               else reads_used)
          end
          else issue_scan_loop n (i + 1) slots_used reads_used
        end
        else issue_scan_loop n (i + 1) slots_used reads_used
      end
    in
    let issue_phase_scan () =
      fu.Fu.alu_used <- 0;
      fu.Fu.mult_used <- 0;
      let n = rob_ring.Ring.length in
      let first = if optimized then first_slot_scan n 0 else 0 in
      let slots = issue_scan_loop n 0 first 0 in
      observe_width issue_widths slots
    in
    (* ---- dispatch / decouple ---- *)
    let rec dispatch_loop count =
      if count >= width then ()
      else if decouple.Ring.length = 0 then
        charge st_ifq_empty_stalls Stall_ifq_empty
      else begin
        let fetched = ring_front decouple in
        if rob_ring.Ring.length = rob_ring.Ring.capacity then
          charge st_rob_full_stalls Stall_rob_full
        else if record_is_memory fetched.record && Lsq.is_full lsq then
          charge st_lsq_full_stalls Stall_lsq_full
        else begin
          ring_drop decouple;
          (* [Rob.dispatch] unfolded over the exposed window, with
             [Entry.make]'s literal allocated in place. *)
          let entry =
            { Entry.id = rob.Rob.sequence;
              record = fetched.record;
              src1_producer = no_producer;
              src2_producer = no_producer;
              state = Entry.Dispatched;
              complete_at = max_int;
              completed_cycle = max_int;
              load_readiness = Entry.Load_not_checked;
              forwarded = false;
              squash_on_commit = false;
              ras_repair = None;
              dependents = [];
              in_ready = false;
              squashed = false }
          in
          rob.Rob.sequence <- rob.Rob.sequence + 1;
          ring_push rob_ring entry;
          entry.squash_on_commit <- fetched.squash_at_commit;
          entry.ras_repair <- fetched.ras_repair;
          entry.src1_producer <- producer_of fetched.record.src1;
          entry.src2_producer <- producer_of fetched.record.src2;
          let dest = fetched.record.dest in
          if dest > 0 && dest < register_count then
            producers.(dest) <- entry.id;
          if record_is_memory fetched.record then Lsq.dispatch lsq entry;
          if event then register_dispatched entry;
          if observed t then notify t (Ev_dispatch entry);
          Stdlib.incr st_dispatched;
          dispatch_loop (count + 1)
        end
      end
    in
    let dispatch_phase () = dispatch_loop 0 in
    let rec decouple_loop moved =
      if
        moved < width
        && ifq.Ring.length <> 0
        && decouple.Ring.length <> decouple.Ring.capacity
      then begin
        let moved_record = ring_front ifq in
        ring_drop ifq;
        ring_push decouple moved_record;
        decouple_loop (moved + 1)
      end
    in
    let decouple_phase () = decouple_loop 0 in
    (* ---- fetch ---- *)
    (* [fetch_phase] with the loop state in parameters; the stall-burn
       branch and [fetch_control] are shared with the generic engine
       (both already read hoisted constants). *)
    let rec fetch_loop count =
      if count < width && ifq.Ring.length <> ifq.Ring.capacity then begin
        if source_has t.cursor then begin
          let record = source_get t.cursor in
          match t.fetch_mode with
          | Awaiting_resolution -> ()
          | Wrong_path when not record.wrong_path ->
              t.fetch_mode <- Awaiting_resolution
          | Normal when record.wrong_path ->
              t.cursor <- t.cursor + 1;
              Stdlib.incr st_discarded_wrong_path;
              fetch_loop count
          | Normal | Wrong_path ->
              let byte_addr = Resim_isa.Instruction.byte_address record.pc in
              let block = byte_addr / block_bytes in
              let stalled_on_icache =
                if block = t.last_fetch_block then false
                else begin
                  let latency = icache_access byte_addr false in
                  t.last_fetch_block <- block;
                  let extra = latency - icache_hit_latency in
                  if extra > 0 then begin
                    t.fetch_stall <- extra;
                    t.fetch_stall_source <- Recover_icache;
                    st_icache_stall_cycles := !st_icache_stall_cycles + extra;
                    true
                  end
                  else false
                end
              in
              if not stalled_on_icache then begin
                t.cursor <- t.cursor + 1;
                Stdlib.incr st_fetched;
                if record.wrong_path then Stdlib.incr st_fetched_wrong_path;
                let fetched, taken =
                  match record.payload with
                  | Trace.Record.Branch { kind; taken; target } ->
                      fetch_control t record ~kind ~taken ~target
                  | Trace.Record.Memory _ | Trace.Record.Other _ ->
                      ( { record;
                          squash_at_commit = false;
                          ras_repair = None },
                        false )
                in
                ring_push ifq fetched;
                if observed t then notify t (Ev_fetch record);
                (* Fetch until a control-flow bubble (§III). *)
                if not taken then fetch_loop (count + 1)
              end
        end
      end
    in
    let fetch_phase () =
      if not t.fetch_enabled then ()
      else if t.fetch_stall > 0 then burn_fetch_stall t
      else begin
        if source_limit < 0 then Source.release_below source t.cursor;
        fetch_loop 0
      end
    in
    (* ---- the cycle ---- *)
    let account () =
      Stats.sample_occupancy stats ~ifq:ifq.Ring.length
        ~rob:rob_ring.Ring.length ~lsq:(Lsq.length lsq);
      t.cycle <- t.cycle + 1;
      Stdlib.incr st_major_cycles
    in
    let finished_here () =
      (not (source_has t.cursor))
      && ifq.Ring.length = 0
      && decouple.Ring.length = 0
      && rob_ring.Ring.length = 0
    in
    let step_event () =
      if not (finished_here ()) then begin
        probe t Ph_commit;
        commit_phase ();
        probe t Ph_writeback;
        writeback_phase_event ();
        probe t Ph_issue;
        issue_phase_event ();
        probe t Ph_dispatch;
        dispatch_phase ();
        probe t Ph_decouple;
        decouple_phase ();
        probe t Ph_fetch;
        fetch_phase ();
        probe t Ph_account;
        account ()
      end
    in
    let step_scan () =
      if not (finished_here ()) then begin
        probe t Ph_commit;
        commit_phase ();
        probe t Ph_writeback;
        writeback_phase_scan ();
        Lsq.refresh lsq;
        probe t Ph_issue;
        issue_phase_scan ();
        probe t Ph_dispatch;
        dispatch_phase ();
        probe t Ph_decouple;
        decouple_phase ();
        probe t Ph_fetch;
        fetch_phase ();
        probe t Ph_account;
        account ()
      end
    in
    if event then fun (_ : t) -> step_event () else fun (_ : t) -> step_scan ()

  let install t =
    if not (matches t.config) then
      invalid_arg
        (Printf.sprintf
           "Engine.Staged.install: configuration does not match variant %s"
           name);
    set_stepper t ~name (make_run t)
end
