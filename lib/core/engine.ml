module Trace = Resim_trace
module Bpred = Resim_bpred
module Cache = Resim_cache.Cache
module Hierarchy = Resim_cache.Hierarchy

(* Structured no-progress report: every watchdog or budget trip carries
   the engine position, so the failure is diagnosable without a
   debugger. [stuck_for] is 0 when a cycle budget (not the watchdog)
   fired. *)
type deadlock = {
  reason : string;
  at_cycle : int64;
  at_cursor : int;
  rob_occupancy : int;
  fetch_mode : string;
  stuck_for : int;
}

exception Deadlock of deadlock

let pp_deadlock ppf d =
  Format.fprintf ppf
    "%s (cycle %Ld, cursor %d, rob %d, fetch mode %s, stuck %d cycles)"
    d.reason d.at_cycle d.at_cursor d.rob_occupancy d.fetch_mode d.stuck_for

(* Monomorphic int max: Stdlib.max is a polymorphic caml_compare call,
   banned on hot paths by lint rule RSM-L002. *)
let[@inline] imax (a : int) b = if a >= b then a else b

(* Why the pipeline lost a slot or a cycle — the stall-cause taxonomy
   of the observability layer (DESIGN.md §11). Events carrying these are
   emitted at exactly the sites that bump the matching Stats counters,
   all shared between the Scan and Event schedulers (or proven
   visit-identical by the differential suite), so stall streams are
   bit-identical across schedulers. *)
type stall_reason =
  | Stall_ifq_empty        (* dispatch starved: nothing decoupled *)
  | Stall_rob_full
  | Stall_lsq_full
  | Stall_fu_busy          (* ready instruction, no free unit *)
  | Stall_read_port
  | Stall_write_port
  | Stall_icache           (* fetch waiting out an icache miss *)
  | Stall_misfetch_recovery
  | Stall_mispredict_recovery

let all_stall_reasons =
  [ Stall_ifq_empty; Stall_rob_full; Stall_lsq_full; Stall_fu_busy;
    Stall_read_port; Stall_write_port; Stall_icache;
    Stall_misfetch_recovery; Stall_mispredict_recovery ]

let stall_reason_name = function
  | Stall_ifq_empty -> "ifq-empty"
  | Stall_rob_full -> "rob-full"
  | Stall_lsq_full -> "lsq-full"
  | Stall_fu_busy -> "fu-busy"
  | Stall_read_port -> "rd-port"
  | Stall_write_port -> "wr-port"
  | Stall_icache -> "icache"
  | Stall_misfetch_recovery -> "misfetch"
  | Stall_mispredict_recovery -> "mispredict"

(* Observable pipeline events, for tracing tools (Pipeline_trace and
   the Obs sinks). *)
type event =
  | Ev_fetch of Trace.Record.t
  | Ev_dispatch of Entry.t
  | Ev_issue of Entry.t
  | Ev_complete of Entry.t
  | Ev_commit of Entry.t
  | Ev_squash of Entry.t
  | Ev_flush_frontend
  | Ev_stall of stall_reason

(* Host-profiling hook: which engine phase is about to run. [Ph_account]
   closes the cycle (occupancy sampling and counters). The probe fires
   once per phase per cycle only when installed; the idle path is a
   single physical-equality test. *)
type phase =
  | Ph_commit
  | Ph_writeback
  | Ph_issue
  | Ph_dispatch
  | Ph_decouple
  | Ph_fetch
  | Ph_account

let phase_name = function
  | Ph_commit -> "commit"
  | Ph_writeback -> "writeback"
  | Ph_issue -> "issue"
  | Ph_dispatch -> "dispatch"
  | Ph_decouple -> "decouple"
  | Ph_fetch -> "fetch"
  | Ph_account -> "account"

let all_phases =
  [ Ph_commit; Ph_writeback; Ph_issue; Ph_dispatch; Ph_decouple; Ph_fetch;
    Ph_account ]

(* Which event set the pending fetch stall, attributing each burned
   penalty cycle to its cause. Icache extra cycles are charged to
   [icache_stall_cycles] at grant time; the other two accumulate into
   the recovery counters as the stall burns down. *)
type recovery_source = Recover_icache | Recover_misfetch | Recover_mispredict

type fetch_mode =
  | Normal
  | Wrong_path           (* consuming a tagged block *)
  | Awaiting_resolution  (* tagged block over; hold until the squash *)

(* A fetched record on its way to dispatch, carrying the fetch-time
   decisions that belong to the eventual ROB entry. *)
type fetched = {
  record : Trace.Record.t;
  squash_at_commit : bool;
  ras_repair : Bpred.Ras.t option;
}

type t = {
  config : Config.t;
  source : Source.t;
  mutable cursor : int;
  ifq : fetched Ring.t;
  decouple : fetched Ring.t;
  rob : Rob.t;
  lsq : Lsq.t;
  rename : Rename.t;
  fu : Fu.t;
  (* Event-scheduler state (unused in Scan mode). [completion] holds
     issued entries keyed by (complete_at, id); [due] holds completed
     executions awaiting a broadcast slot, keyed by (0, id) so the
     paper's oldest-first broadcast order is preserved when more than N
     results are due; [ready] is the issue pool, also in (0, id) order.
     Squashed entries are dropped lazily when popped. *)
  completion : Entry.t Event_queue.t;
  due : Entry.t Event_queue.t;
  ready : Entry.t Event_queue.t;
  (* Scratch buffer the event issue phase drains the ready pool into —
     reused every cycle so issue allocates no per-cycle list. Stale
     references past [candidate_count] are bounded by the ROB capacity
     and overwritten on reuse, the Ring storage policy. *)
  mutable candidates : Entry.t array;
  mutable candidate_count : int;
  predictor : Bpred.Predictor.t;
  icache : Hierarchy.t;
  dcache : Hierarchy.t;
  l2cache : Cache.t option;
  stats : Stats.t;
  mutable cycle : int64;
  mutable fetch_stall : int;
  mutable fetch_stall_source : recovery_source;
  mutable fetch_mode : fetch_mode;
  mutable last_fetch_block : int;
  (* Cleared while draining the pipeline at a sampling-interval
     boundary: every phase runs normally but fetch admits nothing, so
     the window empties in bounded time. *)
  mutable fetch_enabled : bool;
  mutable observer : (event -> unit) option;
  mutable phase_probe : (phase -> unit) option;
}

let create_from_source ?(config = Config.reference) source =
  let config =
    match Config.validate config with
    | Ok config -> config
    | Error message -> invalid_arg ("Engine.create: " ^ message)
  in
  let shared_l2 =
    Option.map
      (fun l2_config -> Cache.create ~timing:config.l2_timing l2_config)
      config.l2cache
  in
  { config;
    source;
    cursor = 0;
    ifq = Ring.create ~capacity:config.ifq_entries;
    decouple = Ring.create ~capacity:config.decouple_entries;
    rob = Rob.create ~entries:config.rob_entries;
    lsq = Lsq.create ~entries:config.lsq_entries;
    rename = Rename.create ~registers:Resim_isa.Reg.count;
    fu = Fu.create config;
    completion = Event_queue.create ();
    due = Event_queue.create ();
    ready = Event_queue.create ();
    candidates = [||];
    candidate_count = 0;
    predictor = Bpred.Predictor.create config.predictor;
    icache =
      Hierarchy.create ~timing:config.cache_timing config.icache ~l2:shared_l2;
    dcache =
      Hierarchy.create ~timing:config.cache_timing config.dcache ~l2:shared_l2;
    l2cache = shared_l2;
    stats = Stats.create ();
    cycle = 0L;
    fetch_stall = 0;
    fetch_stall_source = Recover_mispredict;
    fetch_mode = Normal;
    last_fetch_block = -1;
    fetch_enabled = true;
    observer = None;
    phase_probe = None }

let create ?config trace = create_from_source ?config (Source.of_array trace)

let config t = t.config
let stats t = t.stats
let icache t = Hierarchy.l1 t.icache
let dcache t = Hierarchy.l1 t.dcache
let l2cache t = t.l2cache
let predictor t = t.predictor
let cycle t = t.cycle

let minor_cycles t =
  Int64.mul t.cycle (Int64.of_int (Config.minor_cycle_latency t.config))

let set_observer t observer = t.observer <- Some observer

let notify t event =
  match t.observer with
  | Some observer -> observer event
  | None -> ()

(* Hot paths guard event construction on this test: the [Ev_*]
   constructor argument would otherwise box on every instruction even
   with no observer attached. *)
let[@inline] observed t = t.observer != None

(* Charge a stall: bump the matching counter and, when an observer is
   attached, emit the taxonomy event. The unobserved path constructs
   nothing. *)
let[@inline] charge_stall t counter reason =
  Stats.incr t.stats counter;
  if observed t then notify t (Ev_stall reason)

let set_phase_probe t probe = t.phase_probe <- Some probe
let clear_phase_probe t = t.phase_probe <- None

let[@inline] probe t ph =
  match t.phase_probe with Some f -> f ph | None -> ()

let record_at t index = Source.at t.source index

let pipeline_empty t =
  Ring.is_empty t.ifq && Ring.is_empty t.decouple && Rob.is_empty t.rob

let finished t =
  (not (Source.has t.source t.cursor)) && pipeline_empty t

(* ------------------------------------------------------------------ *)
(* Event scheduler: touch only state that can change this cycle.
   Correctness invariants (proved against the Scan oracle by the
   differential suite):
   - broadcast selection is the N oldest entries whose execution is due,
     exactly as the oldest-first ROB scan picks them;
   - the ready pool holds exactly the entries the scan's [try_issue]
     would act on (issue, allocate a unit, or charge a port stall), in
     the same oldest-first order;
   - a load's readiness is reclassified on every change of its
     classification inputs (its own sources, an older store's
     address/data, a store's retirement), so its value at issue time
     equals the per-cycle Lsq_refresh result. *)

let event_mode t =
  match t.config.Config.scheduler with
  | Config.Event -> true
  | Config.Scan -> false

let push_ready t (entry : Entry.t) =
  if not entry.in_ready then begin
    entry.in_ready <- true;
    Event_queue.push t.ready ~at:0 ~id:entry.id entry
  end

let load_is_ready (entry : Entry.t) =
  match entry.load_readiness with
  | Entry.Load_forward | Entry.Load_needs_port -> true
  | Entry.Load_not_checked | Entry.Load_blocked -> false

(* Pool membership for loads is monotone: once a load classifies as
   Forward or Needs_port it stays issuable (the value may still flip
   between those two, e.g. when the forwarding store retires first). *)
let pool_load t (load : Entry.t) = if load_is_ready load then push_ready t load

let reclassify_load t (load : Entry.t) =
  Lsq.refresh_entry t.lsq load;
  pool_load t load

(* An older store's address or data just resolved, or a store retired:
   only loads younger than it can change classification. *)
let store_resolved t (store : Entry.t) =
  Lsq.refresh_younger t.lsq ~than_id:store.Entry.id
    ~reclassified:(pool_load t)

let store_retired t =
  Lsq.refresh_younger t.lsq ~than_id:(-1) ~reclassified:(pool_load t)

(* At dispatch, hang the new entry off its producers' wakeup lists (a
   producer with a live rename mapping is necessarily still in the
   window) and seed the ready pool / LSQ classification. *)
let register_dispatched t (entry : Entry.t) =
  let register id =
    match Rob.entry_by_id t.rob id with
    | Some producer ->
        producer.Entry.dependents <- entry :: producer.Entry.dependents
    | None ->
        (* Corrupt dependency state can only come from a malformed trace
           (register fields outside the renameable range decode to wild
           producers); surface it as a structured trace fault. *)
        raise
          (Trace.Fault.Trace_fault
             { code = "RSM-T008";
               offset = t.cursor;
               context =
                 Printf.sprintf
                   "entry #%d depends on #%d which is not in flight \
                    (cycle %Ld)"
                   entry.id id t.cycle })
  in
  let src1 = entry.src1_producer in
  let src2 = entry.src2_producer in
  if src1 >= 0 then register src1;
  if src2 >= 0 && src2 <> src1 then register src2;
  if Entry.is_load entry then begin
    if Entry.sources_ready entry then reclassify_load t entry
  end
  else if Entry.sources_ready entry then push_ready t entry

(* ------------------------------------------------------------------ *)
(* Squash: branch resolution at commit flushes everything younger.     *)

let squash t (branch : Entry.t) =
  if event_mode t then
    Rob.iter
      (fun (entry : Entry.t) ->
        if entry.id > branch.id then entry.squashed <- true)
      t.rob;
  if observed t then begin
    Rob.iter
      (fun (entry : Entry.t) ->
        if entry.id > branch.id then notify t (Ev_squash entry))
      t.rob;
    notify t Ev_flush_frontend
  end;
  ignore (Rob.squash_younger t.rob ~than_id:branch.id);
  ignore (Lsq.squash_younger t.lsq ~than_id:branch.id);
  Ring.clear t.ifq;
  Ring.clear t.decouple;
  Rename.reset t.rename;
  Fu.flush t.fu;
  (match branch.ras_repair with
  | Some saved -> Bpred.Predictor.ras_restore t.predictor saved
  | None -> ());
  (* Tagged records never fetched are discarded at the resolution
     point. *)
  let rec skip_tagged () =
    match record_at t t.cursor with
    | Some record when record.Trace.Record.wrong_path ->
        t.cursor <- t.cursor + 1;
        Stats.incr t.stats Stats.discarded_wrong_path;
        skip_tagged ()
    | Some _ | None -> ()
  in
  skip_tagged ();
  t.fetch_mode <- Normal;
  (* imax semantics, tracking which cause owns the pending stall: a new
     penalty takes over attribution only when strictly larger. *)
  if t.config.misspeculation_penalty > t.fetch_stall then begin
    t.fetch_stall <- t.config.misspeculation_penalty;
    t.fetch_stall_source <- Recover_mispredict
  end;
  t.last_fetch_block <- -1

(* ------------------------------------------------------------------ *)
(* Commit: in-order, up to N per cycle; stores need a write port; the
   completed result must be from an earlier cycle (the paper's flag).   *)

let commit_phase t =
  let committed = ref 0 in
  let blocked = ref false in
  let write_ports_used = ref 0 in
  let now = Int64.to_int t.cycle in
  while (not !blocked) && !committed < t.config.width do
    if Rob.is_empty t.rob then blocked := true
    else begin
      let entry = Rob.first t.rob in
        if (not (Entry.is_completed entry)) || entry.completed_cycle >= now
        then blocked := true
        else if Entry.is_wrong_path entry then
          (* The tag-bit protocol guarantees a squash resolves before
             any tagged record can retire; reaching here means the trace
             violated the protocol (RSM-T005 family). *)
          raise
            (Trace.Fault.Trace_fault
               { code = "RSM-T005";
                 offset = t.cursor;
                 context =
                   Printf.sprintf
                     "wrong-path instruction pc=%d reached commit at \
                      cycle %Ld"
                     entry.record.Trace.Record.pc t.cycle })
        else begin
          let entry_commits =
            if Entry.is_store entry then begin
              if !write_ports_used >= t.config.mem_write_ports then begin
                charge_stall t Stats.write_port_stalls Stall_write_port;
                blocked := true;
                false
              end
              else begin
                incr write_ports_used;
                (match entry.record.payload with
                | Trace.Record.Memory { address; _ } ->
                    ignore (Hierarchy.access t.dcache ~addr:address ~write:true)
                | Trace.Record.Branch _ | Trace.Record.Other _ -> ());
                true
              end
            end
            else true
          in
          if entry_commits then begin
            Rob.drop_head t.rob;
            if Trace.Record.is_memory entry.record then begin
              Lsq.release_head t.lsq entry;
              (* A retired store stops shadowing younger loads. *)
              if event_mode t && Entry.is_store entry then store_retired t
            end;
            if observed t then notify t (Ev_commit entry);
            Stats.incr t.stats Stats.committed;
            incr committed;
            (match entry.record.payload with
            | Trace.Record.Branch { kind; taken; target } ->
                Stats.incr t.stats Stats.committed_branches;
                if Resim_isa.Opcode.is_cond_kind kind then
                  Stats.incr t.stats Stats.committed_cond_branches;
                Bpred.Predictor.update t.predictor ~pc:entry.record.pc ~kind
                  ~taken ~target;
                Bpred.Predictor.record_resolution t.predictor
                  ~correct:(not entry.squash_on_commit);
                if entry.squash_on_commit then begin
                  Stats.incr t.stats Stats.mispredictions;
                  squash t entry;
                  blocked := true
                end
            | Trace.Record.Memory { is_load; _ } ->
                if is_load then begin
                  Stats.incr t.stats Stats.committed_loads;
                  if entry.forwarded then
                    Stats.incr t.stats Stats.forwarded_loads
                end
                else Stats.incr t.stats Stats.committed_stores
            | Trace.Record.Other { op_class = Trace.Record.Mult }
            | Trace.Record.Other { op_class = Trace.Record.Divide } ->
                Stats.incr t.stats Stats.committed_mult_div
            | Trace.Record.Other { op_class = Trace.Record.Alu } -> ())
          end
        end
    end
  done;
  Stats.observe_commit_width t.stats !committed

(* ------------------------------------------------------------------ *)
(* Writeback: the oldest completed executions broadcast and wake their
   dependents; same-cycle issue of woken instructions is legal.         *)

let wakeup_scan t (producer : Entry.t) =
  Rob.iter
    (fun (dependent : Entry.t) ->
      if dependent.src1_producer = producer.id then
        dependent.src1_producer <- Entry.no_producer;
      if dependent.src2_producer = producer.id then
        dependent.src2_producer <- Entry.no_producer)
    t.rob;
  let dest = producer.record.Trace.Record.dest in
  if dest > 0 then Rename.clear t.rename ~reg:dest ~id:producer.id

(* Event wakeup: walk only the registered consumers. Clearing a source
   of a waiting store means its address (src1) or data (src2) just
   resolved, which can reclassify younger loads. *)
let wakeup_event t (producer : Entry.t) =
  let dependents = producer.Entry.dependents in
  producer.Entry.dependents <- [];
  (* The cons list is youngest-first; processing order among a
     producer's dependents is immaterial (the ready pool orders by id
     and [in_ready] dedups; a load woken before a sibling store
     resolves is reclassified again by that store's [store_resolved]),
     so iterate directly instead of allocating a [List.rev] copy. *)
  List.iter
    (fun (dependent : Entry.t) ->
      if not dependent.squashed then begin
        let cleared = ref false in
        if dependent.src1_producer = producer.id then begin
          dependent.src1_producer <- Entry.no_producer;
          cleared := true
        end;
        if dependent.src2_producer = producer.id then begin
          dependent.src2_producer <- Entry.no_producer;
          cleared := true
        end;
        if !cleared && Entry.is_dispatched dependent then
          if Entry.is_load dependent then begin
            if Entry.sources_ready dependent then reclassify_load t dependent
          end
          else begin
            if Entry.sources_ready dependent then push_ready t dependent;
            if Entry.is_store dependent then store_resolved t dependent
          end
      end)
    dependents;
  let dest = producer.record.Trace.Record.dest in
  if dest > 0 then Rename.clear t.rename ~reg:dest ~id:producer.id

let writeback_phase_scan t =
  let broadcast = ref 0 in
  let now = Int64.to_int t.cycle in
  (* Oldest-first scan; at most N broadcasts per major cycle. *)
  (try
     Rob.iter
       (fun (entry : Entry.t) ->
         if !broadcast >= t.config.width then raise Exit;
         if Entry.is_issued entry && entry.complete_at <= now
         then begin
           entry.state <- Entry.Completed;
           entry.completed_cycle <- now;
           if observed t then notify t (Ev_complete entry);
           wakeup_scan t entry;
           incr broadcast
         end)
       t.rob
   with Exit -> ())

let writeback_phase_event t =
  (* Move every execution that is due this cycle from the completion
     heap to the broadcast queue, then broadcast the N oldest. Results
     beyond the bandwidth stay queued — exactly the entries the scan
     would find still Issued-and-due next cycle. *)
  let now = Int64.to_int t.cycle in
  while Event_queue.min_at t.completion <= now do
    let entry : Entry.t = Event_queue.top t.completion in
    Event_queue.drop t.completion;
    if (not entry.squashed) && Entry.is_issued entry then
      Event_queue.push t.due ~at:0 ~id:entry.id entry
  done;
  let broadcast = ref 0 in
  while !broadcast < t.config.width && not (Event_queue.is_empty t.due) do
    let entry : Entry.t = Event_queue.top t.due in
    Event_queue.drop t.due;
    if (not entry.squashed) && Entry.is_issued entry then begin
      entry.state <- Entry.Completed;
      entry.completed_cycle <- now;
      if observed t then notify t (Ev_complete entry);
      wakeup_event t entry;
      incr broadcast
    end
  done

(* ------------------------------------------------------------------ *)
(* Issue: schedule ready instructions onto units, oldest first.         *)

(* Issue verdicts are bare ints so the once-per-candidate-per-cycle hot
   path allocates nothing: a non-negative verdict is the operation
   latency, [verdict_no_unit] (= [Fu.no_unit]) a structural stall and
   [verdict_not_ready] unresolved sources. *)
let verdict_no_unit = Fu.no_unit
let verdict_not_ready = -2

let try_issue t ~reads_used (entry : Entry.t) =
  let now = Int64.to_int t.cycle in
  match entry.record.payload with
  | Trace.Record.Other { op_class } ->
      if not (Entry.sources_ready entry) then verdict_not_ready
      else begin
        let request =
          match op_class with
          | Trace.Record.Alu -> Fu.Alu
          | Trace.Record.Mult -> Fu.Mult
          | Trace.Record.Divide -> Fu.Div
        in
        let verdict = Fu.try_allocate t.fu request ~now in
        if verdict < 0 then
          charge_stall t Stats.fu_busy_stalls Stall_fu_busy;
        verdict
      end
  | Trace.Record.Branch _ ->
      if not (Entry.sources_ready entry) then verdict_not_ready
      else begin
        let verdict = Fu.try_allocate t.fu Fu.Alu ~now in
        if verdict < 0 then
          charge_stall t Stats.fu_busy_stalls Stall_fu_busy;
        verdict
      end
  | Trace.Record.Memory { is_load = false; _ } ->
      (* Store: address generation on an ALU; memory write at commit. *)
      if not (Entry.sources_ready entry) then verdict_not_ready
      else if Fu.try_allocate t.fu Fu.Alu ~now >= 0 then 1
      else begin
        charge_stall t Stats.fu_busy_stalls Stall_fu_busy;
        verdict_no_unit
      end
  | Trace.Record.Memory { is_load = true; address } -> (
      match entry.load_readiness with
      | Entry.Load_not_checked | Entry.Load_blocked -> verdict_not_ready
      | Entry.Load_forward ->
          if Fu.try_allocate t.fu Fu.Alu ~now >= 0 then begin
            entry.forwarded <- true;
            1
          end
          else begin
            charge_stall t Stats.fu_busy_stalls Stall_fu_busy;
            verdict_no_unit
          end
      | Entry.Load_needs_port ->
          if !reads_used >= t.config.mem_read_ports then begin
            charge_stall t Stats.read_port_stalls Stall_read_port;
            verdict_no_unit
          end
          else if Fu.try_allocate t.fu Fu.Alu ~now >= 0 then begin
            incr reads_used;
            let access =
              Hierarchy.access t.dcache ~addr:address ~write:false
            in
            1 + access
          end
          else begin
            charge_stall t Stats.fu_busy_stalls Stall_fu_busy;
            verdict_no_unit
          end)

let issue_entry t entry ~latency =
  entry.Entry.state <- Entry.Issued;
  entry.Entry.complete_at <- Int64.to_int t.cycle + latency;
  if event_mode t then
    Event_queue.push t.completion ~at:entry.Entry.complete_at
      ~id:entry.Entry.id entry;
  if observed t then notify t (Ev_issue entry);
  Stats.incr t.stats Stats.issued

let issue_phase_scan t =
  Fu.begin_cycle t.fu;
  let slots_used = ref 0 in
  let reads_used = ref 0 in
  let width = t.config.width in
  (* The optimized organization bars loads from the first issue slot
     (§IV.B): give slot 1 to the oldest ready non-load, if any. *)
  if Config.is_optimized t.config.organization then begin
    try
      Rob.iter
        (fun (entry : Entry.t) ->
          if Entry.is_dispatched entry && not (Entry.is_load entry)
          then begin
            let latency = try_issue t ~reads_used entry in
            if latency >= 0 then begin
              issue_entry t entry ~latency;
              incr slots_used;
              raise Exit
            end
          end)
        t.rob
    with Exit -> ()
  end;
  (try
     Rob.iter
       (fun (entry : Entry.t) ->
         if !slots_used >= width then raise Exit;
         if Entry.is_dispatched entry then begin
           let latency = try_issue t ~reads_used entry in
           if latency >= 0 then begin
             issue_entry t entry ~latency;
             incr slots_used
           end
         end)
       t.rob
   with Exit -> ());
  Stats.observe_issue_width t.stats !slots_used

let push_candidate t (entry : Entry.t) =
  let capacity = Array.length t.candidates in
  if t.candidate_count = capacity then begin
    let grown = Array.make (imax 16 (2 * capacity)) entry in
    Array.blit t.candidates 0 grown 0 capacity;
    t.candidates <- grown
  end;
  t.candidates.(t.candidate_count) <- entry;
  t.candidate_count <- t.candidate_count + 1

let issue_phase_event t =
  Fu.begin_cycle t.fu;
  let slots_used = ref 0 in
  let reads_used = ref 0 in
  let width = t.config.width in
  (* Drain the pool oldest-first into the reusable scratch buffer;
     entries that do not issue this cycle re-enter it. The pool holds
     exactly the source-ready entries, so walking it reproduces the
     scan's visit order over every entry whose [try_issue] could have an
     effect (including port-stall charges). *)
  t.candidate_count <- 0;
  while not (Event_queue.is_empty t.ready) do
    let entry : Entry.t = Event_queue.top t.ready in
    Event_queue.drop t.ready;
    entry.in_ready <- false;
    if (not entry.squashed) && Entry.is_dispatched entry then
      push_candidate t entry
  done;
  let first_slot = ref (-1) in
  (* Load-barred first slot of the Optimized organization. *)
  if Config.is_optimized t.config.organization then begin
    try
      for i = 0 to t.candidate_count - 1 do
        let entry = t.candidates.(i) in
        if not (Entry.is_load entry) then begin
          let latency = try_issue t ~reads_used entry in
          if latency >= 0 then begin
            issue_entry t entry ~latency;
            incr slots_used;
            first_slot := entry.id;
            raise Exit
          end
        end
      done
    with Exit -> ()
  end;
  for i = 0 to t.candidate_count - 1 do
    let entry = t.candidates.(i) in
    if entry.id <> !first_slot then begin
      if !slots_used >= width then
        (* Past the width cutoff the scan stops visiting entries, so
           charge no stalls — just keep them ready for next cycle. *)
        push_ready t entry
      else begin
        let latency = try_issue t ~reads_used entry in
        if latency >= 0 then begin
          issue_entry t entry ~latency;
          incr slots_used
        end
        else push_ready t entry
      end
    end
  done;
  Stats.observe_issue_width t.stats !slots_used

(* ------------------------------------------------------------------ *)
(* Dispatch: decouple buffer -> ROB (+ LSQ), with renaming.             *)

let dispatch_phase t =
  let count = ref 0 in
  let blocked = ref false in
  while (not !blocked) && !count < t.config.width do
    if Ring.is_empty t.decouple then begin
      (* Dispatch ends under-filled with nothing decoupled: front-end
         starvation, one charge per stalled cycle. *)
      charge_stall t Stats.ifq_empty_stalls Stall_ifq_empty;
      blocked := true
    end
    else begin
      let fetched = Ring.front t.decouple in
        if Rob.is_full t.rob then begin
          charge_stall t Stats.rob_full_stalls Stall_rob_full;
          blocked := true
        end
        else if
          Trace.Record.is_memory fetched.record && Lsq.is_full t.lsq
        then begin
          charge_stall t Stats.lsq_full_stalls Stall_lsq_full;
          blocked := true
        end
        else begin
          Ring.drop t.decouple;
          let entry = Rob.dispatch t.rob fetched.record in
          entry.squash_on_commit <- fetched.squash_at_commit;
          entry.ras_repair <- fetched.ras_repair;
          entry.src1_producer <-
            Rename.producer t.rename fetched.record.src1;
          entry.src2_producer <-
            Rename.producer t.rename fetched.record.src2;
          if fetched.record.dest > 0 then
            Rename.define t.rename ~reg:fetched.record.dest ~id:entry.id;
          if Trace.Record.is_memory fetched.record then
            Lsq.dispatch t.lsq entry;
          if event_mode t then register_dispatched t entry;
          if observed t then notify t (Ev_dispatch entry);
          Stats.incr t.stats Stats.dispatched;
          incr count
        end
    end
  done

(* Decouple: IFQ -> decouple buffer, up to N per cycle. *)
let decouple_phase t =
  let moved = ref 0 in
  while
    !moved < t.config.width
    && (not (Ring.is_empty t.ifq))
    && not (Ring.is_full t.decouple)
  do
    Ring.push t.decouple (Ring.take t.ifq);
    incr moved
  done

(* ------------------------------------------------------------------ *)
(* Fetch.                                                              *)

let icache_block_bytes t =
  match Cache.config (Hierarchy.l1 t.icache) with
  | Cache.Perfect -> 64
  | Cache.Set_associative { block_bytes; _ } -> block_bytes

(* Fetch-time handling of a control-flow record: consult the branch
   predictor unit (misfetch detection, RAS effects, statistics) and
   detect generator mispredictions from the trace structure. Returns
   the fetched-record annotations and whether the front end follows a
   taken target (ending the fetch group). *)
let fetch_control t (record : Trace.Record.t) ~kind ~taken ~target =
  let next_record = record_at t t.cursor in
  let next_is_tagged =
    (not record.wrong_path)
    && (match next_record with
       | Some next -> next.Trace.Record.wrong_path
       | None -> false)
  in
  let effective_taken =
    if next_is_tagged then
      match (kind : Resim_isa.Opcode.branch_kind) with
      | Cond -> not taken
      | Jump | Call | Ret | Indirect -> true
    else taken
  in
  let prediction =
    Bpred.Predictor.predict t.predictor ~pc:record.pc ~kind
      ~fallthrough:(record.pc + 1) ~actual_taken:taken ~actual_target:target
  in
  (* Misfetch: the front end follows a taken path but cannot supply the
     right target PC this cycle (§III). The needed target is the next
     record to fetch. *)
  let next_same_path =
    match next_record with
    | Some next ->
        next.Trace.Record.wrong_path = record.wrong_path || next_is_tagged
    | None -> false
  in
  (match next_record with
   | Some next when effective_taken && next_same_path ->
    let needed = next.Trace.Record.pc in
    let misfetch =
      match prediction.target with
      | Some supplied -> supplied <> needed
      | None -> true
    in
    if misfetch then begin
      Stats.incr t.stats Stats.misfetches;
      if t.config.misfetch_penalty > t.fetch_stall then begin
        t.fetch_stall <- t.config.misfetch_penalty;
        t.fetch_stall_source <- Recover_misfetch
      end
    end
   | Some _ | None -> ());
  let ras_repair =
    if next_is_tagged then Some (Bpred.Predictor.ras_snapshot t.predictor)
    else None
  in
  if next_is_tagged then t.fetch_mode <- Wrong_path;
  ({ record; squash_at_commit = next_is_tagged; ras_repair }, effective_taken)

let fetch_phase t =
  if not t.fetch_enabled then ()
  else if t.fetch_stall > 0 then begin
    t.fetch_stall <- t.fetch_stall - 1;
    Stats.incr t.stats Stats.fetch_penalty_cycles;
    (* Attribute the burned cycle. Icache misses are already charged to
       icache_stall_cycles in full at grant time; the recovery counters
       split the remaining penalty cycles per cause. *)
    (match t.fetch_stall_source with
    | Recover_icache -> ()
    | Recover_misfetch -> Stats.incr t.stats Stats.misfetch_recovery_cycles
    | Recover_mispredict ->
        Stats.incr t.stats Stats.mispredict_recovery_cycles);
    if observed t then
      notify t
        (Ev_stall
           (match t.fetch_stall_source with
           | Recover_icache -> Stall_icache
           | Recover_misfetch -> Stall_misfetch_recovery
           | Recover_mispredict -> Stall_mispredict_recovery))
  end
  else begin
    Source.release_below t.source t.cursor;
    let fetched_count = ref 0 in
    let stop = ref false in
    while
      (not !stop) && !fetched_count < t.config.width
      && not (Ring.is_full t.ifq)
    do
      if not (Source.has t.source t.cursor) then stop := true
      else begin
      let record = Source.get t.source t.cursor in
      (match t.fetch_mode with
      | Awaiting_resolution -> stop := true
      | Wrong_path when not record.wrong_path ->
          t.fetch_mode <- Awaiting_resolution;
          stop := true
      | Normal when record.wrong_path ->
          (* A tagged record with no pending misprediction (malformed or
             pre-truncated trace): discard it, as resolution would. *)
          t.cursor <- t.cursor + 1;
          Stats.incr t.stats Stats.discarded_wrong_path
      | Normal | Wrong_path ->
          (* Instruction cache, one access per new block. *)
          let byte_addr = Resim_isa.Instruction.byte_address record.pc in
          let block = byte_addr / icache_block_bytes t in
          let stalled_on_icache =
            if block = t.last_fetch_block then false
            else begin
              let latency =
                Hierarchy.access t.icache ~addr:byte_addr ~write:false
              in
              t.last_fetch_block <- block;
              let extra =
                latency - (Cache.timing (Hierarchy.l1 t.icache)).hit_latency
              in
              if extra > 0 then begin
                t.fetch_stall <- extra;
                t.fetch_stall_source <- Recover_icache;
                Stats.add t.stats Stats.icache_stall_cycles extra;
                true
              end
              else false
            end
          in
          if stalled_on_icache then stop := true
          else begin
            t.cursor <- t.cursor + 1;
            Stats.incr t.stats Stats.fetched;
            if record.wrong_path then
              Stats.incr t.stats Stats.fetched_wrong_path;
            let fetched, taken =
              match record.payload with
              | Trace.Record.Branch { kind; taken; target } ->
                  fetch_control t record ~kind ~taken ~target
              | Trace.Record.Memory _ | Trace.Record.Other _ ->
                  ( { record; squash_at_commit = false; ras_repair = None },
                    false )
            in
            Ring.push t.ifq fetched;
            if observed t then notify t (Ev_fetch record);
            incr fetched_count;
            (* Fetch until a control-flow bubble (§III). *)
            if taken then stop := true
          end)
      end
    done
  end

(* ------------------------------------------------------------------ *)

let step t =
  if not (finished t) then begin
    probe t Ph_commit;
    commit_phase t;
    (match t.config.scheduler with
    | Config.Scan ->
        probe t Ph_writeback;
        writeback_phase_scan t;
        Lsq.refresh t.lsq;
        probe t Ph_issue;
        issue_phase_scan t
    | Config.Event ->
        (* LSQ readiness is maintained incrementally by the commit,
           wakeup and dispatch hooks — no per-cycle refresh. *)
        probe t Ph_writeback;
        writeback_phase_event t;
        probe t Ph_issue;
        issue_phase_event t);
    probe t Ph_dispatch;
    dispatch_phase t;
    probe t Ph_decouple;
    decouple_phase t;
    probe t Ph_fetch;
    fetch_phase t;
    probe t Ph_account;
    Stats.sample_occupancy t.stats ~ifq:(Ring.length t.ifq)
      ~rob:(Rob.length t.rob) ~lsq:(Lsq.length t.lsq);
    t.cycle <- Int64.add t.cycle 1L;
    Stats.incr t.stats Stats.major_cycles
  end

let fetch_mode_name t =
  match t.fetch_mode with
  | Normal -> "normal"
  | Wrong_path -> "wrong-path"
  | Awaiting_resolution -> "awaiting"

(* ------------------------------------------------------------------ *)
(* Functional warm-up (sampled simulation, DESIGN.md §13): advance the
   trace cursor, cache hierarchy and predictor/BTB/RAS state without
   any detailed timing. No ROB/LSQ/FU/event-queue work happens and the
   cycle counter does not move — only the long-lived microarchitectural
   state a later detailed interval depends on is updated. *)

(* Drain: finish every in-flight instruction without admitting new
   ones, leaving the pipeline empty at the current cursor. All phases
   run normally (commits train the predictor, stores write the dcache,
   squashes resolve), so the microarchitectural state afterwards is
   exactly what a detailed run would carry — the cycles spent are
   charged to the engine statistics like any others. Bounded by the
   in-flight work, so the guard only trips on a genuine engine bug. *)
let drain_bound = 100_000

let drain t =
  t.fetch_enabled <- false;
  let guard = ref 0 in
  (match
     while not (pipeline_empty t) do
       step t;
       incr guard;
       if !guard > drain_bound then
         raise
           (Deadlock
              { reason = "no progress draining the pipeline";
                at_cycle = t.cycle;
                at_cursor = t.cursor;
                rob_occupancy = Rob.length t.rob;
                fetch_mode = fetch_mode_name t;
                stuck_for = !guard })
     done
   with
  | () -> t.fetch_enabled <- true
  | exception exn ->
      t.fetch_enabled <- true;
      raise exn);
  (* A squash during the drain may leave a pending recovery penalty;
     the functional gap that follows absorbs it by construction. *)
  t.fetch_stall <- 0;
  t.fetch_mode <- Normal

(* Process up to [max_instructions] correct-path records functionally:
   per new icache block one instruction-cache access, per branch a
   predict (exercising the BTB lookup and RAS push/pop exactly as fetch
   would) followed immediately by its commit-time training, per memory
   record one data-cache access. Wrong-path records are skipped — their
   resolution point is what the detailed engine squashes at, and no
   timing state exists here to recover. Returns the number of
   correct-path instructions consumed (short only when the trace
   ends). The pipeline must be empty ({!drain} first). *)
let functional_warmup t ~max_instructions =
  if not (pipeline_empty t) then
    invalid_arg "Engine.functional_warmup: pipeline not empty";
  if max_instructions < 0 then
    invalid_arg "Engine.functional_warmup: negative instruction count";
  t.fetch_stall <- 0;
  t.fetch_mode <- Normal;
  let warmed = ref 0 in
  let running = ref (max_instructions > 0) in
  while !running do
    Source.release_below t.source t.cursor;
    if not (Source.has t.source t.cursor) then running := false
    else begin
      let record = Source.get t.source t.cursor in
      t.cursor <- t.cursor + 1;
      if not record.Trace.Record.wrong_path then begin
        incr warmed;
        let byte_addr = Resim_isa.Instruction.byte_address record.pc in
        let block = byte_addr / icache_block_bytes t in
        if block <> t.last_fetch_block then begin
          ignore (Hierarchy.access t.icache ~addr:byte_addr ~write:false);
          t.last_fetch_block <- block
        end;
        (match record.payload with
        | Trace.Record.Branch { kind; taken; target } ->
            ignore
              (Bpred.Predictor.predict t.predictor ~pc:record.pc ~kind
                 ~fallthrough:(record.pc + 1) ~actual_taken:taken
                 ~actual_target:target);
            Bpred.Predictor.update t.predictor ~pc:record.pc ~kind ~taken
              ~target
        | Trace.Record.Memory { is_load; address } ->
            ignore
              (Hierarchy.access t.dcache ~addr:address ~write:(not is_load))
        | Trace.Record.Other _ -> ());
        if !warmed >= max_instructions then running := false
      end
    end
  done;
  !warmed

let cursor t = t.cursor

let checkpoint t =
  Checkpoint.make ~cycle:t.cycle ~cursor:t.cursor
    ~counters:(Stats.to_assoc t.stats)

let deadlock_here t ~reason ~stuck_for =
  { reason;
    at_cycle = t.cycle;
    at_cursor = t.cursor;
    rob_occupancy = Rob.length t.rob;
    fetch_mode = fetch_mode_name t;
    stuck_for }

type stop = Drained | Cycle_budget | Time_budget | Commit_target

type bounded = { final : Stats.t; stop : stop; resume : Checkpoint.t option }

let default_watchdog = 100_000

(* How many cycles between calls of the (possibly wall-clock-reading)
   deadline closure: cheap enough to keep hot-loop overhead invisible,
   frequent enough that a timeout lands within microseconds. *)
let deadline_poll_interval = 256

let run_bounded ?(watchdog = default_watchdog) ?max_cycles ?max_commits
    ?deadline t =
  (* Progress watchdog on plain ints: this loop runs every cycle. *)
  let last_cursor = ref t.cursor in
  let last_committed = ref (Stats.get_int Stats.committed t.stats) in
  let last_rob = ref (Rob.length t.rob) in
  let stuck_for = ref 0 in
  let poll = ref 0 in
  let verdict = ref Drained in
  let running = ref (not (finished t)) in
  while !running do
    let budget_hit =
      match max_cycles with
      | Some budget -> Int64.compare t.cycle budget >= 0
      | None -> false
    in
    let commits_hit =
      (not budget_hit)
      &&
      match max_commits with
      | Some target -> Stats.get_int Stats.committed t.stats >= target
      | None -> false
    in
    let deadline_hit =
      (not budget_hit) && (not commits_hit)
      &&
      match deadline with
      | Some hit ->
          poll := !poll + 1;
          if !poll >= deadline_poll_interval then begin
            poll := 0;
            hit ()
          end
          else false
      | None -> false
    in
    if budget_hit then begin
      verdict := Cycle_budget;
      running := false
    end
    else if commits_hit then begin
      verdict := Commit_target;
      running := false
    end
    else if deadline_hit then begin
      verdict := Time_budget;
      running := false
    end
    else begin
      step t;
      let committed = Stats.get_int Stats.committed t.stats in
      let rob = Rob.length t.rob in
      if t.cursor = !last_cursor && committed = !last_committed
         && rob = !last_rob
      then begin
        incr stuck_for;
        if !stuck_for > watchdog then
          raise
            (Deadlock
               (deadlock_here t ~reason:"no commit/fetch progress"
                  ~stuck_for:!stuck_for))
      end
      else begin
        stuck_for := 0;
        last_cursor := t.cursor;
        last_committed := committed;
        last_rob := rob
      end;
      if finished t then running := false
    end
  done;
  { final = t.stats;
    stop = !verdict;
    resume =
      (match !verdict with
      | Drained -> None
      | Cycle_budget | Time_budget | Commit_target -> Some (checkpoint t)) }

let run ?(max_cycles = 1_000_000_000L) t =
  let bounded = run_bounded ~max_cycles t in
  match bounded.stop with
  | Drained -> bounded.final
  | Cycle_budget ->
      raise (Deadlock (deadlock_here t ~reason:"exceeded max_cycles" ~stuck_for:0))
  | Time_budget | Commit_target ->
      assert false (* no deadline or commit target was installed *)

let simulate ?config trace = run (create ?config trace)
