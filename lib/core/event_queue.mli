(** Binary min-heap of timestamped events for the event-driven scheduler.

    Keys are [(at, id)] pairs compared lexicographically — [at] is a
    simulated cycle ([complete_at] for completion events, [0] for
    program-order pools) and [id] the ROB entry id, which is globally
    unique and monotone in program order. Ties on the full key (possible
    only if a caller reuses an id) pop in insertion order, so the queue
    is stable.

    Keys are plain [int]s held in flat arrays (structure-of-arrays), so
    a push performs no allocation; 63-bit cycles exceed any reachable
    simulation length. All operations are O(log n) except
    [length]/[is_empty]/[min_key] (O(1)) and [clear] (O(1), drops the
    storage). The heap grows geometrically and never shrinks while in
    use.

    The representation is exposed for the engine specialization layer
    (DESIGN.md §14), which inlines the O(1) reads ([is_empty], [min_at],
    the root payload). The heap-ordered prefix lives in [0, size);
    [payload] keeps stale references in its unused suffix. Treat the
    type as private elsewhere; pushes and drops must go through the
    operations below. *)

type 'a t = {
  mutable at : int array;
  mutable id : int array;
  mutable seq : int array;
  mutable payload : 'a array;
  mutable size : int;
  mutable stamp : int;
}

val create : unit -> 'a t

val length : 'a t -> int
val is_empty : 'a t -> bool

val push : 'a t -> at:int -> id:int -> 'a -> unit
(** Insert an event keyed [(at, id)]. *)

val min_key : 'a t -> (int * int) option
(** Key of the next event to pop, without popping it. *)

val pop : 'a t -> 'a option
(** Remove and return the event with the smallest key. *)

val pop_due : 'a t -> now:int -> 'a option
(** [pop t] only when the minimum key's [at] is [<= now]; [None]
    otherwise (and the queue is left untouched). *)

val min_at : 'a t -> int
(** [at] of the minimum key, or [max_int] when empty — so drain loops
    can test dueness without allocating. *)

val top : 'a t -> 'a
(** Payload of the minimum key without popping — allocation-free;
    raises [Invalid_argument] when empty. *)

val drop : 'a t -> unit
(** Remove the minimum-key event; raises [Invalid_argument] when
    empty. Engine drain loops pair [top]/[drop] to avoid the option
    that [pop] would box on every event. *)

val clear : 'a t -> unit
(** Empty the queue and release its storage. *)
