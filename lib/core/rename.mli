(** Rename table: architectural register → in-flight producer.

    Dispatch looks sources up here and records the producing ROB entry;
    writeback clears a mapping it still owns. Because branch resolution
    happens at commit (when the branch is the oldest instruction), a
    squash always empties the window, so recovery is a full {!reset}.

    The representation is exposed for the engine specialization layer
    (DESIGN.md §14), which inlines the per-dispatch lookups. Slot [r]
    holds the producing entry id for architectural register [r], or
    [Entry.no_producer]; slot 0 (the zero register) is never defined.
    Treat the type as private elsewhere. *)

type t = { producers : int array }

val create : registers:int -> t

val producer : t -> int -> int
(** [producer t reg] is the id of the in-flight entry producing [reg],
    or {!Entry.no_producer} when the architectural value is current.
    Register 0 never has a producer. *)

val define : t -> reg:int -> id:int -> unit
(** Dispatch of an instruction writing [reg]. *)

val clear : t -> reg:int -> id:int -> unit
(** Writeback: remove the mapping only if [id] still owns it. *)

val reset : t -> unit
val pending : t -> int
(** Number of registers currently renamed. *)
