(** Simulated-processor and engine configuration.

    Mirrors §V.C: the reference processor is 4-way superscalar with 16
    Reorder Buffer entries, 8 LSQ entries, four single-cycle ALUs, one
    3-cycle multiplier, one 10-cycle divider, misfetch and misspeculation
    penalties of 3 cycles, the 2-level/BTB-512/RAS-16 predictor, and
    either a perfect memory system or 32 KB L1 caches. *)

(** ReSim's internal pipeline organization (§IV). Determines only the
    number of minor cycles per major cycle — the simulated-processor
    semantics are identical across organizations. *)
type organization =
  | Simple     (** Fig. 2 — [2N + 3] minor cycles *)
  | Improved   (** Fig. 3 — [N + 4] minor cycles *)
  | Optimized  (** Fig. 4 — [N + 3]; needs at most [N - 1] memory ports *)

val organization_name : organization -> string

val is_optimized : organization -> bool
(** Allocation- and caml_equal-free test used on the engine's per-cycle
    paths (the Optimized organization changes issue-slot rules). *)

val minor_cycles_per_major : organization -> width:int -> int
(** The latency formulas above. *)

(** Host-side scheduling strategy of the timing engine. Both produce
    bit-identical cycle counts and statistics — a property the
    differential test suite enforces; they differ only in host cost.
    [Scan] is the reference oracle: every phase walks the whole ROB/LSQ
    each major cycle. [Event] only touches state that can change in the
    current cycle (completion heap, producer→consumer wakeup lists, a
    ready pool, incremental LSQ reclassification). *)
type scheduler =
  | Scan   (** O(ROB·N + LSQ²) per cycle; the reference implementation *)
  | Event  (** O(active) per cycle; the default *)

val scheduler_name : scheduler -> string

type t = {
  width : int;                 (** issue width N *)
  ifq_entries : int;
  decouple_entries : int;
  rob_entries : int;
  lsq_entries : int;
  alu_count : int;
  alu_latency : int;
  mult_count : int;
  mult_latency : int;
  div_count : int;
  div_latency : int;           (** divider is not pipelined *)
  mem_read_ports : int;        (** load issues per major cycle *)
  mem_write_ports : int;       (** store commits per major cycle *)
  misfetch_penalty : int;
  misspeculation_penalty : int;
  organization : organization;
  scheduler : scheduler;
  predictor : Resim_bpred.Predictor.config;
  icache : Resim_cache.Cache.config;
  dcache : Resim_cache.Cache.config;
  cache_timing : Resim_cache.Cache.timing;
  l2cache : Resim_cache.Cache.config option;
      (** optional unified L2 shared by the I- and D-paths (an extension
          beyond the paper; [None] reproduces the paper's flat L1s) *)
  l2_timing : Resim_cache.Cache.timing;
}

val reference : t
(** Table 1 (left): 4-wide, 2-level predictor, perfect memory,
    Optimized organization (L = 7). *)

val fast_comparable : t
(** Table 1 (right): 2-wide, perfect predictor, 32 KB 8-way 64 B L1
    caches, Improved organization (L = 6). *)

val validate : t -> (t, string) result
(** Structural checks; notably Optimized requires
    [mem_read_ports + mem_write_ports <= width - 1] (§IV.B: “up to N-1
    memory ports”), positive sizes, and width within the IFQ. *)

val minor_cycle_latency : t -> int
(** [minor_cycles_per_major t.organization ~width:t.width]. *)

val pp : Format.formatter -> t -> unit
