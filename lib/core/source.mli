(** Record sources for the engine.

    The engine walks its input monotonically (a cursor plus one-record
    lookahead for Tag-Bit detection), so besides whole in-memory arrays
    it can consume records *pulled on demand* from a live producer — the
    paper's future-work idea of feeding ReSim directly from a functional
    simulator, as in FAST. A pull source buffers a sliding window and
    reclaims records once the engine's cursor has passed them, keeping
    memory bounded for arbitrarily long co-simulations.

    The representation is exposed for the engine specialization layer
    (DESIGN.md §14): the staged fetch loop inlines the [Whole] fast
    path (a bounds check plus an array read) and falls back to the
    ordinary calls for [Windowed] sources. Treat the type as private
    elsewhere. *)

type pull_state = {
  pull : unit -> Resim_trace.Record.t option;
  mutable window : Resim_trace.Record.t array;
  mutable base : int;  (* absolute index of [window.(0)] *)
  mutable length : int;  (* valid records in the window *)
  mutable exhausted : bool;
  mutable reclaim_below : int;
}

type t =
  | Whole of Resim_trace.Record.t array
  | Windowed of pull_state

val of_array : Resim_trace.Record.t array -> t

val of_pull : (unit -> Resim_trace.Record.t option) -> t
(** [of_pull next] produces records by calling [next] on demand; [None]
    ends the stream. *)

val at : t -> int -> Resim_trace.Record.t option
(** [at source index] is the record at absolute position [index], pulling
    from the producer as needed. [None] means the stream ended before
    [index]. Raises [Invalid_argument] if [index] was already reclaimed
    by {!release_below}. *)

val has : t -> int -> bool
(** [has source index] is [at source index <> None] without allocating
    the option — the engine's end-of-trace check runs every cycle. *)

val get : t -> int -> Resim_trace.Record.t
(** [at] without the option, for the fetch loop (one call per record);
    raises [Invalid_argument] when the index is reclaimed or past the
    end — guard with {!has}. *)

val release_below : t -> int -> unit
(** Allow the source to reclaim storage for records at positions strictly
    below [index]. No-op for array sources. *)

val buffered : t -> int
(** Records currently held in memory (diagnostics; the array source
    reports the full array length). *)
