type event_kind = Fetched | Dispatched | Issued | Completed | Committed | Squashed

type timeline = {
  id : int;
  pc : int;
  wrong_path : bool;
  events : (event_kind * int64) list;
}

type slot = {
  slot_id : int;
  slot_pc : int;
  slot_wrong : bool;
  mutable recorded : (event_kind * int64) list;  (* newest first *)
}

type t = {
  engine : Engine.t;
  window : int;
  slots : (int, slot) Hashtbl.t;
  (* Fetch cycles queue: fetch order equals dispatch order, so each
     dispatch pops the oldest pending fetch cycle. *)
  pending_fetches : int64 Queue.t;
  mutable traced : int;
}

let record t ~id ~pc ~wrong kind =
  let slot =
    match Hashtbl.find_opt t.slots id with
    | Some slot -> slot
    | None ->
        let slot =
          { slot_id = id; slot_pc = pc; slot_wrong = wrong; recorded = [] }
        in
        Hashtbl.replace t.slots id slot;
        slot
  in
  slot.recorded <- (kind, Engine.cycle t.engine) :: slot.recorded

let observe t event =
  match (event : Engine.event) with
  | Engine.Ev_fetch _ -> Queue.add (Engine.cycle t.engine) t.pending_fetches
  | Engine.Ev_flush_frontend -> Queue.clear t.pending_fetches
  | Engine.Ev_dispatch entry ->
      if t.traced < t.window then begin
        t.traced <- t.traced + 1;
        let id = entry.Entry.id in
        let pc = entry.Entry.record.Resim_trace.Record.pc in
        let wrong = Entry.is_wrong_path entry in
        (match Queue.take_opt t.pending_fetches with
        | Some fetch_cycle ->
            let slot =
              { slot_id = id; slot_pc = pc; slot_wrong = wrong;
                recorded = [ (Fetched, fetch_cycle) ] }
            in
            Hashtbl.replace t.slots id slot
        | None -> ());
        record t ~id ~pc ~wrong Dispatched
      end
      else ignore (Queue.take_opt t.pending_fetches)
  | Engine.Ev_issue entry ->
      if Hashtbl.mem t.slots entry.Entry.id then
        record t ~id:entry.Entry.id ~pc:0 ~wrong:false Issued
  | Engine.Ev_complete entry ->
      if Hashtbl.mem t.slots entry.Entry.id then
        record t ~id:entry.Entry.id ~pc:0 ~wrong:false Completed
  | Engine.Ev_commit entry ->
      if Hashtbl.mem t.slots entry.Entry.id then
        record t ~id:entry.Entry.id ~pc:0 ~wrong:false Committed
  | Engine.Ev_squash entry ->
      if Hashtbl.mem t.slots entry.Entry.id then
        record t ~id:entry.Entry.id ~pc:0 ~wrong:false Squashed
  | Engine.Ev_stall _ ->
      (* Stall causes are the Obs pipetrace's concern, not the
         per-instruction window trace. *)
      ()

let create ?(window = 64) engine =
  let t =
    { engine; window; slots = Hashtbl.create 64;
      pending_fetches = Queue.create (); traced = 0 }
  in
  Engine.set_observer engine (observe t);
  t

let step t = Engine.step t.engine

let run ?(max_cycles = 1_000_000L) t =
  let cycles = ref 0L in
  while (not (Engine.finished t.engine)) && Int64.compare !cycles max_cycles < 0 do
    step t;
    cycles := Int64.add !cycles 1L
  done

let timelines t =
  Hashtbl.fold (fun _ slot acc -> slot :: acc) t.slots []
  |> List.sort (fun a b -> compare a.slot_id b.slot_id)
  |> List.map (fun slot ->
         { id = slot.slot_id; pc = slot.slot_pc; wrong_path = slot.slot_wrong;
           events = List.rev slot.recorded })

let letter = function
  | Fetched -> 'F'
  | Dispatched -> 'D'
  | Issued -> 'i'
  | Completed -> 'W'
  | Committed -> 'C'
  | Squashed -> 'x'

let render t =
  let lines = timelines t in
  let buffer = Buffer.create 1024 in
  let horizon =
    List.fold_left
      (fun acc line ->
        List.fold_left (fun acc (_, cycle) -> max acc cycle) acc line.events)
      0L lines
  in
  let width = Int64.to_int horizon + 1 in
  Buffer.add_string buffer (Printf.sprintf "%-6s%-8s|" "id" "pc");
  for c = 0 to width - 1 do
    Buffer.add_char buffer (if c mod 10 = 0 then '|' else '.')
  done;
  Buffer.add_char buffer '\n';
  List.iter
    (fun line ->
      Buffer.add_string buffer
        (Printf.sprintf "#%-5d%-8d|" line.id line.pc);
      let row = Bytes.make width ' ' in
      (* Mark active occupancy between first and last event. *)
      (match (line.events, List.rev line.events) with
      | (_, first) :: _, (_, last) :: _ ->
          for c = Int64.to_int first to Int64.to_int last do
            Bytes.set row c '.'
          done
      | _ -> ());
      List.iter
        (fun (kind, cycle) -> Bytes.set row (Int64.to_int cycle) (letter kind))
        line.events;
      Buffer.add_string buffer (Bytes.to_string row);
      if line.wrong_path then Buffer.add_string buffer "  (wrong path)";
      Buffer.add_char buffer '\n')
    lines;
  Buffer.add_string buffer
    "F fetch  D dispatch  i issue  W writeback  C commit  x squashed\n";
  Buffer.contents buffer
