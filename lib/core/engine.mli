(** The ReSim timing engine.

    Consumes a pre-decoded trace and simulates the out-of-order processor
    of Figure 1 one major cycle at a time. Architectural semantics are
    enforced at major-cycle boundaries; each major cycle is charged
    [L(N)] minor cycles according to the configured internal organization
    (§IV) — the three organizations are timing-equivalent at major-cycle
    granularity by design, which a property test asserts.

    Within a major cycle the engine applies stage effects in the
    simulated-semantics order commit → writeback → Lsq_refresh → issue →
    dispatch → decouple → fetch. Running writeback before issue realises
    same-cycle wakeup of single-cycle producers; running commit first
    realises the paper's flag that keeps just-completed instructions from
    committing in the same major cycle.

    Mis-speculation: a tagged block following a branch record means the
    trace generator's predictor missed it. The engine fetches down the
    tagged block, holds further fetch at the first untagged record, and
    squashes at the branch's commit (the resolution point), discarding
    tagged records it never fetched and paying the misspeculation
    penalty. Misfetches (front end needs a taken-target the BTB/RAS
    cannot supply) pay the misfetch penalty. *)

type t

(** Why the pipeline lost a slot or a cycle — the stall-cause taxonomy
    of the observability layer (DESIGN.md §11). Each constructor maps
    one-to-one onto a {!Stats} counter and is emitted at exactly the
    sites that bump it, so stall streams are bit-identical between the
    Scan and Event schedulers. *)
type stall_reason =
  | Stall_ifq_empty
      (** dispatch under-filled: nothing decoupled (front-end
          starvation), charged once per stalled cycle *)
  | Stall_rob_full
  | Stall_lsq_full
  | Stall_fu_busy
      (** source-ready instruction found every eligible unit busy,
          charged once per candidate visit *)
  | Stall_read_port
  | Stall_write_port
  | Stall_icache  (** fetch burning an icache-miss stall cycle *)
  | Stall_misfetch_recovery
  | Stall_mispredict_recovery

val stall_reason_name : stall_reason -> string
(** Stable short name ("ifq-empty", "rob-full", ... ) used by the
    pipetrace JSONL format and metrics reports. *)

val all_stall_reasons : stall_reason list
(** Every reason once, in taxonomy order. *)

(** Pipeline events observable through {!set_observer}; the hook for
    tracing tools such as {!Pipeline_trace} and the [Resim_obs] sinks.
    Entries are live engine state — read, never mutate. *)
type event =
  | Ev_fetch of Resim_trace.Record.t
  | Ev_dispatch of Entry.t
  | Ev_issue of Entry.t
  | Ev_complete of Entry.t
  | Ev_commit of Entry.t
  | Ev_squash of Entry.t
  | Ev_flush_frontend
      (** a squash emptied the IFQ and decouple buffer *)
  | Ev_stall of stall_reason

(** Engine phase about to run, reported to the {!set_phase_probe} hook
    once per phase per cycle. [Ph_account] closes the cycle (occupancy
    sampling and cycle counters). *)
type phase =
  | Ph_commit
  | Ph_writeback
  | Ph_issue
  | Ph_dispatch
  | Ph_decouple
  | Ph_fetch
  | Ph_account

val phase_name : phase -> string
val all_phases : phase list
(** Every phase once, in within-cycle order. *)

val create : ?config:Config.t -> Resim_trace.Record.t array -> t
(** Raises [Invalid_argument] when the configuration does not
    {!Config.validate}. Default configuration: {!Config.reference}. *)

val create_from_source : ?config:Config.t -> Source.t -> t
(** Consume records from a {!Source} — in particular a pull source fed
    by a live functional simulator ({!Cosim}), the paper's FAST-style
    on-the-fly mode. *)

val config : t -> Config.t
val stats : t -> Stats.t
val icache : t -> Resim_cache.Cache.t
(** The L1 instruction cache. *)

val dcache : t -> Resim_cache.Cache.t
(** The L1 data cache. *)

val l2cache : t -> Resim_cache.Cache.t option
(** The shared L2, when the configuration has one. *)

val predictor : t -> Resim_bpred.Predictor.t

val set_observer : t -> (event -> unit) -> unit
(** Install the (single) event observer. Events fire in pipeline order
    within a cycle. With no observer installed the hot paths construct
    no events — the zero-sink run costs one pointer test per site. *)

val set_phase_probe : t -> (phase -> unit) -> unit
(** Install the host-profiling probe, called at the start of every
    engine phase of every cycle ({!Resim_obs.Prof} attributes wall time
    and allocation between consecutive calls). The engine never reads
    the clock itself. *)

val clear_phase_probe : t -> unit

val cycle : t -> int64
(** Major cycles elapsed. *)

val minor_cycles : t -> int64
(** [cycle * L(N)]. *)

val finished : t -> bool
(** Trace fully consumed and pipeline drained. *)

val pipeline_empty : t -> bool
(** IFQ, decouple buffer and ROB all empty — the boundary condition for
    switching between detailed and functional simulation. *)

val step : t -> unit
(** Simulate one major cycle. No-op once {!finished}. *)

val drain : t -> unit
(** Finish every in-flight instruction without fetching new ones,
    leaving the pipeline empty at the current cursor. Every phase runs
    normally — commits train the predictor, stores write the dcache,
    pending squashes resolve — and the cycles spent are charged to the
    statistics like any others. Any recovery penalty left by a squash
    during the drain is cleared (the functional gap that follows
    absorbs it). Raises {!Deadlock} only on a genuine engine bug. *)

val functional_warmup : t -> max_instructions:int -> int
(** Sampled simulation's fast-forward (DESIGN.md §13): consume up to
    [max_instructions] correct-path records updating only the
    long-lived microarchitectural state — trace cursor, instruction and
    data cache hierarchies, direction predictor, BTB and RAS — with no
    detailed timing: no ROB/LSQ/FU/event-queue work, and {!cycle} does
    not advance. Wrong-path records are skipped. Returns the number of
    correct-path instructions consumed, short of the request only when
    the trace ends. Raises [Invalid_argument] unless {!pipeline_empty}
    ({!drain} first) or if [max_instructions] is negative. *)

val cursor : t -> int
(** Trace records consumed so far (the fetch cursor). *)

(** Structured no-progress report carried by {!Deadlock}: the engine
    position at the moment the watchdog or a budget tripped.
    [stuck_for] is 0 when a cycle budget (not the watchdog) fired. *)
type deadlock = {
  reason : string;
  at_cycle : int64;
  at_cursor : int;
  rob_occupancy : int;
  fetch_mode : string;
  stuck_for : int;
}

exception Deadlock of deadlock
(** Raised by {!run}/{!run_bounded} when no commit or fetch progress is
    made for a whole watchdog window — an engine bug or a pathological
    trace, never expected on valid input. *)

val pp_deadlock : Format.formatter -> deadlock -> unit

val checkpoint : t -> Checkpoint.t
(** Snapshot the current position for a deterministic replay resume. *)

(** Why a bounded run returned. *)
type stop =
  | Drained       (** trace consumed and pipeline empty — a full run *)
  | Cycle_budget  (** [max_cycles] reached; stats are partial *)
  | Time_budget   (** the deadline closure fired; stats are partial *)
  | Commit_target (** [max_commits] reached; stats are partial *)

type bounded = {
  final : Stats.t;
  stop : stop;
  resume : Checkpoint.t option;
      (** a replay checkpoint whenever the run was truncated *)
}

val default_watchdog : int
(** No-progress cycles before {!Deadlock} (100k). *)

val run_bounded :
  ?watchdog:int ->
  ?max_cycles:int64 ->
  ?max_commits:int ->
  ?deadline:(unit -> bool) ->
  t ->
  bounded
(** Step until {!finished} or a budget trips, truncating gracefully with
    partial statistics and a replay checkpoint instead of raising. The
    [deadline] closure is polled every few hundred cycles — pass a
    wall-clock check; the engine itself never reads the clock.
    [max_commits] is an absolute committed-instruction target (compared
    against the [committed] counter, which persists across calls — the
    sample driver's detailed intervals rely on this). Raises
    {!Deadlock} only for genuine no-progress (watchdog), and lets
    {!Resim_trace.Fault.Trace_fault} from protocol violations
    propagate. *)

val run : ?max_cycles:int64 -> t -> Stats.t
(** Step until {!finished}; raises {!Deadlock} past [max_cycles]
    (default 1 G). *)

val simulate :
  ?config:Config.t -> Resim_trace.Record.t array -> Stats.t
(** [create] + [run]. *)

(** {1 Engine specialization — staged variants (DESIGN.md §14)}

    The per-cycle implementation behind {!step} is swappable: the
    generic engine interprets the frozen configuration every cycle,
    while a staged variant built by {!Staged} runs monomorphic phase
    code with the configuration constants bound once at functor
    application — following Reshadi & Dutt's generated cycle-accurate
    simulators. Variants are required to be bit-identical to the
    generic engine (cycles, every {!Stats} counter, the pipetrace
    event stream); the three-way differential suite proves it. Variant
    selection policy (the pre-instantiated grid, [Auto]/[Always]/
    [Never]) lives in [Resim_spec.Spec] — this module only provides
    the mechanism. *)

(** The configuration facts a staged variant freezes as compile-time
    constants. Anything not listed here (queue geometries other than
    ROB/LSQ, caches, predictor) stays runtime state read from the
    engine. *)
module type STATIC_CONFIG = sig
  val width : int
  val rob_entries : int
  val lsq_entries : int
  val alu_count : int
  val alu_latency : int
  val mult_count : int
  val mult_latency : int
  val div_count : int
  val div_latency : int
  val mem_read_ports : int
  val mem_write_ports : int
  val misfetch_penalty : int
  val misspeculation_penalty : int
  val organization : Config.organization
  val scheduler : Config.scheduler
end

(** A staged engine variant: allocation-free monomorphic per-cycle
    code specialized to one [STATIC_CONFIG] point. *)
module Staged (_ : STATIC_CONFIG) : sig
  val name : string
  (** Stable variant identifier (reported by {!variant}, the CLI and
      profile/metrics JSON). *)

  val matches : Config.t -> bool
  (** Whether a runtime configuration agrees with every frozen
      constant — the bit-identity precondition for {!install}. *)

  val install : t -> unit
  (** Make {!step} run this variant. Raises [Invalid_argument] when
      the engine's configuration does not {!matches} — installing a
      mismatched variant would silently change simulated timing. *)
end

val set_stepper : t -> name:string -> (t -> unit) -> unit
(** Install a per-cycle implementation (the specialization layer's
    hook; {!Staged.install} validates and calls this). The stepper
    must preserve the generic engine's observable behavior exactly. *)

val clear_stepper : t -> unit
(** Revert {!step} to the generic engine. *)

val is_specialized : t -> bool

val variant : t -> string option
(** Name of the installed variant, or [None] on the generic engine. *)
