(** In-flight instruction state — a Reorder Buffer entry.

    The simulated architecture is RUU-style: the ROB entry doubles as the
    reservation station, carrying source readiness (producer links into
    older entries), execution state and the bookkeeping flags that drive
    mis-speculation handling. *)

type state =
  | Dispatched  (** waiting in the window for operands / a unit *)
  | Issued      (** executing; [complete_at] is the writeback cycle *)
  | Completed   (** result broadcast; awaiting in-order commit *)

(** Load readiness as decided by Lsq_refresh each major cycle. *)
type load_readiness =
  | Load_not_checked
  | Load_blocked      (** an older store's address is unresolved *)
  | Load_forward      (** value forwarded from an older store in the LSQ *)
  | Load_needs_port   (** must access the D-cache through a read port *)

type t = {
  id : int;  (** global program-order sequence number *)
  record : Resim_trace.Record.t;
  mutable src1_producer : int;
      (** producing entry id; {!no_producer} when the operand is ready.
          Unboxed so the per-wakeup compare/clear never allocates. *)
  mutable src2_producer : int;
  mutable state : state;
  mutable complete_at : int;
      (** host int: a 63-bit cycle count exceeds any reachable run *)
  mutable completed_cycle : int;
      (** cycle the result was broadcast; commit requires it to be a past
          cycle — the paper's same-cycle flag *)
  mutable load_readiness : load_readiness;
  mutable forwarded : bool;
  mutable squash_on_commit : bool;
      (** mispredicted branch: resolves and squashes at commit *)
  mutable ras_repair : Resim_bpred.Ras.t option;
  mutable dependents : t list;
      (** event scheduler: younger entries whose sources this entry
          produces, registered at their dispatch and woken (only them —
          not the whole ROB) when this entry's result broadcasts *)
  mutable in_ready : bool;
      (** event scheduler: entry currently sits in the ready pool *)
  mutable squashed : bool;
      (** event scheduler: entry was squashed; pending heap/pool/wakeup
          references to it are skipped lazily *)
}

val no_producer : int
(** Sentinel ([-1]) for a resolved source operand. *)

val make : id:int -> Resim_trace.Record.t -> t

val sources_ready : t -> bool

val is_dispatched : t -> bool
val is_issued : t -> bool
val is_completed : t -> bool
(** Per-cycle state tests; matches rather than polymorphic [=] so the
    hot paths never call caml_equal. *)

val is_load : t -> bool
val is_store : t -> bool
val is_branch : t -> bool
val is_wrong_path : t -> bool
val pp : Format.formatter -> t -> unit
