(* Structure-of-arrays layout: keys live in plain [int array]s so a
   push allocates nothing (OCaml int64 and per-node records would box).
   The payload array keeps stale references in its unused suffix; they
   are bounded by the high-water capacity and overwritten on reuse. *)
type 'a t = {
  mutable at : int array;         (* heap-ordered prefix [0, size) *)
  mutable id : int array;
  mutable seq : int array;
  mutable payload : 'a array;
  mutable size : int;
  mutable stamp : int;            (* insertion counter: stability tiebreak *)
}

let create () =
  { at = [||]; id = [||]; seq = [||]; payload = [||]; size = 0; stamp = 0 }

let length t = t.size
let is_empty t = t.size = 0

let clear t =
  t.at <- [||];
  t.id <- [||];
  t.seq <- [||];
  t.payload <- [||];
  t.size <- 0

(* Lexicographic (at, id, seq): seq makes duplicate keys pop in
   insertion order. Is the explicit key strictly before slot [j]? *)
let key_before t ~at ~id ~seq j =
  at < t.at.(j)
  || (at = t.at.(j)
      && (id < t.id.(j) || (id = t.id.(j) && seq < t.seq.(j))))

(* Is slot [j] strictly before the explicit key? *)
let slot_before_key t j ~at ~id ~seq =
  t.at.(j) < at
  || (t.at.(j) = at
      && (t.id.(j) < id || (t.id.(j) = id && t.seq.(j) < seq)))

let move t ~src ~dst =
  t.at.(dst) <- t.at.(src);
  t.id.(dst) <- t.id.(src);
  t.seq.(dst) <- t.seq.(src);
  t.payload.(dst) <- t.payload.(src)

let set t i ~at ~id ~seq payload =
  t.at.(i) <- at;
  t.id.(i) <- id;
  t.seq.(i) <- seq;
  t.payload.(i) <- payload

let grow t payload =
  let capacity = Array.length t.at in
  if t.size = capacity then begin
    let grown = if capacity < 8 then 16 else 2 * capacity in
    let at = Array.make grown 0 in
    let id = Array.make grown 0 in
    let seq = Array.make grown 0 in
    let payloads = Array.make grown payload in
    Array.blit t.at 0 at 0 t.size;
    Array.blit t.id 0 id 0 t.size;
    Array.blit t.seq 0 seq 0 t.size;
    Array.blit t.payload 0 payloads 0 t.size;
    t.at <- at;
    t.id <- id;
    t.seq <- seq;
    t.payload <- payloads
  end

let push t ~at ~id payload =
  let seq = t.stamp in
  t.stamp <- t.stamp + 1;
  grow t payload;
  (* Sift the hole up from the end. *)
  let i = ref t.size in
  t.size <- t.size + 1;
  let continue_ = ref true in
  while !continue_ && !i > 0 do
    let parent = (!i - 1) / 2 in
    if key_before t ~at ~id ~seq parent then begin
      move t ~src:parent ~dst:!i;
      i := parent
    end
    else continue_ := false
  done;
  set t !i ~at ~id ~seq payload

let min_key t = if t.size = 0 then None else Some (t.at.(0), t.id.(0))

(* Sift the key/payload taken from the old last slot down from the
   root. *)
let sift_down t ~at ~id ~seq payload =
  let size = t.size in
  let i = ref 0 in
  let continue_ = ref true in
  while !continue_ do
    let left = (2 * !i) + 1 in
    if left >= size then continue_ := false
    else begin
      let right = left + 1 in
      let child =
        if
          right < size
          && key_before t ~at:t.at.(right) ~id:t.id.(right)
               ~seq:t.seq.(right) left
        then right
        else left
      in
      if slot_before_key t child ~at ~id ~seq then begin
        move t ~src:child ~dst:!i;
        i := child
      end
      else continue_ := false
    end
  done;
  set t !i ~at ~id ~seq payload

let min_at t = if t.size = 0 then max_int else t.at.(0)

let top t =
  if t.size = 0 then invalid_arg "Event_queue.top: empty";
  t.payload.(0)

let drop t =
  if t.size = 0 then invalid_arg "Event_queue.drop: empty";
  t.size <- t.size - 1;
  if t.size > 0 then begin
    let last = t.size in
    sift_down t ~at:t.at.(last) ~id:t.id.(last) ~seq:t.seq.(last)
      t.payload.(last)
  end

let pop t =
  if t.size = 0 then None
  else begin
    let root = t.payload.(0) in
    drop t;
    Some root
  end

let pop_due t ~now =
  if t.size > 0 && t.at.(0) <= now then pop t else None
