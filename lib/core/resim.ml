let version = "1.0.0"

(* Identity of "this engine build running this configuration" — what a
   checkpoint or cache entry is only valid against. The version pins
   the build; the config hash pins every simulated-machine parameter. *)
let engine_identity config = version ^ "/" ^ Hash.config config

type outcome = {
  config : Config.t;
  stats : Stats.t;
  trace_summary : Resim_trace.Summary.t;
  bits_per_instruction : float;
  icache_stats : Resim_cache.Cache.stats;
  dcache_stats : Resim_cache.Cache.stats;
}

let outcome_of ~config ~records engine stats =
  { config;
    stats;
    trace_summary = Resim_trace.Summary.of_records records;
    bits_per_instruction = Resim_trace.Codec.bits_per_instruction records;
    icache_stats = Resim_cache.Cache.stats (Engine.icache engine);
    dcache_stats = Resim_cache.Cache.stats (Engine.dcache engine) }

let simulate_trace ?(config = Config.reference) ?instrument records =
  let engine = Engine.create ~config records in
  (match instrument with Some f -> f engine | None -> ());
  let stats = Engine.run engine in
  outcome_of ~config ~records engine stats

(* ------------------------------------------------------------------ *)
(* Robust entry points: structured failures instead of exceptions,
   graceful truncation under cycle/wall-clock budgets, deterministic
   resume from a replay checkpoint. *)

type failure =
  | Fault of Resim_trace.Fault.t
  | Deadlock of Engine.deadlock

let failure_to_string = function
  | Fault fault -> Resim_trace.Fault.to_string fault
  | Deadlock d -> Format.asprintf "deadlock: %a" Engine.pp_deadlock d

type robust = {
  outcome : outcome;
  stop : Engine.stop;
  resume : Checkpoint.t option;  (* Some whenever the run was truncated *)
}

let simulate_robust ?(config = Config.reference) ?watchdog ?max_cycles
    ?deadline ?instrument ?driver records =
  match
    let engine = Engine.create ~config records in
    (* Observability hook: attach sinks/probes to the freshly created
       engine before the first cycle runs. *)
    (match instrument with Some f -> f engine | None -> ());
    let bounded =
      match driver with
      | Some drive -> drive engine
      | None -> Engine.run_bounded ?watchdog ?max_cycles ?deadline engine
    in
    { outcome = outcome_of ~config ~records engine bounded.Engine.final;
      stop = bounded.Engine.stop;
      resume =
        (* Stamp truncation handles with the engine identity so a
           client holding one cannot replay it on a different build or
           configuration (RSM-K007 at resume). *)
        Option.map
          (Checkpoint.with_engine (engine_identity config))
          bounded.Engine.resume }
  with
  | robust -> Ok robust
  | exception Resim_trace.Fault.Trace_fault fault -> Error (Fault fault)
  | exception Engine.Deadlock deadlock -> Error (Deadlock deadlock)

(* Streaming robust entry: the engine pulls records on demand through a
   [Source] window, so the trace never materialises — constant memory
   for traces larger than RAM (pipes, chunked file cursors, foreign
   adapters). The trace summary accumulates incrementally as records
   stream past; [bits_per_instruction] needs the encoded payload and is
   reported as 0 (unknown) on this path. *)
let simulate_pull_robust ?(config = Config.reference) ?watchdog ?max_cycles
    ?deadline ?instrument pull =
  let summary = ref Resim_trace.Summary.zero in
  let counted () =
    match pull () with
    | Some record ->
        summary := Resim_trace.Summary.add !summary record;
        Some record
    | None -> None
  in
  match
    let engine = Engine.create_from_source ~config (Source.of_pull counted) in
    (match instrument with Some f -> f engine | None -> ());
    let bounded = Engine.run_bounded ?watchdog ?max_cycles ?deadline engine in
    { outcome =
        { config;
          stats = bounded.Engine.final;
          trace_summary = !summary;
          bits_per_instruction = 0.0;
          icache_stats = Resim_cache.Cache.stats (Engine.icache engine);
          dcache_stats = Resim_cache.Cache.stats (Engine.dcache engine) };
      stop = bounded.Engine.stop;
      resume =
        Option.map
          (Checkpoint.with_engine (engine_identity config))
          bounded.Engine.resume }
  with
  | robust -> Ok robust
  | exception Resim_trace.Fault.Trace_fault fault -> Error (Fault fault)
  | exception Engine.Deadlock deadlock -> Error (Deadlock deadlock)

let resume_trace ?(config = Config.reference) ~checkpoint records =
  let target = checkpoint.Checkpoint.cycle in
  (* Identity check first (RSM-K007): refusing a foreign-build handle
     outright beats letting the replay run to a baffling statistics
     mismatch. *)
  match
    Checkpoint.verify_engine ~expected:(engine_identity config) checkpoint
  with
  | Error error -> Error (Checkpoint.error_to_string error)
  | Ok () ->
  match
    let engine = Engine.create ~config records in
    while
      Int64.compare (Engine.cycle engine) target < 0
      && not (Engine.finished engine)
    do
      Engine.step engine
    done;
    if Int64.compare (Engine.cycle engine) target <> 0 then
      Error
        (Printf.sprintf
           "trace drains at cycle %Ld, before the checkpoint cycle %Ld — \
            wrong trace for this checkpoint"
           (Engine.cycle engine) target)
    else if Engine.cursor engine <> checkpoint.Checkpoint.cursor then
      Error
        (Printf.sprintf
           "cursor mismatch at checkpoint cycle: replayed %d, recorded %d — \
            wrong trace or configuration"
           (Engine.cursor engine) checkpoint.Checkpoint.cursor)
    else if
      Stats.to_assoc (Engine.stats engine) <> checkpoint.Checkpoint.counters
    then Error "statistics mismatch at checkpoint cycle — wrong trace or configuration"
    else Ok (outcome_of ~config ~records engine (Engine.run engine))
  with
  | result -> result
  | exception Resim_trace.Fault.Trace_fault fault ->
      Error (Resim_trace.Fault.to_string fault)
  | exception Engine.Deadlock deadlock ->
      Error (Format.asprintf "deadlock: %a" Engine.pp_deadlock deadlock)

let simulate_program ?(config = Config.reference) ?generator program =
  let generator =
    match generator with
    | Some generator_config -> generator_config
    | None ->
        { Resim_tracegen.Generator.default_config with
          predictor = config.predictor;
          wrong_path_limit = config.rob_entries + config.ifq_entries }
  in
  let records = Resim_tracegen.Generator.records ~config:generator program in
  simulate_trace ~config records

let mips outcome ~device =
  Resim_fpga.Throughput.mips ~mhz:device.Resim_fpga.Device.minor_cycle_mhz
    ~minor_cycles_per_major:(Config.minor_cycle_latency outcome.config)
    ~instructions:(Stats.get Stats.committed outcome.stats)
    ~major_cycles:(Stats.get Stats.major_cycles outcome.stats)

let mips_with_wrong_path outcome ~device =
  Resim_fpga.Throughput.mips ~mhz:device.Resim_fpga.Device.minor_cycle_mhz
    ~minor_cycles_per_major:(Config.minor_cycle_latency outcome.config)
    ~instructions:(Stats.get Stats.fetched outcome.stats)
    ~major_cycles:(Stats.get Stats.major_cycles outcome.stats)

let trace_bandwidth_mbytes outcome ~device =
  Resim_fpga.Throughput.trace_mbytes_per_second
    ~mips:(mips_with_wrong_path outcome ~device)
    ~bits_per_instruction:outcome.bits_per_instruction

let pp_outcome ppf outcome =
  Format.fprintf ppf "@[<v>configuration:@,  @[<v>%a@]@,trace:@,  @[<v>%a@]@,\
                      engine:@,  @[<v>%a@]@,trace encoding: %.2f bits/instr@]"
    Config.pp outcome.config Resim_trace.Summary.pp outcome.trace_summary
    Stats.pp outcome.stats outcome.bits_per_instruction
