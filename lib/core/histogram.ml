(* Bins are host ints so the per-cycle [observe] never allocates; the
   int64 API widens on read. *)
type t = { counts : int array; mutable total : int }

let create ~bins =
  if bins < 1 then invalid_arg "Histogram.create: bins must be >= 1";
  { counts = Array.make bins 0; total = 0 }

let bins t = Array.length t.counts

let observe t value =
  let slot =
    if value < 0 then 0
    else if value >= bins t then bins t - 1
    else value
  in
  t.counts.(slot) <- t.counts.(slot) + 1;
  t.total <- t.total + 1

let count t i =
  if i < 0 || i >= bins t then 0L else Int64.of_int t.counts.(i)

let total t = Int64.of_int t.total

let mean t =
  if t.total = 0 then 0.0
  else begin
    let weighted = ref 0.0 in
    Array.iteri
      (fun value count ->
        weighted := !weighted +. (float_of_int value *. float_of_int count))
      t.counts;
    !weighted /. float_of_int t.total
  end

let fraction_at t i =
  if t.total = 0 then 0.0
  else Int64.to_float (count t i) /. float_of_int t.total

let pp ppf t =
  Format.fprintf ppf "@[<h>";
  Array.iteri
    (fun value count ->
      if count > 0 then Format.fprintf ppf "%d:%d " value count)
    t.counts;
  Format.fprintf ppf "(mean %.2f)@]" (mean t)
