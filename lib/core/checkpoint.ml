(* Lightweight replay checkpoint.

   The engine is deterministic, so a run truncated by a cycle or
   wall-clock budget can resume exactly by replaying the same trace and
   configuration up to the recorded cycle: (cycle, cursor, counters) is
   enough to both restart and *verify* the restart — after replay the
   cursor and every statistics register must match, or the checkpoint
   belongs to a different trace/configuration. *)

type t = {
  cycle : int64;           (* major cycles completed *)
  cursor : int;            (* trace records consumed *)
  counters : (string * int64) list;  (* Stats.to_assoc snapshot *)
}

let make ~cycle ~cursor ~counters = { cycle; cursor; counters }

let magic = "RSCP"
let version = 1

let to_string t =
  let b = Buffer.create 256 in
  Buffer.add_string b (Printf.sprintf "%s %d\n" magic version);
  Buffer.add_string b (Printf.sprintf "cycle %Ld\n" t.cycle);
  Buffer.add_string b (Printf.sprintf "cursor %d\n" t.cursor);
  List.iter
    (fun (name, value) ->
      Buffer.add_string b (Printf.sprintf "counter %s %Ld\n" name value))
    t.counters;
  Buffer.contents b

let of_string data =
  let lines =
    String.split_on_char '\n' data
    |> List.filter (fun line -> String.length line > 0)
  in
  match lines with
  | [] -> Error "empty checkpoint"
  | header :: rest ->
      if not (String.equal header (Printf.sprintf "%s %d" magic version))
      then Error (Printf.sprintf "bad checkpoint header %S" header)
      else begin
        let cycle = ref None in
        let cursor = ref None in
        let counters = ref [] in
        let bad = ref None in
        List.iter
          (fun line ->
            match !bad with
            | Some _ -> ()
            | None -> (
                match String.split_on_char ' ' line with
                | [ "cycle"; v ] -> (
                    match Int64.of_string_opt v with
                    | Some v -> cycle := Some v
                    | None -> bad := Some line)
                | [ "cursor"; v ] -> (
                    match int_of_string_opt v with
                    | Some v -> cursor := Some v
                    | None -> bad := Some line)
                | [ "counter"; name; v ] -> (
                    match Int64.of_string_opt v with
                    | Some v -> counters := (name, v) :: !counters
                    | None -> bad := Some line)
                | _ -> bad := Some line))
          rest;
        match (!bad, !cycle, !cursor) with
        | Some line, _, _ ->
            Error (Printf.sprintf "bad checkpoint line %S" line)
        | None, None, _ -> Error "checkpoint missing cycle"
        | None, _, None -> Error "checkpoint missing cursor"
        | None, Some cycle, Some cursor ->
            Ok { cycle; cursor; counters = List.rev !counters }
      end

let save path t =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (* resim-lint: allow — writes to an explicit file channel, not the console *)
    (fun () -> output_string oc (to_string t))

let load path =
  match open_in_bin path with
  | exception Sys_error message -> Error message
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> of_string (really_input_string ic (in_channel_length ic)))

let pp ppf t =
  Format.fprintf ppf "checkpoint: cycle %Ld, cursor %d, %d counters" t.cycle
    t.cursor (List.length t.counters)
