(* Lightweight replay checkpoint.

   The engine is deterministic, so a run truncated by a cycle or
   wall-clock budget can resume exactly by replaying the same trace and
   configuration up to the recorded cycle: (cycle, cursor, counters) is
   enough to both restart and *verify* the restart — after replay the
   cursor and every statistics register must match, or the checkpoint
   belongs to a different trace/configuration. *)

type t = {
  cycle : int64;           (* major cycles completed *)
  cursor : int;            (* trace records consumed *)
  counters : (string * int64) list;  (* Stats.to_assoc snapshot *)
  engine : string option;  (* engine-version/config-hash identity *)
}

let make ?engine ~cycle ~cursor ~counters () =
  { cycle; cursor; counters; engine }

let with_engine engine t = { t with engine = Some engine }

let magic = "RSCP"
let version = 1

let to_string t =
  let b = Buffer.create 256 in
  Buffer.add_string b (Printf.sprintf "%s %d\n" magic version);
  Buffer.add_string b (Printf.sprintf "cycle %Ld\n" t.cycle);
  Buffer.add_string b (Printf.sprintf "cursor %d\n" t.cursor);
  (match t.engine with
  | Some engine -> Buffer.add_string b (Printf.sprintf "engine %s\n" engine)
  | None -> ());
  List.iter
    (fun (name, value) ->
      Buffer.add_string b (Printf.sprintf "counter %s %Ld\n" name value))
    t.counters;
  Buffer.contents b

(* Structured parse errors in the Trace_fault style: a stable RSM-K
   code per malformation class, the 1-based line it was found on (0 for
   whole-document conditions) and a human reason. A malformed
   checkpoint must refuse the resume loudly — the old parser silently
   tolerated duplicate keys (last won) and accepted signed or hex
   numerals a writer never emits. *)

type error = { code : string; line : int; reason : string }

let error_to_string e =
  if e.line = 0 then Printf.sprintf "%s: %s" e.code e.reason
  else Printf.sprintf "%s: line %d: %s" e.code e.line e.reason

exception Bad of error

let fail ~code ~line reason = raise (Bad { code; line; reason })

(* The writer emits unsigned decimal only, so the reader accepts
   exactly that: no sign, no hex/octal/binary prefixes, no
   underscores. [of_string_opt] still rejects overflow. *)
let strict_decimal raw =
  if
    String.length raw > 0
    && String.for_all (fun c -> c >= '0' && c <= '9') raw
  then Int64.of_string_opt raw
  else None

let strict_decimal_int raw =
  match strict_decimal raw with
  | Some v when Int64.compare v (Int64.of_int max_int) <= 0 ->
      Some (Int64.to_int v)
  | Some _ | None -> None

let of_string data =
  let parse () =
    let numbered = ref [] in
    List.iteri
      (fun i line ->
        if String.length line > 0 then numbered := (i + 1, line) :: !numbered)
      (String.split_on_char '\n' data);
    match List.rev !numbered with
    | [] -> fail ~code:"RSM-K001" ~line:0 "empty checkpoint"
    | (header_line, header) :: rest ->
        let expected = Printf.sprintf "%s %d" magic version in
        if not (String.equal header expected) then
          fail ~code:"RSM-K002" ~line:header_line
            (Printf.sprintf "bad header %S (expected %S)" header expected);
        let cycle = ref None in
        let cursor = ref None in
        let engine = ref None in
        let counters = ref [] in
        let seen_counters = Hashtbl.create 16 in
        List.iter
          (fun (line, text) ->
            match String.split_on_char ' ' text with
            | [ "cycle"; v ] -> (
                if Option.is_some !cycle then
                  fail ~code:"RSM-K005" ~line "duplicate key cycle";
                match strict_decimal v with
                | Some v -> cycle := Some v
                | None ->
                    fail ~code:"RSM-K004" ~line
                      (Printf.sprintf "unparseable cycle value %S" v))
            | [ "cursor"; v ] -> (
                if Option.is_some !cursor then
                  fail ~code:"RSM-K005" ~line "duplicate key cursor";
                match strict_decimal_int v with
                | Some v -> cursor := Some v
                | None ->
                    fail ~code:"RSM-K004" ~line
                      (Printf.sprintf "unparseable cursor value %S" v))
            | [ "engine"; v ] ->
                if Option.is_some !engine then
                  fail ~code:"RSM-K005" ~line "duplicate key engine";
                if String.length v = 0 then
                  fail ~code:"RSM-K004" ~line "empty engine identity";
                engine := Some v
            | [ "counter"; name; v ] -> (
                if Hashtbl.mem seen_counters name then
                  fail ~code:"RSM-K005" ~line
                    (Printf.sprintf "duplicate counter %s" name);
                Hashtbl.add seen_counters name ();
                match strict_decimal v with
                | Some v -> counters := (name, v) :: !counters
                | None ->
                    fail ~code:"RSM-K004" ~line
                      (Printf.sprintf "unparseable counter %s value %S"
                         name v))
            | _ ->
                fail ~code:"RSM-K003" ~line
                  (Printf.sprintf "malformed line %S" text))
          rest;
        let cycle =
          match !cycle with
          | Some cycle -> cycle
          | None -> fail ~code:"RSM-K006" ~line:0 "missing required key cycle"
        in
        let cursor =
          match !cursor with
          | Some cursor -> cursor
          | None ->
              fail ~code:"RSM-K006" ~line:0 "missing required key cursor"
        in
        { cycle; cursor; counters = List.rev !counters; engine = !engine }
  in
  match parse () with
  | checkpoint -> Ok checkpoint
  | exception Bad error -> Error error

(* RSM-K007: engine-identity mismatch. A handle stamped by one engine
   build/configuration must not seed a verification replay on another —
   the replay would "verify" against the wrong machine. Handles without
   a stamp (legacy, or hand-built in tests) still rely on the replay
   verification alone. *)
let verify_engine ~expected t =
  match t.engine with
  | None -> Ok ()
  | Some engine when String.equal engine expected -> Ok ()
  | Some engine ->
      Error
        { code = "RSM-K007";
          line = 0;
          reason =
            Printf.sprintf
              "engine identity mismatch: checkpoint %s, this build %s" engine
              expected }

let save path t =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (* resim-lint: allow — writes to an explicit file channel, not the console *)
    (fun () -> output_string oc (to_string t))

let load path =
  match open_in_bin path with
  | exception Sys_error message ->
      Error { code = "RSM-K000"; line = 0; reason = message }
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> of_string (really_input_string ic (in_channel_length ic)))

let pp ppf t =
  Format.fprintf ppf "checkpoint: cycle %Ld, cursor %d, %d counters" t.cycle
    t.cursor (List.length t.counters)
