(** Lightweight replay checkpoint for bounded runs.

    The engine is deterministic, so a run truncated by a cycle or
    wall-clock budget resumes exactly by replaying the same trace and
    configuration up to the recorded cycle. The snapshot carries enough
    to verify the replay as well as to restart it: after stepping back
    to [cycle], the engine's cursor and every statistics register must
    equal the recorded values — a mismatch means the checkpoint belongs
    to a different trace or configuration and the resume is refused
    ({!Resim.resume_trace}). *)

type t = {
  cycle : int64;   (** major cycles completed when the run stopped *)
  cursor : int;    (** trace records consumed *)
  counters : (string * int64) list;  (** {!Stats.to_assoc} snapshot *)
  engine : string option;
      (** engine-version/config-hash identity ({!Resim.engine_identity})
          stamped at save time; [None] on legacy handles *)
}

val make :
  ?engine:string ->
  cycle:int64 -> cursor:int -> counters:(string * int64) list -> unit -> t

val with_engine : string -> t -> t
(** Stamp (or replace) the engine identity on a handle. *)

val to_string : t -> string
(** Stable line-oriented text form ([RSCP 1] header). *)

(** Structured parse failure, in the [Trace_fault] style: a stable
    RSM-K code per malformation class, the 1-based line it was found on
    (0 for whole-document conditions), and a human-readable reason.

    Codes: [RSM-K000] file unreadable, [RSM-K001] empty document,
    [RSM-K002] bad header, [RSM-K003] malformed line, [RSM-K004]
    unparseable value (values are strict unsigned decimal — no sign,
    hex or underscores), [RSM-K005] duplicate key or counter,
    [RSM-K006] missing required key, [RSM-K007] engine-identity
    mismatch ({!verify_engine}). *)
type error = { code : string; line : int; reason : string }

val error_to_string : error -> string

val verify_engine : expected:string -> t -> (unit, error) result
(** Refuse ([RSM-K007]) a handle stamped with a different engine
    identity than [expected] — a checkpoint taken on one engine
    build/configuration must not seed a verification replay on
    another. Unstamped handles pass; the replay verification is then
    the only guard. *)

val of_string : string -> (t, error) result
(** Strict parse: any malformation refuses the whole checkpoint (and
    with it the resume) rather than guessing — a checkpoint drives a
    verification replay, so a silently mis-read field would surface
    later as a baffling "wrong trace or configuration" refusal, or
    worse, verify against the wrong position. *)

val save : string -> t -> unit
(** Write to a file; raises [Sys_error] on IO failure. *)

val load : string -> (t, error) result
(** Read from a file; IO failures come back as [RSM-K000], parse
    failures with their RSM-K code. *)

val pp : Format.formatter -> t -> unit
