(** Lightweight replay checkpoint for bounded runs.

    The engine is deterministic, so a run truncated by a cycle or
    wall-clock budget resumes exactly by replaying the same trace and
    configuration up to the recorded cycle. The snapshot carries enough
    to verify the replay as well as to restart it: after stepping back
    to [cycle], the engine's cursor and every statistics register must
    equal the recorded values — a mismatch means the checkpoint belongs
    to a different trace or configuration and the resume is refused
    ({!Resim.resume_trace}). *)

type t = {
  cycle : int64;   (** major cycles completed when the run stopped *)
  cursor : int;    (** trace records consumed *)
  counters : (string * int64) list;  (** {!Stats.to_assoc} snapshot *)
}

val make :
  cycle:int64 -> cursor:int -> counters:(string * int64) list -> t

val to_string : t -> string
(** Stable line-oriented text form ([RSCP 1] header). *)

val of_string : string -> (t, string) result

val save : string -> t -> unit
(** Write to a file; raises [Sys_error] on IO failure. *)

val load : string -> (t, string) result
(** Read from a file; IO and parse failures are both [Error]. *)

val pp : Format.formatter -> t -> unit
