type t = {
  config : Config.t;
  mutable alu_used : int;
  mutable mult_used : int;
  div_busy_until : int array;
  mutable alu_allocations : int;
}

type request = Alu | Mult | Div

let no_unit = -1

let create (config : Config.t) =
  { config;
    alu_used = 0;
    mult_used = 0;
    div_busy_until = Array.make config.div_count 0;
    alu_allocations = 0 }

let begin_cycle t =
  t.alu_used <- 0;
  t.mult_used <- 0

(* Returns the operation latency, or [no_unit]: the result feeds the
   issue loop once per attempt, so it must not box an option. *)
let try_allocate t request ~now =
  match request with
  | Alu ->
      if t.alu_used < t.config.alu_count then begin
        t.alu_used <- t.alu_used + 1;
        t.alu_allocations <- t.alu_allocations + 1;
        t.config.alu_latency
      end
      else no_unit
  | Mult ->
      if t.mult_used < t.config.mult_count then begin
        t.mult_used <- t.mult_used + 1;
        t.config.mult_latency
      end
      else no_unit
  | Div ->
      let rec scan i =
        if i >= Array.length t.div_busy_until then no_unit
        else if t.div_busy_until.(i) <= now then begin
          t.div_busy_until.(i) <- now + t.config.div_latency;
          t.config.div_latency
        end
        else scan (i + 1)
      in
      scan 0

(* Staged-variant allocators: same bookkeeping, constants supplied by
   the caller's frozen configuration (they must equal [t.config]'s —
   the specialization layer's [matches] guarantees it). *)

let[@inline] try_allocate_alu t ~count ~latency =
  if t.alu_used < count then begin
    t.alu_used <- t.alu_used + 1;
    t.alu_allocations <- t.alu_allocations + 1;
    latency
  end
  else no_unit

let[@inline] try_allocate_mult t ~count ~latency =
  if t.mult_used < count then begin
    t.mult_used <- t.mult_used + 1;
    latency
  end
  else no_unit

let try_allocate_div t ~now ~latency =
  let rec scan i =
    if i >= Array.length t.div_busy_until then no_unit
    else if t.div_busy_until.(i) <= now then begin
      t.div_busy_until.(i) <- now + latency;
      latency
    end
    else scan (i + 1)
  in
  scan 0

let flush t = Array.fill t.div_busy_until 0 (Array.length t.div_busy_until) 0

let alu_busy_fraction t ~cycles =
  if Int64.equal cycles 0L || t.config.alu_count = 0 then 0.0
  else
    float_of_int t.alu_allocations
    /. (Int64.to_float cycles *. float_of_int t.config.alu_count)
