type pull_state = {
  pull : unit -> Resim_trace.Record.t option;
  mutable window : Resim_trace.Record.t array;
  mutable base : int;       (* absolute index of window.(0) *)
  mutable length : int;     (* valid records in the window *)
  mutable exhausted : bool;
  mutable reclaim_below : int;
}

type t =
  | Whole of Resim_trace.Record.t array
  | Windowed of pull_state

let of_array records = Whole records

let initial_window = 1024

let of_pull pull =
  Windowed
    { pull;
      window = Array.make initial_window Resim_trace.Record.
        { pc = 0; wrong_path = false; dest = 0; src1 = 0; src2 = 0;
          payload = Other { op_class = Alu } };
      base = 0;
      length = 0;
      exhausted = false;
      reclaim_below = 0 }

(* Drop reclaimed records by shifting the window down; grow it when the
   producer runs ahead of reclamation. *)
let compact state =
  let reclaimable = state.reclaim_below - state.base in
  let reclaimable = if reclaimable < 0 then 0 else reclaimable in
  let drop = if reclaimable < state.length then reclaimable else state.length in
  if drop > 0 then begin
    Array.blit state.window drop state.window 0 (state.length - drop);
    state.base <- state.base + drop;
    state.length <- state.length - drop
  end

let append state record =
  if state.length = Array.length state.window then begin
    compact state;
    if state.length = Array.length state.window then begin
      let bigger = Array.make (2 * Array.length state.window) record in
      Array.blit state.window 0 bigger 0 state.length;
      state.window <- bigger
    end
  end;
  state.window.(state.length) <- record;
  state.length <- state.length + 1

let rec fill_to state index =
  if state.base + state.length > index || state.exhausted then ()
  else
    match state.pull () with
    | Some record ->
        append state record;
        fill_to state index
    | None -> state.exhausted <- true

let at t index =
  match t with
  | Whole records ->
      if index < 0 then invalid_arg "Source.at: negative index"
      else if index < Array.length records then Some records.(index)
      else None
  | Windowed state ->
      if index < state.base then
        invalid_arg "Source.at: index already reclaimed";
      fill_to state index;
      if index < state.base + state.length then
        Some state.window.(index - state.base)
      else None

let get t index =
  match t with
  | Whole records ->
      if index < 0 || index >= Array.length records then
        invalid_arg "Source.get: out of range";
      records.(index)
  | Windowed state ->
      if index < state.base then
        invalid_arg "Source.get: index already reclaimed";
      fill_to state index;
      if index < state.base + state.length then
        state.window.(index - state.base)
      else invalid_arg "Source.get: past end of stream"

let has t index =
  match t with
  | Whole records -> index >= 0 && index < Array.length records
  | Windowed state ->
      if index < state.base then
        invalid_arg "Source.has: index already reclaimed";
      fill_to state index;
      index < state.base + state.length

let release_below t index =
  match t with
  | Whole _ -> ()
  | Windowed state ->
      if index > state.reclaim_below then begin
        state.reclaim_below <- index;
        (* Compact lazily but keep the window from growing without
           bound when the producer is bursty. *)
        if state.reclaim_below - state.base > Array.length state.window / 2
        then compact state
      end

let buffered t =
  match t with
  | Whole records -> Array.length records
  | Windowed state -> state.length
