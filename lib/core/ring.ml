(* Flat storage, sized lazily at the first push (a polymorphic ring has
   no dummy element to pre-fill with). Popped slots are not cleared —
   the stale reference is bounded by the ring's capacity and
   overwritten on reuse; [clear] drops the whole store. *)
type 'a t = {
  capacity : int;
  mutable slots : 'a array;  (* [||] until the first push *)
  mutable head : int;
  mutable length : int;
}

let create ~capacity =
  if capacity <= 0 then invalid_arg "Ring.create: capacity must be positive";
  { capacity; slots = [||]; head = 0; length = 0 }

let capacity t = t.capacity
let length t = t.length
let space t = t.capacity - t.length
let is_empty t = t.length = 0
let is_full t = t.length = t.capacity

(* [head + i] is always < 2 * capacity, so the wrap is a conditional
   subtract — [mod] would cost a hardware divide on every slot access,
   and the engine's ROB walks funnel through here. *)
let[@inline] index t i =
  let j = t.head + i in
  if j >= t.capacity then j - t.capacity else j

let push t value =
  if is_full t then failwith "Ring.push: full";
  if Array.length t.slots = 0 then t.slots <- Array.make t.capacity value;
  t.slots.(index t t.length) <- value;
  t.length <- t.length + 1

let front t =
  if is_empty t then invalid_arg "Ring.front: empty";
  t.slots.(t.head)

let drop t =
  if is_empty t then invalid_arg "Ring.drop: empty";
  let next = t.head + 1 in
  t.head <- (if next >= t.capacity then 0 else next);
  t.length <- t.length - 1

let take t =
  let value = front t in
  drop t;
  value

let peek t = if is_empty t then None else Some t.slots.(t.head)

let pop t = if is_empty t then None else Some (take t)

let get t i =
  if i < 0 || i >= t.length then invalid_arg "Ring.get: out of range";
  t.slots.(index t i)

let iteri f t =
  for i = 0 to t.length - 1 do
    f i (get t i)
  done

let iter f t = iteri (fun _ value -> f value) t

let exists predicate t =
  let rec scan i =
    i < t.length && (predicate (get t i) || scan (i + 1))
  in
  scan 0

let fold f init t =
  let acc = ref init in
  iter (fun value -> acc := f !acc value) t;
  !acc

(* Observer/debug path only, never per-cycle. resim-lint: allow *)
let to_list t = List.rev (fold (fun acc value -> value :: acc) [] t)

let clear t =
  t.slots <- [||];
  t.head <- 0;
  t.length <- 0

let drop_while_back predicate t =
  let dropped = ref 0 in
  let continue_ = ref true in
  while !continue_ && t.length > 0 do
    let last = get t (t.length - 1) in
    if predicate last then begin
      t.length <- t.length - 1;
      incr dropped
    end
    else continue_ := false
  done;
  !dropped
