type t = { ring : Entry.t Ring.t }

let create ~entries = { ring = Ring.create ~capacity:entries }

let capacity t = Ring.capacity t.ring
let length t = Ring.length t.ring
let is_full t = Ring.is_full t.ring
let is_empty t = Ring.is_empty t.ring

let dispatch t entry = Ring.push t.ring entry

let word_address (entry : Entry.t) =
  match entry.record.payload with
  | Resim_trace.Record.Memory { address; _ } -> address lsr 2
  | Resim_trace.Record.Branch _ | Resim_trace.Record.Other _ ->
      invalid_arg "Lsq.word_address: not a memory operation"

(* A store's address is known once its base register (src1) is
   available; its data once src2 is. *)
let store_address_known (store : Entry.t) = store.src1_producer < 0
let store_data_ready (store : Entry.t) = store.src2_producer < 0

(* Decide one load's readiness by scanning every older store, nearest
   first: an unknown older address blocks; a matching known address
   forwards once the store data is ready; otherwise the load needs a
   D-cache read port. *)
let classify_load t ~position (load : Entry.t) =
  if not (Entry.sources_ready load) then Entry.Load_not_checked
  else begin
    let load_word = word_address load in
    let decision = ref Entry.Load_needs_port in
    (try
       for older = position - 1 downto 0 do
         let candidate = Ring.get t.ring older in
         if Entry.is_store candidate then
           if not (store_address_known candidate) then begin
             decision := Entry.Load_blocked;
             raise Exit
           end
           else if word_address candidate = load_word then begin
             decision :=
               (if store_data_ready candidate then Entry.Load_forward
                else Entry.Load_blocked);
             raise Exit
           end
       done
     with Exit -> ());
    !decision
  end

let refresh t =
  Ring.iteri
    (fun position (entry : Entry.t) ->
      if Entry.is_load entry && Entry.is_dispatched entry then
        entry.load_readiness <- classify_load t ~position entry)
    t.ring

(* Incremental variants for the event-driven scheduler: instead of the
   per-cycle full refresh, a load is reclassified only when one of its
   classification inputs changes — its own sources resolve
   ([refresh_entry]), or an older store's address/data resolves or the
   store retires ([refresh_younger]). Classification of a load depends
   only on older stores, so a squash (which removes a suffix) never
   requires reclassifying the survivors. *)

let position_of t (entry : Entry.t) =
  let n = Ring.length t.ring in
  let rec scan i =
    if i >= n then None
    else if (Ring.get t.ring i).Entry.id = entry.id then Some i
    else scan (i + 1)
  in
  scan 0

let refresh_entry t (entry : Entry.t) =
  if Entry.is_load entry && Entry.is_dispatched entry then
    match position_of t entry with
    | Some position ->
        entry.load_readiness <- classify_load t ~position entry
    | None -> ()

let refresh_younger t ~than_id ~reclassified =
  Ring.iteri
    (fun position (entry : Entry.t) ->
      if
        entry.id > than_id && Entry.is_load entry
        && Entry.is_dispatched entry
      then begin
        entry.load_readiness <- classify_load t ~position entry;
        reclassified entry
      end)
    t.ring

let release_head t entry =
  match Ring.pop t.ring with
  | Some head when head.Entry.id = entry.Entry.id -> ()
  | Some head ->
      failwith
        (Printf.sprintf
           "Lsq.release_head: committing #%d but queue head is #%d"
           entry.Entry.id head.Entry.id)
  | None -> failwith "Lsq.release_head: queue empty"

let squash_younger t ~than_id =
  Ring.drop_while_back (fun (entry : Entry.t) -> entry.id > than_id) t.ring

let iter f t = Ring.iter f t.ring
