(** Small fixed-range histograms for per-cycle distributions (commit
    width, issue width, queue occupancy). Values above the range are
    clamped into the last bin.

    The representation is exposed for the engine specialization layer
    (DESIGN.md §14), which inlines the per-cycle {!observe}. Treat the
    type as private elsewhere. *)

type t = { counts : int array; mutable total : int }

val create : bins:int -> t
(** [bins] ≥ 1; bin [i] counts observations of value [i]. *)

val bins : t -> int
val observe : t -> int -> unit
(** Negative values clamp to 0, values ≥ [bins] to the last bin. *)

val count : t -> int -> int64
val total : t -> int64
val mean : t -> float
val fraction_at : t -> int -> float
val pp : Format.formatter -> t -> unit
(** Non-empty bins as [value:count] pairs. *)
