(** Shared JSON string handling for every hand-rolled emitter.

    The repository deliberately carries no JSON dependency; each layer
    builds its documents with [Buffer] and [Printf]. What they must
    share is the escaping of free-form strings — kernel names, job
    labels, fault reasons, profiler section names — so that a quote or
    backslash in any of them can never produce an invalid document.
    [escape] is that single escape routine; [validate] is a strict
    RFC-8259 parser used by the test suite's "every emitted document
    parses" property and by smoke tooling. *)

val escape : string -> string
(** Escape a string for inclusion between double quotes in a JSON
    document: ["\""], ["\\"] and all control characters below 0x20
    (["\n"]/["\r"]/["\t"] as their short forms, the rest as [\u00xx]).
    Everything else passes through byte-for-byte. *)

val add_string : Buffer.t -> string -> unit
(** Append [s] to the buffer as a quoted, escaped JSON string. *)

val quote : string -> string
(** [quote s] is ["\"" ^ escape s ^ "\""]. *)

(** Parsed JSON document. Object members keep their source order;
    duplicate keys are preserved ([member] returns the first). *)
type value =
  | Null
  | Bool of bool
  | Number of float
  | String of string
  | List of value list
  | Obj of (string * value) list

val parse : string -> (value, string) result
(** Strict whole-document RFC-8259 parse: objects, arrays, strings with
    escapes ([\uXXXX] decoded to UTF-8), numbers (floats and
    exponents), [true], [false], [null]. [Error] carries a byte offset
    and reason. The wire protocol ({!Resim_serve.Protocol}) reads every
    request and event through this. *)

val validate : string -> (unit, string) result
(** [parse] with the tree discarded. Used to assert that every emitter
    in the tree produces well-formed documents. *)

val member : string -> value -> value option
(** First member with that key of an [Obj]; [None] otherwise. *)

val string_value : value -> string option
val number_value : value -> float option
val bool_value : value -> bool option

val int_value : value -> int option
(** [Some] only for numbers that are exact integers within 10{^15}. *)
