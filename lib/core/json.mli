(** Shared JSON string handling for every hand-rolled emitter.

    The repository deliberately carries no JSON dependency; each layer
    builds its documents with [Buffer] and [Printf]. What they must
    share is the escaping of free-form strings — kernel names, job
    labels, fault reasons, profiler section names — so that a quote or
    backslash in any of them can never produce an invalid document.
    [escape] is that single escape routine; [validate] is a strict
    RFC-8259 parser used by the test suite's "every emitted document
    parses" property and by smoke tooling. *)

val escape : string -> string
(** Escape a string for inclusion between double quotes in a JSON
    document: ["\""], ["\\"] and all control characters below 0x20
    (["\n"]/["\r"]/["\t"] as their short forms, the rest as [\u00xx]).
    Everything else passes through byte-for-byte. *)

val add_string : Buffer.t -> string -> unit
(** Append [s] to the buffer as a quoted, escaped JSON string. *)

val quote : string -> string
(** [quote s] is ["\"" ^ escape s ^ "\""]. *)

val validate : string -> (unit, string) result
(** Strict whole-document JSON parse: objects, arrays, strings with
    escapes, numbers (including floats and exponents), [true], [false],
    [null]. [Error] carries a byte offset and reason. Used to assert
    that every emitter in the tree produces well-formed documents. *)
