(* Counters are plain [int ref]s: incrementing a boxed int64 allocates
   on every bump, and the engine bumps several counters per simulated
   instruction. 63 bits of headroom is far beyond any reachable run;
   the API still reports int64, converted only when read. *)
type counter = int ref

type t = {
  major_cycles : counter;
  fetched : counter;
  fetched_wrong_path : counter;
  discarded_wrong_path : counter;
  dispatched : counter;
  issued : counter;
  committed : counter;
  committed_branches : counter;
  committed_cond_branches : counter;
  committed_loads : counter;
  committed_stores : counter;
  committed_mult_div : counter;
  mispredictions : counter;
  misfetches : counter;
  forwarded_loads : counter;
  icache_stall_cycles : counter;
  fetch_penalty_cycles : counter;
  rob_full_stalls : counter;
  lsq_full_stalls : counter;
  write_port_stalls : counter;
  read_port_stalls : counter;
  (* Stall-cause taxonomy for the observability layer: front-end
     starvation, structural-hazard issue stalls and per-cause recovery
     attribution of the fetch penalty cycles. *)
  ifq_empty_stalls : counter;
  fu_busy_stalls : counter;
  misfetch_recovery_cycles : counter;
  mispredict_recovery_cycles : counter;
  (* Faults survived in degraded mode (codec resyncs, salvage decodes):
     non-zero marks every derived figure as approximate. *)
  degraded_faults : counter;
  commit_width : Histogram.t;
  issue_width : Histogram.t;
  mutable ifq_occupancy_sum : int;
  mutable rob_occupancy_sum : int;
  mutable lsq_occupancy_sum : int;
  mutable occupancy_samples : int;
}

let create () =
  { major_cycles = ref 0;
    fetched = ref 0;
    fetched_wrong_path = ref 0;
    discarded_wrong_path = ref 0;
    dispatched = ref 0;
    issued = ref 0;
    committed = ref 0;
    committed_branches = ref 0;
    committed_cond_branches = ref 0;
    committed_loads = ref 0;
    committed_stores = ref 0;
    committed_mult_div = ref 0;
    mispredictions = ref 0;
    misfetches = ref 0;
    forwarded_loads = ref 0;
    icache_stall_cycles = ref 0;
    fetch_penalty_cycles = ref 0;
    rob_full_stalls = ref 0;
    lsq_full_stalls = ref 0;
    write_port_stalls = ref 0;
    read_port_stalls = ref 0;
    ifq_empty_stalls = ref 0;
    fu_busy_stalls = ref 0;
    misfetch_recovery_cycles = ref 0;
    mispredict_recovery_cycles = ref 0;
    degraded_faults = ref 0;
    commit_width = Histogram.create ~bins:17;
    issue_width = Histogram.create ~bins:17;
    ifq_occupancy_sum = 0;
    rob_occupancy_sum = 0;
    lsq_occupancy_sum = 0;
    occupancy_samples = 0 }

let incr t field = Stdlib.incr (field t)
let add t field n = (field t) := !(field t) + n

(* The staged engine variants (Engine.Staged, DESIGN.md §14) fetch the
   underlying cells once at install time and bump them with raw ref
   arithmetic — the accessor indirection above costs two calls per
   bump, which the specialized per-cycle code cannot afford. *)
let live field t : int ref = field t

let major_cycles t = t.major_cycles
let fetched t = t.fetched
let fetched_wrong_path t = t.fetched_wrong_path
let discarded_wrong_path t = t.discarded_wrong_path
let dispatched t = t.dispatched
let issued t = t.issued
let committed t = t.committed
let committed_branches t = t.committed_branches
let committed_cond_branches t = t.committed_cond_branches
let committed_loads t = t.committed_loads
let committed_stores t = t.committed_stores
let committed_mult_div t = t.committed_mult_div
let mispredictions t = t.mispredictions
let misfetches t = t.misfetches
let forwarded_loads t = t.forwarded_loads
let icache_stall_cycles t = t.icache_stall_cycles
let fetch_penalty_cycles t = t.fetch_penalty_cycles
let rob_full_stalls t = t.rob_full_stalls
let lsq_full_stalls t = t.lsq_full_stalls
let write_port_stalls t = t.write_port_stalls
let read_port_stalls t = t.read_port_stalls
let ifq_empty_stalls t = t.ifq_empty_stalls
let fu_busy_stalls t = t.fu_busy_stalls
let misfetch_recovery_cycles t = t.misfetch_recovery_cycles
let mispredict_recovery_cycles t = t.mispredict_recovery_cycles
let degraded_faults t = t.degraded_faults

let mark_degraded ?(faults = 1) t =
  t.degraded_faults := !(t.degraded_faults) + faults

let degraded t = !(t.degraded_faults) > 0

let commit_width_histogram t = t.commit_width
let issue_width_histogram t = t.issue_width
let observe_commit_width t width = Histogram.observe t.commit_width width
let observe_issue_width t width = Histogram.observe t.issue_width width

let sample_occupancy t ~ifq ~rob ~lsq =
  t.ifq_occupancy_sum <- t.ifq_occupancy_sum + ifq;
  t.rob_occupancy_sum <- t.rob_occupancy_sum + rob;
  t.lsq_occupancy_sum <- t.lsq_occupancy_sum + lsq;
  t.occupancy_samples <- t.occupancy_samples + 1

let mean sum t =
  if t.occupancy_samples = 0 then 0.0
  else float_of_int sum /. float_of_int t.occupancy_samples

let mean_ifq_occupancy t = mean t.ifq_occupancy_sum t
let mean_rob_occupancy t = mean t.rob_occupancy_sum t
let mean_lsq_occupancy t = mean t.lsq_occupancy_sum t

let ratio num den = if den = 0 then 0.0 else float_of_int num /. float_of_int den
let ipc t = ratio !(t.committed) !(t.major_cycles)
let fetched_per_cycle t = ratio !(t.fetched) !(t.major_cycles)

let get_int field t = !(field t)
let get field t = Int64.of_int !(field t)

let to_assoc t =
  List.map
    (fun (name, value) -> (name, Int64.of_int value))
    [ ("major_cycles", !(t.major_cycles));
      ("fetched", !(t.fetched));
      ("fetched_wrong_path", !(t.fetched_wrong_path));
      ("discarded_wrong_path", !(t.discarded_wrong_path));
      ("dispatched", !(t.dispatched));
      ("issued", !(t.issued));
      ("committed", !(t.committed));
      ("committed_branches", !(t.committed_branches));
      ("committed_cond_branches", !(t.committed_cond_branches));
      ("committed_loads", !(t.committed_loads));
      ("committed_stores", !(t.committed_stores));
      ("committed_mult_div", !(t.committed_mult_div));
      ("mispredictions", !(t.mispredictions));
      ("misfetches", !(t.misfetches));
      ("forwarded_loads", !(t.forwarded_loads));
      ("icache_stall_cycles", !(t.icache_stall_cycles));
      ("fetch_penalty_cycles", !(t.fetch_penalty_cycles));
      ("rob_full_stalls", !(t.rob_full_stalls));
      ("lsq_full_stalls", !(t.lsq_full_stalls));
      ("write_port_stalls", !(t.write_port_stalls));
      ("read_port_stalls", !(t.read_port_stalls));
      ("ifq_empty_stalls", !(t.ifq_empty_stalls));
      ("fu_busy_stalls", !(t.fu_busy_stalls));
      ("misfetch_recovery_cycles", !(t.misfetch_recovery_cycles));
      ("mispredict_recovery_cycles", !(t.mispredict_recovery_cycles));
      ("degraded_faults", !(t.degraded_faults)) ]

(* ------------------------------------------------------------------ *)
(* Metrics export: the observability layer's machine-readable view.
   [stall_causes] is the stable taxonomy (DESIGN.md §11) consumed by
   `resim simulate --metrics`, the sweep report and `bench --json`;
   [to_json]/[csv_row] are the stable emitters. Every derived ratio
   guards the zero-cycle case, so metrics from an empty or fully
   truncated run are well-formed zeros rather than NaN/inf. *)

let stall_causes t =
  [ ("ifq_empty", Int64.of_int !(t.ifq_empty_stalls));
    ("rob_full", Int64.of_int !(t.rob_full_stalls));
    ("lsq_full", Int64.of_int !(t.lsq_full_stalls));
    ("fu_busy", Int64.of_int !(t.fu_busy_stalls));
    ("rd_port", Int64.of_int !(t.read_port_stalls));
    ("wr_port", Int64.of_int !(t.write_port_stalls));
    ("icache", Int64.of_int !(t.icache_stall_cycles));
    ("misfetch_recovery", Int64.of_int !(t.misfetch_recovery_cycles));
    ("mispredict_recovery", Int64.of_int !(t.mispredict_recovery_cycles)) ]

let fetch_penalty_fraction t =
  ratio !(t.fetch_penalty_cycles) !(t.major_cycles)

let commit_starved_fraction t =
  (* Major cycles that committed nothing — the paper's first question
     when localizing lost throughput. *)
  if Int64.equal (Histogram.total t.commit_width) 0L then 0.0
  else Histogram.fraction_at t.commit_width 0

(* Counter names are internal identifiers today, but the document must
   stay well-formed whatever they become — one shared escape routine
   for every emitter in the tree. *)
let json_escape = Json.escape

let add_histogram buffer histogram =
  Buffer.add_char buffer '[';
  let first = ref true in
  for value = 0 to Histogram.bins histogram - 1 do
    let count = Histogram.count histogram value in
    if not (Int64.equal count 0L) then begin
      if not !first then Buffer.add_string buffer ", ";
      first := false;
      Buffer.add_string buffer
        (Printf.sprintf "{\"value\": %d, \"count\": %Ld}" value count)
    end
  done;
  Buffer.add_char buffer ']'

let to_json t =
  let buffer = Buffer.create 1024 in
  Buffer.add_string buffer "{\n  \"counters\": {";
  List.iteri
    (fun index (name, value) ->
      if index > 0 then Buffer.add_string buffer ", ";
      Buffer.add_string buffer
        (Printf.sprintf "\"%s\": %Ld" (json_escape name) value))
    (to_assoc t);
  Buffer.add_string buffer "},\n  \"stall_causes\": {";
  List.iteri
    (fun index (name, value) ->
      if index > 0 then Buffer.add_string buffer ", ";
      Buffer.add_string buffer (Printf.sprintf "\"%s\": %Ld" name value))
    (stall_causes t);
  Buffer.add_string buffer "},\n  \"derived\": {";
  Buffer.add_string buffer
    (Printf.sprintf
       "\"ipc\": %.6f, \"fetched_per_cycle\": %.6f, \
        \"fetch_penalty_fraction\": %.6f, \"commit_starved_fraction\": %.6f, \
        \"mean_ifq_occupancy\": %.6f, \"mean_rob_occupancy\": %.6f, \
        \"mean_lsq_occupancy\": %.6f"
       (ipc t) (fetched_per_cycle t) (fetch_penalty_fraction t)
       (commit_starved_fraction t) (mean_ifq_occupancy t)
       (mean_rob_occupancy t) (mean_lsq_occupancy t));
  Buffer.add_string buffer "},\n  \"commit_width\": ";
  add_histogram buffer t.commit_width;
  Buffer.add_string buffer ",\n  \"issue_width\": ";
  add_histogram buffer t.issue_width;
  Buffer.add_string buffer
    (Printf.sprintf ",\n  \"degraded\": %b\n}\n" (degraded t));
  Buffer.contents buffer

let csv_header () = String.concat "," (List.map fst (to_assoc (create ())))

let csv_row t =
  String.concat "," (List.map (fun (_, v) -> Int64.to_string v) (to_assoc t))

let pp ppf t =
  if degraded t then
    Format.fprintf ppf "DEGRADED: %d fault(s) survived in degraded mode@\n"
      !(t.degraded_faults);
  Format.fprintf ppf
    "@[<v>major cycles: %d@,\
     fetched: %d (%d wrong-path, %d discarded)@,\
     dispatched: %d, issued: %d, committed: %d (IPC %.3f)@,\
     branches: %d committed (%d conditional), %d squashes, %d misfetches@,\
     memory: %d loads (%d forwarded), %d stores@,\
     long ops: %d mult/div@,\
     stalls: %d rob-full, %d lsq-full, %d rd-port, %d wr-port, \
     %d ifq-empty, %d fu-busy@,\
     fetch: %d icache-stall cycles, %d penalty cycles \
     (%d misfetch, %d mispredict recovery)@,\
     occupancy: IFQ %.2f, ROB %.2f, LSQ %.2f@,\
     commit width: %a@,\
     issue width: %a@]"
    !(t.major_cycles) !(t.fetched) !(t.fetched_wrong_path)
    !(t.discarded_wrong_path) !(t.dispatched) !(t.issued) !(t.committed)
    (ipc t) !(t.committed_branches) !(t.committed_cond_branches)
    !(t.mispredictions) !(t.misfetches) !(t.committed_loads)
    !(t.forwarded_loads) !(t.committed_stores) !(t.committed_mult_div)
    !(t.rob_full_stalls) !(t.lsq_full_stalls) !(t.read_port_stalls)
    !(t.write_port_stalls) !(t.ifq_empty_stalls) !(t.fu_busy_stalls)
    !(t.icache_stall_cycles) !(t.fetch_penalty_cycles)
    !(t.misfetch_recovery_cycles) !(t.mispredict_recovery_cycles)
    (mean_ifq_occupancy t) (mean_rob_occupancy t)
    (mean_lsq_occupancy t) Histogram.pp t.commit_width Histogram.pp
    t.issue_width
