(* The one blessed lock bracket. The two manual Mutex calls below are
   the implementation of the combinator itself and carry the lock-impl
   annotation that exempts them from RSM-D008; everything else in the
   tree uses [with_lock]. *)

let with_lock mutex f =
  Mutex.lock mutex (* resim-dsafe: lock-impl *);
  Fun.protect
    ~finally:(fun () -> Mutex.unlock mutex (* resim-dsafe: lock-impl *))
    f
