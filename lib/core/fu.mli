(** Functional-unit pool.

    The reference processor has four single-cycle ALUs, one 3-cycle
    multiplier and one 10-cycle divider. ALUs and the multiplier are
    pipelined (one new operation per unit per cycle); the divider is not
    — it stays busy for its full latency. Branches and address
    generation execute on ALUs. *)

type t

type request = Alu | Mult | Div

val create : Config.t -> t

val begin_cycle : t -> unit
(** Reset per-cycle allocation counts; call once per major cycle. *)

val no_unit : int
(** Negative sentinel returned by {!try_allocate} when no unit is free. *)

val try_allocate : t -> request -> now:int -> int
(** The operation latency when a unit of the requested class accepted
    the operation this cycle, [no_unit] otherwise. Returns a bare [int]
    rather than an option: the issue loop calls this once per candidate
    per cycle and must not allocate. *)

val flush : t -> unit
(** Squash: abandon in-flight work (frees the divider). *)

val alu_busy_fraction : t -> cycles:int64 -> float
(** Mean ALU allocations per cycle divided by ALU count. *)
