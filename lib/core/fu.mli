(** Functional-unit pool.

    The reference processor has four single-cycle ALUs, one 3-cycle
    multiplier and one 10-cycle divider. ALUs and the multiplier are
    pipelined (one new operation per unit per cycle); the divider is not
    — it stays busy for its full latency. Branches and address
    generation execute on ALUs.

    The representation is exposed for the engine specialization layer
    (DESIGN.md §14), which inlines allocation in its issue loop.
    [div_busy_until.(i)] is the first cycle divider [i] is free again;
    [alu_allocations] feeds {!alu_busy_fraction}. Treat the type as
    private elsewhere. *)

type t = {
  config : Config.t;
  mutable alu_used : int;
  mutable mult_used : int;
  div_busy_until : int array;
  mutable alu_allocations : int;
}

type request = Alu | Mult | Div

val create : Config.t -> t

val begin_cycle : t -> unit
(** Reset per-cycle allocation counts; call once per major cycle. *)

val no_unit : int
(** Negative sentinel returned by {!try_allocate} when no unit is free. *)

val try_allocate : t -> request -> now:int -> int
(** The operation latency when a unit of the requested class accepted
    the operation this cycle, [no_unit] otherwise. Returns a bare [int]
    rather than an option: the issue loop calls this once per candidate
    per cycle and must not allocate. *)

(** Constant-parameterized allocators for the staged engine variants
    (DESIGN.md §14): identical bookkeeping to {!try_allocate}, but the
    unit count and latency come from the caller's frozen configuration
    instead of a [Config] field read per attempt. The caller guarantees
    they equal the pool's configuration ({!Staged.matches} checks). *)

val try_allocate_alu : t -> count:int -> latency:int -> int

val try_allocate_mult : t -> count:int -> latency:int -> int

val try_allocate_div : t -> now:int -> latency:int -> int

val flush : t -> unit
(** Squash: abandon in-flight work (frees the divider). *)

val alu_busy_fraction : t -> cycles:int64 -> float
(** Mean ALU allocations per cycle divided by ALU count. *)
