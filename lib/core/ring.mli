(** Bounded circular buffers — the hardware queues (IFQ, decouple buffer,
    LSQ ordering) of the simulated processor.

    The representation is exposed for the engine specialization layer
    (DESIGN.md §14): the staged per-cycle code inlines the constant-time
    operations, which a non-flambda build would otherwise leave as
    out-of-line calls. Treat the type as private elsewhere — construct
    with {!create} and mutate only through the operations below. *)

type 'a t = {
  capacity : int;
  mutable slots : 'a array;  (* [[||]] until the first push *)
  mutable head : int;
  mutable length : int;
}

val create : capacity:int -> 'a t
(** Raises [Invalid_argument] when [capacity <= 0]. *)

val capacity : 'a t -> int
val length : 'a t -> int
val space : 'a t -> int
val is_empty : 'a t -> bool
val is_full : 'a t -> bool

val push : 'a t -> 'a -> unit
(** Append at the tail. Raises [Failure] when full. *)

val peek : 'a t -> 'a option
(** Oldest element. *)

val pop : 'a t -> 'a option
(** Remove and return the oldest element. *)

val front : 'a t -> 'a
(** [peek] without the option — allocation-free; raises
    [Invalid_argument] when empty. Every record funnels through two
    rings per cycle, so the engine uses these unboxed accessors. *)

val take : 'a t -> 'a
(** [pop] without the option; raises [Invalid_argument] when empty. *)

val drop : 'a t -> unit
(** Remove the oldest element; raises [Invalid_argument] when empty. *)

val get : 'a t -> int -> 'a
(** [get t i] is the element [i] places from the head (0 = oldest).
    Raises [Invalid_argument] when out of range. *)

val iter : ('a -> unit) -> 'a t -> unit
(** Oldest to newest. *)

val iteri : (int -> 'a -> unit) -> 'a t -> unit
val exists : ('a -> bool) -> 'a t -> bool
val fold : ('acc -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc
val to_list : 'a t -> 'a list
val clear : 'a t -> unit

val drop_while_back : ('a -> bool) -> 'a t -> int
(** Remove elements from the tail (newest first) while the predicate
    holds; returns how many were removed. Used by squash. *)
