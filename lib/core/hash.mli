(** Content hashing for the server's result cache and for checkpoint
    engine identity: FNV-1a over 64 bits, rendered as 16 lowercase hex
    digits (filesystem- and wire-safe). Not cryptographic — the keys
    guard against accidental reuse, not adversaries. *)

val string : string -> string
(** Hash of the bytes of [s]. *)

val strings : string list -> string
(** Hash of a part list; parts are length-prefixed so the grouping is
    part of the identity ([["ab"; "c"]] ≠ [["a"; "bc"]]). *)

val config : Config.t -> string
(** Hash covering every configuration field (nested predictor/cache
    records included). Stable within an engine build — the scope a
    cache key needs, since {!Resim.engine_identity} pins the build. *)

val file : string -> (string, string) result
(** Hash of a file's bytes; [Error] carries the IO failure message. *)
