(** Reorder Buffer (the paper's RB): the in-order window of in-flight
    instructions, RUU-style. Head = oldest.

    The representation is exposed for the engine specialization layer
    (DESIGN.md §14), which inlines the per-cycle window walks.
    [sequence] is the id the next dispatched entry receives; ids in the
    window are consecutive, so the entry with id [i] sits
    [i - (sequence - length)] places from the ring head. Treat the type
    as private elsewhere. *)

type t = { ring : Entry.t Ring.t; mutable sequence : int }

val create : entries:int -> t
val capacity : t -> int
val length : t -> int
val is_full : t -> bool
val is_empty : t -> bool

val dispatch : t -> Resim_trace.Record.t -> Entry.t
(** Allocate the next entry (fails when full — check {!is_full} first). *)

val head : t -> Entry.t option
val pop_head : t -> Entry.t option
(** Commit: remove the oldest entry. *)

val first : t -> Entry.t
(** [head] without the option — allocation-free (commit re-reads the
    head every cycle); raises [Invalid_argument] when empty. *)

val drop_head : t -> unit
(** [pop_head] discarding the entry; raises [Invalid_argument] when
    empty. *)

val get : t -> int -> Entry.t
(** [get t i]: the entry [i] places from the head. *)

val iter : (Entry.t -> unit) -> t -> unit
(** Oldest to youngest. *)

val find : (Entry.t -> bool) -> t -> Entry.t option

val entry_by_id : t -> int -> Entry.t option
(** O(1) lookup of an in-flight entry by id (ids in the window are
    consecutive). [None] when the id has committed, was squashed, or has
    not been dispatched yet. *)

val squash_younger : t -> than_id:int -> int
(** Remove every entry whose id is greater than [than_id]; returns how
    many were removed. *)

val next_id : t -> int
(** The id the next dispatched entry will receive. *)
