type t = { ring : Entry.t Ring.t; mutable sequence : int }

let create ~entries = { ring = Ring.create ~capacity:entries; sequence = 0 }

let capacity t = Ring.capacity t.ring
let length t = Ring.length t.ring
let is_full t = Ring.is_full t.ring
let is_empty t = Ring.is_empty t.ring

let dispatch t record =
  let entry = Entry.make ~id:t.sequence record in
  t.sequence <- t.sequence + 1;
  Ring.push t.ring entry;
  entry

let head t = Ring.peek t.ring
let first t = Ring.front t.ring
let pop_head t = Ring.pop t.ring
let drop_head t = Ring.drop t.ring
let get t i = Ring.get t.ring i
let iter f t = Ring.iter f t.ring

let find predicate t =
  let found = ref None in
  (try
     Ring.iter
       (fun entry ->
         if predicate entry then begin
           found := Some entry;
           raise Exit
         end)
       t.ring
   with Exit -> ());
  !found

(* Entry ids in the window are consecutive (dispatch allocates them in
   sequence; a squash drops a suffix), so id -> slot is pure offset
   arithmetic from the head's id. *)
let entry_by_id t id =
  if Ring.is_empty t.ring then None
  else begin
    let head : Entry.t = Ring.front t.ring in
    let index = id - head.id in
    if index < 0 || index >= Ring.length t.ring then None
    else begin
      let entry = Ring.get t.ring index in
      assert (entry.Entry.id = id);
      Some entry
    end
  end

let squash_younger t ~than_id =
  Ring.drop_while_back (fun (entry : Entry.t) -> entry.id > than_id) t.ring

let next_id t = t.sequence
