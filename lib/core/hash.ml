(* Content hashing for the result cache and checkpoint identity.

   FNV-1a over 64 bits: trivially portable, allocation-free on the
   fold, and plenty for cache keying — a collision costs a spurious
   cache hit on a *completed result*, which the server only ever
   stores keyed by (engine identity, config hash, trace hash), so the
   adversary is an accident, not an attacker. Rendered as 16 lowercase
   hex digits so keys are filesystem- and wire-safe. *)

let fnv_offset = 0xcbf29ce484222325L
let fnv_prime = 0x100000001b3L

let fold_string seed s =
  let h = ref seed in
  String.iter
    (fun c ->
      h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) fnv_prime)
    s;
  !h

let to_hex h = Printf.sprintf "%016Lx" h
let string s = to_hex (fold_string fnv_offset s)

let strings parts =
  (* Length-prefix each part so ["ab"; "c"] and ["a"; "bc"] differ. *)
  let h = ref fnv_offset in
  List.iter
    (fun part ->
      h := fold_string !h (string_of_int (String.length part));
      h := fold_string !h "\x00";
      h := fold_string !h part)
    parts;
  to_hex !h

(* The configuration is hashed through its marshalled bytes: every
   field participates (nested predictor/cache records included), and
   for immutable data the encoding is deterministic within a build —
   which is the only scope a cache key needs, since the engine
   identity string already pins the build version. *)
let config (c : Config.t) = string (Marshal.to_string c [])

let file path =
  match open_in_bin path with
  | exception Sys_error message -> Error message
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          match really_input_string ic (in_channel_length ic) with
          | data -> Ok (string data)
          | exception Sys_error message -> Error message
          | exception End_of_file -> Error (path ^ ": truncated read"))
