type organization = Simple | Improved | Optimized

let organization_name = function
  | Simple -> "simple"
  | Improved -> "improved"
  | Optimized -> "optimized"

(* A match, not [= Optimized]: the engine consults this on per-cycle
   paths, where polymorphic equality on the variant would be an
   external caml_equal call (lint rule RSM-L002). *)
let is_optimized = function
  | Optimized -> true
  | Simple | Improved -> false

let minor_cycles_per_major organization ~width =
  match organization with
  | Simple -> (2 * width) + 3
  | Improved -> width + 4
  | Optimized -> width + 3

type scheduler = Scan | Event

let scheduler_name = function Scan -> "scan" | Event -> "event"

type t = {
  width : int;
  ifq_entries : int;
  decouple_entries : int;
  rob_entries : int;
  lsq_entries : int;
  alu_count : int;
  alu_latency : int;
  mult_count : int;
  mult_latency : int;
  div_count : int;
  div_latency : int;
  mem_read_ports : int;
  mem_write_ports : int;
  misfetch_penalty : int;
  misspeculation_penalty : int;
  organization : organization;
  scheduler : scheduler;
  predictor : Resim_bpred.Predictor.config;
  icache : Resim_cache.Cache.config;
  dcache : Resim_cache.Cache.config;
  cache_timing : Resim_cache.Cache.timing;
  l2cache : Resim_cache.Cache.config option;
  l2_timing : Resim_cache.Cache.timing;
}

let reference =
  { width = 4;
    ifq_entries = 4;
    decouple_entries = 4;
    rob_entries = 16;
    lsq_entries = 8;
    alu_count = 4;
    alu_latency = 1;
    mult_count = 1;
    mult_latency = 3;
    div_count = 1;
    div_latency = 10;
    mem_read_ports = 2;
    mem_write_ports = 1;
    misfetch_penalty = 3;
    misspeculation_penalty = 3;
    organization = Optimized;
    scheduler = Event;
    predictor = Resim_bpred.Predictor.default_config;
    icache = Resim_cache.Cache.Perfect;
    dcache = Resim_cache.Cache.Perfect;
    cache_timing = Resim_cache.Cache.default_timing;
    l2cache = None;
    l2_timing = { Resim_cache.Cache.hit_latency = 6; miss_latency = 40 } }

let fast_comparable =
  { reference with
    width = 2;
    ifq_entries = 2;
    decouple_entries = 2;
    alu_count = 2;
    mem_read_ports = 1;
    mem_write_ports = 1;
    organization = Improved;
    predictor = Resim_bpred.Predictor.perfect_config;
    icache = Resim_cache.Cache.l1_32k_8way_64b;
    dcache = Resim_cache.Cache.l1_32k_8way_64b }

let validate t =
  let fail fmt = Printf.ksprintf (fun message -> Error message) fmt in
  if t.width <= 0 then fail "width must be positive"
  else if t.ifq_entries < t.width then
    fail "IFQ must hold at least one fetch group (%d < width %d)"
      t.ifq_entries t.width
  else if t.decouple_entries <= 0 then fail "decouple buffer must be non-empty"
  else if t.rob_entries < t.width then
    fail "reorder buffer smaller than issue width"
  else if t.lsq_entries <= 0 then fail "LSQ must be non-empty"
  else if t.alu_count <= 0 then fail "at least one ALU is required"
  else if t.alu_latency <= 0 || t.mult_latency <= 0 || t.div_latency <= 0 then
    fail "functional-unit latencies must be positive"
  else if t.mem_read_ports <= 0 || t.mem_write_ports <= 0 then
    fail "memory ports must be positive"
  else if t.misfetch_penalty < 0 || t.misspeculation_penalty < 0 then
    fail "penalties must be non-negative"
  else if
    t.organization = Optimized
    && t.mem_read_ports + t.mem_write_ports > t.width - 1
  then
    fail
      "the optimized organization supports at most N-1 memory ports \
       (got %d read + %d write for width %d)"
      t.mem_read_ports t.mem_write_ports t.width
  else Ok t

let minor_cycle_latency t =
  minor_cycles_per_major t.organization ~width:t.width

let pp ppf t =
  Format.fprintf ppf
    "@[<v>%d-wide OoO, IFQ %d, ROB %d, LSQ %d@,\
     FUs: %d ALU/%d, %d MUL/%d, %d DIV/%d@,\
     memory ports: %d read, %d write@,\
     penalties: misfetch %d, misspeculation %d@,\
     organization: %s (L = %d minor cycles), %s scheduler@]"
    t.width t.ifq_entries t.rob_entries t.lsq_entries t.alu_count
    t.alu_latency t.mult_count t.mult_latency t.div_count t.div_latency
    t.mem_read_ports t.mem_write_ports t.misfetch_penalty
    t.misspeculation_penalty
    (organization_name t.organization)
    (minor_cycle_latency t)
    (scheduler_name t.scheduler)
