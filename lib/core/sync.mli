(** Exception-safe mutual exclusion shared by the whole concurrency
    layer ([Sweep.Pool], the [Reports.Runner] cache, [Obs.Prof]).

    Manual [Mutex.lock] / [Mutex.unlock] brackets leak the lock when
    the bracketed region raises; every call site in the tree goes
    through [with_lock] instead, and the resim-dsafe static gate
    (RSM-D008, DESIGN.md §15) rejects new manual brackets outside this
    module's implementation. *)

val with_lock : Mutex.t -> (unit -> 'a) -> 'a
(** [with_lock m f] runs [f ()] with [m] held and releases [m] on
    every exit path — normal return or raise — via [Fun.protect].
    [Condition.wait c m] inside [f] composes as usual (the wait
    releases and reacquires [m] itself). Not reentrant: locking a
    mutex the calling domain already holds is undefined, and the
    static gate flags the lexically-visible cases (RSM-D005). *)
