(** Load/Store Queue.

    Holds the in-flight memory operations in program order. The
    [refresh] pass is the paper's {e Lsq_refresh} stage, executed once
    per major cycle: it examines every waiting load and decides whether
    it is blocked behind an older store with an unresolved address, can
    take its value by store-to-load forwarding, or is ready to access the
    D-cache through a read port. A store's address resolves as soon as
    its base register is available; forwarding additionally requires the
    store data to be ready. *)

type t

val create : entries:int -> t
val capacity : t -> int
val length : t -> int
val is_full : t -> bool
val is_empty : t -> bool

val dispatch : t -> Entry.t -> unit
(** Append a memory-op entry (program order). *)

val refresh : t -> unit
(** The Lsq_refresh pass: set {!Entry.load_readiness} on every waiting
    load. Word-granularity address matching. Used by the [Scan]
    scheduler once per major cycle. *)

val refresh_entry : t -> Entry.t -> unit
(** Event scheduler: reclassify one waiting load (no-op for stores or
    already-issued loads). Call when the load's own sources resolve or
    at its dispatch. *)

val refresh_younger : t -> than_id:int -> reclassified:(Entry.t -> unit) -> unit
(** Event scheduler: reclassify every waiting load younger than
    [than_id], invoking [reclassified] on each. Call when a store's
    address or data resolves (with the store's id) or when a store
    retires (with [than_id] = -1: everything left is younger). *)

val release_head : t -> Entry.t -> unit
(** Commit of the memory op [entry]: it must be the queue head. *)

val squash_younger : t -> than_id:int -> int
val iter : (Entry.t -> unit) -> t -> unit
