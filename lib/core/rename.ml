(* Producers are a flat int array with Entry.no_producer (-1) for "no
   mapping": dispatch reads two slots per instruction, so the lookup
   must not allocate. *)
type t = { producers : int array }

let create ~registers =
  if registers <= 0 then invalid_arg "Rename.create";
  { producers = Array.make registers Entry.no_producer }

let producer t reg =
  if reg <= 0 || reg >= Array.length t.producers then Entry.no_producer
  else t.producers.(reg)

let define t ~reg ~id =
  if reg > 0 && reg < Array.length t.producers then t.producers.(reg) <- id

let clear t ~reg ~id =
  if reg > 0 && reg < Array.length t.producers
     && t.producers.(reg) = id
  then t.producers.(reg) <- Entry.no_producer

let reset t =
  Array.fill t.producers 0 (Array.length t.producers) Entry.no_producer

let pending t =
  Array.fold_left
    (fun acc slot -> if slot >= 0 then acc + 1 else acc)
    0 t.producers
