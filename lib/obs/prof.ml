module Engine = Resim_core.Engine
module Sync = Resim_core.Sync

type cell = {
  cell_name : string;
  mutable calls : int;
  mutable seconds : float;
  mutable words : float;
}

type t = {
  mutex : Mutex.t;
  cells : (string, cell) Hashtbl.t;
}

let create () = { mutex = Mutex.create (); cells = Hashtbl.create 16 }

let cell t name =
  Sync.with_lock t.mutex (fun () ->
      match Hashtbl.find_opt t.cells name with
      | Some cell -> cell
      | None ->
          let cell =
            { cell_name = name; calls = 0; seconds = 0.0; words = 0.0 }
          in
          Hashtbl.add t.cells name cell;
          cell)

let charge t cell ~seconds ~words =
  Sync.with_lock t.mutex (fun () ->
      cell.calls <- cell.calls + 1;
      cell.seconds <- cell.seconds +. seconds;
      cell.words <- cell.words +. words)

(* Words allocated by the current domain so far. *)
let allocated_words () =
  let s = Gc.quick_stat () in
  s.Gc.minor_words +. s.Gc.major_words -. s.Gc.promoted_words

let time t name f =
  let cell = cell t name in
  let t0 = Unix.gettimeofday () in
  let a0 = allocated_words () in
  Fun.protect
    ~finally:(fun () ->
      charge t cell
        ~seconds:(Unix.gettimeofday () -. t0)
        ~words:(allocated_words () -. a0))
    f

let instrument_engine t engine =
  let cell_commit = cell t "engine/commit" in
  let cell_writeback = cell t "engine/writeback" in
  let cell_issue = cell t "engine/issue" in
  let cell_dispatch = cell t "engine/dispatch" in
  let cell_decouple = cell t "engine/decouple" in
  let cell_fetch = cell t "engine/fetch" in
  let cell_account = cell t "engine/account" in
  let cell_of = function
    | Engine.Ph_commit -> cell_commit
    | Engine.Ph_writeback -> cell_writeback
    | Engine.Ph_issue -> cell_issue
    | Engine.Ph_dispatch -> cell_dispatch
    | Engine.Ph_decouple -> cell_decouple
    | Engine.Ph_fetch -> cell_fetch
    | Engine.Ph_account -> cell_account
  in
  let current = ref None in
  let last_time = ref 0.0 in
  let last_alloc = ref 0.0 in
  let close_span now alloc =
    match !current with
    | None -> ()
    | Some open_cell ->
        charge t open_cell ~seconds:(now -. !last_time)
          ~words:(alloc -. !last_alloc)
  in
  Engine.set_phase_probe engine (fun phase ->
      let now = Unix.gettimeofday () in
      let alloc = allocated_words () in
      close_span now alloc;
      current := Some (cell_of phase);
      last_time := now;
      last_alloc := alloc);
  fun () ->
    close_span (Unix.gettimeofday ()) (allocated_words ());
    current := None;
    Engine.clear_phase_probe engine

type section = {
  name : string;
  calls : int;
  seconds : float;
  allocated_words : float;
}

let sections t =
  let all =
    Sync.with_lock t.mutex (fun () ->
        Hashtbl.fold
          (fun _ cell acc ->
            { name = cell.cell_name;
              calls = cell.calls;
              seconds = cell.seconds;
              allocated_words = cell.words }
            :: acc)
          t.cells [])
  in
  List.sort
    (fun a b ->
      match compare b.seconds a.seconds with
      | 0 -> String.compare a.name b.name
      | order -> order)
    all

let pp ppf t =
  let all = sections t in
  let total = List.fold_left (fun acc s -> acc +. s.seconds) 0.0 all in
  Format.fprintf ppf "@[<v>%-20s %12s %12s %6s %12s@,"
    "section" "calls" "seconds" "%" "alloc Mwords";
  List.iter
    (fun s ->
      let share = if total > 0.0 then 100.0 *. s.seconds /. total else 0.0 in
      Format.fprintf ppf "%-20s %12d %12.4f %6.1f %12.2f@,"
        s.name s.calls s.seconds share (s.allocated_words /. 1e6))
    all;
  Format.fprintf ppf "%-20s %12s %12.4f %6.1f@]" "total" "" total 100.0

let to_json ?specialized ?variant t =
  let buffer = Buffer.create 256 in
  Buffer.add_string buffer "{";
  (* The engine identity the sections were measured against, when the
     caller knows it: generic vs staged runs have different phase-cost
     shapes, so the document must say which one it profiles. *)
  (match specialized with
  | Some flag ->
      Buffer.add_string buffer
        (Printf.sprintf "\"specialized\":%b," flag);
      Buffer.add_string buffer
        (match variant with
        | Some name ->
            Printf.sprintf "\"variant\":%s," (Resim_core.Json.quote name)
        | None -> "\"variant\":null,")
  | None -> ());
  Buffer.add_string buffer "\"sections\":[";
  List.iteri
    (fun i s ->
      if i > 0 then Buffer.add_char buffer ',';
      (* Section names are caller-chosen free-form strings — escape
         them like every other emitter in the tree. *)
      Buffer.add_string buffer
        (Printf.sprintf
           "{\"name\":%s,\"calls\":%d,\"seconds\":%.6f,\
            \"allocated_words\":%.0f}"
           (Resim_core.Json.quote s.name)
           s.calls s.seconds s.allocated_words))
    (sections t);
  Buffer.add_string buffer "]}";
  Buffer.contents buffer
