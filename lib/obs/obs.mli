(** Observability sinks for the engine's pipeline events (DESIGN.md
    §11).

    A {!sink} consumes timestamped {!Resim_core.Engine.event}s.
    {!attach} installs a single engine observer that fans out to the
    attached sinks; with no sinks it installs nothing at all, so the
    zero-sink run keeps the engine's allocation-free hot path — the
    only cost left compiled in is the engine's per-site observer test.

    Two concrete sinks ship here: a compact JSONL pipetrace (one JSON
    object per event, machine-checkable with [Resim_check.Obs]) and a
    human waterfall renderer (the classic per-instruction Gantt view,
    like sim-outorder's ptrace). Sink output is a pure function of the
    event stream, which itself is deterministic and bit-identical
    between the Scan and Event schedulers (asserted by the differential
    suite). *)

type sink

val make_sink :
  ?on_close:(unit -> unit) ->
  (cycle:int64 -> Resim_core.Engine.event -> unit) ->
  sink
(** [on_close] runs once from {!close} — flush buffers there. *)

val attach : Resim_core.Engine.t -> sink list -> unit
(** Install one engine observer fanning out to [sinks], in list order.
    An empty list installs no observer. The engine supports a single
    observer; attaching replaces any previous one. *)

val close : sink list -> unit

(** {1 Pipetrace: compact JSONL}

    One JSON object per line, one line per event. [c] is the major
    cycle the event fired in; [e] the event kind:

    {v
    {"c":3,"e":"F","pc":64}          fetch        (+ "wp":true on wrong path)
    {"c":4,"e":"D","id":7,"pc":64}   dispatch     (+ "wp":true on wrong path)
    {"c":5,"e":"I","id":7}           issue
    {"c":8,"e":"W","id":7}           writeback (result broadcast)
    {"c":9,"e":"C","id":7}           commit
    {"c":9,"e":"X","id":8}           squash
    {"c":9,"e":"FL"}                 front-end flush after a squash
    {"c":6,"e":"S","r":"rob-full"}   stall, with its taxonomy reason
    v}

    Stall reasons are the {!Resim_core.Engine.stall_reason_name}
    strings: ifq-empty, rob-full, lsq-full, fu-busy, rd-port, wr-port,
    icache, misfetch, mispredict. Cycles are non-decreasing down the
    stream. *)

val add_jsonl_event :
  Buffer.t -> cycle:int64 -> Resim_core.Engine.event -> unit
(** Append one pipetrace line (with trailing newline) to [buffer] —
    the single encoder both JSONL sinks share. *)

val jsonl_channel : out_channel -> sink
val jsonl_buffer : Buffer.t -> sink
(** In-memory variant, for tests comparing whole streams. *)

(** {1 Waterfall renderer}

    Accumulates per-instruction stage cycles for the first [window]
    (default 64) dispatched instructions and renders the Gantt view on
    {!close}:

    {v
    id    pc      |0         1
    #0    0       |FDIWC
    #1    1       | FD.IWC
    v} *)

val waterfall : ?window:int -> out_channel -> sink
