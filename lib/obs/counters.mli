(** Named monotonic counters for long-lived services.

    A fixed table of [Atomic] cells created once at startup and safe
    to increment from any domain with no locking — the job server's
    accepted/rejected/retried/shed/cache-hit metrics flow through one
    of these. The counter set is fixed at {!make}; unknown names raise
    [Invalid_argument] (a typo must not silently mint a new metric). *)

type t

val make : string list -> t
(** Table with the given counter names, all zero. Raises
    [Invalid_argument] on a duplicate name. *)

val incr : t -> string -> unit
val add : t -> string -> int -> unit
val get : t -> string -> int

val snapshot : t -> (string * int) list
(** Point-in-time read of every counter, in [make] order. Each cell is
    read atomically; the snapshot as a whole is not a cross-counter
    transaction. *)

val add_json_fields : Buffer.t -> t -> unit
(** Append the counters as JSON object members — [key:count] pairs
    with quoted keys, comma-separated, no surrounding braces — in
    [make] order. *)
