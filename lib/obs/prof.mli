(** Host profiling: section timers and allocation counters.

    Where the pipetrace explains simulated cycles, [Prof] explains host
    seconds — which engine phase and which pool activity the wall time
    and the allocation went to, so "make hot paths measurably faster"
    (ROADMAP) stops being guesswork.

    Sections are charged with wall-clock spans ([Unix.gettimeofday])
    and allocated words ([Gc.quick_stat], minor + major - promoted).
    Charging is mutex-guarded so sweep-pool worker domains can share
    one profile; allocation counts are per-domain at sampling time, so
    cross-domain totals are the sum of each domain's own allocation. *)

type t

val create : unit -> t

val time : t -> string -> (unit -> 'a) -> 'a
(** Run the thunk, charging its span to the named section (also on
    exception). Nested calls charge both sections the full span. *)

val instrument_engine : t -> Resim_core.Engine.t -> unit -> unit
(** Install a phase probe attributing each engine phase of each cycle
    to an [engine/<phase>] section; [engine/account] also absorbs the
    caller's between-cycle overhead (the run loop, watchdog and
    deadline polling). Returns a closer that charges the span still
    open when the run ends — call it once, after the run. Probing costs
    a clock and GC read per phase per cycle, so profile runs are
    markedly slower than bare runs; attribution ratios stay
    representative. *)

type section = {
  name : string;
  calls : int;
  seconds : float;
  allocated_words : float;
}

val sections : t -> section list
(** Descending by seconds. *)

val pp : Format.formatter -> t -> unit

val to_json : ?specialized:bool -> ?variant:string -> t -> string
(** The section table as a JSON object. When [specialized] is given
    the document leads with [{"specialized": ..., "variant": ...}] —
    which engine implementation (generic or a staged variant, see
    DESIGN.md §14) the phase costs were measured against. [variant]
    is only meaningful alongside [specialized]. *)
