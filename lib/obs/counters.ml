(* Named monotonic counters for long-lived services (DESIGN.md §16).

   The job server increments these from the accept loop, the worker
   supervisor, and the cache — three different domains — so every cell
   is an [Atomic.t]. The table itself is immutable after [make]
   (an assoc list of name → cell), which keeps the whole module
   resim-dsafe clean with no locks at all: lookups read immutable
   structure, updates go through Atomic. *)

type t = (string * int Atomic.t) list

let make names =
  let seen = Hashtbl.create 16 in
  List.iter
    (fun name ->
      if Hashtbl.mem seen name then
        invalid_arg ("Counters.make: duplicate counter " ^ name);
      Hashtbl.add seen name ())
    names;
  List.map (fun name -> (name, Atomic.make 0)) names

let cell t name =
  match List.assoc_opt name t with
  | Some cell -> cell
  | None -> invalid_arg ("Counters: unknown counter " ^ name)

let incr t name = Atomic.incr (cell t name)
let add t name n = ignore (Atomic.fetch_and_add (cell t name) n)
let get t name = Atomic.get (cell t name)
let snapshot t = List.map (fun (name, cell) -> (name, Atomic.get cell)) t

let add_json_fields buffer t =
  List.iteri
    (fun i (name, cell) ->
      if i > 0 then Buffer.add_char buffer ',';
      Resim_core.Json.add_string buffer name;
      Buffer.add_char buffer ':';
      Buffer.add_string buffer (string_of_int (Atomic.get cell)))
    t
