module Engine = Resim_core.Engine
module Entry = Resim_core.Entry
module Record = Resim_trace.Record

type sink = {
  on_event : cycle:int64 -> Engine.event -> unit;
  on_close : unit -> unit;
}

let make_sink ?(on_close = fun () -> ()) on_event = { on_event; on_close }

let attach engine sinks =
  match sinks with
  | [] -> ()
  | [ sink ] ->
      (* The common one-sink case skips the fan-out iteration. *)
      Engine.set_observer engine (fun event ->
          sink.on_event ~cycle:(Engine.cycle engine) event)
  | sinks ->
      Engine.set_observer engine (fun event ->
          let cycle = Engine.cycle engine in
          List.iter (fun sink -> sink.on_event ~cycle event) sinks)

let close sinks = List.iter (fun sink -> sink.on_close ()) sinks

(* ------------------------------------------------------------------ *)
(* JSONL pipetrace. All field values are integers, short constant
   strings or taxonomy names — nothing needs escaping.                 *)

let add_int64 buffer value = Buffer.add_string buffer (Int64.to_string value)
let add_int buffer value = Buffer.add_string buffer (string_of_int value)

let add_jsonl_event buffer ~cycle event =
  Buffer.add_string buffer "{\"c\":";
  add_int64 buffer cycle;
  (match (event : Engine.event) with
  | Engine.Ev_fetch record ->
      Buffer.add_string buffer ",\"e\":\"F\",\"pc\":";
      add_int buffer record.Record.pc;
      if record.Record.wrong_path then Buffer.add_string buffer ",\"wp\":true"
  | Engine.Ev_dispatch entry ->
      Buffer.add_string buffer ",\"e\":\"D\",\"id\":";
      add_int buffer entry.Entry.id;
      Buffer.add_string buffer ",\"pc\":";
      add_int buffer entry.Entry.record.Record.pc;
      if Entry.is_wrong_path entry then Buffer.add_string buffer ",\"wp\":true"
  | Engine.Ev_issue entry ->
      Buffer.add_string buffer ",\"e\":\"I\",\"id\":";
      add_int buffer entry.Entry.id
  | Engine.Ev_complete entry ->
      Buffer.add_string buffer ",\"e\":\"W\",\"id\":";
      add_int buffer entry.Entry.id
  | Engine.Ev_commit entry ->
      Buffer.add_string buffer ",\"e\":\"C\",\"id\":";
      add_int buffer entry.Entry.id
  | Engine.Ev_squash entry ->
      Buffer.add_string buffer ",\"e\":\"X\",\"id\":";
      add_int buffer entry.Entry.id
  | Engine.Ev_flush_frontend -> Buffer.add_string buffer ",\"e\":\"FL\""
  | Engine.Ev_stall reason ->
      Buffer.add_string buffer ",\"e\":\"S\",\"r\":\"";
      Buffer.add_string buffer (Engine.stall_reason_name reason);
      Buffer.add_char buffer '"');
  Buffer.add_string buffer "}\n"

let jsonl_channel channel =
  (* One reused line buffer; the channel's own buffering batches the
     writes. *)
  let line = Buffer.create 64 in
  make_sink
    ~on_close:(fun () -> flush channel)
    (fun ~cycle event ->
      Buffer.clear line;
      add_jsonl_event line ~cycle event;
      Buffer.output_buffer channel line)

let jsonl_buffer buffer =
  make_sink (fun ~cycle event -> add_jsonl_event buffer ~cycle event)

(* ------------------------------------------------------------------ *)
(* Waterfall: per-instruction stage cycles for a window of dispatched
   instructions, rendered as a Gantt chart on close. The fetch->entry
   pairing mirrors Pipeline_trace: fetch events carry no id, so fetch
   cycles queue up and marry the next dispatches in order; a front-end
   flush drops the still-unmarried ones.                               *)

type slot = {
  slot_id : int;
  slot_pc : int;
  slot_wrong : bool;
  mutable marks : (char * int64) list;  (* reversed *)
}

let waterfall ?(window = 64) channel =
  let pending_fetches = Queue.create () in
  let slots : (int, slot) Hashtbl.t = Hashtbl.create 64 in
  let order = ref [] in
  let traced = ref 0 in
  let mark id letter cycle =
    match Hashtbl.find_opt slots id with
    | Some slot -> slot.marks <- (letter, cycle) :: slot.marks
    | None -> ()
  in
  let on_event ~cycle event =
    match (event : Engine.event) with
    | Engine.Ev_fetch _ -> Queue.add cycle pending_fetches
    | Engine.Ev_flush_frontend -> Queue.clear pending_fetches
    | Engine.Ev_dispatch entry ->
        let fetch_cycle = Queue.take_opt pending_fetches in
        if !traced < window then begin
          incr traced;
          let id = entry.Entry.id in
          let slot =
            { slot_id = id;
              slot_pc = entry.Entry.record.Record.pc;
              slot_wrong = Entry.is_wrong_path entry;
              marks = [] }
          in
          (match fetch_cycle with
          | Some at -> slot.marks <- [ ('F', at) ]
          | None -> ());
          slot.marks <- ('D', cycle) :: slot.marks;
          Hashtbl.replace slots id slot;
          order := id :: !order
        end
    | Engine.Ev_issue entry -> mark entry.Entry.id 'I' cycle
    | Engine.Ev_complete entry -> mark entry.Entry.id 'W' cycle
    | Engine.Ev_commit entry -> mark entry.Entry.id 'C' cycle
    | Engine.Ev_squash entry -> mark entry.Entry.id 'x' cycle
    | Engine.Ev_stall _ -> ()
  in
  let render () =
    let ids = List.rev !order in
    let buffer = Buffer.create 1024 in
    let horizon =
      List.fold_left
        (fun acc id ->
          match Hashtbl.find_opt slots id with
          | Some slot ->
              List.fold_left
                (fun acc (_, cycle) -> if cycle > acc then cycle else acc)
                acc slot.marks
          | None -> acc)
        0L ids
    in
    let width = Int64.to_int horizon + 1 in
    Buffer.add_string buffer (Printf.sprintf "%-6s%-8s|" "id" "pc");
    for c = 0 to width - 1 do
      Buffer.add_char buffer (if c mod 10 = 0 then '|' else '.')
    done;
    Buffer.add_char buffer '\n';
    List.iter
      (fun id ->
        match Hashtbl.find_opt slots id with
        | None -> ()
        | Some slot ->
            Buffer.add_string buffer
              (Printf.sprintf "#%-5d%-8d|" slot.slot_id slot.slot_pc);
            let row = Bytes.make width ' ' in
            let marks = List.rev slot.marks in
            (match (marks, slot.marks) with
            | (_, first) :: _, (_, last) :: _ ->
                for c = Int64.to_int first to Int64.to_int last do
                  Bytes.set row c '.'
                done
            | _ -> ());
            List.iter
              (fun (letter, cycle) ->
                Bytes.set row (Int64.to_int cycle) letter)
              marks;
            Buffer.add_string buffer (Bytes.to_string row);
            if slot.slot_wrong then Buffer.add_string buffer "  (wrong path)";
            Buffer.add_char buffer '\n')
      ids;
    Buffer.add_string buffer
      "F fetch  D dispatch  I issue  W writeback  C commit  x squashed\n";
    Buffer.output_buffer channel buffer;
    flush channel
  in
  make_sink ~on_close:render on_event
