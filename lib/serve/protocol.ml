(* resimd wire protocol (DESIGN.md §16).

   Frames: a 4-byte big-endian payload length followed by that many
   bytes of UTF-8 JSON. One request per connection (client → server),
   a stream of events back (server → client) ending in [Done],
   [Rejected] or [Protocol_error].

   Malformed input is a structured error in the RSM-T style, never an
   exception: RSM-S001 oversized frame, RSM-S002 truncated frame (the
   stream ended mid-frame), RSM-S003 payload is not JSON, RSM-S004
   JSON with the wrong shape. *)

module Json = Resim_core.Json
module Config = Resim_core.Config

type frame_error = { code : string; detail : string }

let frame_error_to_string e = Printf.sprintf "%s: %s" e.code e.detail

(* --- framing ------------------------------------------------------ *)

let max_frame = 16 * 1024 * 1024

let frame payload =
  let n = String.length payload in
  if n > max_frame then
    invalid_arg (Printf.sprintf "Protocol.frame: %d bytes exceeds max" n);
  let b = Buffer.create (n + 4) in
  Buffer.add_char b (Char.chr ((n lsr 24) land 0xff));
  Buffer.add_char b (Char.chr ((n lsr 16) land 0xff));
  Buffer.add_char b (Char.chr ((n lsr 8) land 0xff));
  Buffer.add_char b (Char.chr (n land 0xff));
  Buffer.add_string b payload;
  Buffer.contents b

let next_frame data ~offset =
  let available = String.length data - offset in
  if available < 4 then Ok None
  else
    let byte i = Char.code data.[offset + i] in
    let n = (byte 0 lsl 24) lor (byte 1 lsl 16) lor (byte 2 lsl 8) lor byte 3 in
    if n > max_frame then
      Error
        { code = "RSM-S001";
          detail =
            Printf.sprintf "frame of %d bytes exceeds the %d-byte limit" n
              max_frame }
    else if available - 4 < n then Ok None
    else Ok (Some (String.sub data (offset + 4) n, offset + 4 + n))

let finish data ~offset =
  if offset = String.length data then Ok ()
  else
    Error
      { code = "RSM-S002";
        detail =
          Printf.sprintf "stream ended mid-frame with %d trailing byte(s)"
            (String.length data - offset) }

(* --- requests ----------------------------------------------------- *)

type config_spec = {
  base : string;  (* "reference" | "fast" *)
  width : int option;
  rob : int option;
  lsq : int option;
  organization : string option;
  scheduler : string option;
}

let reference_spec =
  { base = "reference";
    width = None;
    rob = None;
    lsq = None;
    organization = None;
    scheduler = None }

(* Width implies the same derived front end the [resim vhdl] surface
   uses, so a wire job at width N simulates the machine the rest of
   the tooling calls "width N". *)
let resolve_config spec =
  let ( let* ) = Result.bind in
  let* base =
    match spec.base with
    | "reference" -> Ok Config.reference
    | "fast" -> Ok Config.fast_comparable
    | other -> Error (Printf.sprintf "unknown base config %S" other)
  in
  let config =
    match spec.width with
    | None -> base
    | Some width ->
        { base with
          Config.width;
          ifq_entries = max width base.Config.ifq_entries;
          decouple_entries = width;
          alu_count = width;
          mem_read_ports = max 1 ((width - 1) / 2);
          mem_write_ports = 1;
          organization =
            (if width >= 3 then Config.Optimized else Config.Improved) }
  in
  let config =
    match spec.rob with
    | None -> config
    | Some rob_entries -> { config with Config.rob_entries }
  in
  let config =
    match spec.lsq with
    | None -> config
    | Some lsq_entries -> { config with Config.lsq_entries }
  in
  let* config =
    match spec.organization with
    | None -> Ok config
    | Some "simple" -> Ok { config with Config.organization = Simple }
    | Some "improved" -> Ok { config with Config.organization = Improved }
    | Some "optimized" -> Ok { config with Config.organization = Optimized }
    | Some other -> Error (Printf.sprintf "unknown organization %S" other)
  in
  match spec.scheduler with
  | None -> Ok config
  | Some "scan" -> Ok { config with Config.scheduler = Scan }
  | Some "event" -> Ok { config with Config.scheduler = Event }
  | Some other -> Error (Printf.sprintf "unknown scheduler %S" other)

type sim_spec = {
  kernel : string;
  scale : int option;
  trace : string option;  (* server-host path to an encoded trace *)
  config : config_spec;
  max_cycles : int64 option;
  timeout : float option;
  sample : string option;  (* detail:warmup[:seed] *)
}

type body =
  | Simulate of sim_spec
  | Sweep_grid of {
      kernels : string list;
      widths : int list;
      config : config_spec;
      max_cycles : int64 option;
      timeout : float option;
      sample : string option;
    }
  | Lint of { path : string; max_run : int option }
  | Status
  | Crash_worker  (* test hook: kills the worker domain that takes it *)

type request = { client : string; body : body }

let body_class = function
  | Simulate _ | Crash_worker -> `Simulate
  | Sweep_grid _ -> `Sweep
  | Lint _ -> `Lint
  | Status -> `Status

(* --- events ------------------------------------------------------- *)

type rejection =
  | Over_quota
  | Queue_full
  | Shed_lint
  | Shed_sweep
  | Draining
  | Bad_request of string

let rejection_tag = function
  | Over_quota -> "over-quota"
  | Queue_full -> "queue-full"
  | Shed_lint -> "shed-lint"
  | Shed_sweep -> "shed-sweep"
  | Draining -> "draining"
  | Bad_request _ -> "bad-request"

let rejection_to_string = function
  | Bad_request detail -> Printf.sprintf "bad-request: %s" detail
  | r -> rejection_tag r

type done_payload = {
  outcome : string;
      (* ok | truncated | fault | deadlock | invalid-config | crash
         | timed-out | lint-clean | lint-errors *)
  exit_code : int;
  cached : bool;
  attempts : int;
  detail : string option;
  metrics : string option;     (* a complete JSON document, verbatim *)
  checkpoint : string option;  (* RSCP text when truncated *)
}

type event =
  | Accepted of { job_id : int }
  | Rejected of rejection
  | Progress of { completed : int; total : int; label : string }
  | Done of done_payload
  | Status_report of {
      counters : (string * int) list;
      queue : int;
      running : int;
      workers : int;
      draining : bool;
    }
  | Protocol_error of frame_error

(* --- encoding ----------------------------------------------------- *)

let add_field b first name value =
  if not !first then Buffer.add_char b ',';
  first := false;
  Json.add_string b name;
  Buffer.add_char b ':';
  Buffer.add_string b value

let add_string_field b first name value =
  add_field b first name (Json.quote value)

let add_opt add b first name = function
  | None -> ()
  | Some value -> add b first name value

let add_config_spec b spec =
  let first = ref true in
  Buffer.add_char b '{';
  add_string_field b first "base" spec.base;
  add_opt
    (fun b f n v -> add_field b f n (string_of_int v))
    b first "width" spec.width;
  add_opt
    (fun b f n v -> add_field b f n (string_of_int v))
    b first "rob" spec.rob;
  add_opt
    (fun b f n v -> add_field b f n (string_of_int v))
    b first "lsq" spec.lsq;
  add_opt add_string_field b first "organization" spec.organization;
  add_opt add_string_field b first "scheduler" spec.scheduler;
  Buffer.add_char b '}'

let add_sim_fields b first spec =
  add_string_field b first "kernel" spec.kernel;
  add_opt
    (fun b f n v -> add_field b f n (string_of_int v))
    b first "scale" spec.scale;
  add_opt add_string_field b first "trace" spec.trace;
  (if not !first then Buffer.add_char b ',');
  first := false;
  Json.add_string b "config";
  Buffer.add_char b ':';
  add_config_spec b spec.config;
  add_opt
    (fun b f n v -> add_field b f n (Int64.to_string v))
    b first "max_cycles" spec.max_cycles;
  add_opt
    (fun b f n v -> add_field b f n (Printf.sprintf "%.6f" v))
    b first "timeout" spec.timeout;
  add_opt add_string_field b first "sample" spec.sample

let encode_request { client; body } =
  let b = Buffer.create 256 in
  let first = ref true in
  Buffer.add_char b '{';
  add_field b first "v" "1";
  add_string_field b first "client" client;
  (match body with
  | Simulate spec ->
      add_string_field b first "kind" "simulate";
      add_sim_fields b first spec
  | Sweep_grid { kernels; widths; config; max_cycles; timeout; sample } ->
      add_string_field b first "kind" "sweep";
      add_field b first "kernels"
        ("[" ^ String.concat "," (List.map Json.quote kernels) ^ "]");
      add_field b first "widths"
        ("[" ^ String.concat "," (List.map string_of_int widths) ^ "]");
      (if not !first then Buffer.add_char b ',');
      Json.add_string b "config";
      Buffer.add_char b ':';
      add_config_spec b config;
      add_opt
        (fun b f n v -> add_field b f n (Int64.to_string v))
        b first "max_cycles" max_cycles;
      add_opt
        (fun b f n v -> add_field b f n (Printf.sprintf "%.6f" v))
        b first "timeout" timeout;
      add_opt add_string_field b first "sample" sample
  | Lint { path; max_run } ->
      add_string_field b first "kind" "lint";
      add_string_field b first "trace" path;
      add_opt
        (fun b f n v -> add_field b f n (string_of_int v))
        b first "max_run" max_run
  | Status -> add_string_field b first "kind" "status"
  | Crash_worker -> add_string_field b first "kind" "crash-worker");
  Buffer.add_char b '}';
  Buffer.contents b

let encode_done payload =
  let b = Buffer.create 256 in
  let first = ref true in
  Buffer.add_char b '{';
  add_string_field b first "event" "done";
  add_string_field b first "outcome" payload.outcome;
  add_field b first "exit" (string_of_int payload.exit_code);
  add_field b first "cached" (string_of_bool payload.cached);
  add_field b first "attempts" (string_of_int payload.attempts);
  add_opt add_string_field b first "detail" payload.detail;
  add_opt add_string_field b first "metrics" payload.metrics;
  add_opt add_string_field b first "checkpoint" payload.checkpoint;
  Buffer.add_char b '}';
  Buffer.contents b

let encode_event = function
  | Accepted { job_id } ->
      Printf.sprintf "{\"event\":\"accepted\",\"job\":%d}" job_id
  | Rejected rejection ->
      let b = Buffer.create 64 in
      let first = ref true in
      Buffer.add_char b '{';
      add_string_field b first "event" "rejected";
      add_string_field b first "reason" (rejection_tag rejection);
      (match rejection with
      | Bad_request detail -> add_string_field b first "detail" detail
      | _ -> ());
      Buffer.add_char b '}';
      Buffer.contents b
  | Progress { completed; total; label } ->
      Printf.sprintf
        "{\"event\":\"progress\",\"done\":%d,\"total\":%d,\"label\":%s}"
        completed total (Json.quote label)
  | Done payload -> encode_done payload
  | Status_report { counters; queue; running; workers; draining } ->
      let b = Buffer.create 128 in
      let first = ref true in
      Buffer.add_char b '{';
      add_string_field b first "event" "status";
      add_field b first "queue" (string_of_int queue);
      add_field b first "running" (string_of_int running);
      add_field b first "workers" (string_of_int workers);
      add_field b first "draining" (string_of_bool draining);
      add_field b first "counters"
        ("{"
        ^ String.concat ","
            (List.map
               (fun (name, v) ->
                 Printf.sprintf "%s:%d" (Json.quote name) v)
               counters)
        ^ "}");
      Buffer.add_char b '}';
      Buffer.contents b
  | Protocol_error { code; detail } ->
      Printf.sprintf "{\"event\":\"error\",\"code\":%s,\"detail\":%s}"
        (Json.quote code) (Json.quote detail)

(* --- decoding ----------------------------------------------------- *)

let bad_shape detail = Error { code = "RSM-S004"; detail }

let parse_payload payload =
  match Json.parse payload with
  | Error detail -> Error { code = "RSM-S003"; detail }
  | Ok (Json.Obj _ as value) -> Ok value
  | Ok _ -> bad_shape "payload is not a JSON object"

let str_member name value = Option.bind (Json.member name value) Json.string_value
let int_member name value = Option.bind (Json.member name value) Json.int_value
let bool_member name value = Option.bind (Json.member name value) Json.bool_value

let int64_member name value =
  Option.bind (Json.member name value) (fun v ->
      Option.map Int64.of_int (Json.int_value v))

let float_member name value =
  Option.bind (Json.member name value) Json.number_value

let require name = function
  | Some v -> Ok v
  | None -> bad_shape (Printf.sprintf "missing or mistyped field %S" name)

let decode_config_spec value =
  let ( let* ) = Result.bind in
  match value with
  | None -> Ok reference_spec
  | Some (Json.Obj _ as v) ->
      let* base = require "base" (str_member "base" v) in
      Ok
        { base;
          width = int_member "width" v;
          rob = int_member "rob" v;
          lsq = int_member "lsq" v;
          organization = str_member "organization" v;
          scheduler = str_member "scheduler" v }
  | Some _ -> bad_shape "config is not an object"

let decode_sim_spec v =
  let ( let* ) = Result.bind in
  let* kernel = require "kernel" (str_member "kernel" v) in
  let* config = decode_config_spec (Json.member "config" v) in
  Ok
    { kernel;
      scale = int_member "scale" v;
      trace = str_member "trace" v;
      config;
      max_cycles = int64_member "max_cycles" v;
      timeout = float_member "timeout" v;
      sample = str_member "sample" v }

let string_list_member name v =
  match Json.member name v with
  | Some (Json.List items) ->
      let strings = List.filter_map Json.string_value items in
      if List.length strings = List.length items then Some strings else None
  | _ -> None

let int_list_member name v =
  match Json.member name v with
  | Some (Json.List items) ->
      let ints = List.filter_map Json.int_value items in
      if List.length ints = List.length items then Some ints else None
  | _ -> None

let decode_request payload =
  let ( let* ) = Result.bind in
  let* v = parse_payload payload in
  let* client = require "client" (str_member "client" v) in
  let* kind = require "kind" (str_member "kind" v) in
  let* body =
    match kind with
    | "simulate" ->
        let* spec = decode_sim_spec v in
        Ok (Simulate spec)
    | "sweep" ->
        let* kernels = require "kernels" (string_list_member "kernels" v) in
        let* widths = require "widths" (int_list_member "widths" v) in
        let* config = decode_config_spec (Json.member "config" v) in
        Ok
          (Sweep_grid
             { kernels;
               widths;
               config;
               max_cycles = int64_member "max_cycles" v;
               timeout = float_member "timeout" v;
               sample = str_member "sample" v })
    | "lint" ->
        let* path = require "trace" (str_member "trace" v) in
        Ok (Lint { path; max_run = int_member "max_run" v })
    | "status" -> Ok Status
    | "crash-worker" -> Ok Crash_worker
    | other -> bad_shape (Printf.sprintf "unknown request kind %S" other)
  in
  Ok { client; body }

let decode_done v =
  let ( let* ) = Result.bind in
  let* outcome = require "outcome" (str_member "outcome" v) in
  let* exit_code = require "exit" (int_member "exit" v) in
  let* cached = require "cached" (bool_member "cached" v) in
  let* attempts = require "attempts" (int_member "attempts" v) in
  Ok
    { outcome;
      exit_code;
      cached;
      attempts;
      detail = str_member "detail" v;
      metrics = str_member "metrics" v;
      checkpoint = str_member "checkpoint" v }

let decode_event payload =
  let ( let* ) = Result.bind in
  let* v = parse_payload payload in
  let* event = require "event" (str_member "event" v) in
  match event with
  | "accepted" ->
      let* job_id = require "job" (int_member "job" v) in
      Ok (Accepted { job_id })
  | "rejected" ->
      let* reason = require "reason" (str_member "reason" v) in
      let* rejection =
        match reason with
        | "over-quota" -> Ok Over_quota
        | "queue-full" -> Ok Queue_full
        | "shed-lint" -> Ok Shed_lint
        | "shed-sweep" -> Ok Shed_sweep
        | "draining" -> Ok Draining
        | "bad-request" ->
            Ok
              (Bad_request
                 (Option.value ~default:"" (str_member "detail" v)))
        | other -> bad_shape (Printf.sprintf "unknown rejection %S" other)
      in
      Ok (Rejected rejection)
  | "progress" ->
      let* completed = require "done" (int_member "done" v) in
      let* total = require "total" (int_member "total" v) in
      let* label = require "label" (str_member "label" v) in
      Ok (Progress { completed; total; label })
  | "done" ->
      let* payload = decode_done v in
      Ok (Done payload)
  | "status" ->
      let* queue = require "queue" (int_member "queue" v) in
      let* running = require "running" (int_member "running" v) in
      let* workers = require "workers" (int_member "workers" v) in
      let* draining = require "draining" (bool_member "draining" v) in
      let* counters =
        match Json.member "counters" v with
        | Some (Resim_core.Json.Obj members) ->
            let ints = List.filter_map
                (fun (name, value) ->
                  Option.map (fun n -> (name, n)) (Json.int_value value))
                members
            in
            if List.length ints = List.length members then Ok ints
            else bad_shape "non-integer counter"
        | _ -> bad_shape "missing counters object"
      in
      Ok (Status_report { counters; queue; running; workers; draining })
  | "error" ->
      let* code = require "code" (str_member "code" v) in
      let* detail = require "detail" (str_member "detail" v) in
      Ok (Protocol_error { code; detail })
  | other -> bad_shape (Printf.sprintf "unknown event %S" other)
