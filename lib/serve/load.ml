(* Load generator for resimd (DESIGN.md §16).

   Spawns N client domains against a running server; each runs a
   fixed number of small simulate requests and measures wall-clock
   latency per request. The driver repeats the measurement for each
   requested client count (1/4/16 by default) and reports jobs/sec
   with p50/p99 latency per tier — the numbers in BENCH_service.json.

   Domain-safety: [client_body] is the spawned closure, so it is
   written mutation-free — a tail recursion accumulating latencies in
   lists, calling only cross-module code ([Client], [Unix]). All
   aggregation (sorting, percentiles, JSON) happens on the calling
   domain after the joins. *)

type tier = {
  clients : int;
  jobs : int;           (* requests that reached a terminal event *)
  completed : int;      (* [Done] with exit 0 *)
  errors : int;         (* transport errors + non-zero outcomes *)
  duration : float;     (* wall seconds for the whole tier *)
  jobs_per_sec : float;
  p50_ms : float;
  p99_ms : float;
}

(* Each (client, job) pair gets its own kernel scale so requests stay
   tiny but mostly miss the server's content-addressed cache; a few
   collisions are realistic mixed load. *)
let default_request ~kernel ~client ~job =
  { Protocol.client = Printf.sprintf "loadgen-%d" client;
    body =
      Protocol.Simulate
        { Protocol.kernel;
          scale = Some (192 + ((client * 17) + job) mod 64);
          trace = None;
          config = Protocol.reference_spec;
          max_cycles = None;
          timeout = None;
          sample = None } }

let client_body ~socket ~kernel ~client ~jobs () =
  let rec go job lats errors =
    if job >= jobs then (lats, errors)
    else
      let t0 = Unix.gettimeofday () in
      match
        Client.converse ~socket (default_request ~kernel ~client ~job)
      with
      | Ok (Protocol.Done payload) ->
          let latency = (Unix.gettimeofday () -. t0) *. 1000. in
          if payload.Protocol.exit_code = 0 then
            go (job + 1) (latency :: lats) errors
          else go (job + 1) lats (errors + 1)
      | Ok _ | Error _ -> go (job + 1) lats (errors + 1)
  in
  go 0 [] 0

let percentile sorted fraction =
  match Array.length sorted with
  | 0 -> 0.
  | n ->
      let rank = int_of_float (ceil (fraction *. float_of_int n)) - 1 in
      sorted.(max 0 (min (n - 1) rank))

let run_tier ~socket ~kernel ~jobs_per_client clients =
  let t0 = Unix.gettimeofday () in
  let domains =
    List.init clients (fun client ->
        Domain.spawn
          (client_body ~socket ~kernel ~client ~jobs:jobs_per_client))
  in
  let results = List.map Domain.join domains in
  let duration = Unix.gettimeofday () -. t0 in
  let latencies =
    Array.of_list (List.concat_map (fun (lats, _) -> lats) results)
  in
  Array.sort compare latencies;
  let completed = Array.length latencies in
  let errors = List.fold_left (fun acc (_, e) -> acc + e) 0 results in
  { clients;
    jobs = completed + errors;
    completed;
    errors;
    duration;
    jobs_per_sec =
      (if duration > 0. then float_of_int (completed + errors) /. duration
       else 0.);
    p50_ms = percentile latencies 0.50;
    p99_ms = percentile latencies 0.99 }

let run ?(kernel = "gzip") ?(jobs_per_client = 8)
    ?(client_counts = [ 1; 4; 16 ]) ~socket () =
  List.map (run_tier ~socket ~kernel ~jobs_per_client) client_counts

(* BENCH_service.json — same flavor as the other BENCH_* emitters. *)
let to_json ?(label = "service") tiers =
  let b = Buffer.create 1024 in
  Buffer.add_string b "{\n";
  Buffer.add_string b (Printf.sprintf "  \"bench\": %S,\n" label);
  Buffer.add_string b "  \"tiers\": [\n";
  List.iteri
    (fun i tier ->
      Buffer.add_string b
        (Printf.sprintf
           "    {\"clients\": %d, \"jobs\": %d, \"completed\": %d, \
            \"errors\": %d, \"duration_s\": %.3f, \"jobs_per_sec\": %.2f, \
            \"p50_ms\": %.2f, \"p99_ms\": %.2f}%s\n"
           tier.clients tier.jobs tier.completed tier.errors tier.duration
           tier.jobs_per_sec tier.p50_ms tier.p99_ms
           (if i = List.length tiers - 1 then "" else ",")))
    tiers;
  Buffer.add_string b "  ]\n}\n";
  Buffer.contents b
