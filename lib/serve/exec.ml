(* Request execution on a worker domain (DESIGN.md §16).

   Everything here is confined: a job's engine, trace and statistics
   live and die on the worker domain that runs it, and the only values
   that cross back are immutable payload records through the server's
   guarded completion queue. Keeping this in its own module also keeps
   the server's spawn closures free of execution internals — the
   domain-safety analyzer reasons about what a spawned closure can
   reach, and here the answer is "a cross-module call".

   The robustness model is Sweep's, reused wholesale: each request
   runs under [Sweep.run_job_robust]'s fault domain, so corrupt
   traces, deadlocks, invalid configurations, per-job budgets and
   host-transient retries (with capped, doubling backoff) all arrive
   as typed outcomes, never exceptions. *)

module Sweep = Resim_sweep.Sweep
module Resim = Resim_core.Resim
module Stats = Resim_core.Stats
module Checkpoint = Resim_core.Checkpoint

exception Crashed_on_purpose
(* Test hook: [Crash_worker] raises this through the worker loop,
   killing the domain so the supervisor's respawn path can be
   exercised from a test or smoke script. *)

let payload ?detail ?metrics ?checkpoint ~outcome ~exit_code ~attempts () =
  { Protocol.outcome;
    exit_code;
    cached = false;
    attempts;
    detail;
    metrics;
    checkpoint }

let invalid ?(attempts = 1) detail =
  payload ~outcome:"invalid-config" ~exit_code:2 ~attempts ~detail ()

(* --- cache identity ----------------------------------------------- *)

let trace_component spec =
  match spec.Protocol.trace with
  | Some path -> (
      match Resim_core.Hash.file path with
      | Ok h -> Some ("trace:" ^ h)
      | Error _ -> None)
  | None ->
      Some
        (Printf.sprintf "kernel:%s:%s" spec.Protocol.kernel
           (match spec.Protocol.scale with
           | Some n -> string_of_int n
           | None -> "default"))

(* Only simulates are cached, and only their completed ("ok")
   outcomes ever get stored — so wall/cycle budgets need not be part
   of the key: a run that *completed* under a budget is bit-identical
   to one that never had it. *)
let cache_key body =
  match body with
  | Protocol.Simulate spec -> (
      match Protocol.resolve_config spec.Protocol.config with
      | Error _ -> None
      | Ok config -> (
          match trace_component spec with
          | None -> None
          | Some trace ->
              Some
                (Cache.key
                   ~engine:(Resim.engine_identity config)
                   ~trace ~sample:spec.Protocol.sample)))
  | _ -> None

(* --- job construction --------------------------------------------- *)

let parse_sample = function
  | None -> Ok None
  | Some raw -> (
      match Resim_sample.Sample.spec_of_string raw with
      | Ok spec -> Ok (Some spec)
      | Error message -> Error (Printf.sprintf "sample %s" message))

let sim_job spec =
  let ( let* ) = Result.bind in
  let* config = Protocol.resolve_config spec.Protocol.config in
  let* sample = parse_sample spec.Protocol.sample in
  match spec.Protocol.trace with
  | Some path -> (
      (* Validate existence and header eagerly (typed invalid-config
         instead of a mid-run fault), then hand the worker a stream
         opener so the trace never materialises — exec runs traces
         larger than RAM. Sampling still needs random access, so
         sampled requests decode the whole file as before. *)
      match Resim_trace.Stream.open_path path with
      | Error error ->
          Error
            (Printf.sprintf "%s: %s" path
               (Resim_trace.Codec.error_to_string error))
      | Ok probe -> (
          Resim_trace.Stream.close probe;
          match sample with
          | None ->
              let open_stream () =
                match Resim_trace.Stream.open_path path with
                | Ok stream -> fun () -> Resim_trace.Stream.next stream
                | Error { Resim_trace.Codec.error_code; byte_offset; reason }
                  ->
                    Resim_trace.Fault.fail ~code:error_code ~offset:0
                      (Printf.sprintf "%s: byte %d: %s" path byte_offset
                         reason)
              in
              Ok
                (Sweep.stream_job
                   ~label:(Filename.basename path)
                   ?timeout:spec.Protocol.timeout ~config open_stream)
          | Some _ -> (
              match Resim_trace.Codec.read_file_result path with
              | Error error ->
                  Error
                    (Printf.sprintf "%s: %s" path
                       (Resim_trace.Codec.error_to_string error))
              | Ok (records, _format) ->
                  Ok
                    (Sweep.trace_job
                       ~label:(Filename.basename path)
                       ?timeout:spec.Protocol.timeout ?sample ~config records))))
  | None -> (
      match Resim_workloads.Workload.find spec.Protocol.kernel with
      | exception Not_found ->
          Error (Printf.sprintf "unknown kernel %S" spec.Protocol.kernel)
      | workload ->
          let scale =
            match spec.Protocol.scale with
            | Some n -> Sweep.Exact n
            | None -> Sweep.Default
          in
          Ok
            (Sweep.job ~scale ?timeout:spec.Protocol.timeout ?sample ~config
               workload))

(* --- outcome → payload -------------------------------------------- *)

let metrics_of (result : Sweep.result) =
  let stats_json = Stats.to_json result.outcome.Resim.stats in
  match result.sample_report with
  | None -> stats_json
  | Some report -> Resim_sample.Sample.splice_metrics ~stats_json report

let report_payload (report : Sweep.job_report) =
  let attempts = report.attempts in
  match report.outcome with
  | Sweep.Ok result ->
      payload ~outcome:"ok" ~exit_code:0 ~attempts
        ~metrics:(metrics_of result) ()
  | Sweep.Truncated (result, checkpoint) ->
      payload ~outcome:"truncated" ~exit_code:0 ~attempts
        ~metrics:(metrics_of result)
        ~checkpoint:(Checkpoint.to_string checkpoint)
        ()
  | Sweep.Timed_out wall ->
      payload ~outcome:"timed-out" ~exit_code:3 ~attempts
        ~detail:(Printf.sprintf "per-job budget hit after %.2fs" wall)
        ()
  | Sweep.Failed failure ->
      let detail = Sweep.failure_to_string failure in
      let outcome, exit_code =
        match failure with
        | Sweep.Fault _ -> ("fault", 3)
        | Sweep.Deadlock _ -> ("deadlock", 3)
        | Sweep.Invalid _ -> ("invalid-config", 2)
        | Sweep.Crashed _ -> ("crash", 3)
      in
      payload ~outcome ~exit_code ~attempts ~detail ()

(* --- execution ---------------------------------------------------- *)

let policy_of ~retries ~backoff ~max_backoff ~max_cycles =
  { Sweep.default_policy with Sweep.retries; backoff; max_backoff; max_cycles }

let run_simulate ~policy spec =
  match sim_job spec with
  | Error detail -> invalid detail
  | Ok job -> report_payload (Sweep.run_job_robust ~policy job)

let run_sweep ~policy ~progress ~kernels ~widths ~config ~timeout ~sample =
  match parse_sample sample with
  | Error detail -> invalid detail
  | Ok sample ->
      let specs =
        List.concat_map
          (fun kernel ->
            List.map
              (fun width -> (kernel, width, { config with Protocol.width = Some width }))
              widths)
          kernels
      in
      let total = List.length specs in
      let build (kernel, width, config_spec) =
        let ( let* ) = Result.bind in
        let* config = Protocol.resolve_config config_spec in
        match Resim_workloads.Workload.find kernel with
        | exception Not_found -> Error (Printf.sprintf "unknown kernel %S" kernel)
        | workload ->
            Ok
              (Sweep.job
                 ~label:(Printf.sprintf "%s/w%d" kernel width)
                 ~scale:Sweep.Default ?timeout ?sample ~config workload)
      in
      let reports =
        List.mapi
          (fun i spec3 ->
            let kernel, width, _ = spec3 in
            let label = Printf.sprintf "%s/w%d" kernel width in
            let report =
              match build spec3 with
              | Error detail ->
                  { Sweep.job =
                      Sweep.job
                        ~label
                        ~config:Resim_core.Config.reference
                        (Resim_workloads.Workload.find "gzip");
                    outcome = Sweep.Failed (Sweep.Invalid detail);
                    attempts = 1 }
              | Ok job -> Sweep.run_job_robust ~policy job
            in
            progress ~completed:(i + 1) ~total ~label;
            report)
          specs
      in
      let report = { Sweep.job_reports = reports } in
      let counts = Sweep.counts report in
      let attempts =
        List.fold_left
          (fun acc (r : Sweep.job_report) -> max acc r.attempts)
          1 reports
      in
      let metrics = Sweep.metrics_json report in
      if counts.Sweep.failed = 0 && counts.Sweep.timed_out = 0 then
        payload ~outcome:"ok" ~exit_code:0 ~attempts ~metrics ()
      else
        let any_invalid =
          List.exists
            (fun (r : Sweep.job_report) ->
              match r.Sweep.outcome with
              | Sweep.Failed (Sweep.Invalid _) -> true
              | _ -> false)
            reports
        in
        let outcome, exit_code =
          if any_invalid then ("invalid-config", 2) else ("fault", 3)
        in
        payload ~outcome ~exit_code ~attempts ~metrics
          ~detail:
            (Printf.sprintf "%d of %d job(s) failed"
               (counts.Sweep.failed + counts.Sweep.timed_out)
               total)
          ()

let run_lint ~path ~max_run =
  (* lint_file never raises now: host I/O failures come back as
     RSM-T009 diagnostics. An unreadable file is still an invalid
     request (exit 2), not a lint finding (exit 1). *)
  let report =
    Resim_check.Check.Trace.lint_file ?max_wrong_path_run:max_run path
  in
  let diagnostics = report.Resim_check.Trace_check.diagnostics in
  match
    List.find_opt
      (fun d -> d.Resim_check.Diagnostic.code = "RSM-T009")
      diagnostics
  with
  | Some d -> invalid d.Resim_check.Diagnostic.message
  | None ->
      if Resim_check.Check.Diagnostic.has_errors diagnostics then
        payload ~outcome:"lint-errors" ~exit_code:1 ~attempts:1
          ~detail:
            (Format.asprintf "%a" Resim_check.Check.Diagnostic.pp_list
               diagnostics)
          ()
      else
        payload ~outcome:"lint-clean" ~exit_code:0 ~attempts:1
          ~detail:
            (Printf.sprintf "%d record(s) checked"
               report.Resim_check.Trace_check.records_checked)
          ()

let run ?(progress = fun ~completed:_ ~total:_ ~label:_ -> ())
    ~retries ~backoff ~max_backoff ~test_hooks body =
  match body with
  | Protocol.Simulate spec ->
      let policy =
        policy_of ~retries ~backoff ~max_backoff
          ~max_cycles:spec.Protocol.max_cycles
      in
      run_simulate ~policy spec
  | Protocol.Sweep_grid { kernels; widths; config; max_cycles; timeout; sample }
    ->
      let policy = policy_of ~retries ~backoff ~max_backoff ~max_cycles in
      run_sweep ~policy ~progress ~kernels ~widths ~config ~timeout ~sample
  | Protocol.Lint { path; max_run } -> run_lint ~path ~max_run
  | Protocol.Status ->
      invalid "status is answered by the accept loop, not a worker"
  | Protocol.Crash_worker ->
      if test_hooks then raise Crashed_on_purpose
      else invalid "crash-worker requires a server started with --test-hooks"
