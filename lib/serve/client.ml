(* Blocking client for the resimd wire protocol (DESIGN.md §16).

   One request, one connection: connect, send a single framed request,
   then read framed events until a terminal one (done / rejected /
   status / protocol-error) or the stream ends. Every failure mode is
   a typed [error] so callers — the CLI, the load generator, the test
   suite — map outcomes to exit codes without string matching.

   This module spawns nothing and shares nothing; the load generator's
   worker domains call into it cross-module with connection-local
   state only. *)

type error =
  | Refused of string              (* could not connect: exit 4 *)
  | Transport of string            (* stream died mid-conversation *)
  | Malformed of Protocol.frame_error  (* unparseable server bytes *)

let error_to_string = function
  | Refused detail -> Printf.sprintf "connection refused: %s" detail
  | Transport detail -> Printf.sprintf "connection lost: %s" detail
  | Malformed fe -> Protocol.frame_error_to_string fe

(* Client-side exit codes 4 (unreachable) and 5 (admission refusal)
   extend the simulate/sweep/lint codes 0-3 that travel inside [Done]
   payloads; [Bad_request] keeps the invalid-input code 2. *)
let exit_code_of_error = function
  | Refused _ -> 4
  | Transport _ | Malformed _ -> 3

let exit_code_of_terminal = function
  | Protocol.Done payload -> payload.Protocol.exit_code
  | Protocol.Rejected (Protocol.Bad_request _) -> 2
  | Protocol.Rejected _ -> 5
  | Protocol.Status_report _ -> 0
  | Protocol.Protocol_error _ -> 3
  | Protocol.Accepted _ | Protocol.Progress _ -> 3

let connect socket =
  let fd = Unix.socket PF_UNIX SOCK_STREAM 0 in
  match Unix.connect fd (ADDR_UNIX socket) with
  | () -> Ok fd
  | exception Unix.Unix_error (code, _, _) ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      Error (Refused (Unix.error_message code))

let send_all fd data =
  let len = String.length data in
  let rec go sent =
    if sent >= len then Ok ()
    else
      match Unix.write_substring fd data sent (len - sent) with
      | exception Unix.Unix_error (EINTR, _, _) -> go sent
      | exception Unix.Unix_error (code, _, _) ->
          Error (Transport (Unix.error_message code))
      | written -> go (sent + written)
  in
  go 0

let is_terminal = function
  | Protocol.Done _ | Protocol.Rejected _ | Protocol.Status_report _
  | Protocol.Protocol_error _ ->
      true
  | Protocol.Accepted _ | Protocol.Progress _ -> false

(* Send [raw] as one frame and read events until a terminal one.
   [raw] is normally [Protocol.encode_request r]; tests use it to
   shove garbage and truncated frames down the wire. *)
let converse_raw ?(on_event = fun (_ : Protocol.event) -> ()) ~socket raw =
  match connect socket with
  | Error _ as e -> e
  | Ok fd ->
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          match send_all fd raw with
          | Error _ as e -> e
          | Ok () ->
              let inbuf = Buffer.create 512 in
              let chunk = Bytes.create 65536 in
              let rec read_events offset =
                let data = Buffer.contents inbuf in
                match Protocol.next_frame data ~offset with
                | Error fe -> Error (Malformed fe)
                | Ok (Some (payload, next)) -> (
                    match Protocol.decode_event payload with
                    | Error fe -> Error (Malformed fe)
                    | Ok event ->
                        on_event event;
                        if is_terminal event then Ok event
                        else read_events next)
                | Ok None -> (
                    match Unix.read fd chunk 0 (Bytes.length chunk) with
                    | exception Unix.Unix_error (EINTR, _, _) ->
                        read_events offset
                    | exception Unix.Unix_error (code, _, _) ->
                        Error (Transport (Unix.error_message code))
                    | 0 ->
                        Error
                          (Transport
                             "server closed the stream before a terminal \
                              event")
                    | n ->
                        Buffer.add_subbytes inbuf chunk 0 n;
                        read_events offset)
              in
              read_events 0)

let converse ?on_event ~socket request =
  converse_raw ?on_event ~socket
    (Protocol.frame (Protocol.encode_request request))
