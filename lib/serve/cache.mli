(** Content-addressed, persisted result cache (DESIGN.md §16).

    Keys derive from (engine identity, trace identity, sample spec) —
    the engine identity ({!Resim_core.Resim.engine_identity}) already
    folds in the build version and a hash of every configuration
    field. Values are fully-encoded [done] event payloads of
    *completed* runs; truncated or failed outcomes are never stored.
    Entries persist as [<dir>/<key>.json], so a repeat submission from
    any client — or after a daemon restart — is a hit, not a re-run.

    All table accesses are [Sync.with_lock]-bracketed (PR 8 bar). *)

type t

val create : ?dir:string -> unit -> t
(** In-memory cache, persisted under [dir] when given (created if
    missing; IO failures degrade to memory-only, never raise). *)

val key : engine:string -> trace:string -> sample:string option -> string
(** Cache key. [engine] is {!Resim_core.Resim.engine_identity} output
    (version + config hash); [trace] is the trace-content hash for
    file jobs or ["kernel:<name>:<scale>"] for generated ones. *)

val find : t -> string -> string option
(** Memory first, then the persisted entry (promoted into memory). *)

val store : t -> string -> string -> unit
(** Insert and persist (write-then-rename; IO failures degrade to
    memory-only). *)

val size : t -> int
