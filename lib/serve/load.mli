(** Load generator for resimd: N client domains firing small simulate
    requests at a running server, reporting jobs/sec and p50/p99
    latency per client-count tier (BENCH_service.json). *)

type tier = {
  clients : int;
  jobs : int;
  completed : int;
  errors : int;
  duration : float;
  jobs_per_sec : float;
  p50_ms : float;
  p99_ms : float;
}

val run :
  ?kernel:string ->
  ?jobs_per_client:int ->
  ?client_counts:int list ->
  socket:string ->
  unit ->
  tier list
(** Defaults: gzip kernel, 8 jobs per client, tiers of 1/4/16
    clients. Kernel scales vary per request so most requests miss the
    server cache. *)

val to_json : ?label:string -> tier list -> string
