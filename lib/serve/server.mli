(** resimd: the fault-tolerant simulation job server (DESIGN.md §16).

    A select-driven accept loop plus [workers] worker domains around a
    guarded job queue. Robustness guarantees, in the order they bite:

    - {b Admission control}: per-client outstanding-job quota
      ([Over_quota]) and a bounded queue ([Queue_full]), both rejected
      with typed events rather than dropped connections.
    - {b Graceful degradation}: under load, new lint requests are shed
      at half queue capacity and new sweeps at three quarters; at
      capacity an arriving simulate evicts one queued lint (then
      sweep). In-flight simulates are never shed.
    - {b Supervision}: a worker domain that dies is joined, its job is
      requeued with capped doubling backoff until the retry budget is
      spent (then reported as a [crash] outcome), and a replacement
      domain is spawned — the queue never wedges.
    - {b Result cache}: completed simulates are stored under a
      content-addressed key (engine identity × trace hash × sample
      spec), optionally persisted across restarts.
    - {b Clean drain}: SIGTERM/SIGINT flip an atomic; the loop stops
      accepting, finishes admitted work, joins every worker, flushes
      clients, and unlinks the socket. A stale socket left by an
      unclean death is detected (probe connect) and reclaimed. *)

type config = {
  socket_path : string;
  workers : int;          (** worker domains (≥ 1) *)
  max_queue : int;        (** queued-job bound driving shed/refuse *)
  max_per_client : int;   (** outstanding jobs per client name *)
  retries : int;          (** worker-death retries per job *)
  backoff : float;        (** initial crash-requeue delay, seconds *)
  max_backoff : float;    (** backoff cap, seconds *)
  cache_dir : string option;  (** persist cache entries here *)
  test_hooks : bool;      (** enable the [crash-worker] request *)
  verbose : bool;         (** supervision chatter on stderr *)
}

val default_config : socket_path:string -> config
(** 2 workers, queue of 64, quota 8, 2 retries, 50 ms → 1 s backoff,
    memory-only cache, no test hooks. *)

val counter_names : string list
(** Counters reported by [status]: accepted, rejected, shed, retried,
    cache_hits, cache_misses, completed, failed, malformed,
    worker_restarts. *)

val run : config -> (unit, string) result
(** Serve until SIGTERM/SIGINT, then drain and clean up. [Error]
    only when the socket is genuinely owned by a live server. *)
