(* resimd: the fault-tolerant simulation job server (DESIGN.md §16).

   One accept loop (this module, single-threaded, select-driven) and
   [config.workers] worker domains around two guarded queues:

     sessions --admit--> pending --worker--> completions --> sessions

   Domain-safety story (the PR 8 resim-dsafe bar, zero annotations):

   - Everything a worker domain touches is either confined (its job's
     engine, inside [Exec]), an [Atomic.t] (stop/alive/drain flags,
     counters), or bracketed by [Sync.with_lock shared.mutex] (the
     pending queue, the completion queue, the running-job table).
   - Everything else — client sessions and their buffers, quota and
     attempt tables, the delayed-retry list — belongs to the accept
     loop alone and is never captured by a spawned closure.
   - Signal handlers only flip an [Atomic.t]; the accept loop notices
     on its next select tick and performs the actual drain, so no
     lock is ever taken from handler context.

   Supervision: a worker that dies (the [Crash_worker] test hook, or
   any escaped exception) marks its slot's alive-flag false and wakes
   the loop through the self-pipe. The loop joins the dead domain,
   requeues its in-flight job with one more attempt charged against
   the retry budget (capped, doubling backoff), spawns a replacement,
   and the queue never drains into the void. Past the budget the job
   completes as a [crash] outcome instead — degraded, not wedged.

   Degradation order under load: new lint is shed at half queue
   capacity, new sweeps at three quarters, and at capacity an arriving
   simulate evicts a queued lint (then sweep) before being refused —
   in-flight simulates are never shed. *)

module Sync = Resim_core.Sync
module Counters = Resim_obs.Counters

type config = {
  socket_path : string;
  workers : int;
  max_queue : int;
  max_per_client : int;
  retries : int;        (* extra attempts after a worker-domain death *)
  backoff : float;
  max_backoff : float;
  cache_dir : string option;
  test_hooks : bool;
  verbose : bool;
}

let default_config ~socket_path =
  { socket_path;
    workers = 2;
    max_queue = 64;
    max_per_client = 8;
    retries = 2;
    backoff = 0.05;
    max_backoff = 1.0;
    cache_dir = None;
    test_hooks = false;
    verbose = false }

let counter_names =
  [ "accepted"; "rejected"; "shed"; "retried"; "cache_hits"; "cache_misses";
    "completed"; "failed"; "malformed"; "worker_restarts" ]

(* --- state shared with worker domains ----------------------------- *)

type job = {
  id : int;
  session : int;  (* session id; the accept loop resolves it *)
  client : string;
  body : Protocol.body;
  cache_key : string option;
}

type completion =
  | Finished of int * job * Protocol.done_payload  (* worker slot, .. *)
  | Progressed of job * int * int * string

type shared = {
  mutex : Mutex.t;
  work : Condition.t;
  pending : job Queue.t;            (* guarded by [mutex] *)
  completions : completion Queue.t; (* guarded by [mutex] *)
  running : (int, job) Hashtbl.t;   (* worker slot → job; guarded *)
  stop : bool Atomic.t;
  draining : bool Atomic.t;
  wake_w : Unix.file_descr;
  counters : Counters.t;
  in_worker_retries : int;
  backoff : float;
  max_backoff : float;
  test_hooks : bool;
}

let wake shared =
  try ignore (Unix.write_substring shared.wake_w "w" 0 1)
  with Unix.Unix_error _ -> ()

(* The worker loop is the only code here that runs on a spawned
   domain: take a job under the lock, execute it cross-module, push
   the completion under the lock, wake the accept loop. Any exception
   escaping [Exec.run] ends the domain *cleanly* (no re-raise into
   [Domain.join]) with the job still parked in [running] — that is the
   signal the supervisor reads as "crashed mid-job". *)
let worker_body shared slot =
  let rec go () =
    let next =
      Sync.with_lock shared.mutex (fun () ->
          while
            Queue.is_empty shared.pending && not (Atomic.get shared.stop)
          do
            Condition.wait shared.work shared.mutex
          done;
          match Queue.take_opt shared.pending with
          | Some job ->
              Hashtbl.replace shared.running slot job;
              Some job
          | None -> None)
    in
    match next with
    | None -> ()
    | Some job ->
        let progress ~completed ~total ~label =
          Sync.with_lock shared.mutex (fun () ->
              Queue.push
                (Progressed (job, completed, total, label))
                shared.completions);
          wake shared
        in
        let payload =
          Exec.run ~progress ~retries:shared.in_worker_retries
            ~backoff:shared.backoff ~max_backoff:shared.max_backoff
            ~test_hooks:shared.test_hooks job.body
        in
        Sync.with_lock shared.mutex (fun () ->
            Hashtbl.remove shared.running slot;
            Queue.push (Finished (slot, job, payload)) shared.completions);
        wake shared;
        go ()
  in
  go ()

let worker_main shared slot alive () =
  (try worker_body shared slot with _ -> ());
  Atomic.set alive false;
  wake shared

(* --- accept-loop state (never crosses a domain) -------------------- *)

type session = {
  sid : int;
  fd : Unix.file_descr;
  inbuf : Buffer.t;
  mutable in_pos : int;   (* bytes of [inbuf] already consumed *)
  out : Buffer.t;
  mutable out_pos : int;  (* bytes of [out] already written *)
  mutable requested : bool;
  mutable close_after_flush : bool;
}

type slot = { mutable handle : unit Domain.t; mutable alive : bool Atomic.t }

type loop = {
  config : config;
  shared : shared;
  cache : Cache.t;
  listen_fd : Unix.file_descr;
  wake_r : Unix.file_descr;
  sessions : (int, session) Hashtbl.t;
  client_counts : (string, int) Hashtbl.t;
  attempts : (int, int) Hashtbl.t;  (* job id → worker-domain attempts *)
  mutable delayed : (float * job) list;  (* crash-requeue backoff *)
  slots : slot array;
  mutable next_sid : int;
  mutable next_job : int;
}

let log loop fmt =
  if loop.config.verbose then
    Printf.ksprintf (fun s -> prerr_endline ("resimd: " ^ s)) fmt
  else Printf.ksprintf ignore fmt

let send_event session event =
  Buffer.add_string session.out (Protocol.frame (Protocol.encode_event event))

let session_of_job loop (job : job) =
  Hashtbl.find_opt loop.sessions job.session

let queue_depth loop =
  Sync.with_lock loop.shared.mutex (fun () -> Queue.length loop.shared.pending)
  + List.length loop.delayed

let running_count loop =
  Sync.with_lock loop.shared.mutex (fun () ->
      Hashtbl.length loop.shared.running)

let enqueue loop job =
  Sync.with_lock loop.shared.mutex (fun () ->
      Queue.push job loop.shared.pending;
      Condition.signal loop.shared.work)

let decr_client loop client =
  match Hashtbl.find_opt loop.client_counts client with
  | Some n when n > 1 -> Hashtbl.replace loop.client_counts client (n - 1)
  | Some _ -> Hashtbl.remove loop.client_counts client
  | None -> ()

(* Completion-side bookkeeping shared by the normal path, the crash
   path and eviction. *)
let finish_job loop (job : job) =
  decr_client loop job.client;
  Hashtbl.remove loop.attempts job.id

let deliver_done loop (job : job) payload =
  finish_job loop job;
  Counters.incr loop.shared.counters
    (if payload.Protocol.exit_code = 0 then "completed" else "failed");
  match session_of_job loop job with
  | None -> ()  (* client hung up; result is dropped (or cached) *)
  | Some session ->
      send_event session (Protocol.Done payload);
      session.close_after_flush <- true

(* --- admission ----------------------------------------------------- *)

let reject loop session rejection =
  Counters.incr loop.shared.counters
    (match rejection with
    | Protocol.Shed_lint | Protocol.Shed_sweep -> "shed"
    | _ -> "rejected");
  send_event session (Protocol.Rejected rejection);
  session.close_after_flush <- true

(* At capacity, an arriving simulate evicts one *queued* lint (then
   sweep) — the victim's client gets a typed shed rejection, and
   in-flight work is never touched. *)
let evict_for_simulate loop =
  let victim =
    Sync.with_lock loop.shared.mutex (fun () ->
        let items = List.of_seq (Queue.to_seq loop.shared.pending) in
        let pick cls =
          List.find_opt
            (fun (j : job) -> Protocol.body_class j.body = cls)
            items
        in
        match
          (match pick `Lint with Some v -> Some v | None -> pick `Sweep)
        with
        | None -> None
        | Some victim ->
            Queue.clear loop.shared.pending;
            List.iter
              (fun (j : job) ->
                if j.id <> victim.id then Queue.push j loop.shared.pending)
              items;
            Some victim)
  in
  match victim with
  | None -> false
  | Some victim ->
      let rejection =
        match Protocol.body_class victim.body with
        | `Lint -> Protocol.Shed_lint
        | _ -> Protocol.Shed_sweep
      in
      Counters.incr loop.shared.counters "shed";
      finish_job loop victim;
      (match session_of_job loop victim with
      | None -> ()
      | Some session ->
          send_event session (Protocol.Rejected rejection);
          session.close_after_flush <- true);
      true

let status_event loop =
  Protocol.Status_report
    { counters = Counters.snapshot loop.shared.counters;
      queue = queue_depth loop;
      running = running_count loop;
      workers = Array.length loop.slots;
      draining = Atomic.get loop.shared.draining }

let cached_done loop key =
  match Cache.find loop.cache key with
  | None -> None
  | Some stored -> (
      (* A corrupt persisted entry decodes to an error — treat as a
         miss rather than serving garbage. *)
      match Protocol.decode_event stored with
      | Ok (Protocol.Done payload) ->
          Some { payload with Protocol.cached = true }
      | Ok _ | Error _ -> None)

let admit loop session (request : Protocol.request) =
  let { Protocol.client; body } = request in
  match Protocol.body_class body with
  | `Status ->
      send_event session (status_event loop);
      session.close_after_flush <- true
  | (`Simulate | `Sweep | `Lint) as cls ->
      if Atomic.get loop.shared.draining then reject loop session Protocol.Draining
      else if body = Protocol.Crash_worker && not loop.config.test_hooks then
        reject loop session
          (Protocol.Bad_request "crash-worker requires --test-hooks")
      else
        let outstanding =
          Option.value ~default:0 (Hashtbl.find_opt loop.client_counts client)
        in
        if outstanding >= loop.config.max_per_client then
          reject loop session Protocol.Over_quota
        else
          let depth = queue_depth loop in
          let shed_watermark frac =
            depth * 4 >= loop.config.max_queue * frac
          in
          if cls = `Lint && shed_watermark 2 then
            reject loop session Protocol.Shed_lint
          else if cls = `Sweep && shed_watermark 3 then
            reject loop session Protocol.Shed_sweep
          else if
            depth >= loop.config.max_queue
            && not (cls = `Simulate && evict_for_simulate loop)
          then reject loop session Protocol.Queue_full
          else
            let cache_key = Exec.cache_key body in
            match Option.bind cache_key (cached_done loop) with
            | Some payload ->
                Counters.incr loop.shared.counters "cache_hits";
                send_event session (Protocol.Done payload);
                session.close_after_flush <- true
            | None ->
                if Option.is_some cache_key then
                  Counters.incr loop.shared.counters "cache_misses";
                let id = loop.next_job in
                loop.next_job <- id + 1;
                let job =
                  { id; session = session.sid; client; body; cache_key }
                in
                Counters.incr loop.shared.counters "accepted";
                Hashtbl.replace loop.client_counts client (outstanding + 1);
                Hashtbl.replace loop.attempts id 1;
                send_event session (Protocol.Accepted { job_id = id });
                enqueue loop job

(* --- frame plumbing ------------------------------------------------ *)

let close_session loop session =
  Hashtbl.remove loop.sessions session.sid;
  try Unix.close session.fd with Unix.Unix_error _ -> ()

let on_frame loop session payload =
  if session.requested then begin
    (* One request per connection; a second frame is a shape error. *)
    Counters.incr loop.shared.counters "malformed";
    send_event session
      (Protocol.Protocol_error
         { code = "RSM-S004"; detail = "a connection carries one request" });
    session.close_after_flush <- true
  end
  else begin
    session.requested <- true;
    match Protocol.decode_request payload with
    | Error error ->
        Counters.incr loop.shared.counters "malformed";
        send_event session (Protocol.Protocol_error error);
        session.close_after_flush <- true
    | Ok request -> admit loop session request
  end

let on_readable loop session =
  let chunk = Bytes.create 65536 in
  match Unix.read session.fd chunk 0 (Bytes.length chunk) with
  | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) -> ()
  | exception Unix.Unix_error _ -> close_session loop session
  | 0 ->
      (* EOF. Leftover bytes mean the peer died mid-frame (RSM-S002) —
         nobody to tell, but the counter records it. *)
      let data = Buffer.contents session.inbuf in
      (match Protocol.finish data ~offset:session.in_pos with
      | Ok () -> ()
      | Error _ -> Counters.incr loop.shared.counters "malformed");
      if Buffer.length session.out > session.out_pos then
        session.close_after_flush <- true
      else close_session loop session
  | n ->
      Buffer.add_subbytes session.inbuf chunk 0 n;
      let data = Buffer.contents session.inbuf in
      let rec frames offset =
        match Protocol.next_frame data ~offset with
        | Ok None -> session.in_pos <- offset
        | Ok (Some (payload, next)) ->
            on_frame loop session payload;
            frames next
        | Error error ->
            session.in_pos <- offset;
            Counters.incr loop.shared.counters "malformed";
            send_event session (Protocol.Protocol_error error);
            session.close_after_flush <- true
      in
      frames session.in_pos

let on_writable loop session =
  let data = Buffer.contents session.out in
  let remaining = String.length data - session.out_pos in
  if remaining > 0 then begin
    match Unix.write_substring session.fd data session.out_pos remaining with
    | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) -> ()
    | exception Unix.Unix_error _ -> close_session loop session
    | written -> session.out_pos <- session.out_pos + written
  end;
  if
    session.close_after_flush
    && session.out_pos >= Buffer.length session.out
    && Hashtbl.mem loop.sessions session.sid
  then close_session loop session

let accept_clients loop =
  let rec go () =
    match Unix.accept ~cloexec:true loop.listen_fd with
    | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) -> ()
    | exception Unix.Unix_error _ -> ()
    | fd, _addr ->
        Unix.set_nonblock fd;
        let sid = loop.next_sid in
        loop.next_sid <- sid + 1;
        Hashtbl.replace loop.sessions sid
          { sid;
            fd;
            inbuf = Buffer.create 512;
            in_pos = 0;
            out = Buffer.create 512;
            out_pos = 0;
            requested = false;
            close_after_flush = false };
        go ()
  in
  go ()

(* --- completions and supervision ----------------------------------- *)

let drain_completions loop =
  let batch =
    Sync.with_lock loop.shared.mutex (fun () ->
        let items = List.of_seq (Queue.to_seq loop.shared.completions) in
        Queue.clear loop.shared.completions;
        items)
  in
  List.iter
    (fun completion ->
      match completion with
      | Progressed (job, completed, total, label) -> (
          match session_of_job loop job with
          | None -> ()
          | Some session ->
              send_event session
                (Protocol.Progress { completed; total; label }))
      | Finished (_slot, job, payload) ->
          let attempts_so_far =
            Option.value ~default:payload.Protocol.attempts
              (Hashtbl.find_opt loop.attempts job.id)
          in
          let payload =
            { payload with
              Protocol.attempts = max payload.Protocol.attempts attempts_so_far }
          in
          (match (job.cache_key, payload.Protocol.outcome) with
          | Some key, "ok" ->
              Cache.store loop.cache key
                (Protocol.encode_event (Protocol.Done payload))
          | _ -> ());
          deliver_done loop job payload)
    batch

let spawn_slot loop i =
  let alive = Atomic.make true in
  let handle = Domain.spawn (worker_main loop.shared i alive) in
  loop.slots.(i) <- { handle; alive }

(* A dead slot with a job still parked in [running] is a crash: join
   the domain, requeue (with backoff) or report, respawn. A dead slot
   with no job is a clean stop-drain exit. *)
let supervise loop =
  Array.iteri
    (fun i slot ->
      if not (Atomic.get slot.alive) then begin
        Domain.join slot.handle;
        let crashed =
          Sync.with_lock loop.shared.mutex (fun () ->
              match Hashtbl.find_opt loop.shared.running i with
              | None -> None
              | Some job ->
                  Hashtbl.remove loop.shared.running i;
                  Some job)
        in
        (match crashed with
        | None -> ()
        | Some job ->
            let attempts_so_far =
              Option.value ~default:1 (Hashtbl.find_opt loop.attempts job.id)
            in
            if attempts_so_far <= loop.config.retries then begin
              Hashtbl.replace loop.attempts job.id (attempts_so_far + 1);
              Counters.incr loop.shared.counters "retried";
              let delay =
                Float.min loop.config.max_backoff
                  (loop.config.backoff
                  *. (2. ** float_of_int (attempts_so_far - 1)))
              in
              log loop "worker %d died on job %d; retry in %.2fs" i job.id
                delay;
              loop.delayed <-
                (Unix.gettimeofday () +. delay, job) :: loop.delayed
            end
            else
              deliver_done loop job
                { Protocol.outcome = "crash";
                  exit_code = 3;
                  cached = false;
                  attempts = attempts_so_far;
                  detail =
                    Some
                      (Printf.sprintf
                         "worker domain died %d time(s) running this job"
                         attempts_so_far);
                  metrics = None;
                  checkpoint = None });
        if not (Atomic.get loop.shared.stop) then begin
          Counters.incr loop.shared.counters "worker_restarts";
          log loop "respawning worker %d" i;
          spawn_slot loop i
        end
      end)
    loop.slots

let promote_delayed loop =
  let now = Unix.gettimeofday () in
  let due, still = List.partition (fun (at, _) -> at <= now) loop.delayed in
  loop.delayed <- still;
  List.iter (fun (_, job) -> enqueue loop job) due

(* --- socket lifecycle ---------------------------------------------- *)

let claim_socket path =
  if Sys.file_exists path then begin
    let probe = Unix.socket PF_UNIX SOCK_STREAM 0 in
    match Unix.connect probe (ADDR_UNIX path) with
    | () ->
        Unix.close probe;
        Error (Printf.sprintf "%s: a server is already listening" path)
    | exception Unix.Unix_error _ ->
        (* Stale socket from an unclean exit: reclaim it. *)
        Unix.close probe;
        (try Sys.remove path with Sys_error _ -> ());
        Ok ()
  end
  else Ok ()

(* --- main ----------------------------------------------------------- *)

let run config =
  match claim_socket config.socket_path with
  | Error message -> Error message
  | Ok () ->
      let listen_fd = Unix.socket ~cloexec:true PF_UNIX SOCK_STREAM 0 in
      Unix.bind listen_fd (ADDR_UNIX config.socket_path);
      Unix.listen listen_fd 64;
      Unix.set_nonblock listen_fd;
      let wake_r, wake_w = Unix.pipe ~cloexec:true () in
      Unix.set_nonblock wake_r;
      let shared =
        { mutex = Mutex.create ();
          work = Condition.create ();
          pending = Queue.create ();
          completions = Queue.create ();
          running = Hashtbl.create 16;
          stop = Atomic.make false;
          draining = Atomic.make false;
          wake_w;
          counters = Counters.make counter_names;
          in_worker_retries = 0;
          backoff = config.backoff;
          max_backoff = config.max_backoff;
          test_hooks = config.test_hooks }
      in
      let loop =
        { config;
          shared;
          cache = Cache.create ?dir:config.cache_dir ();
          listen_fd;
          wake_r;
          sessions = Hashtbl.create 16;
          client_counts = Hashtbl.create 16;
          attempts = Hashtbl.create 16;
          delayed = [];
          slots =
            Array.init (max 1 config.workers) (fun i ->
                let alive = Atomic.make true in
                { handle = Domain.spawn (worker_main shared i alive); alive });
          next_sid = 1;
          next_job = 1 }
      in
      let previous_term =
        Sys.signal Sys.sigterm
          (Sys.Signal_handle (fun _ -> Atomic.set shared.draining true))
      in
      let previous_int =
        Sys.signal Sys.sigint
          (Sys.Signal_handle (fun _ -> Atomic.set shared.draining true))
      in
      (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
       with Invalid_argument _ | Sys_error _ -> ());
      print_string
        (Printf.sprintf "resimd: listening on %s (%d workers)\n"
           config.socket_path
           (Array.length loop.slots));
      flush stdout;
      let finished = ref false in
      while not !finished do
        drain_completions loop;
        supervise loop;
        promote_delayed loop;
        let draining = Atomic.get shared.draining in
        if
          draining
          && queue_depth loop = 0
          && running_count loop = 0
        then begin
          (* Admitted work has drained: stop the workers, deliver the
             final completions, flush what we can, and leave no stale
             socket behind. *)
          Atomic.set shared.stop true;
          Sync.with_lock shared.mutex (fun () ->
              Condition.broadcast shared.work);
          Array.iter
            (fun slot -> try Domain.join slot.handle with _ -> ())
            loop.slots;
          drain_completions loop;
          Hashtbl.iter
            (fun _ session ->
              try on_writable loop session with _ -> ())
            (Hashtbl.copy loop.sessions);
          finished := true
        end
        else begin
          let reads = ref [ loop.wake_r ] in
          if not draining then reads := loop.listen_fd :: !reads;
          let writes = ref [] in
          Hashtbl.iter
            (fun _ session ->
              reads := session.fd :: !reads;
              if Buffer.length session.out > session.out_pos then
                writes := session.fd :: !writes)
            loop.sessions;
          match Unix.select !reads !writes [] 0.2 with
          | exception Unix.Unix_error (EINTR, _, _) -> ()
          | readable, writable, _ ->
              if List.memq loop.wake_r readable then begin
                let buf = Bytes.create 256 in
                let rec drain () =
                  match Unix.read loop.wake_r buf 0 256 with
                  | exception Unix.Unix_error _ -> ()
                  | 0 -> ()
                  | _ -> drain ()
                in
                drain ()
              end;
              if (not draining) && List.memq loop.listen_fd readable then
                accept_clients loop;
              let by_fd = Hashtbl.create 16 in
              Hashtbl.iter
                (fun _ session -> Hashtbl.replace by_fd session.fd session)
                loop.sessions;
              List.iter
                (fun fd ->
                  match Hashtbl.find_opt by_fd fd with
                  | Some session -> on_readable loop session
                  | None -> ())
                readable;
              List.iter
                (fun fd ->
                  match Hashtbl.find_opt by_fd fd with
                  | Some session ->
                      if Hashtbl.mem loop.sessions session.sid then
                        on_writable loop session
                  | None -> ())
                writable;
              (* Give freshly queued output a chance to flush without
                 waiting for the next select round. *)
              Hashtbl.iter
                (fun _ session ->
                  if Buffer.length session.out > session.out_pos then
                    on_writable loop session)
                (Hashtbl.copy loop.sessions)
        end
      done;
      Hashtbl.iter
        (fun _ session ->
          try Unix.close session.fd with Unix.Unix_error _ -> ())
        loop.sessions;
      (try Unix.close listen_fd with Unix.Unix_error _ -> ());
      (try Unix.close wake_r with Unix.Unix_error _ -> ());
      (try Unix.close shared.wake_w with Unix.Unix_error _ -> ());
      (try Sys.remove config.socket_path with Sys_error _ -> ());
      Sys.set_signal Sys.sigterm previous_term;
      Sys.set_signal Sys.sigint previous_int;
      Ok ()
