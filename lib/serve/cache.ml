(* Content-addressed result cache (DESIGN.md §16).

   Key = FNV-1a over (engine identity, config hash, trace identity,
   sample spec) — {!Resim_core.Resim.engine_identity} already pins the
   build version and every configuration field, the trace component is
   either the file-content hash (for [--trace] jobs) or
   ["kernel:<name>:<scale>"] (generation is deterministic), and the
   sample spec changes which cycles are measured. The value is the
   fully-encoded [done] event payload of a *completed* run — partial
   (truncated) and failed outcomes are never cached.

   Layering: [Reports.Runner] memoizes per-config traces within one
   process; this cache memoizes whole results across processes and
   clients, persisted as <dir>/<key>.json so a daemon restart keeps
   its history.

   Concurrency: every access to the in-memory table goes through
   [Sync.with_lock] — the server's accept loop is the only caller
   today, but the table is shared server state and the PR 8 bar
   (resim-dsafe) wants the guarantee in the code, not in a comment
   about current call sites. *)

module Sync = Resim_core.Sync

type t = {
  dir : string option;
  mutex : Mutex.t;
  table : (string, string) Hashtbl.t;
}

let create ?dir () =
  (match dir with
  | Some dir when not (Sys.file_exists dir) ->
      (try Unix.mkdir dir 0o755 with Unix.Unix_error _ -> ())
  | _ -> ());
  { dir; mutex = Mutex.create (); table = Hashtbl.create 64 }

let key ~engine ~trace ~sample =
  Resim_core.Hash.strings
    [ engine; trace; Option.value ~default:"" sample ]

let path_of t key =
  Option.map (fun dir -> Filename.concat dir (key ^ ".json")) t.dir

let read_file path =
  match open_in_bin path with
  | exception Sys_error _ -> None
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          match really_input_string ic (in_channel_length ic) with
          | data -> Some data
          | exception (Sys_error _ | End_of_file) -> None)

let find t key =
  match Sync.with_lock t.mutex (fun () -> Hashtbl.find_opt t.table key) with
  | Some payload -> Some payload
  | None -> (
      match Option.bind (path_of t key) read_file with
      | None -> None
      | Some payload ->
          Sync.with_lock t.mutex (fun () ->
              Hashtbl.replace t.table key payload);
          Some payload)

let store t key payload =
  Sync.with_lock t.mutex (fun () -> Hashtbl.replace t.table key payload);
  match path_of t key with
  | None -> ()
  | Some path ->
      (* Write-then-rename so a crashed daemon never leaves a torn
         entry for the next one to trust. *)
      let tmp = path ^ ".tmp" in
      (try
         let oc = open_out_bin tmp in
         Fun.protect
           ~finally:(fun () -> close_out_noerr oc)
           (fun () -> output_string oc payload);
         Sys.rename tmp path
       with Sys_error _ -> ())

let size t = Sync.with_lock t.mutex (fun () -> Hashtbl.length t.table)
