(** resimd wire protocol: length-prefixed JSON frames (DESIGN.md §16).

    A frame is a 4-byte big-endian payload length followed by that
    many bytes of JSON. A connection carries one {!request} from the
    client and a stream of {!event}s back, ending in [Done],
    [Rejected] or [Protocol_error]. Malformed input is always a
    structured {!frame_error} — [RSM-S001] oversized frame, [RSM-S002]
    truncated stream, [RSM-S003] payload not JSON, [RSM-S004] JSON of
    the wrong shape — never an exception. *)

type frame_error = { code : string; detail : string }

val frame_error_to_string : frame_error -> string

(** {1 Framing} *)

val max_frame : int
(** 16 MiB. A declared length beyond this is [RSM-S001]. *)

val frame : string -> string
(** Prefix the payload with its 4-byte big-endian length. Raises
    [Invalid_argument] beyond {!max_frame} (server payloads are
    bounded by construction). *)

val next_frame :
  string -> offset:int -> ((string * int) option, frame_error) result
(** Extract the next complete frame from a receive buffer:
    [Ok (Some (payload, next_offset))] on a complete frame, [Ok None]
    when more bytes are needed, [Error] ([RSM-S001]) when the declared
    length exceeds {!max_frame}. *)

val finish : string -> offset:int -> (unit, frame_error) result
(** At end-of-stream: trailing bytes that never completed a frame are
    [RSM-S002]. *)

(** {1 Requests} *)

(** Wire form of a configuration: a named base plus overrides. A
    [width] override derives the same front end as [resim vhdl]
    (IFQ/decouple/ALU count, memory ports, organization), so wire jobs
    agree with the rest of the tooling about what "width N" means. *)
type config_spec = {
  base : string;  (** ["reference"] or ["fast"] *)
  width : int option;
  rob : int option;
  lsq : int option;
  organization : string option;  (** simple | improved | optimized *)
  scheduler : string option;     (** scan | event *)
}

val reference_spec : config_spec

val resolve_config : config_spec -> (Resim_core.Config.t, string) result
(** Build the configuration a spec denotes. [Error] on unknown names;
    structural validation (resim-check) happens server-side per job. *)

type sim_spec = {
  kernel : string;
  scale : int option;
  trace : string option;
      (** server-host path to an encoded trace file, overriding kernel
          generation *)
  config : config_spec;
  max_cycles : int64 option;
  timeout : float option;
  sample : string option;  (** [detail:warmup[:seed]] *)
}

type body =
  | Simulate of sim_spec
  | Sweep_grid of {
      kernels : string list;
      widths : int list;
      config : config_spec;
      max_cycles : int64 option;
      timeout : float option;
      sample : string option;
    }  (** the kernels × widths grid, run as one streamed job *)
  | Lint of { path : string; max_run : int option }
  | Status
  | Crash_worker
      (** test hook ([resim serve --test-hooks]): the worker domain
          that takes this job dies, exercising the supervisor *)

type request = { client : string; body : body }

val body_class : body -> [ `Simulate | `Sweep | `Lint | `Status ]
(** Admission class: shedding targets [`Lint] first, then [`Sweep],
    never [`Simulate]. *)

(** {1 Events} *)

type rejection =
  | Over_quota    (** the client is at its outstanding-job quota *)
  | Queue_full    (** global queue at capacity *)
  | Shed_lint     (** overload shedding: lint refused first *)
  | Shed_sweep    (** overload shedding: sweeps refused next *)
  | Draining      (** server is draining after SIGTERM *)
  | Bad_request of string

val rejection_tag : rejection -> string
val rejection_to_string : rejection -> string

type done_payload = {
  outcome : string;
      (** ok | truncated | fault | deadlock | invalid-config | crash |
          timed-out | lint-clean | lint-errors *)
  exit_code : int;
      (** authoritative CLI exit for this outcome: 0 ok/truncated,
          1 lint errors, 2 invalid config/bad request, 3 server-side
          fault (fault/deadlock/crash/timed-out) *)
  cached : bool;
  attempts : int;
  detail : string option;
  metrics : string option;  (** a complete JSON document, verbatim *)
  checkpoint : string option;  (** RSCP text when truncated *)
}

type event =
  | Accepted of { job_id : int }
  | Rejected of rejection
  | Progress of { completed : int; total : int; label : string }
  | Done of done_payload
  | Status_report of {
      counters : (string * int) list;
      queue : int;
      running : int;
      workers : int;
      draining : bool;
    }
  | Protocol_error of frame_error

(** {1 Codec}

    [decode_* (encode_* x) = Ok x] — the qcheck property in
    [test/test_serve.ml]. *)

val encode_request : request -> string
val decode_request : string -> (request, frame_error) result
val encode_event : event -> string
val decode_event : string -> (event, frame_error) result
