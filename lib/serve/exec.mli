(** Request execution on a worker domain.

    Confined by construction: engines, traces and statistics live and
    die on the calling domain; only immutable payload records flow
    back. Runs under [Sweep.run_job_robust]'s fault domain, so every
    failure mode is a typed outcome in the returned payload — this
    function raises only for the [Crash_worker] test hook. *)

exception Crashed_on_purpose
(** Raised (deliberately) by the [Crash_worker] test hook so the
    worker domain dies and the supervisor's respawn path runs. *)

val cache_key : Protocol.body -> string option
(** The content-addressed cache key for a cacheable request — only
    simulates qualify; [None] for everything else, for unresolvable
    configs, and for unreadable trace files. Budgets are deliberately
    not part of the key: only completed ("ok") outcomes are ever
    stored, and a run that completed under a budget is bit-identical
    to one that never had it. *)

val run :
  ?progress:(completed:int -> total:int -> label:string -> unit) ->
  retries:int ->
  backoff:float ->
  max_backoff:float ->
  test_hooks:bool ->
  Protocol.body ->
  Protocol.done_payload
(** Execute one request body to completion. [progress] fires after
    each sweep sub-job (simulates and lints report no intermediate
    progress). [retries]/[backoff]/[max_backoff] bound the host-
    transient retry loop ({!Resim_sweep.Sweep.retryable} outcomes
    only). *)
