(** Blocking client for the resimd wire protocol.

    One request per connection; events stream back until a terminal
    one. Failures are typed so callers map them straight onto the
    documented exit codes: 4 for an unreachable server, 5 for a typed
    admission refusal, 2 for a bad request, 3 for transport or
    protocol faults, and the payload's own code (0-3) for completed
    jobs. *)

type error =
  | Refused of string  (** could not connect — exit 4 *)
  | Transport of string  (** stream died mid-conversation — exit 3 *)
  | Malformed of Protocol.frame_error  (** unparseable bytes — exit 3 *)

val error_to_string : error -> string
val exit_code_of_error : error -> int

val exit_code_of_terminal : Protocol.event -> int
(** Exit code implied by a terminal event (see module doc). *)

val converse :
  ?on_event:(Protocol.event -> unit) ->
  socket:string ->
  Protocol.request ->
  (Protocol.event, error) result
(** Connect to [socket], send the request, stream events through
    [on_event] (terminal one included) and return the terminal
    event. *)

val converse_raw :
  ?on_event:(Protocol.event -> unit) ->
  socket:string ->
  string ->
  (Protocol.event, error) result
(** [converse] over pre-framed bytes — lets tests send truncated,
    oversized or garbage frames and observe the typed error reply. *)
