(** Sampled simulation with functional warm-up (DESIGN.md §13).

    SMARTS-style systematic sampling: the run alternates short detailed
    intervals — full timing through {!Resim_core.Engine.run_bounded} —
    with long functional gaps that advance the trace cursor, cache
    hierarchies and branch predictor state through
    {!Resim_core.Engine.functional_warmup} at a fraction of the cost.
    Per-interval IPC is accumulated and reported as a mean with a 95%
    confidence interval (Student-t below 30 intervals); the full-run
    IPC is expected to fall within that interval, which the
    differential suite asserts across the kernel grid.

    Everything is deterministic for a fixed spec: the initial sampling
    offset comes from a splitmix-style hash of the seed, never from a
    clock or [Random]. *)

(** A sampling schedule, written [detail:warmup[:seed]] on the command
    line — e.g. [1000:19000] measures 1000 committed instructions out
    of every 20000. *)
type spec = {
  detail : int;  (** committed instructions measured per interval, >= 1 *)
  warmup : int;
      (** instructions functionally warmed between intervals, >= 0 *)
  seed : int;  (** offset-randomisation seed, >= 0 (default 0) *)
}

val spec_of_string : string -> (spec, string) result
(** Parse [detail:warmup[:seed]]. Errors name the offending field. *)

val spec_to_string : spec -> string
(** Round-trips through {!spec_of_string}. *)

(** One measured interval. The priming window (a few ROB-fulls of
    commits after each warm-up gap, excluded from measurement while the
    pipeline refills) precedes [instructions]. *)
type interval = {
  index : int;
  start_cursor : int;  (** trace cursor when measurement began *)
  instructions : int;  (** committed in the measured window *)
  cycles : int64;  (** detailed major cycles in the measured window *)
  interval_ipc : float;
}

type report = {
  spec : spec;
  initial_offset : int;
      (** instructions functionally skipped before the first unit,
          [hash seed mod (detail + warmup)] *)
  intervals : interval list;  (** in trace order *)
  discarded_partial : int;
      (** trailing intervals dropped for ending before half the
          [detail] target *)
  mean_ipc : float;  (** unweighted mean of interval IPCs; the estimate *)
  ci95 : float;
      (** 95% confidence half-width; [infinity] below two intervals *)
  detailed_instructions : int;  (** total committed in measured windows *)
  warmed_instructions : int;  (** total functionally warmed *)
}

val covers : report -> float -> bool
(** [covers report ipc] — does [ipc] (typically the full-run IPC) fall
    within [mean_ipc +- ci95]? Vacuously true when [ci95] is infinite. *)

val report_to_json : report -> string
(** Stable JSON object: the spec, interval count and per-interval IPCs,
    mean, [ci95] (null when not finite), and instruction totals. *)

val splice_metrics : stats_json:string -> report -> string
(** Extend a {!Resim_core.Stats.to_json} document with a ["sample"]
    member carrying {!report_to_json} — the [--metrics] output of a
    sampled run. *)

val driver :
  ?watchdog:int ->
  ?deadline:(unit -> bool) ->
  ?max_cycles:int64 ->
  spec:spec ->
  report option ref ->
  Resim_core.Engine.t ->
  Resim_core.Engine.bounded
(** The run loop handed to {!Resim_core.Resim.simulate_robust} via its
    [?driver] parameter: alternate functional warm-up and detailed
    intervals until the trace drains, writing the accumulated {!report}
    through the ref (also on truncation — the intervals completed so
    far). [deadline] and [max_cycles] compose the sweep's budgets: the
    detailed intervals honour them and truncate with a resume
    checkpoint exactly like an unsampled bounded run. *)

val run :
  ?config:Resim_core.Config.t ->
  ?watchdog:int ->
  ?deadline:(unit -> bool) ->
  ?max_cycles:int64 ->
  ?instrument:(Resim_core.Engine.t -> unit) ->
  spec:spec ->
  Resim_trace.Record.t array ->
  (Resim_core.Resim.robust * report, Resim_core.Resim.failure) result
(** {!Resim_core.Resim.simulate_robust} under the sampling {!driver}.
    The outcome's statistics cover only the detailed portions (plus
    drain and priming cycles); [report] carries the sampled IPC
    estimate. *)
