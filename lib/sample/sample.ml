open Resim_core

(* ------------------------------------------------------------------ *)
(* Sampling schedule.                                                  *)

type spec = { detail : int; warmup : int; seed : int }

let spec_to_string spec =
  if spec.seed = 0 then Printf.sprintf "%d:%d" spec.detail spec.warmup
  else Printf.sprintf "%d:%d:%d" spec.detail spec.warmup spec.seed

let field_int ~name raw =
  match int_of_string_opt raw with
  | Some value -> Ok value
  | None -> Error (Printf.sprintf "%s %S is not an integer" name raw)

let ( let* ) = Result.bind

let spec_of_string s =
  let* detail, warmup, seed =
    match String.split_on_char ':' s with
    | [ detail; warmup ] -> Ok (detail, warmup, "0")
    | [ detail; warmup; seed ] -> Ok (detail, warmup, seed)
    | _ ->
        Error
          (Printf.sprintf
             "%S: expected detail:warmup or detail:warmup:seed" s)
  in
  let* detail = field_int ~name:"detail" detail in
  let* warmup = field_int ~name:"warmup" warmup in
  let* seed = field_int ~name:"seed" seed in
  if detail < 1 then
    Error (Printf.sprintf "detail %d must be at least 1" detail)
  else if warmup < 0 then
    Error (Printf.sprintf "warmup %d must not be negative" warmup)
  else if seed < 0 then
    Error (Printf.sprintf "seed %d must not be negative" seed)
  else Ok { detail; warmup; seed }

(* Splitmix-style avalanche, the repository's deterministic hash idiom
   (see Fault_inject): the initial sampling offset must reproduce for a
   fixed seed, so no [Random] and no clock. *)
let hash seed salt =
  let h = (seed * 0x9E3779B1) lxor (salt * 0x85EBCA77) lxor 0x165667B1 in
  let h = (h lxor (h lsr 30)) * 0x45D9F3B3 in
  let h = (h lxor (h lsr 27)) * 0x27D4EB2F in
  (h lxor (h lsr 31)) land max_int

(* ------------------------------------------------------------------ *)
(* Per-interval accumulation and the confidence interval.              *)

type interval = {
  index : int;
  start_cursor : int;
  instructions : int;
  cycles : int64;
  interval_ipc : float;
}

type report = {
  spec : spec;
  initial_offset : int;
  intervals : interval list;
  discarded_partial : int;
  mean_ipc : float;
  ci95 : float;
  detailed_instructions : int;
  warmed_instructions : int;
}

(* Two-sided 95% Student-t critical values for 1..30 degrees of
   freedom; the normal value beyond. *)
let t_table =
  [| 12.706; 4.303; 3.182; 2.776; 2.571; 2.447; 2.365; 2.306; 2.262;
     2.228; 2.201; 2.179; 2.160; 2.145; 2.131; 2.120; 2.110; 2.101;
     2.093; 2.086; 2.080; 2.074; 2.069; 2.064; 2.060; 2.056; 2.052;
     2.048; 2.045; 2.042 |]

let t_critical ~df =
  if df < 1 then infinity
  else if df <= Array.length t_table then t_table.(df - 1)
  else 1.96

let mean_and_ci95 = function
  | [] -> (0.0, infinity)
  | [ only ] -> (only, infinity)
  | values ->
      let n = List.length values in
      let nf = float_of_int n in
      let mean = List.fold_left ( +. ) 0.0 values /. nf in
      let sum_sq =
        List.fold_left
          (fun acc v -> acc +. ((v -. mean) *. (v -. mean)))
          0.0 values
      in
      let stddev = sqrt (sum_sq /. float_of_int (n - 1)) in
      (mean, t_critical ~df:(n - 1) *. stddev /. sqrt nf)

let covers report ipc =
  (not (Float.is_nan ipc))
  && Float.abs (ipc -. report.mean_ipc) <= report.ci95

(* ------------------------------------------------------------------ *)
(* JSON.                                                               *)

let report_to_json report =
  let buffer = Buffer.create 512 in
  Buffer.add_string buffer
    (Printf.sprintf
       "{\"spec\":{\"detail\":%d,\"warmup\":%d,\"seed\":%d},"
       report.spec.detail report.spec.warmup report.spec.seed);
  Buffer.add_string buffer
    (Printf.sprintf "\"initial_offset\":%d," report.initial_offset);
  Buffer.add_string buffer
    (Printf.sprintf "\"intervals\":%d," (List.length report.intervals));
  Buffer.add_string buffer
    (Printf.sprintf "\"discarded_partial\":%d," report.discarded_partial);
  Buffer.add_string buffer
    (Printf.sprintf "\"mean_ipc\":%.6f," report.mean_ipc);
  (if Float.is_finite report.ci95 then
     Buffer.add_string buffer
       (Printf.sprintf "\"ci95\":%.6f," report.ci95)
   else Buffer.add_string buffer "\"ci95\":null,");
  Buffer.add_string buffer
    (Printf.sprintf "\"detailed_instructions\":%d,"
       report.detailed_instructions);
  Buffer.add_string buffer
    (Printf.sprintf "\"warmed_instructions\":%d,"
       report.warmed_instructions);
  Buffer.add_string buffer "\"interval_ipc\":[";
  List.iteri
    (fun i interval ->
      if i > 0 then Buffer.add_char buffer ',';
      Buffer.add_string buffer
        (Printf.sprintf "%.6f" interval.interval_ipc))
    report.intervals;
  Buffer.add_string buffer "]}";
  Buffer.contents buffer

let splice_metrics ~stats_json report =
  (* Stats.to_json ends in "}\n"; accept any trailing whitespace after
     the closing brace and keep the trailing newline. *)
  let n = ref (String.length stats_json) in
  while
    !n > 0
    &&
    match stats_json.[!n - 1] with
    | ' ' | '\t' | '\n' | '\r' -> true
    | _ -> false
  do
    decr n
  done;
  if !n = 0 || stats_json.[!n - 1] <> '}' then
    invalid_arg "Sample.splice_metrics: not a JSON object";
  String.sub stats_json 0 (!n - 1)
  ^ ",\n  \"sample\": " ^ report_to_json report ^ "\n}\n"

(* ------------------------------------------------------------------ *)
(* The alternating driver.                                             *)

(* Commits discarded after each functional gap while the pipeline
   refills: measuring from an empty pipeline would bias every interval
   cold, so a few ROB-fulls of commits prime it first. *)
let priming_commits config = 4 * config.Config.rob_entries

let driver ?watchdog ?deadline ?max_cycles ~spec cell engine =
  let stats = Engine.stats engine in
  let committed () = Stats.get_int Stats.committed stats in
  let cycles () = Stats.get Stats.major_cycles stats in
  let priming = priming_commits (Engine.config engine) in
  let intervals = ref [] in
  let next_index = ref 0 in
  let discarded = ref 0 in
  let detailed_instructions = ref 0 in
  let warmed_instructions = ref 0 in
  let period = spec.detail + spec.warmup in
  let initial_offset = hash spec.seed 0 mod period in
  let publish () =
    let ordered = List.rev !intervals in
    (* Statistics run in CPI space: the intervals hold (nearly) equal
       instruction counts, so the mean of per-interval CPI is the
       aggregate-ratio estimator sum(cycles)/sum(instructions) — an
       arithmetic mean of per-interval IPC would overestimate the
       aggregate by about var/mean. The CPI mean and half-width convert
       back to IPC for reporting (delta method for the half-width). *)
    let mean_cpi, ci_cpi =
      mean_and_ci95
        (List.map
           (fun i ->
             Int64.to_float i.cycles /. float_of_int i.instructions)
           ordered)
    in
    let mean_ipc = if mean_cpi > 0.0 then 1.0 /. mean_cpi else 0.0 in
    let ci95 =
      if Float.is_finite ci_cpi && mean_cpi > 0.0 then
        ci_cpi /. (mean_cpi *. mean_cpi)
      else infinity
    in
    cell :=
      Some
        { spec;
          initial_offset;
          intervals = ordered;
          discarded_partial = !discarded;
          mean_ipc;
          ci95;
          detailed_instructions = !detailed_instructions;
          warmed_instructions = !warmed_instructions }
  in
  let finish (bounded : Engine.bounded) =
    publish ();
    bounded
  in
  let run_to_commits extra =
    Engine.run_bounded ?watchdog ?max_cycles ?deadline
      ~max_commits:(committed () + extra) engine
  in
  (* Measure one interval: prime, measure, then drain so the next gap
     starts from an empty pipeline. A [Drained] mid-interval means the
     trace ended; keep the partial measurement only when it covered at
     least half the target, otherwise its IPC is noise. *)
  let measure () =
    let primed = run_to_commits priming in
    match primed.Engine.stop with
    | Cycle_budget | Time_budget -> `Truncated primed
    | Drained -> `Done primed
    | Commit_target ->
        let start_cursor = Engine.cursor engine in
        let commits_before = committed () in
        let cycles_before = cycles () in
        let measured = run_to_commits spec.detail in
        let record ~partial =
          let instructions = committed () - commits_before in
          let interval_cycles = Int64.sub (cycles ()) cycles_before in
          if
            instructions > 0
            && Int64.compare interval_cycles 0L > 0
            && ((not partial) || instructions * 2 >= spec.detail)
          then begin
            detailed_instructions := !detailed_instructions + instructions;
            intervals :=
              { index = !next_index;
                start_cursor;
                instructions;
                cycles = interval_cycles;
                interval_ipc =
                  float_of_int instructions /. Int64.to_float interval_cycles }
              :: !intervals;
            incr next_index
          end
          else if partial then incr discarded
        in
        (match measured.Engine.stop with
        | Cycle_budget | Time_budget ->
            (* Truncated mid-measurement: the window is incomplete and
               its commits were detailed for nothing — drop it. *)
            incr discarded;
            `Truncated measured
        | Drained ->
            record ~partial:true;
            `Done measured
        | Commit_target ->
            record ~partial:false;
            Engine.drain engine;
            `Continue)
  in
  let gap extra =
    let warmed = Engine.functional_warmup engine ~max_instructions:extra in
    warmed_instructions := !warmed_instructions + warmed;
    warmed = extra
  in
  (* The initial offset randomises where the first unit lands in the
     trace; the instructions it skips still warm caches and predictor
     because the gap IS the warm-up. *)
  if not (gap initial_offset) then
    finish { Engine.final = stats; stop = Drained; resume = None }
  else begin
    let result = ref None in
    while Option.is_none !result do
      (match measure () with
      | `Truncated bounded | `Done bounded -> result := Some bounded
      | `Continue ->
          if not (gap spec.warmup) then
            result :=
              Some { Engine.final = stats; stop = Drained; resume = None })
    done;
    finish (Option.get !result)
  end

let run ?config ?watchdog ?deadline ?max_cycles ?instrument ~spec records =
  let cell = ref None in
  let driver = driver ?watchdog ?deadline ?max_cycles ~spec cell in
  match Resim.simulate_robust ?config ?instrument ~driver records with
  | Error _ as error -> error
  | Ok robust -> (
      match !cell with
      | Some report -> Ok (robust, report)
      | None -> assert false (* the driver always publishes *))
