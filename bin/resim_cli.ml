(* resim — command-line front end.

   Subcommands:
     tracegen   generate a binary trace from a built-in kernel
     simulate   run the timing engine on a trace file or kernel
     area       evaluate the FPGA area model
     schedule   render a minor-cycle schedule (Figures 2-4)
     table      regenerate one of the paper's tables
     sweep      run the ablation grid as a domain-parallel sweep
     bench      measure engine host throughput (scan vs event scheduler)
     lint       statically lint encoded trace files (resim-check)
     workloads  list the built-in kernels *)

open Cmdliner
module Check = Resim_check.Check

(* Every subcommand that builds a configuration validates it here
   first: warnings print and the run proceeds; errors print with their
   diagnostic codes and failing fields, and the command exits 2 before
   any simulation starts. *)
let ensure_valid_config ~context config =
  let diagnostics = Check.Config.validate config in
  if diagnostics <> [] then
    Format.eprintf "%s: configuration is %s@.%a@." context
      (Check.Diagnostic.summary diagnostics)
      Check.Diagnostic.pp_list diagnostics;
  if Check.Diagnostic.has_errors diagnostics then exit 2

let kernel_conv =
  let parse name =
    match Resim_workloads.Workload.find name with
    | workload -> Ok workload
    | exception Not_found ->
        Error
          (`Msg
             (Printf.sprintf "unknown kernel %S (try: %s)" name
                (String.concat ", " Resim_workloads.Workload.names)))
  in
  let print ppf workload =
    Format.pp_print_string ppf (Resim_workloads.Workload.name_of workload)
  in
  Arg.conv (parse, print)

let kernel_arg =
  Arg.(
    value
    & opt kernel_conv (Resim_workloads.Workload.find "gzip")
    & info [ "k"; "kernel" ] ~docv:"KERNEL"
        ~doc:"Built-in kernel (gzip, bzip2, parser, vortex, vpr).")

let scale_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "s"; "scale" ] ~docv:"N" ~doc:"Kernel scale (input size).")

let organization_conv =
  let parse = function
    | "simple" -> Ok Resim_core.Config.Simple
    | "improved" -> Ok Resim_core.Config.Improved
    | "optimized" -> Ok Resim_core.Config.Optimized
    | other ->
        Error
          (`Msg
             (Printf.sprintf
                "unknown organization %S (simple|improved|optimized)" other))
  in
  let print ppf organization =
    Format.pp_print_string ppf
      (Resim_core.Config.organization_name organization)
  in
  Arg.conv (parse, print)

let width_arg =
  Arg.(
    value & opt int 4
    & info [ "w"; "width" ] ~docv:"N" ~doc:"Issue width of the processor.")

let program_arg =
  Arg.(
    value
    & opt (some file) None
    & info [ "p"; "program" ] ~docv:"FILE.s"
        ~doc:"Assemble and use a textual assembly file instead of a \
              built-in kernel.")

let program_of ?source_file workload scale =
  match source_file with
  | Some path -> Resim_isa.Parser.parse_file path
  | None -> (
      match scale with
      | Some scale -> Resim_workloads.Workload.program_of workload ~scale ()
      | None -> Resim_workloads.Workload.program_of workload ())

(* --- tracegen ----------------------------------------------------- *)

let tracegen workload scale source_file output compact =
  let program = program_of ?source_file workload scale in
  let generated = Resim_tracegen.Generator.run program in
  let format =
    if compact then Resim_trace.Codec.Compact else Resim_trace.Codec.Fixed
  in
  Resim_trace.Codec.write_file ~format output generated.records;
  Format.printf
    "wrote %s: %d records (%d correct, %d wrong-path), %.2f bits/instr@."
    output
    (Array.length generated.records)
    generated.correct_path generated.wrong_path
    (Resim_trace.Codec.bits_per_instruction ~format generated.records)

let tracegen_cmd =
  let output =
    Arg.(
      value & opt string "kernel.trace"
      & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Output trace file.")
  in
  let compact =
    Arg.(
      value & flag
      & info [ "compact" ] ~doc:"Use the delta-compressed encoding.")
  in
  Cmd.v
    (Cmd.info "tracegen" ~doc:"Generate a binary trace from a kernel")
    Term.(
      const tracegen $ kernel_arg $ scale_arg $ program_arg $ output
      $ compact)

(* --- simulate ------------------------------------------------------ *)

let simulate workload scale source_file trace_file perfect_bp caches =
  let records =
    match trace_file with
    | Some path ->
        let records, _format = Resim_trace.Codec.read_file path in
        records
    | None ->
        let program = program_of ?source_file workload scale in
        Resim_tracegen.Generator.records program
  in
  let config =
    let base = Resim_core.Config.reference in
    let base =
      if perfect_bp then
        { base with predictor = Resim_bpred.Predictor.perfect_config }
      else base
    in
    if caches then
      { base with
        icache = Resim_cache.Cache.l1_32k_8way_64b;
        dcache = Resim_cache.Cache.l1_32k_8way_64b }
    else base
  in
  ensure_valid_config ~context:"simulate" config;
  let outcome = Resim_core.Resim.simulate_trace ~config records in
  Format.printf "%a@.@." Resim_core.Resim.pp_outcome outcome;
  List.iter
    (fun device ->
      Format.printf "%-10s %.2f MIPS@." device.Resim_fpga.Device.name
        (Resim_core.Resim.mips outcome ~device))
    Resim_fpga.Device.all

let simulate_cmd =
  let trace_file =
    Arg.(
      value
      & opt (some file) None
      & info [ "t"; "trace" ] ~docv:"FILE"
          ~doc:"Simulate a trace file instead of a kernel.")
  in
  let perfect_bp =
    Arg.(value & flag & info [ "perfect-bp" ] ~doc:"Oracle predictor.")
  in
  let caches =
    Arg.(
      value & flag
      & info [ "caches" ] ~doc:"32KB 8-way L1 caches instead of perfect \
                                memory.")
  in
  Cmd.v
    (Cmd.info "simulate" ~doc:"Run the ReSim timing engine")
    Term.(
      const simulate $ kernel_arg $ scale_arg $ program_arg $ trace_file
      $ perfect_bp $ caches)

(* --- area ----------------------------------------------------------- *)

let area width rob lsq =
  let params =
    { Resim_fpga.Area.reference_params with
      width;
      ifq_entries = width;
      decouple_entries = width;
      rob_entries = rob;
      lsq_entries = lsq }
  in
  let report = Resim_fpga.Area.estimate params in
  Format.printf "%a@.@." Resim_fpga.Area.pp_report report;
  List.iter
    (fun device ->
      Format.printf "%-10s fits %d instance(s)@."
        device.Resim_fpga.Device.name
        (Resim_fpga.Area.instances_fitting report device))
    Resim_fpga.Device.all

let area_cmd =
  let rob =
    Arg.(value & opt int 16 & info [ "rob" ] ~docv:"N" ~doc:"ROB entries.")
  in
  let lsq =
    Arg.(value & opt int 8 & info [ "lsq" ] ~docv:"N" ~doc:"LSQ entries.")
  in
  Cmd.v
    (Cmd.info "area" ~doc:"Evaluate the FPGA area model")
    Term.(const area $ width_arg $ rob $ lsq)

(* --- schedule -------------------------------------------------------- *)

let schedule organization width =
  let schedule = Resim_core.Minor_cycle.build organization ~width in
  print_string (Resim_core.Minor_cycle.render schedule)

let schedule_cmd =
  let organization =
    Arg.(
      value
      & opt organization_conv Resim_core.Config.Optimized
      & info [ "org" ] ~docv:"ORG"
          ~doc:"Internal organization: simple, improved or optimized.")
  in
  Cmd.v
    (Cmd.info "schedule" ~doc:"Render a minor-cycle schedule (Figs. 2-4)")
    Term.(const schedule $ organization $ width_arg)

(* --- table ----------------------------------------------------------- *)

let table number =
  let ppf = Format.std_formatter in
  match number with
  | 1 -> Resim_reports.Table1.print ppf; Format.printf "@."
  | 2 -> Resim_reports.Table2.print ppf; Format.printf "@."
  | 3 -> Resim_reports.Table3.print ppf; Format.printf "@."
  | 4 -> Resim_reports.Table4.print ppf; Format.printf "@."
  | n ->
      Format.eprintf "no such table: %d (1-4)@." n;
      exit 1

let table_cmd =
  let number =
    Arg.(
      required
      & pos 0 (some int) None
      & info [] ~docv:"N" ~doc:"Table number (1-4).")
  in
  Cmd.v
    (Cmd.info "table" ~doc:"Regenerate one of the paper's tables")
    Term.(const table $ number)

(* --- ptrace ----------------------------------------------------------- *)

let ptrace workload scale source_file window =
  let program = program_of ?source_file workload scale in
  let records = Resim_tracegen.Generator.records program in
  let engine = Resim_core.Engine.create records in
  let trace = Resim_core.Pipeline_trace.create ~window engine in
  Resim_core.Pipeline_trace.run trace;
  print_string (Resim_core.Pipeline_trace.render trace)

let ptrace_cmd =
  let window =
    Arg.(
      value & opt int 32
      & info [ "window" ] ~docv:"N"
          ~doc:"How many instructions to trace from the start.")
  in
  Cmd.v
    (Cmd.info "ptrace"
       ~doc:"Render a per-instruction pipeline Gantt chart (ptrace \
             analog)")
    Term.(const ptrace $ kernel_arg $ scale_arg $ program_arg $ window)

(* --- vhdl ------------------------------------------------------------- *)

let vhdl width rob lsq output_dir =
  let config =
    { Resim_core.Config.reference with
      width;
      ifq_entries = width;
      decouple_entries = width;
      alu_count = width;
      rob_entries = rob;
      lsq_entries = lsq;
      mem_read_ports = max 1 ((width - 1) / 2);
      mem_write_ports = 1;
      organization =
        (if width >= 3 then Resim_core.Config.Optimized
         else Resim_core.Config.Improved) }
  in
  ensure_valid_config ~context:"vhdl" config;
  let paths = Resim_vhdlgen.Core_gen.write_all ~dir:output_dir config in
  List.iter (fun path -> Format.printf "wrote %s@." path) paths

let vhdl_cmd =
  let rob =
    Arg.(value & opt int 16 & info [ "rob" ] ~docv:"N" ~doc:"ROB entries.")
  in
  let lsq =
    Arg.(value & opt int 8 & info [ "lsq" ] ~docv:"N" ~doc:"LSQ entries.")
  in
  let output_dir =
    Arg.(
      value & opt string "vhdl"
      & info [ "o"; "output-dir" ] ~docv:"DIR" ~doc:"Output directory.")
  in
  Cmd.v
    (Cmd.info "vhdl"
       ~doc:"Generate the parametric VHDL bundle (params + predictor)")
    Term.(const vhdl $ width_arg $ rob $ lsq $ output_dir)

(* --- disasm ----------------------------------------------------------- *)

let disasm workload scale source_file =
  let program = program_of ?source_file workload scale in
  print_string (Resim_isa.Disasm.program program)

let disasm_cmd =
  Cmd.v
    (Cmd.info "disasm"
       ~doc:"Disassemble a kernel or assembly file to parser syntax")
    Term.(const disasm $ kernel_arg $ scale_arg $ program_arg)

(* --- sweep ----------------------------------------------------------- *)

let dedupe_jobs jobs =
  let seen = Hashtbl.create 16 in
  List.filter
    (fun (job : Resim_sweep.Sweep.job) ->
      let key =
        (Resim_workloads.Workload.name_of job.workload, job.config,
         job.scale)
      in
      if Hashtbl.mem seen key then false
      else begin
        Hashtbl.add seen key ();
        true
      end)
    jobs

let sweep jobs quick =
  let jobs = max 1 jobs in
  let grid =
    List.map Resim_reports.Runner.job_of_request
      (Resim_reports.Ablations.requests ())
  in
  let grid =
    if quick then
      dedupe_jobs
        (List.map
           (fun job ->
             { job with Resim_sweep.Sweep.scale = Resim_sweep.Sweep.Default })
           grid)
    else grid
  in
  List.iter
    (fun (job : Resim_sweep.Sweep.job) ->
      ensure_valid_config ~context:("sweep job " ^ job.label) job.config)
    grid;
  Format.printf
    "sweeping %d job(s) across %d worker domain(s) (host recommends %d)@."
    (List.length grid) jobs
    (Resim_sweep.Pool.recommended_jobs ());
  let started = Unix.gettimeofday () in
  let results = Resim_sweep.Sweep.run ~jobs grid in
  let wall = Unix.gettimeofday () -. started in
  Format.printf "%a@." Resim_sweep.Sweep.pp_table results;
  Format.printf "wall clock %.2f s at -j %d (%.2fx vs serial-equivalent)@."
    wall jobs
    (if wall > 0.0 then Resim_sweep.Sweep.total_wall results /. wall
     else 1.0)

let sweep_cmd =
  let jobs =
    Arg.(
      value
      & opt int (Resim_sweep.Pool.recommended_jobs ())
      & info [ "j"; "jobs" ] ~docv:"N"
          ~doc:"Worker domains to shard the sweep across (1 = serial; \
                results are identical at any value).")
  in
  let quick =
    Arg.(
      value & flag
      & info [ "quick" ]
          ~doc:"Rescale every job to its kernel's default (small) input \
                for a fast smoke run.")
  in
  Cmd.v
    (Cmd.info "sweep"
       ~doc:"Run the full ablation grid as a domain-parallel sweep")
    Term.(const sweep $ jobs $ quick)

(* --- bench ----------------------------------------------------------- *)

let bench json quick =
  (* The bench grid runs exactly these two configurations. *)
  ensure_valid_config ~context:"bench reference"
    Resim_core.Config.reference;
  ensure_valid_config ~context:"bench fast-comparable"
    Resim_core.Config.fast_comparable;
  let measurements = Resim_reports.Hostbench.measure ~quick () in
  Format.printf "%a@." Resim_reports.Hostbench.pp_table measurements;
  match json with
  | Some path ->
      Resim_reports.Hostbench.write_json ~path measurements;
      Format.printf "wrote %s@." path
  | None -> ()

let bench_cmd =
  let json =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"PATH"
          ~doc:"Write the host-MIPS grid (kernel x config x scheduler) \
                as JSON to $(docv) — the cross-PR perf trajectory \
                (conventionally BENCH_engine.json).")
  in
  let quick =
    Arg.(
      value & flag
      & info [ "quick" ]
          ~doc:"Shrink the grid to one small kernel for a smoke run.")
  in
  Cmd.v
    (Cmd.info "bench"
       ~doc:"Measure engine host throughput per (kernel, config, \
             scheduler)")
    Term.(const bench $ json $ quick)

(* --- lint ------------------------------------------------------------ *)

let lint trace_files max_run =
  let failed = ref false in
  List.iter
    (fun path ->
      let report =
        Check.Trace.lint_file ?max_wrong_path_run:max_run path
      in
      let diagnostics = report.Check.Trace.diagnostics in
      Format.printf "%s: %s (%d record(s), %d wrong-path in %d block(s)%s)@."
        path
        (Check.Diagnostic.summary diagnostics)
        report.records_checked report.wrong_path_records
        report.wrong_path_blocks
        (match report.format with
         | Some Resim_trace.Codec.Fixed -> ", fixed encoding"
         | Some Resim_trace.Codec.Compact -> ", compact encoding"
         | None -> "");
      if diagnostics <> [] then
        Format.printf "%a@." Check.Diagnostic.pp_list diagnostics;
      if Check.Diagnostic.has_errors diagnostics then failed := true)
    trace_files;
  if !failed then exit 1

let lint_cmd =
  let traces =
    Arg.(
      non_empty & pos_all file []
      & info [] ~docv:"TRACE" ~doc:"Encoded trace file(s) to lint.")
  in
  let max_run =
    Arg.(
      value
      & opt (some int) None
      & info [ "max-wrong-path-run" ] ~docv:"N"
          ~doc:"Longest legal wrong-path run before RSM-T007 fires \
                (default 4096).")
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:"Statically lint encoded trace files (resim-check layer 2); \
             exits 1 when any trace has errors")
    Term.(const lint $ traces $ max_run)

(* --- workloads ------------------------------------------------------- *)

let workloads () =
  List.iter
    (fun workload ->
      Format.printf "%-8s %s@."
        (Resim_workloads.Workload.name_of workload)
        (Resim_workloads.Workload.description_of workload))
    (Resim_workloads.Workload.all @ Resim_workloads.Workload.extended)

let workloads_cmd =
  Cmd.v
    (Cmd.info "workloads" ~doc:"List the built-in kernels")
    Term.(const workloads $ const ())

let () =
  let info =
    Cmd.info "resim" ~version:Resim_core.Resim.version
      ~doc:"Trace-driven ILP processor timing simulation (DATE 2009 \
            reproduction)"
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [ tracegen_cmd; simulate_cmd; area_cmd; schedule_cmd; table_cmd;
            sweep_cmd; bench_cmd; lint_cmd; disasm_cmd; vhdl_cmd;
            ptrace_cmd; workloads_cmd ]))
