(* resim — command-line front end.

   Subcommands:
     tracegen   generate a binary trace from a built-in kernel
     simulate   run the timing engine on a trace file or kernel
     area       evaluate the FPGA area model
     schedule   render a minor-cycle schedule (Figures 2-4)
     table      regenerate one of the paper's tables
     sweep      run the ablation grid as a domain-parallel sweep
     bench      measure engine host throughput (scan vs event scheduler)
     lint       statically lint encoded trace files or pipetrace JSONL
     profile    attribute host time/allocation to engine phases
     workloads  list the built-in kernels *)

open Cmdliner
module Check = Resim_check.Check

(* Every subcommand that builds a configuration validates it here
   first: warnings print and the run proceeds; errors print with their
   diagnostic codes and failing fields, and the command exits 2 before
   any simulation starts. *)
let ensure_valid_config ~context config =
  let diagnostics = Check.Config.validate config in
  if diagnostics <> [] then
    Format.eprintf "%s: configuration is %s@.%a@." context
      (Check.Diagnostic.summary diagnostics)
      Check.Diagnostic.pp_list diagnostics;
  if Check.Diagnostic.has_errors diagnostics then exit 2

let kernel_conv =
  let parse name =
    match Resim_workloads.Workload.find name with
    | workload -> Ok workload
    | exception Not_found ->
        Error
          (`Msg
             (Printf.sprintf "unknown kernel %S (try: %s)" name
                (String.concat ", " Resim_workloads.Workload.names)))
  in
  let print ppf workload =
    Format.pp_print_string ppf (Resim_workloads.Workload.name_of workload)
  in
  Arg.conv (parse, print)

let kernel_arg =
  Arg.(
    value
    & opt kernel_conv (Resim_workloads.Workload.find "gzip")
    & info [ "k"; "kernel" ] ~docv:"KERNEL"
        ~doc:"Built-in kernel (gzip, bzip2, parser, vortex, vpr).")

let scale_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "s"; "scale" ] ~docv:"N" ~doc:"Kernel scale (input size).")

let organization_conv =
  let parse = function
    | "simple" -> Ok Resim_core.Config.Simple
    | "improved" -> Ok Resim_core.Config.Improved
    | "optimized" -> Ok Resim_core.Config.Optimized
    | other ->
        Error
          (`Msg
             (Printf.sprintf
                "unknown organization %S (simple|improved|optimized)" other))
  in
  let print ppf organization =
    Format.pp_print_string ppf
      (Resim_core.Config.organization_name organization)
  in
  Arg.conv (parse, print)

let width_arg =
  Arg.(
    value & opt int 4
    & info [ "w"; "width" ] ~docv:"N" ~doc:"Issue width of the processor.")

(* Shared by simulate/profile/sweep/bench: the escape hatch for the
   engine-specialization layer (DESIGN.md §14). Variants are
   bit-identical to the generic engine by contract, so this only
   trades host speed for the reference implementation. *)
let no_specialize_arg =
  Arg.(
    value & flag
    & info [ "no-specialize" ]
        ~doc:"Force the generic engine: skip staged-variant \
              installation even when the configuration matches a \
              pre-compiled grid point. Results are bit-identical \
              either way (the differential suite proves it); use this \
              to cross-check or to time the generic path.")

let spec_mode_of_flag no_specialize =
  if no_specialize then Resim_spec.Spec.Never else Resim_spec.Spec.Auto

let program_arg =
  Arg.(
    value
    & opt (some file) None
    & info [ "p"; "program" ] ~docv:"FILE.s"
        ~doc:"Assemble and use a textual assembly file instead of a \
              built-in kernel.")

let program_of ?source_file workload scale =
  match source_file with
  | Some path -> Resim_isa.Parser.parse_file path
  | None -> (
      match scale with
      | Some scale -> Resim_workloads.Workload.program_of workload ~scale ()
      | None -> Resim_workloads.Workload.program_of workload ())

(* --- tracegen ----------------------------------------------------- *)

(* Streamed generation: the kernel trace cycles through a constant-
   memory Encoder onto stdout until --limit records went out or the
   reader hangs up — the producer half of the >RAM streaming pipeline
   (DESIGN.md §17). *)
let tracegen_stream ~format ~limit records =
  if Array.length records = 0 then begin
    Format.eprintf "tracegen: kernel produced no records@.";
    exit 2
  end;
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  set_binary_mode_out stdout true;
  let encoder = Resim_trace.Codec.Encoder.to_channel ~format stdout in
  let quota () =
    match limit with
    | Some limit -> Resim_trace.Codec.Encoder.pushed encoder < limit
    | None -> true
  in
  (try
     while quota () do
       Array.iter
         (fun record ->
           if quota () then Resim_trace.Codec.Encoder.push encoder record)
         records
     done;
     Resim_trace.Codec.Encoder.close encoder
   with Sys_error _ ->
     (* EPIPE: the reader closed the pipe — the normal way an
        unbounded stream ends. *)
     ());
  Format.eprintf "streamed %d record(s)@."
    (Resim_trace.Codec.Encoder.pushed encoder)

let tracegen workload scale source_file output compact stream limit
    records_per_shard =
  let program = program_of ?source_file workload scale in
  let generated = Resim_tracegen.Generator.run program in
  let format =
    if compact then Resim_trace.Codec.Compact else Resim_trace.Codec.Fixed
  in
  if stream then tracegen_stream ~format ~limit generated.records
  else
    match records_per_shard with
    | Some per_shard when per_shard > 0 ->
        let stem =
          if Filename.check_suffix output Resim_trace.Codec.Shard.extension
          then
            Filename.chop_suffix output Resim_trace.Codec.Shard.extension
          else output
        in
        let shards =
          Resim_trace.Codec.Shard.write ~format ~records_per_shard:per_shard
            ~stem generated.records
        in
        Format.printf
          "wrote %d shard(s) %s .. %s: %d records (%d correct, %d \
           wrong-path)@."
          (List.length shards) (List.hd shards)
          (List.nth shards (List.length shards - 1))
          (Array.length generated.records)
          generated.correct_path generated.wrong_path
    | Some _ ->
        Format.eprintf "tracegen: --records-per-shard must be positive@.";
        exit 2
    | None ->
        Resim_trace.Codec.write_file ~format output generated.records;
        Format.printf
          "wrote %s: %d records (%d correct, %d wrong-path), %.2f \
           bits/instr@."
          output
          (Array.length generated.records)
          generated.correct_path generated.wrong_path
          (Resim_trace.Codec.bits_per_instruction ~format generated.records)

let tracegen_cmd =
  let output =
    Arg.(
      value & opt string "kernel.trace"
      & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Output trace file.")
  in
  let compact =
    Arg.(
      value & flag
      & info [ "compact" ] ~doc:"Use the delta-compressed encoding.")
  in
  let stream =
    Arg.(
      value & flag
      & info [ "stream" ]
          ~doc:"Write a streamed trace (header count $(b,-1)) to stdout \
                in constant memory, cycling the kernel trace until \
                $(b,--limit) records went out — or forever, until the \
                reading end of the pipe closes. Pair with $(b,resim \
                simulate --stream -t -) for traces larger than RAM.")
  in
  let limit =
    Arg.(
      value
      & opt (some int) None
      & info [ "limit" ] ~docv:"N"
          ~doc:"Stop a $(b,--stream) run after $(docv) records \
                (unbounded without it).")
  in
  let records_per_shard =
    Arg.(
      value
      & opt (some int) None
      & info [ "records-per-shard" ] ~docv:"N"
          ~doc:"Split the trace into $(b,STEM.0000.rtr), \
                $(b,STEM.0001.rtr), … shards of at most $(docv) records \
                each; any shard name or the bare stem opens the whole \
                set in $(b,simulate)/$(b,lint).")
  in
  Cmd.v
    (Cmd.info "tracegen" ~doc:"Generate a binary trace from a kernel")
    Term.(
      const tracegen $ kernel_arg $ scale_arg $ program_arg $ output
      $ compact $ stream $ limit $ records_per_shard)

(* --- faultgen ------------------------------------------------------ *)

module Fault_inject = Resim_trace.Fault_inject

let severity_name = function
  | `Error -> "error"
  | `Warning -> "warning"
  | `Varies -> "varies"

let faultgen workload scale source_file fault_name seed output compact
    list_classes =
  if list_classes then
    (* Machine-readable: name, expected RSM code (- when it varies),
       severity — scripts/faultsmoke.sh iterates over these lines. *)
    List.iter
      (fun fault ->
        Format.printf "%-18s %-10s %-8s %s@."
          (Fault_inject.name fault)
          (match Fault_inject.expected_code fault with
          | Some code -> code
          | None -> "-")
          (severity_name (Fault_inject.severity fault))
          (Fault_inject.describe fault))
      Fault_inject.all
  else
    match fault_name with
    | None ->
        Format.eprintf
          "faultgen: --fault CLASS is required (see --list)@.";
        exit 2
    | Some name -> (
        match Fault_inject.of_name name with
        | None ->
            Format.eprintf
              "unknown fault class %S (resim faultgen --list)@." name;
            exit 2
        | Some fault ->
            let program = program_of ?source_file workload scale in
            let generated = Resim_tracegen.Generator.run program in
            let format =
              if compact then Resim_trace.Codec.Compact
              else Resim_trace.Codec.Fixed
            in
            let data =
              Fault_inject.apply ~seed ~format fault generated.records
            in
            let channel = open_out_bin output in
            Fun.protect
              ~finally:(fun () -> close_out channel)
              (fun () -> output_string channel data);
            Format.printf
              "wrote %s: %d clean records + %s (seed %d, expect %s, \
               severity %s)@."
              output
              (Array.length generated.records)
              (Fault_inject.describe fault)
              seed
              (match Fault_inject.expected_code fault with
              | Some code -> code
              | None -> "varies")
              (severity_name (Fault_inject.severity fault)))

let faultgen_cmd =
  let fault =
    Arg.(
      value
      & opt (some string) None
      & info [ "fault" ] ~docv:"CLASS"
          ~doc:"Corruption class to inject (kebab-case; see --list).")
  in
  let seed =
    Arg.(
      value & opt int 1
      & info [ "seed" ] ~docv:"N"
          ~doc:"Deterministic injection seed; (class, seed) replays the \
                same corruption.")
  in
  let output =
    Arg.(
      value & opt string "fault.trace"
      & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Output trace file.")
  in
  let compact =
    Arg.(
      value & flag
      & info [ "compact" ] ~doc:"Use the delta-compressed encoding.")
  in
  let list_classes =
    Arg.(
      value & flag
      & info [ "list" ]
          ~doc:"List the corruption classes (name, expected RSM code, \
                severity, description) and exit.")
  in
  Cmd.v
    (Cmd.info "faultgen"
       ~doc:"Generate a deliberately corrupted trace for robustness \
             testing (each class maps to one RSM-T diagnostic)")
    Term.(
      const faultgen $ kernel_arg $ scale_arg $ program_arg $ fault $ seed
      $ output $ compact $ list_classes)

(* --- simulate ------------------------------------------------------ *)

let read_file_bytes path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* Exit codes: 0 clean, 1 generic failure (lint errors, malformed
   foreign trace lines), 2 invalid configuration or usage (including a
   missing or unreadable trace file, RSM-T009), 3 structured trace
   fault / deadlock (the diagnostic names the RSM code and record
   offset). *)
let fault_exit = 3

module Adapter = Resim_trace.Adapter
module Stream = Resim_trace.Stream

let adapter_format_conv =
  let parse name =
    match Adapter.format_of_string name with
    | Some format -> Ok format
    | None ->
        Error
          (`Msg
             (Printf.sprintf "unknown trace format %S (text|riscv)" name))
  in
  let print ppf format =
    Format.pp_print_string ppf (Adapter.format_to_string format)
  in
  Arg.conv (parse, print)

let adapter_format_arg =
  Arg.(
    value
    & opt (some adapter_format_conv) None
    & info [ "format" ] ~docv:"FMT"
        ~doc:"The trace is a foreign line-oriented text trace, not an \
              encoded RSTR stream: $(b,text) ($(i,PC op dst src1 src2) \
              per line) or $(b,riscv) ($(i,PC INSN [mem ADDR]), \
              uncompressed RV32/RV64). The adapter converts it to \
              tagged records, synthesizing wrong-path blocks from our \
              own branch predictor; malformed lines are RSM-A \
              diagnostics with file:line:col (DESIGN.md §17).")

(* How the trace reaches the engine: a fully materialized array (the
   default; required by --sample and --resume, which need random
   access / replay) or a constant-memory pull stream (--stream). *)
type trace_input =
  | Materialized of Resim_trace.Record.t array
  | Pulled of (unit -> Resim_trace.Record.t option) * (unit -> unit)

let report_open_error path (error : Resim_trace.Codec.error) =
  Format.eprintf "%s: %s@." path
    (Resim_trace.Codec.error_to_string error);
  (* Host-level I/O problems are usage errors (exit 2); malformed
     bytes are trace faults (exit 3). *)
  if String.equal error.error_code "RSM-T009" then exit 2 else exit fault_exit

let report_adapter_stats ~file adapter =
  let stats = Adapter.stats adapter in
  Format.printf
    "adapted %s: %d line(s) -> %d instruction(s) + %d wrong-path \
     record(s) in synthesized blocks (%d conditional mispredict(s))@."
    file stats.Adapter.lines stats.instructions stats.wrong_path
    stats.mispredicted

(* Mirror of [Sample.splice_metrics]: inject the engine identity into
   the stats JSON object, so every metrics document says which engine
   implementation (generic or a staged variant, DESIGN.md §14)
   produced it. *)
let splice_engine_identity ~variant stats_json =
  let n = ref (String.length stats_json) in
  while
    !n > 0
    &&
    match stats_json.[!n - 1] with
    | ' ' | '\t' | '\n' | '\r' -> true
    | _ -> false
  do
    decr n
  done;
  if !n = 0 || stats_json.[!n - 1] <> '}' then
    invalid_arg "splice_engine_identity: not a JSON object";
  String.sub stats_json 0 (!n - 1)
  ^ Printf.sprintf ",\n  \"specialized\": %b,\n  \"variant\": %s\n}\n"
      (match variant with Some _ -> true | None -> false)
      (match variant with
      | Some name -> Resim_core.Json.quote name
      | None -> "null")

let simulate workload scale source_file trace_file trace_format stream
    perfect_bp caches max_cycles timeout checkpoint_out resume_file
    degraded pipetrace_out waterfall_window metrics_out sample
    no_specialize =
  let sample_spec =
    match sample with
    | None -> None
    | Some raw -> (
        match Resim_sample.Sample.spec_of_string raw with
        | Ok spec -> Some spec
        | Error message ->
            Format.eprintf "--sample %s@." message;
            exit 2)
  in
  if sample_spec <> None && resume_file <> None then begin
    Format.eprintf
      "--sample does not combine with --resume (resume replays the full \
       detailed run)@.";
    exit 2
  end;
  let degraded_resync =
    match degraded with
    | None -> false
    | Some "resync" -> true
    | Some other ->
        Format.eprintf "unknown --degraded mode %S (supported: resync)@."
          other;
        exit 2
  in
  if stream && trace_file = None then begin
    Format.eprintf "--stream requires a trace source (--trace FILE or -)@.";
    exit 2
  end;
  if trace_format <> None && trace_file = None then begin
    Format.eprintf "--format requires a trace source (--trace FILE or -)@.";
    exit 2
  end;
  if stream && sample_spec <> None then begin
    Format.eprintf
      "--sample does not combine with --stream (sampling needs the \
       materialized trace)@.";
    exit 2
  end;
  if stream && resume_file <> None then begin
    Format.eprintf
      "--resume does not combine with --stream (resume replays a \
       materialized trace)@.";
    exit 2
  end;
  if degraded_resync && (stream || trace_format <> None) then begin
    Format.eprintf
      "--degraded applies to in-memory encoded traces only (no --stream, \
       no --format)@.";
    exit 2
  end;
  let input, salvage_faults =
    match trace_file with
    | None ->
        if degraded_resync then begin
          Format.eprintf
            "--degraded applies to trace files (--trace FILE) only@.";
          exit 2
        end;
        let program = program_of ?source_file workload scale in
        (Materialized (Resim_tracegen.Generator.records program), [])
    | Some path -> (
        match trace_format with
        | Some format ->
            (* Foreign text trace: one-pass adapter either way. A
               malformed line is a user-input problem (RSM-A, exit 1 on
               the materialized path; on --stream it surfaces mid-run
               as a trace fault). *)
            let file = if String.equal path "-" then "<stdin>" else path in
            let ic, owned =
              if String.equal path "-" then (stdin, false)
              else
                match open_in_bin path with
                | ic -> (ic, true)
                | exception Sys_error reason ->
                    Format.eprintf "%s: [RSM-T009] %s@." path reason;
                    exit 2
            in
            let adapter = Adapter.of_channel ~format ~file ic in
            if stream then
              ( Pulled
                  ( Adapter.pull_exn adapter,
                    fun () ->
                      report_adapter_stats ~file adapter;
                      if owned then close_in_noerr ic ),
                [] )
            else begin
              match Adapter.to_records_result adapter with
              | Error error ->
                  Format.eprintf "%s@." (Adapter.error_to_string error);
                  exit 1
              | Ok records ->
                  report_adapter_stats ~file adapter;
                  if owned then close_in_noerr ic;
                  (Materialized records, [])
            end
        | None when stream ->
            (* Encoded trace through the chunked cursor: O(chunk)
               memory however large the file or pipe. *)
            if String.equal path "-" then begin
              set_binary_mode_in stdin true;
              match Resim_trace.Codec.Cursor.of_channel_result stdin with
              | Error error -> report_open_error "<stdin>" error
              | Ok cursor ->
                  let s = Stream.of_cursor ~source:"<stdin>" cursor in
                  ( Pulled ((fun () -> Stream.next s), fun () -> Stream.close s),
                    [] )
            end
            else begin
              match Stream.open_path path with
              | Error error -> report_open_error path error
              | Ok s ->
                  ( Pulled ((fun () -> Stream.next s), fun () -> Stream.close s),
                    [] )
            end
        | None ->
            if String.equal path "-" then begin
              Format.eprintf
                "--trace - (stdin) requires --stream or --format@.";
              exit 2
            end;
            if degraded_resync then begin
              let data =
                match read_file_bytes path with
                | data -> data
                | exception Sys_error reason ->
                    Format.eprintf "%s: [RSM-T009] %s@." path reason;
                    exit 2
              in
              match Resim_trace.Codec.decode_degraded data with
              | Error error ->
                  Format.eprintf "%s: %s@." path
                    (Resim_trace.Codec.error_to_string error);
                  exit fault_exit
              | Ok (records, _format, faults) ->
                  (Materialized records, faults)
            end
            else begin
              match Resim_trace.Codec.Shard.expand path with
              | Some shards -> (
                  (* A shard set: concatenate through the streaming
                     cursor, materialized for --sample/--resume use. *)
                  match Stream.open_sharded shards with
                  | Error error -> report_open_error path error
                  | Ok s -> (
                      match Stream.to_array s with
                      | records -> (Materialized records, [])
                      | exception Resim_trace.Fault.Trace_fault fault ->
                          Format.eprintf "%s: %s@." path
                            (Resim_trace.Fault.to_string fault);
                          exit fault_exit))
              | None -> (
                  match Resim_trace.Codec.read_file_result path with
                  | Error error ->
                      Format.eprintf "%s: %s@." path
                        (Resim_trace.Codec.error_to_string error);
                      if String.equal error.error_code "RSM-T009" then
                        exit 2
                      else begin
                        Format.eprintf
                          "(rerun with --degraded resync to skip damaged \
                           records)@.";
                        exit fault_exit
                      end
                  | Ok (records, _format) -> (Materialized records, []))
            end)
  in
  let records =
    (* The paths that need random access were guarded against --stream
       above; [Pulled] only reaches the plain robust runner. *)
    match input with Materialized records -> records | Pulled _ -> [||]
  in
  let config =
    let base = Resim_core.Config.reference in
    let base =
      if perfect_bp then
        { base with predictor = Resim_bpred.Predictor.perfect_config }
      else base
    in
    if caches then
      { base with
        icache = Resim_cache.Cache.l1_32k_8way_64b;
        dcache = Resim_cache.Cache.l1_32k_8way_64b }
    else base
  in
  ensure_valid_config ~context:"simulate" config;
  List.iter
    (fun fault ->
      Format.eprintf "degraded: skipped %s@."
        (Resim_trace.Fault.to_string fault))
    salvage_faults;
  (* Observability sinks (DESIGN.md §11): the JSONL pipetrace streams
     to its file as the run progresses; the waterfall renders on close.
     Both attach through one engine observer, so without them the
     engine keeps its observer-free hot path. *)
  let pipetrace_channel =
    match pipetrace_out with
    | None -> None
    | Some path when String.equal path "-" -> Some (path, stdout)
    | Some path -> Some (path, open_out path)
  in
  let sinks =
    (match pipetrace_channel with
    | Some (_, channel) -> [ Resim_obs.Obs.jsonl_channel channel ]
    | None -> [])
    @
    match waterfall_window with
    | Some window -> [ Resim_obs.Obs.waterfall ~window stdout ]
    | None -> []
  in
  if sinks <> [] && resume_file <> None then begin
    Format.eprintf
      "--pipetrace/--waterfall do not combine with --resume (the replay \
       prefix would re-emit its events)@.";
    exit 2
  end;
  let close_sinks () =
    Resim_obs.Obs.close sinks;
    match pipetrace_channel with
    | Some (path, channel) when not (String.equal path "-") ->
        close_out channel;
        Format.printf "wrote pipetrace %s@." path
    | Some _ | None -> ()
  in
  let engine_variant = ref None in
  let write_metrics ?report stats =
    match metrics_out with
    | None -> ()
    | Some path ->
        let body =
          if Filename.check_suffix path ".csv" then
            Resim_core.Stats.csv_header () ^ "\n"
            ^ Resim_core.Stats.csv_row stats ^ "\n"
          else
            let stats_json =
              splice_engine_identity ~variant:!engine_variant
                (Resim_core.Stats.to_json stats)
            in
            match report with
            | None -> stats_json
            | Some report ->
                Resim_sample.Sample.splice_metrics ~stats_json report
        in
        if String.equal path "-" then print_string body
        else begin
          let channel = open_out path in
          Fun.protect
            ~finally:(fun () -> close_out channel)
            (fun () -> output_string channel body);
          Format.printf "wrote metrics %s@." path
        end
  in
  let finish ?report outcome =
    if salvage_faults <> [] then
      Resim_core.Stats.mark_degraded
        ~faults:(List.length salvage_faults)
        outcome.Resim_core.Resim.stats;
    Format.printf "%a@.@." Resim_core.Resim.pp_outcome outcome;
    List.iter
      (fun device ->
        Format.printf "%-10s %.2f MIPS@." device.Resim_fpga.Device.name
          (Resim_core.Resim.mips outcome ~device))
      Resim_fpga.Device.all;
    write_metrics ?report outcome.Resim_core.Resim.stats
  in
  match resume_file with
  | Some path -> (
      match Resim_core.Checkpoint.load path with
      | Error message ->
          Format.eprintf "--resume %s: %s@." path
            (Resim_core.Checkpoint.error_to_string message);
          exit 2
      | Ok checkpoint -> (
          match
            Resim_core.Resim.resume_trace ~config ~checkpoint records
          with
          | Error message ->
              Format.eprintf "resume failed: %s@." message;
              exit fault_exit
          | Ok outcome ->
              Format.printf "resumed from cycle %Ld (cursor %d)@."
                checkpoint.Resim_core.Checkpoint.cycle
                checkpoint.Resim_core.Checkpoint.cursor;
              finish outcome))
  | None -> (
      let deadline =
        Option.map
          (fun seconds ->
            let limit = Unix.gettimeofday () +. seconds in
            fun () -> Unix.gettimeofday () > limit)
          timeout
      in
      (* One instrument hook does both attachments: specialization
         first (it only swaps the stepper), then the observability
         sinks. With no sinks the engine keeps its observer-free hot
         path — staged variants preserve the zero-sink fast path. *)
      let instrument =
        Some
          (fun engine ->
            ignore
              (Resim_spec.Spec.install
                 ~mode:(spec_mode_of_flag no_specialize) engine
                : bool);
            engine_variant := Resim_core.Engine.variant engine;
            if sinks <> [] then Resim_obs.Obs.attach engine sinks)
      in
      let fail failure =
        (* Flush the partial pipetrace — the events up to the fault
           are exactly what a post-mortem wants. *)
        close_sinks ();
        Format.eprintf "simulate: %s@."
          (Resim_core.Resim.failure_to_string failure);
        exit fault_exit
      in
      let conclude ?report robust =
        close_sinks ();
        (match !engine_variant with
        | Some name -> Format.printf "engine: specialized (%s)@." name
        | None -> ());
        (match robust.Resim_core.Resim.stop with
        | Resim_core.Engine.Drained -> ()
        | Resim_core.Engine.Cycle_budget ->
            Format.printf
              "run truncated by --max-cycles; statistics are partial@."
        | Resim_core.Engine.Time_budget ->
            Format.printf
              "run truncated by --timeout; statistics are partial@."
        | Resim_core.Engine.Commit_target ->
            Format.printf
              "run truncated at commit target; statistics are partial@.");
        (match (robust.Resim_core.Resim.resume, checkpoint_out) with
        | Some checkpoint, Some path ->
            Resim_core.Checkpoint.save path checkpoint;
            Format.printf "wrote checkpoint %s (resume with --resume)@."
              path
        | Some _, None | None, None -> ()
        | None, Some _ ->
            Format.printf
              "run completed; no checkpoint needed or written@.");
        (match report with
        | None -> ()
        | Some report ->
            let open Resim_sample.Sample in
            if Float.is_finite report.ci95 then
              Format.printf
                "sampled (%s): %d intervals, IPC %.4f +- %.4f (95%% CI), \
                 %d detailed / %d warmed instructions@."
                (spec_to_string report.spec)
                (List.length report.intervals)
                report.mean_ipc report.ci95 report.detailed_instructions
                report.warmed_instructions
            else
              Format.printf
                "sampled (%s): %d interval(s), IPC %.4f (CI undefined \
                 below two intervals), %d detailed / %d warmed \
                 instructions@."
                (spec_to_string report.spec)
                (List.length report.intervals)
                report.mean_ipc report.detailed_instructions
                report.warmed_instructions);
        finish ?report robust.Resim_core.Resim.outcome
      in
      match sample_spec with
      | Some spec -> (
          match
            Resim_sample.Sample.run ~config ?deadline ?max_cycles
              ?instrument ~spec records
          with
          | Error failure -> fail failure
          | Ok (robust, report) -> conclude ~report robust)
      | None -> (
          match input with
          | Materialized records -> (
              match
                Resim_core.Resim.simulate_robust ~config ?max_cycles
                  ?deadline ?instrument records
              with
              | Error failure -> fail failure
              | Ok robust -> conclude robust)
          | Pulled (pull, cleanup) -> (
              (* Constant-memory path: the engine draws records on
                 demand; the cleanup closes owned channels (and, for
                 adapters, prints the adaptation stats). *)
              let result =
                Fun.protect ~finally:cleanup (fun () ->
                    Resim_core.Resim.simulate_pull_robust ~config
                      ?max_cycles ?deadline ?instrument pull)
              in
              match result with
              | Error failure -> fail failure
              | Ok robust -> conclude robust)))

let simulate_cmd =
  let trace_file =
    Arg.(
      value
      & opt (some string) None
      & info [ "t"; "trace" ] ~docv:"FILE"
          ~doc:"Simulate a trace file instead of a kernel: an encoded \
                RSTR stream, a shard set (any shard name or the bare \
                stem), a foreign text trace (with $(b,--format)), or \
                $(b,-) for stdin (with $(b,--stream) or \
                $(b,--format)). A missing or unreadable file exits 2 \
                with an RSM-T009 diagnostic.")
  in
  let stream =
    Arg.(
      value & flag
      & info [ "stream" ]
          ~doc:"Pull the trace through the chunked streaming cursor \
                instead of materializing it: O(chunk) host memory \
                however large the trace, so multi-GB files, shard sets \
                and unbounded pipes ($(b,tracegen --stream |)) \
                simulate in constant memory. Statistics are \
                bit-identical to the in-memory path; \
                $(b,bits/instruction) reads 0 (the payload size is \
                unknown mid-stream). Not combinable with \
                $(b,--sample)/$(b,--resume)/$(b,--degraded).")
  in
  let perfect_bp =
    Arg.(value & flag & info [ "perfect-bp" ] ~doc:"Oracle predictor.")
  in
  let caches =
    Arg.(
      value & flag
      & info [ "caches" ] ~doc:"32KB 8-way L1 caches instead of perfect \
                                memory.")
  in
  let max_cycles =
    Arg.(
      value
      & opt (some int64) None
      & info [ "max-cycles" ] ~docv:"N"
          ~doc:"Stop after $(docv) major cycles with partial statistics \
                and a replay checkpoint (see --checkpoint/--resume).")
  in
  let timeout =
    Arg.(
      value
      & opt (some float) None
      & info [ "timeout" ] ~docv:"SECONDS"
          ~doc:"Wall-clock budget; the run truncates gracefully with \
                partial statistics when it expires.")
  in
  let checkpoint_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "checkpoint" ] ~docv:"FILE"
          ~doc:"Where to write the replay checkpoint when the run is \
                truncated by a budget.")
  in
  let resume_file =
    Arg.(
      value
      & opt (some file) None
      & info [ "resume" ] ~docv:"FILE"
          ~doc:"Resume a truncated run from a checkpoint written by \
                --checkpoint; final statistics are bit-identical to an \
                unbounded run.")
  in
  let degraded =
    Arg.(
      value
      & opt (some string) None
      & info [ "degraded" ] ~docv:"MODE"
          ~doc:"Degraded decode mode for damaged trace files; $(docv) \
                must be $(b,resync) — skip to the next decodable record \
                boundary, report each skipped region and mark the \
                statistics as degraded.")
  in
  let pipetrace =
    Arg.(
      value
      & opt (some string) None
      & info [ "pipetrace" ] ~docv:"FILE"
          ~doc:"Stream the per-cycle pipetrace as JSONL to $(docv) \
                ($(b,-) for stdout); schema-checkable with $(b,resim \
                lint --pipetrace). Format spec in DESIGN.md §11.")
  in
  let waterfall =
    Arg.(
      value
      & opt (some int) None
      & info [ "waterfall" ] ~docv:"N"
          ~doc:"Render a per-instruction waterfall (Gantt view) of the \
                first $(docv) dispatched instructions to stdout after \
                the run.")
  in
  let metrics =
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics" ] ~docv:"FILE"
          ~doc:"Write the final engine statistics — every counter, the \
                stall-cause taxonomy, derived ratios, width histograms \
                — to $(docv) ($(b,-) for stdout): JSON, or a CSV \
                header+row pair when $(docv) ends in $(b,.csv).")
  in
  let sample =
    Arg.(
      value
      & opt (some string) None
      & info [ "sample" ] ~docv:"SPEC"
          ~doc:"Sampled simulation (DESIGN.md §13): $(docv) is \
                $(b,detail:warmup[:seed]) — alternate $(b,detail) \
                committed instructions of full timing with $(b,warmup) \
                instructions of functional warm-up (caches and branch \
                predictor stay warm, no timing), and report mean IPC \
                with a 95% confidence interval over the measured \
                intervals. Deterministic for a fixed seed.")
  in
  Cmd.v
    (Cmd.info "simulate" ~doc:"Run the ReSim timing engine")
    Term.(
      const simulate $ kernel_arg $ scale_arg $ program_arg $ trace_file
      $ adapter_format_arg $ stream $ perfect_bp $ caches $ max_cycles
      $ timeout $ checkpoint_out $ resume_file $ degraded $ pipetrace
      $ waterfall $ metrics $ sample $ no_specialize_arg)

(* --- area ----------------------------------------------------------- *)

let area width rob lsq =
  let params =
    { Resim_fpga.Area.reference_params with
      width;
      ifq_entries = width;
      decouple_entries = width;
      rob_entries = rob;
      lsq_entries = lsq }
  in
  let report = Resim_fpga.Area.estimate params in
  Format.printf "%a@.@." Resim_fpga.Area.pp_report report;
  List.iter
    (fun device ->
      Format.printf "%-10s fits %d instance(s)@."
        device.Resim_fpga.Device.name
        (Resim_fpga.Area.instances_fitting report device))
    Resim_fpga.Device.all

let area_cmd =
  let rob =
    Arg.(value & opt int 16 & info [ "rob" ] ~docv:"N" ~doc:"ROB entries.")
  in
  let lsq =
    Arg.(value & opt int 8 & info [ "lsq" ] ~docv:"N" ~doc:"LSQ entries.")
  in
  Cmd.v
    (Cmd.info "area" ~doc:"Evaluate the FPGA area model")
    Term.(const area $ width_arg $ rob $ lsq)

(* --- schedule -------------------------------------------------------- *)

let schedule organization width =
  let schedule = Resim_core.Minor_cycle.build organization ~width in
  print_string (Resim_core.Minor_cycle.render schedule)

let schedule_cmd =
  let organization =
    Arg.(
      value
      & opt organization_conv Resim_core.Config.Optimized
      & info [ "org" ] ~docv:"ORG"
          ~doc:"Internal organization: simple, improved or optimized.")
  in
  Cmd.v
    (Cmd.info "schedule" ~doc:"Render a minor-cycle schedule (Figs. 2-4)")
    Term.(const schedule $ organization $ width_arg)

(* --- table ----------------------------------------------------------- *)

let table number =
  let ppf = Format.std_formatter in
  match number with
  | 1 -> Resim_reports.Table1.print ppf; Format.printf "@."
  | 2 -> Resim_reports.Table2.print ppf; Format.printf "@."
  | 3 -> Resim_reports.Table3.print ppf; Format.printf "@."
  | 4 -> Resim_reports.Table4.print ppf; Format.printf "@."
  | n ->
      Format.eprintf "no such table: %d (1-4)@." n;
      exit 1

let table_cmd =
  let number =
    Arg.(
      required
      & pos 0 (some int) None
      & info [] ~docv:"N" ~doc:"Table number (1-4).")
  in
  Cmd.v
    (Cmd.info "table" ~doc:"Regenerate one of the paper's tables")
    Term.(const table $ number)

(* --- ptrace ----------------------------------------------------------- *)

let ptrace workload scale source_file window =
  let program = program_of ?source_file workload scale in
  let records = Resim_tracegen.Generator.records program in
  let engine = Resim_core.Engine.create records in
  let trace = Resim_core.Pipeline_trace.create ~window engine in
  Resim_core.Pipeline_trace.run trace;
  print_string (Resim_core.Pipeline_trace.render trace)

let ptrace_cmd =
  let window =
    Arg.(
      value & opt int 32
      & info [ "window" ] ~docv:"N"
          ~doc:"How many instructions to trace from the start.")
  in
  Cmd.v
    (Cmd.info "ptrace"
       ~doc:"Render a per-instruction pipeline Gantt chart (ptrace \
             analog)")
    Term.(const ptrace $ kernel_arg $ scale_arg $ program_arg $ window)

(* --- profile ---------------------------------------------------------- *)

let profile workload scale source_file trace_file json no_specialize =
  let records =
    match trace_file with
    | Some path -> (
        let data = read_file_bytes path in
        match Resim_trace.Codec.decode_result data with
        | Error error ->
            Format.eprintf "%s: %s@." path
              (Resim_trace.Codec.error_to_string error);
            exit fault_exit
        | Ok (records, _format) -> records)
    | None ->
        let program = program_of ?source_file workload scale in
        Resim_tracegen.Generator.records program
  in
  let config = Resim_core.Config.reference in
  ensure_valid_config ~context:"profile" config;
  let prof = Resim_obs.Prof.create () in
  (* The phase-probe closer charges the span still open when the run
     ends; simulate_robust owns the engine, so capture it here. *)
  let closer = ref (fun () -> ()) in
  let engine_variant = ref None in
  let result =
    Resim_core.Resim.simulate_robust ~config
      ~instrument:(fun engine ->
        (* Specialize first so the probes measure the engine that
           really runs; staged steppers fire the same per-phase probe
           sites as the generic engine, so attribution is unchanged. *)
        ignore
          (Resim_spec.Spec.install ~mode:(spec_mode_of_flag no_specialize)
             engine
            : bool);
        engine_variant := Resim_core.Engine.variant engine;
        closer := Resim_obs.Prof.instrument_engine prof engine)
      records
  in
  !closer ();
  match result with
  | Error failure ->
      Format.eprintf "profile: %s@."
        (Resim_core.Resim.failure_to_string failure);
      exit fault_exit
  | Ok robust ->
      let stats = robust.Resim_core.Resim.outcome.Resim_core.Resim.stats in
      Format.printf "%Ld major cycles, %Ld instructions committed@."
        (Resim_core.Stats.get Resim_core.Stats.major_cycles stats)
        (Resim_core.Stats.get Resim_core.Stats.committed stats);
      Format.printf "engine: %s@.@."
        (match !engine_variant with
        | Some name -> "specialized (" ^ name ^ ")"
        | None -> "generic");
      Format.printf "%a@." Resim_obs.Prof.pp prof;
      (match json with
      | Some path ->
          let channel = open_out path in
          Fun.protect
            ~finally:(fun () -> close_out channel)
            (fun () ->
              output_string channel
                (Resim_obs.Prof.to_json
                   ~specialized:
                     (match !engine_variant with
                     | Some _ -> true
                     | None -> false)
                   ?variant:!engine_variant prof));
          Format.printf "wrote profile %s@." path
      | None -> ())

let profile_cmd =
  let trace_file =
    Arg.(
      value
      & opt (some file) None
      & info [ "t"; "trace" ] ~docv:"FILE"
          ~doc:"Profile a trace file instead of a kernel.")
  in
  let json =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"PATH"
          ~doc:"Also write the section table as JSON to $(docv).")
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:"Attribute host wall time and allocation to engine phases \
             (phase probes; markedly slower than a bare run, ratios \
             stay representative)")
    Term.(
      const profile $ kernel_arg $ scale_arg $ program_arg $ trace_file
      $ json $ no_specialize_arg)

(* --- vhdl ------------------------------------------------------------- *)

let vhdl width rob lsq output_dir =
  let config =
    { Resim_core.Config.reference with
      width;
      ifq_entries = width;
      decouple_entries = width;
      alu_count = width;
      rob_entries = rob;
      lsq_entries = lsq;
      mem_read_ports = max 1 ((width - 1) / 2);
      mem_write_ports = 1;
      organization =
        (if width >= 3 then Resim_core.Config.Optimized
         else Resim_core.Config.Improved) }
  in
  ensure_valid_config ~context:"vhdl" config;
  let paths = Resim_vhdlgen.Core_gen.write_all ~dir:output_dir config in
  List.iter (fun path -> Format.printf "wrote %s@." path) paths

let vhdl_cmd =
  let rob =
    Arg.(value & opt int 16 & info [ "rob" ] ~docv:"N" ~doc:"ROB entries.")
  in
  let lsq =
    Arg.(value & opt int 8 & info [ "lsq" ] ~docv:"N" ~doc:"LSQ entries.")
  in
  let output_dir =
    Arg.(
      value & opt string "vhdl"
      & info [ "o"; "output-dir" ] ~docv:"DIR" ~doc:"Output directory.")
  in
  Cmd.v
    (Cmd.info "vhdl"
       ~doc:"Generate the parametric VHDL bundle (params + predictor)")
    Term.(const vhdl $ width_arg $ rob $ lsq $ output_dir)

(* --- disasm ----------------------------------------------------------- *)

let disasm workload scale source_file =
  let program = program_of ?source_file workload scale in
  print_string (Resim_isa.Disasm.program program)

let disasm_cmd =
  Cmd.v
    (Cmd.info "disasm"
       ~doc:"Disassemble a kernel or assembly file to parser syntax")
    Term.(const disasm $ kernel_arg $ scale_arg $ program_arg)

(* --- sweep ----------------------------------------------------------- *)

let dedupe_jobs jobs =
  let seen = Hashtbl.create 16 in
  List.filter
    (fun (job : Resim_sweep.Sweep.job) ->
      let key =
        (Resim_workloads.Workload.name_of job.workload, job.config,
         job.scale)
      in
      if Hashtbl.mem seen key then false
      else begin
        Hashtbl.add seen key ();
        true
      end)
    jobs

let sweep jobs quick keep_going timeout max_cycles retries metrics_out
    profile_pool sample no_specialize =
  let sample_spec =
    match sample with
    | None -> None
    | Some raw -> (
        match Resim_sample.Sample.spec_of_string raw with
        | Ok spec -> Some spec
        | Error message ->
            Format.eprintf "--sample %s@." message;
            exit 2)
  in
  let jobs = max 1 jobs in
  let grid =
    List.map Resim_reports.Runner.job_of_request
      (Resim_reports.Ablations.requests ())
  in
  let grid =
    if quick then
      dedupe_jobs
        (List.map
           (fun job ->
             { job with Resim_sweep.Sweep.scale = Resim_sweep.Sweep.Default })
           grid)
    else grid
  in
  let grid =
    match sample_spec with
    | None -> grid
    | Some _ ->
        List.map
          (fun job -> { job with Resim_sweep.Sweep.sample = sample_spec })
          grid
  in
  (* --keep-going validates per job inside the fault domain instead, so
     one bad configuration cannot abort the whole grid. *)
  if not keep_going then
    List.iter
      (fun (job : Resim_sweep.Sweep.job) ->
        ensure_valid_config ~context:("sweep job " ^ job.label) job.config)
      grid;
  Format.printf
    "sweeping %d job(s) across %d worker domain(s) (host recommends %d)@."
    (List.length grid) jobs
    (Resim_sweep.Pool.recommended_jobs ());
  let policy =
    { Resim_sweep.Sweep.default_policy with timeout; max_cycles; retries }
  in
  let prof =
    if profile_pool then Some (Resim_obs.Prof.create ()) else None
  in
  let started = Unix.gettimeofday () in
  let report =
    (* Each worker domain installs the matching staged variant on its
       own engines (Auto falls back to generic off-grid); results are
       bit-identical at any mode, so this only buys wall clock. *)
    Resim_sweep.Sweep.run ~strict:(not keep_going) ~policy ?prof ~jobs
      ~instrument:
        (Resim_spec.Spec.instrument (spec_mode_of_flag no_specialize))
      grid
  in
  let wall = Unix.gettimeofday () -. started in
  let results = Resim_sweep.Sweep.completed report in
  Format.printf "%a@." Resim_sweep.Sweep.pp_table results;
  Format.printf "wall clock %.2f s at -j %d (%.2fx vs serial-equivalent)@."
    wall jobs
    (if wall > 0.0 then Resim_sweep.Sweep.total_wall results /. wall
     else 1.0);
  let counts = Resim_sweep.Sweep.counts report in
  Format.printf
    "outcomes: %d ok, %d failed, %d timed out, %d truncated, %d retried@."
    counts.ok counts.failed counts.timed_out counts.truncated counts.retried;
  Format.printf "%a@." Resim_sweep.Sweep.pp_stalls results;
  (match metrics_out with
  | Some path ->
      let channel = open_out path in
      Fun.protect
        ~finally:(fun () -> close_out channel)
        (fun () ->
          output_string channel (Resim_sweep.Sweep.metrics_json report));
      Format.printf "wrote metrics %s@." path
  | None -> ());
  (match prof with
  | Some prof -> Format.printf "%a@." Resim_obs.Prof.pp prof
  | None -> ());
  if Resim_sweep.Sweep.failures report <> [] then begin
    Format.printf "%a@." Resim_sweep.Sweep.pp_failures report;
    exit 1
  end

let sweep_cmd =
  let jobs =
    Arg.(
      value
      & opt int (Resim_sweep.Pool.recommended_jobs ())
      & info [ "j"; "jobs" ] ~docv:"N"
          ~doc:"Worker domains to shard the sweep across (1 = serial; \
                results are identical at any value).")
  in
  let quick =
    Arg.(
      value & flag
      & info [ "quick" ]
          ~doc:"Rescale every job to its kernel's default (small) input \
                for a fast smoke run.")
  in
  let keep_going =
    Arg.(
      value & flag
      & info [ "keep-going" ]
          ~doc:"Per-job fault domains: a corrupt trace, deadlock or \
                timeout becomes a row in the failure summary and the \
                rest of the sweep still completes (exit 1 when any job \
                failed). Without it the first failure aborts the sweep.")
  in
  let timeout =
    Arg.(
      value
      & opt (some float) None
      & info [ "timeout" ] ~docv:"SECONDS"
          ~doc:"Per-job wall-clock budget (with --keep-going).")
  in
  let max_cycles =
    Arg.(
      value
      & opt (some int64) None
      & info [ "max-cycles" ] ~docv:"N"
          ~doc:"Per-job cycle budget; jobs over it report truncated \
                partial statistics (with --keep-going).")
  in
  let retries =
    Arg.(
      value & opt int 0
      & info [ "retries" ] ~docv:"N"
          ~doc:"Extra attempts for crashed or timed-out jobs, with \
                doubling capped backoff between rounds (with \
                --keep-going). Deterministic failures — trace faults, \
                deadlocks, invalid configurations — are never retried.")
  in
  let metrics =
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics" ] ~docv:"FILE"
          ~doc:"Write the whole-sweep metrics document to $(docv): per \
                job its label, outcome, attempts, telemetry and full \
                engine statistics JSON.")
  in
  let profile_pool =
    Arg.(
      value & flag
      & info [ "profile" ]
          ~doc:"Profile the worker pool: per-domain wait vs run time \
                and allocation, printed after the sweep.")
  in
  let sample =
    Arg.(
      value
      & opt (some string) None
      & info [ "sample" ] ~docv:"SPEC"
          ~doc:"Run every job sampled ($(b,detail:warmup[:seed]), see \
                $(b,resim simulate --sample)); per-job metrics gain a \
                $(b,sample) section with the interval IPCs and 95% \
                confidence interval.")
  in
  Cmd.v
    (Cmd.info "sweep"
       ~doc:"Run the full ablation grid as a domain-parallel sweep")
    Term.(
      const sweep $ jobs $ quick $ keep_going $ timeout $ max_cycles
      $ retries $ metrics $ profile_pool $ sample $ no_specialize_arg)

(* --- bench ----------------------------------------------------------- *)

let bench json quick no_specialize =
  (* The bench grid runs exactly these two configurations. *)
  ensure_valid_config ~context:"bench reference"
    Resim_core.Config.reference;
  ensure_valid_config ~context:"bench fast-comparable"
    Resim_core.Config.fast_comparable;
  let measurements = Resim_reports.Hostbench.measure ~quick () in
  Format.printf "%a@." Resim_reports.Hostbench.pp_table measurements;
  (* Staged-variant grid, timed against the generic measurements just
     taken (same traces, same protocol) so the speedup column isolates
     what installation buys. --no-specialize drops the section. *)
  let specialized =
    if no_specialize then None
    else begin
      let specialized =
        Resim_reports.Hostbench.measure_specialized ~quick measurements
      in
      Format.printf "%a@." Resim_reports.Hostbench.pp_specialized
        specialized;
      Some specialized
    end
  in
  let sampled = Resim_reports.Hostbench.measure_sampled ~quick () in
  Format.printf "%a@." Resim_reports.Hostbench.pp_sampled sampled;
  (* Full runs also sweep the (default-scale) ablation grid through the
     fault-domain runner, recording per-job outcome counts in the JSON;
     quick mode skips it and the counts report null. *)
  let sweep_outcomes =
    if quick then None
    else begin
      let grid =
        dedupe_jobs
          (List.map
             (fun request ->
               { (Resim_reports.Runner.job_of_request request) with
                 Resim_sweep.Sweep.scale = Resim_sweep.Sweep.Default })
             (Resim_reports.Ablations.requests ()))
      in
      let report =
        Resim_sweep.Sweep.run
          ~instrument:
            (Resim_spec.Spec.instrument (spec_mode_of_flag no_specialize))
          grid
      in
      let counts = Resim_sweep.Sweep.counts report in
      Format.printf
        "sweep outcomes (%d job(s)): %d ok, %d failed, %d timed out, \
         %d truncated, %d retried@."
        (List.length grid) counts.ok counts.failed counts.timed_out
        counts.truncated counts.retried;
      Some counts
    end
  in
  match json with
  | Some path ->
      Resim_reports.Hostbench.write_json ~path ?sweep_outcomes ~sampled
        ?specialized measurements;
      Format.printf "wrote %s@." path
  | None -> ()

let bench_cmd =
  let json =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"PATH"
          ~doc:"Write the host-MIPS grid (kernel x config x scheduler) \
                as JSON to $(docv) — the cross-PR perf trajectory \
                (conventionally BENCH_engine.json).")
  in
  let quick =
    Arg.(
      value & flag
      & info [ "quick" ]
          ~doc:"Shrink the grid to one small kernel for a smoke run.")
  in
  Cmd.v
    (Cmd.info "bench"
       ~doc:"Measure engine host throughput per (kernel, config, \
             scheduler)")
    Term.(const bench $ json $ quick $ no_specialize_arg)

(* --- lint ------------------------------------------------------------ *)

let lint trace_files max_run pipetrace foreign_format =
  let failed = ref false in
  let lint_binary path =
    let report = Check.Trace.lint_file ?max_wrong_path_run:max_run path in
    let diagnostics = report.Check.Trace.diagnostics in
    Format.printf "%s: %s (%d record(s), %d wrong-path in %d block(s)%s)@."
      path
      (Check.Diagnostic.summary diagnostics)
      report.records_checked report.wrong_path_records
      report.wrong_path_blocks
      (match report.format with
       | Some Resim_trace.Codec.Fixed -> ", fixed encoding"
       | Some Resim_trace.Codec.Compact -> ", compact encoding"
       | None -> "");
    diagnostics
  in
  (* Foreign text traces lint through their adapter: the adapted
     records run the same structural rules, and a malformed line is
     its RSM-A diagnostic with file:line:col. *)
  let lint_foreign format path =
    let report_of file ic =
      let adapter = Adapter.of_channel ~format ~file ic in
      Check.Trace.lint_adapter ?max_wrong_path_run:max_run adapter
    in
    let report =
      if String.equal path "-" then Ok (report_of "<stdin>" stdin)
      else
        match open_in_bin path with
        | exception Sys_error reason -> Error reason
        | ic ->
            Fun.protect
              ~finally:(fun () -> close_in_noerr ic)
              (fun () -> Ok (report_of path ic))
    in
    match report with
    | Error reason ->
        let diagnostics =
          [ Check.Diagnostic.error ~code:"RSM-T009" ~subject:path reason ]
        in
        Format.printf "%s: %s@." path (Check.Diagnostic.summary diagnostics);
        diagnostics
    | Ok report ->
        let diagnostics = report.Check.Trace.diagnostics in
        Format.printf
          "%s: %s (%d record(s), %d wrong-path in %d block(s), %s \
           profile)@."
          path
          (Check.Diagnostic.summary diagnostics)
          report.records_checked report.wrong_path_records
          report.wrong_path_blocks
          (Adapter.format_to_string format);
        diagnostics
  in
  (* A path that is not a file on disk may name a shard set: lint every
     shard. Explicit existing files are linted as given. *)
  let expand path =
    if pipetrace || foreign_format <> None || Sys.file_exists path then
      [ path ]
    else
      match Resim_trace.Codec.Shard.expand path with
      | Some shards -> shards
      | None -> [ path ]
  in
  let trace_files = List.concat_map expand trace_files in
  let lint_pipetrace path =
    let report = Check.Obs.lint_file path in
    let diagnostics = report.Check.Obs.diagnostics in
    Format.printf "%s: %s (%d line(s)%s)@." path
      (Check.Diagnostic.summary diagnostics)
      report.lines_checked
      (match report.events with
       | [] -> ""
       | events ->
           ", "
           ^ String.concat " "
               (List.map
                  (fun (kind, count) -> Printf.sprintf "%s:%d" kind count)
                  events));
    diagnostics
  in
  List.iter
    (fun path ->
      let diagnostics =
        if pipetrace then lint_pipetrace path
        else
          match foreign_format with
          | Some format -> lint_foreign format path
          | None -> lint_binary path
      in
      if diagnostics <> [] then
        Format.printf "%a@." Check.Diagnostic.pp_list diagnostics;
      if Check.Diagnostic.has_errors diagnostics then failed := true)
    trace_files;
  if !failed then exit 1

let lint_cmd =
  let traces =
    Arg.(
      non_empty & pos_all string []
      & info [] ~docv:"TRACE"
          ~doc:"Trace file(s) to lint: encoded RSTR streams, shard sets \
                (any shard name or the bare stem), foreign text traces \
                (with $(b,--format)), or $(b,-) for stdin (with \
                $(b,--format)). A missing file is an RSM-T009 error, \
                not a usage failure.")
  in
  let max_run =
    Arg.(
      value
      & opt (some int) None
      & info [ "max-wrong-path-run" ] ~docv:"N"
          ~doc:"Longest legal wrong-path run before RSM-T007 fires \
                (default 4096).")
  in
  let pipetrace =
    Arg.(
      value & flag
      & info [ "pipetrace" ]
          ~doc:"The files are pipetrace JSONL streams (from $(b,resim \
                simulate --pipetrace)); validate them against the \
                schema (RSM-P codes) instead of decoding binary \
                traces.")
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:"Statically lint encoded trace files (resim-check layer 2), \
             foreign text traces through their adapter ($(b,--format), \
             RSM-A codes), or pipetrace JSONL streams (layer 4); exits \
             1 when any file has errors")
    Term.(const lint $ traces $ max_run $ pipetrace $ adapter_format_arg)

(* --- workloads ------------------------------------------------------- *)

let workloads () =
  List.iter
    (fun workload ->
      Format.printf "%-8s %s@."
        (Resim_workloads.Workload.name_of workload)
        (Resim_workloads.Workload.description_of workload))
    (Resim_workloads.Workload.all @ Resim_workloads.Workload.extended)

let workloads_cmd =
  Cmd.v
    (Cmd.info "workloads" ~doc:"List the built-in kernels")
    Term.(const workloads $ const ())

(* --- serve / submit / loadgen (DESIGN.md §16) ------------------------ *)

module Server = Resim_serve.Server
module Serve_client = Resim_serve.Client
module Serve_protocol = Resim_serve.Protocol
module Serve_load = Resim_serve.Load

let socket_arg =
  Arg.(
    value
    & opt string "/tmp/resimd.sock"
    & info [ "socket" ] ~docv:"PATH" ~doc:"Unix-domain socket path.")

let serve socket workers max_queue max_per_client retries backoff cache_dir
    test_hooks verbose =
  let config =
    { (Server.default_config ~socket_path:socket) with
      Server.workers;
      max_queue;
      max_per_client;
      retries;
      backoff;
      cache_dir;
      test_hooks;
      verbose }
  in
  match Server.run config with
  | Ok () -> ()
  | Error message ->
      Printf.eprintf "resim serve: %s\n" message;
      exit 2

let serve_cmd =
  let workers =
    Arg.(
      value & opt int 2
      & info [ "workers" ] ~docv:"N" ~doc:"Worker domains.")
  in
  let max_queue =
    Arg.(
      value & opt int 64
      & info [ "max-queue" ] ~docv:"N"
          ~doc:"Queued-job bound; drives shedding and $(b,queue-full) \
                rejections.")
  in
  let max_per_client =
    Arg.(
      value & opt int 8
      & info [ "max-per-client" ] ~docv:"N"
          ~doc:"Outstanding jobs allowed per client name before \
                $(b,over-quota).")
  in
  let retries =
    Arg.(
      value & opt int 2
      & info [ "retries" ] ~docv:"N"
          ~doc:"Times a job is requeued after its worker domain dies \
                before it is reported as $(b,crash).")
  in
  let backoff =
    Arg.(
      value & opt float 0.05
      & info [ "backoff" ] ~docv:"SECONDS"
          ~doc:"Initial crash-requeue delay (doubles per attempt, \
                capped at 1s).")
  in
  let cache_dir =
    Arg.(
      value
      & opt (some string) None
      & info [ "cache-dir" ] ~docv:"DIR"
          ~doc:"Persist the content-addressed result cache here \
                (memory-only otherwise).")
  in
  let test_hooks =
    Arg.(
      value & flag
      & info [ "test-hooks" ]
          ~doc:"Enable the $(b,crash-worker) request so tests and the \
                smoke script can exercise the supervisor.")
  in
  let verbose =
    Arg.(
      value & flag
      & info [ "verbose" ] ~doc:"Supervision chatter on stderr.")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Run resimd, the fault-tolerant simulation job server: \
             admission control with typed rejections, overload \
             shedding (lint first, then sweeps, never in-flight \
             simulates), crashed-worker supervision with capped \
             retry/backoff, a content-addressed result cache, and \
             clean drain on SIGTERM")
    Term.(
      const serve $ socket_arg $ workers $ max_queue $ max_per_client
      $ retries $ backoff $ cache_dir $ test_hooks $ verbose)

let submit socket client status lint crash_worker garbage sweep kernels widths
    kernel scale trace base width rob lsq organization scheduler max_cycles
    timeout sample quiet =
  let config_spec =
    { Serve_protocol.base;
      width;
      rob;
      lsq;
      organization;
      scheduler }
  in
  let body =
    if status then Serve_protocol.Status
    else if crash_worker then Serve_protocol.Crash_worker
    else
      match lint with
      | Some path -> Serve_protocol.Lint { path; max_run = None }
      | None ->
          if sweep then
            Serve_protocol.Sweep_grid
              { kernels =
                  (if kernels = [] then [ "gzip"; "vpr" ] else kernels);
                widths = (if widths = [] then [ 2; 4 ] else widths);
                config = config_spec;
                max_cycles;
                timeout;
                sample }
          else
            Serve_protocol.Simulate
              { Serve_protocol.kernel;
                scale;
                trace;
                config = config_spec;
                max_cycles;
                timeout;
                sample }
  in
  let on_event = function
    | Serve_protocol.Accepted { job_id } ->
        if not quiet then Printf.eprintf "job %d accepted\n%!" job_id
    | Serve_protocol.Progress { completed; total; label } ->
        if not quiet then
          Printf.eprintf "[%d/%d] %s\n%!" completed total label
    | _ -> ()
  in
  let outcome =
    if garbage then
      (* Test hook: an unframed blob upsets the server, which must
         answer with a typed protocol error, not a hangup. *)
      Serve_client.converse_raw ~on_event ~socket "\xff\xff\xff\xffnope"
    else
      Serve_client.converse ~on_event ~socket
        { Serve_protocol.client; body }
  in
  match outcome with
  | Error error ->
      Printf.eprintf "resim submit: %s\n" (Serve_client.error_to_string error);
      exit (Serve_client.exit_code_of_error error)
  | Ok terminal ->
      (match terminal with
      | Serve_protocol.Done payload ->
          Printf.printf "outcome: %s%s (attempt(s): %d)\n"
            payload.Serve_protocol.outcome
            (if payload.Serve_protocol.cached then " [cached]" else "")
            payload.Serve_protocol.attempts;
          Option.iter
            (fun detail -> Printf.printf "%s\n" detail)
            payload.Serve_protocol.detail;
          Option.iter
            (fun metrics -> Printf.printf "%s\n" metrics)
            payload.Serve_protocol.metrics;
          Option.iter
            (fun checkpoint ->
              Printf.printf "checkpoint:\n%s" checkpoint)
            payload.Serve_protocol.checkpoint
      | Serve_protocol.Rejected rejection ->
          Printf.eprintf "rejected: %s\n"
            (Serve_protocol.rejection_to_string rejection)
      | Serve_protocol.Status_report
          { counters; queue; running; workers; draining } ->
          Printf.printf "workers: %d  queue: %d  running: %d%s\n" workers
            queue running
            (if draining then "  (draining)" else "");
          List.iter
            (fun (name, count) -> Printf.printf "%s: %d\n" name count)
            counters
      | Serve_protocol.Protocol_error fe ->
          Printf.eprintf "protocol error: %s\n"
            (Serve_protocol.frame_error_to_string fe)
      | Serve_protocol.Accepted _ | Serve_protocol.Progress _ -> ());
      exit (Serve_client.exit_code_of_terminal terminal)

let submit_cmd =
  let client =
    Arg.(
      value & opt string "cli"
      & info [ "client" ] ~docv:"NAME"
          ~doc:"Client name for per-client admission quotas.")
  in
  let status =
    Arg.(
      value & flag
      & info [ "status" ] ~doc:"Ask for server status instead of a job.")
  in
  let lint =
    Arg.(
      value
      & opt (some string) None
      & info [ "lint" ] ~docv:"TRACE"
          ~doc:"Submit a trace-lint job for this server-host path.")
  in
  let crash_worker =
    Arg.(
      value & flag
      & info [ "crash-worker" ]
          ~doc:"Test hook: make the worker that takes this job die \
                (server must run with $(b,--test-hooks)).")
  in
  let garbage =
    Arg.(
      value & flag
      & info [ "send-garbage" ]
          ~doc:"Test hook: send an oversized junk frame and report the \
                server's typed protocol error.")
  in
  let sweep =
    Arg.(
      value & flag
      & info [ "sweep" ]
          ~doc:"Submit a kernels × widths sweep grid as one streamed \
                job.")
  in
  let kernels =
    Arg.(
      value
      & opt (list string) []
      & info [ "kernels" ] ~docv:"K1,K2"
          ~doc:"Sweep kernels (default gzip,vpr).")
  in
  let widths =
    Arg.(
      value
      & opt (list int) []
      & info [ "widths" ] ~docv:"W1,W2" ~doc:"Sweep widths (default 2,4).")
  in
  let kernel =
    Arg.(
      value & opt string "gzip"
      & info [ "k"; "kernel" ] ~docv:"KERNEL" ~doc:"Simulate kernel.")
  in
  let scale =
    Arg.(
      value
      & opt (some int) None
      & info [ "s"; "scale" ] ~docv:"N" ~doc:"Kernel scale (input size).")
  in
  let trace =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:"Simulate this encoded trace (server-host path) instead \
                of generating from a kernel.")
  in
  let base =
    Arg.(
      value & opt string "reference"
      & info [ "base" ] ~docv:"NAME"
          ~doc:"Base configuration: reference or fast.")
  in
  let width =
    Arg.(
      value
      & opt (some int) None
      & info [ "w"; "width" ] ~docv:"N"
          ~doc:"Issue-width override (derives the same front end as \
                $(b,resim vhdl)).")
  in
  let rob =
    Arg.(
      value
      & opt (some int) None
      & info [ "rob" ] ~docv:"N" ~doc:"ROB entries override.")
  in
  let lsq =
    Arg.(
      value
      & opt (some int) None
      & info [ "lsq" ] ~docv:"N" ~doc:"LSQ entries override.")
  in
  let organization =
    Arg.(
      value
      & opt (some string) None
      & info [ "organization" ] ~docv:"ORG"
          ~doc:"Organization override (simple|improved|optimized).")
  in
  let scheduler =
    Arg.(
      value
      & opt (some string) None
      & info [ "scheduler" ] ~docv:"SCHED"
          ~doc:"Scheduler override (scan|event).")
  in
  let max_cycles =
    Arg.(
      value
      & opt (some int64) None
      & info [ "max-cycles" ] ~docv:"N"
          ~doc:"Per-job cycle budget; hitting it yields a partial \
                result plus a resumable checkpoint.")
  in
  let timeout =
    Arg.(
      value
      & opt (some float) None
      & info [ "timeout" ] ~docv:"SECONDS" ~doc:"Per-job wall budget.")
  in
  let sample =
    Arg.(
      value
      & opt (some string) None
      & info [ "sample" ] ~docv:"SPEC"
          ~doc:"Sampled simulation spec detail:warmup[:seed].")
  in
  let quiet =
    Arg.(
      value & flag
      & info [ "quiet" ] ~doc:"Suppress accepted/progress chatter.")
  in
  Cmd.v
    (Cmd.info "submit"
       ~doc:"Submit a job to a running $(b,resim serve) daemon and \
             stream its events. Exit codes: job's own code (0 ok or \
             truncated, 1 lint errors, 2 invalid config/request, 3 \
             server-side fault) plus 4 when the server is unreachable \
             and 5 when admission rejects the job (quota, queue, \
             shedding, draining)")
    Term.(
      const submit $ socket_arg $ client $ status $ lint $ crash_worker
      $ garbage $ sweep $ kernels $ widths $ kernel $ scale $ trace $ base
      $ width $ rob $ lsq $ organization $ scheduler $ max_cycles $ timeout
      $ sample $ quiet)

let loadgen socket kernel jobs clients quick output =
  let client_counts = if quick then [ 1; 2 ] else clients in
  let jobs_per_client = if quick then 2 else jobs in
  let tiers =
    Serve_load.run ~kernel ~jobs_per_client ~client_counts ~socket ()
  in
  List.iter
    (fun tier ->
      Printf.printf
        "%2d client(s): %5.1f jobs/s  p50 %6.1f ms  p99 %6.1f ms  (%d \
         job(s), %d error(s))\n"
        tier.Serve_load.clients tier.Serve_load.jobs_per_sec
        tier.Serve_load.p50_ms tier.Serve_load.p99_ms tier.Serve_load.jobs
        tier.Serve_load.errors)
    tiers;
  match output with
  | None -> ()
  | Some path ->
      let oc = open_out path in
      Fun.protect
        ~finally:(fun () -> close_out_noerr oc)
        (fun () -> output_string oc (Serve_load.to_json tiers));
      Printf.printf "wrote %s\n" path

let loadgen_cmd =
  let kernel =
    Arg.(
      value & opt string "gzip"
      & info [ "k"; "kernel" ] ~docv:"KERNEL" ~doc:"Kernel to submit.")
  in
  let jobs =
    Arg.(
      value & opt int 8
      & info [ "jobs" ] ~docv:"N" ~doc:"Jobs per client.")
  in
  let clients =
    Arg.(
      value
      & opt (list int) [ 1; 4; 16 ]
      & info [ "clients" ] ~docv:"N1,N2"
          ~doc:"Client-count tiers to measure.")
  in
  let quick =
    Arg.(
      value & flag
      & info [ "quick" ]
          ~doc:"CI-sized run: tiers 1,2 with 2 jobs per client.")
  in
  let output =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE"
          ~doc:"Write the tier table as JSON (BENCH_service.json).")
  in
  Cmd.v
    (Cmd.info "loadgen"
       ~doc:"Drive a running $(b,resim serve) daemon with N concurrent \
             clients and report jobs/sec with p50/p99 latency per tier")
    Term.(
      const loadgen $ socket_arg $ kernel $ jobs $ clients $ quick $ output)

let () =
  let info =
    Cmd.info "resim" ~version:Resim_core.Resim.version
      ~doc:"Trace-driven ILP processor timing simulation (DATE 2009 \
            reproduction)"
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [ tracegen_cmd; faultgen_cmd; simulate_cmd; area_cmd;
            schedule_cmd; table_cmd; sweep_cmd; bench_cmd; lint_cmd;
            disasm_cmd; vhdl_cmd; ptrace_cmd; profile_cmd;
            workloads_cmd; serve_cmd; submit_cmd; loadgen_cmd ]))
