(* resim-dsafe: the cross-module domain-safety gate of resim-check.

   Drives Resim_check.Dsafe over the files named on the command line —
   `dune build @dsafe` / `make dsafe` pass the whole lib/ tree so
   cross-module captures resolve. Findings carry the stable codes
   RSM-D001..D008 (catalog in DESIGN.md §15).

   Usage: resim_dsafe [--inventory] [--max-annotations N] file.ml ...

   Exit codes: 0 clean, 1 findings (or annotation budget exceeded),
   2 usage/parse failure. *)

module Dsafe = Resim_check.Dsafe
module Diagnostic = Resim_check.Diagnostic

let usage = "usage: resim_dsafe [--inventory] [--max-annotations N] file.ml ..."

let () =
  let files = ref [] in
  let inventory = ref false in
  let max_annotations = ref None in
  let bad_usage message =
    prerr_endline message;
    prerr_endline usage;
    exit 2
  in
  let rec parse_args = function
    | [] -> ()
    | "--inventory" :: rest ->
        inventory := true;
        parse_args rest
    | "--max-annotations" :: value :: rest -> (
        match int_of_string_opt value with
        | Some n when n >= 0 ->
            max_annotations := Some n;
            parse_args rest
        | _ -> bad_usage "--max-annotations expects a non-negative integer")
    | "--max-annotations" :: [] ->
        bad_usage "--max-annotations expects a value"
    | flag :: _ when String.length flag > 1 && flag.[0] = '-' ->
        bad_usage (Printf.sprintf "unknown flag %s" flag)
    | file :: rest ->
        files := file :: !files;
        parse_args rest
  in
  parse_args (List.tl (Array.to_list Sys.argv));
  let files = List.rev !files in
  if files = [] then bad_usage "no input files";
  match Dsafe.analyze_files files with
  | Error message ->
      Printf.eprintf "resim-dsafe: %s\n" message;
      exit 2
  | Ok report ->
      if !inventory then
        Format.printf "%a" Dsafe.pp_inventories report;
      List.iter
        (fun (d : Diagnostic.t) ->
          Printf.printf "%s: error[%s] %s\n" d.subject d.code d.message;
          match d.hint with
          | Some hint -> Printf.printf "    fix: %s\n" hint
          | None -> ())
        report.diagnostics;
      let annotations = List.length report.annotations in
      let over_budget =
        match !max_annotations with
        | Some budget when annotations > budget ->
            Printf.printf
              "resim-dsafe: %d `resim-dsafe:` annotation(s) exceed the \
               budget of %d — new allows must be justified in DESIGN.md \
               §15 and the budget raised deliberately\n"
              annotations budget;
            true
        | _ -> false
      in
      (match report.diagnostics with
      | [] ->
          if not over_budget then
            Printf.printf
              "resim-dsafe: clean (%d module(s), %d annotation(s))\n"
              (List.length report.inventories)
              annotations
      | findings ->
          Printf.printf "resim-dsafe: %d finding(s) in %d module(s)\n"
            (List.length findings)
            (List.length report.inventories));
      if report.diagnostics <> [] || over_budget then exit 1
