(* resim-lint: the hot-path source lint of resim-check (layer 3).

   A small, untyped Parsetree pass over the per-cycle simulator sources
   built on compiler-libs' [Ast_iterator]. It enforces the coding rules
   that keep the engine's inner loops allocation-free and clear of the
   polymorphic-comparison runtime:

     RSM-L001  Obj.magic / Obj.repr / Obj.obj anywhere.
     RSM-L002  polymorphic [=] / [<>] with a constructor operand, or a
               bare [compare] / [min] / [max] — these call caml_equal /
               caml_compare on variants instead of a tag compare.
               Hot files only.
     RSM-L003  direct stdout/stderr output (print_*, prerr_*,
               Printf.printf, Format.eprintf, output_string, ...) —
               simulator libraries report through formatters or
               structured results, never by printing.
     RSM-L004  allocation-heavy combinators (List.rev/map/..., [@],
               Array.of_list, Printf.sprintf, Format.asprintf, ...) in
               hot files — per-cycle work uses preallocated scratch
               buffers.
     RSM-L005  unguarded observer-sink calls ([notify]) in hot files —
               every hot-path emission site must sit behind the
               observer test ([if observed t then notify t ...]), so
               the zero-sink run never constructs an event.

   Two escape hatches keep the rules honest rather than absolute:

   - Cold contexts are exempt from L002/L004: arguments of
     raise/failwith/invalid_arg, assert bodies, and branches guarded by
     the observer hook ([if observed t then ...] or a match on an
     [.observer] field) — those run off the per-cycle path.
   - A comment containing "resim-lint: allow" on the same or the
     preceding line suppresses any finding.

   Usage: resim_lint [--hot] file.ml ... [--cold] file.ml ...
   Files after --hot get all four rules; files after --cold (the
   default) only L001/L003. Exits 1 when findings remain. *)

type finding = { file : string; line : int; code : string; message : string }

let findings : finding list ref = ref []

(* --- suppression markers ----------------------------------------- *)

let allow_marker = "resim-lint: allow"

let contains_marker line =
  let n = String.length line and m = String.length allow_marker in
  let rec scan i =
    i + m <= n && (String.sub line i m = allow_marker || scan (i + 1))
  in
  scan 0

let marker_lines text =
  let table = Hashtbl.create 8 in
  let line = ref 1 in
  let start = ref 0 in
  String.iteri
    (fun i c ->
      if c = '\n' then begin
        if contains_marker (String.sub text !start (i - !start)) then
          Hashtbl.replace table !line ();
        incr line;
        start := i + 1
      end)
    text;
  if !start < String.length text
     && contains_marker
          (String.sub text !start (String.length text - !start))
  then Hashtbl.replace table !line ();
  table

(* --- longident classification ------------------------------------ *)

let rec flatten = function
  | Longident.Lident s -> [ s ]
  | Longident.Ldot (prefix, s) -> flatten prefix @ [ s ]
  | Longident.Lapply (a, _) -> flatten a

let dotted lid = String.concat "." (flatten lid)

let is_obj_escape lid =
  match flatten lid with
  | [ "Obj"; ("magic" | "repr" | "obj") ] -> true
  | _ -> false

let is_console_output lid =
  match flatten lid with
  | [ ( "print_string" | "print_char" | "print_int" | "print_float"
      | "print_endline" | "print_newline" | "prerr_string" | "prerr_char"
      | "prerr_int" | "prerr_float" | "prerr_endline" | "prerr_newline"
      | "output_string" ) ] ->
      true
  | [ ("Printf" | "Format"); ("printf" | "eprintf") ] -> true
  | _ -> false

let is_polymorphic_builtin lid =
  match flatten lid with
  | [ ("compare" | "min" | "max") ]
  | [ "Stdlib"; ("compare" | "min" | "max") ] ->
      true
  | _ -> false

(* The engine's observer emitter. Any expression-position mention in a
   live hot context — application, partial application, being passed as
   a closure — is flagged; the guarded form puts the mention inside an
   observer-tested branch, which the cold-context machinery exempts. *)
let is_sink_call lid =
  match flatten lid with [ "notify" ] -> true | _ -> false

let is_allocating_call lid =
  match flatten lid with
  | [ "@" ] -> true
  | [ "List";
      ( "rev" | "map" | "mapi" | "rev_map" | "filter" | "filteri"
      | "filter_map" | "append" | "concat" | "concat_map" | "flatten"
      | "sort" | "stable_sort" | "fast_sort" | "sort_uniq" | "init"
      | "of_seq" | "split" | "combine" ) ] ->
      true
  | [ "Array"; ("of_list" | "to_list" | "append" | "concat") ] -> true
  | [ "String"; ("concat" | "split_on_char") ] -> true
  | [ "Printf"; "sprintf" ] | [ "Format"; ("sprintf" | "asprintf") ] -> true
  | _ -> false

(* Comparing against a nullary structural constant ([= None], [= []],
   [= true]) is cheap and idiomatic; comparing variant constructors with
   payload-bearing types is what drags in caml_equal. We flag any
   constructor operand other than the unit/bool/list builtins. *)
let is_flagged_constructor (expr : Parsetree.expression) =
  match expr.pexp_desc with
  | Pexp_construct ({ txt; _ }, _) -> (
      match flatten txt with
      | [ ("()" | "true" | "false" | "[]" | "::") ] -> false
      | _ -> true)
  | Pexp_variant _ -> true
  | _ -> false

(* --- the pass ----------------------------------------------------- *)

type ctx = {
  file : string;
  hot : bool;
  allowed : (int, unit) Hashtbl.t;
  mutable cold_depth : int;
      (* > 0 inside raise/assert/observer contexts *)
}

let line_of (expr : Parsetree.expression) =
  expr.pexp_loc.Location.loc_start.Lexing.pos_lnum

let report ctx ~line ~code message =
  if
    not
      (Hashtbl.mem ctx.allowed line
      || (line > 1 && Hashtbl.mem ctx.allowed (line - 1)))
  then findings := { file = ctx.file; line; code; message } :: !findings

let in_cold ctx body =
  ctx.cold_depth <- ctx.cold_depth + 1;
  Fun.protect ~finally:(fun () -> ctx.cold_depth <- ctx.cold_depth - 1) body

(* Does [expr] consult the observer hook? Recognizes the [observed t]
   predicate and direct [.observer] field reads. *)
let mentions_observer expr =
  let found = ref false in
  let iterator =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun self e ->
          (match e.pexp_desc with
          | Pexp_ident { txt = Longident.Lident "observed"; _ } ->
              found := true
          | Pexp_field (_, { txt; _ }) -> (
              match List.rev (flatten txt) with
              | "observer" :: _ -> found := true
              | _ -> ())
          | _ -> ());
          Ast_iterator.default_iterator.expr self e);
    }
  in
  iterator.expr iterator expr;
  !found

let is_abort_fn (fn : Parsetree.expression) =
  match fn.pexp_desc with
  | Pexp_ident { txt = Longident.Lident name; _ } -> (
      match name with
      | "raise" | "raise_notrace" | "failwith" | "invalid_arg" -> true
      | _ -> false)
  | _ -> false

let check_node ctx (expr : Parsetree.expression) =
  let hot_live = ctx.hot && ctx.cold_depth = 0 in
  match expr.pexp_desc with
  | Pexp_ident { txt; _ } ->
      let line = line_of expr in
      if is_obj_escape txt then
        report ctx ~line ~code:"RSM-L001"
          (Printf.sprintf "unsafe cast `%s` defeats the type system"
             (dotted txt))
      else if is_console_output txt then
        report ctx ~line ~code:"RSM-L003"
          (Printf.sprintf
             "`%s` writes to the console; report through a formatter or \
              structured result"
             (dotted txt))
      else if hot_live && is_polymorphic_builtin txt then
        report ctx ~line ~code:"RSM-L002"
          (Printf.sprintf
             "polymorphic `%s` calls caml_compare; use an int-typed or \
              match-based helper"
             (dotted txt))
      else if hot_live && is_allocating_call txt then
        report ctx ~line ~code:"RSM-L004"
          (Printf.sprintf
             "`%s` allocates per call; hot paths use preallocated scratch \
              buffers"
             (dotted txt))
      else if hot_live && is_sink_call txt then
        report ctx ~line ~code:"RSM-L005"
          "unguarded `notify` constructs an event even with no sink \
           attached; wrap the call site in `if observed t then ...`"
  | Pexp_apply
      ( { pexp_desc = Pexp_ident { txt = Longident.Lident (("=" | "<>") as op); _ };
          _ },
        [ (_, lhs); (_, rhs) ] )
    when hot_live
         && (is_flagged_constructor lhs || is_flagged_constructor rhs) ->
      report ctx ~line:(line_of expr) ~code:"RSM-L002"
        (Printf.sprintf
           "polymorphic `%s` against a variant constructor calls \
            caml_equal; match on the constructor instead"
           op)
  | _ -> ()

let lint_structure ctx structure =
  let default = Ast_iterator.default_iterator in
  let iterator =
    {
      default with
      expr =
        (fun self e ->
          check_node ctx e;
          match e.pexp_desc with
          | Pexp_ifthenelse (cond, then_, else_)
            when mentions_observer cond ->
              self.expr self cond;
              in_cold ctx (fun () -> self.expr self then_);
              Option.iter (self.expr self) else_
          | Pexp_match (scrutinee, cases) when mentions_observer scrutinee ->
              self.expr self scrutinee;
              in_cold ctx (fun () ->
                  List.iter (self.case self) cases)
          | Pexp_apply (fn, args) when is_abort_fn fn ->
              self.expr self fn;
              in_cold ctx (fun () ->
                  List.iter (fun (_, arg) -> self.expr self arg) args)
          | Pexp_assert body -> in_cold ctx (fun () -> self.expr self body)
          | _ -> default.expr self e);
    }
  in
  iterator.structure iterator structure

let lint_file ~hot path =
  let ic = open_in_bin path in
  let text = really_input_string ic (in_channel_length ic) in
  close_in ic;
  let lexbuf = Lexing.from_string text in
  Location.init lexbuf path;
  let structure = Parse.implementation lexbuf in
  let ctx = { file = path; hot; allowed = marker_lines text; cold_depth = 0 }
  in
  lint_structure ctx structure

let () =
  let hot = ref false in
  let parsed_any = ref false in
  let failed_parse = ref false in
  Array.iteri
    (fun i arg ->
      if i > 0 then
        match arg with
        | "--hot" -> hot := true
        | "--cold" | "--" -> hot := false
        | path -> (
            parsed_any := true;
            try lint_file ~hot:!hot path
            with exn ->
              failed_parse := true;
              Location.report_exception Format.err_formatter exn))
    Sys.argv;
  if not !parsed_any then begin
    prerr_endline
      "usage: resim_lint [--hot] file.ml ... [--cold] file.ml ...";
    exit 2
  end;
  let ordered =
    List.sort
      (fun (a : finding) (b : finding) ->
        match compare a.file b.file with 0 -> compare a.line b.line | c -> c)
      !findings
  in
  List.iter
    (fun ({ file; line; code; message } : finding) ->
      Printf.printf "%s:%d: error[%s] %s\n" file line code message)
    ordered;
  (match ordered with
  | [] -> if not !failed_parse then print_endline "resim-lint: clean"
  | fs ->
      Printf.printf "resim-lint: %d finding(s)\n" (List.length fs));
  if !failed_parse then exit 2 else if ordered <> [] then exit 1
