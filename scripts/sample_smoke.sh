#!/bin/sh
# Sampled-simulation smoke test, wired into `make check` (and available
# as `make sample-smoke`): run one kernel end to end under --sample,
# check the --metrics document carries the sample section and parses,
# check the run is deterministic for a fixed seed, check the spec
# grammar is enforced (exit 2), and push one sampled sweep through the
# grid. Everything under `timeout`.
set -eu

ROOT=$(cd "$(dirname "$0")/.." && pwd)
CLI="$ROOT/_build/default/bin/resim_cli.exe"
TMP=$(mktemp -d)
trap 'rm -rf "$TMP"' EXIT

if [ ! -x "$CLI" ]; then
    (cd "$ROOT" && dune build bin/resim_cli.exe)
fi

fail=0

# --- one sampled run, metrics spliced --------------------------------
timeout 300 "$CLI" simulate -k gzip -s 4000 --sample 200:1800:7 \
    --metrics "$TMP/sampled.json" > "$TMP/first.out"
timeout 300 "$CLI" simulate -k gzip -s 4000 \
    --metrics "$TMP/full.json" > /dev/null

if ! grep -q 'sampled (200:1800:7):' "$TMP/first.out"; then
    echo "FAIL simulate: no sampled summary line"
    fail=1
fi
if ! grep -q '"sample"' "$TMP/sampled.json"; then
    echo "FAIL metrics: no sample section in the JSON document"
    fail=1
fi

if command -v python3 > /dev/null 2>&1; then
    python3 - "$TMP/sampled.json" "$TMP/full.json" <<'EOF' || fail=1
import json, sys

with open(sys.argv[1]) as handle:
    document = json.load(handle)
sample = document["sample"]
assert sample["spec"] == {"detail": 200, "warmup": 1800, "seed": 7}, \
    sample["spec"]
assert sample["intervals"] >= 2, "too few intervals for a CI"
assert sample["mean_ipc"] > 0.0, "sampled IPC must be positive"
assert sample["ci95"] is not None and sample["ci95"] >= 0.0
assert len(sample["interval_ipc"]) == sample["intervals"]

# The statistical contract: the full run's IPC falls inside the
# sampled run's reported 95% confidence interval.
with open(sys.argv[2]) as handle:
    full_ipc = json.load(handle)["derived"]["ipc"]
lo = sample["mean_ipc"] - sample["ci95"]
hi = sample["mean_ipc"] + sample["ci95"]
assert lo <= full_ipc <= hi, \
    f"full IPC {full_ipc:.4f} outside sampled CI [{lo:.4f}, {hi:.4f}]"
print("sample-smoke: metrics ok "
      f"({sample['intervals']} intervals, "
      f"IPC {sample['mean_ipc']:.4f} +- {sample['ci95']:.4f} "
      f"covers full {full_ipc:.4f})")
EOF
else
    echo "sample-smoke: python3 not available, skipping JSON checks"
fi

# --- determinism: a fixed seed reproduces the report -----------------
timeout 300 "$CLI" simulate -k gzip -s 4000 --sample 200:1800:7 \
    > "$TMP/second.out"
grep 'sampled (' "$TMP/first.out" > "$TMP/first.sampled"
grep 'sampled (' "$TMP/second.out" > "$TMP/second.sampled"
if ! cmp -s "$TMP/first.sampled" "$TMP/second.sampled"; then
    echo "FAIL determinism: two runs with the same seed diverged"
    diff "$TMP/first.sampled" "$TMP/second.sampled" || true
    fail=1
fi

# --- the spec grammar is enforced before any work --------------------
for bad in nonsense 0:100 100:-1 1:2:3:4; do
    if "$CLI" simulate -k gzip -s 256 --sample "$bad" \
        > /dev/null 2>&1; then
        echo "FAIL spec: --sample $bad was accepted"
        fail=1
    else
        status=$?
        if [ "$status" -ne 2 ]; then
            echo "FAIL spec: --sample $bad exited $status, expected 2"
            fail=1
        fi
    fi
done

# --- sampled sweep through the quick grid ----------------------------
timeout 600 "$CLI" sweep --quick -j 2 --sample 200:1800:7 \
    --metrics "$TMP/sweep.json" > "$TMP/sweep.out"
if ! grep -q '"sample"' "$TMP/sweep.json"; then
    echo "FAIL sweep: no per-job sample sections in the metrics"
    fail=1
fi

if [ "$fail" -ne 0 ]; then
    echo "sample-smoke: FAILED"
    exit 1
fi
echo "sample-smoke: all clean"
