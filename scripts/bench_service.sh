#!/bin/sh
# Refresh BENCH_service.json: start a local resimd, run the load
# generator at 1/4/16 clients, write the tier table into the repo
# root, and drain the daemon. `make bench-service`.
set -eu

ROOT=$(cd "$(dirname "$0")/.." && pwd)
CLI="$ROOT/_build/default/bin/resim_cli.exe"
TMP=$(mktemp -d)
SOCK="$TMP/resimd.sock"
trap 'rm -rf "$TMP"' EXIT

if [ ! -x "$CLI" ]; then
    (cd "$ROOT" && dune build bin/resim_cli.exe)
fi

timeout 800 "$CLI" serve --socket "$SOCK" --workers 4 > "$TMP/serve.out" 2>&1 &
SERVE_PID=$!
trap 'kill -TERM "$SERVE_PID" 2>/dev/null || true; rm -rf "$TMP"' EXIT

tries=0
until timeout 10 "$CLI" submit --socket "$SOCK" --status > /dev/null 2>&1; do
    tries=$((tries + 1))
    [ "$tries" -ge 100 ] && { echo "daemon did not come up"; exit 1; }
    sleep 0.1
done

timeout 700 "$CLI" loadgen --socket "$SOCK" --clients 1,4,16 --jobs 8 \
    -o "$ROOT/BENCH_service.json"

kill -TERM "$SERVE_PID"
wait "$SERVE_PID" || { echo "daemon did not drain cleanly"; exit 1; }
echo "BENCH_service.json refreshed"
