#!/bin/sh
# Fault-injection smoke test, wired into `make check` (and available as
# `make faultsmoke`): for every Fault_inject corruption class, generate
# a corrupted trace with `resim faultgen`, confirm `resim lint` exits
# with the class's severity and reports its RSM-T code, and confirm
# `resim simulate --degraded resync` terminates with a structured
# outcome (exit 0 or 3) — never a hang (everything runs under
# `timeout`) and never an uncaught exception.
set -eu

ROOT=$(cd "$(dirname "$0")/.." && pwd)
CLI="$ROOT/_build/default/bin/resim_cli.exe"
TMP=$(mktemp -d)
trap 'rm -rf "$TMP"' EXIT

if [ ! -x "$CLI" ]; then
    (cd "$ROOT" && dune build bin/resim_cli.exe)
fi

# The injected runaway run is bounded by Fault_inject.default_max_run
# (64); the linter must be told that bound or RSM-T007 cannot fire.
MAX_RUN=64
fail=0

"$CLI" faultgen --list > "$TMP/classes"

while read -r name code severity _desc; do
    trace="$TMP/$name.trace"
    timeout 60 "$CLI" faultgen -k gzip -s 256 --fault "$name" --seed 3 \
        -o "$trace" > /dev/null

    status=0
    timeout 60 "$CLI" lint --max-wrong-path-run "$MAX_RUN" "$trace" \
        > "$TMP/lint.out" 2>&1 || status=$?
    case "$severity" in
    error)
        if [ "$status" -ne 1 ]; then
            echo "FAIL $name: lint exit $status, want 1 (error)"
            fail=1
        fi
        if ! grep -q "$code" "$TMP/lint.out"; then
            echo "FAIL $name: lint did not report $code"
            fail=1
        fi
        ;;
    warning)
        if [ "$status" -ne 0 ]; then
            echo "FAIL $name: lint exit $status, want 0 (warning only)"
            fail=1
        fi
        if ! grep -q "$code" "$TMP/lint.out"; then
            echo "FAIL $name: lint did not report $code"
            fail=1
        fi
        ;;
    varies)
        if [ "$status" -ne 0 ] && [ "$status" -ne 1 ]; then
            echo "FAIL $name: lint exit $status (crash?)"
            fail=1
        fi
        ;;
    *)
        echo "FAIL $name: unknown severity $severity"
        fail=1
        ;;
    esac

    status=0
    timeout 60 "$CLI" simulate -t "$trace" --degraded resync \
        > /dev/null 2>&1 || status=$?
    if [ "$status" -ne 0 ] && [ "$status" -ne 3 ]; then
        echo "FAIL $name: degraded simulate exit $status (0|3 expected)"
        fail=1
    fi

    echo "ok $name ($severity${code:+, $code})"
done < "$TMP/classes"

if [ "$fail" -ne 0 ]; then
    echo "faultsmoke: FAILED"
    exit 1
fi
echo "faultsmoke: clean"
