#!/bin/sh
# Engine-specialization smoke test, wired into `make check` (and
# available as `make spec-smoke`): run the same kernel with and
# without --no-specialize on every surface that takes the flag and
# check (a) the specialized run reports its variant, (b) statistics
# are bit-identical either way (the DESIGN.md §14 contract), (c) the
# metrics/profile JSON documents carry the specialized/variant fields,
# and (d) the sampled and pipetrace paths compose with specialization.
# Everything under `timeout`.
set -eu

ROOT=$(cd "$(dirname "$0")/.." && pwd)
CLI="$ROOT/_build/default/bin/resim_cli.exe"
TMP=$(mktemp -d)
trap 'rm -rf "$TMP"' EXIT

if [ ! -x "$CLI" ]; then
    (cd "$ROOT" && dune build bin/resim_cli.exe)
fi

fail=0

# --- simulate: specialized vs generic bit-identity -------------------
timeout 120 "$CLI" simulate -k gzip -s 512 --metrics "$TMP/spec.json" \
    > "$TMP/spec.out"
timeout 120 "$CLI" simulate -k gzip -s 512 --no-specialize \
    --metrics "$TMP/generic.json" > "$TMP/generic.out"

if ! grep -q '^engine: specialized (' "$TMP/spec.out"; then
    echo "FAIL simulate: default run did not install a staged variant"
    fail=1
fi
if grep -q '^engine: specialized (' "$TMP/generic.out"; then
    echo "FAIL simulate: --no-specialize still specialized"
    fail=1
fi
if ! grep -q '"specialized": true' "$TMP/spec.json"; then
    echo "FAIL metrics: specialized run not flagged in JSON"
    fail=1
fi
if ! grep -q '"specialized": false' "$TMP/generic.json"; then
    echo "FAIL metrics: generic run not flagged in JSON"
    fail=1
fi
# Identical statistics once the engine-identity fields are stripped.
for f in spec generic; do
    grep -v '"specialized"\|"variant"' "$TMP/$f.json" > "$TMP/$f.stats"
done
if ! cmp -s "$TMP/spec.stats" "$TMP/generic.stats"; then
    echo "FAIL simulate: specialized and generic statistics differ"
    diff "$TMP/spec.stats" "$TMP/generic.stats" | head -5
    fail=1
fi
# The human-readable engine sections must agree too (drop the variant
# line and host-side chatter).
for f in spec generic; do
    grep -v '^engine: specialized\|^wrote ' "$TMP/$f.out" > "$TMP/$f.txt"
done
if ! cmp -s "$TMP/spec.txt" "$TMP/generic.txt"; then
    echo "FAIL simulate: specialized and generic outputs differ"
    diff "$TMP/spec.txt" "$TMP/generic.txt" | head -5
    fail=1
fi

# --- pipetrace composes: identical JSONL streams ---------------------
timeout 120 "$CLI" simulate -k gzip -s 512 \
    --pipetrace "$TMP/spec.jsonl" > /dev/null
timeout 120 "$CLI" simulate -k gzip -s 512 --no-specialize \
    --pipetrace "$TMP/generic.jsonl" > /dev/null
if ! cmp -s "$TMP/spec.jsonl" "$TMP/generic.jsonl"; then
    echo "FAIL pipetrace: specialized stream differs from generic"
    fail=1
fi

# --- sampled runs compose with specialization ------------------------
timeout 120 "$CLI" simulate -k gzip -s 512 --sample 200:800:3 \
    --metrics "$TMP/sampled.json" > "$TMP/sampled.out"
if ! grep -q '^engine: specialized (' "$TMP/sampled.out"; then
    echo "FAIL sample: sampled run did not specialize"
    fail=1
fi
if ! grep -q '"sample":' "$TMP/sampled.json"; then
    echo "FAIL sample: no sampled section in metrics"
    fail=1
fi

# --- profile: phase attribution knows the engine identity ------------
timeout 120 "$CLI" profile -k gzip -s 256 --json "$TMP/prof.json" \
    > "$TMP/prof.out"
if ! grep -q '^engine: specialized (' "$TMP/prof.out"; then
    echo "FAIL profile: default profile did not specialize"
    fail=1
fi
if ! grep -q '"specialized":true' "$TMP/prof.json"; then
    echo "FAIL profile: JSON missing specialized flag"
    fail=1
fi
if ! grep -q '"variant":"' "$TMP/prof.json"; then
    echo "FAIL profile: JSON missing variant name"
    fail=1
fi
timeout 120 "$CLI" profile -k gzip -s 256 --no-specialize \
    --json "$TMP/prof_gen.json" > "$TMP/prof_gen.out"
if ! grep -q '^engine: generic' "$TMP/prof_gen.out"; then
    echo "FAIL profile: --no-specialize did not report the generic engine"
    fail=1
fi
if ! grep -q '"specialized":false' "$TMP/prof_gen.json"; then
    echo "FAIL profile: generic JSON missing specialized:false"
    fail=1
fi

# --- sweep: both modes complete with identical stall totals ----------
timeout 300 "$CLI" sweep --quick -j 2 > "$TMP/sweep_spec.out"
timeout 300 "$CLI" sweep --quick -j 2 --no-specialize \
    > "$TMP/sweep_gen.out"
for f in sweep_spec sweep_gen; do
    sed -n '/stall causes/,$p' "$TMP/$f.out" > "$TMP/$f.stalls"
done
if ! cmp -s "$TMP/sweep_spec.stalls" "$TMP/sweep_gen.stalls"; then
    echo "FAIL sweep: stall totals differ between modes"
    diff "$TMP/sweep_spec.stalls" "$TMP/sweep_gen.stalls" | head -5
    fail=1
fi

if [ "$fail" -ne 0 ]; then
    echo "spec-smoke: FAILED"
    exit 1
fi
echo "spec-smoke: all clean"
