#!/bin/sh
# resimd smoke test, wired into `make check` (and available as
# `make serve-smoke`): start the daemon, push a simulate, a sweep and
# a bad-config job over the wire, check the documented exit codes,
# check a resubmission is a cache hit, check the garbage-frame and
# crashed-worker paths answer with typed errors instead of hangs, run
# the load generator's CI tier, then SIGTERM the daemon and verify it
# drains: exit 0, no stale socket, no orphan process. Everything under
# `timeout`.
set -eu

ROOT=$(cd "$(dirname "$0")/.." && pwd)
CLI="$ROOT/_build/default/bin/resim_cli.exe"
TMP=$(mktemp -d)
SOCK="$TMP/resimd.sock"
trap 'rm -rf "$TMP"' EXIT

if [ ! -x "$CLI" ]; then
    (cd "$ROOT" && dune build bin/resim_cli.exe)
fi

fail=0

# --- daemon up -------------------------------------------------------
timeout 600 "$CLI" serve --socket "$SOCK" --workers 2 --retries 1 \
    --test-hooks --cache-dir "$TMP/cache" > "$TMP/serve.out" 2>&1 &
SERVE_PID=$!

tries=0
until timeout 10 "$CLI" submit --socket "$SOCK" --status > /dev/null 2>&1; do
    tries=$((tries + 1))
    if [ "$tries" -ge 100 ]; then
        echo "FAIL serve: daemon did not come up"
        cat "$TMP/serve.out"
        exit 1
    fi
    sleep 0.1
done

# --- simulate over the wire (exit 0) ---------------------------------
if ! timeout 120 "$CLI" submit --socket "$SOCK" -k gzip -s 400 --quiet \
    > "$TMP/sim.out" 2> /dev/null; then
    echo "FAIL submit: clean simulate did not exit 0"
    fail=1
fi
if ! grep -q '"ipc"' "$TMP/sim.out"; then
    echo "FAIL submit: no metrics in the simulate reply"
    fail=1
fi

# --- resubmission is a content-addressed cache hit -------------------
timeout 120 "$CLI" submit --socket "$SOCK" -k gzip -s 400 --quiet \
    > "$TMP/sim2.out" 2> /dev/null || fail=1
if ! grep -q '\[cached\]' "$TMP/sim2.out"; then
    echo "FAIL cache: resubmission was not served from the cache"
    fail=1
fi

# --- sweep grid streams and completes (exit 0) -----------------------
if ! timeout 300 "$CLI" submit --socket "$SOCK" --sweep --kernels gzip \
    --widths 2,4 --quiet > "$TMP/sweep.out" 2> /dev/null; then
    echo "FAIL submit: sweep grid did not exit 0"
    fail=1
fi
if ! grep -q '"gzip/w2"' "$TMP/sweep.out"; then
    echo "FAIL submit: sweep reply lacks per-job labels"
    fail=1
fi

# --- bad config is a typed invalid-config (exit 2) -------------------
timeout 120 "$CLI" submit --socket "$SOCK" -k gzip --base nope \
    > /dev/null 2>&1 && rc=0 || rc=$?
if [ "$rc" -ne 2 ]; then
    echo "FAIL submit: bad config exited $rc, want 2"
    fail=1
fi

# --- crashed worker: supervisor retries, then typed crash (exit 3) ---
timeout 120 "$CLI" submit --socket "$SOCK" --crash-worker \
    > /dev/null 2>&1 && rc=0 || rc=$?
if [ "$rc" -ne 3 ]; then
    echo "FAIL submit: crash-worker exited $rc, want 3"
    fail=1
fi

# --- garbage frame: typed protocol error, daemon survives (exit 3) ---
timeout 120 "$CLI" submit --socket "$SOCK" --send-garbage \
    > /dev/null 2>&1 && rc=0 || rc=$?
if [ "$rc" -ne 3 ]; then
    echo "FAIL submit: garbage frame exited $rc, want 3"
    fail=1
fi

# --- the queue still drains real work after the abuse ----------------
if ! timeout 120 "$CLI" submit --socket "$SOCK" -k vpr -s 400 --quiet \
    > /dev/null 2> /dev/null; then
    echo "FAIL submit: daemon wedged after crash/garbage abuse"
    fail=1
fi

# --- load generator CI tier ------------------------------------------
if ! timeout 300 "$CLI" loadgen --socket "$SOCK" --quick \
    -o "$TMP/bench_service.json" > /dev/null 2>&1; then
    echo "FAIL loadgen: --quick run failed"
    fail=1
fi
if ! grep -q '"jobs_per_sec"' "$TMP/bench_service.json"; then
    echo "FAIL loadgen: no jobs_per_sec in the JSON report"
    fail=1
fi

# --- SIGTERM drain: exit 0, socket unlinked, process gone ------------
kill -TERM "$SERVE_PID"
if ! wait "$SERVE_PID"; then
    echo "FAIL serve: daemon did not exit 0 on SIGTERM"
    fail=1
fi
if [ -e "$SOCK" ]; then
    echo "FAIL serve: stale socket left after drain"
    fail=1
fi
if kill -0 "$SERVE_PID" 2> /dev/null; then
    echo "FAIL serve: daemon process survived SIGTERM"
    fail=1
fi

# --- unreachable server is a typed refusal (exit 4) ------------------
timeout 60 "$CLI" submit --socket "$SOCK" --status > /dev/null 2>&1 \
    && rc=0 || rc=$?
if [ "$rc" -ne 4 ]; then
    echo "FAIL submit: dead server exited $rc, want 4"
    fail=1
fi

if [ "$fail" -eq 0 ]; then
    echo "serve smoke: OK (admission, cache, supervision, drain, exit codes)"
else
    echo "--- daemon log ---"
    cat "$TMP/serve.out"
fi
exit "$fail"
