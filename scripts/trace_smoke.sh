#!/bin/sh
# Trace-frontier smoke test, wired into `make check` (and available as
# `make trace-smoke`): the foreign-format adapters and the streaming
# path end to end through the CLI.
#
#   1. Both foreign profiles (text, riscv) adapt, lint clean and
#      simulate with nonzero synthesized wrong-path fetches; malformed
#      input exits 1 with an RSM-A file:line diagnostic (never a
#      backtrace) and a missing file exits 2 with RSM-T009.
#   2. Streamed runs (--stream, chunked cursor) produce metrics
#      byte-identical to the in-memory path, on counted files, on
#      streamed-header files and through a pipe.
#   3. Sharded traces (tracegen --records-per-shard) lint clean shard
#      by shard and simulate identically to the unsharded trace.
#   4. Constant-memory guard: a 2M-record trace streams through the
#      engine within a peak-RSS budget ~16x below what materializing
#      it costs (measured: ~19 MB streamed vs ~300 MB in-memory), so a
#      regression that silently materializes the stream fails the gate.
set -eu

ROOT=$(cd "$(dirname "$0")/.." && pwd)
CLI="$ROOT/_build/default/bin/resim_cli.exe"
TMP=$(mktemp -d)
trap 'rm -rf "$TMP"' EXIT

if [ ! -x "$CLI" ]; then
    (cd "$ROOT" && dune build bin/resim_cli.exe)
fi

fail=0

expect_exit() {
    # expect_exit LABEL WANT STATUS
    if [ "$3" -ne "$2" ]; then
        echo "FAIL $1: exit $3, want $2"
        fail=1
    fi
}

metric() {
    # metric FILE KEY -> integer value
    grep -o "\"$2\":[ ]*[0-9-]*" "$1" | head -1 | grep -o '[0-9-]*$'
}

# --- 1. foreign formats ------------------------------------------------

# Text profile: a loop whose branch at 0x1004 alternates taken (back to
# 0x1000) and not-taken (falls through to 0x1008), so the synthesis
# predictor must mispredict and emit tagged wrong-path blocks.
i=0
while [ $i -lt 100 ]; do
    printf '1000 0 1 2 3\n1004 0 2 1 1\n' >> "$TMP/text.trc"
    if [ $((i % 2)) -eq 1 ]; then
        printf '1008 0 3 2 1\n' >> "$TMP/text.trc"
    fi
    i=$((i + 1))
done

# RISC-V profile: lw / mul / sw / bne loop, taken five times then
# falling through to a nop.
i=0
while [ $i -lt 6 ]; do
    printf '1000 0005a503 mem %x\n' $((32768 + 8 * i)) >> "$TMP/riscv.trc"
    printf '1004 02c58533\n1008 00a62023 mem %x\n100c fed61ae3\n' \
        $((36864 + 8 * i)) >> "$TMP/riscv.trc"
    i=$((i + 1))
done
printf '1010 00000013\n' >> "$TMP/riscv.trc"

for fmt in text riscv; do
    status=0
    timeout 60 "$CLI" lint "$TMP/$fmt.trc" --format "$fmt" \
        > "$TMP/lint.out" 2>&1 || status=$?
    expect_exit "$fmt lint clean" 0 $status
    status=0
    timeout 60 "$CLI" simulate -t "$TMP/$fmt.trc" --format "$fmt" \
        --metrics "$TMP/m_$fmt.json" > /dev/null 2>&1 || status=$?
    expect_exit "$fmt simulate" 0 $status
    wrong=$(metric "$TMP/m_$fmt.json" fetched_wrong_path)
    if [ "${wrong:-0}" -le 0 ]; then
        echo "FAIL $fmt: fetched_wrong_path=$wrong, want > 0 (synthesized wrong path must reach the engine)"
        fail=1
    fi
done

# Malformed foreign input: typed RSM-A with file:line, exit 1, and
# never an uncaught exception.
printf '1000 0 1 2 3\n1004 9 1 2 3\n' > "$TMP/bad.trc"
status=0
timeout 60 "$CLI" simulate -t "$TMP/bad.trc" --format text \
    > "$TMP/bad.out" 2>&1 || status=$?
expect_exit "malformed text simulate" 1 $status
if ! grep -q 'RSM-A003' "$TMP/bad.out" || ! grep -q 'bad.trc:2' "$TMP/bad.out"; then
    echo "FAIL malformed text: no RSM-A003 file:line diagnostic"
    cat "$TMP/bad.out"
    fail=1
fi
status=0
timeout 60 "$CLI" lint "$TMP/bad.trc" --format text > /dev/null 2>&1 || status=$?
expect_exit "malformed text lint" 1 $status

# Missing trace file: structured RSM-T009, exit 2, no backtrace.
status=0
timeout 60 "$CLI" simulate -t /nonexistent/no-such.rtr \
    > "$TMP/missing.out" 2>&1 || status=$?
expect_exit "missing trace file" 2 $status
if ! grep -q 'RSM-T009' "$TMP/missing.out"; then
    echo "FAIL missing file: no RSM-T009 diagnostic"
    cat "$TMP/missing.out"
    fail=1
fi
if grep -qi 'backtrace\|Fatal error' "$TMP/missing.out"; then
    echo "FAIL missing file: leaked a backtrace"
    fail=1
fi

# --- 2. streamed == in-memory -----------------------------------------

timeout 120 "$CLI" tracegen -k gzip -s 4000 -o "$TMP/t.rtr" > /dev/null
timeout 120 "$CLI" simulate -t "$TMP/t.rtr" --metrics "$TMP/a.json" \
    > /dev/null
timeout 120 "$CLI" simulate -t "$TMP/t.rtr" --stream \
    --metrics "$TMP/b.json" > /dev/null
if ! cmp -s "$TMP/a.json" "$TMP/b.json"; then
    echo "FAIL streamed file: metrics differ from in-memory"
    fail=1
fi

# Streamed-header file (count unknown to the producer): both paths
# again, plus the same trace through a pipe.
timeout 120 "$CLI" tracegen --stream --limit 50000 -k gzip \
    > "$TMP/s.rtr" 2> /dev/null
timeout 120 "$CLI" simulate -t "$TMP/s.rtr" --metrics "$TMP/sa.json" \
    > /dev/null
timeout 120 "$CLI" simulate -t "$TMP/s.rtr" --stream \
    --metrics "$TMP/sb.json" > /dev/null
timeout 120 "$CLI" simulate --stream -t - --metrics "$TMP/sc.json" \
    < "$TMP/s.rtr" > /dev/null
if ! cmp -s "$TMP/sa.json" "$TMP/sb.json" \
    || ! cmp -s "$TMP/sa.json" "$TMP/sc.json"; then
    echo "FAIL streamed header: file/stream/pipe metrics disagree"
    fail=1
fi

# --- 3. shards ---------------------------------------------------------

mkdir "$TMP/shards"
timeout 120 "$CLI" tracegen -k gzip -s 4000 --records-per-shard 512 \
    -o "$TMP/shards/t.rtr" > /dev/null
count=$(ls "$TMP/shards"/t.*.rtr | wc -l)
if [ "$count" -lt 2 ]; then
    echo "FAIL shards: expected several shards, got $count"
    fail=1
fi
for shard in "$TMP/shards"/t.*.rtr; do
    status=0
    timeout 60 "$CLI" lint "$shard" > /dev/null 2>&1 || status=$?
    expect_exit "shard $(basename "$shard") lints alone" 0 $status
done
timeout 120 "$CLI" simulate -t "$TMP/shards/t" --metrics "$TMP/c.json" \
    > /dev/null
if ! cmp -s "$TMP/a.json" "$TMP/c.json"; then
    echo "FAIL shards: concatenated metrics differ from unsharded trace"
    fail=1
fi

# --- 4. constant-memory guard ------------------------------------------

# 2M records: materializing costs ~300 MB peak RSS; the streamed path
# was measured at ~19 MB. Budget 64 MB — a silent materialization (or
# an unbounded refill buffer) blows through it.
RSS_BUDGET_KB=65536
timeout 300 "$CLI" tracegen --stream --limit 2000000 -k gzip \
    > "$TMP/big.rtr" 2> /dev/null

# Background the CLI directly (no `timeout` wrapper: $pid must be the
# simulator itself for /proc VmHWM); the poll loop doubles as the
# watchdog.
"$CLI" simulate --stream -t "$TMP/big.rtr" \
    --metrics "$TMP/p.json" > /dev/null 2>&1 &
pid=$!
peak=0
ticks=0
while kill -0 "$pid" 2> /dev/null; do
    v=$(awk '/VmHWM/ { print $2 }' "/proc/$pid/status" 2> /dev/null || echo 0)
    if [ "${v:-0}" -gt "$peak" ]; then peak=$v; fi
    ticks=$((ticks + 1))
    if [ "$ticks" -gt 6000 ]; then
        echo "FAIL constant-memory guard: simulate still running after ~600s"
        kill -9 "$pid" 2> /dev/null || true
        fail=1
        break
    fi
    sleep 0.1
done
status=0
wait "$pid" || status=$?
expect_exit "2M-record streamed simulate" 0 $status
if [ "$peak" -gt "$RSS_BUDGET_KB" ]; then
    echo "FAIL constant-memory guard: peak RSS ${peak} kB > budget ${RSS_BUDGET_KB} kB"
    fail=1
fi
committed=$(metric "$TMP/p.json" committed)
if [ "${committed:-0}" -le 1000000 ]; then
    echo "FAIL constant-memory guard: committed=$committed, want > 1000000"
    fail=1
fi

if [ "$fail" -ne 0 ]; then
    echo "trace smoke: FAILED"
    exit 1
fi
echo "trace smoke: OK (foreign formats, streamed==in-memory, shards, peak RSS ${peak} kB <= ${RSS_BUDGET_KB} kB)"
