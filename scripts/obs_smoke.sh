#!/bin/sh
# Observability smoke test, wired into `make check` (and available as
# `make obs-smoke`): simulate a kernel with --pipetrace/--metrics,
# validate the JSONL stream with the resim-check schema validator
# (RSM-P codes, both clean and deliberately corrupted), check the
# metrics documents parse and carry the stall-cause taxonomy, and run
# the profile subcommand end to end. Everything under `timeout`.
set -eu

ROOT=$(cd "$(dirname "$0")/.." && pwd)
CLI="$ROOT/_build/default/bin/resim_cli.exe"
TMP=$(mktemp -d)
trap 'rm -rf "$TMP"' EXIT

if [ ! -x "$CLI" ]; then
    (cd "$ROOT" && dune build bin/resim_cli.exe)
fi

fail=0

# --- pipetrace + metrics + waterfall through one simulate run --------
timeout 120 "$CLI" simulate -k gzip -s 256 \
    --pipetrace "$TMP/run.jsonl" --metrics "$TMP/run.json" \
    --waterfall 8 > "$TMP/simulate.out"

for artifact in run.jsonl run.json; do
    if [ ! -s "$TMP/$artifact" ]; then
        echo "FAIL simulate: $artifact missing or empty"
        fail=1
    fi
done
if ! grep -q '"e":"C"' "$TMP/run.jsonl"; then
    echo "FAIL pipetrace: no commit events in the stream"
    fail=1
fi
if ! grep -q '"stall_causes"' "$TMP/run.json"; then
    echo "FAIL metrics: no stall_causes section"
    fail=1
fi
if ! grep -q '^#0 ' "$TMP/simulate.out"; then
    echo "FAIL waterfall: no instruction rows rendered"
    fail=1
fi

# CSV flavour: a header line plus one row, same column count.
timeout 120 "$CLI" simulate -k gzip -s 256 --metrics "$TMP/run.csv" \
    > /dev/null
header_cols=$(head -1 "$TMP/run.csv" | tr ',' '\n' | wc -l)
row_cols=$(sed -n 2p "$TMP/run.csv" | tr ',' '\n' | wc -l)
if [ "$header_cols" -ne "$row_cols" ] || [ "$header_cols" -lt 20 ]; then
    echo "FAIL metrics csv: header/row column mismatch ($header_cols/$row_cols)"
    fail=1
fi

# --- schema validation: clean stream passes, corruption fails --------
if ! timeout 60 "$CLI" lint --pipetrace "$TMP/run.jsonl" \
        > "$TMP/lint.out"; then
    echo "FAIL lint --pipetrace: clean stream rejected"
    cat "$TMP/lint.out"
    fail=1
fi
if ! grep -q 'clean' "$TMP/lint.out"; then
    echo "FAIL lint --pipetrace: did not report clean"
    fail=1
fi

{ head -5 "$TMP/run.jsonl"
  echo '{"c":1,"e":"Z"}'
  echo 'not json at all'
} > "$TMP/corrupt.jsonl"
status=0
timeout 60 "$CLI" lint --pipetrace "$TMP/corrupt.jsonl" \
    > "$TMP/corrupt.out" 2>&1 || status=$?
if [ "$status" -ne 1 ]; then
    echo "FAIL lint --pipetrace: corrupt stream exit $status, want 1"
    fail=1
fi
for code in RSM-P002 RSM-P001; do
    if ! grep -q "$code" "$TMP/corrupt.out"; then
        echo "FAIL lint --pipetrace: $code not reported"
        fail=1
    fi
done

# --- profile: every engine phase attributed, JSON written ------------
timeout 120 "$CLI" profile -k gzip -s 256 --json "$TMP/prof.json" \
    > "$TMP/profile.out"
for phase in commit writeback issue dispatch decouple fetch account; do
    if ! grep -q "engine/$phase" "$TMP/profile.out"; then
        echo "FAIL profile: engine/$phase missing from the section table"
        fail=1
    fi
done
if [ ! -s "$TMP/prof.json" ]; then
    echo "FAIL profile: --json wrote nothing"
    fail=1
fi

# --- sweep metrics export (smallest possible grid via bench is too
#     slow here; the sweep CLI path is covered by --quick in CI and by
#     the library tests; validate the simulate-side document instead
#     with a JSON-well-formedness probe when python3 is present) ------
if command -v python3 > /dev/null 2>&1; then
    if ! python3 -c "import json,sys; json.load(open(sys.argv[1]))" \
            "$TMP/run.json"; then
        echo "FAIL metrics: run.json is not valid JSON"
        fail=1
    fi
    if ! python3 -c "import json,sys; json.load(open(sys.argv[1]))" \
            "$TMP/prof.json"; then
        echo "FAIL profile: prof.json is not valid JSON"
        fail=1
    fi
fi

if [ "$fail" -ne 0 ]; then
    echo "obs-smoke: FAILED"
    exit 1
fi
echo "obs-smoke: clean"
