#!/bin/sh
# No-sink throughput guard (`make obs-guard`): the observability layer
# must cost nothing when no sink is attached. Re-measures the full
# bench grid with the current binary and compares host MIPS against
# the committed BENCH_engine.json anchors.
#
# Individual grid points swing several percent with host load (the
# anchors were measured best-of-9 on one machine state), so the guard
# gates on the geometric mean of the new/anchor ratios across the
# whole grid: an aggregate regression beyond the tolerance (default
# 2%) fails; single-point noise does not. Per-point deltas are printed
# so a genuine hot-path regression is still visible even when the
# aggregate passes. Costs a full bench run (~minutes); run it when
# touching engine hot paths, not on every check.
set -eu

ROOT=$(cd "$(dirname "$0")/.." && pwd)
CLI="$ROOT/_build/default/bin/resim_cli.exe"
ANCHORS="$ROOT/BENCH_engine.json"
TOLERANCE="${OBS_GUARD_TOLERANCE:-0.02}"
TMP=$(mktemp -d)
trap 'rm -rf "$TMP"' EXIT

if ! command -v python3 > /dev/null 2>&1; then
    echo "obs-guard: skipped (python3 not available)"
    exit 0
fi
if [ ! -f "$ANCHORS" ]; then
    echo "obs-guard: skipped (no $ANCHORS anchors committed)"
    exit 0
fi
if [ ! -x "$CLI" ]; then
    (cd "$ROOT" && dune build bin/resim_cli.exe)
fi

timeout 1800 "$CLI" bench --json "$TMP/bench.json" > /dev/null

python3 - "$ANCHORS" "$TMP/bench.json" "$TOLERANCE" <<'EOF'
import json, math, sys

anchors_path, fresh_path, tolerance = sys.argv[1], sys.argv[2], float(sys.argv[3])
anchors = {(m["kernel"], m["config"], m["scheduler"]): m["host_mips"]
           for m in json.load(open(anchors_path))["measurements"]}
fresh = json.load(open(fresh_path))["measurements"]

ratios = []
for m in fresh:
    key = (m["kernel"], m["config"], m["scheduler"])
    anchor = anchors.get(key)
    if anchor is None or anchor <= 0.0:
        continue
    ratio = m["host_mips"] / anchor
    ratios.append(ratio)
    print(f"{key[0]:8s} {key[1]:16s} {key[2]:6s} "
          f"anchor {anchor:7.4f}  now {m['host_mips']:7.4f}  "
          f"{(ratio - 1.0) * 100.0:+6.1f}%")

if not ratios:
    print("obs-guard: skipped (no comparable grid points)")
    sys.exit(0)

geomean = math.exp(sum(math.log(r) for r in ratios) / len(ratios))
print(f"geometric mean over {len(ratios)} point(s): "
      f"{(geomean - 1.0) * 100.0:+.2f}% (tolerance -{tolerance * 100.0:.0f}%)")
if geomean < 1.0 - tolerance:
    print("obs-guard: FAILED — aggregate no-sink throughput regressed")
    sys.exit(1)
print("obs-guard: clean")
EOF

# --- sampled configuration gate --------------------------------------
# The bench document also carries the sampled-simulation section (one
# sampled run per kernel at the reference configuration, DESIGN.md
# §13): every point's 95% CI must cover its own full-run IPC, and the
# engine-level speedup must stay real (> 1x). A statistics or warm-up
# regression shows up here before it shows up in anyone's results.
python3 - "$TMP/bench.json" <<'EOF'
import json, sys

sampled = json.load(open(sys.argv[1])).get("sampled")
if not sampled:
    print("obs-guard: skipped sampled gate (no sampled section)")
    sys.exit(0)

failed = False
for point in sampled:
    flag = "ok" if point["covered"] else "CI MISS"
    print(f"sampled {point['kernel']:8s} {point['spec']:14s} "
          f"IPC {point['mean_ipc']:6.4f} vs full {point['full_ipc']:6.4f}  "
          f"speedup {point['speedup']:5.2f}x  {flag}")
    if not point["covered"]:
        failed = True
    if point["speedup"] <= 1.0:
        print(f"obs-guard: sampled {point['kernel']} is not faster "
              f"than the full run")
        failed = True

if failed:
    print("obs-guard: FAILED — sampled configuration gate")
    sys.exit(1)
print("obs-guard: sampled gate clean")
EOF

# --- specialized-engine gate -----------------------------------------
# The bench document's specialized section (DESIGN.md §14) times the
# staged variants against the generic engine on the same traces. The
# gate is on the geometric mean of the event-scheduler speedups: the
# per-kernel ratios swing with host load, but the aggregate must stay
# comfortably above 1x (default floor 1.2x, SPEC_GUARD_FLOOR
# overrides) — a staged variant that stops paying for itself is a
# regression in the whole subsystem's reason to exist.
SPEC_FLOOR="${SPEC_GUARD_FLOOR:-1.2}"
python3 - "$TMP/bench.json" "$SPEC_FLOOR" <<'EOF'
import json, math, sys

specialized = json.load(open(sys.argv[1])).get("specialized")
floor = float(sys.argv[2])
if not specialized:
    print("obs-guard: skipped specialized gate (no specialized section)")
    sys.exit(0)

ratios = []
for point in specialized.get("points", []):
    ratio = point.get("speedup_vs_generic")
    flag = ""
    if ratio is not None and point["scheduler"] == "event":
        ratios.append(ratio)
        if ratio <= 1.0:
            flag = "  [SLOWER THAN GENERIC]"
    print(f"specialized {point['kernel']:8s} {point['scheduler']:6s} "
          f"{point['variant']:36s} {point['host_mips']:7.4f} MIPS  "
          f"{'-' if ratio is None else f'{ratio:5.2f}x'}{flag}")

if not ratios:
    print("obs-guard: skipped specialized gate (no event-scheduler points)")
    sys.exit(0)

geomean = math.exp(sum(math.log(r) for r in ratios) / len(ratios))
print(f"specialized geomean over {len(ratios)} event point(s): "
      f"{geomean:.2f}x (floor {floor:.2f}x)")
if geomean < floor:
    print("obs-guard: FAILED — specialized engine speedup below floor")
    sys.exit(1)
print("obs-guard: specialized gate clean")
EOF
