#!/bin/sh
# Negative self-test of the resim-dsafe gate, wired into `make check`
# (and available as `make dsafe-smoke`): the analyzer must FAIL (exit 1)
# on a deliberately racy scratch module, reporting each expected RSM-D
# code, and must PASS (exit 0) on a clean Atomic-based module. A gate
# that silently stops finding races is worse than no gate.
set -eu

ROOT=$(cd "$(dirname "$0")/.." && pwd)
DSAFE="$ROOT/_build/default/bin/resim_dsafe.exe"
TMP=$(mktemp -d)
trap 'rm -rf "$TMP"' EXIT

if [ ! -x "$DSAFE" ]; then
    (cd "$ROOT" && dune build bin/resim_dsafe.exe)
fi

fail=0

# --- racy module: one trigger per diagnostic class --------------------
cat > "$TMP/racy_scratch.ml" <<'EOF'
let counter = ref 0
let table : (string, int) Hashtbl.t = Hashtbl.create 7
let m = Mutex.create ()

(* resim-dsafe: totally-fine *)
let bogus = ref 1

let bump () =
  incr counter;
  Hashtbl.replace table "hits" !counter

let run () =
  let d = Array.init 4 (fun _ -> Domain.spawn bump) in
  Array.iter Domain.join d

let leaky () =
  Mutex.lock m;
  if !counter > 10 then failwith "oops";
  Mutex.unlock m

let double () =
  Mutex.lock m;
  Mutex.lock m;
  Mutex.unlock m;
  Mutex.unlock m

let join_locked d =
  Mutex.lock m;
  Domain.join d;
  Mutex.unlock m

let _ = (bogus, bump, run, leaky, double, join_locked)
EOF

status=0
timeout 60 "$DSAFE" "$TMP/racy_scratch.ml" > "$TMP/racy.out" 2>&1 || status=$?
if [ "$status" -ne 1 ]; then
    echo "FAIL racy: exit $status, want 1"
    cat "$TMP/racy.out"
    fail=1
fi
for code in RSM-D001 RSM-D002 RSM-D004 RSM-D005 RSM-D006 RSM-D007 RSM-D008; do
    if ! grep -q "error\[$code\]" "$TMP/racy.out"; then
        echo "FAIL racy: missing expected $code"
        fail=1
    fi
done
echo "ok racy module rejected (exit 1, D001/D002/D004..D008 reported)"

# --- clean module: Atomic state, no manual brackets -------------------
cat > "$TMP/clean_scratch.ml" <<'EOF'
let hits = Atomic.make 0
let bump () = Atomic.incr hits

let run () =
  let d = Array.init 2 (fun _ -> Domain.spawn bump) in
  Array.iter Domain.join d;
  Atomic.get hits
EOF

status=0
timeout 60 "$DSAFE" "$TMP/clean_scratch.ml" > "$TMP/clean.out" 2>&1 || status=$?
if [ "$status" -ne 0 ]; then
    echo "FAIL clean: exit $status, want 0"
    cat "$TMP/clean.out"
    fail=1
fi
if ! grep -q "resim-dsafe: clean" "$TMP/clean.out"; then
    echo "FAIL clean: missing clean summary line"
    fail=1
fi
echo "ok clean module accepted (exit 0)"

# --- annotation budget is enforced ------------------------------------
status=0
timeout 60 "$DSAFE" --max-annotations 0 "$TMP/clean_scratch.ml" \
    > /dev/null 2>&1 || status=$?
if [ "$status" -ne 0 ]; then
    echo "FAIL budget: clean module with 0 annotations should fit budget 0"
    fail=1
fi
cat > "$TMP/annotated_scratch.ml" <<'EOF'
(* resim-dsafe: domain-local *)
let scratch = ref 0
let touch () = incr scratch
let _ = touch
EOF
status=0
timeout 60 "$DSAFE" --max-annotations 0 "$TMP/annotated_scratch.ml" \
    > "$TMP/budget.out" 2>&1 || status=$?
if [ "$status" -ne 1 ]; then
    echo "FAIL budget: over-budget annotation should exit 1, got $status"
    cat "$TMP/budget.out"
    fail=1
fi
echo "ok annotation budget enforced"

if [ "$fail" -ne 0 ]; then
    echo "dsafe-smoke: FAILED"
    exit 1
fi
echo "dsafe-smoke: clean"
