# Convenience targets; the source of truth is dune.

.PHONY: all build test check bench

all: build

build:
	dune build

test:
	dune runtest

# The PR gate: formatting, full build, test suite, and a bench smoke
# that exercises the --json path end to end.
check:
	dune build @fmt
	dune build
	dune runtest
	dune exec bench/main.exe -- --quick --json /dev/null

# Refresh the committed perf trajectory (full engine grid, no paper
# tables; takes a few minutes).
bench:
	dune exec bin/resim_cli.exe -- bench --json BENCH_engine.json
