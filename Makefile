# Convenience targets; the source of truth is dune.

.PHONY: all build test check lint bench faultsmoke

# Wall-clock guard on the PR gate: a hang in any step (the very class
# of bug the robustness layer exists to prevent) fails the gate after
# the ceiling instead of wedging it. Ceilings are generous multiples
# of normal wall time, so only a genuine hang trips them.
TIMEOUT := timeout

all: build

build:
	dune build

test:
	dune runtest

# resim-check layer 3: the hot-path source lint over lib/core
# (bin/resim_lint.ml; rules RSM-L001..L004, catalog in DESIGN.md §9).
lint:
	dune build @lint

# The PR gate: formatting, full build, source lint, test suite, a
# bench smoke that exercises the --json path end to end, and the
# fault-injection smoke (every corruption class through the CLI).
check:
	$(TIMEOUT) 300 dune build @fmt
	$(TIMEOUT) 900 dune build
	$(TIMEOUT) 300 dune build @lint
	$(TIMEOUT) 1800 dune runtest
	$(TIMEOUT) 600 dune exec bench/main.exe -- --quick --json /dev/null
	$(MAKE) faultsmoke

# Every Fault_inject corruption class end to end through resim
# faultgen / lint / simulate --degraded, each step under timeout.
faultsmoke: build
	$(TIMEOUT) 600 sh scripts/faultsmoke.sh

# Refresh the committed perf trajectory (full engine grid, no paper
# tables; takes a few minutes).
bench:
	dune exec bin/resim_cli.exe -- bench --json BENCH_engine.json
