# Convenience targets; the source of truth is dune.

.PHONY: all build test check lint bench

all: build

build:
	dune build

test:
	dune runtest

# resim-check layer 3: the hot-path source lint over lib/core
# (bin/resim_lint.ml; rules RSM-L001..L004, catalog in DESIGN.md §9).
lint:
	dune build @lint

# The PR gate: formatting, full build, source lint, test suite, and a
# bench smoke that exercises the --json path end to end.
check:
	dune build @fmt
	dune build
	dune build @lint
	dune runtest
	dune exec bench/main.exe -- --quick --json /dev/null

# Refresh the committed perf trajectory (full engine grid, no paper
# tables; takes a few minutes).
bench:
	dune exec bin/resim_cli.exe -- bench --json BENCH_engine.json
