# Convenience targets; the source of truth is dune.

.PHONY: all build test check lint dsafe dsafe-smoke bench faultsmoke obs-smoke obs-guard sample-smoke spec-smoke serve-smoke trace-smoke bench-service

# Wall-clock guard on the PR gate: a hang in any step (the very class
# of bug the robustness layer exists to prevent) fails the gate after
# the ceiling instead of wedging it. Ceilings are generous multiples
# of normal wall time, so only a genuine hang trips them.
TIMEOUT := timeout

all: build

build:
	dune build

test:
	dune runtest

# resim-check layer 3: the hot-path source lint over lib/core
# (bin/resim_lint.ml; rules RSM-L001..L004, catalog in DESIGN.md §9).
lint:
	dune build @lint

# resim-check layer 4: the resim-dsafe domain-safety analyzer over all
# of lib/ (bin/resim_dsafe.ml; codes RSM-D001..D008, catalog in
# DESIGN.md §15). Gates the concurrency layer: every shared mutable
# object must be Atomic, lock-bracketed via Sync.with_lock, or carry a
# justified `resim-dsafe:` annotation, within the checked-in budget.
dsafe:
	dune build @dsafe

# Negative self-test of the gate: the analyzer must *fail* on a
# deliberately racy scratch module with the expected RSM-D codes and
# pass a clean one (scripts/dsafe_smoke.sh).
dsafe-smoke: build
	$(TIMEOUT) 300 sh scripts/dsafe_smoke.sh

# The PR gate: formatting, full build, source lint, domain-safety
# analysis (dsafe) plus its negative smoke, test suite, a
# bench smoke that exercises the --json path end to end, the
# fault-injection smoke (every corruption class through the CLI), the
# observability smoke (pipetrace + metrics + schema + profile), the
# sampled-simulation smoke (--sample end to end, determinism, spec
# grammar, sampled sweep), and the specialization smoke
# (--no-specialize bit-identity across every CLI surface).
check:
	$(TIMEOUT) 300 dune build @fmt
	$(TIMEOUT) 900 dune build
	$(TIMEOUT) 300 dune build @lint
	$(TIMEOUT) 300 dune build @dsafe
	$(TIMEOUT) 1800 dune runtest
	$(TIMEOUT) 600 dune exec bench/main.exe -- --quick --json /dev/null
	$(MAKE) dsafe-smoke
	$(MAKE) faultsmoke
	$(MAKE) obs-smoke
	$(MAKE) sample-smoke
	$(MAKE) spec-smoke
	$(MAKE) serve-smoke
	$(MAKE) trace-smoke

# Every Fault_inject corruption class end to end through resim
# faultgen / lint / simulate --degraded, each step under timeout.
faultsmoke: build
	$(TIMEOUT) 600 sh scripts/faultsmoke.sh

# Observability end to end: simulate --pipetrace/--metrics/--waterfall,
# RSM-P schema validation (clean + corrupted), resim profile.
obs-smoke: build
	$(TIMEOUT) 600 sh scripts/obs_smoke.sh

# Sampled simulation end to end: simulate --sample (metrics splice,
# determinism, spec grammar) and one sampled sweep (DESIGN.md §13).
sample-smoke: build
	$(TIMEOUT) 900 sh scripts/sample_smoke.sh

# Engine specialization end to end (DESIGN.md §14): default runs pick
# a staged variant, --no-specialize forces the generic engine, and
# statistics/pipetrace/metrics are bit-identical either way.
spec-smoke: build
	$(TIMEOUT) 900 sh scripts/spec_smoke.sh

# resimd end to end (DESIGN.md §16): daemon up, simulate/sweep/lint
# jobs over the wire with the documented exit codes, cache hit on
# resubmission, crashed-worker supervision, garbage-frame handling,
# loadgen --quick, SIGTERM drain with no stale socket.
serve-smoke: build
	$(TIMEOUT) 900 sh scripts/serve_smoke.sh

# The trace frontier end to end (DESIGN.md §17): foreign-format
# adapters (text + riscv) through lint/simulate with synthesized
# wrong-path blocks, streamed-vs-in-memory metrics identity (file,
# streamed header, pipe), per-shard lint + sharded-vs-unsharded
# identity, and a peak-RSS guard proving the streamed path stays
# O(chunk) on a 2M-record trace.
trace-smoke: build
	$(TIMEOUT) 900 sh scripts/trace_smoke.sh

# Refresh the committed service benchmark (BENCH_service.json):
# jobs/sec and p50/p99 latency at 1/4/16 clients against a local
# daemon.
bench-service: build
	$(TIMEOUT) 900 sh scripts/bench_service.sh

# No-sink throughput guard: full bench grid vs the committed
# BENCH_engine.json anchors, gated on the geometric mean (default 2%
# tolerance; OBS_GUARD_TOLERANCE overrides). Costs a full bench run —
# use when touching engine hot paths.
obs-guard: build
	$(TIMEOUT) 2400 sh scripts/obs_bench_guard.sh

# Refresh the committed perf trajectory (full engine grid, no paper
# tables; takes a few minutes).
bench:
	dune exec bin/resim_cli.exe -- bench --json BENCH_engine.json
