(* Cross-cutting consistency tests: the three simulation pipelines
   (offline trace-driven, fused execution-driven, on-the-fly
   co-simulation) must agree on every kernel, and the engine's counters
   must satisfy their accounting identities on every input. *)

module Stats = Resim_core.Stats

let check = Alcotest.check
let bool = Alcotest.bool
let i64 = Alcotest.int64

let small_scale name = match name with "vpr" -> 1 | _ -> 768

let three_way_agreement () =
  List.iter
    (fun workload ->
      let name = Resim_workloads.Workload.name_of workload in
      let program =
        Resim_workloads.Workload.program_of workload
          ~scale:(small_scale name) ()
      in
      let offline = (Resim_core.Resim.simulate_program program).stats in
      let fused =
        (Resim_baseline.Sim_outorder.run program).outcome.stats
      in
      let cosim = (Resim_core.Cosim.run program).stats in
      (* Compare the complete counter state, not just headline numbers. *)
      let offline_counters = Stats.to_assoc offline in
      check bool (name ^ ": fused = offline") true
        (Stats.to_assoc fused = offline_counters);
      check bool (name ^ ": cosim = offline") true
        (Stats.to_assoc cosim = offline_counters))
    Resim_workloads.Workload.all

let accounting_identities stats =
  let get field = Stats.get field stats in
  let committed = get Stats.committed in
  let categorised =
    List.fold_left Int64.add 0L
      [ get Stats.committed_branches; get Stats.committed_loads;
        get Stats.committed_stores; get Stats.committed_mult_div ]
  in
  check bool "committed covers categories" true
    (Int64.compare categorised committed <= 0);
  check bool "pipeline funnel fetched >= dispatched" true
    (Int64.compare (get Stats.fetched) (get Stats.dispatched) >= 0);
  check bool "funnel dispatched >= issued" true
    (Int64.compare (get Stats.dispatched) (get Stats.issued) >= 0);
  check bool "funnel issued >= committed" true
    (Int64.compare (get Stats.issued) committed >= 0);
  check bool "conditional <= branches" true
    (Int64.compare
       (get Stats.committed_cond_branches)
       (get Stats.committed_branches)
    <= 0);
  check bool "forwarded <= loads" true
    (Int64.compare (get Stats.forwarded_loads) (get Stats.committed_loads)
    <= 0);
  check bool "squashes <= conditional branches" true
    (Int64.compare (get Stats.mispredictions)
       (get Stats.committed_cond_branches)
    <= 0)

let test_accounting_on_kernels () =
  List.iter
    (fun workload ->
      let name = Resim_workloads.Workload.name_of workload in
      let program =
        Resim_workloads.Workload.program_of workload
          ~scale:(small_scale name) ()
      in
      accounting_identities (Resim_core.Resim.simulate_program program).stats)
    Resim_workloads.Workload.all

let accounting_on_synthetic =
  QCheck.Test.make
    ~name:"counter identities hold on random synthetic traces" ~count:25
    QCheck.(int_bound 100_000)
    (fun seed ->
      let profile =
        { (Resim_tracegen.Synthetic.balanced ~name:"acct"
             ~instructions:1500)
          with mispredict_rate = 0.06 }
      in
      let records = Resim_tracegen.Synthetic.generate ~seed profile in
      let stats = Resim_core.Engine.simulate records in
      let get field = Stats.get field stats in
      Int64.compare (get Stats.fetched) (get Stats.dispatched) >= 0
      && Int64.compare (get Stats.dispatched) (get Stats.issued) >= 0
      && Int64.compare (get Stats.issued) (get Stats.committed) >= 0
      && Int64.compare (get Stats.forwarded_loads)
           (get Stats.committed_loads)
         <= 0)

let test_wrong_path_conservation () =
  (* Every tagged record is either fetched or discarded; nothing is
     lost or double-counted. *)
  let gzip = Resim_workloads.Workload.find "gzip" in
  let program = Resim_workloads.Workload.program_of gzip ~scale:4096 () in
  let generated = Resim_tracegen.Generator.run program in
  let stats = Resim_core.Engine.simulate generated.records in
  check i64 "wrong path conserved"
    (Int64.of_int generated.wrong_path)
    (Int64.add
       (Stats.get Stats.fetched_wrong_path stats)
       (Stats.get Stats.discarded_wrong_path stats));
  check i64 "correct path all committed"
    (Int64.of_int generated.correct_path)
    (Stats.get Stats.committed stats)

let test_dcache_access_accounting () =
  (* With real caches, D-cache accesses = issued load accesses (correct
     and wrong path) + committed store writes. *)
  let config =
    { Resim_core.Config.reference with
      dcache = Resim_cache.Cache.l1_32k_8way_64b }
  in
  let gzip = Resim_workloads.Workload.find "gzip" in
  let program = Resim_workloads.Workload.program_of gzip ~scale:2048 () in
  let records = Resim_tracegen.Generator.records program in
  let engine = Resim_core.Engine.create ~config records in
  ignore (Resim_core.Engine.run engine);
  let stats = Resim_core.Engine.stats engine in
  let dcache = Resim_cache.Cache.stats (Resim_core.Engine.dcache engine) in
  let stores = Stats.get Stats.committed_stores stats in
  check bool "dcache accesses >= loads + stores" true
    (Int64.compare dcache.accesses
       (Int64.add
          (Int64.sub
             (Stats.get Stats.committed_loads stats)
             (Stats.get Stats.forwarded_loads stats))
          stores)
    >= 0)

let test_to_assoc_complete () =
  let stats = Stats.create () in
  let assoc = Stats.to_assoc stats in
  check bool "26 counters exported" true (List.length assoc = 26);
  check bool "all zero initially" true
    (List.for_all (fun (_, v) -> Int64.equal v 0L) assoc);
  let names = List.map fst assoc in
  check bool "names unique" true
    (List.length (List.sort_uniq String.compare names) = List.length names)

let suite =
  [ ("consistency",
     [ Alcotest.test_case "three pipelines agree on all kernels" `Slow
         three_way_agreement;
       Alcotest.test_case "accounting identities (kernels)" `Slow
         test_accounting_on_kernels;
       QCheck_alcotest.to_alcotest accounting_on_synthetic;
       Alcotest.test_case "wrong-path conservation" `Quick
         test_wrong_path_conservation;
       Alcotest.test_case "dcache accounting" `Quick
         test_dcache_access_accounting;
       Alcotest.test_case "stats export" `Quick test_to_assoc_complete ]) ]
