(* Fixture: RSM-D005 — re-entrant acquisition of the same mutex;
   OCaml's Mutex is not recursive, so this self-deadlocks at runtime. *)

module Sync = Resim_core.Sync

let guard = Mutex.create ()

let twice () =
  Sync.with_lock guard (fun () -> Sync.with_lock guard (fun () -> ()))
