(* Fixture (cross-module pair, 1/2): this module owns a top-level
   mutable registry with no guard story. The domain spawn that captures
   it lives in racy_xmod_spawn.ml — the D001 must be attributed HERE,
   to the owner's binding, not to the spawn site. *)

let registry : (string, int) Hashtbl.t = Hashtbl.create 7
let size () = Hashtbl.length registry
