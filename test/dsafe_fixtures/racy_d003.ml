(* Fixture: RSM-D003 — the module's own locking discipline says `hits`
   is guarded (every other access takes the lock), but `peek` reads it
   outside any lock region. No domains involved at all. *)

module Sync = Resim_core.Sync

let hits = ref 0
let guard = Mutex.create ()
let record () = Sync.with_lock guard (fun () -> incr hits)
let peek () = !hits
