(* Fixture: RSM-D006 — blocking on Domain.join while holding a lock;
   if the joined domain ever needs the same lock this deadlocks, and
   either way it serializes every contender behind the join. *)

module Sync = Resim_core.Sync

let guard = Mutex.create ()
let stall d = Sync.with_lock guard (fun () -> Domain.join d)
