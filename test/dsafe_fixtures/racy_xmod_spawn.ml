(* Fixture (cross-module pair, 2/2): spawns a closure that reaches the
   unguarded mutable registry owned by racy_xmod_state.ml. *)

let probe () = ignore (Hashtbl.find_opt Racy_xmod_state.registry "x")
let run () = Domain.join (Domain.spawn probe)
