(* Fixture: RSM-D004 — the raise path escapes the function with the
   mutex still held and no Fun.protect/with_lock bracket to release it.
   The manual brackets carry lock-impl annotations so D008 stays quiet
   and the fixture isolates D004. *)

let guard = Mutex.create ()

let broken x =
  Mutex.lock guard (* resim-dsafe: lock-impl *);
  if x > 3 then failwith "boom";
  Mutex.unlock guard (* resim-dsafe: lock-impl *)
