(* Fixture: RSM-D001 — a top-level mutable table is captured by a
   domain-crossing closure and has no guard story anywhere in the
   module (never locked, never Atomic, never annotated). The capture
   is read-only so only the inventory-level D001 fires, not D002. *)

let table : (string, int) Hashtbl.t = Hashtbl.create 7
let lookup () = Hashtbl.find_opt table "key"
let run () = Domain.join (Domain.spawn lookup)
