(* Fixture: a module that uses every sanctioned guard story at once —
   Sync.with_lock bracketing, Atomic state crossing domains, and an
   annotated domain-local scratch table — and must analyze clean. *)

module Sync = Resim_core.Sync

let guard = Mutex.create ()
let hits = ref 0
let record () = Sync.with_lock guard (fun () -> incr hits)
let total = Atomic.make 0
let bump () = Atomic.incr total

(* resim-dsafe: domain-local *)
let scratch : (string, unit) Hashtbl.t = Hashtbl.create 7
let note k = Hashtbl.replace scratch k ()

let run () =
  let d = Array.init 2 (fun _ -> Domain.spawn bump) in
  Array.iter Domain.join d;
  record ();
  note "done";
  Atomic.get total
