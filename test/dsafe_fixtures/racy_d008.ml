(* Fixture: RSM-D008 — manual Mutex.lock/unlock bracketing. The pair
   is balanced and exception-free, so no D004/D005 fires; the finding
   is purely about bypassing Sync.with_lock. *)

let guard = Mutex.create ()
let bumps = ref 0

let tally () =
  Mutex.lock guard;
  incr bumps;
  Mutex.unlock guard
