(* Fixture: RSM-D002 — an unguarded write of a ref inside a spawned
   closure. The ref is lock-guarded elsewhere, so the object itself has
   a guard story (no D001); this one access bypasses it. *)

module Sync = Resim_core.Sync

let counter = ref 0
let guard = Mutex.create ()
let bump () = incr counter
let audited () = Sync.with_lock guard (fun () -> !counter)
let run () = Domain.join (Domain.spawn bump)
