(* resim-dsafe: shared-by-magic *)
let scratch = ref 0

(* Fixture: RSM-D007 — the annotation above is not in the grammar
   (domain-local | guarded-by <mutex> | lock-impl), so the analyzer
   rejects it instead of silently treating it as an allow. *)
let touch () = incr scratch
