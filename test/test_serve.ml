(* resimd: wire protocol, admission, supervision, cache, exit codes
   (DESIGN.md §16).

   The protocol properties are pure qcheck round-trips. The server
   tests run a real daemon — in-process (a domain running
   [Server.run], drained by signalling ourselves) for the typed
   client paths, and as a subprocess of the installed CLI for the
   table-driven exit-code rows. *)

open Alcotest

module Protocol = Resim_serve.Protocol
module Client = Resim_serve.Client
module Server = Resim_serve.Server
module Load = Resim_serve.Load
module Pool = Resim_sweep.Pool
module Checkpoint = Resim_core.Checkpoint
module Resim = Resim_core.Resim
module Config = Resim_core.Config
module Json = Resim_core.Json

(* --- generators ----------------------------------------------------- *)

let gen_name =
  QCheck.Gen.(
    map (String.concat "")
      (list_size (int_range 1 12)
         (map (String.make 1)
            (oneof [ char_range 'a' 'z'; char_range '0' '9'; return '-' ]))))

let gen_text =
  QCheck.Gen.(string_size ~gen:printable (int_range 0 40))

(* %.6f-encoded floats: pick milli-precision values so the wire
   round-trip is exact. *)
let gen_timeout = QCheck.Gen.(map (fun n -> float_of_int n /. 1000.) (int_range 1 100_000))

let gen_opt g = QCheck.Gen.(oneof [ return None; map Option.some g ])

let gen_config_spec =
  QCheck.Gen.(
    map
      (fun (base, width, rob, lsq, organization, scheduler) ->
        { Protocol.base; width; rob; lsq; organization; scheduler })
      (tup6
         (oneofl [ "reference"; "fast"; "weird" ])
         (gen_opt (int_range 1 8))
         (gen_opt (int_range 1 512))
         (gen_opt (int_range 1 128))
         (gen_opt (oneofl [ "simple"; "improved"; "optimized" ]))
         (gen_opt (oneofl [ "scan"; "event" ]))))

let gen_sim_spec =
  QCheck.Gen.(
    map
      (fun (kernel, scale, trace, config, max_cycles, timeout, sample) ->
        { Protocol.kernel; scale; trace; config; max_cycles; timeout; sample })
      (tup7 gen_name
         (gen_opt (int_range 1 100_000))
         (gen_opt gen_text) gen_config_spec
         (gen_opt (map Int64.of_int (int_range 1 1_000_000)))
         (gen_opt gen_timeout) (gen_opt gen_text)))

let gen_body =
  QCheck.Gen.(
    oneof
      [ map (fun spec -> Protocol.Simulate spec) gen_sim_spec;
        map
          (fun (kernels, widths, config, max_cycles, timeout, sample) ->
            Protocol.Sweep_grid
              { kernels; widths; config; max_cycles; timeout; sample })
          (tup6
             (list_size (int_range 1 4) gen_name)
             (list_size (int_range 1 4) (int_range 1 8))
             gen_config_spec
             (gen_opt (map Int64.of_int (int_range 1 1_000_000)))
             (gen_opt gen_timeout) (gen_opt gen_text));
        map
          (fun (path, max_run) -> Protocol.Lint { path; max_run })
          (tup2 gen_text (gen_opt (int_range 1 10_000)));
        return Protocol.Status;
        return Protocol.Crash_worker ])

let gen_request =
  QCheck.Gen.(
    map (fun (client, body) -> { Protocol.client; body })
      (tup2 gen_name gen_body))

let gen_rejection =
  QCheck.Gen.(
    oneof
      [ return Protocol.Over_quota;
        return Protocol.Queue_full;
        return Protocol.Shed_lint;
        return Protocol.Shed_sweep;
        return Protocol.Draining;
        map (fun detail -> Protocol.Bad_request detail) gen_text ])

let gen_done_payload =
  QCheck.Gen.(
    map
      (fun (outcome, exit_code, cached, attempts, detail, metrics, checkpoint) ->
        { Protocol.outcome; exit_code; cached; attempts; detail; metrics;
          checkpoint })
      (tup7
         (oneofl
            [ "ok"; "truncated"; "fault"; "deadlock"; "invalid-config";
              "crash"; "timed-out"; "lint-clean"; "lint-errors" ])
         (int_range 0 5) bool (int_range 1 9) (gen_opt gen_text)
         (gen_opt gen_text) (gen_opt gen_text)))

let gen_event =
  QCheck.Gen.(
    oneof
      [ map (fun job_id -> Protocol.Accepted { job_id }) (int_range 1 10_000);
        map (fun r -> Protocol.Rejected r) gen_rejection;
        map
          (fun (completed, total, label) ->
            Protocol.Progress { completed; total; label })
          (tup3 (int_range 0 100) (int_range 1 100) gen_text);
        map (fun p -> Protocol.Done p) gen_done_payload;
        map
          (fun (counters, queue, running, workers, draining) ->
            Protocol.Status_report { counters; queue; running; workers; draining })
          (tup5
             (list_size (int_range 0 5) (tup2 gen_name (int_range 0 1000)))
             (int_range 0 100) (int_range 0 16) (int_range 1 16) bool);
        map
          (fun (code, detail) -> Protocol.Protocol_error { code; detail })
          (tup2 gen_name gen_text) ])

(* --- protocol properties -------------------------------------------- *)

let property_request_round_trip =
  QCheck.Test.make ~count:500 ~name:"wire requests round-trip"
    (QCheck.make gen_request) (fun request ->
      Protocol.decode_request (Protocol.encode_request request) = Ok request)

let property_event_round_trip =
  QCheck.Test.make ~count:500 ~name:"wire events round-trip"
    (QCheck.make gen_event) (fun event ->
      Protocol.decode_event (Protocol.encode_event event) = Ok event)

let property_frame_round_trip =
  QCheck.Test.make ~count:200 ~name:"frame streams reassemble"
    QCheck.(list_of_size (QCheck.Gen.int_range 0 8) (QCheck.make gen_text))
    (fun payloads ->
      let stream = String.concat "" (List.map Protocol.frame payloads) in
      let rec collect offset acc =
        match Protocol.next_frame stream ~offset with
        | Ok (Some (payload, next)) -> collect next (payload :: acc)
        | Ok None -> Protocol.finish stream ~offset = Ok () && List.rev acc = payloads
        | Error _ -> false
      in
      collect 0 [])

let test_frame_errors () =
  (* Truncated: a frame promising more bytes than the stream holds is
     incomplete (wait for more), and EOF there is RSM-S002. *)
  let framed = Protocol.frame "{\"v\":1}" in
  let truncated = String.sub framed 0 (String.length framed - 3) in
  (match Protocol.next_frame truncated ~offset:0 with
  | Ok None -> ()
  | _ -> fail "truncated frame should be incomplete, not an error");
  (match Protocol.finish truncated ~offset:0 with
  | Error { code = "RSM-S002"; _ } -> ()
  | _ -> fail "EOF mid-frame should be RSM-S002");
  (* Oversized: a length prefix beyond max_frame is RSM-S001. *)
  let oversized = "\xff\xff\xff\xff" ^ "junk" in
  (match Protocol.next_frame oversized ~offset:0 with
  | Error { code = "RSM-S001"; _ } -> ()
  | _ -> fail "oversized frame should be RSM-S001");
  (* Garbage: bytes that are not JSON are RSM-S003. *)
  (match Protocol.decode_request "not json at all" with
  | Error { code = "RSM-S003"; _ } -> ()
  | _ -> fail "non-JSON payload should be RSM-S003");
  (* Shape: valid JSON that is not a request is RSM-S004. *)
  (match Protocol.decode_request "{\"v\":1,\"kind\":\"nonsense\"}" with
  | Error { code = "RSM-S004"; _ } -> ()
  | _ -> fail "mis-shaped request should be RSM-S004");
  match Protocol.decode_event "[1,2,3]" with
  | Error { code = "RSM-S004"; _ } -> ()
  | _ -> fail "mis-shaped event should be RSM-S004"

let test_exit_code_mapping () =
  check int "done carries its own code" 2
    (Client.exit_code_of_terminal
       (Protocol.Done
          { Protocol.outcome = "invalid-config"; exit_code = 2; cached = false;
            attempts = 1; detail = None; metrics = None; checkpoint = None }));
  check int "admission rejection is 5" 5
    (Client.exit_code_of_terminal (Protocol.Rejected Protocol.Over_quota));
  check int "bad request is 2" 2
    (Client.exit_code_of_terminal
       (Protocol.Rejected (Protocol.Bad_request "no")));
  check int "protocol error is 3" 3
    (Client.exit_code_of_terminal
       (Protocol.Protocol_error { code = "RSM-S003"; detail = "" }));
  check int "unreachable server is 4"
    4
    (Client.exit_code_of_error (Client.Refused "ECONNREFUSED"))

(* --- in-process server ---------------------------------------------- *)

let fresh_socket () =
  let path = Filename.temp_file "resimd" ".sock" in
  Sys.remove path;
  path

let wait_ready socket =
  let rec go tries =
    if tries > 200 then fail "server did not come up"
    else
      match
        Client.converse ~socket { Protocol.client = "probe"; body = Protocol.Status }
      with
      | Ok _ -> ()
      | Error _ ->
          Unix.sleepf 0.05;
          go (tries + 1)
  in
  go 0

(* Run [f] against a live in-process server, then drain it with the
   same signal a real deployment would use. *)
let with_server config f =
  let handle = Domain.spawn (fun () -> Server.run config) in
  Fun.protect
    ~finally:(fun () ->
      Unix.kill (Unix.getpid ()) Sys.sigterm;
      match Domain.join handle with
      | Ok () -> ()
      | Error message -> fail ("server exited with: " ^ message))
    (fun () ->
      wait_ready config.Server.socket_path;
      f config.Server.socket_path)

let submit_ok socket request =
  match Client.converse ~socket request with
  | Ok event -> event
  | Error error -> fail (Client.error_to_string error)

let simulate_request ?(client = "test") ?(scale = 200) kernel =
  { Protocol.client;
    body =
      Protocol.Simulate
        { Protocol.kernel;
          scale = Some scale;
          trace = None;
          config = Protocol.reference_spec;
          max_cycles = None;
          timeout = None;
          sample = None } }

let test_crash_recovery () =
  let socket = fresh_socket () in
  let config =
    { (Server.default_config ~socket_path:socket) with
      Server.workers = 1;
      retries = 2;
      backoff = 0.01;
      test_hooks = true }
  in
  with_server config (fun socket ->
      (* Kill the only worker; the job must come back [crash] after
         the retry budget (1 first run + 2 retries), not hang. *)
      (match
         submit_ok socket
           { Protocol.client = "test"; body = Protocol.Crash_worker }
       with
      | Protocol.Done payload ->
          check string "crash outcome" "crash" payload.Protocol.outcome;
          check int "crash exit code" 3 payload.Protocol.exit_code;
          check int "attempts = 1 + retries" 3 payload.Protocol.attempts
      | _ -> fail "crash-worker should end in a done event");
      (* The supervisor must have respawned a worker: the queue still
         drains real work afterwards. *)
      (match submit_ok socket (simulate_request "gzip") with
      | Protocol.Done payload ->
          check string "post-crash simulate" "ok" payload.Protocol.outcome
      | _ -> fail "post-crash simulate should complete");
      match
        submit_ok socket { Protocol.client = "test"; body = Protocol.Status }
      with
      | Protocol.Status_report { counters; _ } ->
          let count name = List.assoc name counters in
          check bool "restarts recorded" true (count "worker_restarts" >= 3);
          check bool "retries recorded" true (count "retried" >= 2)
      | _ -> fail "status should report counters")

let test_quota_and_cache () =
  let socket = fresh_socket () in
  let cache_dir = Filename.temp_file "resimd" ".cache" in
  Sys.remove cache_dir;
  let config =
    { (Server.default_config ~socket_path:socket) with
      Server.workers = 1;
      cache_dir = Some cache_dir }
  in
  with_server config (fun socket ->
      (* Identical resubmission is a content-addressed cache hit. *)
      (match submit_ok socket (simulate_request "gzip") with
      | Protocol.Done payload ->
          check bool "first run not cached" false payload.Protocol.cached
      | _ -> fail "first simulate should complete");
      match submit_ok socket (simulate_request "gzip") with
      | Protocol.Done payload ->
          check bool "resubmission is a cache hit" true payload.Protocol.cached;
          check string "cached outcome" "ok" payload.Protocol.outcome;
          check bool "cached metrics preserved" true
            (payload.Protocol.metrics <> None)
      | _ -> fail "cached simulate should complete");
  let entries = Sys.readdir cache_dir in
  check bool "cache entry persisted" true (Array.length entries > 0);
  Array.iter (fun f -> Sys.remove (Filename.concat cache_dir f)) entries;
  Unix.rmdir cache_dir

let test_admission_rejections () =
  let socket = fresh_socket () in
  let config =
    { (Server.default_config ~socket_path:socket) with
      Server.workers = 1;
      max_per_client = 0 }
  in
  with_server config (fun socket ->
      match Client.converse ~socket (simulate_request "gzip") with
      | Ok (Protocol.Rejected Protocol.Over_quota as terminal) ->
          check int "quota rejection exit code" 5
            (Client.exit_code_of_terminal terminal)
      | Ok _ -> fail "zero quota should reject with over-quota"
      | Error error -> fail (Client.error_to_string error));
  (* And with the daemon gone, the same request is a typed refusal. *)
  match Client.converse ~socket (simulate_request "gzip") with
  | Error (Client.Refused _ as error) ->
      check int "refused exit code" 4 (Client.exit_code_of_error error)
  | Ok _ -> fail "drained server should refuse connections"
  | Error other -> fail (Client.error_to_string other)

(* --- pool shutdown (satellite 1) ------------------------------------ *)

let test_pool_shutdown_idempotent () =
  let pool = Pool.create ~jobs:2 () in
  let task = Pool.submit pool (fun () -> 21 * 2) in
  check int "task ran" 42 (Pool.await task);
  Pool.shutdown pool;
  (* Second shutdown: no-op, returns immediately, no exception. *)
  Pool.shutdown pool;
  (* Submit after shutdown: typed error, never a hang. *)
  match Pool.submit pool (fun () -> 0) with
  | exception Invalid_argument _ -> ()
  | _task -> fail "submit after shutdown should raise Invalid_argument"

let test_pool_shutdown_concurrent () =
  let pool = Pool.create ~jobs:2 () in
  let barrier = Atomic.make 0 in
  let racer () =
    Atomic.incr barrier;
    while Atomic.get barrier < 2 do Domain.cpu_relax () done;
    Pool.shutdown pool
  in
  let a = Domain.spawn racer and b = Domain.spawn racer in
  Domain.join a;
  Domain.join b;
  match Pool.submit pool (fun () -> 0) with
  | exception Invalid_argument _ -> ()
  | _task -> fail "pool should be down after concurrent shutdowns"

(* --- checkpoint identity (satellite 2) ------------------------------ *)

let test_engine_identity () =
  let reference = Resim.engine_identity Config.reference in
  check string "identity is deterministic" reference
    (Resim.engine_identity Config.reference);
  let narrow = { Config.reference with Config.width = 2 } in
  check bool "identity covers the configuration" true
    (reference <> Resim.engine_identity narrow);
  check bool "identity pins the build version" true
    (String.length reference > String.length Resim.version
    && String.sub reference 0 (String.length Resim.version) = Resim.version)

let test_checkpoint_identity_round_trip () =
  let stamped =
    Checkpoint.with_engine
      (Resim.engine_identity Config.reference)
      (Checkpoint.make ~cycle:64L ~cursor:7 ~counters:[ ("committed", 9L) ] ())
  in
  match Checkpoint.of_string (Checkpoint.to_string stamped) with
  | Error error -> fail (Checkpoint.error_to_string error)
  | Ok reread -> (
      check bool "engine line survives the round-trip" true
        (reread.Checkpoint.engine = stamped.Checkpoint.engine);
      (match Checkpoint.verify_engine
               ~expected:(Resim.engine_identity Config.reference) reread
       with
      | Ok () -> ()
      | Error _ -> fail "matching identity should verify");
      match
        Checkpoint.verify_engine
          ~expected:
            (Resim.engine_identity
               { Config.reference with Config.width = 2 })
          reread
      with
      | Error { Checkpoint.code = "RSM-K007"; _ } -> ()
      | Error _ -> fail "mismatch should be RSM-K007"
      | Ok () -> fail "foreign identity should not verify")

let test_checkpoint_legacy_unstamped () =
  (* Pre-identity handles carry no engine line and must keep loading:
     replay verification remains their guard. *)
  let legacy = Checkpoint.make ~cycle:1L ~cursor:0 ~counters:[] () in
  match
    Checkpoint.verify_engine
      ~expected:(Resim.engine_identity Config.reference) legacy
  with
  | Ok () -> ()
  | Error _ -> fail "unstamped checkpoints must stay loadable"

(* --- loadgen JSON ---------------------------------------------------- *)

let test_load_json_parses () =
  let tiers =
    [ { Load.clients = 1; jobs = 8; completed = 8; errors = 0;
        duration = 1.25; jobs_per_sec = 6.4; p50_ms = 150.; p99_ms = 310. } ]
  in
  check bool "BENCH_service.json parses" true
    (Json.validate (Load.to_json tiers) = Ok ())

(* --- table-driven CLI exit codes (satellite 6) ----------------------- *)

let cli =
  Filename.concat
    (Filename.concat
       (Filename.dirname (Filename.dirname Sys.executable_name))
       "bin")
    "resim_cli.exe"

let run_cli args =
  Sys.command
    (Printf.sprintf "%s %s > /dev/null 2> /dev/null" (Filename.quote cli) args)

let test_cli_exit_codes () =
  check bool ("CLI binary present at " ^ cli) true (Sys.file_exists cli);
  let socket = fresh_socket () in
  let quoted = Filename.quote socket in
  let daemon =
    Unix.create_process cli
      [| cli; "serve"; "--socket"; socket; "--workers"; "1"; "--retries";
         "0"; "--test-hooks" |]
      Unix.stdin Unix.stdout Unix.stderr
  in
  Fun.protect
    ~finally:(fun () ->
      Unix.kill daemon Sys.sigterm;
      ignore (Unix.waitpid [] daemon))
    (fun () ->
      wait_ready socket;
      let cases =
        [ ("status", Printf.sprintf "submit --socket %s --status" quoted, 0);
          ( "clean simulate over the wire",
            Printf.sprintf "submit --socket %s -k gzip -s 200 --quiet" quoted,
            0 );
          ( "invalid config over the wire",
            Printf.sprintf "submit --socket %s -k gzip --base nope" quoted,
            2 );
          ( "server-side fault (crashed worker, no retries)",
            Printf.sprintf "submit --socket %s --crash-worker" quoted,
            3 );
          ( "garbage frame gets a typed error",
            Printf.sprintf "submit --socket %s --send-garbage" quoted,
            3 );
          ( "connection refused",
            "submit --socket /nonexistent/resimd.sock --status",
            4 ) ]
      in
      List.iter
        (fun (label, args, expected) ->
          check int (Printf.sprintf "%s (`resim %s`)" label args) expected
            (run_cli args))
        cases)

let suite =
  [ ("serve:protocol",
     [ QCheck_alcotest.to_alcotest property_request_round_trip;
       QCheck_alcotest.to_alcotest property_event_round_trip;
       QCheck_alcotest.to_alcotest property_frame_round_trip;
       Alcotest.test_case "frame error taxonomy" `Quick test_frame_errors;
       Alcotest.test_case "exit-code mapping" `Quick test_exit_code_mapping ]);
    ("serve:server",
     [ Alcotest.test_case "crashed worker: retry budget then crash outcome"
         `Slow test_crash_recovery;
       Alcotest.test_case "result cache hits on resubmission" `Slow
         test_quota_and_cache;
       Alcotest.test_case "quota rejection and refused connection" `Slow
         test_admission_rejections ]);
    ("serve:pool",
     [ Alcotest.test_case "shutdown is idempotent; submit after is typed"
         `Quick test_pool_shutdown_idempotent;
       Alcotest.test_case "concurrent shutdowns race safely" `Quick
         test_pool_shutdown_concurrent ]);
    ("serve:checkpoint-identity",
     [ Alcotest.test_case "engine identity is config-sensitive" `Quick
         test_engine_identity;
       Alcotest.test_case "stamped handles round-trip and verify" `Quick
         test_checkpoint_identity_round_trip;
       Alcotest.test_case "legacy unstamped handles stay loadable" `Quick
         test_checkpoint_legacy_unstamped ]);
    ("serve:loadgen",
     [ Alcotest.test_case "tier JSON parses" `Quick test_load_json_parses ]);
    ("serve:cli",
     [ Alcotest.test_case "serve/submit exit-code table" `Slow
         test_cli_exit_codes ]) ]
