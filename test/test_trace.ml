(* Tests for the trace record model, bit-level I/O and the binary codec. *)

open Resim_trace

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool

(* --- bit I/O ----------------------------------------------------------- *)

let test_bitio_roundtrip_basic () =
  let w = Bitio.Writer.create () in
  Bitio.Writer.put w ~bits:3 5;
  Bitio.Writer.put_bool w true;
  Bitio.Writer.put w ~bits:16 0xbeef;
  Bitio.Writer.put w ~bits:32 0x12345678;
  check int "bit length" (3 + 1 + 16 + 32) (Bitio.Writer.bit_length w);
  let r = Bitio.Reader.create (Bitio.Writer.contents w) in
  check int "3 bits" 5 (Bitio.Reader.get r ~bits:3);
  check bool "bool" true (Bitio.Reader.get_bool r);
  check int "16 bits" 0xbeef (Bitio.Reader.get r ~bits:16);
  check int "32 bits" 0x12345678 (Bitio.Reader.get r ~bits:32)

let test_bitio_out_of_bits () =
  let r = Bitio.Reader.create "" in
  Alcotest.check_raises "empty" Bitio.Reader.Out_of_bits (fun () ->
      ignore (Bitio.Reader.get r ~bits:1))

let test_bitio_invalid_width () =
  let w = Bitio.Writer.create () in
  Alcotest.check_raises "too wide"
    (Invalid_argument "Bitio.Writer.put: bits") (fun () ->
      Bitio.Writer.put w ~bits:63 1)

let test_bitio_contents_idempotent () =
  let w = Bitio.Writer.create () in
  Bitio.Writer.put w ~bits:5 0b10110;
  let first = Bitio.Writer.contents w in
  let second = Bitio.Writer.contents w in
  check bool "two snapshots identical" true (first = second);
  check int "state untouched" 5 (Bitio.Writer.bit_length w);
  (* Writing after a snapshot continues from the un-padded position. *)
  Bitio.Writer.put w ~bits:3 0b011;
  let r = Bitio.Reader.create (Bitio.Writer.contents w) in
  check int "first field" 0b10110 (Bitio.Reader.get r ~bits:5);
  check int "field written after contents" 0b011 (Bitio.Reader.get r ~bits:3)

let bitio_contents_pure_property =
  let field = QCheck.(pair (QCheck.int_range 1 62) (int_bound max_int)) in
  QCheck.Test.make
    ~name:"bitio: contents is a pure snapshot (double call, put after)"
    ~count:100
    QCheck.(
      pair
        (list_of_size (Gen.int_range 1 32) field)
        (list_of_size (Gen.int_range 1 32) field))
    (fun (before, after) ->
      let reference = Bitio.Writer.create () in
      List.iter
        (fun (bits, value) -> Bitio.Writer.put reference ~bits value)
        (before @ after);
      let w = Bitio.Writer.create () in
      List.iter (fun (bits, value) -> Bitio.Writer.put w ~bits value) before;
      let snapshot = Bitio.Writer.contents w in
      let again = Bitio.Writer.contents w in
      List.iter (fun (bits, value) -> Bitio.Writer.put w ~bits value) after;
      snapshot = again
      && Bitio.Writer.contents w = Bitio.Writer.contents reference
      && Bitio.Writer.bit_length w = Bitio.Writer.bit_length reference)

let bitio_roundtrip_property =
  let field = QCheck.(pair (QCheck.int_range 1 62) (int_bound max_int)) in
  QCheck.Test.make ~name:"bitio: arbitrary field sequences round-trip"
    ~count:100
    QCheck.(list_of_size (Gen.int_range 1 64) field)
    (fun fields ->
      let w = Bitio.Writer.create () in
      List.iter
        (fun (bits, value) -> Bitio.Writer.put w ~bits value)
        fields;
      let r = Bitio.Reader.create (Bitio.Writer.contents w) in
      List.for_all
        (fun (bits, value) ->
          let masked = value land ((1 lsl bits) - 1) in
          Bitio.Reader.get r ~bits = masked)
        fields)

(* --- records ------------------------------------------------------------ *)

let sample_records =
  [| { Record.pc = 0; wrong_path = false; dest = 1; src1 = 2; src2 = 3;
       payload = Record.Other { op_class = Record.Alu } };
     { Record.pc = 1; wrong_path = false; dest = 4; src1 = 1; src2 = 0;
       payload = Record.Memory { is_load = true; address = 0x1234 } };
     { Record.pc = 2; wrong_path = false; dest = 0; src1 = 4; src2 = 5;
       payload = Record.Memory { is_load = false; address = 0x1238 } };
     { Record.pc = 3; wrong_path = false; dest = 0; src1 = 1; src2 = 4;
       payload =
         Record.Branch
           { kind = Resim_isa.Opcode.Cond; taken = true; target = 0 } };
     { Record.pc = 0; wrong_path = true; dest = 6; src1 = 1; src2 = 1;
       payload = Record.Other { op_class = Record.Mult } };
     { Record.pc = 1; wrong_path = true; dest = 7; src1 = 6; src2 = 2;
       payload = Record.Other { op_class = Record.Divide } } |]

let test_record_predicates () =
  check bool "branch" true (Record.is_branch sample_records.(3));
  check bool "load" true (Record.is_load sample_records.(1));
  check bool "store" true (Record.is_store sample_records.(2));
  check bool "memory" true (Record.is_memory sample_records.(2));
  check bool "alu not memory" false (Record.is_memory sample_records.(0))

let test_record_of_observation () =
  let program =
    Resim_isa.Asm.(
      assemble
        [ li t0 0x100; lw t1 4 t0; sw t1 8 t0; mul t2 t1 t1;
          beq t2 t2 "end"; label "end"; halt ])
  in
  let m = Resim_isa.Machine.create ~program () in
  let obs () =
    match Resim_isa.Interpreter.step m program with
    | Resim_isa.Interpreter.Stepped obs -> obs
    | Resim_isa.Interpreter.Halted_ -> Alcotest.fail "unexpected halt"
  in
  let li = Record.of_observation ~wrong_path:false (obs ()) in
  check bool "li is Other/Alu" true
    (li.payload = Record.Other { op_class = Record.Alu });
  let lw = Record.of_observation ~wrong_path:false (obs ()) in
  check bool "lw is load" true (Record.is_load lw);
  (match lw.payload with
  | Record.Memory { address; _ } -> check int "lw address" 0x104 address
  | Record.Branch _ | Record.Other _ -> Alcotest.fail "expected memory");
  let sw = Record.of_observation ~wrong_path:true (obs ()) in
  check bool "sw is store" true (Record.is_store sw);
  check bool "tag bit" true sw.wrong_path;
  let mul = Record.of_observation ~wrong_path:false (obs ()) in
  check bool "mul class" true
    (mul.payload = Record.Other { op_class = Record.Mult });
  let beq = Record.of_observation ~wrong_path:false (obs ()) in
  match beq.payload with
  | Record.Branch { kind; taken; target } ->
      check bool "cond kind" true (kind = Resim_isa.Opcode.Cond);
      check bool "taken" true taken;
      check int "target" 5 target
  | Record.Memory _ | Record.Other _ -> Alcotest.fail "expected branch"

(* --- codec --------------------------------------------------------------- *)

let test_codec_roundtrip_fixed () =
  let encoded = Codec.encode ~format:Codec.Fixed sample_records in
  let decoded, format = Codec.decode encoded in
  check bool "format" true (format = Codec.Fixed);
  check int "count" (Array.length sample_records) (Array.length decoded);
  Array.iteri
    (fun i record ->
      check bool (Printf.sprintf "record %d" i) true
        (Record.equal record decoded.(i)))
    sample_records

let test_codec_roundtrip_compact () =
  let encoded = Codec.encode ~format:Codec.Compact sample_records in
  let decoded, format = Codec.decode encoded in
  check bool "format" true (format = Codec.Compact);
  check bool "all equal" true
    (Array.for_all2 Record.equal sample_records decoded)

let test_codec_empty () =
  let encoded = Codec.encode [||] in
  let decoded, _format = Codec.decode encoded in
  check int "empty" 0 (Array.length decoded);
  check bool "zero bits per instr" true
    (Codec.bits_per_instruction [||] = 0.0)

let test_codec_corrupt () =
  Alcotest.check_raises "bad magic" (Codec.Corrupt "bad magic") (fun () ->
      ignore (Codec.decode "XXXXxxxxxxxxxxxxxx"));
  Alcotest.check_raises "truncated header"
    (Codec.Corrupt "truncated header (2 of 14 bytes)") (fun () ->
      ignore (Codec.decode "RS"))

let test_codec_truncated_payload () =
  let encoded = Codec.encode sample_records in
  let truncated = String.sub encoded 0 (String.length encoded - 2) in
  Alcotest.check_raises "truncated payload"
    (Codec.Corrupt "truncated payload") (fun () ->
      ignore (Codec.decode truncated))

let test_codec_file_roundtrip () =
  let path = Filename.temp_file "resim_test" ".trace" in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () ->
      Codec.write_file ~format:Codec.Compact path sample_records;
      let decoded, format = Codec.read_file path in
      check bool "file format" true (format = Codec.Compact);
      check bool "file roundtrip" true
        (Array.for_all2 Record.equal sample_records decoded))

let test_compact_smaller_on_locality () =
  (* Sequential memory accesses compress well under delta encoding. *)
  let records =
    Array.init 500 (fun i ->
        { Record.pc = i; wrong_path = false; dest = 1; src1 = 2; src2 = 0;
          payload = Record.Memory { is_load = true; address = 4096 + (4 * i) }
        })
  in
  let fixed = Codec.bits_per_instruction ~format:Codec.Fixed records in
  let compact = Codec.bits_per_instruction ~format:Codec.Compact records in
  check bool "compact is smaller" true (compact < fixed)

(* Generator for random records with mostly-sequential pcs. *)
let record_gen =
  let open QCheck.Gen in
  let payload_gen pc =
    frequency
      [ (5, map (fun c ->
                let op_class =
                  match c mod 3 with
                  | 0 -> Record.Alu
                  | 1 -> Record.Mult
                  | _ -> Record.Divide
                in
                Record.Other { op_class })
             small_nat);
        (3, map2 (fun is_load address ->
                 Record.Memory { is_load; address })
              bool (int_bound 0xffff_ffff));
        (2, map2 (fun taken target ->
                 Record.Branch { kind = Resim_isa.Opcode.Cond; taken;
                                 target = target mod 1_000_000 })
              bool (int_bound ((1 lsl 29) - 1))) ]
    |> fun g -> g >>= fun payload -> return (pc, payload)
  in
  let rec build n pc acc =
    if n = 0 then return (List.rev acc)
    else
      payload_gen pc >>= fun (pc, payload) ->
      map2 (fun regs jump ->
          let dest = regs land 31 in
          let src1 = (regs lsr 5) land 31 in
          let src2 = (regs lsr 10) land 31 in
          ({ Record.pc; wrong_path = regs land 32768 <> 0; dest; src1; src2;
             payload },
           jump))
        (int_bound 65535) (int_bound 99)
      >>= fun (record, jump) ->
      let next_pc = if jump < 80 then pc + 1 else (pc + jump) mod 1_000_000 in
      build (n - 1) next_pc (record :: acc)
  in
  int_range 1 200 >>= fun n ->
  map Array.of_list (build n 0 [])

let codec_roundtrip_property format name =
  QCheck.Test.make ~name ~count:60
    (QCheck.make record_gen)
    (fun records ->
      let decoded, decoded_format = Codec.decode (Codec.encode ~format records) in
      decoded_format = format
      && Array.length decoded = Array.length records
      && Array.for_all2 Record.equal records decoded)

let codec_encode_deterministic_property =
  QCheck.Test.make
    ~name:"codec: encoding the same records twice is byte-identical"
    ~count:40
    (QCheck.make record_gen)
    (fun records ->
      Codec.encode ~format:Codec.Fixed records
      = Codec.encode ~format:Codec.Fixed records
      && Codec.encode ~format:Codec.Compact records
         = Codec.encode ~format:Codec.Compact records)

(* --- profile ---------------------------------------------------------- *)

let profile_records =
  Array.concat
    [ Array.init 20 (fun i ->
          { Record.pc = 100; wrong_path = false; dest = 0; src1 = 1; src2 = 2;
            payload =
              Record.Branch
                { kind = Resim_isa.Opcode.Cond; taken = i mod 4 <> 0;
                  target = 5 } });
      Array.init 5 (fun _ ->
          { Record.pc = 200; wrong_path = false; dest = 0; src1 = 1; src2 = 2;
            payload =
              Record.Branch
                { kind = Resim_isa.Opcode.Cond; taken = true; target = 9 } });
      Array.init 8 (fun i ->
          { Record.pc = 300 + i; wrong_path = false; dest = 1; src1 = 2;
            src2 = 0;
            payload = Record.Memory { is_load = true; address = 0x5000 } });
      [| { Record.pc = 400; wrong_path = true; dest = 0; src1 = 1; src2 = 2;
           payload =
             Record.Branch
               { kind = Resim_isa.Opcode.Cond; taken = true; target = 0 } } |];
      Array.init 7 (fun i ->
          { Record.pc = 500 + i; wrong_path = false; dest = 3; src1 = 4;
            src2 = 5; payload = Record.Other { op_class = Record.Alu } }) ]

let test_profile_hot_branches () =
  let sites = Profile.hot_branches ~top:2 profile_records in
  match sites with
  | [ first; second ] ->
      check int "hottest site" 100 first.Profile.pc;
      check int "executions" 20 first.executions;
      check bool "taken rate" true
        (abs_float (first.taken_rate -. 0.75) < 1e-9);
      check int "second site" 200 second.Profile.pc;
      check int "wrong path excluded" 5 second.executions
  | _ -> Alcotest.fail "expected two sites"

let test_profile_pages_and_mix () =
  let pages = Profile.hot_pages ~top:3 profile_records in
  check bool "one hot page" true
    (match pages with [ (0x5000, 8) ] -> true | _ -> false);
  let mix = Profile.instruction_mix profile_records in
  let total =
    mix.Profile.alu +. mix.mult +. mix.divide +. mix.load +. mix.store
    +. mix.branch
  in
  check bool "fractions sum to 1" true (abs_float (total -. 1.0) < 1e-9);
  check bool "load fraction" true
    (abs_float (mix.Profile.load -. (8.0 /. 40.0)) < 1e-9);
  check int "footprint one page" 4096
    (Profile.memory_footprint_bytes profile_records)

let test_profile_page_validation () =
  Alcotest.check_raises "non power of two"
    (Invalid_argument "Profile: page_bytes must be a power of two")
    (fun () -> ignore (Profile.hot_pages ~page_bytes:3000 profile_records))

(* --- summary ---------------------------------------------------------- *)

let test_summary_counts () =
  let summary = Summary.of_records sample_records in
  check int "total" 6 summary.total;
  check int "wrong path" 2 summary.wrong_path;
  check int "correct" 4 summary.correct_path;
  check int "branches" 1 summary.branches;
  check int "cond" 1 summary.cond_branches;
  check int "taken" 1 summary.taken_branches;
  check int "loads" 1 summary.loads;
  check int "stores" 1 summary.stores;
  check int "mults" 1 summary.mults;
  check int "divides" 1 summary.divides;
  check bool "fraction" true
    (abs_float (Summary.wrong_path_fraction summary -. (2.0 /. 6.0)) < 1e-9)

let suite =
  [ ("trace:bitio",
     [ Alcotest.test_case "roundtrip" `Quick test_bitio_roundtrip_basic;
       Alcotest.test_case "out of bits" `Quick test_bitio_out_of_bits;
       Alcotest.test_case "invalid width" `Quick test_bitio_invalid_width;
       Alcotest.test_case "contents is idempotent" `Quick
         test_bitio_contents_idempotent;
       QCheck_alcotest.to_alcotest bitio_roundtrip_property;
       QCheck_alcotest.to_alcotest bitio_contents_pure_property ]);
    ("trace:record",
     [ Alcotest.test_case "predicates" `Quick test_record_predicates;
       Alcotest.test_case "of_observation" `Quick test_record_of_observation
     ]);
    ("trace:codec",
     [ Alcotest.test_case "fixed roundtrip" `Quick test_codec_roundtrip_fixed;
       Alcotest.test_case "compact roundtrip" `Quick
         test_codec_roundtrip_compact;
       Alcotest.test_case "empty" `Quick test_codec_empty;
       Alcotest.test_case "corrupt input" `Quick test_codec_corrupt;
       Alcotest.test_case "truncated payload" `Quick
         test_codec_truncated_payload;
       Alcotest.test_case "file roundtrip" `Quick test_codec_file_roundtrip;
       Alcotest.test_case "compact beats fixed on locality" `Quick
         test_compact_smaller_on_locality;
       QCheck_alcotest.to_alcotest
         (codec_roundtrip_property Codec.Fixed
            "codec: fixed encoding round-trips random traces");
       QCheck_alcotest.to_alcotest
         (codec_roundtrip_property Codec.Compact
            "codec: compact encoding round-trips random traces");
       QCheck_alcotest.to_alcotest codec_encode_deterministic_property ]);
    ("trace:profile",
     [ Alcotest.test_case "hot branches" `Quick test_profile_hot_branches;
       Alcotest.test_case "pages and mix" `Quick test_profile_pages_and_mix;
       Alcotest.test_case "validation" `Quick test_profile_page_validation ]);
    ("trace:summary",
     [ Alcotest.test_case "counts" `Quick test_summary_counts ]) ]
