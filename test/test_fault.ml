(* Robustness tests: every Fault_inject corruption class must surface
   as the matching structured RSM-T diagnostic — never an anonymous
   exception, never a hang (all simulation runs sit under the engine
   watchdog); sweeps with failing jobs still complete with partial
   results; and a budget-truncated run resumed from its replay
   checkpoint reproduces the unbounded run's statistics bit for bit. *)

module Codec = Resim_trace.Codec
module Fault = Resim_trace.Fault
module Fault_inject = Resim_trace.Fault_inject
module Check = Resim_check.Check
module Config = Resim_core.Config
module Stats = Resim_core.Stats
module Engine = Resim_core.Engine
module Checkpoint = Resim_core.Checkpoint
module Resim = Resim_core.Resim
module Sweep = Resim_sweep.Sweep

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool

let records_of ?(kernel = "gzip") scale =
  let workload = Resim_workloads.Workload.find kernel in
  let program = Resim_workloads.Workload.program_of workload ~scale () in
  (Resim_tracegen.Generator.run program).records

(* One small shared trace; every corruption is derived from it. *)
let base_records = lazy (records_of 256)

let diagnostic_codes (report : Check.Trace.report) =
  List.map (fun d -> d.Check.Diagnostic.code) report.diagnostics

(* --- every class surfaces its RSM-T code through the lint layer ------- *)

let test_classes_surface_codes () =
  let records = Lazy.force base_records in
  List.iter
    (fun fault ->
      let name = Fault_inject.name fault in
      let data = Fault_inject.apply ~seed:7 fault records in
      let report =
        Check.Trace.lint_string
          ~max_wrong_path_run:Fault_inject.default_max_run data
      in
      (match Fault_inject.expected_code fault with
      | None -> ()
      | Some code ->
          check bool
            (name ^ " surfaces " ^ code)
            true
            (List.mem code (diagnostic_codes report)));
      match Fault_inject.severity fault with
      | `Error ->
          check bool (name ^ " is an error") true
            (Check.Diagnostic.has_errors report.diagnostics)
      | `Warning ->
          check bool (name ^ " is a warning only") true
            (report.diagnostics <> []
            && not (Check.Diagnostic.has_errors report.diagnostics))
      | `Varies -> ())
    Fault_inject.all

let test_diagnostics_carry_offsets () =
  let records = Lazy.force base_records in
  let total = Array.length records in
  let data = Fault_inject.apply ~seed:3 Fault_inject.Truncate_payload records in
  let report = Check.Trace.lint_string data in
  match
    List.find_opt
      (fun d -> d.Check.Diagnostic.code = "RSM-T002")
      report.diagnostics
  with
  | None -> Alcotest.fail "expected an RSM-T002 diagnostic"
  | Some d ->
      (match Scanf.sscanf_opt d.subject "record %d" (fun i -> i) with
      | None ->
          Alcotest.failf "subject %S does not name a record" d.subject
      | Some index ->
          check bool "record offset in range" true
            (index >= 0 && index < total))

(* --- no escape, no hang: all organizations x both schedulers --------- *)

let org_sched_grid =
  List.concat_map
    (fun organization ->
      List.map
        (fun scheduler ->
          { Config.reference with organization; scheduler })
        [ Config.Scan; Config.Event ])
    [ Config.Simple; Config.Improved; Config.Optimized ]

(* A corrupted stream must come back as structured data at one of the
   layers: a codec error, salvaged records, or a structured engine
   failure — for every configuration and never via an exception. *)
let exercise_engine data =
  match Codec.decode_degraded data with
  | Error error -> check bool "structured codec error" true
      (String.length error.Codec.error_code > 0)
  | Ok (records, _format, _salvage) ->
      List.iter
        (fun config ->
          match
            Resim.simulate_robust ~config ~watchdog:50_000 records
          with
          | Ok _ | Error (Resim.Fault _) | Error (Resim.Deadlock _) -> ())
        org_sched_grid

let test_no_escape_across_configs () =
  let records = Lazy.force base_records in
  List.iter
    (fun fault ->
      let data = Fault_inject.apply ~seed:11 fault records in
      exercise_engine data)
    Fault_inject.all

(* --- qcheck: arbitrary class x seed never escapes --------------------- *)

let class_of_index index =
  List.nth Fault_inject.all (index mod List.length Fault_inject.all)

let property_class_seed =
  QCheck.Test.make
    ~name:"any (class, seed): structured diagnostics, no escape, no hang"
    ~count:40
    QCheck.(pair (int_bound 10_000) (int_bound 12))
    (fun (seed, index) ->
      let fault = class_of_index index in
      let records = Lazy.force base_records in
      let data = Fault_inject.apply ~seed fault records in
      let report =
        Check.Trace.lint_string
          ~max_wrong_path_run:Fault_inject.default_max_run data
      in
      (* An error class must produce at least one diagnostic... *)
      let diagnosed =
        match Fault_inject.severity fault with
        | `Error | `Warning -> report.diagnostics <> []
        | `Varies -> true
      in
      (* ...and whatever survives decoding must simulate without an
         exception under the watchdog. *)
      (match Codec.decode_degraded data with
      | Error _ -> ()
      | Ok (salvaged, _format, _faults) -> (
          match Resim.simulate_robust ~watchdog:50_000 salvaged with
          | Ok _ | Error _ -> ()));
      diagnosed)

let property_random_byte =
  QCheck.Test.make
    ~name:"random single-byte corruption never escapes or hangs" ~count:40
    QCheck.(pair (int_bound 1_000_000) (int_bound 7))
    (fun (position, bit) ->
      let clean = Codec.encode (Lazy.force base_records) in
      let index = position mod String.length clean in
      let data = Bytes.of_string clean in
      Bytes.set data index
        (Char.chr (Char.code (Bytes.get data index) lxor (1 lsl bit)));
      let data = Bytes.to_string data in
      (* Either layer may find the trace acceptable (the flip can land
         in a don't-care bit); the property is purely no-escape. *)
      ignore (Check.Trace.lint_string data);
      (match Codec.decode_degraded data with
      | Error _ -> ()
      | Ok (salvaged, _format, _faults) -> (
          match Resim.simulate_robust ~watchdog:50_000 salvaged with
          | Ok _ | Error _ -> ()));
      true)

(* --- sweep fault domains ---------------------------------------------- *)

let test_sweep_partial_results () =
  let gzip = Resim_workloads.Workload.find "gzip" in
  let reference = Config.reference in
  let corrupt =
    match
      Fault_inject.inject_records Fault_inject.Orphan_tag
        (Lazy.force base_records)
    with
    | Some records -> records
    | None -> Alcotest.fail "orphan-tag is record-level"
  in
  let jobs =
    [ Sweep.job ~label:"good" ~scale:(Sweep.Exact 256) ~config:reference
        gzip;
      Sweep.trace_job ~label:"corrupt" ~config:reference corrupt;
      Sweep.job ~label:"slow" ~scale:(Sweep.Exact 256) ~timeout:0.0
        ~config:reference gzip ]
  in
  let report = Sweep.run ~jobs:2 jobs in
  let counts = Sweep.counts report in
  check int "ok" 1 counts.ok;
  check int "failed" 1 counts.failed;
  check int "timed out" 1 counts.timed_out;
  check int "partial results available" 1
    (List.length (Sweep.completed report));
  let failures = Sweep.failures report in
  check int "failures reported" 2 (List.length failures);
  (match failures with
  | { Sweep.outcome = Sweep.Failed (Sweep.Fault fault); job; _ } :: _ ->
      check bool "failure keeps the job" true (job.Sweep.label = "corrupt");
      check bool "failure carries the RSM code" true
        (fault.Fault.code = "RSM-T005")
  | _ -> Alcotest.fail "expected the corrupt job to fail with its fault");
  let rendered = Format.asprintf "%a" Sweep.pp_failures report in
  check bool "failure table renders" true
    (String.length rendered > 40)

let test_sweep_truncation_and_retry () =
  let gzip = Resim_workloads.Workload.find "gzip" in
  let truncating =
    { Sweep.default_policy with max_cycles = Some 200L }
  in
  let report =
    Sweep.run ~policy:truncating ~jobs:1
      [ Sweep.job ~label:"bounded" ~scale:(Sweep.Exact 256)
          ~config:Config.reference gzip ]
  in
  let counts = Sweep.counts report in
  check int "truncated" 1 counts.truncated;
  check int "truncated counts as completed" 1
    (List.length (Sweep.completed report));
  (match report.job_reports with
  | [ { Sweep.outcome = Sweep.Truncated (_, checkpoint); _ } ] ->
      check bool "checkpoint cycle matches budget" true
        (checkpoint.Checkpoint.cycle = 200L)
  | _ -> Alcotest.fail "expected one truncated job");
  (* Deterministic failures (trace faults, deadlocks, invalid configs)
     fail identically every attempt: the runner must not burn retries
     on them. One attempt, no retry, still Failed. *)
  let corrupt =
    match
      Fault_inject.inject_records Fault_inject.Orphan_tag
        (Lazy.force base_records)
    with
    | Some records -> records
    | None -> Alcotest.fail "orphan-tag is record-level"
  in
  let retrying =
    { Sweep.default_policy with
      retries = 1; backoff = 0.01; max_backoff = 0.02 }
  in
  let report =
    Sweep.run ~policy:retrying ~jobs:1
      [ Sweep.trace_job ~label:"corrupt" ~config:Config.reference corrupt ]
  in
  let counts = Sweep.counts report in
  check int "still failed" 1 counts.failed;
  check int "deterministic failure is not retried" 0 counts.retried;
  (match report.job_reports with
  | [ { Sweep.attempts; _ } ] ->
      check int "fault reported after exactly one attempt" 1 attempts
  | _ -> Alcotest.fail "expected one job report");
  (* Host-side transients are the retryable class. An immediately
     expired per-job deadline times out on every attempt, so a retry
     budget of 1 yields exactly two attempts. *)
  let impatient =
    { Sweep.default_policy with
      timeout = Some 0.0; retries = 1; backoff = 0.001;
      max_backoff = 0.002 }
  in
  let report =
    Sweep.run ~policy:impatient ~jobs:1
      [ Sweep.job ~label:"transient" ~scale:(Sweep.Exact 256)
          ~config:Config.reference gzip ]
  in
  let counts = Sweep.counts report in
  check int "timed out" 1 counts.timed_out;
  check int "transient was retried" 1 counts.retried;
  (match report.job_reports with
  | [ { Sweep.attempts; outcome; _ } ] ->
      check int "retry budget spent" 2 attempts;
      check bool "timeouts are retryable" true (Sweep.retryable outcome)
  | _ -> Alcotest.fail "expected one job report");
  (* The classifier itself, over the whole outcome space. *)
  check bool "crash is retryable" true
    (Sweep.retryable (Sweep.Failed (Sweep.Crashed "boom")));
  check bool "invalid config is not retryable" false
    (Sweep.retryable (Sweep.Failed (Sweep.Invalid "bad width")))

(* --- checkpoint / resume ---------------------------------------------- *)

let test_checkpoint_resume_bit_identical () =
  let records = Lazy.force base_records in
  let full = (Resim.simulate_trace records).stats in
  match Resim.simulate_robust ~max_cycles:1_000L records with
  | Error failure -> Alcotest.fail (Resim.failure_to_string failure)
  | Ok robust -> (
      check bool "stopped on the cycle budget" true
        (robust.stop = Engine.Cycle_budget);
      let checkpoint =
        match robust.resume with
        | Some checkpoint -> checkpoint
        | None -> Alcotest.fail "truncated run must yield a checkpoint"
      in
      (* Resume through the textual form, as the CLI does. *)
      let checkpoint =
        match Checkpoint.of_string (Checkpoint.to_string checkpoint) with
        | Ok checkpoint -> checkpoint
        | Error error -> Alcotest.fail (Checkpoint.error_to_string error)
      in
      match Resim.resume_trace ~checkpoint records with
      | Error message -> Alcotest.fail message
      | Ok outcome ->
          check bool "resumed stats bit-identical to unbounded run" true
            (Stats.to_assoc outcome.stats = Stats.to_assoc full))

let test_resume_refuses_mismatch () =
  let records = Lazy.force base_records in
  match Resim.simulate_robust ~max_cycles:1_000L records with
  | Error failure -> Alcotest.fail (Resim.failure_to_string failure)
  | Ok robust -> (
      let checkpoint =
        match robust.resume with
        | Some checkpoint -> checkpoint
        | None -> Alcotest.fail "truncated run must yield a checkpoint"
      in
      (* A trace that diverges (timing-visibly) before the checkpoint
         cycle cannot satisfy the snapshot verification. Note a foreign
         trace sharing an identical prefix past the checkpoint is
         legitimately accepted — the engine is deterministic, so the
         replayed prefix IS the checkpointed computation. *)
      let other = Array.copy records in
      other.(0) <-
        { other.(0) with
          Resim_trace.Record.payload =
            Resim_trace.Record.Other
              { op_class = Resim_trace.Record.Divide } };
      (match Resim.resume_trace ~checkpoint other with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "resume accepted a divergent trace");
      (* Nor can a different configuration. *)
      let config = { Config.reference with rob_entries = 32 } in
      match Resim.resume_trace ~config ~checkpoint records with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "resume accepted a foreign configuration")

let test_degraded_decode_marks_stats () =
  let records = Lazy.force base_records in
  let data =
    Fault_inject.apply ~seed:5 Fault_inject.Truncate_payload records
  in
  match Codec.decode_degraded data with
  | Error error -> Alcotest.fail (Codec.error_to_string error)
  | Ok (salvaged, _format, faults) ->
      check bool "salvage reported" true (faults <> []);
      check bool "records salvaged" true (Array.length salvaged > 0);
      let outcome = Resim.simulate_trace salvaged in
      Stats.mark_degraded ~faults:(List.length faults) outcome.stats;
      check bool "stats marked degraded" true (Stats.degraded outcome.stats)

let suite =
  [ ("fault:inject",
     [ Alcotest.test_case "every class surfaces its code" `Quick
         test_classes_surface_codes;
       Alcotest.test_case "diagnostics carry record offsets" `Quick
         test_diagnostics_carry_offsets;
       Alcotest.test_case "no escape across orgs x schedulers" `Slow
         test_no_escape_across_configs;
       QCheck_alcotest.to_alcotest property_class_seed;
       QCheck_alcotest.to_alcotest property_random_byte ]);
    ("fault:sweep",
     [ Alcotest.test_case "partial results on failures" `Quick
         test_sweep_partial_results;
       Alcotest.test_case "truncation and retry" `Quick
         test_sweep_truncation_and_retry ]);
    ("fault:checkpoint",
     [ Alcotest.test_case "resume is bit-identical" `Quick
         test_checkpoint_resume_bit_identical;
       Alcotest.test_case "resume refuses mismatches" `Quick
         test_resume_refuses_mismatch;
       Alcotest.test_case "degraded decode marks stats" `Quick
         test_degraded_decode_marks_stats ]) ]
