(* Tests for the resim-dsafe domain-safety analyzer (DESIGN.md §15).

   Two halves:
   - directed fixtures under dsafe_fixtures/: each racy_dXXX.ml module
     is engineered to trip exactly its RSM-D code at a known subject,
     the cross-module pair checks owner attribution, and clean_guarded
     must produce no findings;
   - the gate itself: every module under lib/ must analyze clean, with
     the number of `resim-dsafe:` allow annotations at or under the
     checked-in budget (mirrored by --max-annotations in the root dune
     @dsafe rule). *)

module Dsafe = Resim_check.Dsafe
module Diagnostic = Resim_check.Diagnostic

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int

(* Must match --max-annotations in the root dune file's @dsafe rule.
   Raising it requires a justification in DESIGN.md §15. *)
let annotation_budget = 2

let analyze files =
  match Dsafe.analyze_files files with
  | Ok report -> report
  | Error message -> Alcotest.failf "dsafe analysis failed: %s" message

let fixture name = Filename.concat "dsafe_fixtures" name

let subjects_of code (report : Dsafe.report) =
  List.filter_map
    (fun (d : Diagnostic.t) ->
      if d.code = code then Some d.subject else None)
    report.diagnostics

(* One racy fixture per code: the expected diagnostic fires at the
   expected subject, and nothing OUTSIDE the targeted code fires — a
   fixture that trips extra codes is testing less than it claims. *)
let directed_cases =
  [ ("racy_d001.ml", "RSM-D001", 6);
    ("racy_d002.ml", "RSM-D002", 9);
    ("racy_d003.ml", "RSM-D003", 10);
    ("racy_d004.ml", "RSM-D004", 10);
    ("racy_d005.ml", "RSM-D005", 9);
    ("racy_d006.ml", "RSM-D006", 8);
    ("racy_d007.ml", "RSM-D007", 1);
    ("racy_d008.ml", "RSM-D008", 9) ]

let test_directed_fixtures () =
  List.iter
    (fun (file, code, line) ->
      let path = fixture file in
      let report = analyze [ path ] in
      let subject = Printf.sprintf "%s:%d" path line in
      check bool
        (Printf.sprintf "%s reports %s at %s" file code subject)
        true
        (List.mem subject (subjects_of code report));
      List.iter
        (fun (d : Diagnostic.t) ->
          check Alcotest.string
            (Printf.sprintf "%s fires only %s (got %s at %s)" file code
               d.code d.subject)
            code d.code)
        report.diagnostics)
    directed_cases

let test_d008_flags_both_brackets () =
  let path = fixture "racy_d008.ml" in
  let report = analyze [ path ] in
  check int "both lock and unlock flagged" 2
    (List.length (subjects_of "RSM-D008" report))

let test_cross_module_attribution () =
  (* The spawn lives in racy_xmod_spawn.ml; the finding must land on
     the owning binding in racy_xmod_state.ml. *)
  let state = fixture "racy_xmod_state.ml" in
  let spawn = fixture "racy_xmod_spawn.ml" in
  let report = analyze [ state; spawn ] in
  check bool "cross-module D001 attributed to the owner module" true
    (List.mem (state ^ ":6") (subjects_of "RSM-D001" report));
  check int "exactly one finding for the pair" 1
    (List.length report.diagnostics)

let test_clean_fixture () =
  let report = analyze [ fixture "clean_guarded.ml" ] in
  check int "clean_guarded has no findings" 0
    (List.length report.diagnostics);
  check int "its domain-local annotation is counted" 1
    (List.length report.annotations)

(* The gate: all of lib/, exactly as `dune build @dsafe` sees it. Tests
   run from _build/default/test, so lib/ sources sit at ../lib (the
   source_tree dep in test/dune copies them in). *)
let lib_sources () =
  let root = "../lib" in
  Sys.readdir root |> Array.to_list |> List.sort compare
  |> List.filter (fun entry ->
         Sys.is_directory (Filename.concat root entry))
  |> List.concat_map (fun subdir ->
         let dir = Filename.concat root subdir in
         Sys.readdir dir |> Array.to_list |> List.sort compare
         |> List.filter (fun f -> Filename.check_suffix f ".ml")
         |> List.map (Filename.concat dir))

let test_lib_is_dsafe_clean () =
  let sources = lib_sources () in
  check bool "found the lib/ tree" true (List.length sources > 50);
  let report = analyze sources in
  List.iter
    (fun (d : Diagnostic.t) ->
      Alcotest.failf "lib/ must be dsafe-clean, got %s at %s: %s" d.code
        d.subject d.message)
    report.diagnostics;
  let annotations = List.length report.annotations in
  check bool
    (Printf.sprintf
       "lib/ annotation count %d within budget %d (new allows must be \
        justified in DESIGN.md §15)"
       annotations annotation_budget)
    true
    (annotations <= annotation_budget)

let suite =
  [ ( "dsafe",
      [ Alcotest.test_case "directed racy fixtures" `Quick
          test_directed_fixtures;
        Alcotest.test_case "D008 flags both brackets" `Quick
          test_d008_flags_both_brackets;
        Alcotest.test_case "cross-module D001 attribution" `Quick
          test_cross_module_attribution;
        Alcotest.test_case "clean fixture analyzes clean" `Quick
          test_clean_fixture;
        Alcotest.test_case "lib/ is dsafe-clean within budget" `Quick
          test_lib_is_dsafe_clean ] ) ]
