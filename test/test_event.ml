(* Tests for the event-driven scheduler: Event_queue ordering and
   stability, and the differential guarantee that the Event scheduler is
   cycle- and stats-identical to the Scan reference oracle on every
   workload kernel and on random synthetic traces across organizations,
   widths and memory systems. *)

open Resim_core
module Record = Resim_trace.Record
module Synthetic = Resim_tracegen.Synthetic

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool
let i64 = Alcotest.int64

(* ------------------------------------------------------------------- *)
(* Event_queue                                                          *)

let drain queue =
  let rec loop acc =
    match Event_queue.pop queue with
    | Some value -> loop (value :: acc)
    | None -> List.rev acc
  in
  loop []

let test_queue_ordering () =
  let queue = Event_queue.create () in
  List.iter
    (fun (at, id) -> Event_queue.push queue ~at ~id (at, id))
    [ (5, 3); (1, 9); (5, 1); (0, 7); (3, 2) ];
  check int "length" 5 (Event_queue.length queue);
  check bool "min key" true (Event_queue.min_key queue = Some (0, 7));
  check bool "pops in (at, id) order" true
    (drain queue = [ (0, 7); (1, 9); (3, 2); (5, 1); (5, 3) ]);
  check bool "empty after drain" true (Event_queue.is_empty queue)

let test_queue_duplicate_keys_are_fifo () =
  (* Identical (at, id) keys must pop in insertion order. *)
  let queue = Event_queue.create () in
  List.iter
    (fun payload -> Event_queue.push queue ~at:7 ~id:4 payload)
    [ "first"; "second"; "third"; "fourth" ];
  Event_queue.push queue ~at:7 ~id:3 "older-id";
  Event_queue.push queue ~at:2 ~id:9 "earlier-cycle";
  check bool "stable under duplicates" true
    (drain queue
    = [ "earlier-cycle"; "older-id"; "first"; "second"; "third"; "fourth" ])

let test_queue_pop_due () =
  let queue = Event_queue.create () in
  List.iter
    (fun (at, id) -> Event_queue.push queue ~at ~id id)
    [ (4, 0); (2, 1); (9, 2) ];
  check bool "nothing due at 1" true (Event_queue.pop_due queue ~now:1 = None);
  check bool "due at 2" true (Event_queue.pop_due queue ~now:2 = Some 1);
  check bool "4 not due at 3" true (Event_queue.pop_due queue ~now:3 = None);
  check bool "due at 5" true (Event_queue.pop_due queue ~now:5 = Some 0);
  check bool "9 pending" true (Event_queue.min_key queue = Some (9, 2));
  check bool "due at 9" true (Event_queue.pop_due queue ~now:9 = Some 2);
  check bool "drained" true (Event_queue.pop_due queue ~now:100 = None)

let test_queue_clear_and_reuse () =
  let queue = Event_queue.create () in
  for id = 0 to 40 do
    Event_queue.push queue ~at:(id mod 5) ~id ()
  done;
  check int "filled" 41 (Event_queue.length queue);
  Event_queue.clear queue;
  check bool "cleared" true (Event_queue.is_empty queue);
  Event_queue.push queue ~at:1 ~id:1 ();
  check int "usable after clear" 1 (Event_queue.length queue)

let queue_matches_sorted_model =
  (* Pushing arbitrary keys and draining must yield the stable sort of
     the inputs by (at, id, insertion index). *)
  QCheck.Test.make ~name:"event queue drains as a stable sort" ~count:200
    QCheck.(list (pair (int_bound 50) (int_bound 20)))
    (fun keys ->
      let queue = Event_queue.create () in
      List.iteri
        (fun index (at, id) ->
          Event_queue.push queue ~at ~id (at, id, index))
        keys;
      let expected =
        List.stable_sort
          (fun (a1, i1, s1) (a2, i2, s2) ->
            compare (a1, i1, s1) (a2, i2, s2))
          (List.mapi (fun index (at, id) -> (at, id, index)) keys)
      in
      drain queue = expected)

(* ------------------------------------------------------------------- *)
(* Differential harness: Scan vs Event.                                 *)

let with_scheduler scheduler (config : Config.t) = { config with scheduler }

let stats_dump stats = Format.asprintf "%a" Stats.pp stats

let assert_schedulers_agree ~name config records =
  let scan =
    Engine.simulate ~config:(with_scheduler Config.Scan config) records
  in
  let event =
    Engine.simulate ~config:(with_scheduler Config.Event config) records
  in
  check i64
    (name ^ ": major cycles")
    (Stats.get Stats.major_cycles scan)
    (Stats.get Stats.major_cycles event);
  check Alcotest.string (name ^ ": full stats dump") (stats_dump scan)
    (stats_dump event)

let schedulers_agree config records =
  let scan =
    Engine.simulate ~config:(with_scheduler Config.Scan config) records
  in
  let event =
    Engine.simulate ~config:(with_scheduler Config.Event config) records
  in
  Int64.equal
    (Stats.get Stats.major_cycles scan)
    (Stats.get Stats.major_cycles event)
  && String.equal (stats_dump scan) (stats_dump event)

(* ------------------------------------------------------------------- *)
(* Differential: every workload kernel (plus a synthetic eighth), both
   paper configurations.                                                *)

let kernel_records =
  (* Generated lazily once; reused by both scheduler runs and both
     configurations. *)
  lazy
    (let kernels =
       Resim_workloads.Workload.all @ Resim_workloads.Workload.extended
     in
     let from_kernels =
       List.map
         (fun kernel ->
           let name = Resim_workloads.Workload.name_of kernel in
           let program = Resim_workloads.Workload.program_of kernel () in
           (name, Resim_tracegen.Generator.records program))
         kernels
     in
     let synthetic =
       ( "synthetic",
         Synthetic.generate ~seed:7
           (Synthetic.balanced ~name:"eighth" ~instructions:4000) )
     in
     from_kernels @ [ synthetic ])

let test_kernels_reference () =
  List.iter
    (fun (name, records) ->
      assert_schedulers_agree ~name Config.reference records)
    (Lazy.force kernel_records)

let test_kernels_fast_comparable () =
  List.iter
    (fun (name, records) ->
      assert_schedulers_agree ~name Config.fast_comparable records)
    (Lazy.force kernel_records)

(* ------------------------------------------------------------------- *)
(* Differential: handcrafted corner cases.                              *)

let alu ?(wrong = false) ~pc ~dest ~src1 ~src2 () =
  { Record.pc; wrong_path = wrong; dest; src1; src2;
    payload = Record.Other { op_class = Record.Alu } }

let divide ~pc ~dest ~src1 () =
  { Record.pc; wrong_path = false; dest; src1; src2 = 0;
    payload = Record.Other { op_class = Record.Divide } }

let load ?(wrong = false) ~pc ~dest ~base ~addr () =
  { Record.pc; wrong_path = wrong; dest; src1 = base; src2 = 0;
    payload = Record.Memory { is_load = true; address = addr } }

let store ?(wrong = false) ~pc ~base ~data ~addr () =
  { Record.pc; wrong_path = wrong; dest = 0; src1 = base; src2 = data;
    payload = Record.Memory { is_load = false; address = addr } }

let branch ?(wrong = false) ~pc ~taken ~target () =
  { Record.pc; wrong_path = wrong; dest = 0; src1 = 1; src2 = 2;
    payload = Record.Branch { kind = Resim_isa.Opcode.Cond; taken; target } }

let test_corner_cases () =
  (* Forwarding store retires before the starved load issues: the load
     must fall back to a D-cache port in both schedulers. Width 1 keeps
     the load queued behind older ALU work. *)
  let narrow =
    { Config.reference with
      width = 1;
      ifq_entries = 1;
      decouple_entries = 1;
      alu_count = 1;
      mem_read_ports = 1;
      mem_write_ports = 1;
      organization = Config.Improved }
  in
  let forward_then_retire =
    Array.concat
      [ [| store ~pc:0 ~base:29 ~data:30 ~addr:64 () |];
        Array.init 6 (fun i -> alu ~pc:(1 + i) ~dest:3 ~src1:29 ~src2:0 ());
        [| load ~pc:7 ~dest:4 ~base:29 ~addr:64 () |] ]
  in
  assert_schedulers_agree ~name:"forward-then-retire" narrow
    forward_then_retire;
  (* Broadcast bandwidth: a divider, a chain and independent ALUs all
     complete around the same cycles; more results can be due than the
     width-2 broadcast bus takes, forcing carry-over. *)
  let broadcast_pressure =
    Array.concat
      [ [| divide ~pc:0 ~dest:1 ~src1:29 () |];
        Array.init 20 (fun i ->
            alu ~pc:(1 + i) ~dest:(2 + (i mod 6)) ~src1:29 ~src2:0 ());
        [| alu ~pc:21 ~dest:8 ~src1:1 ~src2:0 () |] ]
  in
  let two_wide =
    { narrow with width = 2; ifq_entries = 2; decouple_entries = 2;
      alu_count = 2 }
  in
  assert_schedulers_agree ~name:"broadcast-pressure" two_wide
    broadcast_pressure;
  (* Squash with in-flight long-latency work and a pending store: heap
     and pool entries for the squashed suffix must be discarded. *)
  let squash_with_inflight =
    Array.concat
      [ [| alu ~pc:0 ~dest:1 ~src1:29 ~src2:0 ();
           branch ~pc:1 ~taken:false ~target:40 () |];
        Array.init 8 (fun i ->
            if i = 0 then divide ~pc:(40 + i) ~dest:5 ~src1:29 ()
            else if i = 1 then store ~wrong:true ~pc:(40 + i) ~base:29
                   ~data:30 ~addr:128 ()
            else alu ~wrong:true ~pc:(40 + i) ~dest:(6 + (i mod 4))
                   ~src1:29 ~src2:0 ());
        [| alu ~pc:2 ~dest:2 ~src1:1 ~src2:0 ();
           load ~pc:3 ~dest:3 ~base:29 ~addr:128 () |] ]
  in
  (* The divider record above is on the wrong path only if tagged; tag
     it explicitly. *)
  squash_with_inflight.(2) <-
    { (squash_with_inflight.(2)) with Record.wrong_path = true };
  assert_schedulers_agree ~name:"squash-inflight" Config.reference
    squash_with_inflight

(* ------------------------------------------------------------------- *)
(* Differential: random synthetic traces x organizations x widths.      *)

let differential_configs =
  (* Valid structural spread: every organization, widths 1-8, small
     windows (stress squash/full/port paths), and one cached memory
     system (stress latency variability). *)
  [| { Config.reference with
       organization = Config.Simple;
       width = 2;
       ifq_entries = 2;
       decouple_entries = 2;
       alu_count = 2;
       rob_entries = 8;
       lsq_entries = 4;
       mem_read_ports = 1;
       mem_write_ports = 1 };
     { Config.reference with
       organization = Config.Improved;
       width = 1;
       ifq_entries = 1;
       decouple_entries = 1;
       alu_count = 1;
       rob_entries = 4;
       lsq_entries = 2;
       mem_read_ports = 1;
       mem_write_ports = 1 };
     { Config.reference with
       organization = Config.Improved;
       width = 4;
       rob_entries = 32;
       lsq_entries = 16;
       mult_count = 2;
       icache = Resim_cache.Cache.l1_32k_8way_64b;
       dcache = Resim_cache.Cache.l1_32k_8way_64b };
     Config.reference;
     { Config.reference with
       organization = Config.Optimized;
       width = 8;
       ifq_entries = 8;
       decouple_entries = 8;
       alu_count = 8;
       rob_entries = 64;
       lsq_entries = 32;
       mem_read_ports = 4;
       mem_write_ports = 2 }
  |]

let synthetic_profile ~instructions ~loads ~stores ~branches ~divides
    ~dependency_density ~mispredict_rate ~working_set =
  { (Synthetic.balanced ~name:"diff" ~instructions) with
    loads;
    stores;
    branches;
    divides;
    mults = divides *. 4.0;
    dependency_density;
    mispredict_rate;
    working_set_bytes = working_set;
    sequential_locality = 0.5 }

let scan_vs_event_differential =
  (* The acceptance bar: >= 100 random traces, every organization and a
     width spread, equal cycles and equal full stats dumps. *)
  QCheck.Test.make ~name:"Scan and Event schedulers are cycle-exact equal"
    ~count:120
    QCheck.(
      pair (int_bound 100_000)
        (pair (int_bound (Array.length differential_configs - 1))
           (pair (int_range 150 500) (int_bound 1000))))
    (fun (seed, (config_index, (instructions, knob))) ->
      let frac limit salt =
        float_of_int ((knob * salt) mod 1000) /. 1000.0 *. limit
      in
      let profile =
        synthetic_profile ~instructions ~loads:(0.05 +. frac 0.3 7)
          ~stores:(0.05 +. frac 0.2 13)
          ~branches:(0.05 +. frac 0.2 29)
          ~divides:(frac 0.01 3)
          ~dependency_density:(frac 0.9 17)
          ~mispredict_rate:(frac 0.25 11)
          ~working_set:(64 * (1 + (knob mod 64)))
      in
      let records = Synthetic.generate ~seed profile in
      schedulers_agree differential_configs.(config_index) records)

let scan_vs_event_store_heavy =
  (* Tiny working sets force dense store-to-load aliasing: the
     incremental LSQ reclassification is the code under stress. *)
  QCheck.Test.make
    ~name:"schedulers agree under dense store-load aliasing" ~count:40
    QCheck.(pair (int_bound 100_000) (int_range 0 4))
    (fun (seed, config_index) ->
      let profile =
        synthetic_profile ~instructions:300 ~loads:0.35 ~stores:0.3
          ~branches:0.08 ~divides:0.004 ~dependency_density:0.6
          ~mispredict_rate:0.1 ~working_set:64
      in
      let records = Synthetic.generate ~seed profile in
      schedulers_agree differential_configs.(config_index) records)

(* ------------------------------------------------------------------- *)

let suite =
  [ ("event:queue",
     [ Alcotest.test_case "ordering" `Quick test_queue_ordering;
       Alcotest.test_case "duplicate keys are FIFO" `Quick
         test_queue_duplicate_keys_are_fifo;
       Alcotest.test_case "pop_due" `Quick test_queue_pop_due;
       Alcotest.test_case "clear and reuse" `Quick
         test_queue_clear_and_reuse;
       QCheck_alcotest.to_alcotest queue_matches_sorted_model ]);
    ("event:differential",
     [ Alcotest.test_case "kernels, reference config" `Slow
         test_kernels_reference;
       Alcotest.test_case "kernels, fast-comparable config" `Slow
         test_kernels_fast_comparable;
       Alcotest.test_case "corner cases" `Quick test_corner_cases;
       QCheck_alcotest.to_alcotest scan_vs_event_differential;
       QCheck_alcotest.to_alcotest scan_vs_event_store_heavy ]) ]
