(* Tests for the observability layer (DESIGN.md §11): the pipetrace
   JSONL stream and its bit-identity between the Scan and Event
   schedulers, the schema validator (RSM-P codes), the waterfall
   renderer, the host profiler, and the guarantee that attaching no
   sink leaves the run's statistics untouched. *)

open Resim_core
module Obs = Resim_obs.Obs
module Prof = Resim_obs.Prof
module Check = Resim_check.Check
module Synthetic = Resim_tracegen.Synthetic

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool
let string = Alcotest.string

let with_scheduler scheduler (config : Config.t) = { config with scheduler }

(* Run one engine with a buffer-backed JSONL sink; return the stream
   and the final stats. *)
let pipetrace ~config records =
  let engine = Engine.create ~config records in
  let buffer = Buffer.create 4096 in
  let sinks = [ Obs.jsonl_buffer buffer ] in
  Obs.attach engine sinks;
  let stats = Engine.run engine in
  Obs.close sinks;
  (Buffer.contents buffer, stats)

(* ------------------------------------------------------------------- *)
(* Differential: the pipetrace stream is part of the Scan/Event
   equivalence contract, not just the end-of-run statistics.            *)

let streams_identical ~config records =
  let scan, _ = pipetrace ~config:(with_scheduler Config.Scan config) records in
  let event, _ =
    pipetrace ~config:(with_scheduler Config.Event config) records
  in
  String.equal scan event

let assert_streams_identical ~name ~config records =
  let scan, _ = pipetrace ~config:(with_scheduler Config.Scan config) records in
  let event, _ =
    pipetrace ~config:(with_scheduler Config.Event config) records
  in
  check string (name ^ ": pipetrace streams") scan event

let test_kernel_streams_bit_identical () =
  List.iter
    (fun (name, records) ->
      assert_streams_identical ~name ~config:Config.reference records;
      assert_streams_identical ~name:(name ^ " (fast-comparable)")
        ~config:Config.fast_comparable records)
    (Lazy.force Test_event.kernel_records)

let random_streams_bit_identical =
  QCheck.Test.make
    ~name:"Scan and Event emit bit-identical pipetrace streams" ~count:60
    QCheck.(
      pair (int_bound 100_000)
        (pair
           (int_bound (Array.length Test_event.differential_configs - 1))
           (int_range 150 400)))
    (fun (seed, (config_index, instructions)) ->
      let profile =
        { (Synthetic.balanced ~name:"obs" ~instructions) with
          Synthetic.mispredict_rate = 0.15;
          dependency_density = 0.5 }
      in
      let records = Synthetic.generate ~seed profile in
      streams_identical
        ~config:Test_event.differential_configs.(config_index)
        records)

(* ------------------------------------------------------------------- *)
(* Schema: the real stream validates clean; corrupted lines hit their
   RSM-P codes.                                                         *)

let small_records =
  lazy
    (let gzip = Resim_workloads.Workload.find "gzip" in
     let program = Resim_workloads.Workload.program_of gzip ~scale:64 () in
     Resim_tracegen.Generator.records program)

let small_stream =
  lazy (fst (pipetrace ~config:Config.reference (Lazy.force small_records)))

let test_stream_validates_clean () =
  let report = Check.Obs.lint_string (Lazy.force small_stream) in
  check bool "clean" true (Check.Obs.clean report);
  check bool "checked every line" true (report.lines_checked > 100);
  (* Every emitted kind is one the schema knows, and the fundamental
     conservation holds: at least as many fetches as commits. *)
  let count kind =
    match List.assoc_opt kind report.events with Some n -> n | None -> 0
  in
  check bool "fetches >= commits" true (count "F" >= count "C");
  check bool "commits present" true (count "C" > 0)

let codes report =
  List.map
    (fun d -> d.Check.Diagnostic.code)
    report.Check.Obs.diagnostics

let test_schema_rejects_corruption () =
  let expect line code =
    let report = Check.Obs.lint_string line in
    check bool
      (Printf.sprintf "%S -> %s (got %s)" line code
         (String.concat "," (codes report)))
      true
      (List.mem code (codes report))
  in
  (* RSM-P001: not a flat JSON object. *)
  expect "not json" "RSM-P001";
  expect "{\"c\":1,\"e\":\"F\",\"pc\":2} trailing" "RSM-P001";
  (* RSM-P002: unknown or missing event kind. *)
  expect "{\"c\":1,\"e\":\"Z\"}" "RSM-P002";
  expect "{\"c\":1}" "RSM-P002";
  (* RSM-P003: required field missing, ill-typed, or a bad reason. *)
  expect "{\"c\":1,\"e\":\"D\",\"id\":3}" "RSM-P003";
  expect "{\"c\":1,\"e\":\"I\",\"id\":\"three\"}" "RSM-P003";
  expect "{\"c\":1,\"e\":\"S\",\"r\":\"coffee-break\"}" "RSM-P003";
  expect "{\"e\":\"FL\"}" "RSM-P003";
  (* RSM-P004: cycles decrease down the stream. *)
  let report =
    Check.Obs.lint_string
      "{\"c\":5,\"e\":\"F\",\"pc\":0}\n{\"c\":4,\"e\":\"FL\"}\n"
  in
  check bool "regressing cycle" true (List.mem "RSM-P004" (codes report));
  (* And the genuine article still passes the same validator. *)
  check bool "real stream unaffected" true
    (Check.Obs.clean (Check.Obs.lint_string (Lazy.force small_stream)))

let test_stall_reasons_all_legal () =
  (* Synthesize one S line per taxonomy reason; all must validate. *)
  let buffer = Buffer.create 256 in
  List.iter
    (fun reason ->
      Buffer.add_string buffer
        (Printf.sprintf "{\"c\":1,\"e\":\"S\",\"r\":\"%s\"}\n"
           (Engine.stall_reason_name reason)))
    Engine.all_stall_reasons;
  let report = Check.Obs.lint_string (Buffer.contents buffer) in
  check bool "every taxonomy reason validates" true (Check.Obs.clean report);
  check int "nine reasons" 9 (List.length Engine.all_stall_reasons)

(* ------------------------------------------------------------------- *)
(* Waterfall renderer.                                                  *)

let test_waterfall_renders () =
  let path = Filename.temp_file "resim_waterfall" ".txt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let channel = open_out path in
      let engine =
        Engine.create ~config:Config.reference (Lazy.force small_records)
      in
      let sinks = [ Obs.waterfall ~window:8 channel ] in
      Obs.attach engine sinks;
      ignore (Engine.run engine);
      Obs.close sinks;
      close_out channel;
      let ic = open_in path in
      let text = really_input_string ic (in_channel_length ic) in
      close_in ic;
      let has_line prefix =
        List.exists
          (fun line ->
            String.length line >= String.length prefix
            && String.sub line 0 (String.length prefix) = prefix)
          (String.split_on_char '\n' text)
      in
      check bool "header row" true (has_line "id    pc");
      check bool "first instruction row" true (has_line "#0");
      check bool "window honoured: no ninth row" false (has_line "#8");
      check bool "legend" true (has_line "F fetch"))

(* ------------------------------------------------------------------- *)
(* Profiler.                                                            *)

let test_profiler_sections () =
  let prof = Prof.create () in
  let engine =
    Engine.create ~config:Config.reference (Lazy.force small_records)
  in
  let closer = Prof.instrument_engine prof engine in
  ignore (Engine.run engine);
  closer ();
  let sections = Prof.sections prof in
  List.iter
    (fun phase ->
      let name = "engine/" ^ Engine.phase_name phase in
      match
        List.find_opt (fun s -> String.equal s.Prof.name name) sections
      with
      | Some section ->
          check bool (name ^ " charged") true (section.Prof.calls > 0)
      | None -> Alcotest.fail (name ^ " missing from the profile"))
    Engine.all_phases;
  (* Descending by seconds, and the JSON document mentions a section. *)
  let seconds = List.map (fun s -> s.Prof.seconds) sections in
  check bool "sorted descending" true
    (List.sort (fun a b -> compare b a) seconds = seconds);
  let json = Prof.to_json prof in
  check bool "json names engine/commit" true
    (let needle = "engine/commit" in
     let n = String.length json and m = String.length needle in
     let rec scan i =
       i + m <= n && (String.sub json i m = needle || scan (i + 1))
     in
     scan 0)

let test_time_charges_on_exception () =
  let prof = Prof.create () in
  (try Prof.time prof "explodes" (fun () -> failwith "boom")
   with Failure _ -> ());
  ignore (Prof.time prof "explodes" (fun () -> ()));
  match Prof.sections prof with
  | [ { Prof.name = "explodes"; calls = 2; _ } ] -> ()
  | _ -> Alcotest.fail "expected one section charged twice"

(* ------------------------------------------------------------------- *)
(* Zero-sink neutrality: attaching nothing must not perturb the run.    *)

let test_no_sink_no_observer () =
  let records = Lazy.force small_records in
  let bare = Engine.simulate ~config:Config.reference records in
  let engine = Engine.create ~config:Config.reference records in
  Obs.attach engine [];
  let attached = Engine.run engine in
  check string "stats identical with empty sink list"
    (Format.asprintf "%a" Stats.pp bare)
    (Format.asprintf "%a" Stats.pp attached)

let test_observed_run_stats_unchanged () =
  (* The pipetrace is pure observation: same counters with and without
     a sink attached, on both schedulers. *)
  let records = Lazy.force small_records in
  List.iter
    (fun scheduler ->
      let config = with_scheduler scheduler Config.reference in
      let bare = Engine.simulate ~config records in
      let _, observed = pipetrace ~config records in
      check string
        (Config.scheduler_name scheduler ^ ": observation is pure")
        (Format.asprintf "%a" Stats.pp bare)
        (Format.asprintf "%a" Stats.pp observed))
    [ Config.Scan; Config.Event ]

let suite =
  [ ("obs:pipetrace",
     [ Alcotest.test_case "kernel streams bit-identical" `Slow
         test_kernel_streams_bit_identical;
       QCheck_alcotest.to_alcotest random_streams_bit_identical;
       Alcotest.test_case "observation is pure" `Quick
         test_observed_run_stats_unchanged;
       Alcotest.test_case "no sink, no observer" `Quick
         test_no_sink_no_observer ]);
    ("obs:schema",
     [ Alcotest.test_case "real stream validates clean" `Quick
         test_stream_validates_clean;
       Alcotest.test_case "corruption hits RSM-P codes" `Quick
         test_schema_rejects_corruption;
       Alcotest.test_case "stall taxonomy round-trips" `Quick
         test_stall_reasons_all_legal ]);
    ("obs:render",
     [ Alcotest.test_case "waterfall" `Quick test_waterfall_renders ]);
    ("obs:prof",
     [ Alcotest.test_case "engine phases charged" `Quick
         test_profiler_sections;
       Alcotest.test_case "time charges on exception" `Quick
         test_time_charges_on_exception ]) ]
