(* Tests for the ReSim core: ring buffers, configuration, minor-cycle
   schedules, rename table, functional units, ROB, LSQ and the timing
   engine itself (micro-traces with known answers, invariants, and the
   organization-equivalence property). *)

open Resim_core
module Record = Resim_trace.Record

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool
let i64 = Alcotest.int64

(* ------------------------------------------------------------------- *)
(* Record builders for handcrafted micro-traces.                        *)

let alu ?(wrong = false) ~pc ~dest ~src1 ~src2 () =
  { Record.pc; wrong_path = wrong; dest; src1; src2;
    payload = Record.Other { op_class = Record.Alu } }

let mult ~pc ~dest ~src1 () =
  { Record.pc; wrong_path = false; dest; src1; src2 = 0;
    payload = Record.Other { op_class = Record.Mult } }

let divide ~pc ~dest ~src1 () =
  { Record.pc; wrong_path = false; dest; src1; src2 = 0;
    payload = Record.Other { op_class = Record.Divide } }

let load ?(wrong = false) ~pc ~dest ~base ~addr () =
  { Record.pc; wrong_path = wrong; dest; src1 = base; src2 = 0;
    payload = Record.Memory { is_load = true; address = addr } }

let store ?(wrong = false) ~pc ~base ~data ~addr () =
  { Record.pc; wrong_path = wrong; dest = 0; src1 = base; src2 = data;
    payload = Record.Memory { is_load = false; address = addr } }

let branch ?(wrong = false) ~pc ~taken ~target () =
  { Record.pc; wrong_path = wrong; dest = 0; src1 = 1; src2 = 2;
    payload = Record.Branch { kind = Resim_isa.Opcode.Cond; taken; target } }

(* [n] independent single-cycle instructions with distinct registers. *)
let independent_alus ?(start_pc = 0) n =
  Array.init n (fun i ->
      alu ~pc:(start_pc + i) ~dest:(1 + (i mod 28)) ~src1:29 ~src2:30 ())

(* A serial dependency chain: each instruction reads the previous
   destination. *)
let dependent_alus n =
  Array.init n (fun i ->
      let dest = 1 + (i mod 2) in
      let src = 1 + ((i + 1) mod 2) in
      alu ~pc:i ~dest ~src1:src ~src2:0 ())

let run ?(config = Config.reference) records =
  Engine.simulate ~config records

let cycles stats = Stats.get Stats.major_cycles stats
let committed stats = Stats.get Stats.committed stats

(* ------------------------------------------------------------------- *)
(* Ring                                                                  *)

let test_ring_order () =
  let ring = Ring.create ~capacity:4 in
  check bool "empty" true (Ring.is_empty ring);
  Ring.push ring 1;
  Ring.push ring 2;
  Ring.push ring 3;
  check int "length" 3 (Ring.length ring);
  check bool "peek oldest" true (Ring.peek ring = Some 1);
  check bool "pop order" true (Ring.pop ring = Some 1);
  check bool "pop order 2" true (Ring.pop ring = Some 2);
  Ring.push ring 4;
  Ring.push ring 5;
  Ring.push ring 6;
  check bool "full" true (Ring.is_full ring);
  check bool "wraps correctly" true (Ring.to_list ring = [ 3; 4; 5; 6 ])

let test_ring_full_push_fails () =
  let ring = Ring.create ~capacity:1 in
  Ring.push ring 0;
  Alcotest.check_raises "push full" (Failure "Ring.push: full") (fun () ->
      Ring.push ring 1)

let test_ring_get_and_iter () =
  let ring = Ring.create ~capacity:8 in
  List.iter (Ring.push ring) [ 10; 20; 30 ];
  check int "get 0" 10 (Ring.get ring 0);
  check int "get 2" 30 (Ring.get ring 2);
  Alcotest.check_raises "get out of range"
    (Invalid_argument "Ring.get: out of range") (fun () ->
      ignore (Ring.get ring 3));
  let order = ref [] in
  Ring.iter (fun v -> order := v :: !order) ring;
  check bool "iter oldest-first" true (List.rev !order = [ 10; 20; 30 ])

let test_ring_drop_while_back () =
  let ring = Ring.create ~capacity:8 in
  List.iter (Ring.push ring) [ 1; 2; 7; 8; 9 ];
  let dropped = Ring.drop_while_back (fun v -> v > 5) ring in
  check int "dropped" 3 dropped;
  check bool "remaining" true (Ring.to_list ring = [ 1; 2 ])

let ring_matches_list_model =
  (* Some v = push v (when not full), None = pop; the ring must agree
     with a plain list queue at every step. *)
  QCheck.Test.make ~name:"ring behaves like a bounded FIFO list" ~count:100
    QCheck.(list_of_size (Gen.int_range 1 200) (option (int_bound 1000)))
    (fun ops ->
      let ring = Ring.create ~capacity:8 in
      let model = ref [] in
      List.for_all
        (fun op ->
          match op with
          | Some value ->
              if List.length !model < 8 then begin
                Ring.push ring value;
                model := !model @ [ value ];
                Ring.length ring = List.length !model
                && Ring.to_list ring = !model
              end
              else Ring.is_full ring
          | None ->
              let expected =
                match !model with
                | [] -> None
                | x :: rest ->
                    model := rest;
                    Some x
              in
              Ring.pop ring = expected)
        ops)

(* ------------------------------------------------------------------- *)
(* Config                                                                *)

let test_config_latency_formulas () =
  List.iter
    (fun width ->
      check int "simple" ((2 * width) + 3)
        (Config.minor_cycles_per_major Config.Simple ~width);
      check int "improved" (width + 4)
        (Config.minor_cycles_per_major Config.Improved ~width);
      check int "optimized" (width + 3)
        (Config.minor_cycles_per_major Config.Optimized ~width))
    [ 1; 2; 4; 8; 16 ]

let test_config_validation () =
  let ok config = match Config.validate config with
    | Ok _ -> true | Error _ -> false
  in
  check bool "reference valid" true (ok Config.reference);
  check bool "fast valid" true (ok Config.fast_comparable);
  check bool "zero width" false (ok { Config.reference with width = 0 });
  check bool "rob < width" false
    (ok { Config.reference with rob_entries = 2 });
  check bool "ifq < width" false
    (ok { Config.reference with ifq_entries = 1 });
  check bool "optimized port limit" false
    (ok { Config.reference with mem_read_ports = 4 });
  check bool "improved has no port limit" true
    (ok
       { Config.reference with
         mem_read_ports = 4;
         organization = Config.Improved })

(* ------------------------------------------------------------------- *)
(* Minor-cycle schedules                                                 *)

let test_schedule_lengths () =
  List.iter
    (fun organization ->
      List.iter
        (fun width ->
          let schedule = Minor_cycle.build organization ~width in
          check int "length matches formula"
            (Config.minor_cycles_per_major organization ~width)
            schedule.Minor_cycle.length;
          check int "slot count" schedule.Minor_cycle.length
            (List.length schedule.Minor_cycle.slots))
        [ 1; 2; 4; 8 ])
    [ Config.Simple; Config.Improved; Config.Optimized ]

let count_units schedule predicate =
  List.fold_left
    (fun acc (slot : Minor_cycle.slot) ->
      acc + List.length (List.filter predicate slot.units))
    0 schedule.Minor_cycle.slots

let test_schedule_unit_counts () =
  let schedule = Minor_cycle.build Config.Optimized ~width:4 in
  let is_issue = function Minor_cycle.Issue _ -> true | _ -> false in
  let is_ca = function Minor_cycle.Cache_access _ -> true | _ -> false in
  let is_lsqr = function Minor_cycle.Lsq_refresh -> true | _ -> false in
  check int "four issues" 4 (count_units schedule is_issue);
  check int "optimized: no CA for the first slot" 3
    (count_units schedule is_ca);
  check int "one lsq_refresh" 1 (count_units schedule is_lsqr);
  let simple = Minor_cycle.build Config.Simple ~width:4 in
  check int "simple: CA for all slots" 4 (count_units simple is_ca)

let test_schedule_loads_rule () =
  check bool "optimized bars loads" false
    (Minor_cycle.first_issue_slot_allows_loads
       (Minor_cycle.build Config.Optimized ~width:4));
  check bool "simple allows loads" true
    (Minor_cycle.first_issue_slot_allows_loads
       (Minor_cycle.build Config.Simple ~width:4))

let contains_substring haystack needle =
  let h = String.length haystack and n = String.length needle in
  let rec scan i = i + n <= h && (String.sub haystack i n = needle || scan (i + 1)) in
  n = 0 || scan 0

let test_schedule_render () =
  let rendered = Minor_cycle.render (Minor_cycle.build Config.Improved ~width:2) in
  check bool "mentions organization" true
    (contains_substring rendered "Improved");
  check bool "mentions lsq refresh lane" true
    (contains_substring rendered "Lsq_refresh")

(* ------------------------------------------------------------------- *)
(* Rename / FU / ROB / LSQ units                                          *)

let test_rename () =
  let rename = Rename.create ~registers:32 in
  check int "fresh" Entry.no_producer (Rename.producer rename 5);
  Rename.define rename ~reg:5 ~id:7;
  check int "defined" 7 (Rename.producer rename 5);
  Rename.define rename ~reg:5 ~id:9;
  Rename.clear rename ~reg:5 ~id:7;
  check int "stale clear ignored" 9 (Rename.producer rename 5);
  Rename.clear rename ~reg:5 ~id:9;
  check int "owner clear works" Entry.no_producer (Rename.producer rename 5);
  Rename.define rename ~reg:0 ~id:3;
  check int "r0 never renamed" Entry.no_producer (Rename.producer rename 0);
  Rename.define rename ~reg:1 ~id:1;
  Rename.define rename ~reg:2 ~id:2;
  check int "pending" 2 (Rename.pending rename);
  Rename.reset rename;
  check int "reset" 0 (Rename.pending rename)

let test_fu_alu_limit () =
  let fu = Fu.create Config.reference in
  Fu.begin_cycle fu;
  for _ = 1 to 4 do
    check bool "alu granted" true (Fu.try_allocate fu Fu.Alu ~now:0 >= 0)
  done;
  check bool "fifth alu denied" true (Fu.try_allocate fu Fu.Alu ~now:0 < 0);
  Fu.begin_cycle fu;
  check bool "next cycle granted" true
    (Fu.try_allocate fu Fu.Alu ~now:1 >= 0)

let test_fu_divider_not_pipelined () =
  let fu = Fu.create Config.reference in
  Fu.begin_cycle fu;
  check bool "div granted" true (Fu.try_allocate fu Fu.Div ~now:0 = 10);
  Fu.begin_cycle fu;
  check bool "div busy" true (Fu.try_allocate fu Fu.Div ~now:5 < 0);
  Fu.begin_cycle fu;
  check bool "div free after latency" true
    (Fu.try_allocate fu Fu.Div ~now:10 = 10);
  Fu.flush fu;
  Fu.begin_cycle fu;
  check bool "flush frees" true (Fu.try_allocate fu Fu.Div ~now:11 >= 0)

let test_fu_mult_pipelined () =
  let fu = Fu.create Config.reference in
  Fu.begin_cycle fu;
  check bool "mult 1" true (Fu.try_allocate fu Fu.Mult ~now:0 = 3);
  check bool "mult limit per cycle" true
    (Fu.try_allocate fu Fu.Mult ~now:0 < 0);
  Fu.begin_cycle fu;
  check bool "mult next cycle (pipelined)" true
    (Fu.try_allocate fu Fu.Mult ~now:1 = 3)

let test_rob_basics () =
  let rob = Rob.create ~entries:4 in
  let e0 = Rob.dispatch rob (alu ~pc:0 ~dest:1 ~src1:0 ~src2:0 ()) in
  let e1 = Rob.dispatch rob (alu ~pc:1 ~dest:2 ~src1:0 ~src2:0 ()) in
  check int "sequence ids" 0 e0.Entry.id;
  check int "sequence ids 2" 1 e1.Entry.id;
  check int "length" 2 (Rob.length rob);
  let e2 = Rob.dispatch rob (alu ~pc:2 ~dest:3 ~src1:0 ~src2:0 ()) in
  ignore e2;
  check int "squash younger than 0" 2 (Rob.squash_younger rob ~than_id:0);
  check int "one left" 1 (Rob.length rob);
  check bool "head is e0" true
    (match Rob.head rob with Some e -> e.Entry.id = 0 | None -> false)

let test_lsq_classification () =
  let lsq = Lsq.create ~entries:8 in
  let rob = Rob.create ~entries:8 in
  (* Older store with unknown address (src1 pending) blocks the load. *)
  let st = Rob.dispatch rob (store ~pc:0 ~base:1 ~data:2 ~addr:0x100 ()) in
  st.Entry.src1_producer <- 99;
  let ld = Rob.dispatch rob (load ~pc:1 ~dest:3 ~base:4 ~addr:0x200 ()) in
  Lsq.dispatch lsq st;
  Lsq.dispatch lsq ld;
  Lsq.refresh lsq;
  check bool "blocked by unknown address" true
    (ld.Entry.load_readiness = Entry.Load_blocked);
  (* Address known, different word: the load needs a port. *)
  st.Entry.src1_producer <- Entry.no_producer;
  st.Entry.src2_producer <- 98;
  Lsq.refresh lsq;
  check bool "different address needs port" true
    (ld.Entry.load_readiness = Entry.Load_needs_port);
  (* Same word, data not ready yet: wait. *)
  let lsq2 = Lsq.create ~entries:8 in
  let rob2 = Rob.create ~entries:8 in
  let st2 = Rob.dispatch rob2 (store ~pc:0 ~base:1 ~data:2 ~addr:0x300 ()) in
  st2.Entry.src2_producer <- 97;
  let ld2 = Rob.dispatch rob2 (load ~pc:1 ~dest:3 ~base:4 ~addr:0x300 ()) in
  Lsq.dispatch lsq2 st2;
  Lsq.dispatch lsq2 ld2;
  Lsq.refresh lsq2;
  check bool "matching store, data pending: blocked" true
    (ld2.Entry.load_readiness = Entry.Load_blocked);
  (* Data ready: forward. *)
  st2.Entry.src2_producer <- Entry.no_producer;
  Lsq.refresh lsq2;
  check bool "forwarding" true
    (ld2.Entry.load_readiness = Entry.Load_forward)

let test_lsq_release_order () =
  let lsq = Lsq.create ~entries:4 in
  let rob = Rob.create ~entries:4 in
  let a = Rob.dispatch rob (load ~pc:0 ~dest:1 ~base:2 ~addr:0 ()) in
  let b = Rob.dispatch rob (load ~pc:1 ~dest:3 ~base:2 ~addr:4 ()) in
  Lsq.dispatch lsq a;
  Lsq.dispatch lsq b;
  Alcotest.check_raises "wrong order"
    (Failure "Lsq.release_head: committing #1 but queue head is #0")
    (fun () -> Lsq.release_head lsq b);
  (* A fresh queue releases in order without complaint. *)
  let lsq2 = Lsq.create ~entries:4 in
  Lsq.dispatch lsq2 a;
  Lsq.dispatch lsq2 b;
  Lsq.release_head lsq2 a;
  Lsq.release_head lsq2 b;
  check bool "emptied" true (Lsq.is_empty lsq2)

(* ------------------------------------------------------------------- *)
(* Engine micro-traces                                                   *)

let test_single_instruction_latency () =
  let stats = run (independent_alus 1) in
  check i64 "one committed" 1L (committed stats);
  check i64 "pipeline depth is six cycles" 6L (cycles stats)

let test_empty_trace () =
  let stats = run [||] in
  check i64 "nothing committed" 0L (committed stats);
  check i64 "no cycles" 0L (cycles stats)

let test_independent_ipc_near_width () =
  let stats = run (independent_alus 400) in
  check i64 "all committed" 400L (committed stats);
  check bool "IPC close to width" true (Stats.ipc stats > 3.0)

let test_dependent_chain_serializes () =
  let stats = run (dependent_alus 100) in
  check i64 "all committed" 100L (committed stats);
  let c = Int64.to_float (cycles stats) in
  check bool "about one cycle per instruction" true
    (c >= 100.0 && c <= 115.0)

let test_mult_latency_visible () =
  let chain_mult =
    Array.init 40 (fun i ->
        mult ~pc:i ~dest:(1 + (i mod 2)) ~src1:(1 + ((i + 1) mod 2)) ())
  in
  let stats = run chain_mult in
  let c = Int64.to_float (cycles stats) in
  check bool "three cycles per dependent multiply" true
    (c >= 3.0 *. 39.0 && c <= (3.0 *. 40.0) +. 12.0)

let test_divider_serializes_independent_divides () =
  let divs =
    Array.init 6 (fun i -> divide ~pc:i ~dest:(1 + i) ~src1:30 ())
  in
  let stats = run divs in
  let c = Int64.to_float (cycles stats) in
  (* One non-pipelined 10-cycle divider: at least 10 cycles each. *)
  check bool "divides serialized" true (c >= 50.0)

let test_minor_cycles_product () =
  let config = Config.reference in
  let engine = Engine.create ~config (independent_alus 100) in
  ignore (Engine.run engine);
  check bool "minor = major x L" true
    (Int64.equal (Engine.minor_cycles engine)
       (Int64.mul
          (cycles (Engine.stats engine))
          (Int64.of_int (Config.minor_cycle_latency config))))

let test_load_use_latency () =
  (* load -> user chain vs alu -> user chain: the load adds a cycle. *)
  let with_load =
    [| load ~pc:0 ~dest:1 ~base:30 ~addr:0x40 ();
       alu ~pc:1 ~dest:2 ~src1:1 ~src2:0 () |]
  in
  let with_alu =
    [| alu ~pc:0 ~dest:1 ~src1:30 ~src2:0 ();
       alu ~pc:1 ~dest:2 ~src1:1 ~src2:0 () |]
  in
  let load_cycles = cycles (run with_load) in
  let alu_cycles = cycles (run with_alu) in
  check bool "load latency visible" true
    (Int64.compare load_cycles alu_cycles > 0)

let test_store_to_load_forwarding () =
  let records =
    [| store ~pc:0 ~base:29 ~data:30 ~addr:0x80 ();
       load ~pc:1 ~dest:1 ~base:29 ~addr:0x80 () |]
  in
  let stats = run records in
  check i64 "forwarded" 1L (Stats.get Stats.forwarded_loads stats);
  check i64 "both committed" 2L (committed stats)

let test_no_forwarding_across_different_words () =
  let records =
    [| store ~pc:0 ~base:29 ~data:30 ~addr:0x80 ();
       load ~pc:1 ~dest:1 ~base:29 ~addr:0x90 () |]
  in
  let stats = run records in
  check i64 "not forwarded" 0L (Stats.get Stats.forwarded_loads stats)

let test_read_port_limit () =
  (* Reference config has 2 read ports; 8 ready loads need 4+ cycles of
     issue and leave stall events behind. *)
  let loads =
    Array.init 8 (fun i -> load ~pc:i ~dest:(1 + i) ~base:29 ~addr:(64 * i) ())
  in
  let stats = run loads in
  check i64 "all loads committed" 8L (Stats.get Stats.committed_loads stats);
  check bool "read-port pressure recorded" true
    (Int64.compare (Stats.get Stats.read_port_stalls stats) 0L > 0)

let test_write_port_limit () =
  let stores =
    Array.init 6 (fun i ->
        store ~pc:i ~base:29 ~data:30 ~addr:(64 * i) ())
  in
  let stats = run stores in
  check i64 "all stores committed" 6L (Stats.get Stats.committed_stores stats);
  check bool "write-port pressure recorded" true
    (Int64.compare (Stats.get Stats.write_port_stalls stats) 0L > 0)

(* A mispredicted branch followed by its tagged wrong-path block, then
   the correct continuation. *)
let squash_trace ~block ~tail =
  Array.concat
    [ [| alu ~pc:0 ~dest:1 ~src1:29 ~src2:0 ();
         branch ~pc:1 ~taken:false ~target:50 () |];
      Array.init block (fun i ->
          alu ~wrong:true ~pc:(50 + i) ~dest:(2 + (i mod 8)) ~src1:29
            ~src2:0 ());
      Array.init tail (fun i ->
          alu ~pc:(2 + i) ~dest:(10 + (i mod 8)) ~src1:29 ~src2:0 ()) ]

let test_squash_semantics () =
  let stats = run (squash_trace ~block:6 ~tail:5) in
  check i64 "correct path committed" 7L (committed stats);
  check i64 "one squash" 1L (Stats.get Stats.mispredictions stats);
  let fetched_wrong = Stats.get Stats.fetched_wrong_path stats in
  let discarded = Stats.get Stats.discarded_wrong_path stats in
  check i64 "block accounted fully" 6L (Int64.add fetched_wrong discarded);
  check bool "wrong path entered the pipeline" true
    (Int64.compare fetched_wrong 0L > 0)

let test_squash_penalty_costs_cycles () =
  let clean =
    Array.concat
      [ [| alu ~pc:0 ~dest:1 ~src1:29 ~src2:0 ();
           branch ~pc:1 ~taken:false ~target:50 () |];
        Array.init 5 (fun i ->
            alu ~pc:(2 + i) ~dest:(10 + i) ~src1:29 ~src2:0 ()) ]
  in
  let with_squash = cycles (run (squash_trace ~block:6 ~tail:5)) in
  let without = cycles (run clean) in
  check bool "squash costs cycles" true
    (Int64.compare with_squash without > 0)

let test_tagged_never_commits () =
  let stats = run (squash_trace ~block:20 ~tail:3) in
  (* committed = 2 before the squash + 3 after. *)
  check i64 "only untagged commit" 5L (committed stats)

let test_misfetch_on_cold_btb () =
  (* A taken branch whose target the cold BTB cannot supply. The
     two-level predictor starts weakly-taken, so the direction is
     predicted taken and the missing target is a misfetch. *)
  let records =
    [| branch ~pc:0 ~taken:true ~target:10 ();
       alu ~pc:10 ~dest:1 ~src1:29 ~src2:0 () |]
  in
  let stats = run records in
  check bool "misfetch recorded" true
    (Int64.compare (Stats.get Stats.misfetches stats) 0L > 0);
  check bool "penalty cycles paid" true
    (Int64.compare (Stats.get Stats.fetch_penalty_cycles stats) 2L >= 0)

let test_oracle_has_no_misfetch () =
  let config =
    { Config.reference with
      predictor = Resim_bpred.Predictor.perfect_config }
  in
  let records =
    [| branch ~pc:0 ~taken:true ~target:10 ();
       alu ~pc:10 ~dest:1 ~src1:29 ~src2:0 () |]
  in
  let stats = run ~config records in
  check i64 "no misfetch with oracle" 0L (Stats.get Stats.misfetches stats)

let test_icache_misses_stall_fetch () =
  let config =
    { Config.reference with
      icache = Resim_cache.Cache.l1_32k_8way_64b }
  in
  (* 64-byte blocks hold 8 instructions; spread over many blocks. *)
  let records = independent_alus 200 in
  let stats = run ~config records in
  check bool "icache stalls occurred" true
    (Int64.compare (Stats.get Stats.icache_stall_cycles stats) 0L > 0);
  check i64 "still all committed" 200L (committed stats)

let test_dcache_misses_slow_loads () =
  let perfect = Config.reference in
  let cached =
    { Config.reference with dcache = Resim_cache.Cache.l1_32k_8way_64b }
  in
  (* Loads spread over 256 KB: mostly misses. *)
  let loads =
    Array.init 64 (fun i ->
        load ~pc:i ~dest:(1 + (i mod 8)) ~base:29 ~addr:(i * 4096) ())
  in
  check bool "cache misses cost cycles" true
    (Int64.compare (cycles (run ~config:cached loads))
       (cycles (run ~config:perfect loads))
    > 0)

let test_rob_full_pressure () =
  (* A divide at the head with a long tail of cheap work behind it must
     fill the 16-entry window. *)
  let records =
    Array.append
      [| divide ~pc:0 ~dest:1 ~src1:29 () |]
      (independent_alus ~start_pc:1 60)
  in
  let stats = run records in
  check bool "rob-full stalls recorded" true
    (Int64.compare (Stats.get Stats.rob_full_stalls stats) 0L > 0)

let test_determinism () =
  let records = squash_trace ~block:8 ~tail:40 in
  let a = run records in
  let b = run records in
  check i64 "same cycles" (cycles a) (cycles b);
  check i64 "same committed" (committed a) (committed b);
  check i64 "same issued" (Stats.get Stats.issued a)
    (Stats.get Stats.issued b)

let test_malformed_leading_tagged_records () =
  let records =
    Array.append
      (Array.init 3 (fun i ->
           alu ~wrong:true ~pc:i ~dest:1 ~src1:29 ~src2:0 ()))
      (independent_alus ~start_pc:3 4)
  in
  let stats = run records in
  check i64 "tagged prefix discarded" 3L
    (Stats.get Stats.discarded_wrong_path stats);
  check i64 "rest committed" 4L (committed stats)

let test_step_invariants () =
  let engine = Engine.create (squash_trace ~block:10 ~tail:200) in
  let config = Engine.config engine in
  while not (Engine.finished engine) do
    Engine.step engine;
    let stats = Engine.stats engine in
    let issued = Stats.get Stats.issued stats in
    let dispatched = Stats.get Stats.dispatched stats in
    let committed_now = Stats.get Stats.committed stats in
    if Int64.compare issued dispatched > 0 then
      Alcotest.fail "issued exceeded dispatched";
    if Int64.compare committed_now issued > 0 then
      Alcotest.fail "committed exceeded issued"
  done;
  ignore config

let test_lsq_full_stall () =
  (* More memory ops in flight than LSQ entries (8): dispatch must
     stall and record it, but everything still completes. *)
  let records =
    Array.init 24 (fun i ->
        load ~pc:i ~dest:(1 + (i mod 8)) ~base:29 ~addr:(64 * i) ())
  in
  let stats = run records in
  check i64 "all committed" 24L (committed stats);
  check bool "lsq-full stalls recorded" true
    (Int64.compare (Stats.get Stats.lsq_full_stalls stats) 0L > 0)

let test_taken_branch_ends_fetch_group () =
  (* Back-to-back taken branches: at most one enters per cycle, so n
     branches need at least n fetch cycles. *)
  let n = 32 in
  let records =
    Array.init n (fun i -> branch ~pc:(i * 2) ~taken:true ~target:(i * 2 + 2) ())
    |> Array.mapi (fun i r ->
           ignore i;
           r)
  in
  (* Make each branch's target the next record's pc so there is no
     misfetch noise once the BTB warms. *)
  let stats = run records in
  check bool "one taken branch per cycle" true
    (Int64.compare (cycles stats) (Int64.of_int n) >= 0)

let test_wrong_path_loads_pollute_dcache () =
  let config =
    { Config.reference with dcache = Resim_cache.Cache.l1_32k_8way_64b }
  in
  (* The branch is actually taken but the generator predicted
     not-taken, so the wrong path is the *sequential* one: the front end
     streams straight into the tagged block with no misfetch stall, and
     the wrong-path loads reach the D-cache before resolution. *)
  let base =
    [| alu ~pc:0 ~dest:1 ~src1:29 ~src2:0 ();
       branch ~pc:1 ~taken:true ~target:50 () |]
  in
  let tail =
    Array.init 4 (fun i -> alu ~pc:(50 + i) ~dest:(2 + i) ~src1:29 ~src2:0 ())
  in
  let without = Array.append base tail in
  let with_wrong_loads =
    Array.concat
      [ base;
        Array.init 4 (fun i ->
            load ~wrong:true ~pc:(2 + i) ~dest:(10 + i) ~base:29
              ~addr:(4096 * i) ());
        tail ]
  in
  let dcache_accesses records =
    let engine = Engine.create ~config records in
    ignore (Engine.run engine);
    (Resim_cache.Cache.stats (Engine.dcache engine)).accesses
  in
  check bool "wrong-path loads reach the D-cache" true
    (Int64.compare
       (dcache_accesses with_wrong_loads)
       (dcache_accesses without)
    > 0)

let test_btb_trains_at_commit () =
  (* Two early instances of the same branch misfetch (the BTB is only
     written at commit); a later instance hits. *)
  let br () = branch ~pc:0 ~taken:true ~target:5 () in
  let filler pc = alu ~pc ~dest:3 ~src1:29 ~src2:0 () in
  let records =
    Array.concat
      [ [| br (); filler 5; br (); filler 5 |];
        Array.init 20 (fun i -> filler (6 + i));
        [| br (); filler 5 |] ]
  in
  let stats = run records in
  check i64 "exactly the two cold instances misfetch" 2L
    (Stats.get Stats.misfetches stats)

let test_width_one_configuration () =
  let config =
    { Config.reference with
      width = 1;
      ifq_entries = 1;
      decouple_entries = 1;
      alu_count = 1;
      mem_read_ports = 1;
      mem_write_ports = 1;
      organization = Config.Improved }
  in
  let stats = Engine.simulate ~config (independent_alus 100) in
  check i64 "all committed" 100L (committed stats);
  check bool "scalar bound" true (Stats.ipc stats <= 1.0)

let test_width_eight_configuration () =
  let config =
    { Config.reference with
      width = 8;
      ifq_entries = 8;
      decouple_entries = 8;
      rob_entries = 64;
      lsq_entries = 32;
      alu_count = 8;
      mem_read_ports = 4;
      mem_write_ports = 2;
      organization = Config.Optimized }
  in
  let stats = Engine.simulate ~config (independent_alus 800) in
  check i64 "all committed" 800L (committed stats);
  check bool "wide machine exploits ILP" true (Stats.ipc stats > 4.0)

let test_trace_ends_in_wrong_path_block () =
  (* The mispredicted branch is the last correct-path record; its tagged
     block runs to the end of the trace. The engine must drain cleanly
     and commit exactly the untagged records. *)
  let records =
    Array.concat
      [ independent_alus 3;
        [| branch ~pc:3 ~taken:false ~target:60 () |];
        Array.init 10 (fun i ->
            alu ~wrong:true ~pc:(60 + i) ~dest:(1 + (i mod 8)) ~src1:29
              ~src2:0 ()) ]
  in
  let stats = run records in
  check i64 "four committed" 4L (committed stats);
  check i64 "one squash" 1L (Stats.get Stats.mispredictions stats);
  check i64 "block fully accounted" 10L
    (Int64.add
       (Stats.get Stats.fetched_wrong_path stats)
       (Stats.get Stats.discarded_wrong_path stats))

let test_commit_width_histogram_bounded () =
  let stats = run (independent_alus 200) in
  let histogram = Stats.commit_width_histogram stats in
  (* No cycle may commit more than the width. *)
  for w = Config.reference.width + 1 to Histogram.bins histogram - 1 do
    if Int64.compare (Histogram.count histogram w) 0L > 0 then
      Alcotest.failf "committed %d instructions in one cycle" w
  done;
  check bool "histogram populated" true
    (Int64.compare (Histogram.total histogram) 0L > 0)

(* ------------------------------------------------------------------- *)
(* Organization equivalence (the paper's §IV claim)                      *)

let organizations = [ Config.Simple; Config.Improved; Config.Optimized ]

let run_org records organization =
  let config = { Config.reference with organization } in
  Engine.simulate ~config records

let assert_org_equivalence records =
  let results = List.map (run_org records) organizations in
  match results with
  | [ simple; improved; optimized ] ->
      check i64 "simple = improved major cycles" (cycles simple)
        (cycles improved);
      check i64 "improved = optimized major cycles" (cycles improved)
        (cycles optimized);
      check i64 "same committed" (committed simple) (committed optimized)
  | _ -> Alcotest.fail "expected three results"

let test_org_equivalence_micro () =
  assert_org_equivalence (independent_alus 200);
  assert_org_equivalence (dependent_alus 100);
  assert_org_equivalence (squash_trace ~block:10 ~tail:50);
  let memory_mix =
    Array.init 120 (fun i ->
        if i mod 3 = 0 then store ~pc:i ~base:29 ~data:30 ~addr:(i * 8) ()
        else if i mod 3 = 1 then
          load ~pc:i ~dest:(1 + (i mod 8)) ~base:29 ~addr:((i - 1) * 8) ()
        else alu ~pc:i ~dest:(9 + (i mod 8)) ~src1:(1 + (i mod 8)) ~src2:0 ())
  in
  assert_org_equivalence memory_mix

let test_org_equivalence_kernel () =
  let gzip = Resim_workloads.Workload.find "gzip" in
  let program = Resim_workloads.Workload.program_of gzip ~scale:2048 () in
  assert_org_equivalence (Resim_tracegen.Generator.records program)

let org_equivalence_property =
  QCheck.Test.make ~name:"organizations are timing-equivalent on synthetic \
                          traces"
    ~count:15
    QCheck.(int_bound 10_000)
    (fun seed ->
      let profile =
        Resim_tracegen.Synthetic.balanced ~name:"prop" ~instructions:1500
      in
      let records = Resim_tracegen.Synthetic.generate ~seed profile in
      let results = List.map (run_org records) organizations in
      match results with
      | [ a; b; c ] ->
          Int64.equal (cycles a) (cycles b)
          && Int64.equal (cycles b) (cycles c)
          && Int64.equal (committed a) (committed c)
      | _ -> false)

let org_equivalence_random_configs =
  (* The equivalence must hold for any valid structural configuration,
     not just the reference one. *)
  QCheck.Test.make
    ~name:"organizations are timing-equivalent across random configs"
    ~count:10
    QCheck.(
      quad (int_range 2 8) (int_range 1 4) (int_range 1 4) (int_bound 999))
    (fun (width, rob_scale, lsq_scale, seed) ->
      let config =
        { Config.reference with
          width;
          ifq_entries = width;
          decouple_entries = width;
          alu_count = width;
          rob_entries = width * (1 + rob_scale);
          lsq_entries = 2 * lsq_scale;
          mem_read_ports = max 1 ((width - 1) / 2);
          mem_write_ports = max 1 (width - 1 - ((width - 1) / 2)) }
      in
      (* Keep Optimized's port precondition satisfied. *)
      let config =
        if config.mem_read_ports + config.mem_write_ports > width - 1 then
          { config with mem_read_ports = 1; mem_write_ports = 1 }
        else config
      in
      match Config.validate { config with organization = Config.Optimized } with
      | Error _ -> QCheck.assume_fail ()
      | Ok _ ->
          let profile =
            Resim_tracegen.Synthetic.balanced ~name:"cfg" ~instructions:800
          in
          let records = Resim_tracegen.Synthetic.generate ~seed profile in
          let cycles_of organization =
            cycles (Engine.simulate ~config:{ config with organization } records)
          in
          let simple = cycles_of Config.Simple in
          Int64.equal simple (cycles_of Config.Improved)
          && Int64.equal simple (cycles_of Config.Optimized))

let synthetic_commits_all_correct_path =
  QCheck.Test.make
    ~name:"engine commits exactly the correct-path records" ~count:20
    QCheck.(int_bound 10_000)
    (fun seed ->
      let profile =
        { (Resim_tracegen.Synthetic.balanced ~name:"prop"
             ~instructions:1200)
          with mispredict_rate = 0.08 }
      in
      let records = Resim_tracegen.Synthetic.generate ~seed profile in
      let untagged =
        Array.fold_left
          (fun acc (r : Record.t) -> if r.wrong_path then acc else acc + 1)
          0 records
      in
      let stats = run records in
      Int64.equal (committed stats) (Int64.of_int untagged))

let ipc_bounded_by_width =
  QCheck.Test.make ~name:"IPC never exceeds the issue width" ~count:15
    QCheck.(int_bound 10_000)
    (fun seed ->
      let profile =
        Resim_tracegen.Synthetic.balanced ~name:"prop" ~instructions:2000
      in
      let records = Resim_tracegen.Synthetic.generate ~seed profile in
      let stats = run records in
      Stats.ipc stats <= float_of_int Config.reference.width)

let suite =
  [ ("core:ring",
     [ Alcotest.test_case "order" `Quick test_ring_order;
       Alcotest.test_case "full push" `Quick test_ring_full_push_fails;
       Alcotest.test_case "get/iter" `Quick test_ring_get_and_iter;
       Alcotest.test_case "drop_while_back" `Quick test_ring_drop_while_back;
       QCheck_alcotest.to_alcotest ring_matches_list_model ]);
    ("core:config",
     [ Alcotest.test_case "latency formulas" `Quick
         test_config_latency_formulas;
       Alcotest.test_case "validation" `Quick test_config_validation ]);
    ("core:minor-cycle",
     [ Alcotest.test_case "lengths" `Quick test_schedule_lengths;
       Alcotest.test_case "unit counts" `Quick test_schedule_unit_counts;
       Alcotest.test_case "load slot rule" `Quick test_schedule_loads_rule;
       Alcotest.test_case "render" `Quick test_schedule_render ]);
    ("core:structures",
     [ Alcotest.test_case "rename table" `Quick test_rename;
       Alcotest.test_case "alu limit" `Quick test_fu_alu_limit;
       Alcotest.test_case "divider busy" `Quick
         test_fu_divider_not_pipelined;
       Alcotest.test_case "multiplier pipelined" `Quick
         test_fu_mult_pipelined;
       Alcotest.test_case "rob" `Quick test_rob_basics;
       Alcotest.test_case "lsq classification" `Quick
         test_lsq_classification;
       Alcotest.test_case "lsq release order" `Quick test_lsq_release_order
     ]);
    ("core:engine",
     [ Alcotest.test_case "single instruction" `Quick
         test_single_instruction_latency;
       Alcotest.test_case "empty trace" `Quick test_empty_trace;
       Alcotest.test_case "independent IPC" `Quick
         test_independent_ipc_near_width;
       Alcotest.test_case "dependent chain" `Quick
         test_dependent_chain_serializes;
       Alcotest.test_case "multiply latency" `Quick
         test_mult_latency_visible;
       Alcotest.test_case "divider serialization" `Quick
         test_divider_serializes_independent_divides;
       Alcotest.test_case "minor cycles product" `Quick
         test_minor_cycles_product;
       Alcotest.test_case "load-use latency" `Quick test_load_use_latency;
       Alcotest.test_case "store-to-load forwarding" `Quick
         test_store_to_load_forwarding;
       Alcotest.test_case "no false forwarding" `Quick
         test_no_forwarding_across_different_words;
       Alcotest.test_case "read ports" `Quick test_read_port_limit;
       Alcotest.test_case "write ports" `Quick test_write_port_limit;
       Alcotest.test_case "squash semantics" `Quick test_squash_semantics;
       Alcotest.test_case "squash penalty" `Quick
         test_squash_penalty_costs_cycles;
       Alcotest.test_case "tagged never commits" `Quick
         test_tagged_never_commits;
       Alcotest.test_case "misfetch on cold BTB" `Quick
         test_misfetch_on_cold_btb;
       Alcotest.test_case "oracle has no misfetch" `Quick
         test_oracle_has_no_misfetch;
       Alcotest.test_case "icache stalls" `Quick
         test_icache_misses_stall_fetch;
       Alcotest.test_case "dcache slowdown" `Quick
         test_dcache_misses_slow_loads;
       Alcotest.test_case "rob pressure" `Quick test_rob_full_pressure;
       Alcotest.test_case "determinism" `Quick test_determinism;
       Alcotest.test_case "malformed tagged prefix" `Quick
         test_malformed_leading_tagged_records;
       Alcotest.test_case "step invariants" `Quick test_step_invariants;
       Alcotest.test_case "lsq-full stall" `Quick test_lsq_full_stall;
       Alcotest.test_case "taken-branch fetch bubble" `Quick
         test_taken_branch_ends_fetch_group;
       Alcotest.test_case "wrong-path cache pollution" `Quick
         test_wrong_path_loads_pollute_dcache;
       Alcotest.test_case "BTB trains at commit" `Quick
         test_btb_trains_at_commit;
       Alcotest.test_case "width-1 machine" `Quick
         test_width_one_configuration;
       Alcotest.test_case "width-8 machine" `Quick
         test_width_eight_configuration;
       Alcotest.test_case "trailing tagged block" `Quick
         test_trace_ends_in_wrong_path_block;
       Alcotest.test_case "commit width bounded" `Quick
         test_commit_width_histogram_bounded ]);
    ("core:equivalence",
     [ Alcotest.test_case "micro traces" `Quick test_org_equivalence_micro;
       Alcotest.test_case "gzip kernel" `Slow test_org_equivalence_kernel;
       QCheck_alcotest.to_alcotest org_equivalence_property;
       QCheck_alcotest.to_alcotest org_equivalence_random_configs;
       QCheck_alcotest.to_alcotest synthetic_commits_all_correct_path;
       QCheck_alcotest.to_alcotest ipc_bounded_by_width ]) ]
